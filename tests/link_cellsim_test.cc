#include "link/cellsim.h"

#include <gtest/gtest.h>

#include "aqm/codel.h"
#include "sim/relay.h"

namespace sprout {
namespace {

struct Collector : PacketSink {
  std::vector<Packet> packets;
  std::vector<TimePoint> times;
  Simulator* sim = nullptr;
  void receive(Packet&& p) override {
    packets.push_back(std::move(p));
    if (sim != nullptr) times.push_back(sim->now());
  }
};

Trace make_trace(std::initializer_list<std::int64_t> ms, std::int64_t dur_ms) {
  std::vector<TimePoint> opp;
  for (std::int64_t m : ms) opp.push_back(TimePoint{} + msec(m));
  return Trace{std::move(opp), msec(dur_ms)};
}

Packet sized_packet(ByteCount size) {
  Packet p;
  p.size = size;
  return p;
}

TEST(Cellsim, DeliversAtTraceInstantsPlusPropagation) {
  Simulator sim;
  Collector out;
  out.sim = &sim;
  CellsimConfig cfg;
  cfg.propagation_delay = msec(20);
  CellsimLink link(sim, make_trace({100, 200}, 1000), cfg, out);
  link.receive(sized_packet(kMtuBytes));  // arrives at queue at t=20ms
  link.receive(sized_packet(kMtuBytes));
  sim.run_until(TimePoint{} + msec(500));
  ASSERT_EQ(out.packets.size(), 2u);
  EXPECT_EQ(out.times[0], TimePoint{} + msec(100));
  EXPECT_EQ(out.times[1], TimePoint{} + msec(200));
}

TEST(Cellsim, WastedOpportunityWhenQueueEmpty) {
  Simulator sim;
  Collector out;
  CellsimLink link(sim, make_trace({50, 100, 150}, 1000), {}, out);
  sim.run_until(TimePoint{} + msec(120));
  // Two opportunities passed with nothing to send.
  EXPECT_EQ(link.wasted_opportunities(), 2);
  // A packet sent now rides the 150 ms opportunity (arrives at queue 20+).
  link.receive(sized_packet(kMtuBytes));
  sim.run_until(TimePoint{} + msec(200));
  EXPECT_EQ(out.packets.size(), 1u);
}

TEST(Cellsim, PerByteAccountingReleasesManySmallPackets) {
  // Paper footnote 6: fifteen 100-byte packets ride one 1500-byte
  // opportunity.
  Simulator sim;
  Collector out;
  CellsimLink link(sim, make_trace({100}, 1000), {}, out);
  for (int i = 0; i < 15; ++i) link.receive(sized_packet(100));
  sim.run_until(TimePoint{} + msec(150));
  EXPECT_EQ(out.packets.size(), 15u);
  EXPECT_EQ(link.delivered_bytes(), 1500);
}

TEST(Cellsim, BudgetDoesNotCarryAcrossOpportunities) {
  Simulator sim;
  Collector out;
  CellsimLink link(sim, make_trace({100, 200}, 1000), {}, out);
  // 100-byte packet then an MTU packet: the MTU packet does not fit in the
  // 1400 remaining bytes of the first opportunity and must wait.
  link.receive(sized_packet(100));
  link.receive(sized_packet(kMtuBytes));
  sim.run_until(TimePoint{} + msec(150));
  EXPECT_EQ(out.packets.size(), 1u);
  sim.run_until(TimePoint{} + msec(250));
  EXPECT_EQ(out.packets.size(), 2u);
}

TEST(Cellsim, TraceRepeatsAfterDuration) {
  Simulator sim;
  Collector out;
  out.sim = &sim;
  CellsimLink link(sim, make_trace({100}, 1000), {}, out);
  sim.run_until(TimePoint{} + msec(1050));
  link.receive(sized_packet(kMtuBytes));  // queue at 1070; next opp at 1100
  sim.run_until(TimePoint{} + msec(1200));
  ASSERT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(out.times[0], TimePoint{} + msec(1100));
}

TEST(Cellsim, FifoOrderPreserved) {
  Simulator sim;
  Collector out;
  CellsimLink link(sim, make_trace({50, 60, 70, 80}, 1000), {}, out);
  for (int i = 0; i < 4; ++i) {
    Packet p = sized_packet(kMtuBytes);
    p.seq = i;
    link.receive(std::move(p));
  }
  sim.run_until(TimePoint{} + msec(100));
  ASSERT_EQ(out.packets.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out.packets[static_cast<std::size_t>(i)].seq, i);
}

TEST(Cellsim, BernoulliLossDropsAboutTheRightFraction) {
  Simulator sim;
  Collector out;
  CellsimConfig cfg;
  cfg.loss_rate = 0.3;
  cfg.seed = 99;
  // Plenty of opportunities.
  std::vector<TimePoint> opp;
  for (int i = 1; i <= 2000; ++i) opp.push_back(TimePoint{} + msec(i));
  CellsimLink link(sim, Trace{std::move(opp), sec(3)}, cfg, out);
  for (int i = 0; i < 1000; ++i) link.receive(sized_packet(kMtuBytes));
  sim.run_until(TimePoint{} + sec(3));
  EXPECT_NEAR(static_cast<double>(link.random_drops()), 300.0, 60.0);
  EXPECT_EQ(out.packets.size(), 1000u - static_cast<std::size_t>(link.random_drops()));
}

TEST(Cellsim, ZeroLossDeliversEverything) {
  Simulator sim;
  Collector out;
  std::vector<TimePoint> opp;
  for (int i = 1; i <= 200; ++i) opp.push_back(TimePoint{} + msec(i * 5));
  CellsimLink link(sim, Trace{std::move(opp), sec(2)}, {}, out);
  for (int i = 0; i < 100; ++i) link.receive(sized_packet(kMtuBytes));
  sim.run_until(TimePoint{} + sec(2));
  EXPECT_EQ(out.packets.size(), 100u);
  EXPECT_EQ(link.random_drops(), 0);
  EXPECT_EQ(link.queue_drops(), 0);
  EXPECT_EQ(link.delivered_bytes(), 100 * kMtuBytes);
}

TEST(Cellsim, CodelPolicyDropsUnderStandingQueue) {
  Simulator sim;
  Collector out;
  // Slow link: one opportunity every 50 ms.
  std::vector<TimePoint> opp;
  for (int i = 1; i <= 100; ++i) opp.push_back(TimePoint{} + msec(i * 50));
  CellsimLink link(sim, Trace{std::move(opp), sec(6)}, {}, out,
                   std::make_unique<CodelPolicy>());
  // Offer far more than the link can carry.
  for (int i = 0; i < 200; ++i) link.receive(sized_packet(kMtuBytes));
  sim.run_until(TimePoint{} + sec(6));
  EXPECT_GT(link.queue_drops(), 0);
  EXPECT_GT(out.packets.size(), 0u);
  EXPECT_LT(out.packets.size(), 200u);
}

TEST(Cellsim, ConservationNoLossNoAqm) {
  // Property: delivered + still-queued + dropped == offered.
  Simulator sim;
  Collector out;
  std::vector<TimePoint> opp;
  for (int i = 1; i <= 50; ++i) opp.push_back(TimePoint{} + msec(i * 7));
  CellsimLink link(sim, Trace{std::move(opp), msec(400)}, {}, out);
  for (int i = 0; i < 80; ++i) link.receive(sized_packet(kMtuBytes));
  sim.run_until(TimePoint{} + msec(300));
  const auto delivered = static_cast<std::int64_t>(out.packets.size());
  const auto queued = static_cast<std::int64_t>(link.queue_packets());
  EXPECT_EQ(delivered + queued + link.random_drops() + link.queue_drops(), 80);
}

}  // namespace
}  // namespace sprout

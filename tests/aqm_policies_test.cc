// Unit tests for the extension AQM policies: BLUE (aqm/blue.h), AVQ
// (aqm/avq.h) and PIE (aqm/pie.h).  CoDel and RED have their own suites.
#include <gtest/gtest.h>

#include "aqm/avq.h"
#include "aqm/blue.h"
#include "aqm/pie.h"

namespace sprout {
namespace {

TimePoint at_ms(std::int64_t ms) { return TimePoint{} + msec(ms); }

Packet mtu_packet(std::int64_t t_ms) {
  Packet p;
  p.size = kMtuBytes;
  p.sent_at = at_ms(t_ms);
  p.enqueued_at = at_ms(t_ms);
  return p;
}

// ------------------------------------------------------------------- BLUE

TEST(Blue, StartsWithZeroDropProbability) {
  BluePolicy blue({}, 1);
  EXPECT_DOUBLE_EQ(blue.drop_probability(), 0.0);
  LinkQueue q;
  // Empty queue, p = 0: everything admitted.
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(blue.admit(q, mtu_packet(i), at_ms(i)));
  }
}

TEST(Blue, RaisesProbabilityOnHighBacklog) {
  BlueParams params;
  params.high_water_bytes = 10 * kMtuBytes;
  BluePolicy blue(params, 1);
  LinkQueue q;
  for (int i = 0; i < 20; ++i) q.push(mtu_packet(0));
  (void)blue.admit(q, mtu_packet(1), at_ms(0));
  EXPECT_GT(blue.drop_probability(), 0.0);
}

TEST(Blue, FreezeTimeRateLimitsIncrements) {
  BlueParams params;
  params.high_water_bytes = kMtuBytes;
  params.increment = 0.02;
  params.freeze_time = msec(100);
  BluePolicy blue(params, 1);
  LinkQueue q;
  for (int i = 0; i < 5; ++i) q.push(mtu_packet(0));
  // Ten congested arrivals within one freeze window: only one increment.
  for (int i = 0; i < 10; ++i) (void)blue.admit(q, mtu_packet(i), at_ms(i));
  EXPECT_NEAR(blue.drop_probability(), 0.02, 1e-12);
}

TEST(Blue, LowersProbabilityWhenLinkIdle) {
  BlueParams params;
  params.high_water_bytes = kMtuBytes;
  BluePolicy blue(params, 1);
  LinkQueue q;
  for (int i = 0; i < 5; ++i) q.push(mtu_packet(0));
  (void)blue.admit(q, mtu_packet(0), at_ms(0));
  const double raised = blue.drop_probability();
  while (!q.empty()) (void)blue.dequeue(q, at_ms(150));
  (void)blue.dequeue(q, at_ms(300));  // idle event, past freeze time
  EXPECT_LT(blue.drop_probability(), raised);
}

TEST(Blue, ProbabilityStaysInUnitInterval) {
  BlueParams params;
  params.high_water_bytes = kMtuBytes;
  params.increment = 0.5;
  params.freeze_time = msec(0);
  BluePolicy blue(params, 1);
  LinkQueue q;
  for (int i = 0; i < 5; ++i) q.push(mtu_packet(0));
  for (int i = 0; i < 10; ++i) (void)blue.admit(q, mtu_packet(i), at_ms(i));
  EXPECT_LE(blue.drop_probability(), 1.0);
  BluePolicy blue2({.increment = 0.1, .decrement = 0.9, .freeze_time = msec(0)}, 1);
  LinkQueue empty;
  for (int i = 0; i < 10; ++i) (void)blue2.dequeue(empty, at_ms(i));
  EXPECT_GE(blue2.drop_probability(), 0.0);
}

TEST(Blue, DropsAreCounted) {
  BlueParams params;
  params.high_water_bytes = kMtuBytes;
  params.increment = 1.0;  // after one congestion event p = 1
  BluePolicy blue(params, 7);
  LinkQueue q;
  for (int i = 0; i < 5; ++i) q.push(mtu_packet(0));
  int denied = 0;
  // First congested arrival raises p to 1.0 and may itself be dropped.
  if (!blue.admit(q, mtu_packet(0), at_ms(0))) ++denied;
  for (int i = 0; i < 20; ++i) {
    if (!blue.admit(q, mtu_packet(i), at_ms(200 + i))) ++denied;
  }
  EXPECT_GT(denied, 0);
  EXPECT_EQ(blue.drops(), denied);
}

// -------------------------------------------------------------------- AVQ

TEST(Avq, AdmitsWhenVirtualQueueHasRoom) {
  AvqPolicy avq;
  LinkQueue q;
  EXPECT_TRUE(avq.admit(q, mtu_packet(0), at_ms(0)));
  EXPECT_GT(avq.virtual_queue_bytes(), 0.0);
}

TEST(Avq, DropsWhenVirtualBufferOverflows) {
  AvqParams params;
  params.virtual_buffer_bytes = 3 * kMtuBytes;
  params.initial_capacity_bps = 1e4;  // nearly frozen virtual drain
  AvqPolicy avq(params);
  LinkQueue q;
  int denied = 0;
  // A burst at t=0: the virtual queue can hold only three packets.
  for (int i = 0; i < 10; ++i) {
    if (!avq.admit(q, mtu_packet(0), at_ms(0))) ++denied;
  }
  EXPECT_GE(denied, 6);
  EXPECT_EQ(avq.drops(), denied);
}

TEST(Avq, VirtualQueueDrainsBetweenArrivals) {
  AvqParams params;
  params.initial_capacity_bps = 12e6;  // 1500 B/ms
  AvqPolicy avq(params);
  LinkQueue q;
  (void)avq.admit(q, mtu_packet(0), at_ms(0));
  const double after_first = avq.virtual_queue_bytes();
  // 10 ms later the virtual queue has fully drained before the next add.
  (void)avq.admit(q, mtu_packet(10), at_ms(10));
  EXPECT_LE(avq.virtual_queue_bytes(), after_first);
}

TEST(Avq, VirtualCapacityNeverExceedsMeasuredLink) {
  AvqParams params;
  params.initial_capacity_bps = 1e6;
  AvqPolicy avq(params);
  LinkQueue q;
  for (int i = 0; i < 100; ++i) (void)avq.admit(q, mtu_packet(i), at_ms(i));
  EXPECT_LE(avq.virtual_capacity_bps(), 1e6 + 1e-6);
  EXPECT_GE(avq.virtual_capacity_bps(), 0.0);
}

TEST(Avq, TracksLinkRateFromDequeues) {
  AvqParams params;
  params.initial_capacity_bps = 1e9;  // wrong by orders of magnitude
  params.rate_window = msec(100);
  AvqPolicy avq(params);
  LinkQueue q;
  // Deliveries at 1500 B / 10 ms = 1.2 Mbit/s; after a window the virtual
  // capacity must have been re-clamped to the measured link rate.
  for (int i = 0; i < 100; ++i) {
    q.push(mtu_packet(i * 10));
    (void)avq.dequeue(q, at_ms(i * 10));
    (void)avq.admit(q, mtu_packet(i * 10 + 1), at_ms(i * 10 + 1));
  }
  EXPECT_LT(avq.virtual_capacity_bps(), 2e6);
}

// -------------------------------------------------------------------- PIE

TEST(Pie, NoDropsBelowBypassBacklog) {
  PiePolicy pie({}, 1);
  LinkQueue q;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(pie.admit(q, mtu_packet(i), at_ms(i)));
  }
}

TEST(Pie, DropProbabilityGrowsWithStandingDelay) {
  PieParams params;
  params.target = msec(20);
  PiePolicy pie(params, 1);
  LinkQueue q;
  // Standing backlog of 100 MTU with departures at 1 packet / 10 ms:
  // estimated delay = 100*1500 / 150000 B/s = 1 s >> 20 ms target.
  for (int i = 0; i < 100; ++i) q.push(mtu_packet(0));
  for (int i = 0; i < 300; ++i) {
    q.push(mtu_packet(i * 10));
    (void)pie.dequeue(q, at_ms(i * 10));
    (void)pie.admit(q, mtu_packet(i * 10 + 1), at_ms(i * 10 + 1));
  }
  EXPECT_GT(pie.drop_probability(), 0.0);
  EXPECT_GT(pie.estimated_delay_ms(), to_millis(params.target));
}

TEST(Pie, ProbabilityDecaysAfterQueueEmpties) {
  PieParams params;
  PiePolicy pie(params, 1);
  LinkQueue q;
  for (int i = 0; i < 100; ++i) q.push(mtu_packet(0));
  for (int i = 0; i < 300; ++i) {
    q.push(mtu_packet(i * 10));
    (void)pie.dequeue(q, at_ms(i * 10));
    (void)pie.admit(q, mtu_packet(i * 10 + 1), at_ms(i * 10 + 1));
  }
  const double raised = pie.drop_probability();
  ASSERT_GT(raised, 0.0);
  // Drain fully, then keep the controller ticking on an empty queue.
  while (!q.empty()) (void)pie.dequeue(q, at_ms(3000));
  LinkQueue empty;
  for (int i = 0; i < 500; ++i) {
    Packet p = mtu_packet(4000 + i * 30);
    (void)pie.admit(empty, p, at_ms(4000 + i * 30));
    (void)pie.dequeue(empty, at_ms(4000 + i * 30 + 1));
    while (!empty.empty()) (void)empty.pop();
  }
  EXPECT_LT(pie.drop_probability(), raised);
}

TEST(Pie, EstimatedDelayUsesLittlesLaw) {
  PiePolicy pie({}, 1);
  LinkQueue q;
  // Departure rate 1500 B / 10 ms = 150 kB/s, then hold a 30-packet queue:
  // 45 kB / 150 kB/s = 300 ms.
  for (int i = 0; i < 50; ++i) {
    q.push(mtu_packet(i * 10));
    (void)pie.dequeue(q, at_ms(i * 10));
  }
  for (int i = 0; i < 30; ++i) q.push(mtu_packet(600));
  for (int i = 0; i < 10; ++i) {
    (void)pie.admit(q, mtu_packet(600 + i * 31), at_ms(600 + i * 31));
  }
  EXPECT_NEAR(pie.estimated_delay_ms(), 300.0, 100.0);
}

TEST(Pie, DropsAreCounted) {
  PieParams params;
  params.bypass_bytes = 0;
  PiePolicy pie(params, 3);
  LinkQueue q;
  for (int i = 0; i < 200; ++i) q.push(mtu_packet(0));
  int denied = 0;
  for (int i = 0; i < 2000; ++i) {
    q.push(mtu_packet(i * 10));
    (void)pie.dequeue(q, at_ms(i * 10));
    if (!pie.admit(q, mtu_packet(i * 10 + 1), at_ms(i * 10 + 1))) ++denied;
  }
  EXPECT_GT(denied, 0);
  EXPECT_EQ(pie.drops(), denied);
}

}  // namespace
}  // namespace sprout

// Cross-AQM property suite: every queue-management policy in aqm/ must
// satisfy the same behavioural contract under the same synthetic loads.
// Individual algorithms have their own focused suites; this one pins the
// family-wide invariants (§5.4 / §6 compare them as a class).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "aqm/avq.h"
#include "aqm/blue.h"
#include "aqm/codel.h"
#include "aqm/pie.h"
#include "aqm/red.h"

namespace sprout {
namespace {

enum class Policy { kDropTail, kCodel, kRed, kBlue, kAvq, kPie };

std::string policy_name(const ::testing::TestParamInfo<Policy>& info) {
  switch (info.param) {
    case Policy::kDropTail: return "DropTail";
    case Policy::kCodel: return "CoDel";
    case Policy::kRed: return "RED";
    case Policy::kBlue: return "BLUE";
    case Policy::kAvq: return "AVQ";
    case Policy::kPie: return "PIE";
  }
  return "unknown";
}

std::unique_ptr<AqmPolicy> make_policy(Policy p) {
  switch (p) {
    case Policy::kDropTail: return std::make_unique<DropTailPolicy>();
    case Policy::kCodel: return std::make_unique<CodelPolicy>();
    case Policy::kRed: return std::make_unique<RedPolicy>(RedParams{}, 1);
    case Policy::kBlue: return std::make_unique<BluePolicy>(BlueParams{}, 1);
    case Policy::kAvq: return std::make_unique<AvqPolicy>();
    case Policy::kPie: return std::make_unique<PiePolicy>(PieParams{}, 1);
  }
  return nullptr;
}

Packet mtu_packet(std::int64_t t_ms) {
  Packet p;
  p.size = kMtuBytes;
  p.sent_at = TimePoint{} + msec(t_ms);
  p.enqueued_at = TimePoint{} + msec(t_ms);
  return p;
}

class AqmContract : public ::testing::TestWithParam<Policy> {};

TEST_P(AqmContract, IdleQueueAdmitsAndNeverDrops) {
  auto policy = make_policy(GetParam());
  LinkQueue q;
  // Arrivals at 1 packet / 100 ms, drained immediately: zero load.
  for (int i = 0; i < 200; ++i) {
    const std::int64_t t = i * 100;
    Packet p = mtu_packet(t);
    ASSERT_TRUE(policy->admit(q, p, TimePoint{} + msec(t)))
        << "arrival " << i;
    q.push(std::move(p));
    auto out = policy->dequeue(q, TimePoint{} + msec(t + 1));
    EXPECT_TRUE(out.has_value());
  }
  EXPECT_TRUE(q.empty());
}

TEST_P(AqmContract, DequeueFromEmptyIsEmpty) {
  auto policy = make_policy(GetParam());
  LinkQueue q;
  EXPECT_FALSE(policy->dequeue(q, TimePoint{} + msec(1)).has_value());
}

TEST_P(AqmContract, ConservesPackets) {
  auto policy = make_policy(GetParam());
  LinkQueue q;
  std::int64_t in = 0;
  std::int64_t out = 0;
  for (int i = 0; i < 3000; ++i) {
    const std::int64_t t = i * 2;  // overload: 2 ms arrivals, 10 ms service
    Packet p = mtu_packet(t);
    if (policy->admit(q, p, TimePoint{} + msec(t))) {
      q.push(std::move(p));
      ++in;
    }
    if (i % 5 == 0 &&
        policy->dequeue(q, TimePoint{} + msec(t + 1)).has_value()) {
      ++out;
    }
  }
  EXPECT_LE(out, in);
  // Admitted = delivered + still queued + dropped inside the queue by a
  // dequeue-side policy (CoDel); nothing is ever invented.
  EXPECT_EQ(in, out + static_cast<std::int64_t>(q.packets()) + q.dropped());
}

TEST_P(AqmContract, ActivePoliciesControlAStandingQueueDropTailDoesNot) {
  auto policy = make_policy(GetParam());
  LinkQueue q;
  // Sustained 2x overload for 60 s: 1 arrival / 5 ms, 1 departure / 10 ms.
  std::size_t peak_packets = 0;
  for (int i = 0; i < 12'000; ++i) {
    const std::int64_t t = i * 5;
    Packet p = mtu_packet(t);
    if (policy->admit(q, p, TimePoint{} + msec(t))) q.push(std::move(p));
    if (i % 2 == 0) (void)policy->dequeue(q, TimePoint{} + msec(t + 1));
    peak_packets = std::max(peak_packets, q.packets());
  }
  if (GetParam() == Policy::kDropTail) {
    // Unbounded tail-drop: the queue grows with the overload (~6000 pkts).
    EXPECT_GT(peak_packets, 3000u);
  } else {
    // Every active policy must hold the standing queue well below that.
    EXPECT_LT(peak_packets, 1500u) << "peak " << peak_packets;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, AqmContract,
                         ::testing::Values(Policy::kDropTail, Policy::kCodel,
                                           Policy::kRed, Policy::kBlue,
                                           Policy::kAvq, Policy::kPie),
                         policy_name);

}  // namespace
}  // namespace sprout

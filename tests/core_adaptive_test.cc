// Unit tests for the adaptive-hyperparameter strategy (core/adaptive.h):
// Bayesian model averaging over a (σ, λz) hypothesis bank — §3.1's "a more
// sophisticated system would allow σ and λz to vary slowly with time".
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/adaptive.h"

namespace sprout {
namespace {

SproutParams base_params() { return {}; }

// Drives the strategy with Poisson counts from a rate path; rate_fn gives
// the true rate at each tick.
template <typename RateFn>
void drive(ForecastStrategy& s, RateFn rate_fn, int ticks,
           unsigned seed = 42) {
  std::mt19937_64 gen(seed);
  const double tau = base_params().tick_seconds();
  for (int t = 0; t < ticks; ++t) {
    s.advance_tick();
    const double rate = rate_fn(t);
    std::poisson_distribution<int> d(std::max(1e-9, rate * tau));
    s.observe(d(gen));
  }
}

TEST(Adaptive, StartsWithUniformHypothesisWeights) {
  AdaptiveForecastStrategy s(base_params());
  const std::vector<double> w = s.hypothesis_weights();
  ASSERT_EQ(w.size(), 5u);
  for (const double v : w) EXPECT_NEAR(v, 0.2, 1e-9);
}

TEST(Adaptive, WeightsStayNormalized) {
  AdaptiveForecastStrategy s(base_params());
  drive(s, [](int) { return 400.0; }, 300);
  const std::vector<double> w = s.hypothesis_weights();
  double sum = 0.0;
  for (const double v : w) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Adaptive, SelectsLowSigmaOnQuietLink) {
  // A dead-steady rate: the least-volatile hypothesis predicts best.
  AdaptiveForecastStrategy s(base_params());
  drive(s, [](int) { return 400.0; }, 2000);
  EXPECT_LE(s.map_hypothesis().sigma_pps_per_sqrt_s, 100.0);
}

TEST(Adaptive, SelectsHighSigmaOnVolatileLink) {
  // Rate slams between 100 and 900 every second: only a high-σ model
  // explains consecutive observations.
  AdaptiveForecastStrategy s(base_params());
  drive(s, [](int t) { return (t / 50) % 2 == 0 ? 100.0 : 900.0; }, 2000);
  EXPECT_GE(s.map_hypothesis().sigma_pps_per_sqrt_s, 400.0);
}

TEST(Adaptive, TracksRegimeChangeInVariability) {
  // §3.1's motivating case: the network's variability itself drifts.  A
  // long quiet phase then a long volatile phase must flip the selection.
  AdaptiveForecastStrategy s(base_params());
  drive(s, [](int) { return 400.0; }, 2500, 1);
  const double sigma_quiet = s.map_hypothesis().sigma_pps_per_sqrt_s;
  drive(s, [](int t) { return (t / 50) % 2 == 0 ? 100.0 : 900.0; }, 2500, 2);
  const double sigma_volatile = s.map_hypothesis().sigma_pps_per_sqrt_s;
  EXPECT_LT(sigma_quiet, sigma_volatile);
}

TEST(Adaptive, ForgettingKeepsDeadHypothesesRevivable) {
  AdaptiveParams ap;
  ap.min_weight = 1e-6;
  AdaptiveForecastStrategy s(base_params(), ap);
  drive(s, [](int) { return 400.0; }, 3000);
  // Even after 3000 one-sided ticks every weight stays at or above the
  // floor (within normalization slack).
  for (const double w : s.hypothesis_weights()) {
    EXPECT_GE(w, 1e-7);
  }
}

TEST(Adaptive, ForecastIsMonotoneInHorizon) {
  AdaptiveForecastStrategy s(base_params());
  drive(s, [](int) { return 500.0; }, 400);
  const DeliveryForecast f = s.make_forecast(TimePoint{});
  for (int h = 1; h < f.ticks(); ++h) {
    EXPECT_LE(f.cumulative_at(h), f.cumulative_at(h + 1));
  }
}

TEST(Adaptive, ForecastOriginAndTickAreStamped) {
  AdaptiveForecastStrategy s(base_params());
  drive(s, [](int) { return 500.0; }, 100);
  const TimePoint now = TimePoint{} + sec(3);
  const DeliveryForecast f = s.make_forecast(now);
  EXPECT_EQ(f.origin, now);
  EXPECT_EQ(f.tick, base_params().tick);
  EXPECT_EQ(f.ticks(), base_params().forecast_horizon_ticks);
}

TEST(Adaptive, EstimatedRateTracksTruth) {
  AdaptiveForecastStrategy s(base_params());
  drive(s, [](int) { return 600.0; }, 1000);
  EXPECT_NEAR(s.estimated_rate_pps(), 600.0, 90.0);
}

TEST(Adaptive, MoreCautiousThanSingleModelWhenUncertain) {
  // Early on (few observations) the mixture spans all hypotheses, so the
  // adaptive forecast must be at most the most optimistic member's and at
  // least the most pessimistic member's.
  SproutParams p = base_params();
  AdaptiveForecastStrategy adaptive(p);

  SproutParams lo = p;
  lo.sigma_pps_per_sqrt_s = 50.0;
  BayesianForecastStrategy narrow(lo);
  SproutParams hi = p;
  hi.sigma_pps_per_sqrt_s = 800.0;
  BayesianForecastStrategy wide(hi);

  std::mt19937_64 gen(9);
  const double tau = p.tick_seconds();
  for (int t = 0; t < 20; ++t) {
    std::poisson_distribution<int> d(500.0 * tau);
    const int k = d(gen);
    adaptive.advance_tick();
    adaptive.observe(k);
    narrow.advance_tick();
    narrow.observe(k);
    wide.advance_tick();
    wide.observe(k);
  }
  const auto fa = adaptive.make_forecast(TimePoint{});
  const auto fn = narrow.make_forecast(TimePoint{});
  const auto fw = wide.make_forecast(TimePoint{});
  EXPECT_LE(fa.cumulative_at(8), std::max(fn.cumulative_at(8),
                                          fw.cumulative_at(8)));
  EXPECT_GE(fa.cumulative_at(8), std::min(fn.cumulative_at(8),
                                          fw.cumulative_at(8)));
}

TEST(Adaptive, CensoredTicksNeverLowerTheRateBelief) {
  AdaptiveForecastStrategy s(base_params());
  drive(s, [](int) { return 500.0; }, 500);
  const double before = s.estimated_rate_pps();
  // A burst of sender-limited ticks with tiny counts: the censored update
  // must not drag the belief toward the offered load.
  for (int t = 0; t < 50; ++t) {
    s.advance_tick();
    s.observe_lower_bound(1);
  }
  EXPECT_GT(s.estimated_rate_pps(), 0.5 * before);
}

TEST(Adaptive, SingleHypothesisDegeneratesToBayesian) {
  // With one hypothesis equal to the paper's frozen values, the adaptive
  // strategy must produce the same forecasts as the plain Bayesian one.
  SproutParams p = base_params();
  AdaptiveParams ap;
  ap.hypotheses = {{p.sigma_pps_per_sqrt_s, p.outage_escape_rate_per_s}};
  AdaptiveForecastStrategy adaptive(p, ap);
  BayesianForecastStrategy plain(p);

  std::mt19937_64 gen(5);
  const double tau = p.tick_seconds();
  for (int t = 0; t < 300; ++t) {
    std::poisson_distribution<int> d(400.0 * tau);
    const int k = d(gen);
    adaptive.advance_tick();
    adaptive.observe(k);
    plain.advance_tick();
    plain.observe(k);
  }
  const auto fa = adaptive.make_forecast(TimePoint{});
  const auto fp = plain.make_forecast(TimePoint{});
  ASSERT_EQ(fa.ticks(), fp.ticks());
  for (int h = 1; h <= fa.ticks(); ++h) {
    EXPECT_EQ(fa.cumulative_at(h), fp.cumulative_at(h)) << "h=" << h;
  }
}

}  // namespace
}  // namespace sprout

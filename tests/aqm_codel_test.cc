#include "aqm/codel.h"

#include <gtest/gtest.h>

namespace sprout {
namespace {

Packet mtu_packet(TimePoint enqueued) {
  Packet p;
  p.size = kMtuBytes;
  p.enqueued_at = enqueued;
  return p;
}

TEST(LinkQueue, ByteAccounting) {
  LinkQueue q;
  q.push(mtu_packet(TimePoint{}));
  Packet small;
  small.size = 100;
  q.push(std::move(small));
  EXPECT_EQ(q.bytes(), kMtuBytes + 100);
  EXPECT_EQ(q.packets(), 2u);
  auto p = q.pop();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(q.bytes(), 100);
  q.drop_head();
  EXPECT_EQ(q.bytes(), 0);
  EXPECT_EQ(q.dropped(), 1);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(LinkQueue, PushFrontRestoresOrder) {
  LinkQueue q;
  Packet a = mtu_packet(TimePoint{});
  a.seq = 1;
  Packet b = mtu_packet(TimePoint{});
  b.seq = 2;
  q.push(std::move(a));
  q.push(std::move(b));
  auto first = q.pop();
  ASSERT_TRUE(first.has_value());
  q.push_front(std::move(*first));
  EXPECT_EQ(q.head()->seq, 1);
  EXPECT_EQ(q.bytes(), 2 * kMtuBytes);
}

TEST(DropTail, UnboundedByDefault) {
  DropTailPolicy policy;
  LinkQueue q;
  for (int i = 0; i < 10000; ++i) {
    Packet p = mtu_packet(TimePoint{});
    ASSERT_TRUE(policy.admit(q, p, TimePoint{}));
    q.push(std::move(p));
  }
  EXPECT_EQ(q.packets(), 10000u);
}

TEST(DropTail, EnforcesByteCap) {
  DropTailPolicy policy(3 * kMtuBytes);
  LinkQueue q;
  for (int i = 0; i < 3; ++i) {
    Packet p = mtu_packet(TimePoint{});
    ASSERT_TRUE(policy.admit(q, p, TimePoint{}));
    q.push(std::move(p));
  }
  Packet overflow = mtu_packet(TimePoint{});
  EXPECT_FALSE(policy.admit(q, overflow, TimePoint{}));
}

TEST(Codel, NoDropsBelowTarget) {
  CodelPolicy codel;
  LinkQueue q;
  TimePoint now{};
  // Sojourn always < 5 ms: CoDel must behave like FIFO.
  for (int i = 0; i < 100; ++i) {
    q.push(mtu_packet(now));
    now += msec(1);
    auto p = codel.dequeue(q, now);
    EXPECT_TRUE(p.has_value());
  }
  EXPECT_EQ(codel.drops(), 0);
}

TEST(Codel, DropsAfterSustainedHighSojourn) {
  CodelPolicy codel;
  LinkQueue q;
  TimePoint now{};
  // Fill a standing queue whose head is always >> 5 ms old, and dequeue
  // one packet every 10 ms for a second: CoDel must enter dropping state.
  for (int i = 0; i < 500; ++i) q.push(mtu_packet(now));
  int delivered = 0;
  for (int step = 0; step < 100; ++step) {
    now += msec(10);
    q.push(mtu_packet(now));  // keep it backlogged
    if (codel.dequeue(q, now).has_value()) ++delivered;
  }
  EXPECT_GT(codel.drops(), 0);
  EXPECT_GT(delivered, 0);
}

TEST(Codel, DropRateAcceleratesWithCount) {
  // With a persistently bad queue, inter-drop spacing shrinks as
  // interval/sqrt(count): expect clearly more drops in the second half.
  CodelPolicy codel;
  LinkQueue q;
  TimePoint now{};
  for (int i = 0; i < 5000; ++i) q.push(mtu_packet(now));
  int drops_first_half = 0;
  for (int step = 0; step < 400; ++step) {
    now += msec(5);
    q.push(mtu_packet(now));
    const std::int64_t before = codel.drops();
    codel.dequeue(q, now);
    if (step == 199) drops_first_half = static_cast<int>(codel.drops());
    (void)before;
  }
  const int drops_second_half = static_cast<int>(codel.drops()) - drops_first_half;
  EXPECT_GT(drops_second_half, drops_first_half);
}

TEST(Codel, RecoversWhenQueueDrains) {
  CodelPolicy codel;
  LinkQueue q;
  TimePoint now{};
  for (int i = 0; i < 200; ++i) q.push(mtu_packet(now));
  for (int step = 0; step < 150; ++step) {
    now += msec(10);
    codel.dequeue(q, now);
  }
  EXPECT_TRUE(codel.dropping() || codel.drops() > 0);
  // Now the queue goes nearly empty and sojourns become small.
  while (!q.empty()) q.drop_head();
  q.push(mtu_packet(now));
  now += msec(1);
  EXPECT_TRUE(codel.dequeue(q, now).has_value());
  EXPECT_FALSE(codel.dropping());
}

TEST(Codel, EmptyQueueReturnsNothing) {
  CodelPolicy codel;
  LinkQueue q;
  EXPECT_FALSE(codel.dequeue(q, TimePoint{} + sec(1)).has_value());
}

}  // namespace
}  // namespace sprout

#include "util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sprout {
namespace {

TEST(RunningStats, Basics) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(PercentileEstimator, ExactOnSmallSets) {
  PercentileEstimator p;
  for (double x : {10.0, 20.0, 30.0, 40.0, 50.0}) p.add(x);
  EXPECT_DOUBLE_EQ(p.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(p.percentile(50.0), 30.0);
  EXPECT_DOUBLE_EQ(p.percentile(100.0), 50.0);
  EXPECT_DOUBLE_EQ(p.percentile(25.0), 20.0);
}

TEST(PercentileEstimator, InterpolatesBetweenRanks) {
  PercentileEstimator p;
  p.add(0.0);
  p.add(10.0);
  EXPECT_DOUBLE_EQ(p.percentile(50.0), 5.0);
  EXPECT_DOUBLE_EQ(p.percentile(75.0), 7.5);
}

TEST(PercentileEstimator, AddAfterQueryResorts) {
  PercentileEstimator p;
  p.add(1.0);
  p.add(3.0);
  EXPECT_DOUBLE_EQ(p.median(), 2.0);
  p.add(100.0);
  EXPECT_DOUBLE_EQ(p.median(), 3.0);
}

TEST(RampFunctionPercentile, SingleRamp) {
  RampFunctionPercentile f;
  // Value rises from 0 to 10 over 10 seconds: percentile p is p/10.
  f.add_ramp(0.0, 10.0);
  EXPECT_NEAR(f.percentile(50.0), 5.0, 1e-6);
  EXPECT_NEAR(f.percentile(95.0), 9.5, 1e-6);
  EXPECT_NEAR(f.mean(), 5.0, 1e-9);
}

TEST(RampFunctionPercentile, TwoRampsWeightedByDuration) {
  RampFunctionPercentile f;
  f.add_ramp(0.0, 1.0);   // values [0,1) for 1s
  f.add_ramp(10.0, 3.0);  // values [10,13) for 3s
  // 25% of time below 1.0; median falls inside the second ramp.
  EXPECT_NEAR(f.percentile(25.0), 1.0, 1e-5);
  EXPECT_NEAR(f.percentile(50.0), 11.0, 1e-5);
  EXPECT_NEAR(f.percentile(100.0), 13.0, 1e-4);
  EXPECT_NEAR(f.mean(), (0.5 * 1.0 + 11.5 * 3.0) / 4.0, 1e-9);
}

TEST(RampFunctionPercentile, IgnoresEmptyRamps) {
  RampFunctionPercentile f;
  f.add_ramp(5.0, 0.0);
  f.add_ramp(5.0, -1.0);
  EXPECT_TRUE(f.empty());
  EXPECT_DOUBLE_EQ(f.percentile(95.0), 0.0);
}

TEST(RampFunctionPercentile, MatchesSampledReference) {
  // Compare the exact computation against brute-force sampling.
  RampFunctionPercentile f;
  PercentileEstimator sampled;
  Rng rng(7);
  double starts[] = {0.02, 0.5, 0.1, 2.0, 0.04};
  double lens[] = {0.3, 1.2, 0.08, 4.0, 0.9};
  for (int i = 0; i < 5; ++i) {
    f.add_ramp(starts[i], lens[i]);
    const int samples = static_cast<int>(lens[i] * 10000);
    for (int s = 0; s < samples; ++s) {
      sampled.add(starts[i] + rng.uniform() * lens[i]);
    }
  }
  for (double p : {5.0, 50.0, 95.0}) {
    EXPECT_NEAR(f.percentile(p), sampled.percentile(p), 0.05) << "p " << p;
  }
}

TEST(LogHistogram, BinsAndPercents) {
  LogHistogram h(1.0, 1000.0, 3);  // decades: [1,10), [10,100), [100,1000)
  h.add(2.0);
  h.add(5.0);
  h.add(50.0);
  h.add(500.0);
  EXPECT_EQ(h.total(), 4);
  EXPECT_EQ(h.count(0), 2);
  EXPECT_EQ(h.count(1), 1);
  EXPECT_EQ(h.count(2), 1);
  EXPECT_DOUBLE_EQ(h.percent(0), 50.0);
  EXPECT_NEAR(h.bin_lo(1), 10.0, 1e-9);
  EXPECT_NEAR(h.bin_hi(1), 100.0, 1e-9);
  EXPECT_NEAR(h.bin_center(1), std::sqrt(10.0 * 100.0), 1e-6);
}

TEST(LogHistogram, OutOfRangeCountsTowardTotalOnly) {
  LogHistogram h(1.0, 10.0, 2);
  h.add(0.5);
  h.add(20.0);
  h.add(2.0);
  EXPECT_EQ(h.total(), 3);
  EXPECT_EQ(h.count(0) + h.count(1), 1);
}

TEST(PowerLawFit, RecoversKnownExponent) {
  // y = 3 x^-2.5 exactly.
  std::vector<double> x, y;
  for (double v = 1.0; v < 100.0; v *= 1.5) {
    x.push_back(v);
    y.push_back(3.0 * std::pow(v, -2.5));
  }
  const PowerLawFit fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.slope, -2.5, 1e-9);
  EXPECT_NEAR(std::pow(10.0, fit.intercept), 3.0, 1e-6);
}

TEST(PowerLawFit, IgnoresNonPositivePoints) {
  std::vector<double> x = {1.0, 0.0, 10.0, -5.0, 100.0};
  std::vector<double> y = {1.0, 5.0, 0.1, 2.0, 0.01};
  const PowerLawFit fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.slope, -1.0, 1e-9);
}

TEST(PowerLawFit, DegenerateInputsReturnZero) {
  std::vector<double> x = {1.0};
  std::vector<double> y = {2.0};
  const PowerLawFit fit = fit_power_law(x, y);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
}

TEST(JainFairness, EqualSharesScoreOne) {
  EXPECT_DOUBLE_EQ(jain_fairness({5.0, 5.0, 5.0, 5.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({1.0}), 1.0);
}

TEST(JainFairness, MonopolyScoresOneOverN) {
  EXPECT_DOUBLE_EQ(jain_fairness({10.0, 0.0, 0.0, 0.0}), 0.25);
}

TEST(JainFairness, IsScaleInvariant) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  std::vector<double> b;
  for (const double v : a) b.push_back(1000.0 * v);
  EXPECT_NEAR(jain_fairness(a), jain_fairness(b), 1e-12);
}

TEST(JainFairness, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0.0, 0.0}), 1.0);
}

TEST(JainFairness, OrderIndependent) {
  EXPECT_DOUBLE_EQ(jain_fairness({1.0, 9.0}), jain_fairness({9.0, 1.0}));
  // Two-flow 1:9 split: (10)^2 / (2 * 82) = 100/164.
  EXPECT_NEAR(jain_fairness({1.0, 9.0}), 100.0 / 164.0, 1e-12);
}

}  // namespace
}  // namespace sprout

#include "util/table.h"

#include <sstream>

#include <gtest/gtest.h>

namespace sprout {
namespace {

TEST(TableWriter, AlignsColumns) {
  TableWriter t({"name", "value"});
  t.row().cell("alpha").cell(1.5, 1);
  t.row().cell("b").cell(22.25, 2);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("22.25"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableWriter, TsvRoundTrip) {
  TableWriter t({"a", "b", "c"});
  t.row().cell(std::int64_t{1}).cell(std::int64_t{2}).cell(std::int64_t{3});
  std::ostringstream os;
  t.write_tsv(os);
  EXPECT_EQ(os.str(), "a\tb\tc\n1\t2\t3\n");
}

TEST(TableWriter, ShortRowsPadWithEmpty) {
  TableWriter t({"x", "y"});
  t.row().cell("only");
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(TableWriter, JsonIsArrayOfObjectsKeyedByHeader) {
  TableWriter t({"name", "value"});
  t.row().cell("alpha").cell(std::int64_t{1});
  t.row().cell("beta").cell(std::int64_t{2});
  std::ostringstream os;
  t.write_json(os);
  EXPECT_EQ(os.str(),
            "[\n"
            "  {\"name\": \"alpha\", \"value\": \"1\"},\n"
            "  {\"name\": \"beta\", \"value\": \"2\"}\n"
            "]\n");
}

TEST(TableWriter, JsonEscapesSpecialAndControlCharacters) {
  TableWriter t({"k"});
  t.row().cell(std::string("a\"b\\c\nd\te\rf\x01g"));
  std::ostringstream os;
  t.write_json(os);
  // Quote/backslash/newline/tab use short escapes; other control
  // characters (RFC 8259) become \u00XX.
  EXPECT_NE(os.str().find("a\\\"b\\\\c\\nd\\te\\u000df\\u0001g"),
            std::string::npos);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace sprout

#include "util/table.h"

#include <cstring>
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

namespace sprout {
namespace {

TEST(TableWriter, AlignsColumns) {
  TableWriter t({"name", "value"});
  t.row().cell("alpha").cell(1.5, 1);
  t.row().cell("b").cell(22.25, 2);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("22.25"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableWriter, TsvRoundTrip) {
  TableWriter t({"a", "b", "c"});
  t.row().cell(std::int64_t{1}).cell(std::int64_t{2}).cell(std::int64_t{3});
  std::ostringstream os;
  t.write_tsv(os);
  EXPECT_EQ(os.str(), "a\tb\tc\n1\t2\t3\n");
}

TEST(TableWriter, ShortRowsPadWithEmpty) {
  TableWriter t({"x", "y"});
  t.row().cell("only");
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(TableWriter, JsonIsArrayOfObjectsKeyedByHeader) {
  TableWriter t({"name", "value"});
  t.row().cell("alpha").cell(std::int64_t{1});
  t.row().cell("beta").cell(std::int64_t{2});
  std::ostringstream os;
  t.write_json(os);
  EXPECT_EQ(os.str(),
            "[\n"
            "  {\"name\": \"alpha\", \"value\": \"1\"},\n"
            "  {\"name\": \"beta\", \"value\": \"2\"}\n"
            "]\n");
}

TEST(TableWriter, JsonEscapesSpecialAndControlCharacters) {
  TableWriter t({"k"});
  t.row().cell(std::string("a\"b\\c\nd\te\rf\x01g"));
  std::ostringstream os;
  t.write_json(os);
  // Quote/backslash/newline/tab use short escapes; other control
  // characters (RFC 8259) become \u00XX.
  EXPECT_NE(os.str().find("a\\\"b\\\\c\\nd\\te\\u000df\\u0001g"),
            std::string::npos);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(JsonValue, ParsesEveryKind) {
  const JsonValue v = JsonValue::parse(
      R"({"s": "text", "n": -12.5e1, "t": true, "f": false, "z": null,
          "a": [1, 2, 3], "o": {"nested": "yes"}})");
  EXPECT_EQ(v.at("s").as_string(), "text");
  EXPECT_DOUBLE_EQ(v.at("n").as_number(), -125.0);
  EXPECT_TRUE(v.at("t").as_bool());
  EXPECT_FALSE(v.at("f").as_bool());
  EXPECT_TRUE(v.at("z").is_null());
  ASSERT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("a").as_array()[1].as_number(), 2.0);
  EXPECT_EQ(v.at("o").at("nested").as_string(), "yes");
  EXPECT_TRUE(v.has("s"));
  EXPECT_FALSE(v.has("missing"));
}

TEST(JsonValue, RoundTripsWriterOutput) {
  TableWriter t({"name", "value"});
  t.row().cell(std::string("a\"b\\c\nd\te\x01")).cell(std::int64_t{7});
  std::ostringstream os;
  t.write_json(os);
  const JsonValue v = JsonValue::parse(os.str());
  ASSERT_EQ(v.as_array().size(), 1u);
  EXPECT_EQ(v.as_array()[0].at("name").as_string(), "a\"b\\c\nd\te\x01");
  EXPECT_EQ(v.as_array()[0].at("value").as_string(), "7");
}

TEST(JsonValue, SeventeenDigitDoublesRoundTripExactly) {
  // The shard pipeline's bit-identity rests on this: any double printed
  // with 17 significant digits parses back to the same bits.
  for (const double x : {1.0 / 3.0, 0.1, 123456.789e-3, 2.2250738585072014e-308,
                         9007199254740993.0, -0.0}) {
    std::ostringstream os;
    os.precision(17);
    os << x;
    const double back = JsonValue::parse(os.str()).as_number();
    EXPECT_EQ(std::memcmp(&back, &x, sizeof x), 0) << os.str();
  }
}

TEST(JsonValue, RejectsTruncationCorruptionAndTrailingGarbage) {
  EXPECT_THROW((void)JsonValue::parse(""), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("{\"a\": 1"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("[1, 2,"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("nul"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("1.2.3"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("\"raw\ncontrol\""), std::runtime_error);
}

TEST(JsonValue, EnforcesTheRfc8259NumberGrammar) {
  // strtod would happily accept all of these; the strict grammar must not,
  // because a damaged byte that bends a number out of the grammar is
  // corruption to report, not a value to reinterpret.
  for (const char* bad : {"+5", ".5", "5.", "0123", "-.5", "--1", "1e",
                          "1e+", "1.e3", "infinity", "0x10", "nan"}) {
    EXPECT_THROW((void)JsonValue::parse(bad), std::runtime_error) << bad;
  }
  // ...while every shape the shard writer emits stays parseable.
  for (const char* good :
       {"0", "-0", "120", "-12.5e1", "4733.333333333333",
        "9.9999999999999995e-07", "1e+20", "5.9135930000914277e3"}) {
    EXPECT_NO_THROW((void)JsonValue::parse(good)) << good;
  }
}

TEST(JsonValue, PathologicalNestingThrowsInsteadOfOverflowingTheStack) {
  // A corrupt (or hostile) file of 100k open brackets must be rejected by
  // the depth bound, not crash the merge process.
  EXPECT_THROW((void)JsonValue::parse(std::string(100'000, '[')),
               std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse(std::string(100'000, '{')),
               std::runtime_error);
  // Sane nesting well under the bound still parses.
  std::string deep;
  for (int i = 0; i < 40; ++i) deep += '[';
  deep += '1';
  for (int i = 0; i < 40; ++i) deep += ']';
  const JsonValue v = JsonValue::parse(deep);
  const JsonValue* p = &v;
  for (int i = 0; i < 40; ++i) p = &p->as_array()[0];
  EXPECT_DOUBLE_EQ(p->as_number(), 1.0);
}

TEST(JsonValue, AccessorsNameTheProblem) {
  const JsonValue v = JsonValue::parse(R"({"a": 1})");
  EXPECT_THROW((void)v.at("b"), std::runtime_error);
  EXPECT_THROW((void)v.at("a").as_string(), std::runtime_error);
  EXPECT_THROW((void)v.as_array(), std::runtime_error);
  try {
    (void)v.at("missing_key");
    FAIL();
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("missing_key"), std::string::npos);
  }
}

}  // namespace
}  // namespace sprout

// Tests for the proportional-fair multi-user cell (link/pf_cell.h): the
// §2.1 base-station scheduling substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "link/pf_cell.h"
#include "trace/analysis.h"

namespace sprout {
namespace {

TEST(PfCell, SlotsAdvanceTheClock) {
  PfCell cell({}, 1);
  EXPECT_EQ(cell.now(), TimePoint{});
  cell.step();
  EXPECT_EQ(cell.now(), TimePoint{} + msec(1));
}

TEST(PfCell, EqualUsersGetEqualLongRunService) {
  PfCellParams p;
  p.num_users = 4;
  PfCell cell(p, 7);
  // Fades persist for seconds (reversion 0.4/s), so per-user luck averages
  // out slowly; 6 minutes gives ~150 independent fade periods.
  const auto traces = cell.run(sec(360));
  ASSERT_EQ(traces.size(), 4u);
  double min_rate = 1e18;
  double max_rate = 0.0;
  for (const Trace& t : traces) {
    const double r = t.average_rate_kbps();
    min_rate = std::min(min_rate, r);
    max_rate = std::max(max_rate, r);
    EXPECT_GT(r, 0.0);
  }
  EXPECT_LT(max_rate / min_rate, 1.35);
}

TEST(PfCell, StrongerUserGetsMoreThroughputButNotEverything) {
  // One user with a 12 dB advantage: PF should give it more bytes (it is
  // cheaper to serve) while still scheduling the weak users regularly —
  // that is the "proportional" in proportional fair.
  PfCellParams p;
  p.num_users = 2;
  PfCell cell(p, 3);
  // Bias user 0's channel upward by lifting its state between steps.
  // (Cheaper than parameterizing per-user SNR; 1200 s of 1 ms slots.)
  std::int64_t user0_slots = 0;
  std::int64_t slots = 0;
  for (int i = 0; i < 120'000; ++i) {
    const int winner = cell.step();
    ++slots;
    if (winner == 0) ++user0_slots;
    // Re-bias after fading: emulate a user parked next to the tower.
    const_cast<PfUserState&>(cell.user(0)).snr_db =
        std::max(cell.user(0).snr_db, 18.0);
  }
  const double share0 = static_cast<double>(user0_slots) /
                        static_cast<double>(slots);
  // PF equalizes SLOT shares for stationary channels; the strong user wins
  // on bytes-per-slot, not slot count.
  EXPECT_GT(share0, 0.30);
  EXPECT_LT(share0, 0.70);
  EXPECT_GT(static_cast<double>(cell.user(0).bytes_served),
            1.5 * static_cast<double>(cell.user(1).bytes_served));
}

TEST(PfCell, TracesAreSortedAndNonEmpty) {
  PfCell cell({}, 5);
  const auto traces = cell.run(sec(30));
  for (const Trace& t : traces) {
    ASSERT_FALSE(t.empty());
    const auto& opp = t.opportunities();
    for (std::size_t i = 1; i < opp.size(); ++i) {
      EXPECT_LE(opp[i - 1], opp[i]);
    }
    EXPECT_GE(t.duration(), opp.back().time_since_epoch());
  }
}

TEST(PfCell, DeterministicForSeed) {
  PfCellParams p;
  PfCell a(p, 11);
  PfCell b(p, 11);
  const auto ta = a.run(sec(10));
  const auto tb = b.run(sec(10));
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t u = 0; u < ta.size(); ++u) {
    EXPECT_EQ(ta[u].opportunities(), tb[u].opportunities());
  }
  PfCell c(p, 12);
  const auto tc = c.run(sec(10));
  EXPECT_NE(ta[0].size(), tc[0].size());
}

TEST(PfCell, SpectralEfficiencyIsCapped) {
  PfCellParams p;
  p.num_users = 1;
  p.mean_snr_db = 60.0;  // absurdly good channel
  p.snr_stddev_db = 0.5;
  PfCell cell(p, 1);
  cell.step();
  EXPECT_LE(cell.instantaneous_rate_bps(0),
            p.bandwidth_hz * p.max_spectral_efficiency + 1.0);
}

TEST(PfCell, PerUserRateVariesLikeACellularLink) {
  // The paper's §2.1 point: scheduling + fading + contention produce the
  // rate variability Sprout must handle.  A PF user's trace should show a
  // wide dynamic range at 1 s windows — like the Cox-generated presets.
  PfCellParams p;
  p.num_users = 4;
  PfCell cell(p, 9);
  const auto traces = cell.run(sec(180));
  const double range = rate_dynamic_range(traces[0], sec(1));
  EXPECT_GT(range, 2.0);
}

TEST(PfCell, MoreUsersMeansLessPerUserThroughput) {
  auto user0_rate = [](int n) {
    PfCellParams p;
    p.num_users = n;
    PfCell cell(p, 13);
    return cell.run(sec(60))[0].average_rate_kbps();
  };
  const double solo = user0_rate(1);
  const double shared = user0_rate(8);
  EXPECT_GT(solo, 3.0 * shared);
}

}  // namespace
}  // namespace sprout

#include "core/rate_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace sprout {
namespace {

// Cache hit/miss tallies live in the process-global obs registry now;
// tests measure deltas around the calls they care about.
std::int64_t matrix_hits() {
  return obs::Registry::instance().counter("cache.transition_matrix.hits")
      .value();
}
std::int64_t matrix_misses() {
  return obs::Registry::instance().counter("cache.transition_matrix.misses")
      .value();
}

SproutParams small_params() {
  SproutParams p;
  p.num_bins = 64;  // faster tests, same math
  return p;
}

TEST(RateDistribution, UniformPriorAtStartup) {
  RateDistribution d(256);
  EXPECT_TRUE(d.is_normalized());
  for (int i = 0; i < 256; ++i) {
    EXPECT_DOUBLE_EQ(d.probability(i), 1.0 / 256.0);
  }
}

TEST(RateDistribution, MeanAndQuantileOfUniform) {
  SproutParams p;
  RateDistribution d(p.num_bins);
  EXPECT_NEAR(d.mean(p), 500.0, 2.5);       // mid of [0, 1000]
  EXPECT_NEAR(d.quantile(p, 50.0), 500.0, 5.0);
  EXPECT_LT(d.quantile(p, 5.0), 60.0);
  EXPECT_GT(d.quantile(p, 95.0), 940.0);
}

TEST(TransitionMatrix, RowsAreStochastic) {
  const SproutParams p = small_params();
  TransitionMatrix m(p);
  for (int i = 0; i < p.num_bins; ++i) {
    double sum = 0.0;
    for (int j = 0; j < p.num_bins; ++j) sum += m.entry(i, j);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "row " << i;
  }
}

TEST(TransitionMatrix, OutageIsSticky) {
  const SproutParams p = small_params();
  TransitionMatrix m(p);
  // Staying probability = exp(-λz τ) = exp(-0.02) ≈ 0.980.
  EXPECT_NEAR(m.entry(0, 0), std::exp(-1.0 * 0.02), 1e-9);
}

TEST(TransitionMatrix, DiffusionDoesNotSinkIntoOutage) {
  // The reflecting boundary: a mid-range rate must put (essentially) no
  // mass into the outage bin in one tick.
  const SproutParams p = small_params();
  TransitionMatrix m(p);
  EXPECT_LT(m.entry(p.num_bins / 2, 0), 1e-12);
}

TEST(TransitionMatrix, EvolutionPreservesNormalization) {
  const SproutParams p = small_params();
  TransitionMatrix m(p);
  RateDistribution d(p.num_bins);
  for (int t = 0; t < 500; ++t) m.evolve(d);
  EXPECT_TRUE(d.is_normalized(1e-6));
}

TEST(TransitionMatrix, EvolutionSpreadsAConcentratedBelief) {
  const SproutParams p = small_params();
  TransitionMatrix m(p);
  RateDistribution d(p.num_bins);
  auto& probs = d.mutable_probabilities();
  std::fill(probs.begin(), probs.end(), 0.0);
  probs[32] = 1.0;
  const double before = d.quantile(p, 95.0) - d.quantile(p, 5.0);
  m.evolve(d);
  m.evolve(d);
  const double after = d.quantile(p, 95.0) - d.quantile(p, 5.0);
  EXPECT_GT(after, before);
  // Mean roughly preserved away from the boundaries.
  EXPECT_NEAR(d.mean(p), p.bin_rate(32), 25.0);
}

TEST(BayesFilter, ObservationConcentratesAtTrueRate) {
  SproutParams p;  // full 256 bins
  SproutBayesFilter f(p);
  // True rate 500 pps -> 10 packets per 20 ms tick.
  for (int t = 0; t < 50; ++t) {
    f.evolve();
    f.observe(10);
  }
  EXPECT_NEAR(f.mean_rate_pps(), 500.0, 60.0);
  EXPECT_TRUE(f.distribution().is_normalized(1e-6));
}

TEST(BayesFilter, ZeroObservationsDriveBeliefToOutage) {
  SproutParams p;
  SproutBayesFilter f(p);
  for (int t = 0; t < 30; ++t) {
    f.evolve();
    f.observe(10);
  }
  for (int t = 0; t < 50; ++t) {
    f.evolve();
    f.observe(0);
  }
  EXPECT_LT(f.mean_rate_pps(), 50.0);
}

TEST(BayesFilter, RecoversAfterOutage) {
  SproutParams p;
  SproutBayesFilter f(p);
  for (int t = 0; t < 50; ++t) {
    f.evolve();
    f.observe(0);
  }
  EXPECT_LT(f.mean_rate_pps(), 30.0);
  for (int t = 0; t < 30; ++t) {
    f.evolve();
    f.observe(8);  // 400 pps
  }
  EXPECT_NEAR(f.mean_rate_pps(), 400.0, 80.0);
}

TEST(BayesFilter, CensoredObservationNeverLowersBelief) {
  SproutParams p;
  SproutBayesFilter locked(p);
  for (int t = 0; t < 50; ++t) {
    locked.evolve();
    locked.observe(10);
  }
  const double before = locked.mean_rate_pps();
  // "At least 2 packets" is consistent with 500 pps: must not drag down.
  for (int t = 0; t < 20; ++t) {
    locked.evolve();
    locked.observe_at_least(2);
  }
  EXPECT_GT(locked.mean_rate_pps(), before - 50.0);
}

TEST(BayesFilter, CensoredObservationRulesOutSlowRates) {
  SproutParams p;
  SproutBayesFilter f(p);
  // From the uniform prior, "at least 10 per tick" kills the slow half.
  f.evolve();
  f.observe_at_least(10);
  EXPECT_LT(f.distribution().probability(0), 1e-6);
  EXPECT_GT(f.mean_rate_pps(), 400.0);
}

TEST(BayesFilter, ExtremeObservationDoesNotUnderflow) {
  SproutParams p;
  SproutBayesFilter f(p);
  // Concentrate near zero, then observe a huge count.
  for (int t = 0; t < 60; ++t) {
    f.evolve();
    f.observe(0);
  }
  f.evolve();
  f.observe(150);  // ~7500 pps equivalent: off the grid but must be handled
  EXPECT_TRUE(f.distribution().is_normalized(1e-6));
  EXPECT_GT(f.mean_rate_pps(), 400.0);
}

// Property sweep: the filter locks onto a range of true rates.
class FilterLockSweep : public ::testing::TestWithParam<int> {};

TEST_P(FilterLockSweep, LocksWithinTwoBins) {
  const int per_tick = GetParam();
  SproutParams p;
  SproutBayesFilter f(p);
  for (int t = 0; t < 80; ++t) {
    f.evolve();
    f.observe(per_tick);
  }
  const double true_rate = per_tick / p.tick_seconds();
  EXPECT_NEAR(f.mean_rate_pps(), true_rate, std::max(40.0, true_rate * 0.15));
}

INSTANTIATE_TEST_SUITE_P(Rates, FilterLockSweep,
                         ::testing::Values(1, 2, 5, 10, 15, 19));

TEST(TransitionMatrixCache, SameParamsShareOneMatrix) {
  SproutParams p = small_params();
  p.sigma_pps_per_sqrt_s = 123.0;  // a key no other test uses
  const auto a = TransitionMatrixCache::get(p);
  const auto b = TransitionMatrixCache::get(p);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(a->num_bins(), p.num_bins);
}

TEST(TransitionMatrixCache, KernelFieldsKeyTheCache) {
  // Counters are process-global; measure deltas.
  SproutParams p = small_params();
  p.sigma_pps_per_sqrt_s = 321.0;
  const std::int64_t misses_before = matrix_misses();
  const auto a = TransitionMatrixCache::get(p);
  // Forecast/sender knobs do not affect the kernel: still a hit.
  SproutParams same_kernel = p;
  same_kernel.confidence_percent = 50.0;
  same_kernel.sender_lookahead_ticks = 9;
  const auto b = TransitionMatrixCache::get(same_kernel);
  EXPECT_EQ(a.get(), b.get());
  // A kernel field change builds a new matrix.
  SproutParams different = p;
  different.outage_escape_rate_per_s = 2.5;
  const auto c = TransitionMatrixCache::get(different);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(matrix_misses() - misses_before, 2);
}

TEST(TransitionMatrixCache, FiltersAndForecastersReuseTheCachedKernel) {
  SproutParams p = small_params();
  p.sigma_pps_per_sqrt_s = 213.0;
  const std::int64_t misses_before = matrix_misses();
  const std::int64_t hits_before = matrix_hits();
  SproutBayesFilter f1(p);
  SproutBayesFilter f2(p);
  EXPECT_EQ(matrix_misses() - misses_before, 1);
  EXPECT_GE(matrix_hits() - hits_before, 1);
  // The shared matrix still evolves both filters independently.
  f1.evolve();
  f1.observe(10);
  f2.evolve();
  f2.observe(2);
  EXPECT_GT(f1.mean_rate_pps(), f2.mean_rate_pps());
}

TEST(TransitionMatrixCache, BandEpsilonKeysTheCache) {
  SproutParams p = small_params();
  p.sigma_pps_per_sqrt_s = 231.0;  // a key no other test uses
  const auto a = TransitionMatrixCache::get(p);
  SproutParams tighter = p;
  tighter.band_epsilon = 1e-15;
  const auto b = TransitionMatrixCache::get(tighter);
  EXPECT_NE(a.get(), b.get());
  // dense_inference is NOT part of the key: the matrix stores both paths.
  SproutParams dense = p;
  dense.dense_inference = true;
  const auto c = TransitionMatrixCache::get(dense);
  EXPECT_EQ(a.get(), c.get());
}

// --- banded fast path ----------------------------------------------------

TEST(BandedEvolve, BandsRetainTheRowMassBudget) {
  const SproutParams p = small_params();
  TransitionMatrix m(p);
  EXPECT_DOUBLE_EQ(m.band_epsilon(), p.band_epsilon);
  EXPECT_GT(m.max_bandwidth(), 0);
  // Banding must actually trim: a per-tick σ of a few bins leaves most of
  // each row negligible.
  EXPECT_LT(m.mean_bandwidth(), 0.8 * p.num_bins);
  for (int i = 0; i < p.num_bins; ++i) {
    const auto [lo, hi] = m.row_extent(i);
    ASSERT_LT(lo, hi) << "row " << i;
    double kept = 0.0;
    for (int j = lo; j < hi; ++j) kept += m.entry(i, j);
    EXPECT_GE(kept, 1.0 - p.band_epsilon - 1e-15) << "row " << i;
  }
}

TEST(BandedEvolve, MatchesDenseWithinEpsilonBudget) {
  // One banded step vs one dense step from assorted starting beliefs: the
  // per-element deviation is bounded by a small multiple of ε (trim plus
  // renormalization, each ≤ ε of relocated mass).
  for (const double eps : {1e-8, 1e-12, 1e-15}) {
    SproutParams p = small_params();
    p.band_epsilon = eps;
    TransitionMatrix m(p);
    for (const int start : {0, 1, 17, 32, 62, 63}) {
      RateDistribution banded(p.num_bins);
      auto& probs = banded.mutable_probabilities();
      std::fill(probs.begin(), probs.end(), 0.0);
      probs[static_cast<std::size_t>(start)] = 1.0;
      RateDistribution dense = banded;
      m.evolve(banded);
      m.evolve_dense(dense);
      for (int j = 0; j < p.num_bins; ++j) {
        EXPECT_NEAR(banded.probability(j), dense.probability(j), 4.0 * eps)
            << "eps=" << eps << " start=" << start << " j=" << j;
      }
    }
  }
}

TEST(BandedEvolve, SteadyStateStaysClosedToDense) {
  // Closed-loop divergence check: run a full filter (evolve + observe) down
  // both paths for many ticks and compare the posteriors.
  SproutParams banded_params;  // full 256 bins, default ε
  SproutParams dense_params = banded_params;
  dense_params.dense_inference = true;
  SproutBayesFilter banded(banded_params);
  SproutBayesFilter dense(dense_params);
  for (int t = 0; t < 300; ++t) {
    const int obs = t < 150 ? 10 : 0;  // steady rate, then an outage
    banded.evolve();
    banded.observe(obs);
    dense.evolve();
    dense.observe(obs);
  }
  EXPECT_NEAR(banded.mean_rate_pps(), dense.mean_rate_pps(), 1e-6);
  for (int j = 0; j < banded_params.num_bins; ++j) {
    EXPECT_NEAR(banded.distribution().probability(j),
                dense.distribution().probability(j), 1e-9)
        << "bin " << j;
  }
}

TEST(BandedEvolve, ZeroEpsilonIsBitIdenticalToDense) {
  SproutParams p = small_params();
  p.band_epsilon = 0.0;
  TransitionMatrix m(p);
  // ε = 0 may still trim EXACT zeros (underflowed tails) but must keep
  // every nonzero entry unscaled.
  EXPECT_LE(m.max_bandwidth(), p.num_bins);
  RateDistribution banded(p.num_bins);
  RateDistribution dense(p.num_bins);
  for (int t = 0; t < 20; ++t) {
    m.evolve(banded);
    m.evolve_dense(dense);
  }
  for (int j = 0; j < p.num_bins; ++j) {
    EXPECT_EQ(banded.probability(j), dense.probability(j)) << "bin " << j;
  }
}

TEST(BatchedEvolve, BitIdenticalToSerialEvolves) {
  const SproutParams p = small_params();
  TransitionMatrix m(p);
  constexpr int kFlows = 8;
  std::vector<RateDistribution> serial;
  std::vector<RateDistribution> batched;
  for (int f = 0; f < kFlows; ++f) {
    RateDistribution d(p.num_bins);
    auto& probs = d.mutable_probabilities();
    std::fill(probs.begin(), probs.end(), 0.0);
    // Distinct concentrated beliefs per flow.
    probs[static_cast<std::size_t>((f * 9 + 3) % p.num_bins)] = 0.75;
    probs[static_cast<std::size_t>((f * 9 + 4) % p.num_bins)] = 0.25;
    serial.push_back(d);
    batched.push_back(d);
  }
  std::vector<RateDistribution*> ptrs;
  for (auto& d : batched) ptrs.push_back(&d);
  for (int t = 0; t < 10; ++t) {
    for (auto& d : serial) m.evolve(d);
    m.evolve_batch(ptrs);
  }
  for (int f = 0; f < kFlows; ++f) {
    for (int j = 0; j < p.num_bins; ++j) {
      EXPECT_EQ(serial[static_cast<std::size_t>(f)].probability(j),
                batched[static_cast<std::size_t>(f)].probability(j))
          << "flow " << f << " bin " << j;
    }
  }
}

TEST(BatchedEvolve, FilterBatchGroupsByKernelAndMarksTicks) {
  SproutParams pa = small_params();
  pa.sigma_pps_per_sqrt_s = 217.0;
  SproutParams pb = small_params();
  pb.sigma_pps_per_sqrt_s = 433.0;  // different kernel
  SproutBayesFilter a1(pa), a2(pa), b1(pb), serial_a1(pa), serial_a2(pa),
      serial_b1(pb);
  ASSERT_EQ(a1.transition_matrix(), a2.transition_matrix());
  ASSERT_NE(a1.transition_matrix(), b1.transition_matrix());
  // Make states distinct before batching.
  for (auto* f : {&a1, &serial_a1}) { f->evolve(); f->observe(10); }
  for (auto* f : {&a2, &serial_a2}) { f->evolve(); f->observe(3); }
  for (auto* f : {&b1, &serial_b1}) { f->evolve(); f->observe(7); }
  std::vector<SproutBayesFilter*> group{&a1, &a2, &b1};
  SproutBayesFilter::evolve_batch(group);
  // The next evolve() consumes the mark: states must equal ONE serial
  // evolve, not two.
  a1.evolve();
  a2.evolve();
  b1.evolve();
  serial_a1.evolve();
  serial_a2.evolve();
  serial_b1.evolve();
  const auto expect_same = [&](const SproutBayesFilter& got,
                               const SproutBayesFilter& want) {
    for (int j = 0; j < pa.num_bins; ++j) {
      ASSERT_EQ(got.distribution().probability(j),
                want.distribution().probability(j))
          << "bin " << j;
    }
  };
  expect_same(a1, serial_a1);
  expect_same(a2, serial_a2);
  expect_same(b1, serial_b1);
}

}  // namespace
}  // namespace sprout

// The synthesis subsystem's seed contract, locked four ways:
//
//   1. generate_synth_trace is a pure function of (spec, duration) —
//      repeated generation is identical, in any process.
//   2. A sweep over synth links is bit-identical serial vs thread pool vs
//      shard-merged (the cross-PROCESS leg runs in CI and the
//      synth_roundtrip ctest target, which diff sweep_shard output files).
//   3. The canonical synth_key distinguishes every parameter, so the trace
//      cache and scenario fingerprints cannot conflate two channels.
//   4. One MMPP trace is golden-locked to a checked-in mahimahi file —
//      byte-identical output, regenerate after an INTENDED generator
//      change with:
//        SPROUT_UPDATE_GOLDEN=1 ./sprout_tests --gtest_filter='SynthGolden.*'
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.h"
#include "runner/shard.h"
#include "spec/synth_io.h"
#include "synth/synth.h"

namespace sprout {
namespace {

SynthSpec busy_channel() {
  BrownianModelParams p;
  p.init_rate_pps = 300.0;
  return SynthSpec::brownian_model(p, 7)
      .with_op(SynthOp::sawtooth(4.0, 0.6, 1.0))
      .with_op(SynthOp::jitter(0.002));
}

TEST(SynthDeterminism, RepeatedGenerationIsByteIdentical) {
  const SynthSpec spec = busy_channel();
  const Trace a = generate_synth_trace(spec, sec(20));
  const Trace b = generate_synth_trace(spec, sec(20));
  EXPECT_EQ(a.opportunities(), b.opportunities());
  EXPECT_EQ(a.duration(), b.duration());
}

TEST(SynthDeterminism, SeedAndParamsChangeTheTrace) {
  const SynthSpec spec = busy_channel();
  const Trace base = generate_synth_trace(spec, sec(20));
  const Trace reseeded = generate_synth_trace(spec.with_seed(8), sec(20));
  EXPECT_NE(base.opportunities(), reseeded.opportunities());
  SynthSpec calmer = spec;
  calmer.brownian.sigma_pps_per_sqrt_s = 50.0;
  const Trace reshaped = generate_synth_trace(calmer, sec(20));
  EXPECT_NE(base.opportunities(), reshaped.opportunities());
}

// The grid every sweep-level check below shares: four synth cells over two
// channels x two schemes, content-derived seeds.
SweepSpec synth_grid() {
  SweepSpec sweep;
  for (const SynthSpec& forward :
       {busy_channel(), SynthSpec::markov_model({}, 11)}) {
    for (const SchemeId scheme : {SchemeId::kCubic, SchemeId::kVegas}) {
      ScenarioSpec cell;
      cell.scheme = scheme;
      cell.link = LinkSpec::synth(forward, SynthSpec{}.with_seed(2));
      cell.run_time = sec(8);
      cell.warmup = sec(2);
      sweep.cells.push_back(cell);
    }
  }
  sweep.base_seed = 42;
  return sweep;
}

std::string sweep_bytes(const SweepResult& result) {
  std::ostringstream os;
  write_sweep_json(os, result);
  return os.str();
}

TEST(SynthDeterminism, SerialThreadPoolAndShardMergeAreByteIdentical) {
  const SweepSpec grid = synth_grid();
  const std::string serial = sweep_bytes(run_sweep(grid, /*threads=*/1));
  const std::string pooled = sweep_bytes(run_sweep(grid, /*threads=*/4));
  EXPECT_EQ(serial, pooled);

  const ShardResult even = run_shard(grid, {0, 2}, /*threads=*/2);
  const ShardResult odd = run_shard(grid, {1, 3}, /*threads=*/2);
  const std::string merged = sweep_bytes(merge_shards({even, odd}));
  EXPECT_EQ(serial, merged);
}

TEST(SynthDeterminism, SweepCacheMaterializesEachChannelOnce) {
  const SweepSpec grid = synth_grid();
  SweepOptions options;
  options.base_seed = grid.base_seed;
  // Trace-cache tallies live in the process-global obs registry; the
  // runner's cache is fresh, so deltas around this run are exact.
  auto& reg = obs::Registry::instance();
  const std::int64_t misses_before =
      reg.counter("cache.traces.misses").value();
  const std::int64_t hits_before = reg.counter("cache.traces.hits").value();
  SweepRunner runner(options);
  (void)runner.run(grid.cells);
  // 4 cells x 2 directions = 8 trace lookups over 3 distinct channels
  // (two forwards + the shared reverse).
  EXPECT_EQ(reg.counter("cache.traces.misses").value() - misses_before, 3);
  EXPECT_EQ(reg.counter("cache.traces.hits").value() - hits_before, 5);
}

TEST(SynthKey, DistinguishesEveryKnob) {
  const SynthSpec spec = busy_channel();
  const std::string base = synth_key(spec, sec(10));
  EXPECT_NE(base, synth_key(spec, sec(11)));
  EXPECT_NE(base, synth_key(spec.with_seed(8), sec(10)));
  EXPECT_NE(base, synth_key(spec.with_op(SynthOp::scale(0.9)), sec(10)));
  SynthSpec tweaked = spec;
  tweaked.brownian.outage_escape_rate_per_s += 0.25;
  EXPECT_NE(base, synth_key(tweaked, sec(10)));
  SynthSpec op_tweaked = spec;
  op_tweaked.ops[0].depth += 0.1;
  EXPECT_NE(base, synth_key(op_tweaked, sec(10)));
  // And the scenario fingerprint hashes the key, so cells differ too.
  ScenarioSpec a;
  a.link = LinkSpec::synth(spec, SynthSpec{}.with_seed(2));
  ScenarioSpec b = a;
  b.link.forward_synth = tweaked;
  EXPECT_NE(scenario_fingerprint(a), scenario_fingerprint(b));
}

#ifndef SPROUT_SOURCE_DIR
#error "SPROUT_SOURCE_DIR must name the repo root (set by CMakeLists.txt)"
#endif

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(SynthGolden, MmppTraceMatchesCheckedInFile) {
  // The locked channel: a two-regime MMPP, fixed seed, 20 s.
  MarkovModelParams params;
  params.states = {{30.0, 2.0}, {120.0, 4.0}};
  const SynthSpec spec = SynthSpec::markov_model(params, 3);
  const Trace trace = generate_synth_trace(spec, sec(20));

  const std::string golden_path =
      std::string(SPROUT_SOURCE_DIR) + "/tests/golden/mmpp_trace.tr";
  const std::string generated_path =
      testing::TempDir() + "/mmpp_trace_generated.tr";
  write_trace_file(trace, generated_path);

  if (std::getenv("SPROUT_UPDATE_GOLDEN") != nullptr) {
    write_trace_file(trace, golden_path);
    GTEST_SKIP() << "golden MMPP trace regenerated at " << golden_path;
  }

  const std::string expected = read_bytes(golden_path);
  ASSERT_FALSE(expected.empty())
      << "missing golden file " << golden_path
      << " — generate it with SPROUT_UPDATE_GOLDEN=1";
  EXPECT_EQ(read_bytes(generated_path), expected)
      << "generated MMPP trace drifted from the golden lock; if the change "
         "is intended, regenerate with SPROUT_UPDATE_GOLDEN=1";
}

}  // namespace
}  // namespace sprout

#include "core/forecaster.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/strategy.h"

namespace sprout {
namespace {

RateDistribution locked_at(const SproutParams& p, int per_tick, int ticks = 60) {
  SproutBayesFilter f(p);
  for (int t = 0; t < ticks; ++t) {
    f.evolve();
    f.observe(per_tick);
  }
  return f.distribution();
}

TEST(Forecast, CumulativeIsNondecreasing) {
  SproutParams p;
  DeliveryForecaster fc(p);
  const RateDistribution d = locked_at(p, 10);
  const DeliveryForecast f = fc.forecast(d, TimePoint{} + sec(1));
  ASSERT_EQ(f.ticks(), 8);
  for (int h = 1; h < 8; ++h) {
    EXPECT_LE(f.cumulative_bytes[static_cast<std::size_t>(h - 1)],
              f.cumulative_bytes[static_cast<std::size_t>(h)]);
  }
  EXPECT_EQ(f.cumulative_at(0), 0);
  EXPECT_EQ(f.cumulative_at(8), f.cumulative_bytes.back());
  EXPECT_EQ(f.cumulative_at(20), f.cumulative_bytes.back());  // clamps
}

TEST(Forecast, CautiousBelowTheMean) {
  SproutParams p;
  DeliveryForecaster fc(p);
  const RateDistribution d = locked_at(p, 10);  // ~500 pps
  const DeliveryForecast f = fc.forecast(d, TimePoint{});
  // Mean deliveries over 160 ms at 500 pps = 80 packets = 120000 bytes.
  // The 95%-confident forecast must be well below the mean but nonzero.
  EXPECT_GT(f.cumulative_at(8), 30000);
  EXPECT_LT(f.cumulative_at(8), 120000);
}

TEST(Forecast, HigherConfidenceIsMoreCautious) {
  SproutParams p95;
  p95.confidence_percent = 95.0;
  SproutParams p50 = p95;
  p50.confidence_percent = 50.0;
  SproutParams p5 = p95;
  p5.confidence_percent = 5.0;
  const RateDistribution d = locked_at(p95, 10);
  const ByteCount f95 =
      DeliveryForecaster(p95).forecast(d, TimePoint{}).cumulative_at(8);
  const ByteCount f50 =
      DeliveryForecaster(p50).forecast(d, TimePoint{}).cumulative_at(8);
  const ByteCount f5 =
      DeliveryForecaster(p5).forecast(d, TimePoint{}).cumulative_at(8);
  EXPECT_LT(f95, f50);
  EXPECT_LT(f50, f5);
}

TEST(Forecast, OutageBeliefForecastsNothing) {
  SproutParams p;
  SproutBayesFilter f(p);
  for (int t = 0; t < 60; ++t) {
    f.evolve();
    f.observe(0);
  }
  DeliveryForecaster fc(p);
  const DeliveryForecast fore = fc.forecast(f.distribution(), TimePoint{});
  EXPECT_LT(fore.cumulative_at(8), 5 * kMtuBytes);
}

TEST(Forecast, UncertaintyGrowsWithHorizon) {
  // Per-tick increments should shrink toward the end of the horizon: the
  // belief diffuses forward, so the cautious quantile decays.
  SproutParams p;
  DeliveryForecaster fc(p);
  const RateDistribution d = locked_at(p, 10);
  const DeliveryForecast f = fc.forecast(d, TimePoint{});
  const ByteCount first_half = f.cumulative_at(4);
  const ByteCount second_half = f.cumulative_at(8) - f.cumulative_at(4);
  EXPECT_GE(first_half, second_half);
}

TEST(Forecast, MixtureVariantAlsoMonotoneAndMoreCautious) {
  SproutParams rate_only;
  SproutParams with_noise = rate_only;
  with_noise.count_noise_in_forecast = true;
  const RateDistribution d = locked_at(rate_only, 10);
  const DeliveryForecast a =
      DeliveryForecaster(rate_only).forecast(d, TimePoint{});
  const DeliveryForecast b =
      DeliveryForecaster(with_noise).forecast(d, TimePoint{});
  for (int h = 1; h <= 8; ++h) {
    EXPECT_LE(b.cumulative_at(h), a.cumulative_at(h) + kMtuBytes) << "h=" << h;
  }
  for (int h = 2; h <= 8; ++h) {
    EXPECT_GE(b.cumulative_at(h), b.cumulative_at(h - 1));
  }
}

TEST(Forecast, QuantilePacketsInvertsMixtureCdf) {
  SproutParams p;
  p.count_noise_in_forecast = true;
  DeliveryForecaster fc(p);
  const RateDistribution d = locked_at(p, 10);
  // The returned quantile must be consistent: at least 5% of the mixture
  // mass lies at or below it.
  const int q = fc.quantile_packets(d, 5);
  EXPECT_GT(q, 10);   // not absurdly small
  EXPECT_LT(q, 60);   // and below the ~50 mean
}

TEST(Forecast, FloorHintNeverChangesTheForecast) {
  // The monotone-floor short-circuit: seeding horizon h's quantile search
  // with horizon h-1's answer must reproduce the plain (floorless) search
  // after the caller's max-with-floor clamp — for both quantile variants.
  for (const bool noise : {false, true}) {
    SproutParams p;
    p.count_noise_in_forecast = noise;
    DeliveryForecaster fc(p);
    const auto kernel = TransitionMatrixCache::get(p);
    for (const int per_tick : {0, 2, 10, 18}) {
      const RateDistribution d = locked_at(p, per_tick);
      RateDistribution evolved = d;
      int floor = 0;
      for (int h = 1; h <= p.forecast_horizon_ticks; ++h) {
        evolve_dist(*kernel, p, evolved);
        const int plain = std::max(fc.quantile_packets(evolved, h), floor);
        const int hinted = fc.quantile_packets(evolved, h, floor);
        EXPECT_EQ(hinted, plain)
            << "noise=" << noise << " rate=" << per_tick << " h=" << h;
        floor = hinted;
      }
    }
  }
}

TEST(Forecast, BatchBitIdenticalToSerialForecasts) {
  SproutParams p;
  DeliveryForecaster fc(p);
  std::vector<RateDistribution> dists;
  for (const int per_tick : {0, 3, 10, 14, 19}) {
    dists.push_back(locked_at(p, per_tick));
  }
  std::vector<const RateDistribution*> ptrs;
  for (const auto& d : dists) ptrs.push_back(&d);
  const TimePoint now = TimePoint{} + sec(2);
  const std::vector<DeliveryForecast> batch = fc.forecast_batch(ptrs, now);
  ASSERT_EQ(batch.size(), dists.size());
  for (std::size_t f = 0; f < dists.size(); ++f) {
    const DeliveryForecast serial = fc.forecast(dists[f], now);
    ASSERT_EQ(batch[f].ticks(), serial.ticks()) << "flow " << f;
    EXPECT_EQ(batch[f].origin, serial.origin);
    EXPECT_EQ(batch[f].cumulative_bytes, serial.cumulative_bytes)
        << "flow " << f;
  }
}

TEST(EwmaStrategy, FlatExtrapolationAtEstimatedRate) {
  SproutParams p;
  EwmaForecastStrategy s(p, EwmaParams{});
  for (int t = 0; t < 100; ++t) s.observe(10);
  EXPECT_NEAR(s.estimated_rate_pps(), 500.0, 5.0);
  const DeliveryForecast f = s.make_forecast(TimePoint{});
  // 500 pps for 160 ms = 80 packets; EWMA forecasts the mean, not a
  // cautious quantile.
  EXPECT_NEAR(static_cast<double>(f.cumulative_at(8)),
              80.0 * static_cast<double>(kMtuBytes), 8000.0);
  // Linear in the horizon.
  EXPECT_NEAR(static_cast<double>(f.cumulative_at(4)) * 2.0,
              static_cast<double>(f.cumulative_at(8)), 3100.0);
}

TEST(EwmaStrategy, LowPassLagsSuddenDrop) {
  SproutParams p;
  EwmaForecastStrategy s(p, EwmaParams{});
  for (int t = 0; t < 100; ++t) s.observe(10);
  // Rate collapses; the EWMA responds only gradually (the paper's §5.3
  // explanation for Sprout-EWMA's delay).
  s.observe(0);
  s.observe(0);
  EXPECT_GT(s.estimated_rate_pps(), 300.0);
  for (int t = 0; t < 60; ++t) s.observe(0);
  EXPECT_LT(s.estimated_rate_pps(), 10.0);
}

TEST(EwmaStrategy, CensoredTickOnlyRaises) {
  SproutParams p;
  EwmaForecastStrategy s(p, EwmaParams{});
  for (int t = 0; t < 100; ++t) s.observe(10);
  const double before = s.estimated_rate_pps();
  s.observe_lower_bound(1);  // sender-limited trickle
  EXPECT_DOUBLE_EQ(s.estimated_rate_pps(), before);
  s.observe_lower_bound(15);  // genuine evidence of more headroom
  EXPECT_GT(s.estimated_rate_pps(), before);
}

TEST(BayesianStrategy, EndToEndViaInterface) {
  SproutParams p;
  auto s = make_bayesian_strategy(p);
  for (int t = 0; t < 60; ++t) {
    s->advance_tick();
    s->observe(5);
  }
  EXPECT_NEAR(s->estimated_rate_pps(), 250.0, 50.0);
  const DeliveryForecast f = s->make_forecast(TimePoint{} + msec(100));
  EXPECT_EQ(f.origin, TimePoint{} + msec(100));
  EXPECT_GT(f.cumulative_at(8), 0);
}

}  // namespace
}  // namespace sprout

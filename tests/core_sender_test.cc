#include "core/sender.h"

#include <gtest/gtest.h>

namespace sprout {
namespace {

struct Emitted {
  SproutWireMessage msg;
  ByteCount wire;
};

class SenderTest : public ::testing::Test {
 protected:
  SproutParams params_;
  std::vector<Emitted> out_;

  SproutSender make() {
    return SproutSender(params_, [this](SproutWireMessage&& m, ByteCount w) {
      out_.push_back({std::move(m), w});
    });
  }

  ForecastBlock forecast(std::int64_t origin_ms, ByteCount per_tick,
                         ByteCount received_or_lost) {
    ForecastBlock b;
    b.origin_us = origin_ms * 1000;
    b.tick_us = 20000;
    b.received_or_lost_bytes = received_or_lost;
    ByteCount cum = 0;
    for (int h = 0; h < 8; ++h) {
      cum += per_tick;
      b.cumulative_bytes.push_back(static_cast<std::uint32_t>(cum));
    }
    return b;
  }

  static std::function<ByteCount(ByteCount)> bulk() {
    return [](ByteCount max) { return max; };
  }
};

TEST_F(SenderTest, StartupWindowBeforeAnyForecast) {
  SproutSender s = make();
  EXPECT_FALSE(s.has_forecast());
  EXPECT_EQ(s.window_bytes(TimePoint{}), 20 * kMtuBytes);
  s.tick(TimePoint{} + msec(20), bulk());
  // A 20-packet flight went out.
  EXPECT_EQ(out_.size(), 20u);
  EXPECT_EQ(s.bytes_sent(), 20 * kMtuBytes);
}

TEST_F(SenderTest, SequenceNumbersCountBytes) {
  SproutSender s = make();
  s.tick(TimePoint{} + msec(20), bulk());
  ASSERT_GE(out_.size(), 2u);
  EXPECT_EQ(out_[0].msg.header.seqno, 0);
  EXPECT_EQ(out_[1].msg.header.seqno, out_[0].wire);
}

TEST_F(SenderTest, TimeToNextZeroForAllButLast) {
  SproutSender s = make();
  s.tick(TimePoint{} + msec(20), bulk());
  for (std::size_t i = 0; i + 1 < out_.size(); ++i) {
    EXPECT_EQ(out_[i].msg.header.time_to_next_us, 0u) << i;
  }
  EXPECT_EQ(out_.back().msg.header.time_to_next_us, 20000u);
}

TEST_F(SenderTest, WindowFollowsForecastMinusQueue) {
  SproutSender s = make();
  const TimePoint now = TimePoint{} + msec(100);
  // Forecast from 80 ms: 15000 bytes/tick, receiver has everything (queue
  // empty).  Position at 100 ms is 1 tick; lookahead 5 more.
  s.on_forecast(forecast(80, 15000, 0), now);
  EXPECT_TRUE(s.has_forecast());
  // window = F[6] - F[1] - queue_est; queue_est = 0 - credits = 0.
  EXPECT_EQ(s.window_bytes(now), 5 * 15000);
}

TEST_F(SenderTest, QueueEstimateSuppressesWindow) {
  SproutSender s = make();
  // Send 20 packets first (30000 bytes).
  s.tick(TimePoint{} + msec(20), bulk());
  const TimePoint now = TimePoint{} + msec(40);
  // Receiver saw nothing: everything still queued.
  s.on_forecast(forecast(20, 3000, 0), now);
  // Drain credit for 1 elapsed tick (3000) applies on the next tick() call;
  // window = F[6]-F[1] (15000) minus queue(30000 - credit).
  EXPECT_LT(s.window_bytes(now), 0);
  s.tick(now, bulk());
  // Window shut: heartbeat only.
  EXPECT_EQ(out_.back().msg.header.flags & SproutHeader::kFlagHeartbeat,
            SproutHeader::kFlagHeartbeat);
}

TEST_F(SenderTest, DrainCreditsStartAtForecastOrigin) {
  SproutSender s = make();
  s.tick(TimePoint{} + msec(20), bulk());  // 30000 bytes out
  // Forecast originated 40 ms ago; per-tick drain 15000; receiver counted
  // 0 bytes at origin.  Two ticks of drain (30000) must be credited when
  // the sender's tick advances, leaving queue ~0.
  const TimePoint now = TimePoint{} + msec(60);
  s.on_forecast(forecast(20, 15000, 0), now);
  out_.clear();
  s.tick(now, bulk());
  EXPECT_GT(out_.size(), 1u);  // window opened thanks to origin-based credit
}

TEST_F(SenderTest, StaleForecastIgnored) {
  SproutSender s = make();
  const TimePoint now = TimePoint{} + msec(100);
  s.on_forecast(forecast(80, 15000, 0), now);
  const ByteCount w = s.window_bytes(now);
  s.on_forecast(forecast(60, 1500, 0), now);  // older origin: ignored
  EXPECT_EQ(s.window_bytes(now), w);
}

TEST_F(SenderTest, HeartbeatsWhenIdle) {
  SproutSender s = make();
  const TimePoint now = TimePoint{} + msec(100);
  s.on_forecast(forecast(80, 15000, 0), now);
  // App has nothing to send.
  auto dry = [](ByteCount) -> ByteCount { return 0; };
  s.tick(now, dry);
  ASSERT_EQ(out_.size(), 1u);
  EXPECT_TRUE(out_[0].msg.header.flags & SproutHeader::kFlagHeartbeat);
  EXPECT_EQ(out_[0].wire, params_.heartbeat_bytes);
  EXPECT_EQ(out_[0].msg.header.time_to_next_us, 20000u);
}

TEST_F(SenderTest, ProbeBurstAfterSustainedShutWindow) {
  SproutSender s = make();
  TimePoint now = TimePoint{} + msec(100);
  // Forecast of zero deliveries: window stays shut.
  s.on_forecast(forecast(80, 0, 0), now);
  int data_packets = 0;
  for (int t = 0; t < 12; ++t) {
    now += msec(20);
    out_.clear();
    s.tick(now, bulk());
    for (const Emitted& e : out_) {
      if (!(e.msg.header.flags & SproutHeader::kFlagHeartbeat)) ++data_packets;
    }
  }
  // The zero-window probe must have fired at least once.
  EXPECT_GT(data_packets, 0);
}

TEST_F(SenderTest, ThrowawayLagsTenMilliseconds) {
  SproutSender s = make();
  s.tick(TimePoint{} + msec(20), bulk());
  const ByteCount sent_at_20 = s.bytes_sent();
  out_.clear();
  // 15 ms later: the throwaway must point at (or before) the end of the
  // first flight, which was sent more than 10 ms ago.
  s.on_forecast(forecast(20, 15000, sent_at_20), TimePoint{} + msec(35));
  s.tick(TimePoint{} + msec(35), bulk());
  ASSERT_FALSE(out_.empty());
  const std::int64_t throwaway = out_[0].msg.header.throwaway;
  EXPECT_GT(throwaway, 0);
  EXPECT_LE(throwaway, sent_at_20);
}

TEST_F(SenderTest, SenderLimitedFlagReflectsConfirmedBacklog) {
  SproutSender s = make();
  s.tick(TimePoint{} + msec(20), bulk());  // 30000 bytes at t=20
  out_.clear();
  // Origin 60 ms, receiver saw everything sent before 40 ms => no backlog.
  ForecastBlock all_received = forecast(60, 15000, s.bytes_sent());
  s.on_forecast(all_received, TimePoint{} + msec(80));
  s.tick(TimePoint{} + msec(80), bulk());
  ASSERT_FALSE(out_.empty());
  EXPECT_TRUE(out_[0].msg.header.flags & SproutHeader::kFlagSenderLimited);

  // Now a forecast showing the receiver saw nothing: confirmed backlog.
  out_.clear();
  ForecastBlock nothing_received = forecast(100, 15000, 0);
  s.on_forecast(nothing_received, TimePoint{} + msec(120));
  s.tick(TimePoint{} + msec(120), bulk());
  ASSERT_FALSE(out_.empty());
  EXPECT_FALSE(out_[0].msg.header.flags & SproutHeader::kFlagSenderLimited);
}

TEST_F(SenderTest, ForecastLifeBytes) {
  SproutSender s = make();
  EXPECT_EQ(s.forecast_life_bytes(TimePoint{}), 0);
  const TimePoint now = TimePoint{} + msec(100);
  s.on_forecast(forecast(80, 1000, 0), now);
  // Position 1 of 8: seven ticks of life remain.
  EXPECT_EQ(s.forecast_life_bytes(now), 7 * 1000);
  EXPECT_EQ(s.forecast_life_bytes(now + msec(60)), 4 * 1000);
  EXPECT_EQ(s.forecast_life_bytes(now + msec(400)), 0);
}

}  // namespace
}  // namespace sprout

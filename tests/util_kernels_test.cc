#include "util/kernels.h"

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace sprout::kernels {
namespace {

std::vector<double> random_vec(std::mt19937_64& rng, std::size_t n) {
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::vector<double> v(n);
  for (double& x : v) x = u(rng);
  return v;
}

// Restores whatever backend was active on entry, so tests compose.
class BackendGuard {
 public:
  BackendGuard() : saved_(active_backend()) {}
  ~BackendGuard() { force_backend(saved_.c_str()); }

 private:
  std::string saved_;
};

TEST(Kernels, AxpyMatchesNaiveLoop) {
  std::mt19937_64 rng(1);
  for (const std::size_t n : {0UL, 1UL, 3UL, 4UL, 7UL, 64UL, 109UL, 256UL}) {
    const std::vector<double> src = random_vec(rng, n);
    std::vector<double> dst = random_vec(rng, n);
    std::vector<double> expect = dst;
    const double a = 0.37;
    for (std::size_t j = 0; j < n; ++j) expect[j] += a * src[j];
    axpy(dst.data(), src.data(), a, n);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_DOUBLE_EQ(dst[j], expect[j]) << "n=" << n << " j=" << j;
    }
  }
}

TEST(Kernels, DotMatchesNaiveSumWithinTolerance) {
  std::mt19937_64 rng(2);
  for (const std::size_t n : {0UL, 1UL, 5UL, 64UL, 109UL, 257UL}) {
    const std::vector<double> a = random_vec(rng, n);
    const std::vector<double> b = random_vec(rng, n);
    double naive = 0.0;
    for (std::size_t j = 0; j < n; ++j) naive += a[j] * b[j];
    EXPECT_NEAR(dot(a.data(), b.data(), n), naive, 1e-12 * (1.0 + n));
  }
}

TEST(Kernels, WeightedSum4MatchesSequentialAccumulation) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (const std::size_t rows : {0UL, 1UL, 3UL, 17UL, 96UL}) {
    for (const std::size_t k : {1UL, 2UL, 5UL, 8UL, 11UL}) {
      std::vector<double> vals(rows * 4);
      for (double& x : vals) x = u(rng);
      std::vector<std::vector<double>> coeff_store(k);
      std::vector<std::vector<double>> out_store(k, std::vector<double>(4));
      std::vector<const double*> coeffs(k);
      std::vector<double*> outs(k);
      for (std::size_t f = 0; f < k; ++f) {
        coeff_store[f] = random_vec(rng, rows);
        for (double& c : coeff_store[f]) c = std::abs(c);
        coeffs[f] = coeff_store[f].data();
        outs[f] = out_store[f].data();
      }
      weighted_sum4(vals.data(), rows, coeffs.data(), k, outs.data());
      for (std::size_t f = 0; f < k; ++f) {
        for (std::size_t l = 0; l < 4; ++l) {
          // The contract is a bit-exact sequential sum per lane, ascending
          // rows — not just "close": the batched evolve depends on it.
          double acc = 0.0;
          for (std::size_t r = 0; r < rows; ++r) {
            acc += coeff_store[f][r] * vals[4 * r + l];
          }
          EXPECT_EQ(out_store[f][l], acc)
              << "rows=" << rows << " k=" << k << " f=" << f << " l=" << l;
        }
      }
    }
  }
}

TEST(Kernels, BackendsAreBitIdentical) {
  // The determinism contract: whatever backend cpuid picked must agree with
  // the scalar reference TO THE BIT, or goldens become machine-dependent.
  BackendGuard guard;
  if (!force_backend("avx2")) {
    GTEST_SKIP() << "no AVX2 on this host; scalar is the only backend";
  }
  std::mt19937_64 rng(3);
  for (const std::size_t n : {1UL, 4UL, 6UL, 64UL, 109UL, 255UL, 256UL}) {
    const std::vector<double> a = random_vec(rng, n);
    const std::vector<double> b = random_vec(rng, n);
    std::vector<double> dst_vec = random_vec(rng, n);
    std::vector<double> dst_sca = dst_vec;

    ASSERT_TRUE(force_backend("avx2"));
    const double dot_vec = dot(a.data(), b.data(), n);
    axpy(dst_vec.data(), a.data(), 0.618, n);

    ASSERT_TRUE(force_backend("scalar"));
    const double dot_sca = dot(a.data(), b.data(), n);
    axpy(dst_sca.data(), a.data(), 0.618, n);

    EXPECT_EQ(std::memcmp(&dot_vec, &dot_sca, sizeof(double)), 0) << "n=" << n;
    EXPECT_EQ(std::memcmp(dst_vec.data(), dst_sca.data(), n * sizeof(double)),
              0)
        << "n=" << n;
  }

  // weighted_sum4 across backends, including the k > 8 chunked path.
  std::mt19937_64 rng2(4);
  for (const std::size_t rows : {1UL, 7UL, 96UL}) {
    for (const std::size_t k : {1UL, 3UL, 8UL, 13UL}) {
      const std::vector<double> vals = random_vec(rng2, rows * 4);
      std::vector<std::vector<double>> coeff_store(k);
      std::vector<const double*> coeffs(k);
      std::vector<std::vector<double>> out_vec(k, std::vector<double>(4));
      std::vector<std::vector<double>> out_sca(k, std::vector<double>(4));
      std::vector<double*> outs(k);
      for (std::size_t f = 0; f < k; ++f) {
        coeff_store[f] = random_vec(rng2, rows);
        coeffs[f] = coeff_store[f].data();
      }

      ASSERT_TRUE(force_backend("avx2"));
      for (std::size_t f = 0; f < k; ++f) outs[f] = out_vec[f].data();
      weighted_sum4(vals.data(), rows, coeffs.data(), k, outs.data());

      ASSERT_TRUE(force_backend("scalar"));
      for (std::size_t f = 0; f < k; ++f) outs[f] = out_sca[f].data();
      weighted_sum4(vals.data(), rows, coeffs.data(), k, outs.data());

      for (std::size_t f = 0; f < k; ++f) {
        EXPECT_EQ(std::memcmp(out_vec[f].data(), out_sca[f].data(),
                              4 * sizeof(double)),
                  0)
            << "rows=" << rows << " k=" << k << " f=" << f;
      }
    }
  }
}

TEST(Kernels, ForceBackendRejectsUnknownNames) {
  BackendGuard guard;
  EXPECT_FALSE(force_backend("avx512"));
  EXPECT_FALSE(force_backend(""));
  EXPECT_TRUE(force_backend("scalar"));
  EXPECT_STREQ(active_backend(), "scalar");
  EXPECT_TRUE(force_backend("auto"));
}

}  // namespace
}  // namespace sprout::kernels

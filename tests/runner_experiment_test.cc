#include "runner/scenario.h"

#include "runner/schemes.h"
#include "trace/presets.h"

#include <gtest/gtest.h>

#include <set>

#include "runner/sweep.h"

namespace sprout {
namespace {

ScenarioSpec quick(SchemeId scheme) {
  ScenarioSpec c;
  c.scheme = scheme;
  c.link = LinkSpec::preset("Verizon LTE", LinkDirection::kDownlink);
  c.run_time = sec(40);
  c.warmup = sec(10);
  return c;
}

TEST(Schemes, NamesAreUnique) {
  std::set<std::string> names;
  for (SchemeId s : figure7_schemes()) names.insert(to_string(s));
  EXPECT_EQ(names.size(), figure7_schemes().size());
  EXPECT_EQ(to_string(SchemeId::kCubicCodel), "Cubic-CoDel");
}

TEST(Experiment, ResultsAreDeterministicForSeed) {
  const ScenarioResult a = run_scenario(quick(SchemeId::kSprout));
  const ScenarioResult b = run_scenario(quick(SchemeId::kSprout));
  EXPECT_DOUBLE_EQ(a.throughput_kbps(), b.throughput_kbps());
  EXPECT_DOUBLE_EQ(a.delay95_ms(), b.delay95_ms());
}

TEST(Experiment, MetricsAreInternallyConsistent) {
  const ScenarioResult r = run_scenario(quick(SchemeId::kSprout));
  EXPECT_GT(r.throughput_kbps(), 0.0);
  EXPECT_GT(r.capacity_kbps, r.throughput_kbps() * 0.9);
  EXPECT_NEAR(r.utilization(), r.throughput_kbps() / r.capacity_kbps, 1e-9);
  EXPECT_GE(r.delay95_ms(), r.omniscient_delay95_ms - 1e-6);
  EXPECT_NEAR(r.self_inflicted_delay_ms(),
              r.delay95_ms() - r.omniscient_delay95_ms, 1e-6);
  EXPECT_GT(r.packets_delivered, 0);
}

TEST(Experiment, BandedInferenceMatchesDenseReferenceEndToEnd) {
  // The banded evolve kernel perturbs the model by at most ε = 1e-12 per
  // tick; over a full closed-loop run on BOTH a recorded preset and a
  // synthetic link, the headline metrics must stay within the golden lock's
  // tolerance of the exact dense-inference reference.
  SproutParams dense;
  dense.dense_inference = true;
  std::vector<ScenarioSpec> cells;
  {
    ScenarioSpec preset = quick(SchemeId::kSprout);
    preset.run_time = sec(30);
    preset.warmup = sec(5);
    cells.push_back(preset);
  }
  {
    ScenarioSpec synth;
    synth.scheme = SchemeId::kSprout;
    synth.link = LinkSpec::synthetic({}, {}, /*forward_seed=*/21,
                                     /*reverse_seed=*/22);
    synth.run_time = sec(30);
    synth.warmup = sec(5);
    cells.push_back(synth);
  }
  for (ScenarioSpec& cell : cells) {
    // Both runs use the identical explicit-flow topology so the only
    // difference is the evolve path.
    ScenarioSpec banded_cell = cell;
    banded_cell.topology = TopologySpec::heterogeneous_queue(
        {FlowSpec::of(SchemeId::kSprout)});
    const ScenarioResult banded = run_scenario(banded_cell);
    ScenarioSpec dense_cell = cell;
    dense_cell.topology = TopologySpec::heterogeneous_queue(
        {FlowSpec::of(SchemeId::kSprout).with_params(dense)});
    const ScenarioResult exact = run_scenario(dense_cell);
    EXPECT_NEAR(banded.throughput_kbps(), exact.throughput_kbps(),
                5e-4 * exact.throughput_kbps() + 1e-9);
    EXPECT_NEAR(banded.delay95_ms(), exact.delay95_ms(),
                5e-4 * exact.delay95_ms() + 1e-9);
  }
}

TEST(Experiment, OmniscientSchemeHasZeroSelfInflictedDelay) {
  const ScenarioResult r = run_scenario(quick(SchemeId::kOmniscient));
  EXPECT_NEAR(r.self_inflicted_delay_ms(), 0.0, 3.0);
  EXPECT_GT(r.utilization(), 0.97);
}

TEST(Experiment, SeriesCaptureProducesAlignedSeries) {
  ScenarioSpec c = quick(SchemeId::kSproutEwma);
  c.capture_series = true;
  const ScenarioResult r = run_scenario(c);
  const std::vector<SeriesPoint>& series = r.flows.front().series;
  EXPECT_FALSE(series.empty());
  EXPECT_EQ(series.size(), r.capacity_series.size());
  double series_sum = 0.0;
  for (const SeriesPoint& p : series) series_sum += p.throughput_kbps;
  EXPECT_GT(series_sum, 0.0);
}

TEST(Experiment, LossConfigReducesThroughput) {
  ScenarioSpec clean = quick(SchemeId::kSprout);
  ScenarioSpec lossy = clean;
  lossy.set_loss_rate(0.10);
  const double t_clean = run_scenario(clean).throughput_kbps();
  const double t_lossy = run_scenario(lossy).throughput_kbps();
  EXPECT_LT(t_lossy, t_clean);
  EXPECT_GT(t_lossy, 0.05 * t_clean);  // degraded, not dead (§5.6)
}

TEST(Experiment, AsymmetricLossSplitsByDirection) {
  // Feedback-only loss must be a different experiment than data-only loss:
  // both fields feed their own Cellsim direction, so fingerprints (and the
  // seeds a sweep derives from them) must distinguish the two.
  ScenarioSpec data_lossy = quick(SchemeId::kSprout);
  data_lossy.loss_rate_fwd = 0.10;
  ScenarioSpec feedback_lossy = quick(SchemeId::kSprout);
  feedback_lossy.loss_rate_rev = 0.10;
  EXPECT_NE(scenario_fingerprint(data_lossy),
            scenario_fingerprint(feedback_lossy));

  // Data-direction loss starves the measured flow directly; feedback loss
  // only slows its control loop.  Both hurt, data loss hurts more.
  const double clean = run_scenario(quick(SchemeId::kSprout)).throughput_kbps();
  const double fwd = run_scenario(data_lossy).throughput_kbps();
  const double rev = run_scenario(feedback_lossy).throughput_kbps();
  EXPECT_LT(fwd, clean);
  EXPECT_GT(rev, fwd);
}

TEST(Experiment, LegacyLossSetterKeepsSymmetricFingerprint) {
  // set_loss_rate() is the pre-split "each-way loss" spelling; a symmetric
  // split hashes exactly one loss field, so specs written before the split
  // keep their content addresses.
  ScenarioSpec symmetric = quick(SchemeId::kSprout);
  symmetric.set_loss_rate(0.05);
  EXPECT_DOUBLE_EQ(symmetric.loss_rate_fwd, 0.05);
  EXPECT_DOUBLE_EQ(symmetric.loss_rate_rev, 0.05);
  ScenarioSpec by_hand = quick(SchemeId::kSprout);
  by_hand.loss_rate_fwd = 0.05;
  by_hand.loss_rate_rev = 0.05;
  EXPECT_EQ(scenario_fingerprint(symmetric), scenario_fingerprint(by_hand));
}

TEST(Experiment, ConfidenceSweepTradesDelayForThroughput) {
  ScenarioSpec cautious = quick(SchemeId::kSprout);
  cautious.link =
      LinkSpec::preset("T-Mobile 3G (UMTS)", LinkDirection::kUplink);
  ScenarioSpec aggressive = cautious;
  aggressive.sprout_confidence = 5.0;
  const ScenarioResult r95 = run_scenario(cautious);
  const ScenarioResult r5 = run_scenario(aggressive);
  // Figure 9: lower confidence => more throughput, more delay.
  EXPECT_GE(r5.throughput_kbps(), r95.throughput_kbps() * 0.95);
  EXPECT_GE(r5.delay95_ms(), r95.delay95_ms() * 0.8);
}

TEST(Experiment, UplinkAndDownlinkAreDistinct) {
  ScenarioSpec down = quick(SchemeId::kCubic);
  ScenarioSpec up = down;
  up.link = LinkSpec::preset("Verizon LTE", LinkDirection::kUplink);
  const ScenarioResult rd = run_scenario(down);
  const ScenarioResult ru = run_scenario(up);
  EXPECT_NE(rd.capacity_kbps, ru.capacity_kbps);
}

TEST(Experiment, ValidateTopologyRejectsContradictions) {
  // The builders and run_scenario share ONE validator; contradictions are
  // rejected, never silently resolved.
  EXPECT_THROW((void)TopologySpec::shared_queue(0), std::invalid_argument);
  TopologySpec contradicted = TopologySpec::heterogeneous_queue(
      {FlowSpec::of(SchemeId::kSprout), FlowSpec::of(SchemeId::kCubic)});
  contradicted.num_flows = 3;  // disagrees with the 2-entry flow list
  EXPECT_THROW(validate_topology(contradicted), std::invalid_argument);
  TopologySpec stray_tunnel = TopologySpec::single_flow();
  stray_tunnel.via_tunnel = true;  // only tunnel topologies take this
  EXPECT_THROW(validate_topology(stray_tunnel), std::invalid_argument);
  TopologySpec stray_flows = TopologySpec::single_flow();
  stray_flows.flows = {FlowSpec::of(SchemeId::kSprout)};
  EXPECT_THROW(validate_topology(stray_flows), std::invalid_argument);
}

// --- extension schemes (GCC / FAST / Cubic-PIE), evaluated end-to-end ---

TEST(ExtensionSchemes, GccMovesTrafficWithBoundedDelay) {
  const ScenarioResult r = run_scenario(quick(SchemeId::kGcc));
  // GCC is reactive (delay-gradient): it should move real traffic but is
  // expected to trail Sprout on both axes over a fast-varying link.
  EXPECT_GT(r.throughput_kbps(), 100.0);
  EXPECT_LT(r.self_inflicted_delay_ms(), 10'000.0);
}

TEST(ExtensionSchemes, GccTrailsSproutOnDelay) {
  const ScenarioResult gcc = run_scenario(quick(SchemeId::kGcc));
  const ScenarioResult sprout = run_scenario(quick(SchemeId::kSprout));
  EXPECT_GT(gcc.self_inflicted_delay_ms(), sprout.self_inflicted_delay_ms());
}

TEST(ExtensionSchemes, FastSaturatesTheLink) {
  const ScenarioResult r = run_scenario(quick(SchemeId::kFast));
  EXPECT_GT(r.utilization(), 0.7);
  // Delay-based: far below Cubic's tens of seconds.
  EXPECT_LT(r.self_inflicted_delay_ms(), 5'000.0);
}

TEST(ExtensionSchemes, PieControlsCubicDelayLikeCodel) {
  const ScenarioResult cubic = run_scenario(quick(SchemeId::kCubic));
  const ScenarioResult pie = run_scenario(quick(SchemeId::kCubicPie));
  // In-network delay control: PIE must cut Cubic's delay by a large factor
  // (the §5.4 story, with PIE standing in for CoDel).
  EXPECT_LT(pie.self_inflicted_delay_ms(), cubic.self_inflicted_delay_ms() / 4.0);
  EXPECT_GT(pie.throughput_kbps(), cubic.throughput_kbps() * 0.3);
}

TEST(ExtensionSchemes, AllExtensionSchemesAreDeterministic) {
  for (const SchemeId s : extension_schemes()) {
    ScenarioSpec c = quick(s);
    c.run_time = sec(20);
    c.warmup = sec(5);
    const ScenarioResult a = run_scenario(c);
    const ScenarioResult b = run_scenario(c);
    EXPECT_DOUBLE_EQ(a.throughput_kbps(), b.throughput_kbps())
        << to_string(s);
    EXPECT_DOUBLE_EQ(a.delay95_ms(), b.delay95_ms()) << to_string(s);
  }
}

// --- §7 extension: multiple flows sharing one queue ---

ScenarioSpec shared_quick(SchemeId scheme, int flows) {
  ScenarioSpec c = shared_queue_scenario(
      scheme, flows, find_link_preset("Verizon LTE", LinkDirection::kDownlink));
  c.run_time = sec(40);
  c.warmup = sec(10);
  return c;
}

TEST(SharedQueue, SingleFlowMatchesShapeOfDedicatedRun) {
  const ScenarioResult shared =
      run_scenario(shared_quick(SchemeId::kSprout, 1));
  ASSERT_EQ(shared.flows.size(), 1u);
  EXPECT_GT(shared.flow_metrics(0).throughput_kbps(), 100.0);
  EXPECT_NEAR(shared.jain_index, 1.0, 1e-9);
}

TEST(SharedQueue, SymmetricSproutsShareFairly) {
  const ScenarioResult r = run_scenario(shared_quick(SchemeId::kSprout, 4));
  ASSERT_EQ(r.flows.size(), 4u);
  for (std::size_t i = 0; i < r.flows.size(); ++i) {
    EXPECT_GT(r.flow_metrics(i).throughput_kbps(), 0.0);
  }
  EXPECT_GT(r.jain_index, 0.75);
}

TEST(SharedQueue, SproutsKeepDelayFarBelowCubics) {
  const ScenarioResult sprouts =
      run_scenario(shared_quick(SchemeId::kSprout, 2));
  const ScenarioResult cubics =
      run_scenario(shared_quick(SchemeId::kCubic, 2));
  EXPECT_LT(sprouts.max_delay95_ms, cubics.max_delay95_ms / 4.0);
}

TEST(SharedQueue, AggregateNeverExceedsCapacity) {
  for (const int n : {1, 2, 4}) {
    const ScenarioResult r =
        run_scenario(shared_quick(SchemeId::kSproutEwma, n));
    EXPECT_LE(r.aggregate_utilization, 1.02) << n << " flows";
  }
}

TEST(SharedQueue, DeterministicForSeed) {
  const ScenarioResult a = run_scenario(shared_quick(SchemeId::kSprout, 2));
  const ScenarioResult b = run_scenario(shared_quick(SchemeId::kSprout, 2));
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.flows[i].throughput_kbps, b.flows[i].throughput_kbps);
  }
}

TEST(SharedQueue, RejectsInvalidConfigs) {
  EXPECT_THROW((void)run_scenario(shared_quick(SchemeId::kSprout, 0)),
               std::invalid_argument);
  EXPECT_THROW((void)run_scenario(shared_quick(SchemeId::kOmniscient, 2)),
               std::invalid_argument);
}

TEST(TunnelContention, RunsBothModes) {
  ScenarioSpec direct = tunnel_scenario("Verizon LTE", false);
  direct.run_time = sec(40);
  direct.warmup = sec(10);
  // flows[0] is the Cubic download, flows[1] the Skype call.
  const ScenarioResult d = run_scenario(direct);
  EXPECT_GT(d.flows.at(0).throughput_kbps, 0.0);
  EXPECT_GT(d.flows.at(1).throughput_kbps, 0.0);

  ScenarioSpec tunneled = direct;
  tunneled.topology.via_tunnel = true;
  const ScenarioResult t = run_scenario(tunneled);
  EXPECT_GT(t.flows.at(0).throughput_kbps, 0.0);
  EXPECT_GT(t.flows.at(1).throughput_kbps, 0.0);
}

}  // namespace
}  // namespace sprout

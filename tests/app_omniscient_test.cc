#include "app/omniscient.h"

#include <gtest/gtest.h>

#include "link/cellsim.h"
#include "metrics/flow_metrics.h"
#include "sim/relay.h"
#include "trace/synthetic.h"

namespace sprout {
namespace {

TEST(Omniscient, UsesEveryOpportunityWithZeroQueueing) {
  Simulator sim;
  std::vector<TimePoint> opp;
  for (int i = 10; i <= 1000; ++i) opp.push_back(TimePoint{} + msec(i * 10));
  Trace trace{std::move(opp), sec(11)};
  RelaySink egress;
  CellsimLink link(sim, trace, {}, egress);
  OmniscientSender omni(sim, link.trace(), msec(20), 1);
  omni.attach_network(link);
  MeasuredSink measured(sim);
  egress.set_target(measured);
  omni.start(TimePoint{}, TimePoint{} + sec(10));
  sim.run_until(TimePoint{} + sec(10));

  // Every opportunity in the window is used (the final opportunity sits
  // exactly at the window edge and may fire unfed).
  EXPECT_LE(link.wasted_opportunities(), 1);
  // Per-packet delay is exactly propagation (+1 µs scheduling margin).
  const double p100 = measured.metrics().packet_delay_percentile_ms(
      100.0, TimePoint{}, TimePoint{} + sec(10));
  EXPECT_NEAR(p100, 20.0, 0.1);
}

TEST(Omniscient, SimulationMatchesClosedFormBaseline) {
  // The analytic omniscient 95% delay (metrics module) must agree with an
  // actual simulated omniscient run.
  Simulator sim;
  CellProcessParams p;
  p.mean_rate_pps = 120.0;
  p.max_rate_pps = 240.0;
  p.volatility_pps = 60.0;
  p.outage_hazard_per_s = 0.05;
  Trace trace = generate_trace(p, sec(62), 71);
  RelaySink egress;
  CellsimLink link(sim, trace, {}, egress);
  OmniscientSender omni(sim, link.trace(), msec(20), 1);
  omni.attach_network(link);
  MeasuredSink measured(sim);
  egress.set_target(measured);
  omni.start(TimePoint{}, TimePoint{} + sec(60));
  sim.run_until(TimePoint{} + sec(60));

  const TimePoint from = TimePoint{} + sec(5);
  const TimePoint to = TimePoint{} + sec(55);
  const double simulated =
      measured.metrics().delay_percentile_ms(95.0, from, to);
  const double analytic = omniscient_delay_percentile_ms(
      link.trace(), 95.0, from, to, msec(20));
  EXPECT_NEAR(simulated, analytic, std::max(2.0, analytic * 0.02));
}

TEST(Omniscient, SelfInflictedDelayOfOmniscientIsZero) {
  Simulator sim;
  CellProcessParams p;
  p.mean_rate_pps = 200.0;
  p.max_rate_pps = 400.0;
  p.volatility_pps = 80.0;
  Trace trace = generate_trace(p, sec(32), 72);
  RelaySink egress;
  CellsimLink link(sim, trace, {}, egress);
  OmniscientSender omni(sim, link.trace(), msec(20), 1);
  omni.attach_network(link);
  MeasuredSink measured(sim);
  egress.set_target(measured);
  omni.start(TimePoint{}, TimePoint{} + sec(30));
  sim.run_until(TimePoint{} + sec(30));
  const TimePoint from = TimePoint{} + sec(2);
  const TimePoint to = TimePoint{} + sec(28);
  const double self_inflicted =
      measured.metrics().delay_percentile_ms(95.0, from, to) -
      omniscient_delay_percentile_ms(link.trace(), 95.0, from, to, msec(20));
  EXPECT_NEAR(self_inflicted, 0.0, 2.0);
}

}  // namespace
}  // namespace sprout

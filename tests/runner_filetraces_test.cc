// Tests for run_experiment_on_traces (runner/experiment.h): the drop-in
// path for caller-supplied traces — real captures, PF-cell output, or
// hand-built fixtures with known-by-construction metrics.
#include <gtest/gtest.h>

#include <cstdio>

#include "link/pf_cell.h"
#include "runner/experiment.h"
#include "trace/trace.h"

namespace sprout {
namespace {

// One opportunity every `gap_ms` for `seconds` — a constant-rate link.
Trace isochronous(std::int64_t gap_ms, int seconds) {
  std::vector<TimePoint> opp;
  for (std::int64_t t = 0; t < seconds * 1000; t += gap_ms) {
    opp.push_back(TimePoint{} + msec(t));
  }
  return Trace(std::move(opp), sec(seconds));
}

FileTraceExperimentConfig base_config(SchemeId scheme) {
  FileTraceExperimentConfig c;
  c.scheme = scheme;
  c.forward_trace = isochronous(2, 45);  // 500 pkt/s = 6 Mbit/s
  c.reverse_trace = isochronous(2, 45);
  c.run_time = sec(40);
  c.warmup = sec(10);
  return c;
}

TEST(FileTraces, OmniscientSaturatesAConstantLink) {
  const ExperimentResult r =
      run_experiment_on_traces(base_config(SchemeId::kOmniscient));
  EXPECT_GT(r.utilization, 0.97);
  EXPECT_NEAR(r.capacity_kbps, 6000.0, 60.0);
  EXPECT_NEAR(r.self_inflicted_delay_ms, 0.0, 5.0);
}

TEST(FileTraces, SproutNearlySaturatesAConstantLink) {
  // On a steady link the cautious forecast converges close to the true
  // rate: most of the caution cost comes from rate *variation*.
  const ExperimentResult r =
      run_experiment_on_traces(base_config(SchemeId::kSprout));
  EXPECT_GT(r.utilization, 0.6);
  EXPECT_LT(r.self_inflicted_delay_ms, 200.0);
}

TEST(FileTraces, CubicFillsTheUnboundedQueue) {
  const ExperimentResult r =
      run_experiment_on_traces(base_config(SchemeId::kCubic));
  EXPECT_GT(r.utilization, 0.9);
  EXPECT_GT(r.self_inflicted_delay_ms, 500.0);
}

TEST(FileTraces, MatchesPresetPathForIdenticalTraces) {
  // run_experiment must be exactly run_experiment_on_traces + preset
  // traces: same seed, same result.
  ExperimentConfig preset;
  preset.scheme = SchemeId::kSproutEwma;
  preset.link = find_link_preset("Verizon LTE", LinkDirection::kDownlink);
  preset.run_time = sec(30);
  preset.warmup = sec(10);
  const ExperimentResult via_preset = run_experiment(preset);

  FileTraceExperimentConfig file;
  file.scheme = SchemeId::kSproutEwma;
  file.forward_trace = preset_trace(preset.link, preset.run_time + sec(2));
  file.reverse_trace = preset_trace(
      find_link_preset("Verizon LTE", LinkDirection::kUplink),
      preset.run_time + sec(2));
  file.run_time = preset.run_time;
  file.warmup = preset.warmup;
  const ExperimentResult via_file = run_experiment_on_traces(file);

  EXPECT_DOUBLE_EQ(via_preset.throughput_kbps, via_file.throughput_kbps);
  EXPECT_DOUBLE_EQ(via_preset.delay95_ms, via_file.delay95_ms);
}

TEST(FileTraces, SurvivesTraceFileRoundTrip) {
  // write_trace_file -> read_trace_file (ms quantization) must preserve
  // the experiment's results exactly for ms-aligned traces.
  const Trace t = isochronous(5, 45);
  const std::string path = "/tmp/sprout_filetrace_test.trace";
  write_trace_file(t, path);
  const Trace reread = read_trace_file(path);
  std::remove(path.c_str());
  ASSERT_EQ(reread.size(), t.size());

  FileTraceExperimentConfig a = base_config(SchemeId::kSprout);
  a.forward_trace = t;
  FileTraceExperimentConfig b = base_config(SchemeId::kSprout);
  b.forward_trace = reread;
  const ExperimentResult ra = run_experiment_on_traces(a);
  const ExperimentResult rb = run_experiment_on_traces(b);
  EXPECT_DOUBLE_EQ(ra.throughput_kbps, rb.throughput_kbps);
}

TEST(FileTraces, PfCellTracesDriveTheFullStack) {
  PfCellParams params;
  params.num_users = 2;
  PfCell cell(params, 5);
  auto traces = cell.run(sec(45));
  FileTraceExperimentConfig c;
  c.scheme = SchemeId::kSprout;
  c.forward_trace = traces[0];
  c.reverse_trace = traces[1];
  c.run_time = sec(40);
  c.warmup = sec(10);
  const ExperimentResult r = run_experiment_on_traces(c);
  EXPECT_GT(r.packets_delivered, 0);
  EXPECT_GE(r.self_inflicted_delay_ms, 0.0);
  EXPECT_LE(r.throughput_kbps, r.capacity_kbps * 1.001);
}

}  // namespace
}  // namespace sprout

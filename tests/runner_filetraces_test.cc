// Tests for the caller-supplied-trace link sources (LinkSpec::traces and
// LinkSpec::trace_files): the drop-in path for real captures, PF-cell
// output, or hand-built fixtures with known-by-construction metrics.
#include <gtest/gtest.h>

#include <cstdio>

#include "link/pf_cell.h"
#include "runner/scenario.h"
#include "trace/presets.h"
#include "trace/trace.h"

namespace sprout {
namespace {

// One opportunity every `gap_ms` for `seconds` — a constant-rate link.
Trace isochronous(std::int64_t gap_ms, int seconds) {
  std::vector<TimePoint> opp;
  for (std::int64_t t = 0; t < seconds * 1000; t += gap_ms) {
    opp.push_back(TimePoint{} + msec(t));
  }
  return Trace(std::move(opp), sec(seconds));
}

ScenarioSpec base_spec(SchemeId scheme) {
  ScenarioSpec c;
  c.scheme = scheme;
  // 500 pkt/s = 6 Mbit/s each way.
  c.link = LinkSpec::traces(isochronous(2, 45), isochronous(2, 45));
  c.run_time = sec(40);
  c.warmup = sec(10);
  return c;
}

TEST(FileTraces, OmniscientSaturatesAConstantLink) {
  const ScenarioResult r = run_scenario(base_spec(SchemeId::kOmniscient));
  EXPECT_GT(r.utilization(), 0.97);
  EXPECT_NEAR(r.capacity_kbps, 6000.0, 60.0);
  EXPECT_NEAR(r.self_inflicted_delay_ms(), 0.0, 5.0);
}

TEST(FileTraces, SproutNearlySaturatesAConstantLink) {
  // On a steady link the cautious forecast converges close to the true
  // rate: most of the caution cost comes from rate *variation*.
  const ScenarioResult r = run_scenario(base_spec(SchemeId::kSprout));
  EXPECT_GT(r.utilization(), 0.6);
  EXPECT_LT(r.self_inflicted_delay_ms(), 200.0);
}

TEST(FileTraces, CubicFillsTheUnboundedQueue) {
  const ScenarioResult r = run_scenario(base_spec(SchemeId::kCubic));
  EXPECT_GT(r.utilization(), 0.9);
  EXPECT_GT(r.self_inflicted_delay_ms(), 500.0);
}

TEST(FileTraces, MatchesPresetPathForIdenticalTraces) {
  // The preset link source must be exactly the trace link source + preset
  // traces: same seed, same result.
  const LinkPreset& down =
      find_link_preset("Verizon LTE", LinkDirection::kDownlink);
  ScenarioSpec preset;
  preset.scheme = SchemeId::kSproutEwma;
  preset.link = LinkSpec::preset(down);
  preset.run_time = sec(30);
  preset.warmup = sec(10);
  const ScenarioResult via_preset = run_scenario(preset);

  ScenarioSpec file = preset;
  file.link = LinkSpec::traces(
      preset_trace(down, preset.run_time + sec(2)),
      preset_trace(find_link_preset("Verizon LTE", LinkDirection::kUplink),
                   preset.run_time + sec(2)));
  const ScenarioResult via_file = run_scenario(file);

  EXPECT_DOUBLE_EQ(via_preset.throughput_kbps(), via_file.throughput_kbps());
  EXPECT_DOUBLE_EQ(via_preset.delay95_ms(), via_file.delay95_ms());
}

TEST(FileTraces, SurvivesTraceFileRoundTrip) {
  // write_trace_file -> LinkSpec::trace_files (ms quantization) must
  // preserve the experiment's results exactly for ms-aligned traces.
  const std::string fwd_path = "/tmp/sprout_filetrace_test_fwd.trace";
  const std::string rev_path = "/tmp/sprout_filetrace_test_rev.trace";
  write_trace_file(isochronous(5, 45), fwd_path);
  write_trace_file(isochronous(2, 45), rev_path);

  ScenarioSpec a = base_spec(SchemeId::kSprout);
  a.link = LinkSpec::traces(read_trace_file(fwd_path),
                            read_trace_file(rev_path));
  ScenarioSpec b = base_spec(SchemeId::kSprout);
  b.link = LinkSpec::trace_files(fwd_path, rev_path);

  const ScenarioResult ra = run_scenario(a);
  const ScenarioResult rb = run_scenario(b);
  std::remove(fwd_path.c_str());
  std::remove(rev_path.c_str());
  EXPECT_DOUBLE_EQ(ra.throughput_kbps(), rb.throughput_kbps());
  EXPECT_DOUBLE_EQ(ra.delay95_ms(), rb.delay95_ms());
}

TEST(FileTraces, PfCellTracesDriveTheFullStack) {
  PfCellParams params;
  params.num_users = 2;
  PfCell cell(params, 5);
  auto traces = cell.run(sec(45));
  ScenarioSpec c;
  c.scheme = SchemeId::kSprout;
  c.link = LinkSpec::traces(traces[0], traces[1]);
  c.run_time = sec(40);
  c.warmup = sec(10);
  const ScenarioResult r = run_scenario(c);
  EXPECT_GT(r.packets_delivered, 0);
  EXPECT_GE(r.self_inflicted_delay_ms(), 0.0);
  EXPECT_LE(r.throughput_kbps(), r.capacity_kbps * 1.001);
}

}  // namespace
}  // namespace sprout

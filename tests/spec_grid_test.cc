#include "spec/grid.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "spec/builtin.h"
#include "spec_test_util.h"

namespace sprout::spec {
namespace {

ExperimentSpec parse(const std::string& text) {
  return parse_experiment_json(text, "test-spec");
}

TEST(SpecGrid, CrossExpansionIsRowMajorFirstAxisOutermost) {
  const ExperimentSpec spec = parse(R"({
    "spec_version": 1,
    "base": {"run_time_s": 100, "warmup_s": 10},
    "axes": [
      {"name": "scheme", "patches": [{"scheme": "Cubic"},
                                     {"scheme": "Vegas"}]},
      {"name": "loss", "patches": [{"loss_rate": 0.0},
                                   {"loss_rate": 0.05},
                                   {"loss_rate": 0.1}]}
    ]
  })");
  ASSERT_EQ(spec.sweep.cells.size(), 6u);
  // cell = scheme_index * 3 + loss_index
  EXPECT_EQ(spec.sweep.cells[0].scheme, SchemeId::kCubic);
  EXPECT_DOUBLE_EQ(spec.sweep.cells[1].loss_rate_fwd, 0.05);
  EXPECT_EQ(spec.sweep.cells[2].scheme, SchemeId::kCubic);
  EXPECT_DOUBLE_EQ(spec.sweep.cells[2].loss_rate_fwd, 0.1);
  EXPECT_EQ(spec.sweep.cells[3].scheme, SchemeId::kVegas);
  EXPECT_DOUBLE_EQ(spec.sweep.cells[3].loss_rate_fwd, 0.0);
  EXPECT_EQ(spec.sweep.cells[5].scheme, SchemeId::kVegas);
  EXPECT_DOUBLE_EQ(spec.sweep.cells[5].loss_rate_fwd, 0.1);
  // Defaults: no name -> "", no plan -> round-robin, no base_seed.
  EXPECT_EQ(spec.strategy, PartitionStrategy::kRoundRobin);
  EXPECT_FALSE(spec.sweep.base_seed.has_value());
}

TEST(SpecGrid, ZipExpansionWalksAxesInLockstep) {
  const ExperimentSpec spec = parse(R"({
    "spec_version": 1,
    "expand": "zip",
    "base": {"run_time_s": 50, "warmup_s": 5},
    "axes": [
      {"name": "scheme", "patches": [{"scheme": "Cubic"},
                                     {"scheme": "Vegas"}]},
      {"name": "seed", "patches": [{"seed": 1}, {"seed": 2}]}
    ]
  })");
  ASSERT_EQ(spec.sweep.cells.size(), 2u);
  EXPECT_EQ(spec.sweep.cells[0].scheme, SchemeId::kCubic);
  EXPECT_EQ(spec.sweep.cells[0].seed, 1u);
  EXPECT_EQ(spec.sweep.cells[1].scheme, SchemeId::kVegas);
  EXPECT_EQ(spec.sweep.cells[1].seed, 2u);
}

TEST(SpecGrid, ZipLengthMismatchIsRejected) {
  expect_spec_error(
      [] {
        (void)parse(R"({
          "spec_version": 1,
          "expand": "zip",
          "base": {},
          "axes": [
            {"name": "a", "patches": [{"seed": 1}, {"seed": 2}]},
            {"name": "b", "patches": [{"loss_rate": 0.1}]}
          ]
        })");
      },
      "zip expansion needs equal-length axes (\"a\" has 2 patches, \"b\" "
      "has 1)");
}

TEST(SpecGrid, OverlappingAxesAreRejected) {
  // Both axes patch the flows array (arrays are replaced wholesale by
  // merge-patch, so they are leaves): in a cross product the second axis
  // would silently overwrite the first in every cell.
  expect_spec_error(
      [] {
        (void)parse(R"({
          "spec_version": 1,
          "base": {},
          "axes": [
            {"name": "rival",
             "patches": [{"topology": {"flows": [{"scheme": "Cubic"}]}}]},
            {"name": "fleet",
             "patches": [{"topology": {"flows": [{"scheme": "Vegas"},
                                                 {"scheme": "Vegas"}]}}]}
          ]
        })");
      },
      "axes: axes \"rival\" and \"fleet\" overlap: both set topology.flows");
  // Distinct leaves of one object do NOT overlap.
  EXPECT_NO_THROW((void)parse(R"({
    "spec_version": 1,
    "base": {"run_time_s": 40, "warmup_s": 4},
    "axes": [
      {"name": "fwd", "patches": [{"loss_rate_fwd": 0.1}]},
      {"name": "rev", "patches": [{"loss_rate_rev": 0.2}]}
    ]
  })"));
}

TEST(SpecGrid, RangeAxisExpandsInclusiveNumericSteps) {
  const ExperimentSpec spec = parse(R"({
    "spec_version": 1,
    "base": {"run_time_s": 100, "warmup_s": 10},
    "axes": [
      {"name": "loss", "range": {"loss_rate": {"from": 0, "to": 0.1,
                                               "step": 0.02}}}
    ]
  })");
  ASSERT_EQ(spec.sweep.cells.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(spec.sweep.cells[i].loss_rate_fwd, 0.02 * i) << i;
    EXPECT_DOUBLE_EQ(spec.sweep.cells[i].loss_rate_rev, 0.02 * i) << i;
  }
}

TEST(SpecGrid, RangeAxisReachesNestedFieldsAndCombinesWithPatchAxes) {
  const ExperimentSpec spec = parse(R"({
    "spec_version": 1,
    "base": {
      "link": {"source": "synth"},
      "run_time_s": 40, "warmup_s": 4
    },
    "axes": [
      {"name": "scheme", "patches": [{"scheme": "Cubic"},
                                     {"scheme": "Vegas"}]},
      {"name": "sigma", "range": {"link": {"forward": {"brownian":
          {"sigma_pps_per_sqrt_s": {"from": 100, "to": 300,
                                    "step": 100}}}}}}
    ]
  })");
  ASSERT_EQ(spec.sweep.cells.size(), 6u);
  EXPECT_EQ(spec.sweep.cells[0].scheme, SchemeId::kCubic);
  EXPECT_EQ(spec.sweep.cells[3].scheme, SchemeId::kVegas);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(
        spec.sweep.cells[i].link.forward_synth.brownian.sigma_pps_per_sqrt_s,
        100.0 * (i % 3) + 100.0)
        << i;
  }
  // Two ranged cells differing only in sigma carry different fingerprints.
  EXPECT_NE(scenario_fingerprint(spec.sweep.cells[0]),
            scenario_fingerprint(spec.sweep.cells[1]));
}

TEST(SpecGrid, RangeAxisMistakesAreRejectedWithPaths) {
  expect_spec_error(
      [] {
        (void)parse(R"({
          "spec_version": 1, "base": {},
          "axes": [{"name": "a",
                    "patches": [{"seed": 1}],
                    "range": {"loss_rate": {"from": 0, "to": 1,
                                            "step": 0.5}}}]
        })");
      },
      "axes[0]: needs exactly one of \"patches\" or \"range\"");
  expect_spec_error(
      [] {
        (void)parse(R"({
          "spec_version": 1, "base": {},
          "axes": [{"name": "a", "range": {"loss_rate": {"from": 0.2,
                                                         "to": 0.1,
                                                         "step": 0.05}}}]
        })");
      },
      "axes[0].range.loss_rate.to: must be >= from");
  expect_spec_error(
      [] {
        (void)parse(R"({
          "spec_version": 1, "base": {},
          "axes": [{"name": "a", "range": {"loss_rate": {"from": 0,
                                                         "to": 0.1,
                                                         "step": 0}}}]
        })");
      },
      "axes[0].range.loss_rate.step: must be > 0");
  expect_spec_error(
      [] {
        (void)parse(R"({
          "spec_version": 1, "base": {},
          "axes": [{"name": "a",
                    "range": {"loss_rate_fwd": {"from": 0, "to": 0.1,
                                                "step": 0.05},
                              "loss_rate_rev": {"from": 0, "to": 0.1,
                                                "step": 0.05}}}]
        })");
      },
      "axes[0].range: sweeps more than one field");
  expect_spec_error(
      [] {
        (void)parse(R"({
          "spec_version": 1, "base": {},
          "axes": [{"name": "a", "range": {"loss_rate": 0.5}}]
        })");
      },
      "range values must be objects");
  // A range axis and a patch axis writing the same field still overlap.
  expect_spec_error(
      [] {
        (void)parse(R"({
          "spec_version": 1, "base": {},
          "axes": [
            {"name": "a", "range": {"loss_rate": {"from": 0, "to": 0.1,
                                                  "step": 0.05}}},
            {"name": "b", "patches": [{"loss_rate": 0.2}]}
          ]
        })");
      },
      "axes \"a\" and \"b\" overlap: both set loss_rate");
}

TEST(SpecGrid, RangeAxesZipInLockstep) {
  const ExperimentSpec spec = parse(R"({
    "spec_version": 1,
    "expand": "zip",
    "base": {"run_time_s": 50, "warmup_s": 5},
    "axes": [
      {"name": "loss", "range": {"loss_rate": {"from": 0, "to": 0.04,
                                               "step": 0.02}}},
      {"name": "seed", "patches": [{"seed": 1}, {"seed": 2}, {"seed": 3}]}
    ]
  })");
  ASSERT_EQ(spec.sweep.cells.size(), 3u);
  EXPECT_DOUBLE_EQ(spec.sweep.cells[2].loss_rate_fwd, 0.04);
  EXPECT_EQ(spec.sweep.cells[2].seed, 3u);
}

TEST(SpecGrid, SpecVersionIsEnforced) {
  expect_spec_error([] { (void)parse(R"({"base": {}})"); },
                    "missing required field \"spec_version\"");
  expect_spec_error(
      [] { (void)parse(R"({"spec_version": 2, "base": {}})"); },
      "spec_version: unsupported spec_version 2 (this build reads 1)");
}

TEST(SpecGrid, ExplicitCellsAndOverrides) {
  const ExperimentSpec spec = parse(R"({
    "spec_version": 1,
    "name": "explicit",
    "base_seed": 99,
    "plan": {"strategy": "lpt"},
    "cells": [
      {"scheme": "Cubic", "run_time_s": 30, "warmup_s": 3},
      {"scheme": "Vegas", "run_time_s": 30, "warmup_s": 3}
    ],
    "cell_overrides": [{"cell": 1, "patch": {"loss_rate": 0.07}}]
  })");
  EXPECT_EQ(spec.name, "explicit");
  EXPECT_EQ(spec.strategy, PartitionStrategy::kLpt);
  ASSERT_TRUE(spec.sweep.base_seed.has_value());
  EXPECT_EQ(*spec.sweep.base_seed, 99u);
  ASSERT_EQ(spec.sweep.cells.size(), 2u);
  EXPECT_DOUBLE_EQ(spec.sweep.cells[0].loss_rate_fwd, 0.0);
  EXPECT_DOUBLE_EQ(spec.sweep.cells[1].loss_rate_fwd, 0.07);
  EXPECT_DOUBLE_EQ(spec.sweep.cells[1].loss_rate_rev, 0.07);

  expect_spec_error(
      [] {
        (void)parse(R"({
          "spec_version": 1,
          "cells": [{"scheme": "Cubic"}],
          "cell_overrides": [{"cell": 5, "patch": {}}]
        })");
      },
      "cell_overrides[0].cell: cell 5 outside the expanded grid of 1 cells");
  expect_spec_error(
      [] {
        (void)parse(R"({"spec_version": 1, "cells": [{}], "base": {}})");
      },
      "cells: an explicit cell list cannot be combined with \"base\"");
}

TEST(SpecGrid, ExpansionErrorsCarryTheCellIndex) {
  // The base parses alone; only cell 1's patch makes it invalid — the
  // error must say which expanded cell broke, then the field inside it.
  expect_spec_error(
      [] {
        (void)parse(R"({
          "spec_version": 1,
          "base": {"run_time_s": 50, "warmup_s": 5},
          "axes": [{"name": "s", "patches": [{"scheme": "Cubic"},
                                             {"scheme": "nope"}]}]
        })");
      },
      "cells[1].scheme: unknown scheme \"nope\"");
}

// The acceptance lock: the checked-in example spec and the compiled-in
// grid it mirrors must expand to the same content address, cell for cell.
TEST(SpecGrid, CheckedInSpecMatchesCompiledGrid) {
  const std::string path =
      std::string(SPROUT_SOURCE_DIR) + "/specs/coexistence_smoke.json";
  std::ifstream in(path);
  ASSERT_TRUE(in) << "cannot read " << path;
  std::ostringstream text;
  text << in.rdbuf();
  const ExperimentSpec from_file = parse_experiment_json(text.str(), path);

  BuiltinGridOptions options;
  options.seconds = 10;
  options.base_seed = 42;
  const SweepSpec compiled = build_builtin_grid("coexistence-smoke", options);

  ASSERT_EQ(from_file.sweep.cells.size(), compiled.cells.size());
  for (std::size_t i = 0; i < compiled.cells.size(); ++i) {
    EXPECT_EQ(scenario_fingerprint(from_file.sweep.cells[i]),
              scenario_fingerprint(compiled.cells[i]))
        << "cell " << i;
  }
  EXPECT_EQ(sweep_fingerprint(from_file.sweep), sweep_fingerprint(compiled));
  EXPECT_EQ(from_file.name, "coexistence-smoke");
  EXPECT_EQ(from_file.strategy, PartitionStrategy::kLpt);
}

// Dump -> parse is fingerprint-preserving for every compiled grid, so any
// grid can be exported to a spec file and rerun without drift.
TEST(SpecGrid, DumpedBuiltinGridsReparseIdentically) {
  for (const std::string& name : builtin_grid_names()) {
    BuiltinGridOptions options;
    options.seconds = 12;
    options.base_seed = 7;
    ExperimentSpec experiment;
    experiment.name = name;
    experiment.sweep = build_builtin_grid(name, options);

    std::ostringstream os;
    write_experiment_json(os, experiment);
    const ExperimentSpec back = parse_experiment_json(os.str(), name);
    EXPECT_EQ(sweep_fingerprint(back.sweep),
              sweep_fingerprint(experiment.sweep))
        << name << ":\n" << os.str();
    ASSERT_TRUE(back.sweep.base_seed.has_value());
    EXPECT_EQ(*back.sweep.base_seed, 7u);
  }
}

}  // namespace
}  // namespace sprout::spec

#include "core/wire.h"

#include <gtest/gtest.h>

#include <limits>

#include "util/rng.h"

namespace sprout {
namespace {

SproutWireMessage sample_message() {
  SproutWireMessage msg;
  msg.header.seqno = 123456789;
  msg.header.payload_bytes = 1404;
  msg.header.throwaway = 123000000;
  msg.header.time_to_next_us = 20000;
  msg.header.flags = SproutHeader::kFlagHeartbeat | SproutHeader::kFlagSenderLimited;
  ForecastBlock f;
  f.received_or_lost_bytes = 987654321;
  f.origin_us = 55'000'000;
  f.tick_us = 20000;
  f.cumulative_bytes = {1500, 3000, 4500, 6000, 9000, 9000, 10500, 12000};
  msg.forecast = std::move(f);
  return msg;
}

TEST(Wire, RoundTripWithForecast) {
  const SproutWireMessage msg = sample_message();
  const auto bytes = serialize(msg);
  EXPECT_EQ(static_cast<ByteCount>(bytes.size()), serialized_size(msg));
  const auto parsed = parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.seqno, msg.header.seqno);
  EXPECT_EQ(parsed->header.payload_bytes, msg.header.payload_bytes);
  EXPECT_EQ(parsed->header.throwaway, msg.header.throwaway);
  EXPECT_EQ(parsed->header.time_to_next_us, msg.header.time_to_next_us);
  EXPECT_TRUE(parsed->header.flags & SproutHeader::kFlagHeartbeat);
  EXPECT_TRUE(parsed->header.flags & SproutHeader::kFlagSenderLimited);
  ASSERT_TRUE(parsed->forecast.has_value());
  EXPECT_EQ(parsed->forecast->received_or_lost_bytes, 987654321);
  EXPECT_EQ(parsed->forecast->origin_us, 55'000'000);
  EXPECT_EQ(parsed->forecast->cumulative_bytes,
            msg.forecast->cumulative_bytes);
}

TEST(Wire, RoundTripWithoutForecast) {
  SproutWireMessage msg;
  msg.header.seqno = 42;
  msg.header.payload_bytes = 0;
  const auto bytes = serialize(msg);
  const auto parsed = parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->forecast.has_value());
  EXPECT_EQ(parsed->header.seqno, 42);
}

TEST(Wire, ForecastFlagManagedBySerializer) {
  SproutWireMessage msg;
  msg.header.flags = SproutHeader::kFlagHasForecast;  // lies: no block
  const auto bytes = serialize(msg);
  const auto parsed = parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->forecast.has_value());
}

TEST(Wire, RejectsBadMagicAndVersion) {
  auto bytes = serialize(sample_message());
  auto bad_magic = bytes;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(parse(bad_magic).has_value());
  auto bad_version = bytes;
  bad_version[4] = 99;
  EXPECT_FALSE(parse(bad_version).has_value());
}

TEST(Wire, RejectsTruncationAtEveryLength) {
  const auto bytes = serialize(sample_message());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const auto parsed = parse(std::span(bytes.data(), len));
    EXPECT_FALSE(parsed.has_value()) << "length " << len;
  }
}

TEST(Wire, RejectsNegativePayload) {
  auto bytes = serialize(sample_message());
  // payload_bytes is at offset 4+1+1+8 = 14, little endian i32.
  bytes[14] = 0xff;
  bytes[15] = 0xff;
  bytes[16] = 0xff;
  bytes[17] = 0xff;  // -1
  EXPECT_FALSE(parse(bytes).has_value());
}

TEST(Wire, RejectsDecreasingForecast) {
  SproutWireMessage msg = sample_message();
  msg.forecast->cumulative_bytes = {3000, 1500};
  const auto bytes = serialize(msg);
  EXPECT_FALSE(parse(bytes).has_value());
}

TEST(Wire, EmptyForecastBlockIsValid) {
  SproutWireMessage msg = sample_message();
  msg.forecast->cumulative_bytes.clear();
  const auto parsed = parse(serialize(msg));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->forecast.has_value());
  EXPECT_TRUE(parsed->forecast->cumulative_bytes.empty());
}

TEST(Wire, FuzzRandomBytesNeverCrash) {
  Rng rng(2024);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> junk(
        static_cast<std::size_t>(rng.uniform_int(0, 120)));
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    (void)parse(junk);  // must not crash or UB; result irrelevant
  }
  SUCCEED();
}

TEST(Wire, FuzzBitFlipsNeverCrash) {
  Rng rng(7);
  const auto good = serialize(sample_message());
  for (int trial = 0; trial < 2000; ++trial) {
    auto bytes = good;
    const auto idx = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
    bytes[idx] ^= static_cast<std::uint8_t>(1 << rng.uniform_int(0, 7));
    const auto parsed = parse(bytes);
    if (parsed.has_value() && parsed->forecast.has_value()) {
      // Whatever parsed must still satisfy the invariant.
      const auto& c = parsed->forecast->cumulative_bytes;
      for (std::size_t i = 1; i < c.size(); ++i) EXPECT_GE(c[i], c[i - 1]);
    }
  }
}

TEST(Wire, FuzzRandomizedRoundTripIsIdentity) {
  // Property: encode∘decode is the identity on every well-formed message,
  // across randomized field values including extremes.
  Rng rng(13);
  for (int trial = 0; trial < 3000; ++trial) {
    SproutWireMessage msg;
    msg.header.flags = rng.bernoulli(0.3) ? SproutHeader::kFlagHeartbeat : 0;
    if (rng.bernoulli(0.3)) msg.header.flags |= SproutHeader::kFlagSenderLimited;
    msg.header.seqno = rng.bernoulli(0.1)
                           ? std::numeric_limits<std::int64_t>::max()
                           : rng.uniform_int(0, 1'000'000'000);
    msg.header.payload_bytes = static_cast<std::int32_t>(
        rng.bernoulli(0.1) ? 0 : rng.uniform_int(0, 1500));
    msg.header.throwaway = rng.uniform_int(0, 1'000'000'000);
    msg.header.time_to_next_us = static_cast<std::uint32_t>(
        rng.bernoulli(0.1) ? 0xffffffffu : rng.uniform_int(0, 1'000'000));
    if (rng.bernoulli(0.7)) {
      ForecastBlock f;
      f.received_or_lost_bytes = rng.uniform_int(0, 1'000'000'000);
      f.origin_us = rng.uniform_int(0, 1'000'000'000);
      f.tick_us = static_cast<std::uint32_t>(rng.uniform_int(1, 100'000));
      const int n = static_cast<int>(rng.uniform_int(0, 16));
      std::uint32_t cum = 0;
      for (int i = 0; i < n; ++i) {
        cum += static_cast<std::uint32_t>(rng.uniform_int(0, 100'000));
        f.cumulative_bytes.push_back(cum);
      }
      msg.forecast = std::move(f);
    }

    const auto bytes = serialize(msg);
    ASSERT_EQ(static_cast<ByteCount>(bytes.size()), serialized_size(msg));
    const auto parsed = parse(bytes);
    ASSERT_TRUE(parsed.has_value()) << "trial " << trial;
    EXPECT_EQ(parsed->header.seqno, msg.header.seqno);
    EXPECT_EQ(parsed->header.payload_bytes, msg.header.payload_bytes);
    EXPECT_EQ(parsed->header.throwaway, msg.header.throwaway);
    EXPECT_EQ(parsed->header.time_to_next_us, msg.header.time_to_next_us);
    EXPECT_EQ(parsed->header.flags & SproutHeader::kFlagHeartbeat,
              msg.header.flags & SproutHeader::kFlagHeartbeat);
    EXPECT_EQ(parsed->header.flags & SproutHeader::kFlagSenderLimited,
              msg.header.flags & SproutHeader::kFlagSenderLimited);
    ASSERT_EQ(parsed->forecast.has_value(), msg.forecast.has_value());
    if (msg.forecast.has_value()) {
      EXPECT_EQ(parsed->forecast->received_or_lost_bytes,
                msg.forecast->received_or_lost_bytes);
      EXPECT_EQ(parsed->forecast->origin_us, msg.forecast->origin_us);
      EXPECT_EQ(parsed->forecast->tick_us, msg.forecast->tick_us);
      EXPECT_EQ(parsed->forecast->cumulative_bytes,
                msg.forecast->cumulative_bytes);
    }
  }
}

TEST(Wire, FuzzTrailingPaddingIsIgnored) {
  // The real-UDP endpoint pads datagrams to the wire size; parse must read
  // the same message regardless of padding length.
  Rng rng(17);
  const SproutWireMessage msg = sample_message();
  const auto base = serialize(msg);
  for (int pad = 0; pad < 64; ++pad) {
    auto bytes = base;
    for (int i = 0; i < pad; ++i) {
      bytes.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
    }
    const auto parsed = parse(bytes);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->header.seqno, msg.header.seqno);
  }
}

}  // namespace
}  // namespace sprout

#include "trace/trace.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace sprout {
namespace {

Trace make_trace(std::initializer_list<std::int64_t> ms, std::int64_t dur_ms) {
  std::vector<TimePoint> opp;
  for (std::int64_t m : ms) opp.push_back(TimePoint{} + msec(m));
  return Trace{std::move(opp), msec(dur_ms)};
}

TEST(Trace, BasicAccessors) {
  const Trace t = make_trace({10, 20, 50}, 100);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_FALSE(t.empty());
  EXPECT_EQ(t.duration(), msec(100));
}

TEST(Trace, AverageRate) {
  // 3 MTU in 100 ms = 30 MTU/s = 30*12000 bits/s = 360 kbps.
  const Trace t = make_trace({10, 20, 50}, 100);
  EXPECT_NEAR(t.average_rate_kbps(), 360.0, 1e-9);
}

TEST(Trace, OpportunityWrapsAround) {
  const Trace t = make_trace({10, 20, 50}, 100);
  EXPECT_EQ(t.opportunity(0), TimePoint{} + msec(10));
  EXPECT_EQ(t.opportunity(2), TimePoint{} + msec(50));
  // Second period: shifted by the duration.
  EXPECT_EQ(t.opportunity(3), TimePoint{} + msec(110));
  EXPECT_EQ(t.opportunity(5), TimePoint{} + msec(150));
  EXPECT_EQ(t.opportunity(7), TimePoint{} + msec(220));
}

TEST(Trace, DeliverableBytesWithinOnePeriod) {
  const Trace t = make_trace({10, 20, 50}, 100);
  EXPECT_EQ(t.deliverable_bytes(TimePoint{}, TimePoint{} + msec(100)),
            3 * kMtuBytes);
  EXPECT_EQ(t.deliverable_bytes(TimePoint{} + msec(15), TimePoint{} + msec(30)),
            1 * kMtuBytes);
  EXPECT_EQ(t.deliverable_bytes(TimePoint{} + msec(60), TimePoint{} + msec(90)),
            0);
}

TEST(Trace, DeliverableBytesAcrossPeriods) {
  const Trace t = make_trace({10, 20, 50}, 100);
  // Two full periods.
  EXPECT_EQ(t.deliverable_bytes(TimePoint{}, TimePoint{} + msec(200)),
            6 * kMtuBytes);
  // From 60 ms to 130 ms: nothing in [60,100), then 10,20 of next period.
  EXPECT_EQ(t.deliverable_bytes(TimePoint{} + msec(60), TimePoint{} + msec(130)),
            2 * kMtuBytes);
}

TEST(Trace, Interarrivals) {
  const Trace t = make_trace({10, 20, 50}, 100);
  const auto gaps = t.interarrivals();
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_EQ(gaps[0], msec(10));
  EXPECT_EQ(gaps[1], msec(30));
}

TEST(TraceFile, RoundTrip) {
  const Trace t = make_trace({0, 3, 3, 7, 1500}, 1501);
  const std::string path = ::testing::TempDir() + "/trace_roundtrip.txt";
  write_trace_file(t, path);
  const Trace back = read_trace_file(path);
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(back.opportunities()[i], t.opportunities()[i]);
  }
  std::remove(path.c_str());
}

TEST(TraceFile, RepeatedTimestampsAreMultipleOpportunities) {
  const std::string path = ::testing::TempDir() + "/trace_repeat.txt";
  {
    std::ofstream out(path);
    out << "5\n5\n5\n9\n";
  }
  const Trace t = read_trace_file(path);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.opportunities()[0], t.opportunities()[2]);
  std::remove(path.c_str());
}

TEST(TraceFile, RejectsUnsortedInput) {
  const std::string path = ::testing::TempDir() + "/trace_unsorted.txt";
  {
    std::ofstream out(path);
    out << "10\n5\n";
  }
  EXPECT_THROW(read_trace_file(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceFile, RejectsMissingAndEmpty) {
  EXPECT_THROW(read_trace_file("/nonexistent/trace.txt"), std::runtime_error);
  const std::string path = ::testing::TempDir() + "/trace_empty.txt";
  { std::ofstream out(path); }
  EXPECT_THROW(read_trace_file(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sprout

// DelayHistogram: the streaming quantile substrate under tower population
// metrics.  The contract under test: percentiles land within one bin width
// ABOVE the exact sorted-sample quantile (never below), merging is exact,
// and serialization round-trips through from_parts.
#include "metrics/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace sprout {
namespace {

// Exact nearest-rank quantile of a sorted sample, in ms.
double exact_quantile_ms(std::vector<double> sorted_ms, double pct) {
  const auto n = static_cast<double>(sorted_ms.size());
  const auto rank = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(pct / 100.0 * n)));
  return sorted_ms[rank - 1];
}

TEST(DelayHistogram, DefaultIsUnconfigured) {
  DelayHistogram h;
  EXPECT_FALSE(h.configured());
  EXPECT_TRUE(h.empty());
  EXPECT_THROW(h.add(msec(5)), std::logic_error);
}

TEST(DelayHistogram, RejectsBadGeometry) {
  EXPECT_THROW(DelayHistogram(Duration::zero(), sec(1)),
               std::invalid_argument);
  EXPECT_THROW(DelayHistogram(msec(10), msec(5)), std::invalid_argument);
}

TEST(DelayHistogram, PercentilesWithinOneBinOfExactQuantiles) {
  // A lognormal-ish delay population, the shape real per-packet delays
  // take: bulk around 40-80 ms with a long tail.
  Rng rng(7);
  std::vector<double> samples_ms;
  DelayHistogram h(msec(5), sec(20));
  for (int i = 0; i < 200'000; ++i) {
    const double ms = std::min(19'000.0, 40.0 * std::exp(rng.normal(0.0, 0.8)));
    const Duration d = from_seconds(ms / 1000.0);
    samples_ms.push_back(to_millis(d));  // compare against what was added
    h.add(d);
  }
  std::sort(samples_ms.begin(), samples_ms.end());
  for (const double pct : {50.0, 95.0, 99.0, 99.9}) {
    const double exact = exact_quantile_ms(samples_ms, pct);
    const double approx = h.percentile_ms(pct);
    // Never under-reports, and overshoots by at most one bin width.
    EXPECT_GE(approx, exact) << "p" << pct;
    EXPECT_LE(approx, exact + h.bin_width_ms() + 1e-9) << "p" << pct;
  }
  EXPECT_EQ(h.samples(), 200'000);
}

TEST(DelayHistogram, RejectsOutOfRangePercentile) {
  DelayHistogram h(msec(10), sec(1));
  h.add(msec(25));
  // An out-of-range pct used to come back as a plausible delay (0 ms or
  // the overflow sentinel); it must fail at the call site instead.
  EXPECT_THROW((void)h.percentile_ms(0.0), std::invalid_argument);
  EXPECT_THROW((void)h.percentile_ms(-5.0), std::invalid_argument);
  EXPECT_THROW((void)h.percentile_ms(100.1), std::invalid_argument);
  const double nan = std::nan("");
  EXPECT_THROW((void)h.percentile_ms(nan), std::invalid_argument);
  // Both boundaries of (0, 100] are usable.
  EXPECT_DOUBLE_EQ(h.percentile_ms(100.0), 30.0);
  EXPECT_GT(h.percentile_ms(0.001), 0.0);
}

TEST(DelayHistogram, EmptyHistogramIsExplicitlyEmptyNotZeroDelay) {
  DelayHistogram h(msec(10), sec(1));
  // percentile_ms(50) == 0.0 on an empty CDF is a sentinel, not a real
  // 0 ms percentile; the distinction is carried by samples == 0, which
  // golden comparisons must check before trusting any quantile.
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.percentile_ms(50.0), 0.0);
  const DelayStats s = h.stats();
  EXPECT_EQ(s.samples, 0);
  h.add(msec(1));
  EXPECT_EQ(h.stats().samples, 1);
}

TEST(DelayHistogram, MeanIsExactNotBinned) {
  DelayHistogram h(msec(100), sec(1));
  h.add(msec(1));
  h.add(msec(2));
  h.add(msec(6));
  EXPECT_DOUBLE_EQ(h.mean_ms(), 3.0);
}

TEST(DelayHistogram, OverflowBinReportsSentinelAboveMax) {
  DelayHistogram h(msec(10), msec(100));
  h.add(sec(5));  // far past max
  EXPECT_DOUBLE_EQ(h.percentile_ms(50.0), h.max_ms() + h.bin_width_ms());
}

TEST(DelayHistogram, MergeIsExactAndCommutative) {
  Rng rng(21);
  DelayHistogram a(msec(5), sec(20));
  DelayHistogram b(msec(5), sec(20));
  DelayHistogram all(msec(5), sec(20));
  for (int i = 0; i < 5'000; ++i) {
    const Duration d = msec(rng.uniform_int(0, 25'000));
    (i % 2 == 0 ? a : b).add(d);
    all.add(d);
  }
  DelayHistogram ab = a;
  ab.merge(b);
  DelayHistogram ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.counts(), all.counts());
  EXPECT_EQ(ba.counts(), all.counts());
  EXPECT_DOUBLE_EQ(ab.sum_ms(), ba.sum_ms());
  EXPECT_EQ(ab.samples(), all.samples());
}

TEST(DelayHistogram, MergeIntoUnconfiguredAdopts) {
  DelayHistogram a(msec(5), sec(20));
  a.add(msec(42));
  DelayHistogram pop;  // how ScenarioResult accumulates users
  pop.merge(a);
  EXPECT_TRUE(pop.configured());
  EXPECT_EQ(pop.samples(), 1);
}

TEST(DelayHistogram, MergeRejectsMismatchedGeometry) {
  DelayHistogram a(msec(5), sec(20));
  DelayHistogram b(msec(10), sec(20));
  a.add(msec(1));
  b.add(msec(1));
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(DelayHistogram, OverflowCountsSurviveMergeExactly) {
  // Overflow samples are the tail that matters most (a tower cell in an
  // outage); merge must carry the overflow bin like any other, not clamp
  // or drop it.
  DelayHistogram a(msec(10), msec(100));
  DelayHistogram b(msec(10), msec(100));
  for (int i = 0; i < 7; ++i) a.add(sec(2));   // 7 overflows
  for (int i = 0; i < 11; ++i) b.add(sec(9));  // 11 overflows
  a.add(msec(42));                             // one in-range sample
  DelayHistogram ab = a;
  ab.merge(b);
  EXPECT_EQ(ab.counts().back(), 18);
  EXPECT_EQ(ab.samples(), 19);
  // The exact sum survives too: overflow samples keep their real values
  // in the mean even though the bins cap their percentile resolution.
  EXPECT_DOUBLE_EQ(ab.sum_ms(), 7 * 2000.0 + 11 * 9000.0 + 42.0);
}

TEST(DelayHistogram, PercentilesOverOverflowNeverUnderReport) {
  // 10 in-range samples at 5 ms plus 10 overflows: every percentile that
  // lands in the overflow bin must report the max+bin sentinel — an
  // UNDER-estimate of a tail delay would fabricate a good result.
  DelayHistogram h(msec(10), msec(100));
  for (int i = 0; i < 10; ++i) h.add(msec(5));
  for (int i = 0; i < 10; ++i) h.add(sec(3));
  const double sentinel = h.max_ms() + h.bin_width_ms();
  EXPECT_DOUBLE_EQ(h.percentile_ms(50.0), 10.0);  // in-range bin edge
  for (const double pct : {50.1, 75.0, 95.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.percentile_ms(pct), sentinel) << "p" << pct;
    EXPECT_GE(h.percentile_ms(pct), h.max_ms()) << "p" << pct;
  }
}

TEST(DelayHistogram, FromPartsCarriesOverflow) {
  // The shard JSON roundtrip writes sparse [bin, count] pairs; the
  // overflow bin is counts().back() and must survive from_parts intact.
  DelayHistogram h(msec(10), msec(100));
  h.add(msec(15));
  h.add(sec(1));
  h.add(sec(2));
  const DelayHistogram back = DelayHistogram::from_parts(
      h.bin_width_ms(), h.max_ms(), h.sum_ms(), h.counts());
  EXPECT_EQ(back.counts().back(), 2);
  EXPECT_EQ(back.counts(), h.counts());
  EXPECT_DOUBLE_EQ(back.percentile_ms(99.0),
                   back.max_ms() + back.bin_width_ms());
  EXPECT_DOUBLE_EQ(back.mean_ms(), h.mean_ms());
}

TEST(DelayHistogram, FromPartsRoundTrips) {
  DelayHistogram h(msec(5), sec(20));
  Rng rng(3);
  for (int i = 0; i < 1'000; ++i) h.add(msec(rng.uniform_int(0, 30'000)));
  const DelayHistogram back = DelayHistogram::from_parts(
      h.bin_width_ms(), h.max_ms(), h.sum_ms(), h.counts());
  EXPECT_EQ(back.counts(), h.counts());
  EXPECT_EQ(back.samples(), h.samples());
  EXPECT_DOUBLE_EQ(back.percentile_ms(99.0), h.percentile_ms(99.0));
  EXPECT_DOUBLE_EQ(back.mean_ms(), h.mean_ms());
}

}  // namespace
}  // namespace sprout

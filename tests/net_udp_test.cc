// Tests for the real-UDP layer (net/): socket wrapper, event loop, and a
// full Sprout session over loopback.  Everything runs against 127.0.0.1
// with ephemeral ports — no network access, no fixed ports, safe in CI.
#include <gtest/gtest.h>

#include <atomic>

#include "net/event_loop.h"
#include "net/udp_endpoint.h"
#include "net/udp_socket.h"

namespace sprout::net {
namespace {

// ----------------------------------------------------------------- socket

TEST(SocketAddress, ParsesAndPrints) {
  const SocketAddress a = SocketAddress::v4("127.0.0.1", 9000);
  EXPECT_EQ(a.to_string(), "127.0.0.1:9000");
  EXPECT_EQ(a.ip, 0x7f000001u);
}

TEST(SocketAddress, RejectsGarbage) {
  EXPECT_THROW(SocketAddress::v4("not-an-ip", 1), std::invalid_argument);
  EXPECT_THROW(SocketAddress::v4("300.1.1.1", 1), std::invalid_argument);
}

TEST(UdpSocket, BindsEphemeralLoopbackPort) {
  UdpSocket s;
  s.bind_loopback();
  EXPECT_GT(s.local_port(), 0);
}

TEST(UdpSocket, RoundTripsADatagram) {
  UdpSocket a;
  UdpSocket b;
  a.bind_loopback();
  b.bind_loopback();
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const SocketAddress to = SocketAddress::v4("127.0.0.1", b.local_port());
  EXPECT_EQ(a.send_to(payload, to), payload.size());
  // Loopback delivery is immediate but allow a few polls for scheduling.
  std::optional<Datagram> got;
  for (int i = 0; i < 1000 && !got; ++i) got = b.receive();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->data, payload);
  EXPECT_EQ(got->from.port, a.local_port());
}

TEST(UdpSocket, ReceiveIsNonBlocking) {
  UdpSocket s;
  s.bind_loopback();
  EXPECT_FALSE(s.receive().has_value());
}

TEST(UdpSocket, MoveTransfersOwnership) {
  UdpSocket a;
  a.bind_loopback();
  const std::uint16_t port = a.local_port();
  UdpSocket b = std::move(a);
  EXPECT_EQ(b.local_port(), port);
}

// ------------------------------------------------------------- event loop

TEST(EventLoop, NowStartsNearZeroAndAdvances) {
  EventLoop loop;
  const TimePoint t0 = loop.now();
  EXPECT_LT(to_millis(t0.time_since_epoch()), 1000.0);
  loop.run_for(msec(20));
  EXPECT_GT(loop.now(), t0);
}

TEST(EventLoop, FiresTimersInOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_after(msec(30), [&] { order.push_back(3); });
  loop.schedule_after(msec(10), [&] { order.push_back(1); });
  loop.schedule_after(msec(20), [&] { order.push_back(2); });
  loop.run_for(msec(100));
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, CancelledTimerDoesNotFire) {
  EventLoop loop;
  bool fired = false;
  const EventLoop::TimerId id =
      loop.schedule_after(msec(10), [&] { fired = true; });
  loop.cancel(id);
  loop.run_for(msec(50));
  EXPECT_FALSE(fired);
}

TEST(EventLoop, StopBreaksRun) {
  EventLoop loop;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count >= 3) {
      loop.stop();
    } else {
      loop.schedule_after(msec(1), tick);
    }
  };
  loop.schedule_after(msec(1), tick);
  loop.run();  // must return because of stop()
  EXPECT_EQ(count, 3);
}

TEST(EventLoop, WatchesReadableFd) {
  EventLoop loop;
  UdpSocket rx;
  rx.bind_loopback();
  UdpSocket tx;
  tx.bind_loopback();
  int reads = 0;
  loop.watch_readable(rx.fd(), [&] {
    while (rx.receive().has_value()) ++reads;
  });
  const std::vector<std::uint8_t> data = {42};
  tx.send_to(data, SocketAddress::v4("127.0.0.1", rx.local_port()));
  loop.run_for(msec(100));
  EXPECT_EQ(reads, 1);
}

// --------------------------------------------- Sprout session over UDP

// A bulk transfer between two real endpoints over loopback.  Loopback has
// effectively infinite capacity, so the protocol should ramp up and move
// real bytes; this validates the whole real-time stack (ticks from the
// event loop, wire format over datagrams, forecast feedback loop).
TEST(SproutOverUdp, MovesBulkDataAcrossLoopback) {
  EventLoop loop;
  SproutParams params;
  BulkDataSource bulk;
  SproutUdpEndpoint sender_ep(loop, params, &bulk);
  SproutUdpEndpoint receiver_ep(loop, params, nullptr);
  sender_ep.set_peer(SocketAddress::v4("127.0.0.1", receiver_ep.local_port()));
  receiver_ep.set_peer(SocketAddress::v4("127.0.0.1", sender_ep.local_port()));
  sender_ep.start();
  receiver_ep.start();

  loop.run_for(sec(3));

  EXPECT_GT(receiver_ep.datagrams_received(), 50);
  EXPECT_GT(sender_ep.datagrams_received(), 50);  // feedback flowed back
  EXPECT_GT(receiver_ep.payload_bytes_received(), 100'000);
  EXPECT_EQ(receiver_ep.malformed_datagrams(), 0);
  EXPECT_EQ(sender_ep.malformed_datagrams(), 0);
}

TEST(SproutOverUdp, IdleSessionExchangesHeartbeats) {
  EventLoop loop;
  SproutParams params;
  SproutUdpEndpoint a(loop, params, nullptr);  // no data source: idle
  SproutUdpEndpoint b(loop, params, nullptr);
  a.set_peer(SocketAddress::v4("127.0.0.1", b.local_port()));
  b.set_peer(SocketAddress::v4("127.0.0.1", a.local_port()));
  a.start();
  b.start();

  loop.run_for(msec(800));

  // ~40 ticks: both sides heartbeat (keeping the filters fed, §3.2).
  EXPECT_GT(a.datagrams_received(), 10);
  EXPECT_GT(b.datagrams_received(), 10);
  EXPECT_EQ(a.payload_bytes_received(), 0);
}

TEST(SproutOverUdp, ForeignDatagramsAreRejected) {
  EventLoop loop;
  SproutParams params;
  SproutUdpEndpoint a(loop, params, nullptr);
  SproutUdpEndpoint b(loop, params, nullptr);
  a.set_peer(SocketAddress::v4("127.0.0.1", b.local_port()));
  b.set_peer(SocketAddress::v4("127.0.0.1", a.local_port()));
  a.start();
  b.start();

  // An interloper spams one of the endpoints.
  UdpSocket stranger;
  stranger.bind_loopback();
  const std::vector<std::uint8_t> junk = {0xde, 0xad, 0xbe, 0xef};
  stranger.send_to(junk, SocketAddress::v4("127.0.0.1", a.local_port()));

  loop.run_for(msec(300));
  EXPECT_GE(a.foreign_datagrams(), 1);
  EXPECT_EQ(a.malformed_datagrams(), 0);  // rejected before parsing
}

TEST(SproutOverUdp, MalformedDatagramFromPeerPortIsCounted) {
  EventLoop loop;
  SproutParams params;
  SproutUdpEndpoint a(loop, params, nullptr);
  // The "peer" is a raw socket sending garbage from the expected port.
  UdpSocket fake_peer;
  fake_peer.bind_loopback();
  a.set_peer(SocketAddress::v4("127.0.0.1", fake_peer.local_port()));
  a.start();
  const std::vector<std::uint8_t> junk(20, 0xff);
  fake_peer.send_to(junk, SocketAddress::v4("127.0.0.1", a.local_port()));
  loop.run_for(msec(200));
  EXPECT_EQ(a.malformed_datagrams(), 1);
}

}  // namespace
}  // namespace sprout::net

// The fault-tolerant orchestrator's spine: orchestrated (crashed, hung,
// halted, resumed) == serial, byte for byte — plus the journal fault
// paths that keep a resume honest (truncated tails, duplicate records,
// foreign grids, poisoned cells), mirroring the merge_shards suite.
#include "runner/orchestrator.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "runner/scenario.h"
#include "util/table.h"

namespace sprout {
namespace {

namespace fs = std::filesystem;

ScenarioSpec short_cell(SchemeId scheme, const char* network, int seconds) {
  ScenarioSpec spec;
  spec.scheme = scheme;
  spec.link = LinkSpec::preset(network, LinkDirection::kDownlink);
  spec.run_time = sec(seconds);
  spec.warmup = sec(2);
  return spec;
}

// Three cheap cells with unequal costs, so the longest-first queue and
// the retry machinery both have something to chew on.
SweepSpec tiny_grid() {
  SweepSpec sweep;
  sweep.cells.push_back(short_cell(SchemeId::kCubic, "Verizon LTE", 10));
  sweep.cells.push_back(short_cell(SchemeId::kVegas, "AT&T LTE", 6));
  sweep.cells.push_back(short_cell(SchemeId::kCubic, "AT&T LTE", 6));
  sweep.base_seed = 0xabad1dea;
  return sweep;
}

std::string sweep_bytes(const SweepResult& sweep) {
  std::ostringstream os;
  write_sweep_json(os, sweep);
  return os.str();
}

// A fresh journal dir per test; gtest's TempDir persists across tests in
// one binary run, so stale journals must be scrubbed, not assumed away.
std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "orch_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

OrchestratorOptions quiet_options(const std::string& dir) {
  OrchestratorOptions options;
  options.journal_dir = dir;
  options.workers = 2;
  options.retry_backoff_s = 0.0;
  options.progress = false;
  return options;
}

// The complete journal text a finished single-slot run would leave.
std::string journal_text(const SweepSpec& grid) {
  const ShardResult shard =
      run_shard(grid, {0, 1, 2}, /*threads=*/1);
  std::ostringstream os;
  write_journal_header(os, grid, 0);
  for (std::size_t k = 0; k < shard.cell_indices.size(); ++k) {
    JournalRecord record;
    record.index = shard.cell_indices[k];
    record.fingerprint = shard.cell_fingerprints[k];
    record.result = shard.cells[k];
    write_journal_record(os, record);
  }
  return os.str();
}

TEST(Orchestrator, MatchesSerialByteForByte) {
  const SweepSpec grid = tiny_grid();
  const OrchestrateOutcome outcome =
      orchestrate_sweep(grid, quiet_options(fresh_dir("serial")));
  ASSERT_TRUE(outcome.complete);
  EXPECT_EQ(outcome.executed_cells, 3u);
  EXPECT_EQ(outcome.resumed_cells, 0u);
  EXPECT_TRUE(outcome.poisoned.empty());
  EXPECT_EQ(sweep_bytes(outcome.merged), sweep_bytes(run_sweep(grid)));
}

TEST(Orchestrator, HaltThenResumeMatchesSerial) {
  const SweepSpec grid = tiny_grid();
  const std::string dir = fresh_dir("halt");
  OrchestratorOptions options = quiet_options(dir);
  options.halt_after_cells = 1;  // simulated kill -9 of the whole job
  const OrchestrateOutcome first = orchestrate_sweep(grid, options);
  EXPECT_TRUE(first.halted);
  EXPECT_FALSE(first.complete);

  const OrchestrateOutcome resumed =
      orchestrate_sweep(grid, quiet_options(dir));
  ASSERT_TRUE(resumed.complete);
  EXPECT_GE(resumed.resumed_cells, 1u);
  EXPECT_EQ(resumed.resumed_cells + resumed.executed_cells, 3u);
  EXPECT_EQ(sweep_bytes(resumed.merged), sweep_bytes(run_sweep(grid)));
}

TEST(Orchestrator, CrashedCellIsRetriedThenSucceeds) {
  const SweepSpec grid = tiny_grid();
  OrchestratorOptions options = quiet_options(fresh_dir("retry"));
  options.crash_cells = {{1, 1}};  // first attempt dies, second runs
  const OrchestrateOutcome outcome = orchestrate_sweep(grid, options);
  ASSERT_TRUE(outcome.complete);
  EXPECT_TRUE(outcome.poisoned.empty());
  EXPECT_EQ(sweep_bytes(outcome.merged), sweep_bytes(run_sweep(grid)));
}

TEST(Orchestrator, PoisonedCellIsQuarantinedNotFatal) {
  const SweepSpec grid = tiny_grid();
  const std::string dir = fresh_dir("poison");
  OrchestratorOptions options = quiet_options(dir);
  options.crash_cells = {{0, -1}};  // crashes on every attempt
  options.max_attempts = 2;
  const OrchestrateOutcome outcome = orchestrate_sweep(grid, options);
  // The sweep is incomplete but not sunk: the other cells finished and
  // the poisoned cell is reported with its attempt count.
  EXPECT_FALSE(outcome.complete);
  EXPECT_FALSE(outcome.halted);
  ASSERT_EQ(outcome.poisoned.size(), 1u);
  EXPECT_EQ(outcome.poisoned[0].index, 0u);
  EXPECT_EQ(outcome.poisoned[0].attempts, 2);
  EXPECT_FALSE(outcome.poisoned[0].last_error.empty());
  EXPECT_EQ(outcome.executed_cells, 2u);

  // With the "bug" fixed, the same journals resume to a full sweep.
  const OrchestrateOutcome resumed =
      orchestrate_sweep(grid, quiet_options(dir));
  ASSERT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.resumed_cells, 2u);
  EXPECT_EQ(sweep_bytes(resumed.merged), sweep_bytes(run_sweep(grid)));
}

TEST(Orchestrator, HungCellIsReclaimedByTimeout) {
  const SweepSpec grid = tiny_grid();
  OrchestratorOptions options = quiet_options(fresh_dir("hang"));
  options.hang_cells = {{2, 1}};  // hangs once, runs on retry
  options.cell_timeout_s = 1.0;
  const OrchestrateOutcome outcome = orchestrate_sweep(grid, options);
  ASSERT_TRUE(outcome.complete);
  EXPECT_EQ(sweep_bytes(outcome.merged), sweep_bytes(run_sweep(grid)));
}

TEST(Orchestrator, RecordRuntimeStampsCellsWithoutPerturbingResults) {
  const SweepSpec grid = tiny_grid();
  const std::string dir = fresh_dir("runtime");
  OrchestratorOptions options = quiet_options(dir);
  options.record_runtime = true;
  options.metrics_out = dir + "/metrics.jsonl";
  options.trace_out = dir + "/trace.json";
  const OrchestrateOutcome outcome = orchestrate_sweep(grid, options);
  ASSERT_TRUE(outcome.complete);

  // Every merged cell carries an execution stamp (merge preserved it).
  for (const ScenarioResult& cell : outcome.merged.cells) {
    EXPECT_TRUE(cell.runtime.recorded);
    EXPECT_GE(cell.runtime.wall_s, 0.0);
    EXPECT_GT(cell.runtime.peak_rss_bytes, 0);
    EXPECT_GE(cell.runtime.attempt, 1);
  }
  // The stamp is the ONLY divergence from an untelemetered run: clearing
  // it restores the serial bytes exactly.
  SweepResult scrubbed = outcome.merged;
  for (ScenarioResult& cell : scrubbed.cells) cell.runtime = CellRuntime{};
  EXPECT_EQ(sweep_bytes(scrubbed), sweep_bytes(run_sweep(grid)));

  // The metrics feed: v1 header, one cell event per cell, a summary with
  // the registry snapshot.
  std::ifstream metrics(options.metrics_out);
  ASSERT_TRUE(metrics.is_open());
  std::string line;
  ASSERT_TRUE(std::getline(metrics, line));
  const JsonValue header = JsonValue::parse(line);
  EXPECT_EQ(header.at("schema").as_string(), "sprout-metrics-v1");
  EXPECT_EQ(header.at("total_cells").as_number(), 3.0);
  std::size_t cell_events = 0;
  bool saw_summary = false;
  while (std::getline(metrics, line)) {
    const JsonValue v = JsonValue::parse(line);
    const std::string& event = v.at("event").as_string();
    if (event == "cell") {
      EXPECT_GE(v.at("wall_s").as_number(), 0.0);
      EXPECT_GT(v.at("peak_rss_bytes").as_number(), 0.0);
      ++cell_events;
    } else if (event == "summary") {
      EXPECT_EQ(v.at("completed").as_number(), 3.0);
      EXPECT_TRUE(v.at("registry").has("counters"));
      saw_summary = true;
    }
  }
  EXPECT_EQ(cell_events, 3u);
  EXPECT_TRUE(saw_summary);

  // The trace: parseable Chrome trace-event JSON with one span per cell.
  std::ifstream trace_in(options.trace_out);
  ASSERT_TRUE(trace_in.is_open());
  std::stringstream trace_text;
  trace_text << trace_in.rdbuf();
  const JsonValue trace = JsonValue::parse(trace_text.str());
  std::size_t spans = 0;
  for (const JsonValue& e : trace.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() == "X") ++spans;
  }
  EXPECT_EQ(spans, 3u);

  // Resuming from these journals keeps the stamps: the runtime field
  // survives the journal write/read roundtrip even when the resuming run
  // records nothing itself.
  const OrchestrateOutcome resumed =
      orchestrate_sweep(grid, quiet_options(dir));
  ASSERT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.resumed_cells, 3u);
  for (const ScenarioResult& cell : resumed.merged.cells) {
    EXPECT_TRUE(cell.runtime.recorded);
  }
}

TEST(Orchestrator, RejectsBadOptions) {
  const SweepSpec grid = tiny_grid();
  OrchestratorOptions options = quiet_options(fresh_dir("badopts"));
  options.workers = -1;
  EXPECT_THROW((void)orchestrate_sweep(grid, options), std::invalid_argument);
  options = quiet_options(fresh_dir("badopts"));
  options.max_attempts = 0;
  EXPECT_THROW((void)orchestrate_sweep(grid, options), std::invalid_argument);
  options = quiet_options(fresh_dir("badopts"));
  options.journal_dir.clear();
  EXPECT_THROW((void)orchestrate_sweep(grid, options), std::invalid_argument);
}

// --- journal fault paths -------------------------------------------------

TEST(OrchestratorJournal, RoundTripsAndReplaysInGridOrder) {
  const SweepSpec grid = tiny_grid();
  const std::string text = journal_text(grid);
  const JournalScan scan =
      read_journal(text, "j", /*allow_truncated_tail=*/false);
  EXPECT_EQ(scan.sweep_fingerprint, sweep_fingerprint(grid));
  EXPECT_EQ(scan.total_cells, 3u);
  EXPECT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.dropped_bytes, 0u);

  const ShardResult shard = shard_from_journal(scan);
  EXPECT_EQ(shard.partition, "orchestrated");
  const SweepResult merged = merge_shards({shard});
  verify_sweep_result(merged, grid);
  EXPECT_EQ(sweep_bytes(merged), sweep_bytes(run_sweep(grid)));
}

TEST(OrchestratorJournal, TruncatedFinalRecordIsStrictErrorButRecoverable) {
  const SweepSpec grid = tiny_grid();
  const std::string text = journal_text(grid);
  // Cut mid-way through the last record — the wound a kill -9 leaves.
  const std::string cut = text.substr(0, text.size() - 25);
  try {
    (void)read_journal(cut, "j", /*allow_truncated_tail=*/false);
    FAIL() << "strict scan accepted a truncated journal";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated final record"),
              std::string::npos)
        << e.what();
  }
  const JournalScan recovered =
      read_journal(cut, "j", /*allow_truncated_tail=*/true);
  EXPECT_EQ(recovered.records.size(), 2u);
  EXPECT_GT(recovered.dropped_bytes, 0u);
  // Recovery only ever drops the unterminated tail, never a whole line.
  const std::size_t last_newline = cut.rfind('\n');
  EXPECT_EQ(recovered.dropped_bytes, cut.size() - (last_newline + 1));
}

TEST(OrchestratorJournal, CorruptMidFileRecordIsAlwaysFatal) {
  const SweepSpec grid = tiny_grid();
  std::string text = journal_text(grid);
  // Damage a byte INSIDE the second line: not a truncation, corruption.
  const std::size_t second_line = text.find('\n') + 10;
  text[second_line] = '\x01';
  EXPECT_THROW((void)read_journal(text, "j", /*allow_truncated_tail=*/false),
               std::runtime_error);
  EXPECT_THROW((void)read_journal(text, "j", /*allow_truncated_tail=*/true),
               std::runtime_error);
}

TEST(OrchestratorJournal, DuplicateCellRecordInOneJournalIsRejected) {
  const SweepSpec grid = tiny_grid();
  std::string text = journal_text(grid);
  // Append a copy of the first record line: the same cell twice.
  const std::size_t first = text.find('\n') + 1;
  const std::size_t second = text.find('\n', first) + 1;
  text += text.substr(first, second - first);
  try {
    (void)read_journal(text, "j", /*allow_truncated_tail=*/true);
    FAIL() << "duplicate cell record accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("journaled twice"),
              std::string::npos)
        << e.what();
  }
}

TEST(OrchestratorJournal, MissingHeaderIsRejected) {
  EXPECT_THROW((void)read_journal("", "j", true), std::runtime_error);
  const SweepSpec grid = tiny_grid();
  std::string text = journal_text(grid);
  text.erase(0, text.find('\n') + 1);  // drop the header line
  EXPECT_THROW((void)read_journal(text, "j", true), std::runtime_error);
}

TEST(OrchestratorJournal, ForeignGridJournalRefusesResume) {
  const SweepSpec grid = tiny_grid();
  SweepSpec other = grid;
  other.base_seed = 1234;  // different content address, same shape
  const std::string dir = fresh_dir("foreign");
  {
    std::ofstream out(dir + "/" + journal_file_name(0), std::ios::binary);
    out << journal_text(other);
  }
  try {
    (void)orchestrate_sweep(grid, quiet_options(dir));
    FAIL() << "resumed from a foreign grid's journal";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("different grid"),
              std::string::npos)
        << e.what();
  }
}

TEST(OrchestratorJournal, DuplicateCoverageAcrossJournalsRefusesResume) {
  const SweepSpec grid = tiny_grid();
  const std::string dir = fresh_dir("dup");
  // Two journal slots that both claim the whole grid: a cell covered
  // twice can't resume into a clean partition.
  const std::string text = journal_text(grid);
  for (int id : {0, 1}) {
    std::ofstream out(dir + "/" + journal_file_name(id), std::ios::binary);
    // Rewrite the header's journal id so only coverage differs.
    std::string copy = text;
    const std::string from = "\"journal\": 0";
    copy.replace(copy.find(from), from.size(),
                 "\"journal\": " + std::to_string(id));
    out << copy;
  }
  try {
    (void)orchestrate_sweep(grid, quiet_options(dir));
    FAIL() << "resumed duplicate cell coverage";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate coverage"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace sprout

#include "util/poisson.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sprout {
namespace {

TEST(LogFactorial, MatchesDirectComputation) {
  EXPECT_DOUBLE_EQ(log_factorial(0), 0.0);
  EXPECT_DOUBLE_EQ(log_factorial(1), 0.0);
  EXPECT_NEAR(log_factorial(5), std::log(120.0), 1e-12);
  EXPECT_NEAR(log_factorial(10), std::log(3628800.0), 1e-9);
}

TEST(LogFactorial, LargeArgumentsUseLgamma) {
  // Stirling sanity: log(2000!) ~ 2000 ln 2000 - 2000.
  const double v = log_factorial(2000);
  EXPECT_NEAR(v, 2000.0 * std::log(2000.0) - 2000.0, 10.0);
}

TEST(PoissonPmf, ZeroMeanIsDegenerate) {
  EXPECT_DOUBLE_EQ(poisson_pmf(0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(poisson_pmf(1, 0.0), 0.0);
  EXPECT_EQ(poisson_log_pmf(3, 0.0), kNegInf);
}

TEST(PoissonPmf, MatchesClosedForm) {
  // P[X=k] = e^-m m^k / k!
  EXPECT_NEAR(poisson_pmf(0, 2.0), std::exp(-2.0), 1e-12);
  EXPECT_NEAR(poisson_pmf(1, 2.0), 2.0 * std::exp(-2.0), 1e-12);
  EXPECT_NEAR(poisson_pmf(2, 2.0), 2.0 * std::exp(-2.0), 1e-12);
  EXPECT_NEAR(poisson_pmf(3, 2.0), 4.0 / 3.0 * std::exp(-2.0), 1e-12);
}

TEST(PoissonPmf, SumsToOne) {
  for (double mean : {0.1, 1.0, 7.5, 40.0, 160.0}) {
    double sum = 0.0;
    for (int k = 0; k < 1000; ++k) sum += poisson_pmf(k, mean);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "mean " << mean;
  }
}

TEST(PoissonPmf, SurvivesExtremeMismatch) {
  // 150 observed packets against a near-zero rate: log pmf is very negative
  // but finite, and must not be NaN.
  const double lp = poisson_log_pmf(150, 0.1);
  EXPECT_TRUE(std::isfinite(lp));
  EXPECT_LT(lp, -500.0);
}

TEST(PoissonCdf, MonotoneInK) {
  double prev = -1.0;
  for (int k = 0; k < 50; ++k) {
    const double c = poisson_cdf(k, 12.0);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(prev, 1.0, 1e-9);
}

TEST(PoissonCdf, MatchesPmfSum) {
  for (double mean : {0.5, 3.0, 25.0}) {
    double sum = 0.0;
    for (int k = 0; k <= 30; ++k) {
      sum += poisson_pmf(k, mean);
      EXPECT_NEAR(poisson_cdf(k, mean), sum, 1e-10) << "mean " << mean;
    }
  }
}

TEST(PoissonCdf, NegativeKIsZero) {
  EXPECT_DOUBLE_EQ(poisson_cdf(-1, 5.0), 0.0);
}

TEST(PoissonQuantile, InvertsCdf) {
  for (double mean : {0.5, 5.0, 50.0, 160.0}) {
    for (double p : {0.05, 0.25, 0.5, 0.75, 0.95}) {
      const int q = poisson_quantile(p, mean);
      EXPECT_GE(poisson_cdf(q, mean), p) << "mean " << mean << " p " << p;
      if (q > 0) {
        EXPECT_LT(poisson_cdf(q - 1, mean), p) << "mean " << mean << " p " << p;
      }
    }
  }
}

TEST(PoissonQuantile, ZeroMean) {
  EXPECT_EQ(poisson_quantile(0.5, 0.0), 0);
  EXPECT_EQ(poisson_quantile(0.99, 0.0), 0);
}

TEST(PoissonQuantile, CautiousFifthPercentileBelowMean) {
  // The paper's cautious forecast: the 5th percentile sits well below the
  // mean for small counts.
  EXPECT_LT(poisson_quantile(0.05, 10.0), 10);
  EXPECT_LE(poisson_quantile(0.05, 2.0), 1);
}

TEST(PoissonSurvival, ComplementOfCdf) {
  for (double mean : {0.5, 4.0, 30.0}) {
    for (int k = 0; k <= 20; ++k) {
      const double s = std::exp(poisson_log_survival(k, mean));
      const double expected = k == 0 ? 1.0 : 1.0 - poisson_cdf(k - 1, mean);
      EXPECT_NEAR(s, expected, 1e-9) << "mean " << mean << " k " << k;
    }
  }
}

TEST(PoissonSurvival, DeepTailIsStable) {
  // P[X >= 100 | mean = 1] is astronomically small; the log must be finite
  // and close to log pmf(100).
  const double ls = poisson_log_survival(100, 1.0);
  EXPECT_TRUE(std::isfinite(ls));
  EXPECT_NEAR(ls, poisson_log_pmf(100, 1.0), 0.05);
}

TEST(PoissonSurvival, ZeroMean) {
  EXPECT_DOUBLE_EQ(poisson_log_survival(0, 0.0), 0.0);
  EXPECT_EQ(poisson_log_survival(1, 0.0), kNegInf);
}

// Property sweep: survival is nonincreasing in k and nondecreasing in mean.
class PoissonSurvivalSweep : public ::testing::TestWithParam<double> {};

TEST_P(PoissonSurvivalSweep, MonotoneInK) {
  const double mean = GetParam();
  double prev = 0.0;  // log survival at k=0 is 0
  for (int k = 1; k < 60; ++k) {
    const double ls = poisson_log_survival(k, mean);
    EXPECT_LE(ls, prev + 1e-12) << "k " << k;
    prev = ls;
  }
}

TEST_P(PoissonSurvivalSweep, MonotoneInMean) {
  const double mean = GetParam();
  const int k = 5;
  EXPECT_LE(poisson_log_survival(k, mean),
            poisson_log_survival(k, mean * 1.5) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Means, PoissonSurvivalSweep,
                         ::testing::Values(0.2, 1.0, 3.0, 10.0, 40.0, 160.0));

}  // namespace
}  // namespace sprout

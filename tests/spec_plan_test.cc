#include "spec/plan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "spec/builtin.h"

namespace sprout::spec {
namespace {

SweepSpec unbalanced_grid() {
  BuiltinGridOptions options;
  options.seconds = 10;
  options.base_seed = 42;
  // mixed-duration: 5 cells whose costs span two orders of magnitude
  // (single Cubic/Vegas cells next to multi-flow Sprout cells).
  return build_builtin_grid("mixed-duration", options);
}

double shard_cost(const SweepSpec& spec,
                  const std::vector<std::size_t>& indices) {
  double cost = 0.0;
  for (const std::size_t i : indices) {
    cost += estimated_cost(spec.cells[i]);
  }
  return cost;
}

TEST(SpecPlan, StrategyNamesRoundTrip) {
  for (const PartitionStrategy s :
       {PartitionStrategy::kRoundRobin, PartitionStrategy::kLpt}) {
    EXPECT_EQ(partition_from_name(to_string(s)), s);
  }
  EXPECT_FALSE(partition_from_name("greedy").has_value());
  EXPECT_FALSE(partition_from_name("").has_value());
}

TEST(SpecPlan, LptPartitionsEveryCellExactlyOnce) {
  const SweepSpec grid = unbalanced_grid();
  for (const int shards : {1, 2, 3, 5, 7}) {
    const std::vector<std::vector<std::size_t>> buckets =
        lpt_partition(grid.cells, shards);
    ASSERT_EQ(buckets.size(), static_cast<std::size_t>(shards));
    std::vector<int> covered(grid.cells.size(), 0);
    for (const std::vector<std::size_t>& bucket : buckets) {
      EXPECT_TRUE(std::is_sorted(bucket.begin(), bucket.end()));
      for (const std::size_t i : bucket) {
        ASSERT_LT(i, covered.size());
        covered[i] += 1;
      }
    }
    for (std::size_t i = 0; i < covered.size(); ++i) {
      EXPECT_EQ(covered[i], 1) << "cell " << i << " with " << shards
                               << " shards";
    }
  }
}

TEST(SpecPlan, LptBalancesBetterThanRoundRobinOnSkewedCosts) {
  const SweepSpec grid = unbalanced_grid();
  const auto makespan = [&](PartitionStrategy strategy, int shards) {
    double worst = 0.0;
    for (int s = 0; s < shards; ++s) {
      worst = std::max(
          worst, shard_cost(grid, plan_shard_indices(grid, strategy, s,
                                                     shards)));
    }
    return worst;
  };
  // mixed-duration's costs cluster so that round-robin's stride lands the
  // two most expensive cells (indices 1 and 3) in adjacent shards while
  // LPT spreads them; LPT's makespan must never be worse.
  for (const int shards : {2, 3}) {
    EXPECT_LE(makespan(PartitionStrategy::kLpt, shards),
              makespan(PartitionStrategy::kRoundRobin, shards))
        << shards << " shards";
  }
  // And the greedy bound itself: no shard exceeds total cost with 1 shard,
  // trivially, and with N shards the heaviest single cell is a lower
  // bound the LPT makespan must stay close to (4/3 OPT guarantee; use the
  // weaker "max cell or average, whichever larger, times 4/3").
  double total = 0.0;
  double heaviest = 0.0;
  for (const ScenarioSpec& cell : grid.cells) {
    total += estimated_cost(cell);
    heaviest = std::max(heaviest, estimated_cost(cell));
  }
  const int shards = 3;
  const double lower = std::max(heaviest, total / shards);
  EXPECT_LE(makespan(PartitionStrategy::kLpt, shards), lower * 4.0 / 3.0);
}

TEST(SpecPlan, PlansAreDeterministic) {
  const SweepSpec grid = unbalanced_grid();
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(plan_shard_indices(grid, PartitionStrategy::kLpt, s, 3),
              plan_shard_indices(grid, PartitionStrategy::kLpt, s, 3));
  }
}

TEST(SpecPlan, RoundRobinMatchesShardCellIndices) {
  const SweepSpec grid = unbalanced_grid();
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(plan_shard_indices(grid, PartitionStrategy::kRoundRobin, s, 3),
              shard_cell_indices(grid.cells.size(), s, 3));
  }
}

TEST(SpecPlan, BoundsErrorsMatchRoundRobinContract) {
  const SweepSpec grid = unbalanced_grid();
  for (const PartitionStrategy strategy :
       {PartitionStrategy::kRoundRobin, PartitionStrategy::kLpt}) {
    EXPECT_THROW((void)plan_shard_indices(grid, strategy, 0, 0),
                 std::invalid_argument);
    EXPECT_THROW((void)plan_shard_indices(grid, strategy, 3, 3),
                 std::invalid_argument);
    EXPECT_THROW((void)plan_shard_indices(grid, strategy, -1, 3),
                 std::invalid_argument);
  }
}

// The determinism guard the partition stamps exist for: shards cut by
// different strategies refuse to merge, and unrecorded/explicit stamps
// stay compatible with everything.
TEST(SpecPlan, MergeRejectsMixedPartitionStrategies) {
  ShardResult a;
  a.sweep_fingerprint = 1;
  a.total_cells = 2;
  a.partition = "lpt";
  a.cell_indices = {0};
  a.cell_fingerprints = {10};
  a.cells = {ScenarioResult{}};
  ShardResult b = a;
  b.partition = "round-robin";
  b.cell_indices = {1};
  b.cell_fingerprints = {11};

  try {
    (void)merge_shards({a, b});
    FAIL() << "expected a mixed-strategy rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(
                  "mix partition strategies (lpt vs round-robin)"),
              std::string::npos)
        << e.what();
  }

  // Same strategy merges; explicit and unrecorded stamps are compatible
  // with any strategy.
  b.partition = "lpt";
  EXPECT_NO_THROW((void)merge_shards({a, b}));
  b.partition = "explicit";
  EXPECT_NO_THROW((void)merge_shards({a, b}));
  b.partition = "";
  EXPECT_NO_THROW((void)merge_shards({a, b}));
}

// The partition stamp survives the shard-file round trip (and its absence
// stays absent, keeping pre-split shard files readable and byte-stable).
TEST(SpecPlan, PartitionStampRoundTripsThroughShardJson) {
  ShardResult shard;
  shard.sweep_fingerprint = 77;
  shard.total_cells = 1;
  shard.partition = "lpt";
  shard.cell_indices = {0};
  shard.cell_fingerprints = {5};
  shard.cells = {ScenarioResult{}};

  std::ostringstream os;
  write_shard_json(os, shard);
  EXPECT_NE(os.str().find("\"partition\": \"lpt\""), std::string::npos);
  EXPECT_EQ(read_shard_json(os.str()).partition, "lpt");

  shard.partition.clear();
  std::ostringstream bare;
  write_shard_json(bare, shard);
  EXPECT_EQ(bare.str().find("partition"), std::string::npos);
  EXPECT_EQ(read_shard_json(bare.str()).partition, "");
}

}  // namespace
}  // namespace sprout::spec

// Flight-recorder timelines (metrics/recorder.h): binning semantics of
// every tap, capacity grafting from the delivery trace, link-recorder
// grafting of the queue/drop columns, JSON round-trips, the byte-stability
// contract for pre-timeline result files, and ROADMAP 5(b)'s streaming
// delay percentiles on the retained-record topologies.
#include "metrics/recorder.h"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "metrics/flow_metrics.h"
#include "metrics/histogram.h"
#include "runner/scenario.h"
#include "runner/shard.h"
#include "trace/trace.h"
#include "util/table.h"

namespace sprout {
namespace {

TimePoint at(double s) { return TimePoint{} + from_seconds(s); }

TEST(Recorder, CtorRejectsBadGeometry) {
  EXPECT_THROW(FlowTimelineRecorder(Duration::zero(), at(0.0), at(1.0)),
               std::invalid_argument);
  EXPECT_THROW(FlowTimelineRecorder(msec(-5), at(0.0), at(1.0)),
               std::invalid_argument);
  EXPECT_THROW(FlowTimelineRecorder(msec(500), at(1.0), at(1.0)),
               std::invalid_argument);
  EXPECT_THROW(FlowTimelineRecorder(msec(500), at(2.0), at(1.0)),
               std::invalid_argument);
}

TEST(Recorder, InactiveRecorderIsANoOp) {
  FlowTimelineRecorder rec;
  EXPECT_FALSE(rec.active());
  // Every tap must tolerate the inactive state (the engine null-checks the
  // pointer, but a defensively-wired caller may not).
  rec.record_forecast(at(0.5), 1000.0);
  rec.record_delivery(at(0.1), at(0.5), 1500);
  rec.record_queue_sample(at(0.5), 3, 4500);
  rec.record_drop(at(0.5));
  const FlowTimeline t = rec.finalize(nullptr, &rec);
  EXPECT_FALSE(t.configured());
  EXPECT_TRUE(t.points.empty());
}

// One recorder, bins of 1 s over [0, 2.5): three bins, the last partial.
// Every column's per-bin semantics in one place.
TEST(Recorder, BinsEveryTapWithPartialTrailingBin) {
  FlowTimelineRecorder rec(sec(1), at(0.0), at(2.5));
  ASSERT_TRUE(rec.active());

  // Forecast: per-bin mean across ticks.
  rec.record_forecast(at(0.2), 1000.0);
  rec.record_forecast(at(0.7), 3000.0);
  // Deliveries: throughput over the bin width, delay mean/max of the
  // packets RECEIVED in the bin.
  rec.record_delivery(at(0.1), at(0.5), 1250);   // 400 ms
  rec.record_delivery(at(0.3), at(0.9), 1250);   // 600 ms
  rec.record_delivery(TimePoint{} + msec(2050), TimePoint{} + msec(2250),
                      1250);                     // partial bin, 200 ms
  // Queue: peaks, packets and bytes tracked independently.
  rec.record_queue_sample(at(0.3), 5, 7500);
  rec.record_queue_sample(at(0.8), 3, 9000);
  // Drops count per bin.
  rec.record_drop(at(1.5));
  rec.record_drop(at(1.6));
  // Outside [from, to): all ignored.
  rec.record_forecast(at(2.5), 9999.0);
  rec.record_delivery(at(2.9), at(3.0), 9999);
  rec.record_queue_sample(at(2.7), 99, 99999);
  rec.record_drop(at(2.6));

  const FlowTimeline t = rec.finalize(nullptr, &rec);
  ASSERT_TRUE(t.configured());
  EXPECT_DOUBLE_EQ(t.bin_s, 1.0);
  EXPECT_DOUBLE_EQ(t.from_s, 0.0);
  ASSERT_EQ(t.points.size(), 3u);

  const TimelinePoint& b0 = t.points[0];
  EXPECT_DOUBLE_EQ(b0.time_s, 0.0);
  EXPECT_DOUBLE_EQ(b0.forecast_kbps, 2000.0);
  EXPECT_DOUBLE_EQ(b0.throughput_kbps, kbps(2500, sec(1)));
  EXPECT_DOUBLE_EQ(b0.capacity_kbps, 0.0);  // no trace supplied
  EXPECT_DOUBLE_EQ(b0.mean_delay_ms, 500.0);
  EXPECT_DOUBLE_EQ(b0.max_delay_ms, 600.0);
  EXPECT_EQ(b0.queue_max_packets, 5);
  EXPECT_EQ(b0.queue_max_bytes, 9000);
  EXPECT_EQ(b0.drops, 0);

  const TimelinePoint& b1 = t.points[1];
  EXPECT_DOUBLE_EQ(b1.time_s, 1.0);
  EXPECT_DOUBLE_EQ(b1.forecast_kbps, 0.0);  // no ticks in the bin
  EXPECT_DOUBLE_EQ(b1.throughput_kbps, 0.0);
  EXPECT_DOUBLE_EQ(b1.mean_delay_ms, 0.0);
  EXPECT_EQ(b1.drops, 2);

  // Partial bin: rates averaged over the TRUE 0.5 s width.
  const TimelinePoint& b2 = t.points[2];
  EXPECT_DOUBLE_EQ(b2.time_s, 2.0);
  EXPECT_DOUBLE_EQ(b2.throughput_kbps, kbps(1250, msec(500)));
  EXPECT_DOUBLE_EQ(b2.mean_delay_ms, 200.0);
  EXPECT_DOUBLE_EQ(b2.max_delay_ms, 200.0);
}

TEST(Recorder, CapacityColumnComesFromTheDeliveryTrace) {
  const Trace trace({at(0.1), at(0.5), at(1.2)}, from_seconds(2.5));
  FlowTimelineRecorder rec(sec(1), at(0.0), at(2.5));
  const FlowTimeline t = rec.finalize(&trace, &rec);
  ASSERT_EQ(t.points.size(), 3u);
  EXPECT_DOUBLE_EQ(t.points[0].capacity_kbps, kbps(3000, sec(1)));
  EXPECT_DOUBLE_EQ(t.points[1].capacity_kbps, kbps(1500, sec(1)));
  EXPECT_DOUBLE_EQ(t.points[2].capacity_kbps, 0.0);
}

// Shared-queue shape: the flow recorder holds per-flow columns, a SEPARATE
// link recorder holds the queue/drop columns, and finalize grafts them.
TEST(Recorder, LinkRecorderSuppliesQueueAndDropColumns) {
  FlowTimelineRecorder flow(sec(1), at(0.0), at(2.0));
  FlowTimelineRecorder link(sec(1), at(0.0), at(2.0));
  flow.record_delivery(at(0.1), at(0.4), 1500);
  // Queue samples recorded into the FLOW recorder must not leak into the
  // grafted columns — only the link recorder's state counts.
  flow.record_queue_sample(at(0.2), 77, 777);
  link.record_queue_sample(at(0.3), 4, 6000);
  link.record_drop(at(1.1));

  const FlowTimeline t = flow.finalize(nullptr, &link);
  ASSERT_EQ(t.points.size(), 2u);
  EXPECT_EQ(t.points[0].queue_max_packets, 4);
  EXPECT_EQ(t.points[0].queue_max_bytes, 6000);
  EXPECT_EQ(t.points[0].drops, 0);
  EXPECT_EQ(t.points[1].drops, 1);
  EXPECT_DOUBLE_EQ(t.points[0].throughput_kbps, kbps(1500, sec(1)));
}

ScenarioSpec small_spec() {
  ScenarioSpec s;
  s.scheme = SchemeId::kSprout;
  s.link = LinkSpec::preset("Verizon LTE", LinkDirection::kDownlink);
  s.run_time = sec(12);
  s.warmup = sec(3);
  s.seed = 42;
  return s;
}

std::string result_json(const ScenarioResult& r) {
  std::ostringstream os;
  write_scenario_result_json(os, r);
  return os.str();
}

TEST(Recorder, TimelineSurvivesJsonRoundTripByteForByte) {
  ScenarioSpec spec = small_spec();
  spec.record_timeline = true;
  spec.timeline_bin = msec(500);
  const ScenarioResult r = run_scenario(spec);
  ASSERT_FALSE(r.flows.empty());
  ASSERT_TRUE(r.flows[0].timeline.configured());
  ASSERT_FALSE(r.flows[0].timeline.points.empty());

  const std::string a = result_json(r);
  EXPECT_NE(a.find("\"timeline\""), std::string::npos);
  const ScenarioResult back = scenario_result_from_json(JsonValue::parse(a));
  ASSERT_EQ(back.flows.size(), r.flows.size());
  const FlowTimeline& t0 = r.flows[0].timeline;
  const FlowTimeline& t1 = back.flows[0].timeline;
  ASSERT_EQ(t1.points.size(), t0.points.size());
  EXPECT_DOUBLE_EQ(t1.bin_s, t0.bin_s);
  for (std::size_t i = 0; i < t0.points.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_DOUBLE_EQ(t1.points[i].forecast_kbps, t0.points[i].forecast_kbps);
    EXPECT_DOUBLE_EQ(t1.points[i].capacity_kbps, t0.points[i].capacity_kbps);
    EXPECT_EQ(t1.points[i].queue_max_bytes, t0.points[i].queue_max_bytes);
    EXPECT_EQ(t1.points[i].drops, t0.points[i].drops);
    EXPECT_DOUBLE_EQ(t1.points[i].max_delay_ms, t0.points[i].max_delay_ms);
  }
  // Deterministic writer: re-serializing the reader's output is identical.
  EXPECT_EQ(result_json(back), a);
}

TEST(Recorder, TimelineOffOmitsFieldAndDoesNotPerturbResults) {
  const ScenarioSpec off_spec = small_spec();
  ScenarioSpec on_spec = small_spec();
  on_spec.record_timeline = true;
  on_spec.timeline_bin = msec(500);

  const ScenarioResult off = run_scenario(off_spec);
  const ScenarioResult on = run_scenario(on_spec);

  EXPECT_EQ(result_json(off).find("\"timeline\""), std::string::npos);

  // PR 9's invariant extended: recording never perturbs the simulation.
  ASSERT_EQ(off.flows.size(), on.flows.size());
  for (std::size_t f = 0; f < off.flows.size(); ++f) {
    SCOPED_TRACE(f);
    EXPECT_DOUBLE_EQ(off.flows[f].throughput_kbps, on.flows[f].throughput_kbps);
    EXPECT_DOUBLE_EQ(off.flows[f].delay95_ms, on.flows[f].delay95_ms);
    EXPECT_DOUBLE_EQ(off.flows[f].mean_delay_ms, on.flows[f].mean_delay_ms);
    EXPECT_EQ(off.flows[f].delivered_bytes, on.flows[f].delivered_bytes);
  }
  EXPECT_EQ(off.packets_delivered, on.packets_delivered);
  EXPECT_EQ(off.link_drops, on.link_drops);
  EXPECT_DOUBLE_EQ(off.capacity_kbps, on.capacity_kbps);
}

TEST(Recorder, RunScenarioRejectsNonPositiveTimelineBin) {
  ScenarioSpec spec = small_spec();
  spec.record_timeline = true;
  spec.timeline_bin = Duration::zero();
  EXPECT_THROW(run_scenario(spec), std::invalid_argument);
}

// Satellite: a pre-timeline result file (generated before this PR, checked
// in as a golden) must round-trip byte-identically through read -> write.
// This is the compatibility half of the byte-stability contract; the
// timeline_roundtrip ctest covers the strip-timeline half.
TEST(Recorder, PrePr10SweepFileRoundTripsByteIdentically) {
  const std::string path =
      std::string(SPROUT_SOURCE_DIR) + "/tests/golden/pre_pr10_sweep.json";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string original = buf.str();
  ASSERT_FALSE(original.empty());

  const SweepResult sweep = read_sweep_json(original);
  std::ostringstream out;
  write_sweep_json(out, sweep);
  EXPECT_EQ(out.str(), original);
}

// ROADMAP 5(b): the histogram maintained alongside retained records pins
// every percentile within one bin width ABOVE the exact per-packet answer
// (upper-edge quantiles: never below, less than one bin above).
TEST(DelayPercentiles, HistogramWithinOneBinOfRetainedRecords) {
  FlowMetrics m;
  const TimePoint from = at(0.0);
  const TimePoint to = at(100.0);
  m.enable_histogram(msec(5), sec(20), from, to);
  // 400 packets with delays 1..400 ms: exact percentiles are easy to pin
  // and span many 5 ms bins.
  for (int i = 1; i <= 400; ++i) {
    const TimePoint sent = at(0.1 * i);
    m.record(DeliveryRecord{sent, sent + msec(i), 1500});
  }
  const DelayHistogram& h = m.histogram();
  ASSERT_TRUE(h.configured());
  ASSERT_EQ(h.samples(), 400);
  // Retained records stay available alongside the histogram.
  ASSERT_EQ(m.records().size(), 400u);
  for (const double pct : {50.0, 95.0, 99.0, 99.9}) {
    SCOPED_TRACE(pct);
    // The retained-record estimator interpolates between sorted samples;
    // the histogram reports the upper edge of the bin holding the
    // nearest-rank sample.  So: never below the exact answer, and at most
    // one bin width above the nearest-rank sample (here: delay i ms for
    // rank i, so nearest-rank = ceil(pct% of 400)).
    const double exact = m.packet_delay_percentile_ms(pct, from, to);
    const double nearest_rank = std::ceil(pct / 100.0 * 400.0);
    const double binned = h.percentile_ms(pct);
    EXPECT_GE(binned, exact);
    EXPECT_LE(binned, nearest_rank + h.bin_width_ms());
  }
  EXPECT_DOUBLE_EQ(h.mean_ms(), 200.5);
}

// Every non-streaming topology's FlowResult now carries a populated
// histogram, so flow_metrics(i).delay_stats() works on single-flow and
// shared-queue runs exactly as it always has on towers.
TEST(DelayPercentiles, EveryTopologyReportsStreamingPercentiles) {
  ScenarioSpec single = small_spec();
  ScenarioSpec shared = small_spec();
  shared.topology = TopologySpec::shared_queue(2);

  for (const ScenarioSpec& spec : {single, shared}) {
    const ScenarioResult r = run_scenario(spec);
    ASSERT_FALSE(r.flows.empty());
    for (std::size_t f = 0; f < r.flows.size(); ++f) {
      SCOPED_TRACE(f);
      ASSERT_TRUE(r.flows[f].delay_hist.configured());
      const DelayStats st = r.flow_metrics(f).delay_stats();
      ASSERT_GT(st.samples, 0);
      EXPECT_GT(st.p50_ms, 0.0);
      EXPECT_LE(st.p50_ms, st.p95_ms);
      EXPECT_LE(st.p95_ms, st.p99_ms);
      EXPECT_LE(st.p99_ms, st.p999_ms);
      // The histogram's p95 brackets the signal-weighted delay95 loosely
      // (different estimators), but both must sit in the same regime: the
      // binned per-packet p95 within one bin above the exact one.
      const double p95 = r.flows[f].delay_hist.percentile_ms(95.0);
      EXPECT_GT(p95, 0.0);
    }
  }
}

}  // namespace
}  // namespace sprout

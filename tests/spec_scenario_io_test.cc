#include "spec/scenario_io.h"

#include <gtest/gtest.h>

#include "runner/sweep.h"
#include "spec_test_util.h"
#include "trace/presets.h"

namespace sprout::spec {
namespace {

// The round-trip invariant: write -> parse preserves the content
// fingerprint, which hashes every field that can affect a simulation.
void expect_roundtrip(const ScenarioSpec& spec) {
  const std::string json = scenario_to_json(spec);
  ScenarioSpec back;
  ASSERT_NO_THROW(back = parse_scenario_json(json)) << json;
  EXPECT_EQ(scenario_fingerprint(back), scenario_fingerprint(spec)) << json;
  // And the writer is a fixed point: write(parse(write(x))) == write(x).
  EXPECT_EQ(scenario_to_json(back), json);
}

TEST(SpecScenarioIo, DefaultSpecRoundTrips) { expect_roundtrip(ScenarioSpec{}); }

TEST(SpecScenarioIo, PresetLinksAndSchemesRoundTrip) {
  for (const SchemeId scheme :
       {SchemeId::kSprout, SchemeId::kCubicCodel, SchemeId::kGcc,
        SchemeId::kReno, SchemeId::kSproutAdaptive}) {
    ScenarioSpec spec = single_flow_scenario(
        scheme, find_link_preset("T-Mobile 3G (UMTS)", LinkDirection::kUplink));
    spec.run_time = sec(77);
    spec.warmup = sec(11);
    spec.seed = 1234567;
    expect_roundtrip(spec);
  }
}

TEST(SpecScenarioIo, HeterogeneousTopologyRoundTrips) {
  SproutParams cautious;
  cautious.confidence_percent = 75.0;
  cautious.forecast_horizon_ticks = 12;
  ScenarioSpec spec = heterogeneous_scenario(
      {FlowSpec::of(SchemeId::kSprout).with_params(cautious),
       FlowSpec::of(SchemeId::kCubic).active(sec(5), sec(40)),
       FlowSpec::of(SchemeId::kVegas).active(sec(1))},
      find_link_preset("Verizon LTE", LinkDirection::kDownlink));
  spec.run_time = sec(60);
  spec.warmup = sec(4);
  expect_roundtrip(spec);

  ScenarioSpec homogeneous = shared_queue_scenario(
      SchemeId::kLedbat, 4,
      find_link_preset("AT&T LTE", LinkDirection::kDownlink));
  expect_roundtrip(homogeneous);
}

TEST(SpecScenarioIo, TunnelSyntheticAqmLossAndSeriesRoundTrip) {
  ScenarioSpec tunnel = tunnel_scenario("Verizon LTE", true);
  tunnel.link_aqm = LinkAqm::kCoDel;
  expect_roundtrip(tunnel);

  CellProcessParams fast;
  fast.mean_rate_pps = 900.0;
  fast.outage_hazard_per_s = 0.0;
  CellProcessParams slow;
  slow.mean_rate_pps = 120.0;
  slow.step = msec(10);
  ScenarioSpec synthetic;
  synthetic.link = LinkSpec::synthetic(fast, slow, 11, 22);
  synthetic.loss_rate_fwd = 0.05;
  synthetic.loss_rate_rev = 0.01;  // asymmetric split must survive
  synthetic.capture_series = true;
  synthetic.series_bin = msec(250);
  synthetic.seed = (1ull << 60) + 3;  // exceeds 2^53: travels as a string
  expect_roundtrip(synthetic);

  ScenarioSpec files;
  files.link = LinkSpec::trace_files("fwd.trace", "rev.trace");
  files.set_loss_rate(0.02);
  expect_roundtrip(files);
}

TEST(SpecScenarioIo, SynthLinksRoundTrip) {
  BrownianModelParams brownian;
  brownian.init_rate_pps = 300.0;
  brownian.sigma_pps_per_sqrt_s = 150.0;
  MarkovModelParams markov;
  markov.states = {{120.0, 2.0}, {600.0, 5.0}};
  ScenarioSpec spec;
  spec.scheme = SchemeId::kCubic;
  spec.link = LinkSpec::synth(
      SynthSpec::brownian_model(brownian, 7)
          .with_op(SynthOp::sawtooth(4.0, 0.6, 1.0))
          .with_op(SynthOp::splice({{0.0, 2.5}, {5.0, 7.5}})),
      SynthSpec::markov_model(markov, 8).with_op(SynthOp::jitter(0.004)));
  expect_roundtrip(spec);

  // Every base family serializes, including preset/cox/trace-file bases
  // under an op chain.
  ScenarioSpec preset;
  preset.link = LinkSpec::synth(
      SynthSpec::preset_base("AT&T LTE", LinkDirection::kUplink)
          .with_op(SynthOp::scale(0.5)),
      SynthSpec::cox_model({}, 4).with_op(SynthOp::outage(8.0, 1.0)));
  expect_roundtrip(preset);

  ScenarioSpec file;
  file.link = LinkSpec::synth(SynthSpec::trace_file("captures/fwd.tr"),
                              SynthSpec{}.with_seed(2));
  expect_roundtrip(file);
}

TEST(SpecScenarioIo, SynthReaderRejectsMistakesWithPaths) {
  expect_spec_error(
      [] {
        (void)parse_scenario_json(
            R"({"link": {"source": "synth",
                         "forward": {"base": "gaussian"}}})");
      },
      "link.forward.base: unknown synth base \"gaussian\"");
  // A model object that contradicts the base tag is dead weight — typo'd
  // or leftover — and is rejected like any stray key.
  expect_spec_error(
      [] {
        (void)parse_scenario_json(
            R"({"link": {"source": "synth",
                         "forward": {"base": "brownian",
                                     "markov": {"states": []}}}})");
      },
      "link.forward.markov: unknown field");
  expect_spec_error(
      [] {
        (void)parse_scenario_json(
            R"({"link": {"source": "synth",
                         "forward": {"base": "trace-file"}}})");
      },
      "link.forward: missing required field \"path\"");
  expect_spec_error(
      [] {
        (void)parse_scenario_json(
            R"({"link": {"source": "synth",
                         "forward": {"ops": [{"op": "smooth"}]}}})");
      },
      "link.forward.ops[0].op: unknown synth op \"smooth\"");
  expect_spec_error(
      [] {
        (void)parse_scenario_json(
            R"({"link": {"source": "synth",
                         "forward": {"ops": [{"op": "sawtooth",
                                              "period_s": 2,
                                              "ramp_s": 5}]}}})");
      },
      "link.forward.ops[0].ramp_s: ramp_s must be <= period_s");
  expect_spec_error(
      [] {
        (void)parse_scenario_json(
            R"({"link": {"source": "synth",
                         "forward": {"base": "preset",
                                     "network": "Nope LTE"}}})");
      },
      "link.forward.network: unknown network \"Nope LTE\"");
}

TEST(SpecScenarioIo, PropagationSplitRoundTripsAndKeepsLegacyFingerprints) {
  // Asymmetric: both spellings written, split survives the round trip.
  ScenarioSpec split;
  split.propagation_delay_fwd = msec(30);
  split.propagation_delay_rev = msec(80);
  expect_roundtrip(split);
  const std::string json = scenario_to_json(split);
  EXPECT_NE(json.find("propagation_delay_fwd_s"), std::string::npos);
  EXPECT_NE(json.find("propagation_delay_rev_s"), std::string::npos);

  // Symmetric non-default: the legacy spelling, reading back into both.
  ScenarioSpec sym;
  sym.set_propagation_delay(msec(50));
  expect_roundtrip(sym);
  const std::string sym_json = scenario_to_json(sym);
  EXPECT_NE(sym_json.find("\"propagation_delay_s\""), std::string::npos);
  EXPECT_EQ(sym_json.find("propagation_delay_fwd_s"), std::string::npos);
  const ScenarioSpec back = parse_scenario_json(sym_json);
  EXPECT_EQ(back.propagation_delay_fwd, msec(50));
  EXPECT_EQ(back.propagation_delay_rev, msec(50));

  // A symmetric split fingerprints exactly like the legacy single field
  // did (the split is only hashed when asymmetric), and asymmetry changes
  // the fingerprint.
  ScenarioSpec asym = sym;
  asym.propagation_delay_rev = msec(60);
  EXPECT_NE(scenario_fingerprint(sym), scenario_fingerprint(asym));

  expect_spec_error(
      [] {
        (void)parse_scenario_json(
            R"({"propagation_delay_s": 0.02,
                "propagation_delay_rev_s": 0.05})");
      },
      "propagation_delay_s: conflicts with propagation_delay_fwd_s/"
      "propagation_delay_rev_s");
}

TEST(SpecScenarioIo, InMemoryTracesDoNotSerialize) {
  ScenarioSpec spec;
  spec.link = LinkSpec::traces(Trace{}, Trace{});
  expect_spec_error([&] { (void)scenario_to_json(spec); },
                    "in-memory traces cannot be serialized");
}

TEST(SpecScenarioIo, ReaderDefaultsMatchScenarioSpecDefaults) {
  const ScenarioSpec parsed = parse_scenario_json("{}");
  EXPECT_EQ(scenario_fingerprint(parsed), scenario_fingerprint(ScenarioSpec{}));
  // A lone flow list adopts its lead flow's scheme, exactly as
  // heterogeneous_scenario() does.
  const ScenarioSpec hetero = parse_scenario_json(
      R"({"topology": {"kind": "shared-queue",
                       "flows": [{"scheme": "Cubic"}, {"scheme": "Vegas"}]}})");
  EXPECT_EQ(hetero.scheme, SchemeId::kCubic);
}

TEST(SpecScenarioIo, UnknownSchemeNamesThePath) {
  expect_spec_error(
      [] {
        (void)parse_scenario_json(
            R"({"topology": {"kind": "shared-queue",
                             "flows": [{"scheme": "Sprout"},
                                       {"scheme": "Cubicc"}]}})");
      },
      "topology.flows[1].scheme: unknown scheme \"Cubicc\"");
  expect_spec_error(
      [] { (void)parse_scenario_json(R"({"scheme": "TCP"})"); },
      "scheme: unknown scheme \"TCP\"");
}

TEST(SpecScenarioIo, FlowWindowErrorsNameThePath) {
  expect_spec_error(
      [] {
        (void)parse_scenario_json(
            R"({"run_time_s": 300,
                "topology": {"kind": "shared-queue",
                             "flows": [{"scheme": "Sprout"},
                                       {"scheme": "Cubic"},
                                       {"scheme": "Vegas",
                                        "start_s": 60, "stop_s": 10}]}})");
      },
      "topology.flows[2].stop_s: must be > start_s");
  expect_spec_error(
      [] {
        (void)parse_scenario_json(
            R"({"run_time_s": 100, "warmup_s": 50,
                "topology": {"kind": "shared-queue",
                             "flows": [{"scheme": "Sprout"},
                                       {"scheme": "Cubic", "stop_s": 20}]}})");
      },
      "topology.flows[1]: flow activity window ends inside warmup");
}

TEST(SpecScenarioIo, NegativeAndNonFiniteDurationsAreRejected) {
  expect_spec_error(
      [] { (void)parse_scenario_json(R"({"run_time_s": -5})"); },
      "run_time_s: must be > 0, got -5");
  expect_spec_error(
      [] { (void)parse_scenario_json(R"({"run_time_s": 0})"); },
      "run_time_s: must be > 0");
  // JSON has no NaN literal; an overflowing literal is the closest attack.
  expect_spec_error(
      [] { (void)parse_scenario_json(R"({"run_time_s": 1e999})"); },
      "run_time_s: must be finite");
  expect_spec_error(
      [] {
        (void)parse_scenario_json(
            R"({"topology": {"kind": "shared-queue",
                             "flows": [{"scheme": "Sprout",
                                        "start_s": -1}]}})");
      },
      "topology.flows[0].start_s: must be >= 0");
  expect_spec_error(
      [] { (void)parse_scenario_json(R"({"run_time_s": 10, "warmup_s": 10})"); },
      "warmup_s: warmup_s must be < run_time_s");
}

TEST(SpecScenarioIo, StructuralMistakesAreRejected) {
  expect_spec_error(
      [] { (void)parse_scenario_json(R"({"run_tim_s": 10})"); },
      "run_tim_s: unknown field");
  expect_spec_error(
      [] {
        (void)parse_scenario_json(
            R"({"loss_rate": 0.1, "loss_rate_rev": 0.2})");
      },
      "loss_rate: conflicts with loss_rate_fwd/loss_rate_rev");
  expect_spec_error(
      [] { (void)parse_scenario_json(R"({"loss_rate": 1.5})"); },
      "loss_rate: must be in [0, 1]");
  expect_spec_error(
      [] {
        (void)parse_scenario_json(
            R"({"topology": {"kind": "single-flow", "num_flows": 3}})");
      },
      "topology.num_flows: unknown field");
  expect_spec_error(
      [] {
        (void)parse_scenario_json(
            R"({"topology": {"kind": "shared-queue", "num_flows": 3,
                             "flows": [{"scheme": "Sprout"}]}})");
      },
      "topology.num_flows: disagrees with the flows list");
  expect_spec_error(
      [] {
        (void)parse_scenario_json(
            R"({"link": {"source": "preset", "network": "Verizon 5G"}})");
      },
      "link.network: unknown network \"Verizon 5G\"");
  expect_spec_error(
      [] { (void)parse_scenario_json(R"({"link_aqm": "RED"})"); },
      "link_aqm: unknown link AQM \"RED\"");
}

TEST(SpecScenarioIo, TowerTopologyRoundTrips) {
  // The all-defaults tower: only the kind is written.
  ScenarioSpec plain;
  plain.topology = TopologySpec::tower(TowerSpec{});
  expect_roundtrip(plain);
  EXPECT_EQ(scenario_to_json(plain).find("\"mix\""), std::string::npos);

  // Every tower knob off-default, including a weighted mix and a custom
  // markov channel.
  TowerSpec t;
  t.num_users = 200;
  t.arrival_rate_per_s = 1.5;
  t.mean_session_s = 45.0;
  t.slot = msec(4);
  t.pf_window = sec(2);
  MarkovModelParams markov;
  markov.states = {{120.0, 2.0}, {600.0, 5.0}};
  t.channel = SynthSpec::markov_model(markov, 17);
  t.mix = {{SchemeId::kSprout, 1.0}, {SchemeId::kCubic, 3.0}};
  t.hist_bin = msec(2);
  t.hist_max = sec(30);
  ScenarioSpec spec;
  spec.topology = TopologySpec::tower(std::move(t));
  spec.run_time = sec(120);
  spec.warmup = sec(10);
  spec.seed = 77;
  expect_roundtrip(spec);
}

TEST(SpecScenarioIo, TowerRejectsSchemeLinkAndSeriesKeys) {
  expect_spec_error(
      [] {
        (void)parse_scenario_json(
            R"({"scheme": "Cubic", "topology": {"kind": "tower"}})");
      },
      "scheme: tower topologies draw schemes from topology.tower.mix");
  expect_spec_error(
      [] {
        (void)parse_scenario_json(
            R"({"link": {"source": "preset", "network": "Verizon LTE"},
                "topology": {"kind": "tower"}})");
      },
      "link: tower topologies draw channels from topology.tower.channel");
  expect_spec_error(
      [] {
        (void)parse_scenario_json(
            R"({"capture_series": true, "topology": {"kind": "tower"}})");
      },
      "capture_series: tower scenarios report streaming histograms");
}

TEST(SpecScenarioIo, TowerReaderValidatesWithPaths) {
  expect_spec_error(
      [] {
        (void)parse_scenario_json(
            R"({"topology": {"kind": "tower", "tower": {"num_users": 0}}})");
      },
      "topology.tower.num_users: must be >= 1");
  expect_spec_error(
      [] {
        (void)parse_scenario_json(
            R"({"topology": {"kind": "tower",
                             "tower": {"mix": [{"scheme": "Cubic",
                                                "weight": -1}]}}})");
      },
      "topology.tower.mix[0].weight: must be > 0");
  expect_spec_error(
      [] {
        (void)parse_scenario_json(
            R"({"topology": {"kind": "tower", "tower": {"mix": []}}})");
      },
      "topology.tower.mix: needs at least one mix entry");
  // Cross-field validation surfaces through the builder with the spec path.
  expect_spec_error(
      [] {
        (void)parse_scenario_json(
            R"({"topology": {"kind": "tower",
                             "tower": {"slot_s": 0.01,
                                       "pf_window_s": 0.005}}})");
      },
      "topology:");
  // The stray-key sweep applies inside the tower object too.
  expect_spec_error(
      [] {
        (void)parse_scenario_json(
            R"({"topology": {"kind": "tower", "tower": {"users": 5}}})");
      },
      "topology.tower.users: unknown field");
}

}  // namespace
}  // namespace sprout::spec

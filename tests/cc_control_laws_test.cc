#include <cmath>
// Unit tests of the congestion-control laws in isolation (no network).
#include <gtest/gtest.h>

#include "cc/compound.h"
#include "cc/cubic.h"
#include "cc/fast.h"
#include "cc/ledbat.h"
#include "cc/reno.h"
#include "cc/vegas.h"

namespace sprout {
namespace {

AckEvent ack(std::int64_t t_ms, double rtt_ms, std::int64_t n = 1,
             double owd_ms = -1.0) {
  AckEvent ev;
  ev.now = TimePoint{} + msec(t_ms);
  ev.rtt = msec(static_cast<std::int64_t>(rtt_ms));
  ev.one_way_delay = msec(static_cast<std::int64_t>(owd_ms < 0 ? rtt_ms / 2 : owd_ms));
  ev.newly_acked = n;
  ev.inflight = 10;
  return ev;
}

TEST(Reno, SlowStartDoublesPerRtt) {
  RenoCC cc;
  const double start = cc.cwnd_packets();
  // Acking cwnd packets in slow start doubles the window.
  cc.on_ack(ack(10, 100, static_cast<std::int64_t>(start)));
  EXPECT_DOUBLE_EQ(cc.cwnd_packets(), 2.0 * start);
}

TEST(Reno, CongestionAvoidanceAddsOnePerRtt) {
  RenoCC cc;
  cc.on_packet_loss(TimePoint{});  // exit slow start; ssthresh = cwnd/2
  const double w = cc.cwnd_packets();
  cc.on_ack(ack(10, 100, static_cast<std::int64_t>(w)));
  EXPECT_NEAR(cc.cwnd_packets(), w + 1.0, 0.3);
}

TEST(Reno, LossHalvesTimeoutResets) {
  RenoCC cc;
  for (int i = 0; i < 6; ++i) cc.on_ack(ack(i, 100, 4));
  const double w = cc.cwnd_packets();
  cc.on_packet_loss(TimePoint{});
  EXPECT_NEAR(cc.cwnd_packets(), w / 2.0, 1e-9);
  cc.on_timeout(TimePoint{});
  EXPECT_DOUBLE_EQ(cc.cwnd_packets(), 1.0);
}

TEST(Cubic, GrowsTowardWmaxThenPlateaus) {
  CubicCC cc;
  // Grow, lose at ~100 packets, then watch the concave approach to w_max.
  for (int i = 0; i < 200 && cc.cwnd_packets() < 100; ++i) {
    cc.on_ack(ack(i * 10, 100, 2));
  }
  const double peak = cc.cwnd_packets();
  cc.on_packet_loss(TimePoint{} + sec(3));
  EXPECT_NEAR(cc.cwnd_packets(), peak * 0.7, 1.0);  // beta = 0.7
  EXPECT_NEAR(cc.w_max(), peak, 1.0);
  // Subsequent growth is initially slower than slow start but positive.
  const double after_loss = cc.cwnd_packets();
  for (int i = 0; i < 50; ++i) {
    cc.on_ack(ack(3000 + i * 20, 100, 1));
  }
  EXPECT_GT(cc.cwnd_packets(), after_loss);
  EXPECT_LT(cc.cwnd_packets(), peak * 1.5);
}

TEST(Cubic, FastConvergenceLowersWmaxOnBackToBackLosses) {
  CubicCC cc;
  for (int i = 0; i < 300 && cc.cwnd_packets() < 80; ++i) {
    cc.on_ack(ack(i * 10, 100, 2));
  }
  cc.on_packet_loss(TimePoint{} + sec(4));
  const double wmax1 = cc.w_max();
  cc.on_packet_loss(TimePoint{} + sec(5));
  EXPECT_LT(cc.w_max(), wmax1);
}

TEST(Cubic, TimeoutCollapsesToOne) {
  CubicCC cc;
  for (int i = 0; i < 20; ++i) cc.on_ack(ack(i * 10, 100, 2));
  cc.on_timeout(TimePoint{} + sec(1));
  EXPECT_DOUBLE_EQ(cc.cwnd_packets(), 1.0);
}

TEST(Vegas, StableWhenBacklogInBand) {
  VegasCC cc;
  // base RTT 100 ms; cwnd such that diff stays between alpha and beta.
  cc.on_ack(ack(0, 100));
  // Feed an RTT consistent with ~3 packets of backlog: diff = w(1-b/r)* ...
  for (int t = 1; t < 50; ++t) {
    const double w = cc.cwnd_packets();
    // rtt so that (expected-actual)*base = 3: rtt = base*w/(w-3)
    const double rtt = 100.0 * w / std::max(1.0, w - 3.0);
    cc.on_ack(ack(t * 120, rtt));
  }
  const double w1 = cc.cwnd_packets();
  for (int t = 50; t < 60; ++t) {
    const double w = cc.cwnd_packets();
    const double rtt = 100.0 * w / std::max(1.0, w - 3.0);
    cc.on_ack(ack(t * 120, rtt));
  }
  EXPECT_NEAR(cc.cwnd_packets(), w1, 2.0);
}

TEST(Vegas, ShrinksWhenQueueBuilds) {
  VegasCC cc;
  cc.on_packet_loss(TimePoint{});  // leave slow start
  // Establish a low base RTT first, and let the window grow a bit.
  for (int t = 0; t < 30; ++t) cc.on_ack(ack(t * 120, 100.0));
  const double grown = cc.cwnd_packets();
  // Now the queue builds: RTT inflates 5x => backlog estimate far above
  // beta => one-packet decrease per epoch.
  for (int t = 30; t < 70; ++t) cc.on_ack(ack(t * 600, 500.0));
  EXPECT_LT(cc.cwnd_packets(), grown);
}

TEST(Vegas, TracksBaseRtt) {
  VegasCC cc;
  cc.on_ack(ack(0, 150));
  cc.on_ack(ack(200, 80));
  cc.on_ack(ack(400, 120));
  EXPECT_NEAR(cc.base_rtt_s(), 0.08, 1e-9);
}

TEST(Compound, DelayWindowGrowsWithHeadroom) {
  CompoundCC cc;
  // Low constant RTT: diff stays near zero -> dwnd grows binomially.
  for (int t = 0; t < 100; ++t) {
    cc.on_ack(ack(t * 110, 100, 2));
  }
  EXPECT_GT(cc.dwnd(), 0.0);
  EXPECT_GT(cc.cwnd_packets(), 10.0);
}

TEST(Compound, DelayWindowRetreatsOnQueueing) {
  CompoundCC cc;
  for (int t = 0; t < 100; ++t) cc.on_ack(ack(t * 110, 100, 2));
  const double dwnd_peak = cc.dwnd();
  // RTT quadruples: estimated backlog explodes past gamma.
  for (int t = 100; t < 140; ++t) cc.on_ack(ack(t * 110, 400, 2));
  EXPECT_LT(cc.dwnd(), dwnd_peak);
}

TEST(Compound, LossShrinksBothComponents) {
  CompoundCC cc;
  for (int t = 0; t < 100; ++t) cc.on_ack(ack(t * 110, 100, 2));
  const double w = cc.cwnd_packets();
  cc.on_packet_loss(TimePoint{} + sec(12));
  EXPECT_LT(cc.cwnd_packets(), w);
  cc.on_timeout(TimePoint{} + sec(13));
  EXPECT_DOUBLE_EQ(cc.dwnd(), 0.0);
}

TEST(Ledbat, GrowsWhenBelowTarget) {
  LedbatCC cc;
  // OWD equal to base: queuing delay 0 -> grow at ~GAIN per RTT.
  double prev = cc.cwnd_packets();
  for (int t = 0; t < 50; ++t) {
    cc.on_ack(ack(t * 100, 100, 1, /*owd_ms=*/50));
  }
  EXPECT_GT(cc.cwnd_packets(), prev);
}

TEST(Ledbat, ConvergesAroundTarget) {
  LedbatCC cc;
  cc.on_ack(ack(0, 100, 1, 50));  // establishes base delay 50 ms
  // Queuing delay exactly at the 100 ms target: off_target = 0.
  const double w0 = cc.cwnd_packets();
  for (int t = 1; t < 30; ++t) {
    cc.on_ack(ack(t * 100, 100, 1, 150));
  }
  EXPECT_NEAR(cc.cwnd_packets(), w0, 0.5);
}

TEST(Ledbat, ShrinksAboveTargetAndOnLoss) {
  LedbatCC cc;
  cc.on_ack(ack(0, 100, 1, 50));
  for (int t = 1; t < 20; ++t) cc.on_ack(ack(t * 100, 100, 1, 50));
  const double grown = cc.cwnd_packets();
  // 400 ms of queueing: strongly negative off_target.
  for (int t = 20; t < 40; ++t) cc.on_ack(ack(t * 100, 100, 1, 450));
  EXPECT_LT(cc.cwnd_packets(), grown);
  cc.on_packet_loss(TimePoint{});
  cc.on_timeout(TimePoint{});
  EXPECT_DOUBLE_EQ(cc.cwnd_packets(), 2.0);
}

TEST(Ledbat, BaseDelayUsesHistoryMinimum) {
  LedbatCC cc;
  cc.on_ack(ack(0, 100, 1, 80));
  EXPECT_NEAR(cc.base_delay_s(), 0.08, 1e-9);
  cc.on_ack(ack(100, 100, 1, 60));
  EXPECT_NEAR(cc.base_delay_s(), 0.06, 1e-9);
  cc.on_ack(ack(200, 100, 1, 90));
  EXPECT_NEAR(cc.base_delay_s(), 0.06, 1e-9);
}

// Property: every controller keeps a sane window under a random ack storm.
template <typename CC>
void random_storm() {
  CC cc;
  std::uint64_t x = 88172645463325252ull;
  auto rnd = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return static_cast<double>(x % 1000) / 1000.0;
  };
  for (int t = 0; t < 3000; ++t) {
    const double r = rnd();
    if (r < 0.02) {
      cc.on_packet_loss(TimePoint{} + msec(t * 10));
    } else if (r < 0.025) {
      cc.on_timeout(TimePoint{} + msec(t * 10));
    } else {
      cc.on_ack(ack(t * 10, 50.0 + 400.0 * rnd(), 1, 25.0 + 300.0 * rnd()));
    }
    ASSERT_GE(cc.cwnd_packets(), 1.0);
    ASSERT_LT(cc.cwnd_packets(), 1e7);
    ASSERT_FALSE(std::isnan(cc.cwnd_packets()));
  }
}

TEST(AllControllers, SurviveRandomAckStorm) {
  random_storm<RenoCC>();
  random_storm<CubicCC>();
  random_storm<VegasCC>();
  random_storm<CompoundCC>();
  random_storm<LedbatCC>();
  random_storm<FastCC>();
}

// ------------------------------------------------------------------- FAST

TEST(Fast, GrowsTowardAlphaBacklogEquilibrium) {
  // At equilibrium w = baseRTT/RTT * w + alpha, i.e. the window keeps alpha
  // packets queued.  With RTT == baseRTT (empty queue) the update is
  // w <- w + gamma * alpha each period: steady growth.
  FastCC cc({.alpha = 20.0, .gamma = 0.5, .update_interval = msec(20)});
  const double w0 = cc.cwnd_packets();
  for (int t = 0; t < 50; ++t) cc.on_ack(ack(t * 25, 100));
  EXPECT_GT(cc.cwnd_packets(), w0 + 100.0);
}

TEST(Fast, ShrinksWhenRttInflatesBeyondAlphaBacklog) {
  FastCC cc({.alpha = 10.0, .gamma = 0.5, .update_interval = msec(20)});
  for (int t = 0; t < 100; ++t) cc.on_ack(ack(t * 25, 100));
  const double grown = cc.cwnd_packets();
  // RTT now 5x baseRTT: the implied backlog far exceeds alpha, so the
  // window law contracts (slowly, via the smoothed RTT).
  for (int t = 100; t < 400; ++t) cc.on_ack(ack(t * 25, 500));
  EXPECT_LT(cc.cwnd_packets(), grown);
}

TEST(Fast, NeverMoreThanDoublesPerUpdate) {
  FastCC cc({.alpha = 1e6, .gamma = 1.0, .update_interval = msec(20)});
  double prev = cc.cwnd_packets();
  for (int t = 0; t < 20; ++t) {
    cc.on_ack(ack(t * 25, 100));
    EXPECT_LE(cc.cwnd_packets(), 2.0 * prev + 1e-9);
    prev = cc.cwnd_packets();
  }
}

TEST(Fast, EquilibriumWindowKeepsAlphaPacketsQueued) {
  // Feed a self-consistent loop: RTT = baseRTT * (1 + backlog/cwnd) with
  // backlog = cwnd - capacity*baseRTT.  The fixed point is backlog = alpha.
  const double base_rtt_ms = 100.0;
  const double capacity_pkts_per_ms = 0.5;  // BDP = 50 packets
  FastParams p{.alpha = 20.0, .gamma = 0.5, .update_interval = msec(20)};
  FastCC cc(p);
  double rtt_ms = base_rtt_ms;
  for (int t = 0; t < 3000; ++t) {
    cc.on_ack(ack(t * 25, rtt_ms));
    const double bdp = capacity_pkts_per_ms * base_rtt_ms;
    const double backlog = std::max(0.0, cc.cwnd_packets() - bdp);
    rtt_ms = base_rtt_ms + backlog / capacity_pkts_per_ms;
  }
  const double final_backlog =
      cc.cwnd_packets() - capacity_pkts_per_ms * base_rtt_ms;
  EXPECT_NEAR(final_backlog, p.alpha, p.alpha * 0.25);
}

TEST(Fast, LossHalvesAndTimeoutResets) {
  FastCC cc;
  for (int t = 0; t < 100; ++t) cc.on_ack(ack(t * 25, 100));
  const double w = cc.cwnd_packets();
  cc.on_packet_loss(TimePoint{});
  EXPECT_NEAR(cc.cwnd_packets(), w / 2.0, 1e-9);
  cc.on_timeout(TimePoint{});
  EXPECT_DOUBLE_EQ(cc.cwnd_packets(), 2.0);
}

}  // namespace
}  // namespace sprout

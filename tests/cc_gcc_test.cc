// Unit tests for the Google Congestion Control components (cc/gcc.h): the
// inter-arrival grouper, arrival-time Kalman filter, over-use detector,
// incoming-rate estimator, AIMD remote-rate controller and the loss-based
// sender controller — each exercised in isolation, then end-to-end over an
// emulated link in runner_experiment_test / table_gcc.
#include <gtest/gtest.h>

#include <cmath>

#include "cc/gcc.h"

namespace sprout {
namespace {

TimePoint at_ms(std::int64_t ms) { return TimePoint{} + msec(ms); }
TimePoint at_us(std::int64_t us) { return TimePoint{} + usec(us); }

// ---------------------------------------------------------------- grouper

TEST(InterArrivalGrouper, NeedsThreeGroupsForFirstDelta) {
  InterArrivalGrouper g;
  EXPECT_FALSE(g.on_packet(at_ms(0), at_ms(20), 1500).has_value());
  EXPECT_FALSE(g.on_packet(at_ms(33), at_ms(53), 1500).has_value());
  // Third group closes the second: now a (previous, current) pair exists.
  EXPECT_TRUE(g.on_packet(at_ms(66), at_ms(86), 1500).has_value());
}

TEST(InterArrivalGrouper, BurstWithinWindowIsOneGroup) {
  InterArrivalGrouper g(msec(5));
  // Three packets sent within 5 ms: one group.
  EXPECT_FALSE(g.on_packet(at_ms(0), at_ms(20), 1500).has_value());
  EXPECT_FALSE(g.on_packet(at_ms(1), at_ms(21), 1500).has_value());
  EXPECT_FALSE(g.on_packet(at_ms(2), at_ms(22), 1500).has_value());
  // Next frame 33 ms later: second group.
  EXPECT_FALSE(g.on_packet(at_ms(33), at_ms(53), 1500).has_value());
  const auto d = g.on_packet(at_ms(66), at_ms(86), 1500);
  ASSERT_TRUE(d.has_value());
  // Group sizes: first 4500, second 1500 -> delta -3000.
  EXPECT_DOUBLE_EQ(d->size_delta_bytes, -3000.0);
}

TEST(InterArrivalGrouper, StableSpacingGivesZeroDelta) {
  InterArrivalGrouper g;
  (void)g.on_packet(at_ms(0), at_ms(20), 1500);
  (void)g.on_packet(at_ms(33), at_ms(53), 1500);
  const auto d = g.on_packet(at_ms(66), at_ms(86), 1500);
  ASSERT_TRUE(d.has_value());
  EXPECT_DOUBLE_EQ(d->arrival_delta_ms, 33.0);
  EXPECT_DOUBLE_EQ(d->send_delta_ms, 33.0);
}

TEST(InterArrivalGrouper, QueueBuildupGivesPositiveDelta) {
  InterArrivalGrouper g;
  (void)g.on_packet(at_ms(0), at_ms(20), 1500);
  (void)g.on_packet(at_ms(33), at_ms(60), 1500);  // arrived 7 ms late
  const auto d = g.on_packet(at_ms(66), at_ms(100), 1500);
  ASSERT_TRUE(d.has_value());
  EXPECT_GT(d->arrival_delta_ms, d->send_delta_ms);
}

TEST(InterArrivalGrouper, ReorderedGroupsAreDiscarded) {
  InterArrivalGrouper g;
  (void)g.on_packet(at_ms(100), at_ms(120), 1500);
  (void)g.on_packet(at_ms(133), at_ms(150), 1500);
  // A group whose send time went backwards yields no delta.
  const auto d = g.on_packet(at_ms(20), at_ms(155), 1500);
  EXPECT_FALSE(d.has_value());
}

// ----------------------------------------------------------------- filter

ArrivalDelta make_delta(double arrival_ms, double send_ms, double bytes = 0) {
  return {arrival_ms, send_ms, bytes};
}

TEST(ArrivalFilter, ConvergesToZeroOnStableLink) {
  ArrivalFilter f;
  for (int i = 0; i < 200; ++i) f.update(make_delta(33.0, 33.0));
  EXPECT_NEAR(f.offset_ms(), 0.0, 0.01);
}

TEST(ArrivalFilter, TracksPositiveGradientDuringBuildup) {
  ArrivalFilter f;
  for (int i = 0; i < 50; ++i) f.update(make_delta(33.0, 33.0));
  // Arrivals now consistently 5 ms slower than sends: standing queue grows.
  double m = 0;
  for (int i = 0; i < 50; ++i) m = f.update(make_delta(38.0, 33.0));
  EXPECT_GT(m, 1.0);
}

TEST(ArrivalFilter, NegativeGradientWhenQueueDrains) {
  ArrivalFilter f;
  for (int i = 0; i < 50; ++i) f.update(make_delta(33.0, 33.0));
  double m = 0;
  for (int i = 0; i < 50; ++i) m = f.update(make_delta(28.0, 33.0));
  EXPECT_LT(m, -1.0);
}

TEST(ArrivalFilter, OutlierDoesNotBlowUpState) {
  ArrivalFilter f;
  for (int i = 0; i < 100; ++i) f.update(make_delta(33.0, 33.0));
  // One 4-second gap (an outage tail, Figure 2): clamped, not swallowed raw.
  f.update(make_delta(4000.0, 33.0));
  EXPECT_LT(std::fabs(f.offset_ms()), 100.0);
}

TEST(ArrivalFilter, NoiseVarianceGrowsWithJitter) {
  ArrivalFilter quiet_f;
  ArrivalFilter noisy_f;
  for (int i = 0; i < 100; ++i) {
    quiet_f.update(make_delta(33.0, 33.0));
    noisy_f.update(make_delta(i % 2 == 0 ? 53.0 : 13.0, 33.0));
  }
  EXPECT_GT(noisy_f.noise_variance(), quiet_f.noise_variance());
}

TEST(ArrivalFilter, CapacityStateStaysNonNegative) {
  ArrivalFilter f;
  // Adversarial size deltas trying to push 1/C negative.
  for (int i = 0; i < 100; ++i) {
    f.update(make_delta(30.0, 33.0, +3000.0));
    f.update(make_delta(36.0, 33.0, -3000.0));
  }
  EXPECT_GE(f.inverse_capacity_ms_per_byte(), 0.0);
}

// --------------------------------------------------------------- detector

TEST(OveruseDetector, NormalWhenOffsetSmall) {
  OveruseDetector d;
  EXPECT_EQ(d.detect(0.5, at_ms(0)), BandwidthUsage::kNormal);
  EXPECT_EQ(d.detect(-0.5, at_ms(5)), BandwidthUsage::kNormal);
}

TEST(OveruseDetector, OveruseRequiresPersistence) {
  OveruseDetector d;
  // A single above-threshold sample does not trigger (10 ms persistence).
  EXPECT_EQ(d.detect(50.0, at_ms(0)), BandwidthUsage::kNormal);
  EXPECT_EQ(d.detect(51.0, at_ms(5)), BandwidthUsage::kNormal);
  EXPECT_EQ(d.detect(52.0, at_ms(15)), BandwidthUsage::kOverusing);
}

TEST(OveruseDetector, FallingGradientHoldsOffOveruse) {
  OveruseDetector d;
  (void)d.detect(80.0, at_ms(0));
  // Still above threshold but falling: not yet overuse.
  EXPECT_EQ(d.detect(60.0, at_ms(15)), BandwidthUsage::kNormal);
}

TEST(OveruseDetector, UnderuseOnNegativeOffset) {
  OveruseDetector d;
  EXPECT_EQ(d.detect(-50.0, at_ms(0)), BandwidthUsage::kUnderusing);
}

TEST(OveruseDetector, ThresholdAdaptsUpUnderSustainedOffset) {
  OveruseDetector d;
  const double before = d.threshold_ms();
  for (int i = 0; i < 100; ++i) (void)d.detect(100.0, at_ms(i * 5));
  EXPECT_GT(d.threshold_ms(), before);
}

TEST(OveruseDetector, ThresholdDecaysWhenQuiet) {
  OveruseDetectorParams p;
  OveruseDetector d(p);
  for (int i = 0; i < 50; ++i) (void)d.detect(200.0, at_ms(i * 5));
  const double raised = d.threshold_ms();
  for (int i = 0; i < 2000; ++i) (void)d.detect(0.0, at_ms(250 + i * 5));
  EXPECT_LT(d.threshold_ms(), raised);
}

TEST(OveruseDetector, ThresholdStaysInBounds) {
  OveruseDetectorParams p;
  OveruseDetector d(p);
  for (int i = 0; i < 3000; ++i) (void)d.detect(1e6, at_ms(i * 5));
  EXPECT_LE(d.threshold_ms(), p.max_threshold_ms);
  OveruseDetector d2(p);
  for (int i = 0; i < 3000; ++i) (void)d2.detect(0.0, at_ms(i * 5));
  EXPECT_GE(d2.threshold_ms(), p.min_threshold_ms);
}

// ------------------------------------------------------------------- rate

TEST(RateEstimator, NeedsTwoPacketsSpanningTime) {
  RateEstimator r;
  EXPECT_FALSE(r.rate_kbps(at_ms(0)).has_value());
  r.on_packet(at_ms(0), 1500);
  EXPECT_FALSE(r.rate_kbps(at_ms(1)).has_value());
  r.on_packet(at_ms(100), 1500);
  EXPECT_TRUE(r.rate_kbps(at_ms(100)).has_value());
}

TEST(RateEstimator, MeasuresSteadyRate) {
  RateEstimator r;
  // 1500 B every 10 ms = 1200 kbit/s.
  for (int i = 0; i <= 50; ++i) r.on_packet(at_ms(i * 10), 1500);
  const auto rate = r.rate_kbps(at_ms(500));
  ASSERT_TRUE(rate.has_value());
  EXPECT_NEAR(*rate, 1200.0, 120.0);
}

TEST(RateEstimator, OldSamplesAgeOut) {
  RateEstimator r(msec(500));
  for (int i = 0; i <= 50; ++i) r.on_packet(at_ms(i * 10), 1500);
  // 2 seconds later the window is empty.
  EXPECT_FALSE(r.rate_kbps(at_ms(2500)).has_value());
}

// ------------------------------------------------------------------- AIMD

TEST(AimdRateController, IncreasesOnNormal) {
  AimdRateController c;
  const double r0 = c.rate_kbps();
  double r = r0;
  for (int i = 0; i < 20; ++i) {
    r = c.update(BandwidthUsage::kNormal, 2.0 * r0, at_ms(i * 100));
  }
  EXPECT_GT(r, r0);
}

TEST(AimdRateController, MultiplicativeIncreaseCapped8PercentPerSecond) {
  AimdRateController c;
  const double r0 = c.update(BandwidthUsage::kNormal, 10000.0, at_ms(0));
  const double r1 = c.update(BandwidthUsage::kNormal, 10000.0, at_ms(1000));
  EXPECT_LE(r1, r0 * 1.081);
}

TEST(AimdRateController, DecreaseIsBetaTimesIncomingRate) {
  AimdRateController c({.beta = 0.85, .start_rate_kbps = 1000.0});
  const double r = c.update(BandwidthUsage::kOverusing, 800.0, at_ms(0));
  EXPECT_DOUBLE_EQ(r, 0.85 * 800.0);
  EXPECT_TRUE(c.decreased_last_update());
}

TEST(AimdRateController, HoldOnUnderuse) {
  AimdRateController c;
  const double r0 = c.update(BandwidthUsage::kNormal, 1000.0, at_ms(0));
  const double r1 = c.update(BandwidthUsage::kUnderusing, 1000.0, at_ms(100));
  EXPECT_DOUBLE_EQ(r1, r0);
  EXPECT_FALSE(c.decreased_last_update());
}

TEST(AimdRateController, CappedAtOneAndAHalfTimesIncoming) {
  AimdRateController c({.start_rate_kbps = 5000.0});
  const double r = c.update(BandwidthUsage::kNormal, 100.0, at_ms(0));
  EXPECT_LE(r, 150.0 + 1e-9);
}

TEST(AimdRateController, RespectsMinAndMaxBounds) {
  AimdParams p;
  p.min_rate_kbps = 50.0;
  p.max_rate_kbps = 200.0;
  p.start_rate_kbps = 100.0;
  AimdRateController c(p);
  for (int i = 0; i < 50; ++i) {
    (void)c.update(BandwidthUsage::kOverusing, 1.0, at_ms(i * 100));
  }
  EXPECT_GE(c.rate_kbps(), 50.0);
  AimdRateController c2(p);
  for (int i = 0; i < 200; ++i) {
    (void)c2.update(BandwidthUsage::kNormal, 1e6, at_ms(i * 100));
  }
  EXPECT_LE(c2.rate_kbps(), 200.0);
}

TEST(AimdRateController, AdditiveNearKneeIsSlowerThanMultiplicativeFar) {
  // After a decrease at R_hat = 1000, increases near 1000 are additive
  // (small); a controller far from its knee grows multiplicatively.
  AimdRateController near_c({.start_rate_kbps = 900.0});
  (void)near_c.update(BandwidthUsage::kOverusing, 1000.0, at_ms(0));
  (void)near_c.update(BandwidthUsage::kNormal, 1000.0, at_ms(100));  // ->incr
  const double near_before = near_c.rate_kbps();
  (void)near_c.update(BandwidthUsage::kNormal, 1000.0, at_ms(1100));
  const double near_growth = near_c.rate_kbps() - near_before;

  AimdRateController far_c({.start_rate_kbps = 900.0});
  (void)far_c.update(BandwidthUsage::kNormal, 100000.0, at_ms(100));
  const double far_before = far_c.rate_kbps();
  (void)far_c.update(BandwidthUsage::kNormal, 100000.0, at_ms(1100));
  const double far_growth = far_c.rate_kbps() - far_before;

  EXPECT_LT(near_growth, far_growth);
}

// ------------------------------------------------------------------- loss

TEST(LossBasedController, HighLossDecreasesMultiplicatively) {
  LossBasedController c({.start_rate_kbps = 1000.0});
  const double r = c.on_report(0.20);
  EXPECT_DOUBLE_EQ(r, 1000.0 * (1.0 - 0.5 * 0.20));
}

TEST(LossBasedController, LowLossIncreasesGently) {
  LossBasedController c({.start_rate_kbps = 1000.0});
  const double r = c.on_report(0.0);
  EXPECT_NEAR(r, 1051.0, 1e-9);
}

TEST(LossBasedController, MidBandHolds) {
  LossBasedController c({.start_rate_kbps = 1000.0});
  EXPECT_DOUBLE_EQ(c.on_report(0.05), 1000.0);
}

TEST(LossBasedController, ClampsToBounds) {
  LossControllerParams p;
  p.start_rate_kbps = 20.0;
  p.min_rate_kbps = 10.0;
  p.max_rate_kbps = 100.0;
  LossBasedController c(p);
  for (int i = 0; i < 100; ++i) (void)c.on_report(1.0);
  EXPECT_GE(c.rate_kbps(), 10.0);
  LossBasedController c2(p);
  for (int i = 0; i < 100; ++i) (void)c2.on_report(0.0);
  EXPECT_LE(c2.rate_kbps(), 100.0);
}

TEST(LossBasedController, GarbageLossFractionIsClamped) {
  LossBasedController c({.start_rate_kbps = 1000.0});
  EXPECT_NO_THROW(c.on_report(-3.0));
  EXPECT_NO_THROW(c.on_report(42.0));
  EXPECT_GT(c.rate_kbps(), 0.0);
}

// ----------------------------------------------- closed-loop sanity (unit)

// Simulates a constant-capacity bottleneck analytically: if the controller
// sends above capacity, the queue (and hence the one-way-delay gradient)
// grows; below, it drains.  GCC should stabilize near capacity.
TEST(GccClosedLoop, ConvergesNearConstantCapacity) {
  const double capacity_kbps = 2000.0;
  ArrivalFilter filter;
  OveruseDetector detector;
  AimdRateController aimd({.start_rate_kbps = 500.0});

  double rate = 500.0;
  double queue_ms = 0.0;
  // GCC is a sawtooth in steady state: the queue builds while the rate
  // overshoots and drains after each AIMD decrease.  Because the filter
  // controls the delay *gradient*, not the delay level, a standing queue
  // can survive (a constant drain slope reads as "normal") — so the
  // stability property to assert is boundedness of the tail queue and a
  // rate that oscillates near capacity, not a fully drained queue.
  double tail_max_queue = 0.0;
  double tail_sum_queue = 0.0;
  int tail_count = 0;
  const int kSteps = 3000;
  for (int i = 0; i < kSteps; ++i) {
    const TimePoint now = at_us(i * 33'000);
    // 33 ms of traffic at `rate` into a `capacity` drain.
    const double in_ms = 33.0 * rate / capacity_kbps;
    const double new_queue = std::max(0.0, queue_ms + in_ms - 33.0);
    const double gradient = new_queue - queue_ms;  // ms per 33 ms group
    queue_ms = new_queue;
    const double offset = filter.update(make_delta(33.0 + gradient, 33.0));
    const BandwidthUsage usage = detector.detect(offset, now);
    rate = aimd.update(usage, std::min(rate, capacity_kbps), now);
    if (i >= kSteps / 2) {
      tail_max_queue = std::max(tail_max_queue, queue_ms);
      tail_sum_queue += queue_ms;
      ++tail_count;
    }
  }
  EXPECT_GT(rate, 0.5 * capacity_kbps);
  EXPECT_LT(rate, 1.5 * capacity_kbps);
  EXPECT_LT(tail_max_queue, 5000.0);
  EXPECT_LT(tail_sum_queue / tail_count, 2000.0);
}

}  // namespace
}  // namespace sprout

// TowerCell: the PF scheduler over live synth channels with churn.
#include "link/tower_cell.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

namespace sprout {
namespace {

// A channel pinned to a constant rate — makes scheduler arithmetic exact.
class ConstantChannel : public TowerChannel {
 public:
  explicit ConstantChannel(double pps, Duration step = msec(20))
      : pps_(pps), step_(step) {}
  double advance() override { return pps_; }
  [[nodiscard]] Duration step() const override { return step_; }

 private:
  double pps_;
  Duration step_;
};

SynthSpec brownian_channel(std::uint64_t seed) {
  SynthSpec s;
  s.base = SynthSpec::Base::kBrownian;
  s.seed = seed;
  return s;
}

TEST(TowerCell, EmptyCellServesNobodyButTimeAdvances) {
  TowerCell cell(TowerCellParams{});
  EXPECT_EQ(cell.step(), -1);
  EXPECT_EQ(cell.now(), TimePoint{} + msec(2));
  EXPECT_EQ(cell.slots_served(), 0);
}

TEST(TowerCell, SoleUserGetsEverySlot) {
  TowerCell cell(TowerCellParams{});
  cell.add_user(1, std::make_unique<ConstantChannel>(500.0));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(cell.step(), 1);
  EXPECT_EQ(cell.slots_served(), 100);
  // 500 pps * 2 ms = 1 packet per slot: one opportunity per slot.
  const auto opp = cell.remove_user(1);
  EXPECT_EQ(opp.size(), 100u);
}

TEST(TowerCell, EqualUsersShareSlotsNearEqually) {
  TowerCell cell(TowerCellParams{});
  cell.add_user(1, std::make_unique<ConstantChannel>(500.0));
  cell.add_user(2, std::make_unique<ConstantChannel>(500.0));
  int served1 = 0;
  int served2 = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t id = cell.step();
    if (id == 1) ++served1;
    if (id == 2) ++served2;
  }
  // PF over identical channels alternates (the loser's average decays, so
  // it wins next); allow slack for the startup transient.
  EXPECT_NEAR(served1, served2, 10);
}

TEST(TowerCell, PfPrefersTheStrongerChannelButStarvesNobody) {
  TowerCell cell(TowerCellParams{});
  cell.add_user(1, std::make_unique<ConstantChannel>(1500.0));
  cell.add_user(2, std::make_unique<ConstantChannel>(500.0));
  int served2 = 0;
  for (int i = 0; i < 3000; ++i) {
    if (cell.step() == 2) ++served2;
  }
  // Proportional fairness equalizes the *share of time*, not throughput:
  // both users get slots even though user 1 moves 3x the bytes per slot.
  EXPECT_GT(served2, 1000);
  EXPECT_LT(served2, 2000);
}

TEST(TowerCell, DepartedUserCostsNothing) {
  TowerCell cell(TowerCellParams{});
  cell.add_user(1, std::make_unique<ConstantChannel>(500.0));
  cell.add_user(2, std::make_unique<ConstantChannel>(500.0));
  for (int i = 0; i < 10; ++i) cell.step();
  (void)cell.remove_user(2);
  EXPECT_EQ(cell.active_users(), 1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(cell.step(), 1);
}

TEST(TowerCell, RejectsDuplicateAndUnknownIds) {
  TowerCell cell(TowerCellParams{});
  cell.add_user(1, std::make_unique<ConstantChannel>(500.0));
  EXPECT_THROW(cell.add_user(1, std::make_unique<ConstantChannel>(500.0)),
               std::invalid_argument);
  EXPECT_THROW((void)cell.remove_user(99), std::invalid_argument);
}

TEST(TowerCell, LiveChannelRunsAreDeterministicPerSeed) {
  const auto run = [](std::uint64_t seed) {
    TowerCell cell(TowerCellParams{});
    cell.add_user(1, make_tower_channel(brownian_channel(1), seed));
    cell.add_user(2, make_tower_channel(brownian_channel(1), seed + 1));
    for (int i = 0; i < 5000; ++i) cell.step();
    auto a = cell.remove_user(1);
    auto b = cell.remove_user(2);
    return std::make_pair(a, b);
  };
  const auto [a1, b1] = run(7);
  const auto [a2, b2] = run(7);
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(b1, b2);
  const auto [a3, b3] = run(8);
  EXPECT_TRUE(a1 != a3 || b1 != b3);  // seed actually matters
}

TEST(TowerChannel, RejectsNonLiveSpecs) {
  SynthSpec preset;
  preset.base = SynthSpec::Base::kPreset;
  EXPECT_THROW((void)make_tower_channel(preset, 1), std::invalid_argument);
  SynthSpec with_ops = brownian_channel(1);
  with_ops.ops.push_back(SynthOp::scale(2.0));
  EXPECT_THROW((void)make_tower_channel(with_ops, 1), std::invalid_argument);
}

}  // namespace
}  // namespace sprout

// Unit tests for the §7 alternative stochastic forecasters
// (core/alt_models.h): the regime-switching MMPP model and the model-free
// empirical-quantile forecaster.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

#include "core/alt_models.h"

namespace sprout {
namespace {

SproutParams base_params() { return {}; }

template <typename RateFn>
void drive(ForecastStrategy& s, RateFn rate_fn, int ticks,
           unsigned seed = 42) {
  std::mt19937_64 gen(seed);
  const double tau = base_params().tick_seconds();
  for (int t = 0; t < ticks; ++t) {
    s.advance_tick();
    const double rate = rate_fn(t);
    if (rate <= 0.0) {
      s.observe(0);
    } else {
      std::poisson_distribution<int> d(rate * tau);
      s.observe(d(gen));
    }
  }
}

// ------------------------------------------------------------------- MMPP

TEST(Mmpp, StateGridIsAscendingWithOutageAtZero) {
  MmppForecastStrategy s(base_params());
  EXPECT_DOUBLE_EQ(s.state_rate_pps(0), 0.0);
  for (int i = 1; i < s.num_states(); ++i) {
    EXPECT_GT(s.state_rate_pps(i), s.state_rate_pps(i - 1));
  }
  EXPECT_NEAR(s.state_rate_pps(s.num_states() - 1),
              base_params().max_rate_pps, 1e-6);
}

TEST(Mmpp, BeliefStaysNormalized) {
  MmppForecastStrategy s(base_params());
  drive(s, [](int t) { return (t / 100) % 2 == 0 ? 50.0 : 700.0; }, 1000);
  double sum = 0.0;
  for (const double b : s.belief()) {
    EXPECT_GE(b, 0.0);
    sum += b;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Mmpp, TransitionRowsAreStochastic) {
  MmppForecastStrategy s(base_params());
  drive(s, [](int t) { return (t / 100) % 2 == 0 ? 50.0 : 700.0; }, 500);
  for (int i = 0; i < s.num_states(); ++i) {
    double row = 0.0;
    for (int j = 0; j < s.num_states(); ++j) {
      const double p = s.transition_probability(i, j);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
      row += p;
    }
    EXPECT_NEAR(row, 1.0, 1e-9);
  }
}

TEST(Mmpp, PriorFavorsSelfTransitions) {
  MmppForecastStrategy s(base_params());
  for (int i = 0; i < s.num_states(); ++i) {
    for (int j = 0; j < s.num_states(); ++j) {
      if (i == j) continue;
      EXPECT_GT(s.transition_probability(i, i),
                s.transition_probability(i, j));
    }
  }
}

TEST(Mmpp, PriorFavorsLocalJumps) {
  MmppForecastStrategy s(base_params());
  // Before any learning, a one-state hop must be likelier than a far jump.
  EXPECT_GT(s.transition_probability(8, 9), s.transition_probability(8, 15));
}

TEST(Mmpp, MapStateTracksTheRate) {
  MmppForecastStrategy s(base_params());
  drive(s, [](int) { return 500.0; }, 500);
  const double mapped = s.state_rate_pps(s.map_state());
  EXPECT_GT(mapped, 250.0);
  EXPECT_LT(mapped, 1000.0);
}

TEST(Mmpp, LearnsStickyRegimesFromSwitchingTrace) {
  MmppForecastStrategy s(base_params());
  // 10-second regimes: transitions out of the occupied regime should stay
  // local.  (When the true rate straddles two grid states, the MAP state
  // flips between those neighbours, so locality — not the single diagonal
  // entry — is the learned-stickiness invariant.)
  drive(s, [](int t) { return (t / 500) % 2 == 0 ? 80.0 : 800.0; }, 5000);
  const int map = s.map_state();
  double local = s.transition_probability(map, map);
  if (map > 0) local += s.transition_probability(map, map - 1);
  if (map + 1 < s.num_states()) local += s.transition_probability(map, map + 1);
  EXPECT_GT(local, 0.9);
}

TEST(Mmpp, EstimatedRateTracksTruth) {
  MmppForecastStrategy s(base_params());
  drive(s, [](int) { return 600.0; }, 800);
  EXPECT_NEAR(s.estimated_rate_pps(), 600.0, 120.0);
}

TEST(Mmpp, ForecastMonotoneInHorizon) {
  MmppForecastStrategy s(base_params());
  drive(s, [](int) { return 400.0; }, 500);
  const DeliveryForecast f = s.make_forecast(TimePoint{});
  for (int h = 1; h < f.ticks(); ++h) {
    EXPECT_LE(f.cumulative_at(h), f.cumulative_at(h + 1));
  }
}

TEST(Mmpp, OutageCollapsesForecastToZero) {
  MmppForecastStrategy s(base_params());
  drive(s, [](int) { return 400.0; }, 300);
  // 2 seconds of zero deliveries on saturated ticks: an outage.
  drive(s, [](int) { return 0.0; }, 100);
  const DeliveryForecast f = s.make_forecast(TimePoint{});
  EXPECT_EQ(f.cumulative_at(8), 0);
}

TEST(Mmpp, CensoredTicksDoNotDragBeliefDown) {
  MmppForecastStrategy s(base_params());
  drive(s, [](int) { return 500.0; }, 500);
  const double before = s.estimated_rate_pps();
  for (int t = 0; t < 100; ++t) {
    s.advance_tick();
    s.observe_lower_bound(0);  // pure heartbeat ticks
  }
  EXPECT_GT(s.estimated_rate_pps(), 0.5 * before);
}

TEST(Mmpp, CountNoiseVariantIsMoreCautious) {
  SproutParams p = base_params();
  MmppParams with_noise;
  with_noise.count_noise_in_forecast = true;
  MmppForecastStrategy cautious(p, with_noise);
  MmppForecastStrategy plain(p);
  std::mt19937_64 gen(3);
  const double tau = p.tick_seconds();
  for (int t = 0; t < 500; ++t) {
    std::poisson_distribution<int> d(400.0 * tau);
    const int k = d(gen);
    cautious.advance_tick();
    cautious.observe(k);
    plain.advance_tick();
    plain.observe(k);
  }
  EXPECT_LE(cautious.make_forecast(TimePoint{}).cumulative_at(1),
            plain.make_forecast(TimePoint{}).cumulative_at(1));
}

// -------------------------------------------------------------- empirical

TEST(Empirical, ForecastZeroWithNoHistory) {
  EmpiricalForecastStrategy s(base_params());
  const DeliveryForecast f = s.make_forecast(TimePoint{});
  EXPECT_EQ(f.cumulative_at(8), 0);
}

TEST(Empirical, ColdStartUsesSampleMean) {
  EmpiricalForecastStrategy s(base_params());
  // 10 samples of exactly 8 packets — below min_samples, so the forecast
  // is mean-based: 8 packets per tick, uncautious.
  for (int t = 0; t < 10; ++t) {
    s.advance_tick();
    s.observe(8);
  }
  const DeliveryForecast f = s.make_forecast(TimePoint{});
  EXPECT_EQ(f.cumulative_at(1), 8 * kMtuBytes);
}

TEST(Empirical, QuantileForecastIsCautiousUnderVariance) {
  SproutParams p = base_params();
  EmpiricalForecastStrategy s(p);
  // Alternating 0 and 16: mean 8/tick, but the 5th percentile of 1-tick
  // sums is 0.
  for (int t = 0; t < 200; ++t) {
    s.advance_tick();
    s.observe(t % 2 == 0 ? 0 : 16);
  }
  const DeliveryForecast f = s.make_forecast(TimePoint{});
  EXPECT_EQ(f.cumulative_at(1), 0);
  // But 2-tick sums are all 16: caution recovers at longer horizons.
  EXPECT_GE(f.cumulative_at(2), 16 * kMtuBytes);
}

TEST(Empirical, SlidingSumsPreserveCorrelation) {
  SproutParams p = base_params();
  EmpiricalForecastStrategy s(p);
  // Bursty: 8 ticks of 12 then 8 ticks of 0, repeated.  Any 8-tick stretch
  // delivers at least... the worst window is all zeros -> 5th pct small;
  // an IID model with the same mean would forecast much more.  This
  // documents that the empirical model sees the correlation.
  for (int t = 0; t < 512; ++t) {
    s.advance_tick();
    s.observe((t / 8) % 2 == 0 ? 12 : 0);
  }
  const DeliveryForecast f = s.make_forecast(TimePoint{});
  // The 5th percentile 8-tick sum is one of the all-zero stretches.
  EXPECT_LE(f.cumulative_at(8), 12 * kMtuBytes);
}

TEST(Empirical, WindowEvictsOldSamples) {
  SproutParams p = base_params();
  EmpiricalParams ep;
  ep.window_ticks = 100;
  EmpiricalForecastStrategy s(p, ep);
  for (int t = 0; t < 300; ++t) {
    s.advance_tick();
    s.observe(5);
  }
  EXPECT_EQ(s.samples(), 100u);
  // Rate collapses; within one window the old regime is forgotten.
  for (int t = 0; t < 100; ++t) {
    s.advance_tick();
    s.observe(0);
  }
  const DeliveryForecast f = s.make_forecast(TimePoint{});
  EXPECT_EQ(f.cumulative_at(8), 0);
}

TEST(Empirical, CensoredHistoryRaisesNotLowersTheForecast) {
  SproutParams p = base_params();
  EmpiricalForecastStrategy with_censored(p);
  EmpiricalForecastStrategy without(p);
  for (int t = 0; t < 200; ++t) {
    with_censored.advance_tick();
    without.advance_tick();
    without.observe(10);
    // Same history but every 4th tick was sender-limited at 1 packet.
    if (t % 4 == 0) {
      with_censored.observe_lower_bound(1);
    } else {
      with_censored.observe(10);
    }
  }
  EXPECT_GE(with_censored.make_forecast(TimePoint{}).cumulative_at(8),
            without.make_forecast(TimePoint{}).cumulative_at(8));
}

TEST(Empirical, AllCensoredWindowForecastsTheLinkCap) {
  SproutParams p = base_params();
  EmpiricalForecastStrategy s(p);
  for (int t = 0; t < 100; ++t) {
    s.advance_tick();
    s.observe_lower_bound(2);
  }
  // Everything is "at least 2": the cautious quantile must sit at the
  // physical cap, letting the sender probe upward.
  const DeliveryForecast f = s.make_forecast(TimePoint{});
  const ByteCount cap_per_tick = static_cast<ByteCount>(
      p.max_rate_pps * p.tick_seconds() * static_cast<double>(p.mtu));
  EXPECT_GE(f.cumulative_at(1), cap_per_tick / 2);
}

TEST(Empirical, EstimatedRateIgnoresCensoredTicks) {
  SproutParams p = base_params();
  EmpiricalForecastStrategy s(p);
  for (int t = 0; t < 100; ++t) {
    s.advance_tick();
    if (t % 2 == 0) {
      s.observe(10);  // 500 pps uncensored
    } else {
      s.observe_lower_bound(0);  // idle sender ticks
    }
  }
  EXPECT_NEAR(s.estimated_rate_pps(), 500.0, 1e-9);
}

TEST(Empirical, ForecastMonotoneInHorizon) {
  EmpiricalForecastStrategy s(base_params());
  std::mt19937_64 gen(11);
  for (int t = 0; t < 400; ++t) {
    s.advance_tick();
    std::poisson_distribution<int> d(7.0);
    s.observe(d(gen));
  }
  const DeliveryForecast f = s.make_forecast(TimePoint{});
  for (int h = 1; h < f.ticks(); ++h) {
    EXPECT_LE(f.cumulative_at(h), f.cumulative_at(h + 1));
  }
}

// Both alternative models and both baseline strategies satisfy the shared
// strategy contract; sweep them together.
class AllStrategies : public ::testing::TestWithParam<int> {};

std::unique_ptr<ForecastStrategy> make_strategy(int which) {
  const SproutParams p;
  switch (which) {
    case 0: return make_bayesian_strategy(p);
    case 1: return make_ewma_strategy(p);
    case 2: return make_mmpp_strategy(p);
    case 3: return make_empirical_strategy(p);
    default: return nullptr;
  }
}

TEST_P(AllStrategies, ForecastsAreNonnegativeMonotoneAndSized) {
  auto s = make_strategy(GetParam());
  std::mt19937_64 gen(17);
  for (int t = 0; t < 300; ++t) {
    s->advance_tick();
    std::poisson_distribution<int> d(6.0);
    if (t % 7 == 0) {
      s->observe_lower_bound(d(gen));
    } else {
      s->observe(d(gen));
    }
  }
  const DeliveryForecast f = s->make_forecast(TimePoint{} + sec(1));
  EXPECT_EQ(f.ticks(), SproutParams{}.forecast_horizon_ticks);
  ByteCount prev = 0;
  for (int h = 1; h <= f.ticks(); ++h) {
    EXPECT_GE(f.cumulative_at(h), prev);
    prev = f.cumulative_at(h);
  }
  EXPECT_GE(s->estimated_rate_pps(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(StrategyContract, AllStrategies,
                         ::testing::Range(0, 4));

}  // namespace
}  // namespace sprout

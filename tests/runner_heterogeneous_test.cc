// Heterogeneous shared-queue topologies: per-flow schemes, SproutParams
// overrides and staggered activity windows commingled in ONE queue.
// Covers spec validation, conservation invariants with unequal flows,
// equivalence of the homogeneous forms, and bit-identical mixed-scheme
// determinism under SweepRunner.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "runner/scenario.h"
#include "runner/sweep.h"

namespace sprout {
namespace {

const LinkPreset& verizon() {
  return find_link_preset("Verizon LTE", LinkDirection::kDownlink);
}

// Short runs throughout: these tests probe wiring, windows and
// determinism, not steady-state metrics.
ScenarioSpec short_times(ScenarioSpec spec) {
  spec.run_time = sec(12);
  spec.warmup = sec(3);
  return spec;
}

ScenarioSpec mixed_spec(SchemeId rival) {
  return short_times(heterogeneous_scenario(
      {FlowSpec::of(SchemeId::kSprout), FlowSpec::of(rival)}, verizon()));
}

void expect_identical(const ScenarioResult& a, const ScenarioResult& b) {
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t f = 0; f < a.flows.size(); ++f) {
    EXPECT_EQ(a.flows[f].label, b.flows[f].label);
    EXPECT_DOUBLE_EQ(a.flows[f].throughput_kbps, b.flows[f].throughput_kbps);
    EXPECT_DOUBLE_EQ(a.flows[f].delay95_ms, b.flows[f].delay95_ms);
    EXPECT_DOUBLE_EQ(a.flows[f].mean_delay_ms, b.flows[f].mean_delay_ms);
    EXPECT_DOUBLE_EQ(a.flows[f].coactive_throughput_kbps,
                     b.flows[f].coactive_throughput_kbps);
    EXPECT_DOUBLE_EQ(a.flows[f].capacity_share, b.flows[f].capacity_share);
  }
  EXPECT_DOUBLE_EQ(a.jain_index, b.jain_index);
  EXPECT_DOUBLE_EQ(a.capacity_kbps, b.capacity_kbps);
  EXPECT_DOUBLE_EQ(a.aggregate_throughput_kbps, b.aggregate_throughput_kbps);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.link_drops, b.link_drops);
}

TEST(Heterogeneous, SproutVsCubicReportsPerFlowMetricsAndFairness) {
  const ScenarioSpec spec = mixed_spec(SchemeId::kCubic);
  const ScenarioResult r = run_scenario(spec);

  ASSERT_EQ(r.flows.size(), 2u);
  EXPECT_EQ(r.flows[0].label, "Sprout");
  EXPECT_EQ(r.flows[0].scheme, SchemeId::kSprout);
  EXPECT_EQ(r.flows[1].label, "Cubic");
  EXPECT_EQ(r.flows[1].scheme, SchemeId::kCubic);

  // Both flows ran the whole time: the co-active window is the
  // measurement window.
  EXPECT_DOUBLE_EQ(r.coactive_from_s, 3.0);
  EXPECT_DOUBLE_EQ(r.coactive_to_s, 12.0);
  for (const FlowResult& f : r.flows) {
    EXPECT_DOUBLE_EQ(f.active_from_s, 3.0);
    EXPECT_DOUBLE_EQ(f.active_to_s, 12.0);
    EXPECT_GT(f.throughput_kbps, 0.0);
    EXPECT_DOUBLE_EQ(f.coactive_throughput_kbps, f.throughput_kbps);
    EXPECT_GE(f.capacity_share, 0.0);
  }
  EXPECT_GT(r.jain_index, 0.0);
  EXPECT_LE(r.jain_index, 1.0 + 1e-12);
}

TEST(Heterogeneous, ConservationInvariantsWithUnequalFlows) {
  // A cautious Sprout against queue-filling Cubic: shares are unequal but
  // physics still holds — nothing arrives that the link could not carry.
  const ScenarioResult r = run_scenario(mixed_spec(SchemeId::kCubic));

  EXPECT_GT(r.capacity_kbps, 0.0);
  EXPECT_GT(r.packets_delivered, 0);
  EXPECT_GE(r.link_drops, 0);
  // Arrivals ride delivery opportunities: aggregate throughput cannot
  // exceed link capacity over the same window, nor can the co-active
  // capacity shares sum past one.
  EXPECT_LE(r.aggregate_throughput_kbps, r.capacity_kbps * (1.0 + 1e-9));
  double share_sum = 0.0;
  for (const FlowResult& f : r.flows) share_sum += f.capacity_share;
  EXPECT_LE(share_sum, 1.0 + 1e-9);
  // Jain's index over n flows lives in [1/n, 1].
  EXPECT_GE(r.jain_index, 1.0 / static_cast<double>(r.flows.size()) - 1e-12);
  EXPECT_LE(r.jain_index, 1.0 + 1e-12);
}

TEST(Heterogeneous, ExplicitFlowListMatchesHomogeneousFormBitForBit) {
  // N identical FlowSpecs must be THE SAME scenario as the num_flows
  // shorthand: same wiring order, same seeds, same results.
  ScenarioSpec shorthand =
      short_times(shared_queue_scenario(SchemeId::kSprout, 2, verizon()));
  ScenarioSpec explicit_list = short_times(heterogeneous_scenario(
      {FlowSpec::of(SchemeId::kSprout), FlowSpec::of(SchemeId::kSprout)},
      verizon()));
  expect_identical(run_scenario(shorthand), run_scenario(explicit_list));
}

TEST(Heterogeneous, StaggeredWindowsClipMetricsAndCoactiveWindow) {
  FlowSpec late_cubic = FlowSpec::of(SchemeId::kCubic);
  late_cubic.start = sec(6);
  late_cubic.stop = sec(9);
  const ScenarioSpec spec = short_times(heterogeneous_scenario(
      {FlowSpec::of(SchemeId::kSprout), late_cubic}, verizon()));
  const ScenarioResult r = run_scenario(spec);

  ASSERT_EQ(r.flows.size(), 2u);
  EXPECT_DOUBLE_EQ(r.flows[0].active_from_s, 3.0);
  EXPECT_DOUBLE_EQ(r.flows[0].active_to_s, 12.0);
  EXPECT_DOUBLE_EQ(r.flows[1].active_from_s, 6.0);
  EXPECT_DOUBLE_EQ(r.flows[1].active_to_s, 9.0);
  // Co-active window = the overlap of everyone's activity.
  EXPECT_DOUBLE_EQ(r.coactive_from_s, 6.0);
  EXPECT_DOUBLE_EQ(r.coactive_to_s, 9.0);
  // The late joiner genuinely ran inside its window.
  EXPECT_GT(r.flows[1].throughput_kbps, 0.0);
  // And the full-time flow's co-active share reflects only [6 s, 9 s).
  EXPECT_GT(r.coactive_capacity_kbps, 0.0);
  EXPECT_GT(r.flows[0].coactive_throughput_kbps, 0.0);
  // Conservation holds even with unequal windows: the aggregate weights
  // each flow's rate by its own activity, so utilization stays a true
  // fraction of the link capacity.
  EXPECT_LE(r.aggregate_throughput_kbps, r.capacity_kbps * (1.0 + 1e-9));
  EXPECT_LE(r.aggregate_utilization, 1.0 + 1e-9);
}

TEST(Heterogeneous, PerFlowSproutParamsOverrideTakesEffect) {
  // Flow 1 forecasts at 25% confidence instead of the spec default 95%:
  // a materially more aggressive window must change its outcome.
  ScenarioSpec defaults = short_times(heterogeneous_scenario(
      {FlowSpec::of(SchemeId::kSprout), FlowSpec::of(SchemeId::kSprout)},
      verizon()));
  ScenarioSpec overridden = defaults;
  SproutParams aggressive;
  aggressive.confidence_percent = 25.0;
  overridden.topology.flows[1].sprout_params = aggressive;

  const ScenarioResult a = run_scenario(defaults);
  const ScenarioResult b = run_scenario(overridden);
  EXPECT_NE(a.flows[1].throughput_kbps, b.flows[1].throughput_kbps);
  // Flow 0 keeps the scenario defaults in both runs (its own dynamics
  // still shift through the shared queue, so only flow 1 is asserted).
  EXPECT_NE(a.flows[1].delay95_ms + a.flows[1].throughput_kbps,
            b.flows[1].delay95_ms + b.flows[1].throughput_kbps);
}

TEST(Heterogeneous, MixedSchemeSweepIsBitIdenticalSerialVsParallel) {
  std::vector<ScenarioSpec> specs;
  for (const SchemeId rival :
       {SchemeId::kCubic, SchemeId::kVegas, SchemeId::kGcc}) {
    for (const std::uint64_t seed : {42ull, 7ull}) {
      ScenarioSpec spec = mixed_spec(rival);
      spec.seed = seed;
      specs.push_back(spec);
    }
  }
  // One staggered cell in the mix.
  FlowSpec late = FlowSpec::of(SchemeId::kCubic);
  late.start = sec(5);
  specs.push_back(short_times(heterogeneous_scenario(
      {FlowSpec::of(SchemeId::kSprout), late}, verizon())));

  SweepRunner serial(SweepOptions{.threads = 1});
  SweepRunner parallel(SweepOptions{.threads = 8});
  const std::vector<ScenarioResult> a = serial.run(specs);
  const std::vector<ScenarioResult> b = parallel.run(specs);
  ASSERT_EQ(a.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(a[i], b[i]);
  }
}

// --- spec validation ----------------------------------------------------

TEST(HeterogeneousValidation, EmptyFlowListIsRejected) {
  EXPECT_THROW((void)TopologySpec::heterogeneous_queue({}),
               std::invalid_argument);
}

TEST(HeterogeneousValidation, StopNotAfterStartIsRejected) {
  FlowSpec bad = FlowSpec::of(SchemeId::kCubic);
  bad.start = sec(5);
  bad.stop = sec(5);
  const ScenarioSpec spec = short_times(heterogeneous_scenario(
      {FlowSpec::of(SchemeId::kSprout), bad}, verizon()));
  EXPECT_THROW((void)run_scenario(spec), std::invalid_argument);
}

TEST(HeterogeneousValidation, StartBeyondRunTimeIsRejected) {
  FlowSpec bad = FlowSpec::of(SchemeId::kCubic);
  bad.start = sec(30);  // run_time is 12 s
  const ScenarioSpec spec = short_times(heterogeneous_scenario(
      {FlowSpec::of(SchemeId::kSprout), bad}, verizon()));
  EXPECT_THROW((void)run_scenario(spec), std::invalid_argument);
}

TEST(HeterogeneousValidation, WindowInsideWarmupIsRejected) {
  // Active only during the skipped first 3 s: never measured.
  FlowSpec bad = FlowSpec::of(SchemeId::kCubic);
  bad.start = sec(1);
  bad.stop = sec(2);
  const ScenarioSpec spec = short_times(heterogeneous_scenario(
      {FlowSpec::of(SchemeId::kSprout), bad}, verizon()));
  EXPECT_THROW((void)run_scenario(spec), std::invalid_argument);
}

TEST(HeterogeneousValidation, OmniscientCannotShareAQueue) {
  const ScenarioSpec spec = mixed_spec(SchemeId::kOmniscient);
  EXPECT_THROW((void)run_scenario(spec), std::invalid_argument);
}

TEST(HeterogeneousValidation, ConflictingLinkAqmPoliciesAreRejected) {
  // Cubic-CoDel and Cubic-PIE each request a different in-network queue
  // policy; one shared queue cannot honor both.
  const ScenarioSpec spec = short_times(heterogeneous_scenario(
      {FlowSpec::of(SchemeId::kCubicCodel), FlowSpec::of(SchemeId::kCubicPie)},
      verizon()));
  EXPECT_THROW((void)run_scenario(spec), std::invalid_argument);
}

TEST(HeterogeneousValidation, SharedAqmMixIsAllowed) {
  // Sprout next to Cubic-CoDel: exactly one scheme requests an AQM, so the
  // link runs CoDel and the scenario is valid.
  const ScenarioSpec spec = mixed_spec(SchemeId::kCubicCodel);
  const ScenarioResult r = run_scenario(spec);
  EXPECT_EQ(r.flows.size(), 2u);
}

TEST(LinkAqmField, ExplicitPolicyPairsAnySchemeWithAnyDiscipline) {
  // Plain Cubic over an explicitly CoDel'd link: no scheme requests a
  // policy, the spec names one, and the run must differ from DropTail
  // (CoDel drops head-of-line packets a DropTail queue would deliver).
  ScenarioSpec droptail = mixed_spec(SchemeId::kCubic);
  ScenarioSpec codel = droptail;
  codel.link_aqm = LinkAqm::kCoDel;
  const ScenarioResult plain = run_scenario(droptail);
  const ScenarioResult managed = run_scenario(codel);
  ASSERT_EQ(managed.flows.size(), 2u);
  EXPECT_NE(plain.packets_delivered, managed.packets_delivered);
}

TEST(LinkAqmField, ExplicitDropTailMatchesTheAutoDefault) {
  // For a mix with no AQM requests, kAuto infers DropTail — so naming
  // DropTail explicitly must change nothing about the simulation.
  ScenarioSpec auto_spec = mixed_spec(SchemeId::kCubic);
  ScenarioSpec explicit_spec = auto_spec;
  explicit_spec.link_aqm = LinkAqm::kDropTail;
  expect_identical(run_scenario(auto_spec), run_scenario(explicit_spec));
}

TEST(LinkAqmField, ExplicitPolicyMatchingTheRequestIsValid) {
  ScenarioSpec spec = mixed_spec(SchemeId::kCubicCodel);
  spec.link_aqm = LinkAqm::kCoDel;  // agrees with Cubic-CoDel's request
  const ScenarioResult r = run_scenario(spec);
  EXPECT_EQ(r.flows.size(), 2u);
}

TEST(LinkAqmField, ExplicitPolicyContradictingARequestIsRejected) {
  // Cubic-CoDel's identity IS its queue policy: forcing PIE (or plain
  // DropTail) under it would silently redefine the scheme.
  ScenarioSpec spec = mixed_spec(SchemeId::kCubicCodel);
  spec.link_aqm = LinkAqm::kPie;
  EXPECT_THROW((void)run_scenario(spec), std::invalid_argument);
  spec.link_aqm = LinkAqm::kDropTail;
  EXPECT_THROW((void)run_scenario(spec), std::invalid_argument);
}

TEST(LinkAqmField, ExplicitPolicyIsCoveredByTheFingerprint) {
  // Two specs that simulate differently must derive different seeds; the
  // kAuto default hashes like the field never existed, so every
  // pre-existing spec keeps its derived seed.
  const ScenarioSpec auto_spec = mixed_spec(SchemeId::kCubic);
  ScenarioSpec pie = auto_spec;
  pie.link_aqm = LinkAqm::kPie;
  EXPECT_NE(scenario_fingerprint(auto_spec), scenario_fingerprint(pie));
  ScenarioSpec droptail = auto_spec;
  droptail.link_aqm = LinkAqm::kDropTail;
  EXPECT_NE(scenario_fingerprint(droptail), scenario_fingerprint(pie));
}

TEST(DrainTail, StoppedFlowsDrainedBytesLandInItsOwnLedger) {
  // Flow 1 (Cubic, the queue-builder) leaves at t = 6 s with a standing
  // queue behind the link; run with NO warmup so the measurement window
  // [0, 6) covers everything except the drain tail.  The windowed metrics
  // ignore bytes delivered after the stop; delivered_bytes must not.
  ScenarioSpec spec = short_times(heterogeneous_scenario(
      {FlowSpec::of(SchemeId::kSprout),
       FlowSpec::of(SchemeId::kCubic).active(sec(0), sec(6))},
      verizon()));
  spec.warmup = sec(0);
  const ScenarioResult r = run_scenario(spec);
  ASSERT_EQ(r.flows.size(), 2u);
  const FlowResult& cubic = r.flows[1];

  // Bytes the windowed throughput accounts for: rate * window length.
  const double window_s = cubic.active_to_s - cubic.active_from_s;
  const double window_bytes = cubic.throughput_kbps * 1000.0 / 8.0 * window_s;
  EXPECT_GT(cubic.delivered_bytes, 0);
  // The drain tail is real for a loss-based flow on an LTE trace: strictly
  // more bytes reached the receiver than the measurement window credits.
  EXPECT_GT(static_cast<double>(cubic.delivered_bytes),
            window_bytes + 0.5 * kMtuBytes);

  // The Sprout flow never stops: its ledger and its window agree (to
  // formatting noise), so the gap above is the tail, not a bookkeeping
  // artifact.
  const FlowResult& sprout_flow = r.flows[0];
  const double sprout_window_bytes = sprout_flow.throughput_kbps * 1000.0 /
                                     8.0 *
                                     (sprout_flow.active_to_s -
                                      sprout_flow.active_from_s);
  EXPECT_NEAR(static_cast<double>(sprout_flow.delivered_bytes),
              sprout_window_bytes, 1.0);
}

TEST(HeterogeneousValidation, FlowListOnNonSharedQueueKindIsRejected) {
  // Hand-built malformed topology: a single-flow kind carrying a flow
  // list.  Silently dropping the list would diverge from the fingerprint.
  ScenarioSpec spec = mixed_spec(SchemeId::kCubic);
  spec.topology.kind = TopologySpec::Kind::kSingleFlow;
  EXPECT_THROW((void)run_scenario(spec), std::invalid_argument);
}

TEST(HeterogeneousValidation, NumFlowsDisagreeingWithFlowListIsRejected) {
  ScenarioSpec spec = mixed_spec(SchemeId::kCubic);
  spec.topology.num_flows = 5;  // list has 2
  EXPECT_THROW((void)run_scenario(spec), std::invalid_argument);
}

TEST(Heterogeneous, DisjointActivityWindowsYieldNaNFairness) {
  // Flow A hands the link to flow B at t = 7 s: both are measured over
  // their own windows, but there is no instant where every flow was live,
  // so no fairness number exists.
  FlowSpec first = FlowSpec::of(SchemeId::kSprout);
  first.stop = sec(7);
  FlowSpec second = FlowSpec::of(SchemeId::kCubic);
  second.start = sec(7);
  const ScenarioSpec spec =
      short_times(heterogeneous_scenario({first, second}, verizon()));
  const ScenarioResult r = run_scenario(spec);
  EXPECT_TRUE(std::isnan(r.jain_index));
  EXPECT_DOUBLE_EQ(r.coactive_from_s, 0.0);
  EXPECT_DOUBLE_EQ(r.coactive_to_s, 0.0);
  EXPECT_DOUBLE_EQ(r.coactive_capacity_kbps, 0.0);
  // Per-flow metrics are still real: each flow ran inside its own window.
  EXPECT_GT(r.flows[0].throughput_kbps, 0.0);
  EXPECT_GT(r.flows[1].throughput_kbps, 0.0);
}

}  // namespace
}  // namespace sprout

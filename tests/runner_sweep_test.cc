// SweepRunner determinism: a parallel sweep must be bit-identical to a
// serial run of the same specs, per-cell seed derivation must be stable
// under reordering, and the shared caches must make per-run precomputation
// happen once per distinct key.
#include "runner/sweep.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "obs/metrics.h"
#include "runner/scenario.h"

namespace sprout {
namespace {

// Cache tallies moved into the process-global obs registry (PR 9); every
// assertion below is a delta around the run under test.
std::int64_t obs_counter(const char* name) {
  return obs::Registry::instance().counter(name).value();
}

std::vector<ScenarioSpec> grid() {
  // 3 schemes x 2 presets x 2 seeds = 12 cells, kept short: the point is
  // scheduling determinism, not steady-state metrics.
  std::vector<ScenarioSpec> specs;
  for (const SchemeId scheme :
       {SchemeId::kSprout, SchemeId::kSproutEwma, SchemeId::kCubic}) {
    for (const char* network : {"Verizon LTE", "AT&T LTE"}) {
      for (const std::uint64_t seed : {42ull, 1337ull}) {
        ScenarioSpec c;
        c.scheme = scheme;
        c.link = LinkSpec::preset(network, LinkDirection::kDownlink);
        c.run_time = sec(12);
        c.warmup = sec(3);
        c.seed = seed;
        specs.push_back(c);
      }
    }
  }
  return specs;
}

void expect_identical(const ScenarioResult& a, const ScenarioResult& b) {
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t f = 0; f < a.flows.size(); ++f) {
    EXPECT_DOUBLE_EQ(a.flows[f].throughput_kbps, b.flows[f].throughput_kbps);
    EXPECT_DOUBLE_EQ(a.flows[f].delay95_ms, b.flows[f].delay95_ms);
    EXPECT_DOUBLE_EQ(a.flows[f].mean_delay_ms, b.flows[f].mean_delay_ms);
    EXPECT_EQ(a.flows[f].delivered_bytes, b.flows[f].delivered_bytes);
  }
  EXPECT_DOUBLE_EQ(a.capacity_kbps, b.capacity_kbps);
  EXPECT_DOUBLE_EQ(a.aggregate_throughput_kbps, b.aggregate_throughput_kbps);
  EXPECT_DOUBLE_EQ(a.omniscient_delay95_ms, b.omniscient_delay95_ms);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.link_drops, b.link_drops);
}

TEST(Sweep, ParallelMatchesSerialBitForBit) {
  const std::vector<ScenarioSpec> specs = grid();

  SweepRunner serial(SweepOptions{.threads = 1});
  SweepRunner parallel(SweepOptions{.threads = 8});
  const std::vector<ScenarioResult> a = serial.run(specs);
  const std::vector<ScenarioResult> b = parallel.run(specs);

  ASSERT_EQ(a.size(), specs.size());
  ASSERT_EQ(b.size(), specs.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(a[i], b[i]);
  }
}

TEST(Sweep, MatchesDirectRunScenario) {
  std::vector<ScenarioSpec> specs = grid();
  specs.resize(4);  // keep the serial reference cheap
  SweepRunner runner(SweepOptions{.threads = 8});
  const std::vector<ScenarioResult> swept = runner.run(specs);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(swept[i], run_scenario(specs[i]));
  }
}

TEST(Sweep, CellSeedsAreStableAcrossReordering) {
  const std::vector<ScenarioSpec> specs = grid();
  std::vector<ScenarioSpec> reversed = specs;
  std::reverse(reversed.begin(), reversed.end());

  constexpr std::uint64_t kBase = 0xfeedface;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const std::size_t j = specs.size() - 1 - i;
    EXPECT_EQ(derive_cell_seed(kBase, specs[i]),
              derive_cell_seed(kBase, reversed[j]));
  }
  // Replicates that differ only in the spec's seed field derive distinct
  // cell seeds; distinct base seeds derive distinct cell seeds.
  ScenarioSpec a = specs[0];
  ScenarioSpec b = a;
  b.seed = a.seed + 1;
  EXPECT_NE(derive_cell_seed(kBase, a), derive_cell_seed(kBase, b));
  EXPECT_NE(derive_cell_seed(kBase, a), derive_cell_seed(kBase + 1, a));
}

TEST(Sweep, DerivedSeedResultsAreOrderIndependent) {
  std::vector<ScenarioSpec> specs = grid();
  specs.resize(6);
  std::vector<ScenarioSpec> reversed = specs;
  std::reverse(reversed.begin(), reversed.end());

  SweepOptions opts;
  opts.threads = 4;
  opts.base_seed = 7;
  SweepRunner forward(opts);
  SweepRunner backward(opts);
  const std::vector<ScenarioResult> a = forward.run(specs);
  const std::vector<ScenarioResult> b = backward.run(reversed);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(a[i], b[specs.size() - 1 - i]);
  }
}

TEST(Sweep, TraceCacheMaterializesEachPresetOnce) {
  const std::vector<ScenarioSpec> specs = grid();
  const std::int64_t misses_before = obs_counter("cache.traces.misses");
  const std::int64_t hits_before = obs_counter("cache.traces.hits");
  SweepRunner runner(SweepOptions{.threads = 8});
  (void)runner.run(specs);
  // 12 cells over 2 networks -> 4 distinct (network, direction, duration)
  // trace keys (each network contributes its downlink + uplink twin).
  // The runner's cache is fresh, so the deltas are exact.
  EXPECT_EQ(obs_counter("cache.traces.misses") - misses_before, 4);
  EXPECT_EQ(obs_counter("cache.traces.hits") - hits_before,
            static_cast<std::int64_t>(2 * specs.size()) - 4);
}

TEST(Sweep, ForecasterTablesBuildOncePerDistinctParams) {
  // All-Sprout sweep with default SproutParams: every cell builds two
  // forecaster-backed endpoints (plus the per-cell Sprout machinery), but
  // the Poisson CDF tables must be constructed at most once — every other
  // lookup is a cache hit.  Counters are process-global, so measure deltas.
  std::vector<ScenarioSpec> specs;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    ScenarioSpec c;
    c.scheme = SchemeId::kSprout;
    c.link = LinkSpec::preset("Verizon LTE", LinkDirection::kDownlink);
    c.run_time = sec(10);
    c.warmup = sec(2);
    c.seed = seed;
    specs.push_back(c);
  }
  const std::int64_t misses_before = obs_counter("cache.forecast_tables.misses");
  const std::int64_t hits_before = obs_counter("cache.forecast_tables.hits");
  SweepRunner runner(SweepOptions{.threads = 4});
  (void)runner.run(specs);
  const std::int64_t misses =
      obs_counter("cache.forecast_tables.misses") - misses_before;
  const std::int64_t hits =
      obs_counter("cache.forecast_tables.hits") - hits_before;
  // At most one build for the default-params key (zero if an earlier test
  // in this process already built it).
  EXPECT_LE(misses, 1);
  // Two endpoints per cell -> at least 2 * cells lookups, nearly all hits.
  EXPECT_GE(hits + misses, static_cast<std::int64_t>(2 * specs.size()));
  EXPECT_GE(hits, static_cast<std::int64_t>(2 * specs.size()) - 1);
}

TEST(Sweep, FingerprintCoversHeterogeneousFlowLists) {
  ScenarioSpec base = grid()[0];
  base.topology = TopologySpec::heterogeneous_queue(
      {FlowSpec::of(SchemeId::kSprout), FlowSpec::of(SchemeId::kCubic)});
  const std::uint64_t fp = scenario_fingerprint(base);

  // Every FlowSpec field must reach the fingerprint: a cell differing only
  // in a flow's scheme, activity window or params override gets its own
  // derived seed.
  ScenarioSpec scheme_changed = base;
  scheme_changed.topology.flows[1].scheme = SchemeId::kVegas;
  EXPECT_NE(fp, scenario_fingerprint(scheme_changed));

  ScenarioSpec start_changed = base;
  start_changed.topology.flows[1].start = sec(5);
  EXPECT_NE(fp, scenario_fingerprint(start_changed));

  ScenarioSpec stop_changed = base;
  stop_changed.topology.flows[1].stop = sec(10);
  EXPECT_NE(fp, scenario_fingerprint(stop_changed));

  ScenarioSpec params_changed = base;
  SproutParams override_params;
  override_params.confidence_percent = 75.0;
  params_changed.topology.flows[0].sprout_params = override_params;
  EXPECT_NE(fp, scenario_fingerprint(params_changed));

  // The explicit all-default list SIMULATES identically to the num_flows
  // shorthand, so the two encodings must fingerprint identically: a sweep
  // derives the same seed either way.
  ScenarioSpec shorthand = grid()[0];
  shorthand.topology = TopologySpec::shared_queue(2);
  ScenarioSpec explicit_list = grid()[0];
  explicit_list.topology = TopologySpec::heterogeneous_queue(
      {FlowSpec::of(shorthand.scheme), FlowSpec::of(shorthand.scheme)});
  EXPECT_EQ(scenario_fingerprint(shorthand),
            scenario_fingerprint(explicit_list));
  // But a list that diverges from the shorthand (different scheme) is a
  // different simulation and hashes differently.
  ScenarioSpec diverged = explicit_list;
  diverged.topology.flows[1].scheme = SchemeId::kCubic;
  EXPECT_NE(scenario_fingerprint(shorthand), scenario_fingerprint(diverged));
}

TEST(Sweep, TransitionMatricesBuildOncePerDistinctParams) {
  // Mirror of ForecasterTablesBuildOncePerDistinctParams for the evolution
  // kernel: each Sprout cell builds several filters/forecasters, but the
  // default-params matrix is constructed at most once per process.
  std::vector<ScenarioSpec> specs;
  for (const std::uint64_t seed : {11ull, 12ull, 13ull, 14ull}) {
    ScenarioSpec c;
    c.scheme = SchemeId::kSprout;
    c.link = LinkSpec::preset("Verizon LTE", LinkDirection::kDownlink);
    c.run_time = sec(10);
    c.warmup = sec(2);
    c.seed = seed;
    specs.push_back(c);
  }
  const std::int64_t misses_before =
      obs_counter("cache.transition_matrix.misses");
  const std::int64_t hits_before = obs_counter("cache.transition_matrix.hits");
  SweepRunner runner(SweepOptions{.threads = 4});
  (void)runner.run(specs);
  const std::int64_t misses =
      obs_counter("cache.transition_matrix.misses") - misses_before;
  const std::int64_t hits =
      obs_counter("cache.transition_matrix.hits") - hits_before;
  EXPECT_LE(misses, 1);
  // Two endpoints per cell, each with a filter and a forecaster.
  EXPECT_GE(hits + misses, static_cast<std::int64_t>(4 * specs.size()));
  EXPECT_GE(hits, static_cast<std::int64_t>(4 * specs.size()) - 1);
}

TEST(Sweep, FirstFailureInInputOrderIsRethrown) {
  std::vector<ScenarioSpec> specs = grid();
  specs.resize(3);
  // The builders validate eagerly, so an invalid cell has to be assembled
  // field-by-field; run_scenario re-validates and throws inside the pool.
  specs[1].topology.kind = TopologySpec::Kind::kSharedQueue;
  specs[1].topology.num_flows = 0;  // invalid
  SweepRunner runner(SweepOptions{.threads = 4});
  EXPECT_THROW((void)runner.run(specs), std::invalid_argument);
}

}  // namespace
}  // namespace sprout

#include "tunnel/tunnel.h"

#include <gtest/gtest.h>

#include <limits>

#include "link/cellsim.h"
#include "metrics/flow_metrics.h"
#include "sim/relay.h"
#include "trace/synthetic.h"

namespace sprout {
namespace {

Packet client_packet(std::int64_t flow, ByteCount size, std::int64_t seq = 0) {
  Packet p;
  p.flow_id = flow;
  p.size = size;
  p.seq = seq;
  return p;
}

TEST(TunnelMux, RoundRobinAcrossFlows) {
  TunnelDataSource mux(TunnelConfig{});
  // Two flows, three packets each.
  for (int i = 0; i < 3; ++i) {
    mux.offer(client_packet(1, 1000, i));
    mux.offer(client_packet(2, 1000, i));
  }
  // Pull one packet at a time: flows must alternate.
  std::vector<std::int64_t> order;
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(mux.pull(1000), 1000);
    Packet wire;
    mux.fill(wire, 1000);
    ASSERT_EQ(wire.tunneled.size(), 1u);
    order.push_back(wire.tunneled[0].flow_id);
  }
  EXPECT_EQ(order, (std::vector<std::int64_t>{1, 2, 1, 2, 1, 2}));
  EXPECT_FALSE(mux.has_data());
}

TEST(TunnelMux, PacksWholePacketsUpToBudget) {
  TunnelDataSource mux(TunnelConfig{});
  mux.offer(client_packet(1, 600));
  mux.offer(client_packet(1, 600));
  mux.offer(client_packet(1, 600));
  // 1400-byte budget fits two 600-byte packets, not three.
  EXPECT_EQ(mux.pull(1400), 1200);
  Packet wire;
  mux.fill(wire, 1200);
  EXPECT_EQ(wire.tunneled.size(), 2u);
  EXPECT_EQ(mux.queued_bytes(), 600);
}

TEST(TunnelMux, HeadDropFromLongestQueueWhenOverBound) {
  TunnelConfig config;
  config.min_buffer_bytes = 5000;
  TunnelDataSource mux(config);
  // Flow 1 queues 4000 bytes, flow 2 queues 1000: next arrival overflows
  // and must come from flow 1's HEAD.
  for (int i = 0; i < 4; ++i) mux.offer(client_packet(1, 1000, i));
  mux.offer(client_packet(2, 1000, 100));
  EXPECT_EQ(mux.dropped_packets(), 0);
  mux.offer(client_packet(1, 1000, 4));
  EXPECT_GE(mux.dropped_packets(), 1);
  EXPECT_LE(mux.queued_bytes(), 5000);
  // The head (seq 0) of flow 1 was the victim: pulling flow 1 starts at 1.
  ASSERT_GT(mux.pull(1000), 0);
  Packet wire;
  mux.fill(wire, 1000);
  ASSERT_EQ(wire.tunneled.size(), 1u);
  EXPECT_EQ(wire.tunneled[0].seq, 1);
}

TEST(TunnelMux, BoundProviderOverridesFloor) {
  TunnelConfig config;
  config.min_buffer_bytes = 2000;
  TunnelDataSource mux(config);
  mux.set_bound_provider([] { return ByteCount{10000}; });
  for (int i = 0; i < 9; ++i) mux.offer(client_packet(1, 1000, i));
  EXPECT_EQ(mux.dropped_packets(), 0);  // forecast-driven bound is roomier
}

// Full tunnel across an emulated link.
struct TunnelFixture {
  Simulator sim;
  RelaySink down_egress, up_egress;
  CellsimLink down_link, up_link;
  TunnelEndpoint server, mobile;

  explicit TunnelFixture(double pps)
      : down_link(sim,
                  generate_trace(
                      [&] {
                        CellProcessParams p;
                        p.mean_rate_pps = pps;
                        p.max_rate_pps = pps * 2;
                        p.volatility_pps = 0.0;
                        p.outage_hazard_per_s = 0.0;
                        return p;
                      }(),
                      sec(31), 81),
                  {}, down_egress),
        up_link(sim,
                generate_trace(
                    [&] {
                      CellProcessParams p;
                      p.mean_rate_pps = pps;
                      p.max_rate_pps = pps * 2;
                      p.volatility_pps = 0.0;
                      p.outage_hazard_per_s = 0.0;
                      return p;
                    }(),
                    sec(31), 82),
                {}, up_egress),
        server(sim, SproutParams{}, SproutVariant::kBayesian, 100),
        mobile(sim, SproutParams{}, SproutVariant::kBayesian, 100) {
    server.attach_network(down_link);
    mobile.attach_network(up_link);
    down_egress.set_target(mobile.network_sink());
    up_egress.set_target(server.network_sink());
    server.start();
    mobile.start();
  }
};

TEST(TunnelEndpointTest, DeliversClientPacketsEndToEnd) {
  TunnelFixture f(500.0);
  struct Collector : PacketSink {
    std::vector<Packet> got;
    void receive(Packet&& p) override { got.push_back(std::move(p)); }
  } out;
  f.mobile.set_egress(7, out);
  const ByteCount mtu = f.server.client_mtu();
  EXPECT_GT(mtu, 1000);
  // Let the Sprout session's forecasts establish, then offer packets at a
  // pace the tunnel's forecast-bounded buffer accommodates.
  f.sim.run_until(TimePoint{} + sec(2));
  int offered = 0;
  std::function<void()> offer = [&] {
    for (int i = 0; i < 5; ++i) {
      Packet p = client_packet(7, mtu, offered++);
      p.sent_at = f.sim.now();
      f.server.ingress().receive(std::move(p));
    }
    if (offered < 50) f.sim.after(msec(40), offer);
  };
  offer();
  f.sim.run_until(TimePoint{} + sec(7));
  ASSERT_GT(out.got.size(), 40u);  // nearly all arrive
  // In order.
  for (std::size_t i = 1; i < out.got.size(); ++i) {
    EXPECT_GT(out.got[i].seq, out.got[i - 1].seq);
  }
}

TEST(TunnelEndpointTest, IsolatesFlowsUnderOverload) {
  TunnelFixture f(100.0);  // 1200 kbps tunnel capacity
  struct Collector : PacketSink {
    ByteCount bytes = 0;
    void receive(Packet&& p) override { bytes += p.size; }
  } bulk_out, interactive_out;
  f.mobile.set_egress(1, bulk_out);
  f.mobile.set_egress(2, interactive_out);
  const ByteCount mtu = f.server.client_mtu();
  // Offer a greedy bulk flow (4x capacity) and a light interactive flow
  // (~10% capacity) for 20 seconds.
  std::function<void()> offer = [&] {
    for (int i = 0; i < 7; ++i) {
      f.server.ingress().receive(client_packet(1, mtu));
    }
    f.server.ingress().receive(client_packet(2, 600));
    if (f.sim.now() < TimePoint{} + sec(20)) {
      f.sim.after(msec(20), offer);
    }
  };
  f.sim.after(msec(20), offer);
  f.sim.run_until(TimePoint{} + sec(25));

  // The interactive flow gets through nearly unharmed: round-robin service
  // and head-drop from the LONGEST queue protect it.
  const ByteCount interactive_offered = 600 * 1000;  // ~1000 offers
  EXPECT_GT(interactive_out.bytes, interactive_offered / 2);
  // The bulk flow got the rest of the capacity, far below its offer.
  EXPECT_GT(bulk_out.bytes, 0);
  EXPECT_GT(f.server.mux().dropped_packets(), 0);  // overload was shed
}

TEST(TunnelEndpointTest, ManyEqualFlowsShareTheTunnelFairly) {
  TunnelFixture f(200.0);  // 2400 kbps tunnel capacity
  constexpr int kFlows = 5;
  struct Collector : PacketSink {
    ByteCount bytes = 0;
    void receive(Packet&& p) override { bytes += p.size; }
  };
  std::vector<Collector> outs(kFlows);
  for (int flow = 0; flow < kFlows; ++flow) {
    f.mobile.set_egress(flow + 1, outs[static_cast<std::size_t>(flow)]);
  }
  const ByteCount mtu = f.server.client_mtu();
  // Every flow offers 2x its fair share, continuously.
  std::function<void()> offer = [&] {
    for (int flow = 0; flow < kFlows; ++flow) {
      f.server.ingress().receive(client_packet(flow + 1, mtu));
    }
    if (f.sim.now() < TimePoint{} + sec(20)) f.sim.after(msec(25), offer);
  };
  f.sim.after(msec(20), offer);
  f.sim.run_until(TimePoint{} + sec(25));

  ByteCount min_bytes = std::numeric_limits<ByteCount>::max();
  ByteCount max_bytes = 0;
  for (const Collector& c : outs) {
    EXPECT_GT(c.bytes, 0);
    min_bytes = std::min(min_bytes, c.bytes);
    max_bytes = std::max(max_bytes, c.bytes);
  }
  // Round-robin fill + longest-queue head-drop: identical offers must get
  // near-identical service.
  EXPECT_LT(static_cast<double>(max_bytes) / static_cast<double>(min_bytes),
            1.15);
}

TEST(TunnelEndpointTest, BufferingBoundTracksForecast) {
  TunnelFixture f(300.0);
  f.sim.run_until(TimePoint{} + sec(2));  // let forecasts flow
  const ByteCount mtu = f.server.client_mtu();
  // Dump a large burst; the mux must hold only ~the forecast life worth.
  for (int i = 0; i < 400; ++i) {
    f.server.ingress().receive(client_packet(1, mtu, i));
  }
  EXPECT_LT(f.server.mux().queued_bytes(), 400 * mtu);
  EXPECT_GT(f.server.mux().dropped_packets(), 0);
}

}  // namespace
}  // namespace sprout

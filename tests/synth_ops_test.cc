#include "synth/ops.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "synth/models.h"

namespace sprout {
namespace {

// A dense, featureless base: constant 400 pkt/s over 30 s.
Trace base_trace() {
  double rate = 400.0;
  return poisson_trace_from_rate([&] { return rate; }, msec(20), sec(30),
                                 /*placement_seed=*/17);
}

TEST(SynthOps, IntegralScaleMultipliesCountsExactly) {
  const Trace base = base_trace();
  const Trace doubled = apply_synth_op(SynthOp::scale(2.0), base, 1);
  EXPECT_EQ(doubled.size(), 2 * base.size());
  EXPECT_EQ(doubled.duration(), base.duration());
  EXPECT_TRUE(std::is_sorted(doubled.opportunities().begin(),
                             doubled.opportunities().end()));
}

TEST(SynthOps, FractionalScaleThinsProportionally) {
  const Trace base = base_trace();
  const Trace halved = apply_synth_op(SynthOp::scale(0.5), base, 1);
  const double ratio =
      static_cast<double>(halved.size()) / static_cast<double>(base.size());
  EXPECT_NEAR(ratio, 0.5, 0.05);
  // Thinning keeps a subset: every kept instant exists in the base.
  EXPECT_TRUE(std::includes(base.opportunities().begin(),
                            base.opportunities().end(),
                            halved.opportunities().begin(),
                            halved.opportunities().end()));
}

TEST(SynthOps, OutageOverlayCreatesLongGaps) {
  const Trace base = base_trace();
  // ~3 s of every ~10 s dark: removes a large fraction and leaves gaps far
  // beyond anything a constant 400 pkt/s Poisson stream produces.
  const Trace dark =
      apply_synth_op(SynthOp::outage(/*mean_on_s=*/7.0, /*mean_off_s=*/3.0),
                     base, 5);
  EXPECT_LT(dark.size(), base.size());
  Duration longest = Duration::zero();
  for (const Duration g : dark.interarrivals()) longest = std::max(longest, g);
  EXPECT_GT(longest, msec(500));
}

TEST(SynthOps, SawtoothThinsOnlyInsideTheRamp) {
  const Trace base = base_trace();
  const SynthOp op = SynthOp::sawtooth(/*period_s=*/10.0, /*depth=*/0.9,
                                       /*ramp_s=*/2.0);
  const Trace dipped = apply_synth_op(op, base, 9);
  EXPECT_LT(dipped.size(), base.size());
  // Outside the ramp the envelope is 1: every opportunity with phase in
  // [ramp, period) survives.
  std::size_t base_outside = 0;
  std::size_t dipped_outside = 0;
  const auto outside = [&](TimePoint t) {
    const double phase =
        std::fmod(to_seconds(t.time_since_epoch()), op.period_s);
    return phase >= op.ramp_s;
  };
  for (const TimePoint t : base.opportunities()) {
    if (outside(t)) ++base_outside;
  }
  for (const TimePoint t : dipped.opportunities()) {
    if (outside(t)) ++dipped_outside;
  }
  EXPECT_EQ(base_outside, dipped_outside);
}

TEST(SynthOps, ZeroDepthSawtoothIsIdentity) {
  const Trace base = base_trace();
  const Trace same =
      apply_synth_op(SynthOp::sawtooth(10.0, 0.0, 2.0), base, 9);
  EXPECT_EQ(same.opportunities(), base.opportunities());
}

TEST(SynthOps, JitterPreservesCountAndWindow) {
  const Trace base = base_trace();
  const Trace moved = apply_synth_op(SynthOp::jitter(0.05), base, 3);
  EXPECT_EQ(moved.size(), base.size());
  EXPECT_EQ(moved.duration(), base.duration());
  EXPECT_TRUE(std::is_sorted(moved.opportunities().begin(),
                             moved.opportunities().end()));
  for (const TimePoint t : moved.opportunities()) {
    EXPECT_GE(t.time_since_epoch(), Duration::zero());
    EXPECT_LT(t.time_since_epoch(), moved.duration());
  }
  EXPECT_NE(moved.opportunities(), base.opportunities());
}

TEST(SynthOps, SpliceTilesTheListedWindows) {
  const Trace base = base_trace();
  // Tile the first five seconds over the whole 30 s window.
  const Trace tiled = apply_synth_op(
      SynthOp::splice({{0.0, 5.0}}), base, 1);
  EXPECT_EQ(tiled.duration(), base.duration());
  // Six copies of a 5 s window: within Poisson noise of 6x the window's
  // own count, and exactly periodic across copies.
  const auto in_window = [&](const Trace& t, double from_s, double to_s) {
    std::size_t n = 0;
    for (const TimePoint p : t.opportunities()) {
      const double s = to_seconds(p.time_since_epoch());
      if (s >= from_s && s < to_s) ++n;
    }
    return n;
  };
  const std::size_t first = in_window(base, 0.0, 5.0);
  EXPECT_EQ(tiled.size(), 6 * first);
  EXPECT_EQ(in_window(tiled, 5.0, 10.0), first);
}

TEST(SynthOps, OpsAreDeterministicPerSeed) {
  const Trace base = base_trace();
  for (const SynthOp& op :
       {SynthOp::outage(5.0, 1.0), SynthOp::sawtooth(8.0, 0.7, 2.0),
        SynthOp::scale(1.5), SynthOp::jitter(0.01)}) {
    const Trace a = apply_synth_op(op, base, 42);
    const Trace b = apply_synth_op(op, base, 42);
    EXPECT_EQ(a.opportunities(), b.opportunities()) << to_string(op.kind);
    const Trace c = apply_synth_op(op, base, 43);
    EXPECT_NE(c.opportunities(), a.opportunities()) << to_string(op.kind);
  }
}

TEST(SynthOps, ValidationRejectsBadParameters) {
  const Trace base = base_trace();
  EXPECT_THROW(apply_synth_op(SynthOp::scale(0.0), base, 1),
               std::invalid_argument);
  EXPECT_THROW(apply_synth_op(SynthOp::outage(0.0, 1.0), base, 1),
               std::invalid_argument);
  EXPECT_THROW(apply_synth_op(SynthOp::sawtooth(10.0, 1.5, 2.0), base, 1),
               std::invalid_argument);
  EXPECT_THROW(apply_synth_op(SynthOp::sawtooth(10.0, 0.5, 20.0), base, 1),
               std::invalid_argument);
  EXPECT_THROW(apply_synth_op(SynthOp::jitter(-0.1), base, 1),
               std::invalid_argument);
  EXPECT_THROW(apply_synth_op(SynthOp::splice({}), base, 1),
               std::invalid_argument);
  EXPECT_THROW(apply_synth_op(SynthOp::splice({{3.0, 2.0}}), base, 1),
               std::invalid_argument);
  // Overflow guards: seconds beyond the integer-microsecond range would
  // wrap a cursor negative (an infinite loop, not an error), and a huge
  // scale factor would overflow the copy count.
  EXPECT_THROW(apply_synth_op(SynthOp::splice({{0.0, 1e18}}), base, 1),
               std::invalid_argument);
  EXPECT_THROW(apply_synth_op(SynthOp::outage(1e18, 1.0), base, 1),
               std::invalid_argument);
  EXPECT_THROW(apply_synth_op(SynthOp::scale(1e30), base, 1),
               std::invalid_argument);
  EXPECT_THROW(apply_synth_op(SynthOp::jitter(1e18), base, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace sprout

#include "synth/models.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "synth/synth.h"

namespace sprout {
namespace {

TEST(BrownianRateProcess, ZeroSigmaHoldsInitialRate) {
  BrownianModelParams p;
  p.init_rate_pps = 250.0;
  p.sigma_pps_per_sqrt_s = 0.0;
  BrownianRateProcess proc(p, 1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_DOUBLE_EQ(proc.advance(), 250.0);
  }
}

TEST(BrownianRateProcess, StaysWithinBounds) {
  BrownianModelParams p;
  p.init_rate_pps = 300.0;
  p.max_rate_pps = 500.0;
  p.sigma_pps_per_sqrt_s = 600.0;  // violent
  BrownianRateProcess proc(p, 7);
  for (int i = 0; i < 20000; ++i) {
    const double r = proc.advance();
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 500.0);
  }
}

TEST(BrownianRateProcess, OutagesAreEnteredAtZeroAndEscaped) {
  BrownianModelParams p;
  p.init_rate_pps = 50.0;   // starts near the floor: outages are likely
  p.sigma_pps_per_sqrt_s = 300.0;
  p.outage_escape_rate_per_s = 4.0;
  p.resume_rate_pps = 25.0;
  BrownianRateProcess proc(p, 11);
  bool saw_outage = false;
  bool saw_resume = false;
  bool was_in_outage = false;
  for (int i = 0; i < 50000; ++i) {
    const double r = proc.advance();
    if (proc.in_outage()) {
      saw_outage = true;
      EXPECT_DOUBLE_EQ(r, 0.0);
    } else if (was_in_outage) {
      saw_resume = true;
      EXPECT_DOUBLE_EQ(r, 25.0);  // links come back at the resume rate
    }
    was_in_outage = proc.in_outage();
  }
  EXPECT_TRUE(saw_outage);
  EXPECT_TRUE(saw_resume);
}

TEST(BrownianRateProcess, InvalidParamsAreRejected) {
  BrownianModelParams bad;
  bad.init_rate_pps = 0.0;
  EXPECT_THROW(BrownianRateProcess(bad, 1), std::invalid_argument);
  bad = {};
  bad.max_rate_pps = 10.0;  // below init
  EXPECT_THROW(BrownianRateProcess(bad, 1), std::invalid_argument);
  bad = {};
  bad.outage_escape_rate_per_s = 0.0;
  EXPECT_THROW(BrownianRateProcess(bad, 1), std::invalid_argument);
  bad = {};
  bad.step = Duration::zero();
  EXPECT_THROW(BrownianRateProcess(bad, 1), std::invalid_argument);
}

TEST(MarkovRateProcess, SingleStateIsConstant) {
  MarkovModelParams p;
  p.states = {{123.0, 1.0}};
  MarkovRateProcess proc(p, 5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_DOUBLE_EQ(proc.advance(), 123.0);
  }
}

TEST(MarkovRateProcess, VisitsEveryStateAndOnlyListedRates) {
  MarkovModelParams p;  // default three-regime cell
  MarkovRateProcess proc(p, 9);
  std::vector<int> visits(p.states.size(), 0);
  for (int i = 0; i < 200000; ++i) {  // 4000 simulated seconds
    const double r = proc.advance();
    bool listed = false;
    for (std::size_t s = 0; s < p.states.size(); ++s) {
      if (r == p.states[s].rate_pps) {
        ++visits[s];
        listed = true;
        break;
      }
    }
    ASSERT_TRUE(listed) << "rate " << r << " is not any state's rate";
  }
  for (std::size_t s = 0; s < visits.size(); ++s) {
    EXPECT_GT(visits[s], 0) << "state " << s << " never visited";
  }
}

TEST(MarkovRateProcess, DwellTimesScaleOccupancy) {
  // State 1 dwells 10x longer than state 0, so it should dominate.
  MarkovModelParams p;
  p.states = {{100.0, 0.5}, {700.0, 5.0}};
  MarkovRateProcess proc(p, 13);
  int high = 0;
  const int steps = 100000;
  for (int i = 0; i < steps; ++i) {
    if (proc.advance() == 700.0) ++high;
  }
  EXPECT_GT(static_cast<double>(high) / steps, 0.75);
}

TEST(MarkovRateProcess, InvalidParamsAreRejected) {
  MarkovModelParams bad;
  bad.states.clear();
  EXPECT_THROW(MarkovRateProcess(bad, 1), std::invalid_argument);
  bad = {};
  bad.states[0].mean_dwell_s = 0.0;
  EXPECT_THROW(MarkovRateProcess(bad, 1), std::invalid_argument);
  bad = {};
  bad.states[0].rate_pps = -1.0;
  EXPECT_THROW(MarkovRateProcess(bad, 1), std::invalid_argument);
}

TEST(PoissonTraceFromRate, MatchesConstantRateAndStaysSorted) {
  double rate = 400.0;
  const Trace trace = poisson_trace_from_rate([&] { return rate; }, msec(20),
                                              sec(60), /*placement_seed=*/21);
  EXPECT_TRUE(std::is_sorted(trace.opportunities().begin(),
                             trace.opportunities().end()));
  // 24000 expected opportunities; 5 sigma ~ 775.
  EXPECT_NEAR(static_cast<double>(trace.size()), 24000.0, 800.0);
  EXPECT_EQ(trace.duration(), sec(60));
  for (const TimePoint t : trace.opportunities()) {
    EXPECT_LT(t.time_since_epoch(), sec(60));
  }
}

TEST(GenerateSynthTrace, EveryBaseFamilyProducesAUsableTrace) {
  const Duration duration = sec(20);
  for (const SynthSpec& spec :
       {SynthSpec::brownian_model({}, 3), SynthSpec::markov_model({}, 3),
        SynthSpec::cox_model({}, 3),
        SynthSpec::preset_base("Verizon LTE", LinkDirection::kDownlink)}) {
    const Trace trace = generate_synth_trace(spec, duration);
    EXPECT_FALSE(trace.empty()) << spec.label();
    EXPECT_EQ(trace.duration(), duration) << spec.label();
    EXPECT_TRUE(std::is_sorted(trace.opportunities().begin(),
                               trace.opportunities().end()))
        << spec.label();
  }
}

TEST(GenerateSynthTrace, ValidationSurfacesBadSpecs) {
  SynthSpec bad = SynthSpec::preset_base("No Such Network",
                                         LinkDirection::kDownlink);
  EXPECT_THROW(generate_synth_trace(bad, sec(5)), std::invalid_argument);
  SynthSpec empty_path = SynthSpec::trace_file("");
  EXPECT_THROW(generate_synth_trace(empty_path, sec(5)),
               std::invalid_argument);
  SynthSpec bad_op = SynthSpec::brownian_model({}, 1)
                         .with_op(SynthOp::scale(-1.0));
  EXPECT_THROW(generate_synth_trace(bad_op, sec(5)), std::invalid_argument);
  EXPECT_THROW(generate_synth_trace(SynthSpec{}, Duration::zero()),
               std::invalid_argument);
}

}  // namespace
}  // namespace sprout

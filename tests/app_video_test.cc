#include "app/video_app.h"

#include <gtest/gtest.h>

#include "link/cellsim.h"
#include "metrics/flow_metrics.h"
#include "sim/relay.h"
#include "trace/synthetic.h"

namespace sprout {
namespace {

CellProcessParams steady(double pps) {
  CellProcessParams p;
  p.mean_rate_pps = pps;
  p.max_rate_pps = pps * 2;
  p.volatility_pps = 0.0;
  p.outage_hazard_per_s = 0.0;
  return p;
}

TEST(VideoProfiles, MatchPaperEnvelope) {
  EXPECT_NEAR(skype_profile().max_rate_kbps, 5000.0, 1e-9);  // §5.2 footnote
  EXPECT_LT(hangout_profile().max_rate_kbps, skype_profile().max_rate_kbps);
  EXPECT_GT(skype_profile().reaction_lag, sec(1));  // sluggish by design
}

TEST(VideoSender, SendsFramesAtConfiguredRate) {
  Simulator sim;
  struct Counter : PacketSink {
    ByteCount bytes = 0;
    int packets = 0;
    void receive(Packet&& p) override {
      bytes += p.size;
      ++packets;
    }
  } sink;
  VideoProfile profile = skype_profile();
  profile.start_rate_kbps = 1000.0;
  VideoSender tx(sim, profile, 1);
  tx.attach_network(sink);
  tx.start();
  sim.run_until(TimePoint{} + sec(1));
  // Before any adaptation kicks in, ~1000 kbps = 125000 bytes/s.
  EXPECT_NEAR(static_cast<double>(sink.bytes), 125000.0, 20000.0);
  EXPECT_GT(sink.packets, 25);  // one or more packets per 33 ms frame
}

TEST(VideoSender, LargeFramesSplitAtPacketLimit) {
  Simulator sim;
  struct Sizes : PacketSink {
    std::vector<ByteCount> sizes;
    void receive(Packet&& p) override { sizes.push_back(p.size); }
  } sink;
  VideoProfile profile = skype_profile();
  profile.start_rate_kbps = 4000.0;  // ~16.5 kB per frame
  profile.max_packet_bytes = 1200;
  VideoSender tx(sim, profile, 1);
  tx.attach_network(sink);
  tx.start();
  sim.run_until(TimePoint{} + msec(200));
  ASSERT_FALSE(sink.sizes.empty());
  for (ByteCount s : sink.sizes) EXPECT_LE(s, 1200);
}

TEST(VideoReceiver, ReportsLossFraction) {
  Simulator sim;
  struct ReportSink : PacketSink {
    std::vector<Packet> reports;
    void receive(Packet&& p) override { reports.push_back(std::move(p)); }
  } reports;
  VideoReceiver rx(sim, 1);
  rx.attach_report_path(reports);
  rx.start();
  // Deliver seq 0..9 but drop half (odd seqs never arrive).
  sim.after(msec(100), [&] {
    for (std::int64_t s = 0; s < 10; s += 2) {
      Packet p;
      p.seq = s;
      p.size = 1000;
      p.sent_at = sim.now() - msec(30);
      rx.receive(std::move(p));
    }
  });
  sim.run_until(TimePoint{} + msec(1100));
  ASSERT_FALSE(reports.reports.empty());
  // 5 of expected 9 received -> loss ~0.444; meta is ppm.
  const double loss = static_cast<double>(reports.reports[0].meta) / 1e6;
  EXPECT_NEAR(loss, 4.0 / 9.0, 0.01);
}

TEST(VideoApp, AdaptsDownUnderCongestionAndBackUp) {
  // Run the Skype model over a link far slower than its start rate: the
  // rate must come down after the reaction lag; then, on a fast link, the
  // rate must climb.
  Simulator sim;
  RelaySink fwd_egress, rev_egress;
  CellsimLink fwd_link(sim, generate_trace(steady(30.0), sec(41), 61), {},
                       fwd_egress);  // 360 kbps
  CellsimLink rev_link(sim, generate_trace(steady(100.0), sec(41), 62), {},
                       rev_egress);
  VideoProfile profile = skype_profile();
  profile.start_rate_kbps = 2000.0;
  VideoSender tx(sim, profile, 1);
  VideoReceiver rx(sim, 1);
  tx.attach_network(fwd_link);
  rx.attach_report_path(rev_link);
  MeasuredSink measured(sim, rx);
  fwd_egress.set_target(measured);
  rev_egress.set_target(tx);
  tx.start();
  rx.start();
  sim.run_until(TimePoint{} + sec(40));
  EXPECT_LT(tx.current_rate_kbps(), 2000.0);
}

TEST(VideoApp, OvershootCreatesStandingQueue) {
  // The paper's Figure 1 phenomenon: a reactive app on a slow link builds
  // multi-second queues before it reacts.
  Simulator sim;
  RelaySink fwd_egress, rev_egress;
  CellsimLink fwd_link(sim, generate_trace(steady(20.0), sec(31), 63), {},
                       fwd_egress);  // 240 kbps
  CellsimLink rev_link(sim, generate_trace(steady(100.0), sec(31), 64), {},
                       rev_egress);
  VideoProfile profile = skype_profile();
  profile.start_rate_kbps = 1500.0;
  VideoSender tx(sim, profile, 1);
  VideoReceiver rx(sim, 1);
  tx.attach_network(fwd_link);
  rx.attach_report_path(rev_link);
  MeasuredSink measured(sim, rx);
  fwd_egress.set_target(measured);
  rev_egress.set_target(tx);
  tx.start();
  rx.start();
  sim.run_until(TimePoint{} + sec(30));
  const double d95 = measured.metrics().delay_percentile_ms(
      95.0, TimePoint{} + sec(5), TimePoint{} + sec(30));
  EXPECT_GT(d95, 1000.0);  // seconds of self-inflicted queueing
}

}  // namespace
}  // namespace sprout

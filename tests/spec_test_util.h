// Shared assertion helper for the spec subsystem's test suites: the spec
// reader's contract is its error MESSAGES (path-aware, operator-facing),
// so tests assert on substrings of SpecError::what().
#pragma once

#include <gtest/gtest.h>

#include <string>

#include "spec/schema.h"

namespace sprout::spec {

// Expects `fn` to throw SpecError whose message contains `needle`, and
// returns the full message for further checks.
template <typename Fn>
std::string expect_spec_error(Fn&& fn, const std::string& needle) {
  try {
    fn();
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "error was: " << e.what() << "\nexpected to contain: " << needle;
    return e.what();
  }
  ADD_FAILURE() << "expected SpecError containing: " << needle;
  return "";
}

}  // namespace sprout::spec

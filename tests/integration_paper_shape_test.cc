// Integration tests asserting the PAPER'S QUALITATIVE RESULTS: who wins on
// which metric.  Absolute numbers differ from the paper (synthetic traces,
// behavioral app models); the shape must hold (§5.2-§5.7).
#include <gtest/gtest.h>

#include "runner/scenario.h"
#include "trace/presets.h"

namespace sprout {
namespace {

ScenarioResult run_scheme(SchemeId scheme, const char* network,
                            LinkDirection dir) {
  ScenarioSpec c;
  c.scheme = scheme;
  c.link = LinkSpec::preset(network, dir);
  c.run_time = sec(100);
  c.warmup = sec(20);
  return run_scenario(c);
}

class LteDownlink : public ::testing::Test {
 protected:
  static const ScenarioResult& sprout() {
    static const ScenarioResult r =
        run_scheme(SchemeId::kSprout, "Verizon LTE", LinkDirection::kDownlink);
    return r;
  }
  static const ScenarioResult& ewma() {
    static const ScenarioResult r = run_scheme(
        SchemeId::kSproutEwma, "Verizon LTE", LinkDirection::kDownlink);
    return r;
  }
  static const ScenarioResult& cubic() {
    static const ScenarioResult r =
        run_scheme(SchemeId::kCubic, "Verizon LTE", LinkDirection::kDownlink);
    return r;
  }
  static const ScenarioResult& cubic_codel() {
    static const ScenarioResult r = run_scheme(
        SchemeId::kCubicCodel, "Verizon LTE", LinkDirection::kDownlink);
    return r;
  }
  static const ScenarioResult& skype() {
    static const ScenarioResult r =
        run_scheme(SchemeId::kSkype, "Verizon LTE", LinkDirection::kDownlink);
    return r;
  }
};

TEST_F(LteDownlink, SproutDelayFarBelowCubic) {
  // Intro table: Cubic's self-inflicted delay is ~79x Sprout's.
  EXPECT_LT(sprout().self_inflicted_delay_ms() * 10.0,
            cubic().self_inflicted_delay_ms());
}

TEST_F(LteDownlink, CubicBufferbloatsIntoSeconds) {
  EXPECT_GT(cubic().self_inflicted_delay_ms(), 2000.0);
  EXPECT_GT(cubic().utilization(), 0.9);  // it does fill the pipe
}

TEST_F(LteDownlink, SproutKeepsSubSecondDelay) {
  EXPECT_LT(sprout().self_inflicted_delay_ms(), 500.0);
  EXPECT_GT(sprout().utilization(), 0.3);
}

TEST_F(LteDownlink, EwmaTradesDelayForThroughput) {
  // §5.3: Sprout-EWMA gets more throughput than Sprout but more delay.
  EXPECT_GE(ewma().throughput_kbps(), sprout().throughput_kbps());
  EXPECT_GE(ewma().self_inflicted_delay_ms(), sprout().self_inflicted_delay_ms());
}

TEST_F(LteDownlink, CodelTamesCubic) {
  // §5.4: CoDel dramatically reduces Cubic's delay at some throughput cost.
  EXPECT_LT(cubic_codel().self_inflicted_delay_ms(),
            cubic().self_inflicted_delay_ms() / 10.0);
  EXPECT_LT(cubic_codel().throughput_kbps(), cubic().throughput_kbps());
}

TEST_F(LteDownlink, SproutDelayCompetitiveWithInNetworkCodel) {
  // §5.4: end-to-end Sprout matches/undercuts Cubic-over-CoDel on delay.
  EXPECT_LT(sprout().self_inflicted_delay_ms(),
            cubic_codel().self_inflicted_delay_ms() * 1.5);
}

TEST_F(LteDownlink, SkypeModelUnderperformsSprout) {
  // Intro table: Sprout beats Skype on BOTH axes.
  EXPECT_GT(sprout().throughput_kbps(), skype().throughput_kbps());
  EXPECT_LT(sprout().self_inflicted_delay_ms(),
            skype().self_inflicted_delay_ms());
}

TEST(PaperShape, TunnelIsolatesSkypeFromCubic) {
  // §5.7: through SproutTunnel, Skype's delay collapses and its throughput
  // rises; Cubic pays.
  ScenarioSpec direct = tunnel_scenario("Verizon LTE", false);
  direct.run_time = sec(100);
  direct.warmup = sec(20);
  ScenarioSpec tunneled = direct;
  tunneled.topology.via_tunnel = true;
  // flows[0] is the Cubic download, flows[1] the Skype call.
  const ScenarioResult d = run_scenario(direct);
  const ScenarioResult t = run_scenario(tunneled);
  EXPECT_LT(t.flows.at(1).delay95_ms, d.flows.at(1).delay95_ms / 2.0);
  EXPECT_LT(t.flows.at(0).throughput_kbps, d.flows.at(0).throughput_kbps);
  EXPECT_GT(t.flows.at(1).throughput_kbps,
            d.flows.at(1).throughput_kbps * 0.8);
}

TEST(PaperShape, SproutLossResilience) {
  // §5.6: Sprout still provides useful throughput at 5% and 10% loss.
  ScenarioSpec c;
  c.scheme = SchemeId::kSprout;
  c.link = LinkSpec::preset("Verizon LTE", LinkDirection::kDownlink);
  c.run_time = sec(100);
  c.warmup = sec(20);
  const double clean = run_scenario(c).throughput_kbps();
  c.set_loss_rate(0.05);
  const double loss5 = run_scenario(c).throughput_kbps();
  c.set_loss_rate(0.10);
  const double loss10 = run_scenario(c).throughput_kbps();
  EXPECT_GT(loss5, 0.3 * clean);
  EXPECT_GT(loss10, 0.15 * clean);
  EXPECT_LE(loss10, loss5 * 1.1);
}

TEST(PaperShape, VegasSitsBetweenSproutAndCubicOnDelay) {
  const ScenarioResult sprout =
      run_scheme(SchemeId::kSprout, "AT&T LTE", LinkDirection::kDownlink);
  const ScenarioResult vegas =
      run_scheme(SchemeId::kVegas, "AT&T LTE", LinkDirection::kDownlink);
  const ScenarioResult cubic =
      run_scheme(SchemeId::kCubic, "AT&T LTE", LinkDirection::kDownlink);
  EXPECT_LT(vegas.self_inflicted_delay_ms(), cubic.self_inflicted_delay_ms());
  EXPECT_GT(vegas.self_inflicted_delay_ms(),
            sprout.self_inflicted_delay_ms() * 0.5);
}

}  // namespace
}  // namespace sprout

// SchemeRegistry coverage: every SchemeId in schemes.h resolves to a
// factory, the published scheme lists stay consistent with the registry,
// and registry metadata matches the scheme names.
#include "runner/registry.h"

#include <gtest/gtest.h>

#include <set>

#include "runner/scenario.h"

namespace sprout {
namespace {

// all_scheme_ids() (schemes.cc) is the hand-maintained claim of enum
// completeness: the registration tests below cross-check it against the
// registry, and scheme_from_name searches the SAME list — so a scheme
// missing from it cannot register cleanly here AND cannot silently become
// unreadable from shard files.
TEST(SchemeRegistry, SchemeNamesRoundTripThroughFromName) {
  for (const SchemeId id : all_scheme_ids()) {
    const std::optional<SchemeId> back = scheme_from_name(to_string(id));
    ASSERT_TRUE(back.has_value()) << to_string(id);
    EXPECT_EQ(*back, id);
  }
  EXPECT_FALSE(scheme_from_name("no such scheme").has_value());
  EXPECT_FALSE(scheme_from_name("").has_value());
  EXPECT_FALSE(scheme_from_name("unknown").has_value());  // to_string fallback
}

TEST(SchemeRegistry, EverySchemeIdResolves) {
  const SchemeRegistry& registry = SchemeRegistry::instance();
  for (const SchemeId id : all_scheme_ids()) {
    const SchemeInfo* info = registry.find(id);
    ASSERT_NE(info, nullptr) << to_string(id);
    EXPECT_EQ(info->id, id);
    EXPECT_TRUE(static_cast<bool>(info->make_flow)) << to_string(id);
  }
}

TEST(SchemeRegistry, RegisteredMatchesSchemesHeaderExactly) {
  const std::vector<SchemeId> registered =
      SchemeRegistry::instance().registered();
  const std::set<SchemeId> expected(all_scheme_ids().begin(),
                                    all_scheme_ids().end());
  const std::set<SchemeId> actual(registered.begin(), registered.end());
  EXPECT_EQ(actual, expected);
  // No duplicate registrations.
  EXPECT_EQ(registered.size(), actual.size());
}

TEST(SchemeRegistry, NamesMatchToString) {
  for (const SchemeId id : all_scheme_ids()) {
    EXPECT_EQ(SchemeRegistry::instance().info(id).name, to_string(id));
  }
}

TEST(SchemeRegistry, PublishedListsAreRegistered) {
  const SchemeRegistry& registry = SchemeRegistry::instance();
  for (const auto* list :
       {&figure7_schemes(), &table1_schemes(), &extension_schemes(),
        &forecaster_schemes(), &coexistence_schemes()}) {
    for (const SchemeId id : *list) {
      EXPECT_NE(registry.find(id), nullptr) << to_string(id);
    }
  }
}

TEST(SchemeRegistry, ForecasterSchemesAreSproutFamily) {
  // The forecaster family is the Sprout protocol under different models;
  // all of its members must support the shared-queue topology (the §7
  // multi-Sprout extension sweeps them).
  for (const SchemeId id : forecaster_schemes()) {
    EXPECT_TRUE(SchemeRegistry::instance().info(id).shared_queue_capable)
        << to_string(id);
  }
}

TEST(SchemeRegistry, OmniscientIsSingleFlowOnly) {
  EXPECT_FALSE(
      SchemeRegistry::instance().info(SchemeId::kOmniscient).shared_queue_capable);
}

TEST(SchemeRegistry, OnlyAqmSchemesRequestLinkPolicies) {
  const SchemeRegistry& registry = SchemeRegistry::instance();
  for (const SchemeId id : all_scheme_ids()) {
    LinkAqm wants = LinkAqm::kAuto;
    if (id == SchemeId::kCubicCodel) wants = LinkAqm::kCoDel;
    if (id == SchemeId::kCubicPie) wants = LinkAqm::kPie;
    EXPECT_EQ(registry.info(id).link_aqm, wants) << to_string(id);
  }
}

TEST(SchemeRegistry, UnregisteredLookupThrows) {
  // An id outside the enum range must not silently resolve.
  const auto bogus = static_cast<SchemeId>(10'000);
  EXPECT_EQ(SchemeRegistry::instance().find(bogus), nullptr);
  EXPECT_THROW((void)SchemeRegistry::instance().info(bogus),
               std::invalid_argument);
}

}  // namespace
}  // namespace sprout

// Unit and integration tests for the §7 non-saturating on-off application
// (app/onoff_app.h) and the burst drain-lag measurement.
#include <gtest/gtest.h>

#include <functional>

#include "app/onoff_app.h"
#include "core/endpoint.h"
#include "link/cellsim.h"
#include "metrics/flow_metrics.h"
#include "sim/relay.h"
#include "sim/simulator.h"
#include "trace/presets.h"

namespace sprout {
namespace {

TEST(OnOffApp, AlternatesDeterministically) {
  Simulator sim;
  OnOffProfile p;
  p.on_duration = sec(1);
  p.off_duration = sec(1);
  OnOffApp app(sim, p);
  app.start();
  sim.run_until(TimePoint{} + msec(500));
  EXPECT_TRUE(app.on());
  sim.run_until(TimePoint{} + msec(1500));
  EXPECT_FALSE(app.on());
  sim.run_until(TimePoint{} + msec(2500));
  EXPECT_TRUE(app.on());
}

TEST(OnOffApp, OffersExactlyTheConfiguredRate) {
  Simulator sim;
  OnOffProfile p;
  p.on_rate_kbps = 1500.0;
  p.frame_interval = msec(33);
  p.on_duration = sec(2);
  p.off_duration = sec(2);
  OnOffApp app(sim, p);
  app.start();
  sim.run_until(TimePoint{} + sec(2));  // one full talkspurt
  // 2 s at 1.5 Mbit/s = 375000 bytes, quantized to 33 ms frames.
  EXPECT_NEAR(static_cast<double>(app.total_offered()), 375000.0, 10000.0);
}

TEST(OnOffApp, LogsCompletedBursts) {
  Simulator sim;
  OnOffProfile p;
  p.on_duration = sec(1);
  p.off_duration = msec(500);
  OnOffApp app(sim, p);
  app.start();
  sim.run_until(TimePoint{} + sec(10));
  // Period 1.5 s: at t=10 s, six bursts completed (the 7th in flight).
  ASSERT_GE(app.bursts().size(), 6u);
  for (const OnOffApp::Burst& b : app.bursts()) {
    EXPECT_GT(b.bytes, 0);
    EXPECT_GT(b.end, b.start);
  }
}

TEST(OnOffApp, SilenceOffersNothing) {
  Simulator sim;
  OnOffProfile p;
  p.on_duration = sec(1);
  p.off_duration = sec(3);
  OnOffApp app(sim, p);
  app.start();
  sim.run_until(TimePoint{} + msec(1100));
  const ByteCount at_silence_start = app.total_offered();
  sim.run_until(TimePoint{} + msec(3900));
  EXPECT_EQ(app.total_offered(), at_silence_start);
}

TEST(OnOffApp, ShortSilenceDoesNotDoubleTheFrameChain) {
  Simulator sim;
  OnOffProfile p;
  p.on_rate_kbps = 1500.0;
  p.frame_interval = msec(33);
  p.on_duration = msec(200);
  p.off_duration = msec(10);  // shorter than one frame interval
  OnOffApp app(sim, p);
  app.start();
  sim.run_until(TimePoint{} + sec(10));
  // Each 200 ms talkspurt fits exactly 7 frame offers (t = 0, 33, ..., 198)
  // of 33 ms worth of bytes; a revived second frame chain would double it.
  const double frame_bytes = 1500.0 * 1000.0 / 8.0 * 0.033;
  const double bursts_in_run = 10.0 / 0.210;
  const double expected = 7.0 * frame_bytes * bursts_in_run;
  EXPECT_LT(static_cast<double>(app.total_offered()), expected * 1.05);
  EXPECT_GT(static_cast<double>(app.total_offered()), expected * 0.90);
}

TEST(OnOffApp, RandomizedModeIsSeededAndDeterministic) {
  auto run = [](std::uint64_t seed) {
    Simulator sim;
    OnOffProfile p;
    p.randomize = true;
    OnOffApp app(sim, p, seed);
    app.start();
    sim.run_until(TimePoint{} + sec(30));
    return app.total_offered();
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(BurstDrainLags, ComputesCrossingTimes) {
  std::vector<OnOffApp::Burst> bursts = {
      {TimePoint{}, TimePoint{} + sec(1), 1000},
      {TimePoint{} + sec(2), TimePoint{} + sec(3), 500},
  };
  std::vector<std::pair<TimePoint, ByteCount>> delivered = {
      {TimePoint{} + msec(500), 400},
      {TimePoint{} + msec(1200), 1000},  // first burst done at 1.2 s
      {TimePoint{} + msec(3300), 1400},
      {TimePoint{} + msec(3400), 1500},  // second done at 3.4 s
  };
  const auto drains = burst_drain_lags(bursts, delivered);
  ASSERT_EQ(drains.size(), 2u);
  EXPECT_EQ(drains[0].completed, TimePoint{} + msec(1200));
  EXPECT_EQ(drains[0].lag, msec(200));
  EXPECT_EQ(drains[1].lag, msec(400));
}

TEST(BurstDrainLags, OmitsUndrainedBursts) {
  std::vector<OnOffApp::Burst> bursts = {
      {TimePoint{}, TimePoint{} + sec(1), 1000},
      {TimePoint{} + sec(2), TimePoint{} + sec(3), 500},
  };
  std::vector<std::pair<TimePoint, ByteCount>> delivered = {
      {TimePoint{} + msec(1200), 1000},
  };
  const auto drains = burst_drain_lags(bursts, delivered);
  ASSERT_EQ(drains.size(), 1u);
}

// Integration: talkspurts over the emulated link drain with bounded lag,
// and an idle Sprout restarts cleanly after long silences (the §7 concern).
TEST(OnOffOverSprout, BurstsDrainAfterLongIdle) {
  Simulator sim;
  const LinkPreset& fwd_p =
      find_link_preset("Verizon LTE", LinkDirection::kDownlink);
  const LinkPreset& rev_p =
      find_link_preset("Verizon LTE", LinkDirection::kUplink);
  Trace fwd_trace = preset_trace(fwd_p, sec(42));
  Trace rev_trace = preset_trace(rev_p, sec(42));
  CellsimConfig cfg;
  cfg.propagation_delay = msec(20);
  cfg.seed = 11;
  RelaySink fwd_egress;
  RelaySink rev_egress;
  CellsimLink fwd(sim, std::move(fwd_trace), cfg, fwd_egress);
  CellsimLink rev(sim, std::move(rev_trace), cfg, rev_egress);

  SproutParams params;
  OnOffProfile profile;
  profile.on_rate_kbps = 800.0;
  profile.on_duration = sec(1);
  profile.off_duration = sec(5);  // long silences
  OnOffApp app(sim, profile, 3);
  SproutEndpoint tx(sim, params, SproutVariant::kBayesian, 1, &app.source());
  SproutEndpoint rx(sim, params, SproutVariant::kBayesian, 1, nullptr);
  tx.attach_network(fwd);
  rx.attach_network(rev);
  MeasuredSink measured(sim, rx);
  fwd_egress.set_target(measured);
  rev_egress.set_target(tx);
  tx.start();
  rx.start(params.tick * 7 / 20);
  app.start();

  std::vector<std::pair<TimePoint, ByteCount>> delivered;
  std::function<void()> poll = [&] {
    delivered.emplace_back(sim.now(), rx.receiver().payload_bytes_received());
    if (sim.now() < TimePoint{} + sec(40)) sim.after(msec(10), poll);
  };
  sim.after(msec(10), poll);
  sim.run_until(TimePoint{} + sec(40));

  ASSERT_GE(app.bursts().size(), 5u);
  const auto drains = burst_drain_lags(app.bursts(), delivered);
  // Every burst except possibly the last drains, and within a bounded lag
  // (well under the next talkspurt's start).
  ASSERT_GE(drains.size(), app.bursts().size() - 1);
  for (const BurstDrain& d : drains) {
    EXPECT_GE(d.lag, Duration::zero());
    EXPECT_LT(d.lag, sec(4)) << "burst at "
                             << to_seconds(d.burst.start.time_since_epoch());
  }
}

}  // namespace
}  // namespace sprout

#include "sim/simulator.h"

#include <vector>

#include <gtest/gtest.h>

#include "sim/packet.h"
#include "sim/relay.h"

namespace sprout {
namespace {

TEST(Simulator, StartsAtEpoch) {
  Simulator sim;
  EXPECT_EQ(sim.now(), TimePoint{});
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(TimePoint{} + msec(30), [&] { order.push_back(3); });
  sim.at(TimePoint{} + msec(10), [&] { order.push_back(1); });
  sim.at(TimePoint{} + msec(20), [&] { order.push_back(2); });
  sim.run_until(TimePoint{} + msec(100));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, SameTimeEventsFireFifo) {
  Simulator sim;
  std::vector<int> order;
  const TimePoint t = TimePoint{} + msec(5);
  for (int i = 0; i < 10; ++i) {
    sim.at(t, [&order, i] { order.push_back(i); });
  }
  sim.run_until(t);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.run_until(TimePoint{} + sec(5));
  EXPECT_EQ(sim.now(), TimePoint{} + sec(5));
}

TEST(Simulator, RunUntilLeavesLaterEventsPending) {
  Simulator sim;
  bool fired = false;
  sim.at(TimePoint{} + sec(2), [&] { fired = true; });
  sim.run_until(TimePoint{} + sec(1));
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until(TimePoint{} + sec(2));
  EXPECT_TRUE(fired);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.after(msec(10), chain);
  };
  sim.after(msec(10), chain);
  sim.run_until(TimePoint{} + sec(1));
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.events_processed(), 5u);
}

TEST(Simulator, ClockIsEventTimeDuringCallback) {
  Simulator sim;
  TimePoint seen{};
  sim.at(TimePoint{} + msec(42), [&] { seen = sim.now(); });
  sim.run_until(TimePoint{} + sec(1));
  EXPECT_EQ(seen, TimePoint{} + msec(42));
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
}

TEST(RelaySink, ForwardsOnceTargeted) {
  Simulator sim;
  RelaySink relay;
  Packet p;
  p.size = 100;
  relay.receive(std::move(p));  // no target yet
  EXPECT_EQ(relay.dropped(), 1);

  struct Counter : PacketSink {
    int n = 0;
    void receive(Packet&&) override { ++n; }
  } counter;
  relay.set_target(counter);
  Packet q;
  q.size = 100;
  relay.receive(std::move(q));
  EXPECT_EQ(counter.n, 1);
  EXPECT_EQ(relay.dropped(), 1);
}

TEST(DemuxSink, RoutesByFlowId) {
  struct Counter : PacketSink {
    int n = 0;
    void receive(Packet&&) override { ++n; }
  } a, b;
  DemuxSink demux;
  demux.route(1, a);
  demux.route(2, b);
  for (int i = 0; i < 3; ++i) {
    Packet p;
    p.flow_id = i % 2 == 0 ? 1 : 2;
    p.size = 10;
    demux.receive(std::move(p));
  }
  Packet stray;
  stray.flow_id = 99;
  stray.size = 10;
  demux.receive(std::move(stray));
  EXPECT_EQ(a.n, 2);
  EXPECT_EQ(b.n, 1);
  EXPECT_EQ(demux.unrouted(), 1);
}

TEST(DemuxSink, KeepsAPerFlowByteLedger) {
  struct Counter : PacketSink {
    int n = 0;
    void receive(Packet&&) override { ++n; }
  } a, b;
  DemuxSink demux;
  demux.route(1, a);
  demux.route(2, b);
  for (const auto& [flow, size] :
       {std::pair<std::int64_t, ByteCount>{1, 1500},
        {2, 200}, {1, 300}, {2, 1500}}) {
    Packet p;
    p.flow_id = flow;
    p.size = size;
    demux.receive(std::move(p));
  }
  Packet stray;  // unrouted bytes are credited to NO flow
  stray.flow_id = 99;
  stray.size = 777;
  demux.receive(std::move(stray));

  EXPECT_EQ(demux.delivered_bytes(1), 1800);
  EXPECT_EQ(demux.delivered_bytes(2), 1700);
  EXPECT_EQ(demux.delivered_bytes(99), 0);
  EXPECT_EQ(demux.delivered_bytes(3), 0);
}

}  // namespace
}  // namespace sprout

#include "spec/schema.h"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "spec_test_util.h"

namespace sprout::spec {
namespace {

TEST(SpecSchema, NavigationBuildsDottedBracketedPaths) {
  const JsonValue doc = JsonValue::parse(
      R"({"topology": {"flows": [{"scheme": "Sprout"}, {"stop_s": 5}]}})");
  const Field root(doc, "");
  const Field flows = root.at("topology").at("flows");
  EXPECT_EQ(flows.path(), "topology.flows");
  const std::vector<Field> items = flows.items();
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[1].path(), "topology.flows[1]");
  EXPECT_EQ(items[1].at("stop_s").path(), "topology.flows[1].stop_s");
  EXPECT_EQ(items[0].at("scheme").as_string(), "Sprout");
}

TEST(SpecSchema, ErrorsNameTheExactPath) {
  const JsonValue doc =
      JsonValue::parse(R"({"a": {"b": [{"c": "not a number"}]}})");
  const Field root(doc, "");
  const std::string msg = expect_spec_error(
      [&] { (void)root.at("a").at("b").items()[0].at("c").as_finite(); },
      "a.b[0].c: expected a number");
  EXPECT_NE(msg.find("got a string"), std::string::npos);
  expect_spec_error([&] { (void)root.at("a").at("missing"); },
                    "a: missing required field \"missing\"");
}

TEST(SpecSchema, UnknownKeysAreRejectedWithTheAcceptedList) {
  const JsonValue doc = JsonValue::parse(R"({"good": 1, "typo_key": 2})");
  const Field root(doc, "spec");
  const std::string msg = expect_spec_error(
      [&] { root.allow_keys({"good", "other"}); },
      "spec.typo_key: unknown field");
  EXPECT_NE(msg.find("good"), std::string::npos);
  EXPECT_NE(msg.find("other"), std::string::npos);
}

TEST(SpecSchema, RangeCheckedReaders) {
  const JsonValue doc = JsonValue::parse(
      R"({"neg": -3, "frac": 0.25, "zero": 0, "big": 1e999, "n": 2.5})");
  const Field root(doc, "");
  EXPECT_DOUBLE_EQ(root.at("frac").in_range(0.0, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(root.at("zero").non_negative(), 0.0);
  expect_spec_error([&] { (void)root.at("neg").positive(); },
                    "neg: must be > 0, got -3");
  expect_spec_error([&] { (void)root.at("neg").non_negative(); },
                    "neg: must be >= 0");
  expect_spec_error([&] { (void)root.at("n").as_int(); },
                    "n: expected an integer");
  // 1e999 overflows to inf at parse; the finite check catches it.
  expect_spec_error([&] { (void)root.at("big").as_finite(); },
                    "big: must be finite");
}

TEST(SpecSchema, U64AcceptsNumbersAndDecimalStrings) {
  const JsonValue doc = JsonValue::parse(
      R"({"n": 42, "s": "18446744073709551615", "neg": -1, "junk": "12x"})");
  const Field root(doc, "");
  EXPECT_EQ(root.at("n").as_u64(), 42u);
  EXPECT_EQ(root.at("s").as_u64(), 18446744073709551615ull);
  expect_spec_error([&] { (void)root.at("neg").as_u64(); },
                    "neg: must be >= 0");
  expect_spec_error([&] { (void)root.at("junk").as_u64(); },
                    "junk: expected an unsigned decimal integer");
}

TEST(SpecSchema, SecondsRoundTripExactly) {
  // Durations travel as to_seconds() doubles; the reader must recover the
  // exact microsecond count for every value the writer can emit,
  // including ones whose decimal form is not exactly representable.
  for (const std::int64_t micros :
       {std::int64_t{1}, std::int64_t{3}, std::int64_t{20000},
        std::int64_t{2500000}, std::int64_t{299999999},
        std::int64_t{86400000000}}) {
    const double s = to_seconds(Duration(micros));
    std::ostringstream os;
    os.precision(17);
    os << s;
    const JsonValue doc = JsonValue::parse("{\"d\": " + os.str() + "}");
    EXPECT_EQ(Field(doc, "").at("d").seconds().count(), micros)
        << "for " << micros << " us";
  }
}

TEST(SpecSchema, MergePatchFollowsRfc7386) {
  const JsonValue base = JsonValue::parse(
      R"({"a": 1, "nested": {"x": 1, "y": 2}, "list": [1, 2, 3]})");
  const JsonValue patch = JsonValue::parse(
      R"({"a": 5, "nested": {"y": null, "z": 9}, "list": [7], "new": true})");
  const JsonValue merged = merge_patch(base, patch);
  EXPECT_DOUBLE_EQ(merged.at("a").as_number(), 5.0);
  EXPECT_DOUBLE_EQ(merged.at("nested").at("x").as_number(), 1.0);
  EXPECT_FALSE(merged.at("nested").has("y"));  // null deletes
  EXPECT_DOUBLE_EQ(merged.at("nested").at("z").as_number(), 9.0);
  ASSERT_EQ(merged.at("list").as_array().size(), 1u);  // arrays replace
  EXPECT_DOUBLE_EQ(merged.at("list").as_array()[0].as_number(), 7.0);
  EXPECT_TRUE(merged.at("new").as_bool());
  // Null members of a patch with no base counterpart are stripped too.
  const JsonValue fresh =
      merge_patch(JsonValue::parse("{}"),
                  JsonValue::parse(R"({"o": {"keep": 1, "drop": null}})"));
  EXPECT_TRUE(fresh.at("o").has("keep"));
  EXPECT_FALSE(fresh.at("o").has("drop"));
}

TEST(SpecSchema, PatchPathsAndOverlap) {
  const JsonValue patch = JsonValue::parse(
      R"({"loss_rate": 0.1, "topology": {"flows": [{"scheme": "Cubic"}]}})");
  const std::vector<std::string> paths = patch_paths(patch);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], "loss_rate");
  EXPECT_EQ(paths[1], "topology.flows");

  EXPECT_TRUE(paths_overlap("topology.flows", "topology.flows"));
  EXPECT_TRUE(paths_overlap("topology", "topology.flows"));
  EXPECT_TRUE(paths_overlap("topology.flows[1].scheme", "topology.flows"));
  EXPECT_FALSE(paths_overlap("topology.flows", "topology.flows_extra"));
  EXPECT_FALSE(paths_overlap("loss_rate", "loss_rate_fwd"));
  EXPECT_FALSE(paths_overlap("run_time_s", "warmup_s"));
}

TEST(SpecSchema, JsonValueBuildersComposeParseableDocuments) {
  const JsonValue doc = JsonValue::make_object(
      {{"name", JsonValue::make_string("x")},
       {"n", JsonValue::make_number(2.5)},
       {"flag", JsonValue::make_bool(true)},
       {"items", JsonValue::make_array({JsonValue::make_number(1.0),
                                        JsonValue::make_null()})}});
  EXPECT_EQ(doc.at("name").as_string(), "x");
  EXPECT_DOUBLE_EQ(doc.at("n").as_number(), 2.5);
  EXPECT_TRUE(doc.at("flag").as_bool());
  ASSERT_EQ(doc.at("items").as_array().size(), 2u);
  EXPECT_TRUE(doc.at("items").as_array()[1].is_null());
  EXPECT_THROW((void)JsonValue::make_number(
                   std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
}

TEST(SpecSchema, ParseErrorsArePrefixedWithTheDocumentLabel) {
  expect_spec_error(
      [] { (void)parse_spec_document("{\"a\": ", "broken.json"); },
      "broken.json: ");
}

}  // namespace
}  // namespace sprout::spec

// The obs registry's contract: counters/gauges/histograms are cheap,
// stable-referenced, deterministically serialized — and above all,
// instrumentation NEVER perturbs results.  The last part is locked here
// in-process (obs-on and obs-off sweeps serialize to identical bytes) and
// cross-process by the obs_roundtrip ctest target.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "runner/shard.h"

namespace sprout {
namespace {

TEST(ObsCounter, AddsAndResets) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(ObsCounter, ConcurrentAddsAreLossless) {
  obs::Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10'000; ++i) c.add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), 80'000);
}

TEST(ObsGauge, SetAndHighWaterMark) {
  obs::Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.set(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
  g.set_max(4.0);
  g.set_max(2.0);  // below the mark: ignored
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
}

TEST(ObsLatencyHistogram, RecordsAndSnapshots) {
  obs::LatencyHistogram h(msec(1), msec(100));
  h.record(msec(5));
  h.record_ms(7.0);
  const DelayHistogram snap = h.histogram();
  EXPECT_EQ(snap.samples(), 2);
  EXPECT_DOUBLE_EQ(snap.mean_ms(), 6.0);
  h.reset();
  EXPECT_EQ(h.histogram().samples(), 0);
}

TEST(ObsRegistry, ReturnsStableReferences) {
  auto& reg = obs::Registry::instance();
  obs::Counter& a = reg.counter("test.stable");
  obs::Counter& b = reg.counter("test.stable");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(&reg.gauge("test.stable.g"), &reg.gauge("test.stable.g"));
  EXPECT_EQ(&reg.histogram("test.stable.h", msec(1), msec(10)),
            &reg.histogram("test.stable.h", msec(1), msec(10)));
}

TEST(ObsRegistry, CountShorthandResolvesByName) {
  auto& reg = obs::Registry::instance();
  const std::int64_t before = reg.counter("test.shorthand").value();
  obs::count("test.shorthand");
  obs::count("test.shorthand", 4);
  EXPECT_EQ(reg.counter("test.shorthand").value() - before, 5);
}

TEST(ObsRegistry, SnapshotIsNameSortedPerSection) {
  auto& reg = obs::Registry::instance();
  reg.counter("test.snap.b").add();
  reg.counter("test.snap.a").add();
  reg.gauge("test.snap.g").set(1.0);
  const std::vector<obs::MetricSample> snap = reg.snapshot();
  // Counters first (sorted), then gauges, then histograms.
  std::size_t a_at = snap.size();
  std::size_t b_at = snap.size();
  std::size_t g_at = snap.size();
  for (std::size_t i = 0; i < snap.size(); ++i) {
    if (snap[i].name == "test.snap.a") a_at = i;
    if (snap[i].name == "test.snap.b") b_at = i;
    if (snap[i].name == "test.snap.g") g_at = i;
  }
  ASSERT_LT(a_at, snap.size());
  ASSERT_LT(b_at, snap.size());
  ASSERT_LT(g_at, snap.size());
  EXPECT_LT(a_at, b_at);
  EXPECT_LT(b_at, g_at);
  EXPECT_EQ(snap[a_at].kind, obs::MetricSample::Kind::kCounter);
  EXPECT_EQ(snap[g_at].kind, obs::MetricSample::Kind::kGauge);
}

TEST(ObsRegistry, JsonIsDeterministicAndCompactIsOneLine) {
  auto& reg = obs::Registry::instance();
  reg.counter("test.json.c").add(3);
  reg.gauge("test.json.g").set(2.5);
  reg.histogram("test.json.h", msec(1), msec(10)).record_ms(4.0);
  std::ostringstream a;
  std::ostringstream b;
  reg.write_json(a);
  reg.write_json(b);
  EXPECT_EQ(a.str(), b.str());  // equal state -> equal bytes
  EXPECT_NE(a.str().find("\"test.json.c\": 3"), std::string::npos);
  std::ostringstream compact;
  reg.write_json_compact(compact);
  EXPECT_EQ(compact.str().find('\n'), std::string::npos);
  EXPECT_NE(compact.str().find("\"counters\": {"), std::string::npos);
  EXPECT_NE(compact.str().find("\"p50_ms\":"), std::string::npos);
}

TEST(ObsRegistry, ResetZeroesButKeepsNames) {
  auto& reg = obs::Registry::instance();
  reg.counter("test.reset").add(9);
  reg.reset();
  EXPECT_EQ(reg.counter("test.reset").value(), 0);
}

TEST(ObsEnabled, ToggleIsObservable) {
  const bool before = obs::enabled();
  obs::set_enabled(!before);
  EXPECT_EQ(obs::enabled(), !before);
  obs::set_enabled(before);
  EXPECT_EQ(obs::enabled(), before);
}

// The invariant everything above exists to protect: turning the hot-path
// instrumentation on must not change a single result byte.
TEST(ObsInvariant, EnabledSweepIsByteIdenticalToDisabled) {
  SweepSpec grid;
  for (const std::uint64_t seed : {1ull, 2ull}) {
    ScenarioSpec c;
    c.scheme = SchemeId::kSprout;
    c.link = LinkSpec::preset("Verizon LTE", LinkDirection::kDownlink);
    c.run_time = sec(6);
    c.warmup = sec(2);
    c.seed = seed;
    grid.cells.push_back(c);
  }
  const bool was_enabled = obs::enabled();
  obs::set_enabled(false);
  std::ostringstream off;
  write_sweep_json(off, run_sweep(grid, /*threads=*/2));
  obs::set_enabled(true);
  std::ostringstream on;
  write_sweep_json(on, run_sweep(grid, /*threads=*/2));
  obs::set_enabled(was_enabled);
  EXPECT_EQ(off.str(), on.str());
}

}  // namespace
}  // namespace sprout

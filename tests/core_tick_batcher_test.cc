// Cross-flow evolution batching: the batcher must actually merge
// same-instant evolves AND stay bit-invisible to the protocol.
#include "core/tick_batcher.h"

#include <gtest/gtest.h>

#include "core/endpoint.h"
#include "core/source.h"
#include "link/cellsim.h"
#include "metrics/flow_metrics.h"
#include "sim/relay.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace sprout {
namespace {

CellProcessParams steady(double pps) {
  CellProcessParams p;
  p.mean_rate_pps = pps;
  p.max_rate_pps = std::max(pps * 2.0, 100.0);
  p.volatility_pps = 0.0;
  p.outage_hazard_per_s = 0.0;
  return p;
}

// A two-endpoint Sprout session; `batcher` null runs the classic unbatched
// tick loop.  Both endpoints start at phase 0 so their filters collide on
// every tick instant — the strongest batching case.
struct Session {
  Simulator sim;
  RelaySink fwd_egress, rev_egress;
  CellsimLink fwd_link, rev_link;
  BulkDataSource bulk;
  SproutEndpoint tx, rx;
  MeasuredSink measured;

  Session(TickEvolveBatcher* batcher, Duration run, SproutVariant variant)
      : fwd_link(sim, generate_trace(steady(400.0), run + sec(1), 51), {},
                 fwd_egress),
        rev_link(sim, generate_trace(steady(400.0), run + sec(1), 52), {},
                 rev_egress),
        tx(sim, {}, variant, 1, &bulk),
        rx(sim, {}, variant, 1, nullptr),
        measured(sim, rx) {
    tx.attach_network(fwd_link);
    rx.attach_network(rev_link);
    fwd_egress.set_target(measured);
    rev_egress.set_target(tx);
    if (batcher != nullptr) {
      tx.set_evolve_batcher(batcher);
      rx.set_evolve_batcher(batcher);
    }
    tx.start();
    rx.start();
    sim.run_until(TimePoint{} + run);
  }
};

TEST(TickBatcher, MergesColocatedTicksAndCounts) {
  TickEvolveBatcher batcher;
  Session s(&batcher, sec(4), SproutVariant::kBayesian);
  // ~200 ticks at 20 ms; both endpoints share every instant, so every pass
  // merges both filters.
  EXPECT_GT(batcher.batch_passes(), 150);
  EXPECT_EQ(batcher.batched_evolves(), 2 * batcher.batch_passes());
}

TEST(TickBatcher, AdaptiveMembersAllJoinTheBatch) {
  TickEvolveBatcher batcher;
  Session s(&batcher, sec(2), SproutVariant::kAdaptive);
  // Two endpoints x five hypothesis filters per tick instant.  Members with
  // the same σ share a kernel ACROSS endpoints, so all ten are due.
  EXPECT_GT(batcher.batch_passes(), 50);
  EXPECT_EQ(batcher.batched_evolves(), 10 * batcher.batch_passes());
}

TEST(TickBatcher, BatchedSessionIsBitIdenticalToUnbatched) {
  TickEvolveBatcher batcher;
  Session batched(&batcher, sec(6), SproutVariant::kBayesian);
  Session plain(nullptr, sec(6), SproutVariant::kBayesian);
  ASSERT_GT(batcher.batch_passes(), 0);
  // The entire delivery record — every packet's size and timing — must
  // match, which it only can if every forecast byte matched.
  const auto& a = batched.measured.metrics().records();
  const auto& b = plain.measured.metrics().records();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sent_at, b[i].sent_at) << "packet " << i;
    EXPECT_EQ(a[i].received_at, b[i].received_at) << "packet " << i;
    EXPECT_EQ(a[i].size, b[i].size) << "packet " << i;
  }
}

TEST(TickBatcher, StaggeredPhasesNeverMissSchedules) {
  // Offset phases like real fleets: instants where only one filter is due
  // must leave that filter's own evolve() intact (no stuck marks, no
  // double evolution) — the invariant-checked session must run clean.
  TickEvolveBatcher batcher;
  Simulator sim;
  RelaySink fwd_egress, rev_egress;
  CellsimLink fwd(sim, generate_trace(steady(300.0), sec(4), 53), {},
                  fwd_egress);
  CellsimLink rev(sim, generate_trace(steady(300.0), sec(4), 54), {},
                  rev_egress);
  BulkDataSource bulk;
  SproutEndpoint tx(sim, {}, SproutVariant::kBayesian, 1, &bulk);
  SproutEndpoint rx(sim, {}, SproutVariant::kBayesian, 1, nullptr);
  MeasuredSink measured(sim, rx);
  tx.attach_network(fwd);
  rx.attach_network(rev);
  fwd_egress.set_target(measured);
  rev_egress.set_target(tx);
  tx.set_evolve_batcher(&batcher);
  rx.set_evolve_batcher(&batcher);
  tx.start();
  rx.start(msec(7));  // phases never collide: batcher finds lone filters
  sim.run_until(TimePoint{} + sec(3));
  EXPECT_EQ(batcher.batch_passes(), 0);
  EXPECT_GT(measured.metrics().records().size(), 0u);
}

}  // namespace
}  // namespace sprout

// TCP machinery over the emulated link.
#include "cc/tcp_endpoint.h"

#include <gtest/gtest.h>

#include "cc/cubic.h"
#include "cc/reno.h"
#include "cc/vegas.h"
#include "link/cellsim.h"
#include "metrics/flow_metrics.h"
#include "sim/relay.h"
#include "trace/synthetic.h"

namespace sprout {
namespace {

CellProcessParams steady(double pps) {
  CellProcessParams p;
  p.mean_rate_pps = pps;
  p.max_rate_pps = pps * 2;
  p.volatility_pps = 0.0;
  p.outage_hazard_per_s = 0.0;
  return p;
}

struct TcpSession {
  Simulator sim;
  RelaySink fwd_egress, rev_egress;
  CellsimLink fwd_link, rev_link;
  TcpSender tx;
  TcpReceiver rx;
  MeasuredSink measured;

  TcpSession(std::unique_ptr<CongestionControl> cc, double pps, Duration run,
             double loss = 0.0)
      : fwd_link(sim, generate_trace(steady(pps), run + sec(1), 51),
                 CellsimConfig{msec(20), loss, kMtuBytes, 9},
                 fwd_egress),
        rev_link(sim, generate_trace(steady(pps), run + sec(1), 52), {},
                 rev_egress),
        tx(sim, std::move(cc), 1),
        rx(sim, 1),
        measured(sim, rx) {
    tx.attach_network(fwd_link);
    rx.attach_ack_path(rev_link);
    fwd_egress.set_target(measured);
    rev_egress.set_target(tx);
    tx.start();
    sim.run_until(TimePoint{} + run);
  }
};

TEST(TcpMachinery, ReceiverAcksCumulatively) {
  Simulator sim;
  TcpReceiver rx(sim, 1);
  struct AckSink : PacketSink {
    std::vector<std::int64_t> acks;
    void receive(Packet&& p) override { acks.push_back(p.ack); }
  } acks;
  rx.attach_ack_path(acks);
  for (std::int64_t seq : {0, 1, 3, 2, 4}) {
    Packet p;
    p.seq = seq;
    p.size = kMtuBytes;
    p.sent_at = sim.now();
    rx.receive(std::move(p));
  }
  // Acks: 1, 2, 2 (hole at 2), 4 (hole filled + buffered 3), 5.
  EXPECT_EQ(acks.acks, (std::vector<std::int64_t>{1, 2, 2, 4, 5}));
  EXPECT_EQ(rx.next_expected(), 5);
}

TEST(TcpMachinery, DuplicateSegmentsCounted) {
  Simulator sim;
  TcpReceiver rx(sim, 1);
  struct Sink : PacketSink {
    void receive(Packet&&) override {}
  } sink;
  rx.attach_ack_path(sink);
  for (std::int64_t seq : {0, 1, 0, 1}) {
    Packet p;
    p.seq = seq;
    p.size = kMtuBytes;
    rx.receive(std::move(p));
  }
  EXPECT_EQ(rx.duplicate_segments(), 2);
}

TEST(TcpMachinery, CubicFillsASteadyLink) {
  TcpSession s(std::make_unique<CubicCC>(), 300.0, sec(30));
  const double thr = s.measured.metrics().throughput_kbps(
      TimePoint{} + sec(5), TimePoint{} + sec(30));
  // 300 pps = 3600 kbps; an unbounded queue lets Cubic use ~all of it.
  EXPECT_GT(thr, 3200.0);
}

TEST(TcpMachinery, CubicBuildsABigQueueOnUnboundedBuffer) {
  TcpSession s(std::make_unique<CubicCC>(), 300.0, sec(30));
  const double d95 = s.measured.metrics().delay_percentile_ms(
      95.0, TimePoint{} + sec(5), TimePoint{} + sec(30));
  // Bufferbloat: delay far above propagation (the paper's core complaint).
  EXPECT_GT(d95, 500.0);
}

TEST(TcpMachinery, VegasKeepsDelayLowerThanCubic) {
  TcpSession cubic(std::make_unique<CubicCC>(), 300.0, sec(30));
  TcpSession vegas(std::make_unique<VegasCC>(), 300.0, sec(30));
  const TimePoint from = TimePoint{} + sec(5);
  const TimePoint to = TimePoint{} + sec(30);
  EXPECT_LT(vegas.measured.metrics().delay_percentile_ms(95.0, from, to),
            cubic.measured.metrics().delay_percentile_ms(95.0, from, to));
}

TEST(TcpMachinery, RecoversFromLoss) {
  TcpSession s(std::make_unique<RenoCC>(), 300.0, sec(30), /*loss=*/0.02);
  const double thr = s.measured.metrics().throughput_kbps(
      TimePoint{} + sec(5), TimePoint{} + sec(30));
  EXPECT_GT(thr, 300.0);             // still moving data
  EXPECT_GT(s.tx.retransmits(), 0);  // and actually retransmitting
}

TEST(TcpMachinery, TimeoutPathWorksThroughTotalBlackout) {
  // A link that dies at t=5s for good: the sender must hit RTOs, not spin.
  Simulator sim;
  std::vector<TimePoint> opp;
  for (int i = 1; i <= 2500; ++i) opp.push_back(TimePoint{} + msec(i * 2));
  RelaySink fwd_egress, rev_egress;
  CellsimLink fwd_link(sim, Trace{std::move(opp), sec(20)}, {}, fwd_egress);
  CellsimLink rev_link(sim, generate_trace(steady(500.0), sec(21), 3), {},
                       rev_egress);
  TcpSender tx(sim, std::make_unique<RenoCC>(), 1);
  TcpReceiver rx(sim, 1);
  tx.attach_network(fwd_link);
  rx.attach_ack_path(rev_link);
  MeasuredSink measured(sim, rx);
  fwd_egress.set_target(measured);
  rev_egress.set_target(tx);
  tx.start();
  sim.run_until(TimePoint{} + sec(20));
  EXPECT_GT(tx.timeouts(), 0);
  EXPECT_LT(tx.congestion_control().cwnd_packets(), 4.0);
}

TEST(TcpMachinery, RttEstimatorSeesPropagationFloor) {
  TcpSession s(std::make_unique<VegasCC>(), 300.0, sec(10));
  const auto& vegas =
      static_cast<const VegasCC&>(s.tx.congestion_control());
  // Min RTT cannot be below 40 ms (20 ms each way).
  EXPECT_GE(vegas.base_rtt_s(), 0.040 - 1e-6);
  EXPECT_LT(vegas.base_rtt_s(), 0.2);
}

}  // namespace
}  // namespace sprout

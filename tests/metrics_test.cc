#include "metrics/flow_metrics.h"

#include <gtest/gtest.h>

#include "metrics/timeseries.h"
#include "sim/simulator.h"

namespace sprout {
namespace {

DeliveryRecord rec(std::int64_t sent_ms, std::int64_t recv_ms, ByteCount size) {
  return DeliveryRecord{TimePoint{} + msec(sent_ms), TimePoint{} + msec(recv_ms),
                        size};
}

TEST(FlowMetrics, ThroughputCountsOnlyWindow) {
  FlowMetrics m;
  m.record(rec(0, 500, 1000));
  m.record(rec(0, 1500, 1000));
  m.record(rec(0, 2500, 1000));  // outside window
  // Window [0s, 2s): 2000 bytes over 2 s = 8 kbps.
  EXPECT_NEAR(m.throughput_kbps(TimePoint{}, TimePoint{} + sec(2)), 8.0, 1e-9);
}

TEST(FlowMetrics, DelaySignalSinglePacket) {
  FlowMetrics m;
  m.record(rec(100, 150, 1000));  // 50 ms delay at arrival
  // Over [150ms, 1150ms) the signal ramps 50 -> 1050 ms.  95th percentile
  // of a uniform ramp: 50 + 0.95 * 1000.
  const double d = m.delay_percentile_ms(95.0, TimePoint{} + msec(150),
                                         TimePoint{} + msec(1150));
  EXPECT_NEAR(d, 1000.0, 1.0);
}

TEST(FlowMetrics, DelaySignalStaysLowWithFrequentArrivals) {
  FlowMetrics m;
  // A packet every 10 ms with constant 30 ms delay.
  for (int i = 0; i < 200; ++i) {
    m.record(rec(i * 10, i * 10 + 30, 1500));
  }
  const double d95 = m.delay_percentile_ms(95.0, TimePoint{} + msec(100),
                                           TimePoint{} + msec(1900));
  // Signal oscillates between 30 and 40 ms.
  EXPECT_GE(d95, 30.0);
  EXPECT_LE(d95, 41.0);
  const double mean = m.mean_delay_ms(TimePoint{} + msec(100),
                                      TimePoint{} + msec(1900));
  EXPECT_NEAR(mean, 35.0, 1.5);
}

TEST(FlowMetrics, ReorderedOldPacketCannotLowerSignal) {
  FlowMetrics m;
  m.record(rec(100, 150, 1000));
  // Packet SENT earlier arriving later must not reset the clock backwards
  // (footnote 7: "most recently-sent packet to have arrived").
  m.record(rec(50, 160, 1000));
  const double d = m.delay_percentile_ms(0.0, TimePoint{} + msec(150),
                                         TimePoint{} + msec(200));
  EXPECT_NEAR(d, 50.0, 1.0);  // still anchored to the 100ms-sent packet
}

TEST(FlowMetrics, OutageCreatesLinearRamp) {
  FlowMetrics m;
  m.record(rec(0, 40, 1000));
  m.record(rec(5000, 5040, 1000));  // five-second gap
  // At the end of the gap the signal reached ~5040 ms.
  const double d100 = m.delay_percentile_ms(100.0, TimePoint{} + msec(40),
                                            TimePoint{} + msec(5040));
  EXPECT_NEAR(d100, 5040.0, 5.0);
}

TEST(FlowMetrics, NoArrivalsMeansWindowSizedDelay) {
  FlowMetrics m;
  const double d = m.delay_percentile_ms(95.0, TimePoint{}, TimePoint{} + sec(10));
  EXPECT_GE(d, 9999.0);
}

TEST(FlowMetrics, PacketDelayPercentile) {
  FlowMetrics m;
  for (int i = 1; i <= 100; ++i) {
    m.record(rec(i * 10, i * 10 + i, 100));  // delays 1..100 ms
  }
  const double p50 = m.packet_delay_percentile_ms(
      50.0, TimePoint{}, TimePoint{} + sec(10));
  EXPECT_NEAR(p50, 50.0, 1.5);
}

TEST(OmniscientBaseline, ConstantRateLinkHasPropagationDelay) {
  // Opportunities every 10 ms: the omniscient signal oscillates between
  // 20 and 30 ms; its 95th percentile ~29.5 ms.
  std::vector<TimePoint> opp;
  for (int i = 1; i <= 1000; ++i) opp.push_back(TimePoint{} + msec(i * 10));
  const Trace t{std::move(opp), sec(11)};
  const double d = omniscient_delay_percentile_ms(
      t, 95.0, TimePoint{} + sec(1), TimePoint{} + sec(9), msec(20));
  EXPECT_GT(d, 25.0);
  EXPECT_LT(d, 31.0);
}

TEST(OmniscientBaseline, OutageRaisesEvenOmniscientDelay) {
  // A 5-second hole in the middle of an otherwise fast link: "no matter how
  // smart the protocol", 95% delay reflects the outage (§5.1).
  std::vector<TimePoint> opp;
  for (int i = 1; i <= 100; ++i) opp.push_back(TimePoint{} + msec(i * 10));
  for (int i = 0; i <= 100; ++i) {
    opp.push_back(TimePoint{} + msec(6000 + i * 10));
  }
  const Trace t{std::move(opp), sec(8)};
  const double d95 = omniscient_delay_percentile_ms(
      t, 95.0, TimePoint{}, TimePoint{} + sec(7), msec(20));
  EXPECT_GT(d95, 1000.0);
}

TEST(LinkCapacity, MatchesTraceBytes) {
  std::vector<TimePoint> opp;
  for (int i = 1; i <= 100; ++i) opp.push_back(TimePoint{} + msec(i * 10));
  const Trace t{std::move(opp), sec(2)};
  // 100 MTU over the first second: 1500*100*8/1000 = 1200 kbps.
  EXPECT_NEAR(link_capacity_kbps(t, TimePoint{}, TimePoint{} + sec(1)),
              1200.0, 20.0);
}

TEST(MeasuredSink, RecordsAndForwards) {
  Simulator sim;
  struct Counter : PacketSink {
    int n = 0;
    void receive(Packet&&) override { ++n; }
  } next;
  MeasuredSink sink(sim, next);
  Packet p;
  p.size = 700;
  p.sent_at = TimePoint{};
  sink.receive(std::move(p));
  EXPECT_EQ(next.n, 1);
  EXPECT_EQ(sink.metrics().records().size(), 1u);
  EXPECT_EQ(sink.metrics().total_bytes(), 700);
}

TEST(Timeseries, BinsThroughputAndDelay) {
  FlowMetrics m;
  for (int i = 0; i < 100; ++i) {
    m.record(rec(i * 10, i * 10 + 25, 1500));
  }
  const auto series = throughput_delay_series(
      m, TimePoint{}, TimePoint{} + sec(1), msec(500));
  ASSERT_EQ(series.size(), 2u);
  // Arrivals land at 25, 35, ..., so bin [0,500) holds 48 packets:
  // 1500*48*8/1000 / 0.5 s = 1152 kbps.
  EXPECT_NEAR(series[0].throughput_kbps, 1152.0, 1.0);
  EXPECT_NEAR(series[0].max_delay_ms, 25.0, 1e-6);
}

TEST(Timeseries, CapacitySeries) {
  std::vector<TimePoint> opp;
  for (int i = 1; i <= 100; ++i) opp.push_back(TimePoint{} + msec(i * 10));
  const Trace t{std::move(opp), sec(2)};
  const auto series =
      capacity_series(t, TimePoint{}, TimePoint{} + sec(2), msec(500));
  ASSERT_EQ(series.size(), 4u);
  EXPECT_GT(series[0].throughput_kbps, 1000.0);
  EXPECT_NEAR(series[3].throughput_kbps, 0.0, 1e-9);  // trace ends at 1 s
}

}  // namespace
}  // namespace sprout

// End-to-end Sprout session over ideal and impaired links.
#include "core/endpoint.h"

#include <gtest/gtest.h>

#include "core/source.h"
#include "link/cellsim.h"
#include "metrics/flow_metrics.h"
#include "sim/relay.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace sprout {
namespace {

CellProcessParams steady(double pps) {
  CellProcessParams p;
  p.mean_rate_pps = pps;
  p.max_rate_pps = std::max(pps * 2.0, 100.0);
  p.volatility_pps = 0.0;
  p.outage_hazard_per_s = 0.0;
  return p;
}

struct Session {
  Simulator sim;
  RelaySink fwd_egress, rev_egress;
  CellsimLink fwd_link, rev_link;
  BulkDataSource bulk;
  SproutEndpoint tx, rx;
  MeasuredSink measured;

  Session(double fwd_pps, SproutVariant variant, Duration run,
          const SproutParams& params = {})
      : fwd_link(sim, generate_trace(steady(fwd_pps), run + sec(1), 31), {},
                 fwd_egress),
        rev_link(sim, generate_trace(steady(fwd_pps), run + sec(1), 32), {},
                 rev_egress),
        tx(sim, params, variant, 1, &bulk),
        rx(sim, params, variant, 1, nullptr),
        measured(sim, rx) {
    tx.attach_network(fwd_link);
    rx.attach_network(rev_link);
    fwd_egress.set_target(measured);
    rev_egress.set_target(tx);
    tx.start();
    rx.start(msec(7));
    sim.run_until(TimePoint{} + run);
  }
};

TEST(SproutEndpoint, AchievesGoodUtilizationOnSteadyLink) {
  Session s(500.0, SproutVariant::kBayesian, sec(30));
  const double thr = s.measured.metrics().throughput_kbps(
      TimePoint{} + sec(5), TimePoint{} + sec(30));
  EXPECT_GT(thr, 0.45 * 6000.0);  // at least 45% of a 6 Mbps link
  EXPECT_EQ(s.tx.malformed_packets(), 0);
  EXPECT_EQ(s.rx.malformed_packets(), 0);
}

TEST(SproutEndpoint, KeepsDelayNearTolerance) {
  Session s(500.0, SproutVariant::kBayesian, sec(30));
  const double d95 = s.measured.metrics().delay_percentile_ms(
      95.0, TimePoint{} + sec(5), TimePoint{} + sec(30));
  // Tolerance is 100 ms of queueing + 20 ms propagation + slack.
  EXPECT_LT(d95, 250.0);
  EXPECT_GE(d95, 20.0);  // can't beat propagation
}

TEST(SproutEndpoint, EwmaVariantGetsMoreThroughput) {
  Session cautious(500.0, SproutVariant::kBayesian, sec(30));
  Session ewma(500.0, SproutVariant::kEwma, sec(30));
  const TimePoint from = TimePoint{} + sec(5);
  const TimePoint to = TimePoint{} + sec(30);
  EXPECT_GE(ewma.measured.metrics().throughput_kbps(from, to),
            cautious.measured.metrics().throughput_kbps(from, to));
}

TEST(SproutEndpoint, WorksOnSlowLink) {
  Session s(40.0, SproutVariant::kBayesian, sec(30));  // 480 kbps 3G-ish
  const double thr = s.measured.metrics().throughput_kbps(
      TimePoint{} + sec(5), TimePoint{} + sec(30));
  EXPECT_GT(thr, 100.0);
  const double d95 = s.measured.metrics().delay_percentile_ms(
      95.0, TimePoint{} + sec(5), TimePoint{} + sec(30));
  EXPECT_LT(d95, 800.0);
}

TEST(SproutEndpoint, SurvivesMidRunOutage) {
  // Build a trace with a 3-second hole; Sprout must stop sending (bounded
  // queue) and recover afterwards.
  Simulator sim;
  std::vector<TimePoint> opp;
  for (int i = 1; i <= 5000; ++i) {
    const TimePoint t = TimePoint{} + msec(i * 2);  // 500 pps
    const bool in_hole = t >= TimePoint{} + sec(4) && t < TimePoint{} + sec(7);
    if (!in_hole) opp.push_back(t);
  }
  RelaySink fwd_egress, rev_egress;
  CellsimLink fwd_link(sim, Trace{std::move(opp), sec(10) + sec(1)}, {},
                       fwd_egress);
  CellsimLink rev_link(sim, generate_trace(steady(500.0), sec(11), 33), {},
                       rev_egress);
  SproutParams params;
  BulkDataSource bulk;
  SproutEndpoint tx(sim, params, SproutVariant::kBayesian, 1, &bulk);
  SproutEndpoint rx(sim, params, SproutVariant::kBayesian, 1, nullptr);
  tx.attach_network(fwd_link);
  rx.attach_network(rev_link);
  MeasuredSink measured(sim, rx);
  fwd_egress.set_target(measured);
  rev_egress.set_target(tx);
  tx.start();
  rx.start(msec(7));
  sim.run_until(TimePoint{} + sec(10));

  // During the outage the sender must have stopped: the standing queue at
  // the link is bounded (not thousands of packets).
  EXPECT_LT(fwd_link.queue_packets(), 400u);
  // And throughput after the outage recovered.
  const double post = measured.metrics().throughput_kbps(
      TimePoint{} + msec(7500), TimePoint{} + sec(10));
  EXPECT_GT(post, 1000.0);
}

TEST(SproutEndpoint, FeedbackOnlyPeerSendsHeartbeats) {
  Session s(500.0, SproutVariant::kBayesian, sec(5));
  // The receiving endpoint has no data source, yet its feedback stream
  // must flow (tx needs forecasts): tx has a forecast.
  EXPECT_TRUE(s.tx.sender().has_forecast());
  EXPECT_GT(s.rx.receiver().received_or_lost_bytes(), 0);
}

TEST(SproutEndpoint, LossDoesNotCollapseSession) {
  Simulator sim;
  RelaySink fwd_egress, rev_egress;
  CellsimConfig lossy;
  lossy.loss_rate = 0.05;
  lossy.seed = 77;
  CellsimLink fwd_link(sim, generate_trace(steady(500.0), sec(31), 41), lossy,
                       fwd_egress);
  CellsimLink rev_link(sim, generate_trace(steady(500.0), sec(31), 42), lossy,
                       rev_egress);
  SproutParams params;
  BulkDataSource bulk;
  SproutEndpoint tx(sim, params, SproutVariant::kBayesian, 1, &bulk);
  SproutEndpoint rx(sim, params, SproutVariant::kBayesian, 1, nullptr);
  tx.attach_network(fwd_link);
  rx.attach_network(rev_link);
  MeasuredSink measured(sim, rx);
  fwd_egress.set_target(measured);
  rev_egress.set_target(tx);
  tx.start();
  rx.start(msec(7));
  sim.run_until(TimePoint{} + sec(30));
  const double thr = measured.metrics().throughput_kbps(TimePoint{} + sec(5),
                                                        TimePoint{} + sec(30));
  // §5.6: throughput diminishes under loss but stays useful.
  EXPECT_GT(thr, 1000.0);
}

}  // namespace
}  // namespace sprout

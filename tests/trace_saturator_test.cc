#include "trace/saturator.h"

#include <gtest/gtest.h>

namespace sprout {
namespace {

CellProcessParams lte_like() {
  CellProcessParams p;
  p.mean_rate_pps = 300.0;
  p.max_rate_pps = 600.0;
  p.volatility_pps = 100.0;
  p.outage_hazard_per_s = 1.0 / 60.0;
  return p;
}

TEST(GroundTruthLink, DeliversQueuedPackets) {
  Simulator sim;
  struct Counter : PacketSink {
    int n = 0;
    void receive(Packet&&) override { ++n; }
  } sink;
  int recorded = 0;
  CellProcessParams p;
  p.mean_rate_pps = 500.0;
  p.max_rate_pps = 1000.0;
  p.volatility_pps = 0.0;
  p.outage_hazard_per_s = 0.0;
  GroundTruthLink link(sim, p, 1, sink, [&](TimePoint) { ++recorded; });
  for (int i = 0; i < 100; ++i) {
    Packet pkt;
    pkt.size = kMtuBytes;
    link.receive(std::move(pkt));
  }
  sim.run_until(TimePoint{} + sec(1));
  // 100 packets at 500 pps should all drain within a second.
  EXPECT_EQ(sink.n, 100);
  EXPECT_EQ(recorded, 100);
  EXPECT_EQ(link.queue_packets(), 0u);
}

TEST(GroundTruthLink, WastesOpportunitiesWhenIdle) {
  Simulator sim;
  struct Counter : PacketSink {
    int n = 0;
    void receive(Packet&&) override { ++n; }
  } sink;
  int recorded = 0;
  CellProcessParams p;
  p.mean_rate_pps = 500.0;
  p.max_rate_pps = 1000.0;
  p.volatility_pps = 0.0;
  p.outage_hazard_per_s = 0.0;
  GroundTruthLink link(sim, p, 1, sink, [&](TimePoint) { ++recorded; });
  sim.run_until(TimePoint{} + sec(1));
  // Nothing enqueued: nothing delivered, nothing recorded.
  EXPECT_EQ(sink.n, 0);
  EXPECT_EQ(recorded, 0);
}

TEST(Saturator, KeepsRttInBand) {
  SaturatorConfig config;
  config.run_time = sec(120);
  const SaturatorResult r = run_saturator(lte_like(), config, 21);
  // After convergence the paper's band is [750, 3000] ms; the time-average
  // should sit inside it and most acks should be in-band.
  EXPECT_GT(r.mean_rtt_ms, 500.0);
  EXPECT_LT(r.mean_rtt_ms, 3500.0);
  EXPECT_GT(r.fraction_rtt_in_band, 0.5);
}

TEST(Saturator, RecoveredTraceMatchesLinkRate) {
  SaturatorConfig config;
  config.run_time = sec(120);
  const CellProcessParams p = lte_like();
  const SaturatorResult r = run_saturator(p, config, 22);
  // The saturated recording IS the ground truth of deliverable rate:
  // 300 pps * 12 = 3600 kbps nominal, modulo outages and volatility.
  EXPECT_GT(r.observed_rate_kbps, 0.5 * p.mean_rate_pps * 12.0);
  EXPECT_LT(r.observed_rate_kbps, 1.3 * p.mean_rate_pps * 12.0);
  EXPECT_GT(r.trace.size(), 1000u);
}

TEST(Saturator, WindowGrowsUntilBacklogged) {
  // Deterministic steady link so the final window is not at the mercy of a
  // just-ended outage.
  CellProcessParams steady;
  steady.mean_rate_pps = 300.0;
  steady.max_rate_pps = 600.0;
  steady.volatility_pps = 0.0;
  steady.outage_hazard_per_s = 0.0;
  SaturatorConfig config;
  config.run_time = sec(60);
  config.initial_window = 2;
  const SaturatorResult r = run_saturator(steady, config, 23);
  // 750 ms of queueing at 300 pps needs a window of hundreds of packets.
  EXPECT_GT(r.final_window, 50);
  EXPECT_GT(r.mean_rtt_ms, 300.0);
}

}  // namespace
}  // namespace sprout

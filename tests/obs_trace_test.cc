// Tracer contract: inactive emits are free no-ops, active emits buffer
// complete/instant events, and write_json produces the Chrome
// trace-event shape (the obs_report validate-trace CI gate parses the
// same fields).
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/table.h"

namespace sprout {
namespace {

// The tracer is a process-wide singleton shared with every other test in
// this binary; each test starts from a clean stopped state.
class ObsTrace : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::instance().stop();
    obs::Tracer::instance().reset();
  }
  void TearDown() override {
    obs::Tracer::instance().stop();
    obs::Tracer::instance().reset();
  }
};

TEST_F(ObsTrace, InactiveEmitsAreDropped) {
  obs::Tracer& t = obs::Tracer::instance();
  EXPECT_FALSE(t.active());
  t.instant("ignored", "test", 0);
  t.complete("ignored", "test", 0, 10, 0);
  { obs::Span span("ignored-span", "test"); }
  EXPECT_EQ(t.event_count(), 0u);
  EXPECT_EQ(t.now_us(), 0);
}

TEST_F(ObsTrace, ActiveEmitsBuffer) {
  obs::Tracer& t = obs::Tracer::instance();
  t.start();
  t.instant("mark", "test", 3);
  t.complete("work", "test", 5, 10, 1);
  { obs::Span span("scoped", "test"); }
  EXPECT_EQ(t.event_count(), 3u);
}

TEST_F(ObsTrace, WriteJsonIsChromeTraceShapedAndDrainsBuffer) {
  obs::Tracer& t = obs::Tracer::instance();
  t.start();
  t.complete("cell 0", "cell", 100, 250, 2);
  t.instant("retry cell 1", "fault", 0);
  std::ostringstream os;
  t.write_json(os);
  EXPECT_EQ(t.event_count(), 0u);  // drained

  const JsonValue doc = JsonValue::parse(os.str());
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  const JsonValue& span = events[0];
  EXPECT_EQ(span.at("name").as_string(), "cell 0");
  EXPECT_EQ(span.at("cat").as_string(), "cell");
  EXPECT_EQ(span.at("ph").as_string(), "X");
  EXPECT_DOUBLE_EQ(span.at("ts").as_number(), 100.0);
  EXPECT_DOUBLE_EQ(span.at("dur").as_number(), 250.0);
  EXPECT_DOUBLE_EQ(span.at("pid").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(span.at("tid").as_number(), 2.0);
  const JsonValue& instant = events[1];
  EXPECT_EQ(instant.at("ph").as_string(), "i");
  EXPECT_FALSE(instant.has("dur"));
}

TEST_F(ObsTrace, TimestampsAdvanceFromStart) {
  obs::Tracer& t = obs::Tracer::instance();
  t.start();
  const std::int64_t a = t.now_us();
  EXPECT_GE(a, 0);
  EXPECT_GE(t.now_us(), a);  // monotone
}

TEST_F(ObsTrace, LanesAreSmallAndStablePerThread) {
  const std::int64_t lane = obs::Tracer::current_lane();
  EXPECT_GE(lane, 0);
  EXPECT_EQ(obs::Tracer::current_lane(), lane);
}

// Concurrent emission: the thread-pool sweep path has every worker emit
// spans into the shared buffer.  No event may be lost or corrupted, each
// thread keeps one stable dense lane, and the drained JSON must still
// parse as Chrome trace shape.  (Runs under the ASan/TSan CI jobs, which
// is where a data race in the buffer or the lane table would surface.)
TEST_F(ObsTrace, ConcurrentSpanEmissionKeepsLanesAndEvents) {
  obs::Tracer& t = obs::Tracer::instance();
  t.start();

  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::vector<std::int64_t> lane_of_thread(kThreads, -1);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([i, &lane_of_thread] {
      const std::int64_t lane = obs::Tracer::current_lane();
      lane_of_thread[static_cast<std::size_t>(i)] = lane;
      std::string name = "t";
      name += std::to_string(i);
      for (int s = 0; s < kSpansPerThread; ++s) {
        // Lane must stay stable across every emit from this thread.
        ASSERT_EQ(obs::Tracer::current_lane(), lane);
        obs::Span span(name.c_str(), "mt");
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(t.event_count(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread);

  std::ostringstream os;
  t.write_json(os);
  const JsonValue doc = JsonValue::parse(os.str());
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads) * kSpansPerThread);

  // Dense lane assignment: each thread owns exactly one lane, no two
  // threads share one, and every event landed on its emitter's lane.
  std::set<std::int64_t> lanes(lane_of_thread.begin(), lane_of_thread.end());
  EXPECT_EQ(lanes.size(), static_cast<std::size_t>(kThreads));
  for (const std::int64_t lane : lanes) EXPECT_GE(lane, 0);
  for (const JsonValue& e : events) {
    ASSERT_EQ(e.at("ph").as_string(), "X");
    ASSERT_EQ(e.at("cat").as_string(), "mt");
    const std::string name = e.at("name").as_string();
    ASSERT_EQ(name.size(), 2u);
    const int emitter = name[1] - '0';
    ASSERT_GE(emitter, 0);
    ASSERT_LT(emitter, kThreads);
    ASSERT_EQ(static_cast<std::int64_t>(e.at("tid").as_number()),
              lane_of_thread[static_cast<std::size_t>(emitter)]);
  }
}

TEST_F(ObsTrace, StopPreservesBufferUntilReset) {
  obs::Tracer& t = obs::Tracer::instance();
  t.start();
  t.instant("mark", "test", 0);
  t.stop();
  EXPECT_EQ(t.event_count(), 1u);  // stop() arms down, keeps the buffer
  t.instant("after-stop", "test", 0);
  EXPECT_EQ(t.event_count(), 1u);
  t.reset();
  EXPECT_EQ(t.event_count(), 0u);
}

}  // namespace
}  // namespace sprout

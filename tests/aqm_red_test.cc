#include "aqm/red.h"

#include <gtest/gtest.h>

namespace sprout {
namespace {

Packet mtu_packet() {
  Packet p;
  p.size = kMtuBytes;
  return p;
}

TEST(Red, AdmitsEverythingWhenQueueSmall) {
  RedPolicy red(RedParams{}, 1);
  LinkQueue q;
  for (int i = 0; i < 20; ++i) {
    Packet p = mtu_packet();
    EXPECT_TRUE(red.admit(q, p, TimePoint{}));
    q.push(std::move(p));
  }
  EXPECT_EQ(red.drops(), 0);
}

TEST(Red, DropsProbabilisticallyBetweenThresholds) {
  RedParams params;
  params.min_threshold_bytes = 10.0 * kMtuBytes;
  params.max_threshold_bytes = 20.0 * kMtuBytes;
  params.queue_weight = 1.0;  // no smoothing: avg == instantaneous
  RedPolicy red(params, 7);
  LinkQueue q;
  for (int i = 0; i < 15; ++i) q.push(mtu_packet());
  int admitted = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    Packet p = mtu_packet();
    if (red.admit(q, p, TimePoint{})) ++admitted;
  }
  EXPECT_GT(admitted, 0);
  EXPECT_LT(admitted, trials);
}

TEST(Red, ForcesDropAboveMaxThreshold) {
  RedParams params;
  params.min_threshold_bytes = 2.0 * kMtuBytes;
  params.max_threshold_bytes = 5.0 * kMtuBytes;
  params.queue_weight = 1.0;
  RedPolicy red(params, 3);
  LinkQueue q;
  for (int i = 0; i < 10; ++i) q.push(mtu_packet());
  Packet p = mtu_packet();
  EXPECT_FALSE(red.admit(q, p, TimePoint{}));
  EXPECT_GE(red.drops(), 1);
}

TEST(Red, AverageTracksQueueWithSmoothing) {
  RedParams params;
  params.queue_weight = 0.5;
  RedPolicy red(params, 5);
  LinkQueue q;
  for (int i = 0; i < 4; ++i) q.push(mtu_packet());
  Packet p = mtu_packet();
  red.admit(q, p, TimePoint{});
  red.admit(q, p, TimePoint{});
  EXPECT_GT(red.average_queue_bytes(), 0.0);
  EXPECT_LE(red.average_queue_bytes(), 4.0 * kMtuBytes);
}

}  // namespace
}  // namespace sprout

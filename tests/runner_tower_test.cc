// Tower topology end-to-end: the churn timeline is a pure function of the
// spec, a tower scenario reports per-user and population delay CDFs from
// streaming histograms, and tower sweeps are bit-identical across the
// serial, thread-pool and process-sharded execution paths — asserted as
// byte identity of write_sweep_json output, the same artifact the CI
// tower-smoke job diffs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "runner/shard.h"
#include "runner/sweep.h"
#include "runner/tower.h"

namespace sprout {
namespace {

// A churning tower cell small enough for a unit test but busy enough to
// exercise arrivals, departures and a mixed scheme population.
ScenarioSpec small_tower(int num_users, std::uint64_t seed) {
  TowerSpec t;
  t.num_users = num_users;
  t.arrival_rate_per_s = 0.5;
  t.mean_session_s = 8.0;
  t.mix = {{SchemeId::kCubic, 3.0}, {SchemeId::kSprout, 1.0}};
  ScenarioSpec s;
  s.topology = TopologySpec::tower(std::move(t));
  s.run_time = sec(15);
  s.warmup = sec(2);
  s.seed = seed;
  return s;
}

std::string sweep_bytes(const SweepResult& r) {
  std::ostringstream os;
  write_sweep_json(os, r);
  return os.str();
}

TEST(TowerSessions, PureFunctionOfSpecAndSeed) {
  TowerSpec t;
  t.num_users = 10;
  t.arrival_rate_per_s = 2.0;
  t.mean_session_s = 5.0;
  const auto a = derive_tower_sessions(t, sec(30), 42);
  const auto b = derive_tower_sessions(t, sec(30), 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].user_id, b[i].user_id);
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].departure, b[i].departure);
    EXPECT_EQ(a[i].scheme, b[i].scheme);
    EXPECT_EQ(a[i].channel_seed, b[i].channel_seed);
  }
  // A different churn seed reshuffles the timeline.
  const auto c = derive_tower_sessions(t, sec(30), 43);
  bool differs = a.size() != c.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].arrival != c[i].arrival || a[i].departure != c[i].departure;
  }
  EXPECT_TRUE(differs);
}

TEST(TowerSessions, InitialPopulationChurnAndClamping) {
  TowerSpec t;
  t.num_users = 8;
  t.arrival_rate_per_s = 1.0;
  t.mean_session_s = 5.0;
  const Duration run = sec(60);
  const auto sessions = derive_tower_sessions(t, run, 7);
  ASSERT_GE(sessions.size(), 8u);  // churn only ever adds users
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const TowerUserSession& s = sessions[i];
    EXPECT_EQ(s.user_id, static_cast<std::int64_t>(i) + 1);  // 1-based, dense
    EXPECT_GE(s.arrival, Duration::zero());
    EXPECT_LT(s.arrival, run);
    EXPECT_GT(s.departure, s.arrival);
    EXPECT_LE(s.departure, run);  // clamped
    if (i < 8) {
      EXPECT_EQ(s.arrival, Duration::zero());  // attached at t = 0
    }
    if (i > 0) {
      EXPECT_GE(s.arrival, sessions[i - 1].arrival);  // id = arrival order
    }
  }
  // Distinct users draw distinct channel seeds.
  std::vector<std::uint64_t> seeds;
  for (const TowerUserSession& s : sessions) seeds.push_back(s.channel_seed);
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

TEST(TowerSessions, ZeroChurnMeansClosedPopulationToTheEnd) {
  TowerSpec t;
  t.num_users = 5;
  const auto sessions = derive_tower_sessions(t, sec(30), 1);
  ASSERT_EQ(sessions.size(), 5u);
  for (const TowerUserSession& s : sessions) {
    EXPECT_EQ(s.arrival, Duration::zero());
    EXPECT_EQ(s.departure, sec(30));  // mean_session_s = 0: stay to the end
  }
}

TEST(TowerScenario, ReportsPopulationAndPerUserDelayCdfs) {
  const ScenarioSpec spec = small_tower(12, 3);
  const ScenarioResult r = run_scenario(spec);
  // Churn only adds to the initial population.
  EXPECT_GE(r.flows.size(), 12u);
  EXPECT_GT(r.aggregate_throughput_kbps, 0.0);
  EXPECT_GT(r.packets_delivered, 0);

  // The population CDF is the exact merge of the per-user histograms.
  // Users whose whole session falls inside warmup carry no histogram.
  ASSERT_TRUE(r.population_delay_hist.configured());
  std::int64_t per_user_samples = 0;
  for (const FlowResult& f : r.flows) {
    if (f.active_to_s > f.active_from_s) {
      ASSERT_TRUE(f.delay_hist.configured()) << f.label;
      per_user_samples += f.delay_hist.samples();
    }
  }
  EXPECT_EQ(r.population_delay_hist.samples(), per_user_samples);
  EXPECT_GT(per_user_samples, 0);

  const DelayStats pop = r.population_delay();
  EXPECT_EQ(pop.samples, per_user_samples);
  EXPECT_GT(pop.mean_ms, 0.0);
  EXPECT_LE(pop.p50_ms, pop.p95_ms);
  EXPECT_LE(pop.p95_ms, pop.p99_ms);
  EXPECT_LE(pop.p99_ms, pop.p999_ms);
}

TEST(TowerSweep, SerialPoolAndShardedRunsAreByteIdentical) {
  SweepSpec grid;
  grid.cells = {small_tower(8, 1), small_tower(12, 2), small_tower(16, 3)};
  grid.base_seed = 99;

  const SweepResult serial = run_sweep(grid, /*threads=*/1);
  const SweepResult pooled = run_sweep(grid, /*threads=*/4);
  const SweepResult merged = merge_shards({
      run_shard(grid, shard_cell_indices(grid.cells.size(), 0, 2)),
      run_shard(grid, shard_cell_indices(grid.cells.size(), 1, 2)),
  });
  verify_sweep_result(merged, grid);

  const std::string serial_bytes = sweep_bytes(serial);
  EXPECT_EQ(serial_bytes, sweep_bytes(pooled));
  EXPECT_EQ(serial_bytes, sweep_bytes(merged));
}

TEST(TowerSweep, SweepJsonRoundTripsHistogramsExactly) {
  SweepSpec grid;
  grid.cells = {small_tower(8, 5)};
  const SweepResult out = run_sweep(grid, /*threads=*/1);
  ASSERT_TRUE(out.cells.at(0).population_delay_hist.configured());

  const std::string bytes = sweep_bytes(out);
  const SweepResult back = read_sweep_json(bytes);
  ASSERT_EQ(back.cells.size(), 1u);
  const DelayHistogram& a = out.cells[0].population_delay_hist;
  const DelayHistogram& b = back.cells[0].population_delay_hist;
  EXPECT_EQ(a.counts(), b.counts());
  EXPECT_EQ(a.samples(), b.samples());
  EXPECT_DOUBLE_EQ(a.sum_ms(), b.sum_ms());
  // A second serialization of the parsed result reproduces the bytes.
  EXPECT_EQ(bytes, sweep_bytes(back));
}

// The ISSUE's scale criterion: a 1000-user, 300 s tower with Poisson churn
// completes under the thread-pool runner, and the merged 2-shard run is
// byte-identical to the serial run.  Minutes of wall clock, so it only
// runs when SPROUT_SCALE_TESTS is set (the nightly lane); the same
// invariant is asserted every run at unit scale above and at 64-user
// scale by the CI tower-smoke job.
TEST(TowerSweep, ScaleThousandUsersThreeHundredSeconds) {
  if (std::getenv("SPROUT_SCALE_TESTS") == nullptr) {
    GTEST_SKIP() << "set SPROUT_SCALE_TESTS=1 to run the 1000-user tower";
  }
  TowerSpec t;
  t.num_users = 1000;
  t.arrival_rate_per_s = 2.0;
  t.mean_session_s = 60.0;
  t.mix = {{SchemeId::kCubic, 3.0}, {SchemeId::kSprout, 1.0}};
  ScenarioSpec cell;
  cell.topology = TopologySpec::tower(std::move(t));
  cell.run_time = sec(300);
  cell.seed = 1;

  SweepSpec grid;
  grid.cells = {cell, cell};
  grid.cells[1].seed = 2;
  grid.base_seed = 7;

  const SweepResult pooled = run_sweep(grid, /*threads=*/0);
  const SweepResult merged = merge_shards({
      run_shard(grid, shard_cell_indices(grid.cells.size(), 0, 2)),
      run_shard(grid, shard_cell_indices(grid.cells.size(), 1, 2)),
  });
  EXPECT_EQ(sweep_bytes(pooled), sweep_bytes(merged));
  EXPECT_GE(pooled.cells.at(0).flows.size(), 1000u);
  EXPECT_GT(pooled.cells.at(0).population_delay_hist.samples(), 0);
}

TEST(TowerValidation, BuildersRejectBadTowerSpecs) {
  TowerSpec no_users;
  no_users.num_users = 0;
  EXPECT_THROW((void)TopologySpec::tower(no_users), std::invalid_argument);

  TowerSpec bad_mix;
  bad_mix.mix = {{SchemeId::kCubic, 0.0}};
  EXPECT_THROW((void)TopologySpec::tower(bad_mix), std::invalid_argument);

  TowerSpec bad_window;
  bad_window.slot = msec(10);
  bad_window.pf_window = msec(5);  // shorter than one slot
  EXPECT_THROW((void)TopologySpec::tower(bad_window), std::invalid_argument);

  TowerSpec with_ops;
  with_ops.channel.ops.push_back(SynthOp::scale(2.0));
  EXPECT_THROW((void)TopologySpec::tower(with_ops), std::invalid_argument);
}

}  // namespace
}  // namespace sprout

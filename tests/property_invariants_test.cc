// Cross-scheme property sweeps: invariants that must hold for EVERY scheme
// on EVERY link, regardless of calibration.
#include <cctype>

#include <gtest/gtest.h>

#include "runner/scenario.h"

namespace sprout {
namespace {

struct Case {
  SchemeId scheme;
  const char* network;
  LinkDirection direction;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string s = to_string(info.param.scheme) + "_" +
                  std::string(info.param.network) + "_" +
                  to_string(info.param.direction);
  for (char& c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return s;
}

class SchemeLinkSweep : public ::testing::TestWithParam<Case> {
 protected:
  static ScenarioResult run(const Case& c, std::uint64_t seed = 42) {
    ScenarioSpec config;
    config.scheme = c.scheme;
    config.link = LinkSpec::preset(c.network, c.direction);
    config.run_time = sec(45);
    config.warmup = sec(15);
    config.seed = seed;
    return run_scenario(config);
  }
};

TEST_P(SchemeLinkSweep, InvariantsHold) {
  const ScenarioResult r = run(GetParam());
  // Conservation: cannot beat the link's capacity.
  EXPECT_LE(r.throughput_kbps(), r.capacity_kbps * 1.001);
  EXPECT_GE(r.throughput_kbps(), 0.0);
  // Physics: cannot beat the omniscient delay baseline.
  EXPECT_GE(r.delay95_ms(), r.omniscient_delay95_ms - 1e-6);
  EXPECT_GE(r.self_inflicted_delay_ms(), 0.0);
  // Omniscient baseline itself must be at least the propagation delay.
  EXPECT_GE(r.omniscient_delay95_ms, 20.0);
  // Liveness: every scheme moves SOME data on every link.
  EXPECT_GT(r.packets_delivered, 0);
  EXPECT_GT(r.throughput_kbps(), 5.0);
}

TEST_P(SchemeLinkSweep, DeterministicAcrossRuns) {
  const ScenarioResult a = run(GetParam());
  const ScenarioResult b = run(GetParam());
  EXPECT_DOUBLE_EQ(a.throughput_kbps(), b.throughput_kbps());
  EXPECT_DOUBLE_EQ(a.delay95_ms(), b.delay95_ms());
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SchemeLinkSweep,
    ::testing::Values(
        Case{SchemeId::kSprout, "Verizon LTE", LinkDirection::kDownlink},
        Case{SchemeId::kSprout, "Verizon 3G (1xEV-DO)", LinkDirection::kUplink},
        Case{SchemeId::kSprout, "T-Mobile 3G (UMTS)", LinkDirection::kDownlink},
        Case{SchemeId::kSproutEwma, "AT&T LTE", LinkDirection::kUplink},
        Case{SchemeId::kSproutEwma, "Verizon 3G (1xEV-DO)",
             LinkDirection::kDownlink},
        Case{SchemeId::kCubic, "T-Mobile 3G (UMTS)", LinkDirection::kUplink},
        Case{SchemeId::kCubicCodel, "Verizon LTE", LinkDirection::kUplink},
        Case{SchemeId::kVegas, "AT&T LTE", LinkDirection::kDownlink},
        Case{SchemeId::kCompound, "Verizon LTE", LinkDirection::kDownlink},
        Case{SchemeId::kLedbat, "T-Mobile 3G (UMTS)",
             LinkDirection::kDownlink},
        Case{SchemeId::kSkype, "AT&T LTE", LinkDirection::kDownlink},
        Case{SchemeId::kHangout, "Verizon LTE", LinkDirection::kDownlink},
        Case{SchemeId::kFacetime, "T-Mobile 3G (UMTS)",
             LinkDirection::kDownlink},
        Case{SchemeId::kOmniscient, "Verizon 3G (1xEV-DO)",
             LinkDirection::kDownlink},
        // Extension schemes obey the same physics.
        Case{SchemeId::kGcc, "Verizon LTE", LinkDirection::kDownlink},
        Case{SchemeId::kGcc, "T-Mobile 3G (UMTS)", LinkDirection::kUplink},
        Case{SchemeId::kFast, "AT&T LTE", LinkDirection::kDownlink},
        Case{SchemeId::kCubicPie, "Verizon LTE", LinkDirection::kUplink},
        Case{SchemeId::kSproutAdaptive, "Verizon LTE",
             LinkDirection::kDownlink},
        Case{SchemeId::kSproutMmpp, "AT&T LTE", LinkDirection::kUplink},
        Case{SchemeId::kSproutEmpirical, "Verizon 3G (1xEV-DO)",
             LinkDirection::kDownlink}),
    case_name);

// Seed robustness: the paper-shape conclusions must not hinge on one seed.
class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, SproutBeatsCubicOnDelayForEverySeed) {
  ScenarioSpec config;
  config.link = LinkSpec::preset("Verizon LTE", LinkDirection::kDownlink);
  config.run_time = sec(45);
  config.warmup = sec(15);
  config.seed = GetParam();
  config.scheme = SchemeId::kSprout;
  const ScenarioResult sprout = run_scenario(config);
  config.scheme = SchemeId::kCubic;
  const ScenarioResult cubic = run_scenario(config);
  EXPECT_LT(sprout.self_inflicted_delay_ms(),
            cubic.self_inflicted_delay_ms() / 5.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 7u, 42u, 1337u, 99991u));

// Every forecaster variant preserves the protocol's delay discipline: on
// the same link and seed, no Sprout variant's self-inflicted delay comes
// within a factor of 4 of Cubic's.
class VariantSweep : public ::testing::TestWithParam<SchemeId> {};

TEST_P(VariantSweep, KeepsDelayFarBelowCubic) {
  ScenarioSpec config;
  config.link = LinkSpec::preset("Verizon LTE", LinkDirection::kDownlink);
  config.run_time = sec(30);
  config.warmup = sec(10);
  config.scheme = GetParam();
  const ScenarioResult variant = run_scenario(config);
  config.scheme = SchemeId::kCubic;
  const ScenarioResult cubic = run_scenario(config);
  EXPECT_LT(variant.self_inflicted_delay_ms(),
            cubic.self_inflicted_delay_ms() / 4.0)
      << to_string(GetParam());
  EXPECT_GT(variant.throughput_kbps(), 5.0);
}

INSTANTIATE_TEST_SUITE_P(
    Forecasters, VariantSweep,
    ::testing::Values(SchemeId::kSprout, SchemeId::kSproutEwma,
                      SchemeId::kSproutAdaptive, SchemeId::kSproutMmpp,
                      SchemeId::kSproutEmpirical),
    [](const ::testing::TestParamInfo<SchemeId>& info) {
      std::string s = to_string(info.param);
      for (char& c : s) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return s;
    });

}  // namespace
}  // namespace sprout

// The sharded sweep subsystem's spine: serial == thread pool == N merged
// shards, bit for bit — plus the failure modes that keep a merge honest
// (overlap, gaps, foreign shards, corrupt files) and the longest-first
// scheduling order.
#include "runner/shard.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <sstream>

#include "runner/scenario.h"
#include "runner/sweep.h"

namespace sprout {
namespace {

// NaN-aware bitwise equality: jain_index is deliberately NaN for disjoint
// activity windows, and NaN != NaN under operator==.
void expect_same_bits(double a, double b) {
  std::uint64_t ab = 0;
  std::uint64_t bb = 0;
  std::memcpy(&ab, &a, sizeof ab);
  std::memcpy(&bb, &b, sizeof bb);
  EXPECT_EQ(ab, bb) << a << " vs " << b;
}

void expect_bit_identical(const ScenarioResult& a, const ScenarioResult& b) {
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t f = 0; f < a.flows.size(); ++f) {
    SCOPED_TRACE("flow " + std::to_string(f));
    EXPECT_EQ(a.flows[f].label, b.flows[f].label);
    EXPECT_EQ(a.flows[f].scheme, b.flows[f].scheme);
    expect_same_bits(a.flows[f].active_from_s, b.flows[f].active_from_s);
    expect_same_bits(a.flows[f].active_to_s, b.flows[f].active_to_s);
    expect_same_bits(a.flows[f].throughput_kbps, b.flows[f].throughput_kbps);
    expect_same_bits(a.flows[f].delay95_ms, b.flows[f].delay95_ms);
    expect_same_bits(a.flows[f].mean_delay_ms, b.flows[f].mean_delay_ms);
    expect_same_bits(a.flows[f].coactive_throughput_kbps,
                     b.flows[f].coactive_throughput_kbps);
    expect_same_bits(a.flows[f].capacity_share, b.flows[f].capacity_share);
    EXPECT_EQ(a.flows[f].delivered_bytes, b.flows[f].delivered_bytes);
  }
  expect_same_bits(a.capacity_kbps, b.capacity_kbps);
  expect_same_bits(a.aggregate_throughput_kbps, b.aggregate_throughput_kbps);
  expect_same_bits(a.aggregate_utilization, b.aggregate_utilization);
  expect_same_bits(a.jain_index, b.jain_index);
  expect_same_bits(a.coactive_from_s, b.coactive_from_s);
  expect_same_bits(a.coactive_to_s, b.coactive_to_s);
  expect_same_bits(a.coactive_capacity_kbps, b.coactive_capacity_kbps);
  expect_same_bits(a.max_delay95_ms, b.max_delay95_ms);
  expect_same_bits(a.omniscient_delay95_ms, b.omniscient_delay95_ms);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.link_drops, b.link_drops);
}

void expect_bit_identical(const SweepResult& a, const SweepResult& b) {
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  ASSERT_EQ(a.cell_fingerprints, b.cell_fingerprints);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    expect_bit_identical(a.cells[i], b.cells[i]);
  }
}

ScenarioSpec short_cell(SchemeId scheme, const char* network, int seconds) {
  ScenarioSpec spec;
  spec.scheme = scheme;
  spec.link = LinkSpec::preset(network, LinkDirection::kDownlink);
  spec.run_time = sec(seconds);
  spec.warmup = sec(2);
  return spec;
}

// Mixed durations (6 s next to 18 s), mixed flow counts, a heterogeneous
// shared queue, and one early-stopping flow: the unbalanced shape the
// longest-first scheduler and the drain-tail ledger exist for.
SweepSpec mixed_grid() {
  SweepSpec sweep;
  sweep.cells.push_back(short_cell(SchemeId::kCubic, "Verizon LTE", 6));
  {
    ScenarioSpec cell = short_cell(SchemeId::kSprout, "Verizon LTE", 18);
    cell.topology = TopologySpec::heterogeneous_queue(
        {FlowSpec::of(SchemeId::kSprout), FlowSpec::of(SchemeId::kCubic),
         FlowSpec::of(SchemeId::kVegas)});
    sweep.cells.push_back(cell);
  }
  sweep.cells.push_back(short_cell(SchemeId::kSprout, "AT&T LTE", 6));
  {
    ScenarioSpec cell = short_cell(SchemeId::kSprout, "AT&T LTE", 12);
    cell.topology = TopologySpec::heterogeneous_queue(
        {FlowSpec::of(SchemeId::kSprout),
         FlowSpec::of(SchemeId::kCubic).active(sec(0), sec(6))});
    sweep.cells.push_back(cell);
  }
  sweep.cells.push_back(short_cell(SchemeId::kVegas, "Verizon LTE", 6));
  sweep.base_seed = 0xfeedbeef;
  return sweep;
}

TEST(Shard, SerialPoolAndThreeShardMergeAreBitIdentical) {
  const SweepSpec grid = mixed_grid();

  const SweepResult serial = run_sweep(grid, /*threads=*/1);
  const SweepResult pooled = run_sweep(grid, /*threads=*/8);

  std::vector<ShardResult> shards;
  for (int s = 0; s < 3; ++s) {
    shards.push_back(
        run_shard(grid, shard_cell_indices(grid.cells.size(), s, 3),
                  /*threads=*/2));
  }
  const SweepResult merged = merge_shards(shards);

  expect_bit_identical(serial, pooled);
  expect_bit_identical(serial, merged);
  verify_sweep_result(merged, grid);
}

TEST(Shard, MergedJsonRoundTripsBitwise) {
  const SweepSpec grid = mixed_grid();
  std::vector<ShardResult> shards;
  for (int s = 0; s < 2; ++s) {
    shards.push_back(run_shard(
        grid, shard_cell_indices(grid.cells.size(), s, 2), /*threads=*/4));

    // The shard file itself must round-trip exactly, NaN fairness included.
    std::ostringstream os;
    write_shard_json(os, shards.back());
    const ShardResult reread = read_shard_json(os.str());
    EXPECT_EQ(reread.sweep_fingerprint, shards.back().sweep_fingerprint);
    EXPECT_EQ(reread.cell_indices, shards.back().cell_indices);
    EXPECT_EQ(reread.cell_fingerprints, shards.back().cell_fingerprints);
    ASSERT_EQ(reread.cells.size(), shards.back().cells.size());
    for (std::size_t k = 0; k < reread.cells.size(); ++k) {
      expect_bit_identical(reread.cells[k], shards.back().cells[k]);
    }
  }

  const SweepResult merged = merge_shards(shards);
  std::ostringstream merged_os;
  write_sweep_json(merged_os, merged);
  const SweepResult reread = read_sweep_json(merged_os.str());
  expect_bit_identical(merged, reread);

  // Byte-level determinism: serializing the reread result reproduces the
  // file, which is what lets CI diff a merged file against a full run.
  std::ostringstream again;
  write_sweep_json(again, reread);
  EXPECT_EQ(merged_os.str(), again.str());
}

TEST(Shard, ShardCellIndicesDealRoundRobin) {
  EXPECT_EQ(shard_cell_indices(7, 0, 3), (std::vector<std::size_t>{0, 3, 6}));
  EXPECT_EQ(shard_cell_indices(7, 1, 3), (std::vector<std::size_t>{1, 4}));
  EXPECT_EQ(shard_cell_indices(7, 2, 3), (std::vector<std::size_t>{2, 5}));
  // More shards than cells: the surplus shards are legitimately empty.
  EXPECT_TRUE(shard_cell_indices(2, 2, 3).empty());
  EXPECT_THROW((void)shard_cell_indices(7, 3, 3), std::invalid_argument);
  EXPECT_THROW((void)shard_cell_indices(7, -1, 3), std::invalid_argument);
  EXPECT_THROW((void)shard_cell_indices(7, 0, 0), std::invalid_argument);
}

TEST(Shard, RunShardRejectsBadCellLists) {
  const SweepSpec grid = mixed_grid();
  EXPECT_THROW((void)run_shard(grid, {0, 99}), std::invalid_argument);
  EXPECT_THROW((void)run_shard(grid, {1, 1}), std::invalid_argument);
}

// --- merge failure modes -------------------------------------------------

// A tiny grid the failure-mode tests can afford to run repeatedly.
SweepSpec tiny_grid() {
  SweepSpec sweep;
  sweep.cells.push_back(short_cell(SchemeId::kCubic, "Verizon LTE", 6));
  sweep.cells.push_back(short_cell(SchemeId::kVegas, "Verizon LTE", 6));
  sweep.cells.push_back(short_cell(SchemeId::kCubic, "AT&T LTE", 6));
  return sweep;
}

class ShardMerge : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    grid_ = new SweepSpec(tiny_grid());
    shards_ = new std::vector<ShardResult>();
    for (int s = 0; s < 3; ++s) {
      shards_->push_back(run_shard(*grid_, {static_cast<std::size_t>(s)}));
    }
  }
  static void TearDownTestSuite() {
    delete grid_;
    delete shards_;
    grid_ = nullptr;
    shards_ = nullptr;
  }

  static SweepSpec* grid_;
  static std::vector<ShardResult>* shards_;
};

SweepSpec* ShardMerge::grid_ = nullptr;
std::vector<ShardResult>* ShardMerge::shards_ = nullptr;

void expect_merge_error(const std::vector<ShardResult>& shards,
                        const std::string& needle) {
  try {
    (void)merge_shards(shards);
    FAIL() << "merge accepted a bad shard set";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST_F(ShardMerge, CleanPartitionMerges) {
  const SweepResult merged = merge_shards(*shards_);
  EXPECT_EQ(merged.cells.size(), 3u);
  verify_sweep_result(merged, *grid_);
}

TEST_F(ShardMerge, OverlappingShardsAreRejected) {
  std::vector<ShardResult> shards = *shards_;
  shards.push_back((*shards_)[1]);  // cell 1 delivered twice
  expect_merge_error(shards, "more than one shard");
}

TEST_F(ShardMerge, MissingCellsAreRejected) {
  std::vector<ShardResult> shards = {(*shards_)[0], (*shards_)[2]};
  expect_merge_error(shards, "covered by no shard");
}

TEST_F(ShardMerge, ForeignShardIsRejected) {
  std::vector<ShardResult> shards = *shards_;
  shards[2].sweep_fingerprint ^= 1;  // cut from "a different grid"
  expect_merge_error(shards, "not cut from the same grid");
}

TEST_F(ShardMerge, DisagreeingTotalsAreRejected) {
  std::vector<ShardResult> shards = *shards_;
  shards[1].total_cells = 7;
  expect_merge_error(shards, "totals disagree");
}

TEST_F(ShardMerge, InternallyInconsistentShardIsRejected) {
  std::vector<ShardResult> shards = *shards_;
  shards[0].cell_fingerprints.push_back(42);  // one fingerprint, no result
  expect_merge_error(shards, "internally inconsistent");
}

TEST_F(ShardMerge, OutOfRangeCellIndexIsRejected) {
  std::vector<ShardResult> shards = *shards_;
  shards[0].cell_indices[0] = 5;
  expect_merge_error(shards, "only");
}

TEST_F(ShardMerge, EmptyMergeIsRejected) {
  expect_merge_error({}, "zero shards");
}

TEST_F(ShardMerge, VerifyCatchesCellSubstitution) {
  // Shards that merge cleanly but whose cells are not this grid's cells:
  // per-cell fingerprints are the last line of defense.
  std::vector<ShardResult> shards = *shards_;
  shards[1].cell_fingerprints[0] ^= 1;
  const SweepResult merged = merge_shards(shards);
  EXPECT_THROW(verify_sweep_result(merged, *grid_), std::runtime_error);
}

TEST_F(ShardMerge, TruncatedShardJsonIsRejected) {
  std::ostringstream os;
  write_shard_json(os, (*shards_)[0]);
  const std::string whole = os.str();
  // A truncated file (half-written by a dying process) must never parse,
  // at ANY cut point — not just convenient ones.
  for (const double frac : {0.25, 0.5, 0.9, 0.99}) {
    const std::string cut =
        whole.substr(0, static_cast<std::size_t>(whole.size() * frac));
    EXPECT_THROW((void)read_shard_json(cut), std::runtime_error) << frac;
  }
}

TEST_F(ShardMerge, CorruptShardJsonIsRejected) {
  std::ostringstream os;
  write_shard_json(os, (*shards_)[0]);
  const std::string whole = os.str();

  std::string garbage = whole;
  garbage[whole.find("sweep_fingerprint") + 25] = 'x';  // inside the number
  EXPECT_THROW((void)read_shard_json(garbage), std::runtime_error);

  EXPECT_THROW((void)read_shard_json("not json at all"), std::runtime_error);
  EXPECT_THROW((void)read_shard_json(""), std::runtime_error);
  EXPECT_THROW((void)read_shard_json(whole + "trailing"), std::runtime_error);

  // Wrong schema tag: a sweep file is not a shard file.
  const SweepResult merged = merge_shards(*shards_);
  std::ostringstream sweep_os;
  write_sweep_json(sweep_os, merged);
  EXPECT_THROW((void)read_shard_json(sweep_os.str()), std::runtime_error);
  EXPECT_THROW((void)read_sweep_json(whole), std::runtime_error);
}

TEST_F(ShardMerge, CounterBeyondDoubleExactRangeIsRejected) {
  // Integer counters ride as JSON numbers, exact only up to 2^53; a value
  // past that would round silently in the parse, so the reader refuses it.
  std::ostringstream os;
  write_shard_json(os, (*shards_)[0]);
  std::string text = os.str();
  const std::string key = "\"packets_delivered\": ";
  const std::size_t at = text.find(key);
  ASSERT_NE(at, std::string::npos);
  const std::size_t digits_at = at + key.size();
  const std::size_t digits_end = text.find_first_not_of("0123456789", digits_at);
  text.replace(digits_at, digits_end - digits_at, "9007199254740994");
  EXPECT_THROW((void)read_shard_json(text), std::runtime_error);
}

// --- fingerprints and scheduling ----------------------------------------

TEST(Shard, SweepFingerprintCoversEveryCellAndTheSeed) {
  const SweepSpec grid = tiny_grid();
  const std::uint64_t fp = sweep_fingerprint(grid);

  SweepSpec reordered = grid;
  std::swap(reordered.cells[0], reordered.cells[1]);
  EXPECT_NE(fp, sweep_fingerprint(reordered));  // cells are index-addressed

  SweepSpec cell_changed = grid;
  cell_changed.cells[2].seed += 1;
  EXPECT_NE(fp, sweep_fingerprint(cell_changed));

  SweepSpec seeded = grid;
  seeded.base_seed = 7;
  EXPECT_NE(fp, sweep_fingerprint(seeded));

  EXPECT_EQ(fp, sweep_fingerprint(tiny_grid()));  // pure function of content
}

TEST(Shard, EstimatedCostScalesWithDurationFlowsAndSchemeWeight) {
  // Cost = seconds x summed scheme weight (Cubic == 1), so a Sprout cell
  // outweighs an equal-duration Cubic cell by its calibrated factor.
  const double w_sprout = scheme_cost_weight(SchemeId::kSprout);
  const double w_cubic = scheme_cost_weight(SchemeId::kCubic);
  EXPECT_DOUBLE_EQ(w_cubic, 1.0);  // the normalization anchor
  EXPECT_GT(w_sprout, 10.0 * w_cubic);

  ScenarioSpec single = short_cell(SchemeId::kSprout, "Verizon LTE", 10);
  EXPECT_DOUBLE_EQ(estimated_cost(single), 10.0 * w_sprout);

  ScenarioSpec shared = single;
  shared.topology = TopologySpec::shared_queue(4);
  EXPECT_DOUBLE_EQ(estimated_cost(shared), 40.0 * w_sprout);

  ScenarioSpec hetero = single;
  hetero.topology = TopologySpec::heterogeneous_queue(
      {FlowSpec::of(SchemeId::kSprout), FlowSpec::of(SchemeId::kCubic)});
  EXPECT_DOUBLE_EQ(estimated_cost(hetero), 10.0 * (w_sprout + w_cubic));

  // The tunnel always runs Cubic + Skype; riding SproutTunnel adds the
  // forecaster at a Sprout flow's weight.
  ScenarioSpec tunnel = single;
  tunnel.topology = TopologySpec::tunnel_contention(false);
  const double direct = estimated_cost(tunnel);
  EXPECT_DOUBLE_EQ(direct,
                   10.0 * (w_cubic + scheme_cost_weight(SchemeId::kSkype)));
  tunnel.topology = TopologySpec::tunnel_contention(true);
  EXPECT_DOUBLE_EQ(estimated_cost(tunnel), direct + 10.0 * w_sprout);
}

TEST(Shard, LongestFirstOrderIsDescendingAndStable) {
  const SweepSpec grid = mixed_grid();
  const std::vector<std::size_t> order = longest_first_order(grid.cells);
  ASSERT_EQ(order.size(), grid.cells.size());
  for (std::size_t k = 1; k < order.size(); ++k) {
    const double prev = estimated_cost(grid.cells[order[k - 1]]);
    const double cur = estimated_cost(grid.cells[order[k]]);
    EXPECT_GE(prev, cur);
    if (prev == cur) {
      EXPECT_LT(order[k - 1], order[k]);  // stable ties
    }
  }
  // The 18 s three-flow cell (index 1) must be dispatched first.
  EXPECT_EQ(order.front(), 1u);
}

}  // namespace
}  // namespace sprout

#include "core/receiver.h"

#include <gtest/gtest.h>

namespace sprout {
namespace {

class ReceiverTest : public ::testing::Test {
 protected:
  SproutParams params_;
  SproutReceiver make() {
    return SproutReceiver(params_, make_bayesian_strategy(params_));
  }

  static SproutWireMessage data_msg(std::int64_t seqno, ByteCount wire,
                                    std::uint32_t ttn_us = 0,
                                    bool sender_limited = false) {
    SproutWireMessage m;
    m.header.seqno = seqno;
    m.header.payload_bytes = static_cast<std::int32_t>(wire - 96);
    m.header.time_to_next_us = ttn_us;
    if (sender_limited) m.header.flags |= SproutHeader::kFlagSenderLimited;
    return m;
  }
};

TEST_F(ReceiverTest, TracksReceivedOrLostFromSeqnos) {
  SproutReceiver r = make();
  r.on_packet(data_msg(0, 1500), 1500, TimePoint{} + msec(1));
  EXPECT_EQ(r.received_or_lost_bytes(), 1500);
  // A gap: packet covering [3000, 4500) arrives; [1500,3000) is lost but
  // decidable on a FIFO path.
  r.on_packet(data_msg(3000, 1500), 1500, TimePoint{} + msec(2));
  EXPECT_EQ(r.received_or_lost_bytes(), 4500);
}

TEST_F(ReceiverTest, ThrowawayAdvancesAccounting) {
  SproutReceiver r = make();
  SproutWireMessage m = data_msg(100000, 1500);
  m.header.throwaway = 99000;
  r.on_packet(m, 1500, TimePoint{} + msec(1));
  EXPECT_EQ(r.received_or_lost_bytes(), 101500);
  // Throwaway alone can also advance it (covers reordering networks).
  SproutWireMessage m2 = data_msg(0, 1500);
  m2.header.throwaway = 200000;
  r.on_packet(m2, 1500, TimePoint{} + msec(2));
  EXPECT_EQ(r.received_or_lost_bytes(), 200000);
}

TEST_F(ReceiverTest, BackloggedTicksAreObserved) {
  SproutReceiver r = make();
  TimePoint now{};
  // 60 ticks of 10 unflagged (link-limited) packets each.
  for (int t = 0; t < 60; ++t) {
    for (int i = 0; i < 10; ++i) {
      now += msec(2);
      r.on_packet(data_msg(t * 15000 + i * 1500, 1500), 1500, now);
    }
    r.tick(TimePoint{} + msec((t + 1) * 20));
    now = TimePoint{} + msec((t + 1) * 20);
  }
  EXPECT_EQ(r.ticks_observed(), 60);
  EXPECT_NEAR(r.estimated_rate_pps(), 500.0, 80.0);
}

TEST_F(ReceiverTest, SilenceUnderPromiseIsSkipped) {
  SproutReceiver r = make();
  // One packet promising the next in 20 ms, then silence for one tick.
  r.on_packet(data_msg(0, 1500, /*ttn_us=*/20000), 1500, TimePoint{} + msec(19));
  r.tick(TimePoint{} + msec(20));   // observed (bytes arrived)
  r.tick(TimePoint{} + msec(40));   // silent but under promise (+25% slack)
  EXPECT_EQ(r.ticks_skipped(), 1);
}

TEST_F(ReceiverTest, SilenceAfterExpiredPromiseIsOutageEvidence) {
  SproutReceiver r = make();
  r.on_packet(data_msg(0, 1500, /*ttn_us=*/20000), 1500, TimePoint{} + msec(1));
  r.tick(TimePoint{} + msec(20));
  const double before = r.estimated_rate_pps();
  // Promise expired at ~26 ms; ticks at 40,60,...  are genuine silence.
  for (int t = 2; t <= 40; ++t) r.tick(TimePoint{} + msec(t * 20));
  EXPECT_LT(r.estimated_rate_pps(), before);
  EXPECT_LT(r.estimated_rate_pps(), 60.0);
}

TEST_F(ReceiverTest, SenderLimitedTicksDoNotDragBeliefDown) {
  SproutReceiver r = make();
  TimePoint now{};
  // Lock at 10/tick with unflagged traffic.
  for (int t = 0; t < 60; ++t) {
    for (int i = 0; i < 10; ++i) {
      now += msec(2);
      r.on_packet(data_msg(t * 15000 + i * 1500, 1500), 1500, now);
    }
    now = TimePoint{} + msec((t + 1) * 20);
    r.tick(now);
  }
  const double locked = r.estimated_rate_pps();
  // Then 50 ticks of sender-limited single packets.
  std::int64_t seq = 60 * 15000;
  for (int t = 60; t < 110; ++t) {
    r.on_packet(data_msg(seq, 1500, 0, /*sender_limited=*/true), 1500,
                TimePoint{} + msec(t * 20 + 5));
    seq += 1500;
    r.tick(TimePoint{} + msec((t + 1) * 20));
  }
  EXPECT_GT(r.estimated_rate_pps(), locked * 0.6);
}

TEST_F(ReceiverTest, SubMtuCarriesAcrossTicks) {
  SproutReceiver r = make();
  // Two 800-byte packets in consecutive ticks: the second tick observes the
  // carried full MTU.
  r.on_packet(data_msg(0, 800), 800, TimePoint{} + msec(5));
  r.tick(TimePoint{} + msec(20));
  r.on_packet(data_msg(800, 800), 800, TimePoint{} + msec(25));
  r.tick(TimePoint{} + msec(40));
  EXPECT_EQ(r.ticks_observed(), 2);
}

TEST_F(ReceiverTest, ForecastRefreshesEveryTick) {
  SproutReceiver r = make();
  EXPECT_EQ(r.latest_forecast().ticks(), 0);
  r.tick(TimePoint{} + msec(20));
  EXPECT_EQ(r.latest_forecast().ticks(), params_.forecast_horizon_ticks);
  EXPECT_EQ(r.latest_forecast().origin, TimePoint{} + msec(20));
}

}  // namespace
}  // namespace sprout

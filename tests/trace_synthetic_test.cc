#include "trace/synthetic.h"

#include <gtest/gtest.h>

#include "trace/presets.h"

namespace sprout {
namespace {

CellProcessParams steady(double pps) {
  CellProcessParams p;
  p.mean_rate_pps = pps;
  p.max_rate_pps = pps * 2;
  p.volatility_pps = 0.0;
  p.outage_hazard_per_s = 0.0;
  return p;
}

TEST(CellRateProcess, SteadyProcessHoldsMean) {
  CellRateProcess proc(steady(100.0), 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(proc.advance(), 100.0);
  }
}

TEST(CellRateProcess, StaysWithinBounds) {
  CellProcessParams p;
  p.mean_rate_pps = 300.0;
  p.max_rate_pps = 500.0;
  p.volatility_pps = 400.0;  // violent
  p.outage_hazard_per_s = 0.0;
  CellRateProcess proc(p, 7);
  for (int i = 0; i < 20000; ++i) {
    const double r = proc.advance();
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 500.0);
  }
}

TEST(CellRateProcess, MeanReversionKeepsLongRunAverage) {
  CellProcessParams p;
  p.mean_rate_pps = 200.0;
  p.max_rate_pps = 1000.0;
  p.volatility_pps = 100.0;
  p.reversion_per_s = 0.5;
  p.outage_hazard_per_s = 0.0;
  CellRateProcess proc(p, 11);
  double sum = 0.0;
  const int steps = 100000;  // 2000 simulated seconds
  for (int i = 0; i < steps; ++i) sum += proc.advance();
  EXPECT_NEAR(sum / steps, 200.0, 40.0);
}

TEST(CellRateProcess, OutagesHappenAndEnd) {
  CellProcessParams p;
  p.mean_rate_pps = 200.0;
  p.max_rate_pps = 400.0;
  p.volatility_pps = 50.0;
  p.outage_hazard_per_s = 0.5;  // frequent for the test
  p.outage_min_s = 0.1;
  CellRateProcess proc(p, 3);
  int outage_steps = 0;
  int transitions = 0;
  bool prev = false;
  for (int i = 0; i < 50000; ++i) {
    proc.advance();
    if (proc.in_outage()) ++outage_steps;
    if (proc.in_outage() != prev) ++transitions;
    prev = proc.in_outage();
  }
  EXPECT_GT(outage_steps, 0);
  EXPECT_GT(transitions, 10);        // enters AND leaves repeatedly
  EXPECT_LT(outage_steps, 50000);    // not permanently dead
}

TEST(GenerateTrace, DeterministicForSeed) {
  const CellProcessParams p = steady(150.0);
  const Trace a = generate_trace(p, sec(10), 42);
  const Trace b = generate_trace(p, sec(10), 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.opportunities()[i], b.opportunities()[i]);
  }
  const Trace c = generate_trace(p, sec(10), 43);
  EXPECT_NE(a.size(), c.size());
}

TEST(GenerateTrace, RateMatchesProcess) {
  const Trace t = generate_trace(steady(250.0), sec(60), 5);
  // 250 pps * 12 kbit = 3000 kbps; Poisson noise over 60 s is ~±2%.
  EXPECT_NEAR(t.average_rate_kbps(), 3000.0, 150.0);
}

TEST(GenerateTrace, SortedAndWithinDuration) {
  const Trace t = generate_trace(steady(100.0), sec(5), 9);
  TimePoint prev{};
  for (const TimePoint& o : t.opportunities()) {
    EXPECT_GE(o, prev);
    EXPECT_LE(o, TimePoint{} + sec(5));
    prev = o;
  }
}

TEST(GenerateTrace, NeverEmpty) {
  CellProcessParams p = steady(0.001);  // essentially silent
  const Trace t = generate_trace(p, sec(1), 2);
  EXPECT_FALSE(t.empty());
}

TEST(Presets, AllEightLinksExist) {
  const auto& presets = all_link_presets();
  ASSERT_EQ(presets.size(), 8u);
  int down = 0, up = 0;
  for (const LinkPreset& p : presets) {
    if (p.direction == LinkDirection::kDownlink) ++down;
    if (p.direction == LinkDirection::kUplink) ++up;
  }
  EXPECT_EQ(down, 4);
  EXPECT_EQ(up, 4);
}

TEST(Presets, LookupByNameAndDirection) {
  const LinkPreset& p =
      find_link_preset("Verizon LTE", LinkDirection::kDownlink);
  EXPECT_EQ(p.name(), "Verizon LTE downlink");
  EXPECT_THROW((void)find_link_preset("Nonexistent", LinkDirection::kUplink),
               std::out_of_range);
}

TEST(Presets, TraceRatesMatchNetworkScale) {
  // LTE downlink should be several times faster than 3G downlink.
  const Trace lte = preset_trace(
      find_link_preset("Verizon LTE", LinkDirection::kDownlink), sec(120));
  const Trace evdo = preset_trace(
      find_link_preset("Verizon 3G (1xEV-DO)", LinkDirection::kDownlink),
      sec(120));
  EXPECT_GT(lte.average_rate_kbps(), 3.0 * evdo.average_rate_kbps());
  EXPECT_GT(evdo.average_rate_kbps(), 100.0);
}

class PresetSweep : public ::testing::TestWithParam<int> {};

TEST_P(PresetSweep, TraceIsUsable) {
  const LinkPreset& p = all_link_presets()[static_cast<std::size_t>(GetParam())];
  const Trace t = preset_trace(p, sec(30));
  EXPECT_GT(t.size(), 100u);
  // Mean rate within a factor of two of the configured target (the process
  // is stochastic with outages, so only a loose check is meaningful).
  const double expected_kbps = p.params.mean_rate_pps * 12.0;
  EXPECT_GT(t.average_rate_kbps(), expected_kbps * 0.5);
  EXPECT_LT(t.average_rate_kbps(), expected_kbps * 2.0);
}

INSTANTIATE_TEST_SUITE_P(AllLinks, PresetSweep, ::testing::Range(0, 8));

}  // namespace
}  // namespace sprout

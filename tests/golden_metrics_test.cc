// Golden-metrics regression lock: the paper-facing summary numbers
// (throughput, 95% delay, Jain index, utilization) for Sprout, Cubic and
// Vegas on one synthetic preset are pinned to a checked-in JSON file with
// tight tolerances.  A refactor that changes these numbers is either a bug
// or a deliberate semantic change — and a deliberate change must leave a
// diff in tests/golden/golden_metrics.json where a reviewer sees it, not
// a silent drift in every table the benches print.
//
// Regenerate after an INTENDED change with:
//   SPROUT_UPDATE_GOLDEN=1 ./sprout_tests --gtest_filter='GoldenMetrics.*'
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "runner/shard.h"
#include "util/table.h"

namespace sprout {
namespace {

#ifndef SPROUT_SOURCE_DIR
#error "SPROUT_SOURCE_DIR must name the repo root (set by CMakeLists.txt)"
#endif

std::string golden_path() {
  return std::string(SPROUT_SOURCE_DIR) + "/tests/golden/golden_metrics.json";
}

// Relative tolerance: tight enough that any real metric shift (scheduler
// change, window change, seed drift — typically percents) trips it, loose
// enough to absorb libm rounding differences across toolchains.
constexpr double kRelTol = 5e-4;

struct GoldenCell {
  std::string scheme;
  double throughput_kbps = 0.0;
  double delay95_ms = 0.0;
  double jain_index = 0.0;
  double aggregate_utilization = 0.0;
};

// The pinned grid: each scheme as TWO flows in one shared synthetic-link
// queue, so throughput, queueing delay AND cross-flow fairness are all
// exercised by one cell.  Synthetic link == no trace files to drift.
SweepSpec golden_grid() {
  CellProcessParams forward;   // defaults: the 400 pps OU process
  CellProcessParams reverse;
  reverse.mean_rate_pps = 200.0;
  SweepSpec sweep;
  for (const SchemeId scheme :
       {SchemeId::kSprout, SchemeId::kCubic, SchemeId::kVegas}) {
    ScenarioSpec cell;
    cell.scheme = scheme;
    cell.link = LinkSpec::synthetic(forward, reverse, /*forward_seed=*/11,
                                    /*reverse_seed=*/12);
    cell.topology = TopologySpec::shared_queue(2);
    cell.run_time = sec(12);
    cell.warmup = sec(3);
    sweep.cells.push_back(cell);
  }
  return sweep;
}

std::vector<GoldenCell> measure() {
  const SweepSpec grid = golden_grid();
  const SweepResult swept = run_sweep(grid);
  std::vector<GoldenCell> cells;
  for (std::size_t i = 0; i < swept.cells.size(); ++i) {
    const ScenarioResult& r = swept.cells[i];
    GoldenCell g;
    g.scheme = to_string(grid.cells[i].scheme);
    g.throughput_kbps = r.throughput_kbps();
    g.delay95_ms = r.delay95_ms();
    g.jain_index = r.jain_index;
    g.aggregate_utilization = r.aggregate_utilization;
    cells.push_back(g);
  }
  return cells;
}

void write_golden(const std::string& path,
                  const std::vector<GoldenCell>& cells) {
  std::ofstream out(path);
  ASSERT_TRUE(out) << "cannot write " << path;
  out.precision(17);
  out << "{\n  \"schema\": \"sprout-golden-metrics-v1\",\n"
      << "  \"grid_fingerprint\": \""
      << sweep_fingerprint(golden_grid()) << "\",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const GoldenCell& g = cells[i];
    out << "    {\"scheme\": \"" << g.scheme << "\", \"throughput_kbps\": "
        << g.throughput_kbps << ", \"delay95_ms\": " << g.delay95_ms
        << ", \"jain_index\": " << g.jain_index
        << ", \"aggregate_utilization\": " << g.aggregate_utilization << "}"
        << (i + 1 < cells.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
}

void expect_close(const std::string& what, double golden, double measured) {
  const double tol = kRelTol * std::max(std::abs(golden), 1e-9);
  EXPECT_NEAR(measured, golden, tol)
      << what << " drifted: golden " << golden << ", measured " << measured
      << " (rel " << (measured - golden) / golden << ")";
}

// --- Tower population lock.  One churning PF cell, pinned the same way:
// the population delay CDF (p50/p95/p99/p999/mean from the streaming
// histograms), the exact sample and user counts, and the aggregate
// throughput.  Regenerates under the same SPROUT_UPDATE_GOLDEN=1 switch.

std::string tower_golden_path() {
  return std::string(SPROUT_SOURCE_DIR) + "/tests/golden/golden_tower.json";
}

SweepSpec tower_grid() {
  TowerSpec t;
  t.num_users = 24;
  t.arrival_rate_per_s = 1.0;
  t.mean_session_s = 10.0;
  t.mix = {{SchemeId::kCubic, 3.0}, {SchemeId::kSprout, 1.0}};
  ScenarioSpec cell;
  cell.topology = TopologySpec::tower(std::move(t));
  cell.run_time = sec(20);
  cell.warmup = sec(4);
  cell.seed = 5;
  SweepSpec sweep;
  sweep.cells.push_back(cell);
  sweep.base_seed = 9;
  return sweep;
}

void write_tower_golden(const std::string& path, const ScenarioResult& r) {
  const DelayStats pop = r.population_delay();
  std::ofstream out(path);
  ASSERT_TRUE(out) << "cannot write " << path;
  out.precision(17);
  out << "{\n  \"schema\": \"sprout-golden-tower-v1\",\n"
      << "  \"grid_fingerprint\": \"" << sweep_fingerprint(tower_grid())
      << "\",\n"
      << "  \"users\": " << r.flows.size() << ",\n"
      << "  \"samples\": " << pop.samples << ",\n"
      << "  \"p50_ms\": " << pop.p50_ms << ",\n"
      << "  \"p95_ms\": " << pop.p95_ms << ",\n"
      << "  \"p99_ms\": " << pop.p99_ms << ",\n"
      << "  \"p999_ms\": " << pop.p999_ms << ",\n"
      << "  \"mean_ms\": " << pop.mean_ms << ",\n"
      << "  \"aggregate_throughput_kbps\": " << r.aggregate_throughput_kbps
      << "\n}\n";
}

TEST(GoldenMetrics, TowerPopulationCdfMatchesCheckedInGolden) {
  const SweepResult swept = run_sweep(tower_grid());
  ASSERT_EQ(swept.cells.size(), 1u);
  const ScenarioResult& r = swept.cells[0];

  if (std::getenv("SPROUT_UPDATE_GOLDEN") != nullptr) {
    write_tower_golden(tower_golden_path(), r);
    GTEST_SKIP() << "golden file regenerated at " << tower_golden_path();
  }

  std::ifstream in(tower_golden_path());
  ASSERT_TRUE(in) << "missing golden file " << tower_golden_path()
                  << " — run once with SPROUT_UPDATE_GOLDEN=1";
  std::ostringstream buf;
  buf << in.rdbuf();
  const JsonValue doc = JsonValue::parse(buf.str());

  ASSERT_EQ(doc.at("schema").as_string(), "sprout-golden-tower-v1");
  EXPECT_EQ(doc.at("grid_fingerprint").as_string(),
            std::to_string(sweep_fingerprint(tower_grid())))
      << "the golden tower's spec changed — if intended, regenerate with "
         "SPROUT_UPDATE_GOLDEN=1";

  const DelayStats pop = r.population_delay();
  // An empty CDF reports every quantile as 0.0; without this guard the
  // percentile comparisons below could pass vacuously against a golden
  // file that was itself generated from an empty population.
  ASSERT_GT(pop.samples, 0);
  // Population size and sample counts are integer-exact by determinism.
  EXPECT_EQ(doc.at("users").as_number(),
            static_cast<double>(r.flows.size()));
  EXPECT_EQ(doc.at("samples").as_number(), static_cast<double>(pop.samples));
  expect_close("p50_ms", doc.at("p50_ms").as_number(), pop.p50_ms);
  expect_close("p95_ms", doc.at("p95_ms").as_number(), pop.p95_ms);
  expect_close("p99_ms", doc.at("p99_ms").as_number(), pop.p99_ms);
  expect_close("p999_ms", doc.at("p999_ms").as_number(), pop.p999_ms);
  expect_close("mean_ms", doc.at("mean_ms").as_number(), pop.mean_ms);
  expect_close("aggregate_throughput_kbps",
               doc.at("aggregate_throughput_kbps").as_number(),
               r.aggregate_throughput_kbps);
}

TEST(GoldenMetrics, SummaryMetricsMatchCheckedInGolden) {
  const std::vector<GoldenCell> measured = measure();

  if (std::getenv("SPROUT_UPDATE_GOLDEN") != nullptr) {
    write_golden(golden_path(), measured);
    GTEST_SKIP() << "golden file regenerated at " << golden_path();
  }

  std::ifstream in(golden_path());
  ASSERT_TRUE(in) << "missing golden file " << golden_path()
                  << " — run once with SPROUT_UPDATE_GOLDEN=1";
  std::ostringstream buf;
  buf << in.rdbuf();
  const JsonValue doc = JsonValue::parse(buf.str());

  ASSERT_EQ(doc.at("schema").as_string(), "sprout-golden-metrics-v1");
  // The grid fingerprint pins the SPEC: if it moved, the measured numbers
  // are answers to a different question and comparing them is meaningless.
  EXPECT_EQ(doc.at("grid_fingerprint").as_string(),
            std::to_string(sweep_fingerprint(golden_grid())))
      << "the golden grid's spec changed — if intended, regenerate with "
         "SPROUT_UPDATE_GOLDEN=1";

  const auto& cells = doc.at("cells").as_array();
  ASSERT_EQ(cells.size(), measured.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const JsonValue& g = cells[i];
    SCOPED_TRACE(measured[i].scheme);
    ASSERT_EQ(g.at("scheme").as_string(), measured[i].scheme);
    expect_close("throughput_kbps", g.at("throughput_kbps").as_number(),
                 measured[i].throughput_kbps);
    expect_close("delay95_ms", g.at("delay95_ms").as_number(),
                 measured[i].delay95_ms);
    expect_close("jain_index", g.at("jain_index").as_number(),
                 measured[i].jain_index);
    expect_close("aggregate_utilization",
                 g.at("aggregate_utilization").as_number(),
                 measured[i].aggregate_utilization);
  }
}

}  // namespace
}  // namespace sprout

// Unit tests for trace/analysis.h (trace statistics) and
// trace/packet_pair.h (the §3.1 packet-pair roadblock).
#include <gtest/gtest.h>

#include <cmath>

#include "trace/analysis.h"
#include "trace/packet_pair.h"
#include "trace/presets.h"
#include "trace/synthetic.h"
#include "util/rng.h"

namespace sprout {
namespace {

// An isochronous trace: one opportunity every `gap_ms`, for `seconds`.
Trace isochronous(std::int64_t gap_ms, int seconds) {
  std::vector<TimePoint> opp;
  for (std::int64_t t = 0; t < seconds * 1000; t += gap_ms) {
    opp.push_back(TimePoint{} + msec(t));
  }
  return Trace(std::move(opp), sec(seconds));
}

// A saturated Poisson trace at `rate_pps`.
Trace poisson_trace(double rate_pps, int seconds, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TimePoint> opp;
  double t = 0.0;
  while (t < seconds) {
    t += rng.exponential(rate_pps);
    if (t < seconds) opp.push_back(TimePoint{} + from_seconds(t));
  }
  return Trace(std::move(opp), sec(seconds));
}

// --------------------------------------------------------------- analysis

TEST(WindowedRate, ConstantLinkIsFlat) {
  // 10 ms gaps = 100 pkt/s = 1200 kbit/s.
  const Trace t = isochronous(10, 10);
  const auto series = windowed_rate(t, sec(1));
  ASSERT_EQ(series.size(), 10u);
  for (const RatePoint& p : series) EXPECT_NEAR(p.rate_kbps, 1200.0, 15.0);
}

TEST(WindowedRate, EmptyTraceYieldsNothing) {
  EXPECT_TRUE(windowed_rate(Trace{}, sec(1)).empty());
}

TEST(FindOutages, DetectsInjectedGap) {
  std::vector<TimePoint> opp;
  for (int t = 0; t < 1000; t += 10) opp.push_back(TimePoint{} + msec(t));
  // 3-second hole.
  for (int t = 4000; t < 5000; t += 10) opp.push_back(TimePoint{} + msec(t));
  const Trace trace(std::move(opp), sec(5));
  const auto outages = find_outages(trace, sec(1));
  ASSERT_EQ(outages.size(), 1u);
  EXPECT_EQ(outages[0].start, TimePoint{} + msec(990));
  EXPECT_EQ(outages[0].duration, msec(3010));
}

TEST(FindOutages, CleanLinkHasNone) {
  EXPECT_TRUE(find_outages(isochronous(10, 10), msec(100)).empty());
}

TEST(InterarrivalSummary, IsochronousLink) {
  const InterarrivalSummary s = summarize_interarrivals(isochronous(10, 10));
  EXPECT_NEAR(s.mean_ms, 10.0, 0.1);
  EXPECT_NEAR(s.p50_ms, 10.0, 0.1);
  EXPECT_DOUBLE_EQ(s.fraction_within_20ms, 1.0);
  EXPECT_DOUBLE_EQ(s.tail_exponent, 0.0);  // no tail to fit
}

TEST(InterarrivalSummary, SyntheticCellularMatchesFigure2Shape) {
  const LinkPreset& preset =
      find_link_preset("Verizon LTE", LinkDirection::kDownlink);
  const Trace t = preset_trace(preset, sec(300));
  const InterarrivalSummary s = summarize_interarrivals(t);
  // The paper: 99.99% of interarrivals within 20 ms, heavy tail beyond,
  // power-law decay.  Our generator reproduces the shape.
  EXPECT_GT(s.fraction_within_20ms, 0.99);
  EXPECT_GT(s.max_ms, 200.0);
  EXPECT_LT(s.tail_exponent, -1.0);
}

TEST(RateAutocorrelation, LagZeroIsOneAndDecays) {
  const LinkPreset& preset =
      find_link_preset("Verizon LTE", LinkDirection::kDownlink);
  const Trace t = preset_trace(preset, sec(120));
  const auto acf = rate_autocorrelation(t, msec(200), 30);
  ASSERT_GE(acf.size(), 31u);
  EXPECT_NEAR(acf[0], 1.0, 1e-9);
  // Rate knowledge decays: far lags correlate less than near lags.
  EXPECT_LT(acf[30], acf[1]);
  EXPECT_GT(acf[1], 0.2);  // but is not white noise either
}

TEST(RateDynamicRange, CapturesOrderOfMagnitudeVariability) {
  EXPECT_NEAR(rate_dynamic_range(isochronous(10, 10), sec(1)), 1.0, 0.1);
  const LinkPreset& preset =
      find_link_preset("Verizon LTE", LinkDirection::kDownlink);
  const Trace t = preset_trace(preset, sec(300));
  // §2.2: "capacity varied up and down by almost an order of magnitude".
  EXPECT_GT(rate_dynamic_range(t, sec(1)), 3.0);
}

// ------------------------------------------------------------ packet-pair

TEST(PacketPair, ExactOnIsochronousLink) {
  const Trace t = isochronous(10, 10);
  const auto est = packet_pair_estimates(t);
  ASSERT_FALSE(est.empty());
  const EstimatorQuality q = evaluate_estimates(est, 1200.0);
  EXPECT_NEAR(q.mean_kbps, 1200.0, 1.0);
  EXPECT_LT(q.cov, 0.01);
  EXPECT_GT(q.fraction_within_25pct, 0.999);
}

TEST(PacketPair, PoissonLinkEstimatesScatterAcrossAnOrderOfMagnitude) {
  // 500 pkt/s Poisson = 6000 kbit/s true rate.  With exponential gaps the
  // estimate MTU/gap has closed-form percentiles: p10 = truth/ln(10) ≈
  // 0.434·truth and p90 = truth/ln(10/9) ≈ 9.49·truth — a 22x spread.
  // (1/gap has infinite moments, so the sample CoV is large and unstable;
  // the percentiles are the robust statement of the §3.1 roadblock.)
  const Trace t = poisson_trace(500.0, 60, 9);
  const auto est = packet_pair_estimates(t);
  const EstimatorQuality q = evaluate_estimates(est, 6000.0);
  EXPECT_LT(q.fraction_within_25pct, 0.35);
  EXPECT_NEAR(q.p10_kbps, 6000.0 / std::log(10.0), 300.0);
  EXPECT_NEAR(q.p90_kbps, 6000.0 / std::log(10.0 / 9.0), 3000.0);
  EXPECT_GT(q.p90_kbps / q.p10_kbps, 10.0);
  EXPECT_GT(q.cov, 1.0);
}

TEST(PacketPair, MedianSmoothingHelpsButStaysBiased) {
  const Trace t = poisson_trace(500.0, 60, 10);
  const auto raw = packet_pair_estimates(t);
  const auto smoothed = packet_pair_median_of(raw, 9);
  const EstimatorQuality q_raw = evaluate_estimates(raw, 6000.0);
  const EstimatorQuality q_med = evaluate_estimates(smoothed, 6000.0);
  EXPECT_LT(q_med.cov, q_raw.cov);
  // The median of 1/Exponential estimates the rate with a known bias
  // (median of gap is ln2/λ, so median estimate is λ/ln2 ≈ 1.44λ).
  EXPECT_GT(q_med.mean_kbps, 1.2 * 6000.0);
}

TEST(PacketPair, SyntheticCellularIsWorseThanPurePoisson) {
  const LinkPreset& preset =
      find_link_preset("Verizon LTE", LinkDirection::kDownlink);
  const Trace cell = preset_trace(preset, sec(120));
  const double true_rate = cell.average_rate_kbps();
  const EstimatorQuality q =
      evaluate_estimates(packet_pair_estimates(cell), true_rate);
  // Rate variation on top of Poisson noise: even fewer estimates land
  // near the average rate.
  EXPECT_LT(q.fraction_within_25pct, 0.35);
}

TEST(PacketPair, MedianGroupingEdgeCases) {
  EXPECT_TRUE(packet_pair_median_of({1.0, 2.0}, 0).empty());
  EXPECT_TRUE(packet_pair_median_of({}, 3).empty());
  const auto one = packet_pair_median_of({5.0, 1.0, 9.0}, 3);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], 5.0);
}

TEST(EvaluateEstimates, EmptyInputIsZeroed) {
  const EstimatorQuality q = evaluate_estimates({}, 100.0);
  EXPECT_EQ(q.mean_kbps, 0.0);
  EXPECT_EQ(q.cov, 0.0);
}

}  // namespace
}  // namespace sprout

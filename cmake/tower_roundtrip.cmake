# Acceptance check for the tower topology, run as a ctest target: the
# checked-in tower smoke spec (64 churning users per cell) must lint, and a
# 2-shard multi-PROCESS run must merge into a sweep file byte-identical to
# the single-process run's — per-user channels, the PF schedule, Poisson
# churn and the streaming population histograms all reproduced exactly.
# Expects:
#   -DSWEEP_SHARD=<path to the sweep_shard binary>
#   -DSPEC_LINT=<path to the spec_lint binary>
#   -DSPEC_FILE=<path to specs/tower_smoke.json>
#   -DWORK_DIR=<scratch directory>
if(NOT SWEEP_SHARD OR NOT SPEC_LINT OR NOT SPEC_FILE OR NOT WORK_DIR)
  message(FATAL_ERROR
    "need -DSWEEP_SHARD=... -DSPEC_LINT=... -DSPEC_FILE=... -DWORK_DIR=...")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_tool tool)
  execute_process(COMMAND ${tool} ${ARGN}
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${tool} ${ARGN} failed (${rc}):\n${out}\n${err}")
  endif()
endfunction()

# The spec must lint (strict reader, shard plan preview included)...
run_tool(${SPEC_LINT} ${SPEC_FILE} --shards 2)
# ...two shard processes each take one tower cell...
run_tool(${SWEEP_SHARD} run --spec ${SPEC_FILE} --shard 1/2 --out shard1.json)
run_tool(${SWEEP_SHARD} run --spec ${SPEC_FILE} --shard 2/2 --out shard2.json)
# ...one merge, verified against the spec's content address...
run_tool(${SWEEP_SHARD} merge --spec ${SPEC_FILE} --out merged.json
         shard1.json shard2.json)
# ...and the single-process reference.
run_tool(${SWEEP_SHARD} run --spec ${SPEC_FILE} --out full.json)

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
  ${WORK_DIR}/merged.json ${WORK_DIR}/full.json
  RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR
    "merged 2-shard tower sweep differs from the single-process run "
    "(${WORK_DIR}/merged.json vs ${WORK_DIR}/full.json)")
endif()
message(STATUS "2-shard tower merge is byte-identical to the single-process sweep")

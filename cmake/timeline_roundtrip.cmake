# Acceptance check for the flight recorder, run as a ctest target: the
# timeline is a pure observer.  The same grid is swept four ways —
# timeline-off (the reference), timeline-on serial, timeline-on with the
# in-process thread pool, and timeline-on cut into two lpt shards and
# merged — and every timeline-on sweep must be byte-identical to the
# others, must validate against the strict timeline schema, and must
# reduce to the timeline-off reference after `timeline_report
# strip-timeline`.  A tower grid repeats the off-vs-stripped check so the
# streaming topology is held to the same contract.
# Expects:
#   -DSWEEP_SHARD=<path to the sweep_shard binary>
#   -DTIMELINE_REPORT=<path to the timeline_report binary>
#   -DSPEC_FILE=<path to specs/coexistence_smoke.json>
#   -DTOWER_SPEC_FILE=<path to specs/tower_smoke.json>
#   -DWORK_DIR=<scratch directory>
if(NOT SWEEP_SHARD OR NOT TIMELINE_REPORT OR NOT SPEC_FILE OR
   NOT TOWER_SPEC_FILE OR NOT WORK_DIR)
  message(FATAL_ERROR "need -DSWEEP_SHARD=... -DTIMELINE_REPORT=... "
    "-DSPEC_FILE=... -DTOWER_SPEC_FILE=... -DWORK_DIR=...")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_tool tool)
  execute_process(COMMAND ${tool} ${ARGN}
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${tool} ${ARGN} exited ${rc}:\n${out}\n${err}")
  endif()
endfunction()

function(require_same a b what)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
    ${WORK_DIR}/${a} ${WORK_DIR}/${b}
    RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR
      "${what}: ${WORK_DIR}/${a} differs from ${WORK_DIR}/${b}")
  endif()
endfunction()

# The recorder-off reference.
run_tool(${SWEEP_SHARD} run --spec ${SPEC_FILE} --out off.json --threads 1)

# Timeline on: serial, thread-pool, and two-shard-merged must agree
# bitwise (record_timeline is excluded from the fingerprint, so the
# shards cut the same grid the reference ran).
run_tool(${SWEEP_SHARD} run --spec ${SPEC_FILE} --out on_serial.json
  --threads 1 --timeline)
run_tool(${SWEEP_SHARD} run --spec ${SPEC_FILE} --out on_pool.json
  --threads 4 --timeline)
run_tool(${SWEEP_SHARD} run --spec ${SPEC_FILE} --out shard0.json
  --shard 1/2 --strategy lpt --timeline)
run_tool(${SWEEP_SHARD} run --spec ${SPEC_FILE} --out shard1.json
  --shard 2/2 --strategy lpt --timeline)
run_tool(${SWEEP_SHARD} merge --out on_merged.json shard0.json shard1.json)
require_same(on_pool.json on_serial.json
  "timeline-on thread-pool sweep vs serial sweep")
require_same(on_merged.json on_serial.json
  "timeline-on two-shard merge vs serial sweep")

# The timelines themselves pass the strict schema gate, and stripping
# them reproduces the recorder-off bytes exactly.
run_tool(${TIMELINE_REPORT} validate-timeline on_serial.json)
run_tool(${TIMELINE_REPORT} strip-timeline on_serial.json stripped.json)
require_same(stripped.json off.json
  "timeline-stripped sweep vs recorder-off sweep")

# The schema gate must REJECT a malformed feed, naming the offending
# timeline's path: corrupt one geometry field and expect exit 1.
file(READ ${WORK_DIR}/on_serial.json good_text)
string(REPLACE "\"bin_s\": 0.5" "\"bin_s\": -1" bad_text "${good_text}")
if(bad_text STREQUAL good_text)
  message(FATAL_ERROR "corruption probe matched nothing in on_serial.json")
endif()
file(WRITE ${WORK_DIR}/corrupt.json "${bad_text}")
execute_process(COMMAND ${TIMELINE_REPORT} validate-timeline corrupt.json
  WORKING_DIRECTORY ${WORK_DIR}
  RESULT_VARIABLE bad_rc
  OUTPUT_VARIABLE bad_out
  ERROR_VARIABLE bad_err)
if(bad_rc EQUAL 0)
  message(FATAL_ERROR "validate-timeline accepted a corrupted feed")
endif()
if(NOT bad_err MATCHES "timeline")
  message(FATAL_ERROR
    "validate-timeline rejection names no timeline path:\n${bad_err}")
endif()

# Tower grid: the streaming topology records, validates and strips under
# the same contract.
run_tool(${SWEEP_SHARD} run --spec ${TOWER_SPEC_FILE} --out tower_off.json
  --threads 2)
run_tool(${SWEEP_SHARD} run --spec ${TOWER_SPEC_FILE} --out tower_on.json
  --threads 2 --timeline)
run_tool(${TIMELINE_REPORT} validate-timeline tower_on.json)
run_tool(${TIMELINE_REPORT} strip-timeline tower_on.json tower_stripped.json)
require_same(tower_stripped.json tower_off.json
  "timeline-stripped tower sweep vs recorder-off tower sweep")

message(STATUS "flight recorder leaves every sweep byte-identical: "
  "serial == pool == merged with timelines on, off == stripped on every "
  "topology")

# Acceptance check for declarative experiment specs, run as a ctest
# target: a sweep defined ONLY by the checked-in JSON spec must produce
# byte-identical results to the equivalent compiled-in grid, both as one
# process and as an LPT-sharded 3-process run.  Expects:
#   -DSWEEP_SHARD=<path to the sweep_shard binary>
#   -DSPEC_LINT=<path to the spec_lint binary>
#   -DSPEC_FILE=<path to specs/coexistence_smoke.json>
#   -DWORK_DIR=<scratch directory>
if(NOT SWEEP_SHARD OR NOT SPEC_LINT OR NOT SPEC_FILE OR NOT WORK_DIR)
  message(FATAL_ERROR
    "need -DSWEEP_SHARD=... -DSPEC_LINT=... -DSPEC_FILE=... -DWORK_DIR=...")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_step)
  execute_process(COMMAND ${ARGN}
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${ARGN} failed (${rc}):\n${out}\n${err}")
  endif()
endfunction()

# The spec must lint clean...
run_step(${SPEC_LINT} ${SPEC_FILE} --expand --shards 3)

# ...the spec-defined sweep must equal the compiled grid it mirrors
# (--seconds 10 --base-seed 42 is what the spec file encodes)...
run_step(${SWEEP_SHARD} run --spec ${SPEC_FILE} --out full_spec.json)
run_step(${SWEEP_SHARD} run --grid coexistence-smoke --seconds 10
         --base-seed 42 --out full_grid.json)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
  ${WORK_DIR}/full_spec.json ${WORK_DIR}/full_grid.json
  RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR
    "spec-defined sweep differs from the compiled-in grid "
    "(${WORK_DIR}/full_spec.json vs ${WORK_DIR}/full_grid.json)")
endif()

# ...and an LPT-sharded 3-process run of the spec (its plan.strategy is
# lpt) must merge back to the same bytes.
foreach(i RANGE 1 3)
  run_step(${SWEEP_SHARD} run --spec ${SPEC_FILE} --shard ${i}/3
           --out shard${i}.json)
endforeach()
run_step(${SWEEP_SHARD} merge --spec ${SPEC_FILE} --out merged.json
         shard1.json shard2.json shard3.json)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
  ${WORK_DIR}/merged.json ${WORK_DIR}/full_spec.json
  RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR
    "LPT 3-shard merge differs from the single-process spec run "
    "(${WORK_DIR}/merged.json vs ${WORK_DIR}/full_spec.json)")
endif()

message(STATUS
  "spec-defined sweep is byte-identical to the compiled grid, serial and "
  "LPT-sharded")

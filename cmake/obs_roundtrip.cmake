# Acceptance check for the observability layer, run as a ctest target:
# instrumentation must never perturb results.  The same grid is swept
# three ways — plain, with SPROUT_OBS=1 (hot-path counting on), and
# orchestrated with --metrics-out/--trace-out (runtime stamping on) — and
# the first two must be byte-identical outright, the third after
# `obs_report strip-runtime` removes its telemetry stamps.  The telemetry
# files themselves must pass the strict validators.
# Expects:
#   -DSWEEP_SHARD=<path to the sweep_shard binary>
#   -DSWEEP_ORCHESTRATE=<path to the sweep_orchestrate binary>
#   -DOBS_REPORT=<path to the obs_report binary>
#   -DSPEC_FILE=<path to specs/coexistence_smoke.json>
#   -DWORK_DIR=<scratch directory>
if(NOT SWEEP_SHARD OR NOT SWEEP_ORCHESTRATE OR NOT OBS_REPORT OR
   NOT SPEC_FILE OR NOT WORK_DIR)
  message(FATAL_ERROR "need -DSWEEP_SHARD=... -DSWEEP_ORCHESTRATE=... "
    "-DOBS_REPORT=... -DSPEC_FILE=... -DWORK_DIR=...")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_tool tool)
  execute_process(COMMAND ${tool} ${ARGN}
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${tool} ${ARGN} exited ${rc}:\n${out}\n${err}")
  endif()
endfunction()

# Same, but with SPROUT_OBS=1 in the child's environment.
function(run_tool_obs tool)
  execute_process(COMMAND ${CMAKE_COMMAND} -E env SPROUT_OBS=1
    ${tool} ${ARGN}
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "SPROUT_OBS=1 ${tool} ${ARGN} exited ${rc}:\n${out}\n${err}")
  endif()
endfunction()

function(require_same a b what)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
    ${WORK_DIR}/${a} ${WORK_DIR}/${b}
    RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR
      "${what}: ${WORK_DIR}/${a} differs from ${WORK_DIR}/${b}")
  endif()
endfunction()

# The untelemetered reference.
run_tool(${SWEEP_SHARD} run --spec ${SPEC_FILE} --out plain.json)

# Hot-path counting on: same bytes.
run_tool_obs(${SWEEP_SHARD} run --spec ${SPEC_FILE} --out obs_on.json)
require_same(obs_on.json plain.json
  "SPROUT_OBS=1 sweep vs untelemetered sweep")

# Full telemetry: metrics feed, trace, runtime stamps — and after the
# stamps are stripped, the same bytes again.
run_tool_obs(${SWEEP_ORCHESTRATE} run --spec ${SPEC_FILE}
  --journal-dir jobs --out orch_obs.json --workers 2 --quiet
  --metrics-out metrics.jsonl --trace-out trace.json)
run_tool(${OBS_REPORT} validate-metrics metrics.jsonl)
run_tool(${OBS_REPORT} validate-trace trace.json)
run_tool(${OBS_REPORT} strip-runtime orch_obs.json orch_stripped.json)
require_same(orch_stripped.json plain.json
  "runtime-stripped telemetered orchestration vs untelemetered sweep")

message(STATUS "observability leaves every sweep byte-identical: "
  "SPROUT_OBS=1 outright, --metrics-out after strip-runtime")

# Acceptance check for the channel-synthesis subsystem, run as a ctest
# target: a sweep whose channels exist ONLY as synth parameters in the
# checked-in JSON spec (no trace on disk) must lint clean, run, and be
# byte-identical between a single process and a 2-way sharded run; the
# trace_synth generator itself must be deterministic across invocations.
# Expects:
#   -DSWEEP_SHARD=<path to the sweep_shard binary>
#   -DSPEC_LINT=<path to the spec_lint binary>
#   -DTRACE_SYNTH=<path to the trace_synth binary>
#   -DSPEC_FILE=<path to specs/synth_smoke.json>
#   -DWORK_DIR=<scratch directory>
if(NOT SWEEP_SHARD OR NOT SPEC_LINT OR NOT TRACE_SYNTH OR NOT SPEC_FILE
   OR NOT WORK_DIR)
  message(FATAL_ERROR
    "need -DSWEEP_SHARD=... -DSPEC_LINT=... -DTRACE_SYNTH=... "
    "-DSPEC_FILE=... -DWORK_DIR=...")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_step)
  execute_process(COMMAND ${ARGN}
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${ARGN} failed (${rc}):\n${out}\n${err}")
  endif()
endfunction()

function(require_same a b what)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
    ${WORK_DIR}/${a} ${WORK_DIR}/${b}
    RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR
      "${what} (${WORK_DIR}/${a} vs ${WORK_DIR}/${b})")
  endif()
endfunction()

# The generator is deterministic: two invocations, identical trace files.
run_step(${TRACE_SYNTH} --model markov --duration 30 --seed 9
         --out mmpp_a.tr)
run_step(${TRACE_SYNTH} --model markov --duration 30 --seed 9
         --out mmpp_b.tr)
require_same(mmpp_a.tr mmpp_b.tr
             "trace_synth produced different traces for identical inputs")

# The spec must lint clean (its grid sweeps two synth parameters via
# numeric range axes)...
run_step(${SPEC_LINT} ${SPEC_FILE} --expand --shards 2)

# ...and a fully synthetic sweep must be byte-identical between one
# process and an LPT-sharded 2-process run.
run_step(${SWEEP_SHARD} run --spec ${SPEC_FILE} --out full.json)
foreach(i RANGE 1 2)
  run_step(${SWEEP_SHARD} run --spec ${SPEC_FILE} --shard ${i}/2
           --out shard${i}.json)
endforeach()
run_step(${SWEEP_SHARD} merge --spec ${SPEC_FILE} --out merged.json
         shard1.json shard2.json)
require_same(merged.json full.json
             "2-shard synth sweep differs from the single-process run")

message(STATUS
  "synth spec sweep is byte-identical single-process and sharded; "
  "trace_synth is deterministic")

# Acceptance check for sharded sweeps, run as a ctest target: a 3-shard
# multi-PROCESS run of the coexistence smoke grid must merge into a sweep
# file byte-identical to the single-process run's.  Expects:
#   -DSWEEP_SHARD=<path to the sweep_shard binary>
#   -DWORK_DIR=<scratch directory>
if(NOT SWEEP_SHARD OR NOT WORK_DIR)
  message(FATAL_ERROR "need -DSWEEP_SHARD=... and -DWORK_DIR=...")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

set(GRID --grid coexistence-smoke --seconds 10 --base-seed 42)

function(run_step)
  execute_process(COMMAND ${SWEEP_SHARD} ${ARGN}
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "sweep_shard ${ARGN} failed (${rc}):\n${out}\n${err}")
  endif()
endfunction()

# Three shard processes (any of these could run on another machine)...
foreach(i RANGE 1 3)
  run_step(run ${GRID} --shard ${i}/3 --out shard${i}.json)
endforeach()
# ...one merge, verified against the grid's content address...
run_step(merge ${GRID} --out merged.json
         shard1.json shard2.json shard3.json)
# ...and the single-process reference.
run_step(run ${GRID} --out full.json)

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
  ${WORK_DIR}/merged.json ${WORK_DIR}/full.json
  RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR
    "merged 3-shard sweep differs from the single-process run "
    "(${WORK_DIR}/merged.json vs ${WORK_DIR}/full.json)")
endif()
message(STATUS "3-shard merge is byte-identical to the single-process sweep")

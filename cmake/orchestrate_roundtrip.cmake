# Acceptance check for the fault-tolerant orchestrator, run as a ctest
# target: a run killed mid-flight (--halt-after SIGKILLs every worker, the
# same wound as kill -9 of the job tree) must resume from its journals
# into a sweep file byte-identical to the single-process run; the journals
# must export into shard files the plain sweep_shard merge accepts with
# the same bytes; and a cell forced to crash its worker on every attempt
# must land on the poison list (exit 3) without sinking the sweep —
# resuming after the "fix" completes it.
# Expects:
#   -DSWEEP_ORCHESTRATE=<path to the sweep_orchestrate binary>
#   -DSWEEP_SHARD=<path to the sweep_shard binary>
#   -DSPEC_FILE=<path to specs/coexistence_smoke.json>
#   -DWORK_DIR=<scratch directory>
if(NOT SWEEP_ORCHESTRATE OR NOT SWEEP_SHARD OR NOT SPEC_FILE OR NOT WORK_DIR)
  message(FATAL_ERROR "need -DSWEEP_ORCHESTRATE=... -DSWEEP_SHARD=... "
    "-DSPEC_FILE=... -DWORK_DIR=...")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

# Like run_tool, but demands a SPECIFIC exit code — the orchestrator's
# halted (4) and poisoned (3) outcomes are contracts, not failures.
function(run_expect expected_rc tool)
  execute_process(COMMAND ${tool} ${ARGN}
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL expected_rc)
    message(FATAL_ERROR
      "${tool} ${ARGN} exited ${rc}, expected ${expected_rc}:\n${out}\n${err}")
  endif()
endfunction()

function(run_tool tool)
  run_expect(0 ${tool} ${ARGN})
endfunction()

function(require_same a b what)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
    ${WORK_DIR}/${a} ${WORK_DIR}/${b}
    RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR
      "${what}: ${WORK_DIR}/${a} differs from ${WORK_DIR}/${b}")
  endif()
endfunction()

# The single-process reference.
run_tool(${SWEEP_SHARD} run --spec ${SPEC_FILE} --out full.json)

# --- kill mid-run, resume ------------------------------------------------
# Two cells in, every worker is SIGKILLed (exit 4, journals kept)...
run_expect(4 ${SWEEP_ORCHESTRATE} run --spec ${SPEC_FILE}
  --journal-dir jkill --out orch.json --workers 2 --halt-after 2 --quiet)
# ...and re-running the same command resumes to the same bytes.
run_tool(${SWEEP_ORCHESTRATE} run --spec ${SPEC_FILE}
  --journal-dir jkill --out orch.json --workers 2 --quiet)
require_same(orch.json full.json
  "killed + resumed orchestrated sweep vs single-process run")

# --- journals replay through the plain shard merge -----------------------
run_tool(${SWEEP_ORCHESTRATE} export --spec ${SPEC_FILE}
  --journal-dir jkill --out-prefix exported_)
file(GLOB exported RELATIVE ${WORK_DIR} ${WORK_DIR}/exported_*.json)
run_tool(${SWEEP_SHARD} merge --spec ${SPEC_FILE} --out remerged.json
  ${exported})
require_same(remerged.json full.json
  "journal-exported shards merged by sweep_shard vs single-process run")

# --- poison path ---------------------------------------------------------
# Cell 0 crashes its worker on every attempt: quarantined after
# --max-attempts (exit 3, report written), the other cells complete...
run_expect(3 ${SWEEP_ORCHESTRATE} run --spec ${SPEC_FILE}
  --journal-dir jpoison --out poisoned.json --workers 2
  --crash-cell 0 --max-attempts 2 --retry-backoff 0.05
  --poison-report poison.json --quiet)
if(NOT EXISTS ${WORK_DIR}/poison.json)
  message(FATAL_ERROR "poisoned run wrote no poison report")
endif()
file(READ ${WORK_DIR}/poison.json poison_report)
if(NOT poison_report MATCHES "\"index\": 0")
  message(FATAL_ERROR
    "poison report does not name the crashed cell:\n${poison_report}")
endif()
# ...and with the crash hook gone the same journals resume to completion.
run_tool(${SWEEP_ORCHESTRATE} run --spec ${SPEC_FILE}
  --journal-dir jpoison --out poisoned.json --workers 2 --quiet)
require_same(poisoned.json full.json
  "post-poison resumed sweep vs single-process run")

message(STATUS "orchestrated (killed + resumed, exported, poisoned + "
  "resumed) sweeps are byte-identical to the single-process run")

// Drive every forecast strategy over the same arrival sequence, offline.
//
//   $ ./forecaster_playground [network] [downlink|uplink] [seconds]
//
// Feeds one synthetic trace's per-tick arrival counts to each strategy —
// the paper's Bayesian filter, the EWMA ablation, adaptive model
// averaging, the MMPP regime model and the empirical window — and scores
// their 100 ms-ahead forecasts against what the link actually delivered.
// This is the §3 inference problem isolated from the protocol: no queues,
// no feedback, just "how well can each model predict this link".
//
// Two scores per strategy:
//   * violation rate — how often actual deliveries fell SHORT of the
//     cautious forecast (the paper's target: <= 5%);
//   * forecast yield — the mean forecast as a fraction of the mean actual
//     (how much of the link the caution leaves on the table).
#include <iostream>
#include <memory>
#include <vector>

#include "core/adaptive.h"
#include "core/alt_models.h"
#include "core/strategy.h"
#include "trace/presets.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace sprout;

  const std::string network = argc > 1 ? argv[1] : "Verizon LTE";
  const LinkDirection direction =
      argc > 2 && std::string(argv[2]) == "uplink" ? LinkDirection::kUplink
                                                   : LinkDirection::kDownlink;
  const int seconds = argc > 3 ? std::atoi(argv[3]) : 120;

  const LinkPreset& preset = find_link_preset(network, direction);
  const Trace trace = preset_trace(preset, sec(seconds));
  SproutParams params;

  // Per-tick arrival counts for the whole trace.
  std::vector<int> counts;
  {
    std::size_t i = 0;
    for (TimePoint tick_end = TimePoint{} + params.tick;
         tick_end <= TimePoint{} + sec(seconds); tick_end += params.tick) {
      int k = 0;
      while (i < trace.size() && trace.opportunities()[i] < tick_end) {
        ++k;
        ++i;
      }
      counts.push_back(k);
    }
  }

  struct Entry {
    const char* name;
    std::unique_ptr<ForecastStrategy> strategy;
    std::int64_t violations = 0;
    double forecast_sum = 0.0;
    double actual_sum = 0.0;
    std::int64_t scored = 0;
  };
  std::vector<Entry> entries;
  entries.push_back({"Bayesian (paper)", make_bayesian_strategy(params)});
  entries.push_back({"EWMA", make_ewma_strategy(params)});
  entries.push_back({"Adaptive (σ,λz)", make_adaptive_strategy(params)});
  entries.push_back({"MMPP", make_mmpp_strategy(params)});
  entries.push_back({"Empirical", make_empirical_strategy(params)});

  const int lookahead = params.sender_lookahead_ticks;  // 5 ticks = 100 ms
  for (std::size_t t = 0; t + static_cast<std::size_t>(lookahead) <
                          counts.size();
       ++t) {
    // Actual deliveries over the next 100 ms.
    int actual = 0;
    for (int h = 1; h <= lookahead; ++h) {
      actual += counts[t + static_cast<std::size_t>(h)];
    }
    for (Entry& e : entries) {
      e.strategy->advance_tick();
      e.strategy->observe(counts[t]);
      if (t < 100) continue;  // burn-in
      const DeliveryForecast f =
          e.strategy->make_forecast(TimePoint{} + params.tick * static_cast<int>(t));
      const double promised = static_cast<double>(f.cumulative_at(lookahead)) /
                              static_cast<double>(params.mtu);
      if (static_cast<double>(actual) < promised) ++e.violations;
      e.forecast_sum += promised;
      e.actual_sum += actual;
      ++e.scored;
    }
  }

  std::cout << "Forecast quality on " << preset.name() << " (" << seconds
            << " s, 100 ms lookahead, "
            << params.confidence_percent << "% confidence)\n\n";
  TableWriter t({"Strategy", "Violation rate (%)", "Forecast yield (%)"});
  for (const Entry& e : entries) {
    t.row()
        .cell(e.name)
        .cell(100.0 * static_cast<double>(e.violations) /
                  static_cast<double>(e.scored),
              1)
        .cell(100.0 * e.forecast_sum / e.actual_sum, 1);
  }
  t.print(std::cout);
  std::cout << "\nThe paper's design point: violations <= 5% (the 95% "
               "forecast), yield as high\nas possible.  EWMA yields the most "
               "but violates far more than 5%; the cautious\nmodels trade "
               "yield for meeting the violation budget.\n";
  return 0;
}

// trace_synth — generate, inspect and export synthetic cellular traces.
//
// The CLI front door of the channel-synthesis subsystem (synth/synth.h):
// pick a base model by name or load a full SynthSpec from JSON (the same
// object a scenario spec's "synth" link embeds), materialize a trace of
// any duration, print its statistics, optionally plot the delivered rate
// as an ASCII timeline, and optionally export a mahimahi-format trace
// file any emulator (including this repo's Cellsim) can replay.
//
//   trace_synth --model brownian --duration 60 --seed 7
//   trace_synth --model markov --plot
//   trace_synth --synth channel.json --duration 120 --out channel.tr
//
// Generation is deterministic: the same inputs produce byte-identical
// traces in any process (the CI synth-smoke job diffs two runs).
//
// Exit codes: 0 ok, 1 generation/IO failure, 2 usage.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "spec/synth_io.h"
#include "synth/synth.h"
#include "util/ascii_plot.h"
#include "util/table.h"

namespace {

using namespace sprout;

int usage() {
  std::cerr <<
      "usage: trace_synth (--model brownian|markov|cox | --synth FILE.json)\n"
      "                   [--duration S] [--seed N] [--out TRACE.tr]\n"
      "                   [--plot] [--bin S]\n";
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// Delivered rate per bin, as an ASCII timeline: one row per bin, bar
// length proportional to the bin's average rate (util/ascii_plot.h, the
// renderer timeline_report's charts share).
void plot(const Trace& trace, Duration bin) {
  const double bin_s = to_seconds(bin);
  const auto& opportunities = trace.opportunities();
  const std::size_t bins = static_cast<std::size_t>(
      to_seconds(trace.duration()) / bin_s);
  if (bins == 0) return;
  std::vector<double> counts(bins, 0.0);
  for (const TimePoint t : opportunities) {
    const auto b = static_cast<std::size_t>(
        to_seconds(t.time_since_epoch()) / bin_s);
    if (b < bins) counts[b] += 1.0;
  }
  const double peak = *std::max_element(counts.begin(), counts.end());
  std::cout << "\nrate over time (one row per " << format_double(bin_s, 1)
            << " s, full bar = " << format_double(
                   peak > 0.0 ? peak / bin_s : 0.0, 0)
            << " pkt/s):\n";
  AsciiPlotOptions opt;
  opt.bin_s = bin_s;
  render_ascii_plot(std::cout, counts, opt);
}

}  // namespace

int main(int argc, char** argv) {
  std::string model;
  std::string synth_path;
  std::string out_path;
  double duration_s = 60.0;
  std::uint64_t seed = 1;
  bool seed_given = false;
  bool want_plot = false;
  double bin_s = 1.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw std::invalid_argument(arg + " needs a value");
      return argv[++i];
    };
    try {
      if (arg == "--model") model = value();
      else if (arg == "--synth") synth_path = value();
      else if (arg == "--duration") duration_s = std::stod(value());
      else if (arg == "--seed") {
        seed = std::stoull(value());
        seed_given = true;
      }
      else if (arg == "--out") out_path = value();
      else if (arg == "--plot") want_plot = true;
      else if (arg == "--bin") bin_s = std::stod(value());
      else return usage();
    } catch (const std::exception& e) {
      std::cerr << "trace_synth: " << e.what() << "\n";
      return 2;
    }
  }
  if (model.empty() == synth_path.empty()) return usage();  // exactly one
  if (duration_s <= 0.0 || bin_s <= 0.0) {
    std::cerr << "trace_synth: --duration and --bin must be > 0\n";
    return 2;
  }

  try {
    SynthSpec spec;
    if (!synth_path.empty()) {
      spec = sprout::spec::parse_synth_json(read_file(synth_path));
    } else if (model == "brownian") {
      spec = SynthSpec::brownian_model({}, seed);
    } else if (model == "markov") {
      spec = SynthSpec::markov_model({}, seed);
    } else if (model == "cox") {
      spec = SynthSpec::cox_model({}, seed);
    } else {
      std::cerr << "trace_synth: unknown model \"" << model
                << "\" (expected brownian, markov or cox)\n";
      return 2;
    }
    // --seed overrides whatever the source carried — including a --synth
    // file's embedded seed, so shell-driven seed ensembles actually vary.
    if (!model.empty() || seed_given) spec = spec.with_seed(seed);

    const Duration duration = from_seconds(duration_s);
    const Trace trace = generate_synth_trace(spec, duration);

    const auto gaps = trace.interarrivals();
    Duration longest_gap = Duration::zero();
    for (const Duration g : gaps) longest_gap = std::max(longest_gap, g);
    double outage_s = 0.0;  // time spent in >200 ms delivery silences
    for (const Duration g : gaps) {
      if (g > msec(200)) outage_s += to_seconds(g);
    }

    std::cout << "channel:       " << spec.label() << "\n"
              << "key:           " << synth_key(spec, duration) << "\n"
              << "duration:      " << format_double(duration_s, 1) << " s\n"
              << "opportunities: " << trace.size() << "\n"
              << "mean rate:     " << format_double(trace.average_rate_kbps(), 0)
              << " kbit/s ("
              << format_double(static_cast<double>(trace.size()) / duration_s, 0)
              << " pkt/s)\n"
              << "longest gap:   "
              << format_double(to_seconds(longest_gap) * 1e3, 0) << " ms\n"
              << "outage time:   " << format_double(outage_s, 1)
              << " s in gaps > 200 ms\n";

    if (want_plot) plot(trace, from_seconds(bin_s));

    if (!out_path.empty()) {
      write_trace_file(trace, out_path);
      std::cout << "trace written to " << out_path << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "trace_synth: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

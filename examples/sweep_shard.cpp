// sweep_shard — run and merge sharded scenario sweeps across OS processes.
//
// Each shard process runs an interleaved slice of a named grid and writes a
// content-addressed JSON shard file; a merge process stitches the shards
// back into one sweep file, refusing overlaps, gaps, and shards cut from a
// different grid.  Because per-cell seeds are content-derived, the merged
// file is byte-identical to the file a single process writes for the whole
// grid — the ctest `shard_roundtrip` target and the CI shard job diff
// exactly that.
//
//   sweep_shard list
//   sweep_shard run   --grid coexistence-smoke --shard 1/3 --out s1.json
//   sweep_shard run   --grid coexistence-smoke --cells 0,2 --out s.json
//   sweep_shard run   --grid coexistence-smoke --out full.json
//   sweep_shard merge --grid coexistence-smoke --out merged.json s*.json
//
// Shared flags: --seconds N (cell duration scale, default 20), --base-seed S
// (content-derived per-cell seeds), --threads T (in-process pool).  Flags
// that shape the grid (--grid, --seconds, --base-seed) must agree across
// the run and merge invocations of one sweep; the sweep fingerprint turns
// any disagreement into a hard error instead of a silently different grid.
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "runner/shard.h"
#include "trace/presets.h"
#include "util/table.h"

namespace {

using namespace sprout;

struct GridFlags {
  std::string name;
  int seconds = 20;
  std::optional<std::uint64_t> base_seed;
};

ScenarioSpec scaled(ScenarioSpec spec, int seconds) {
  spec.run_time = sec(seconds);
  spec.warmup = spec.run_time / 4;
  return spec;
}

// The CI smoke shape: Sprout against each coexistence rival in ONE shared
// Verizon LTE downlink queue (bench/table_coexistence's first column).
SweepSpec coexistence_smoke_grid(const GridFlags& flags) {
  const LinkPreset& link =
      find_link_preset("Verizon LTE", LinkDirection::kDownlink);
  SweepSpec sweep;
  for (const SchemeId rival : coexistence_schemes()) {
    sweep.cells.push_back(scaled(
        heterogeneous_scenario(
            {FlowSpec::of(SchemeId::kSprout), FlowSpec::of(rival)}, link),
        flags.seconds));
  }
  sweep.base_seed = flags.base_seed;
  return sweep;
}

// Deliberately unbalanced: long multi-flow cells listed next to short
// single-flow ones (3:1 duration, up to 3 flows), exercising longest-first
// scheduling and shard balance.  One cell stops a flow early, so the
// drain-tail ledger and NaN-free fairness fields cross process boundaries.
SweepSpec mixed_duration_grid(const GridFlags& flags) {
  const LinkPreset& verizon =
      find_link_preset("Verizon LTE", LinkDirection::kDownlink);
  const LinkPreset& att = find_link_preset("AT&T LTE", LinkDirection::kDownlink);
  const int base = flags.seconds;
  SweepSpec sweep;
  sweep.cells.push_back(
      scaled(single_flow_scenario(SchemeId::kCubic, verizon), base));
  sweep.cells.push_back(scaled(
      heterogeneous_scenario({FlowSpec::of(SchemeId::kSprout),
                              FlowSpec::of(SchemeId::kCubic),
                              FlowSpec::of(SchemeId::kVegas)},
                             verizon),
      3 * base));
  sweep.cells.push_back(
      scaled(single_flow_scenario(SchemeId::kSprout, att), base));
  {
    ScenarioSpec stopper = scaled(
        heterogeneous_scenario(
            {FlowSpec::of(SchemeId::kSprout),
             FlowSpec::of(SchemeId::kCubic)},
            att),
        2 * base);
    stopper.topology.flows[1].stop = stopper.run_time / 2;
    sweep.cells.push_back(stopper);
  }
  sweep.cells.push_back(
      scaled(single_flow_scenario(SchemeId::kVegas, verizon), base));
  sweep.base_seed = flags.base_seed;
  return sweep;
}

const std::vector<std::string>& grid_names() {
  static const std::vector<std::string> names = {"coexistence-smoke",
                                                 "mixed-duration"};
  return names;
}

SweepSpec build_grid(const GridFlags& flags) {
  if (flags.name == "coexistence-smoke") return coexistence_smoke_grid(flags);
  if (flags.name == "mixed-duration") return mixed_duration_grid(flags);
  std::ostringstream os;
  os << "unknown grid \"" << flags.name << "\" (have:";
  for (const std::string& n : grid_names()) os << ' ' << n;
  os << ')';
  throw std::invalid_argument(os.str());
}

int usage() {
  std::cerr <<
      "usage:\n"
      "  sweep_shard list [--seconds N]\n"
      "  sweep_shard run   --grid NAME --out PATH [--shard I/N | --cells "
      "A,B,C]\n"
      "                    [--seconds N] [--base-seed S] [--threads T]\n"
      "  sweep_shard merge --out PATH [--grid NAME [--seconds N] "
      "[--base-seed S]] SHARD.json...\n";
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

template <typename WriteFn>
void write_file(const std::string& path, WriteFn&& write) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  write(out);
  // Flush before checking: a full disk surfacing in the destructor's
  // implicit flush would otherwise exit 0 with a truncated file, and the
  // orchestrator gating on exit codes would feed it to the merge.
  out.flush();
  if (!out) throw std::runtime_error("write to " + path + " failed");
}

// "I/N" (1-based shard number) -> 0-based indices of that shard's cells.
std::vector<std::size_t> parse_shard(const std::string& arg,
                                     std::size_t total_cells) {
  const std::size_t slash = arg.find('/');
  if (slash == std::string::npos) {
    throw std::invalid_argument("--shard wants I/N, got \"" + arg + "\"");
  }
  const int number = std::stoi(arg.substr(0, slash));
  const int count = std::stoi(arg.substr(slash + 1));
  return shard_cell_indices(total_cells, number - 1, count);
}

std::vector<std::size_t> parse_cells(const std::string& arg) {
  std::vector<std::size_t> cells;
  std::istringstream is(arg);
  std::string token;
  while (std::getline(is, token, ',')) {
    if (token.empty()) continue;
    cells.push_back(static_cast<std::size_t>(std::stoull(token)));
  }
  if (cells.empty()) {
    throw std::invalid_argument("--cells wants A,B,C, got \"" + arg + "\"");
  }
  return cells;
}

int cmd_list(const GridFlags& base) {
  TableWriter t({"Grid", "Cells", "Est. cost (flow-s)", "Fingerprint"});
  for (const std::string& name : grid_names()) {
    GridFlags flags = base;
    flags.name = name;
    const SweepSpec sweep = build_grid(flags);
    double cost = 0.0;
    for (const ScenarioSpec& cell : sweep.cells) cost += estimated_cost(cell);
    t.row()
        .cell(name)
        .cell(static_cast<std::int64_t>(sweep.cells.size()))
        .cell(cost, 0)
        .cell(std::to_string(sweep_fingerprint(sweep)));
  }
  t.print(std::cout);
  return 0;
}

int cmd_run(const GridFlags& flags, const std::string& shard_arg,
            const std::string& cells_arg, const std::string& out_path,
            int threads) {
  const SweepSpec sweep = build_grid(flags);
  if (!shard_arg.empty() || !cells_arg.empty()) {
    const std::vector<std::size_t> cells =
        !shard_arg.empty() ? parse_shard(shard_arg, sweep.cells.size())
                           : parse_cells(cells_arg);
    const ShardResult shard = run_shard(sweep, cells, threads);
    write_file(out_path, [&](std::ostream& os) { write_shard_json(os, shard); });
    std::cout << "shard of " << shard.cell_indices.size() << "/"
              << shard.total_cells << " cells -> " << out_path << "\n";
  } else {
    const SweepResult full = run_sweep(sweep, threads);
    write_file(out_path, [&](std::ostream& os) { write_sweep_json(os, full); });
    std::cout << "sweep of " << full.cells.size() << " cells -> " << out_path
              << "\n";
  }
  return 0;
}

int cmd_merge(const GridFlags& flags, bool have_grid,
              const std::vector<std::string>& shard_paths,
              const std::string& out_path) {
  std::vector<ShardResult> shards;
  shards.reserve(shard_paths.size());
  for (const std::string& path : shard_paths) {
    try {
      shards.push_back(read_shard_json(read_file(path)));
    } catch (const std::exception& e) {
      throw std::runtime_error(path + ": " + e.what());
    }
  }
  const SweepResult merged = merge_shards(shards);
  if (have_grid) verify_sweep_result(merged, build_grid(flags));
  write_file(out_path, [&](std::ostream& os) { write_sweep_json(os, merged); });
  std::cout << "merged " << shards.size() << " shards, " << merged.cells.size()
            << " cells -> " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];

  GridFlags flags;
  std::string shard_arg;
  std::string cells_arg;
  std::string out_path;
  int threads = 0;
  std::vector<std::string> positional;

  try {
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) {
          throw std::invalid_argument(arg + " needs a value");
        }
        return argv[++i];
      };
      if (arg == "--grid") flags.name = value();
      else if (arg == "--seconds") flags.seconds = std::stoi(value());
      else if (arg == "--base-seed") flags.base_seed = std::stoull(value());
      else if (arg == "--threads") threads = std::stoi(value());
      else if (arg == "--shard") shard_arg = value();
      else if (arg == "--cells") cells_arg = value();
      else if (arg == "--out") out_path = value();
      else if (arg.rfind("--", 0) == 0) return usage();
      else positional.push_back(arg);
    }
    if (flags.seconds < 8) {
      throw std::invalid_argument("--seconds must be >= 8");
    }

    if (command == "list") {
      return cmd_list(flags);
    }
    if (command == "run") {
      if (flags.name.empty() || out_path.empty() || !positional.empty() ||
          (!shard_arg.empty() && !cells_arg.empty())) {
        return usage();
      }
      return cmd_run(flags, shard_arg, cells_arg, out_path, threads);
    }
    if (command == "merge") {
      if (out_path.empty() || positional.empty()) return usage();
      return cmd_merge(flags, !flags.name.empty(), positional, out_path);
    }
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "sweep_shard: " << e.what() << "\n";
    return 1;
  }
}

// sweep_shard — run and merge sharded scenario sweeps across OS processes.
//
// Each shard process runs a slice of a grid and writes a content-addressed
// JSON shard file; a merge process stitches the shards back into one sweep
// file, refusing overlaps, gaps, shards cut from a different grid, and
// shards cut by mixed partition strategies.  Because per-cell seeds are
// content-derived, the merged file is byte-identical to the file a single
// process writes for the whole grid — the ctest `shard_roundtrip` /
// `spec_roundtrip` targets and the CI shard/spec jobs diff exactly that.
//
// Grids come from two places: the compiled-in set (--grid NAME, see
// spec/builtin.h) or a declarative JSON experiment document (--spec FILE,
// see spec/grid.h) — the spec route needs no rebuild to define a new
// experiment, and `dump` writes any compiled grid as a spec file to start
// from:
//
//   sweep_shard list
//   sweep_shard list shard1.json shard2.json      (strategy per shard file)
//   sweep_shard run   --grid coexistence-smoke --shard 1/3 --out s1.json
//   sweep_shard run   --spec specs/coexistence_smoke.json --shard 1/3
//                     --strategy lpt --out s1.json
//   sweep_shard run   --grid coexistence-smoke --cells 0,2 --out s.json
//   sweep_shard run   --spec specs/coexistence_smoke.json --out full.json
//   sweep_shard merge --grid coexistence-smoke --out merged.json s*.json
//   sweep_shard dump  --grid mixed-duration --out mixed.spec.json
//
// Shared flags: --seconds N (cell duration scale for compiled grids,
// default 20), --base-seed S (content-derived per-cell seeds; compiled
// grids only — a spec file carries its own), --threads T (in-process
// pool), --strategy round-robin|lpt (how --shard I/N cuts the grid; a
// spec file's plan.strategy is the default).  Flags that shape the grid
// must agree across the run and merge invocations of one sweep; the sweep
// fingerprint turns any disagreement into a hard error instead of a
// silently different grid.  Mixing --shard strategies across one grid's
// shards is rejected at merge by the recorded partition stamps.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "runner/shard.h"
#include "spec/builtin.h"
#include "spec/grid.h"
#include "spec/plan.h"
#include "util/table.h"

namespace {

using namespace sprout;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

template <typename WriteFn>
void write_file(const std::string& path, WriteFn&& write) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  write(out);
  // Flush before checking: a full disk surfacing in the destructor's
  // implicit flush would otherwise exit 0 with a truncated file, and the
  // orchestrator gating on exit codes would feed it to the merge.
  out.flush();
  if (!out) throw std::runtime_error("write to " + path + " failed");
}

// Where the grid comes from and how shards are cut from it.
struct GridSource {
  std::string grid_name;  // --grid
  std::string spec_path;  // --spec
  int seconds = 20;
  bool seconds_given = false;
  bool timeline = false;  // --timeline: flight-record every cell
  std::optional<std::uint64_t> base_seed;
  std::optional<spec::PartitionStrategy> strategy;  // --strategy
};

struct ResolvedGrid {
  std::string label;  // grid name or spec name/path, for messages
  spec::PartitionStrategy strategy = spec::PartitionStrategy::kRoundRobin;
  SweepSpec sweep;
};

ResolvedGrid resolve_grid(const GridSource& source) {
  ResolvedGrid grid;
  if (!source.spec_path.empty()) {
    // A spec file is self-contained; grid-shaping flags contradict it.
    if (source.seconds_given) {
      throw std::invalid_argument(
          "--seconds shapes compiled grids; a spec file carries its own "
          "durations");
    }
    if (source.base_seed.has_value()) {
      throw std::invalid_argument(
          "--base-seed shapes compiled grids; set base_seed in the spec "
          "file instead");
    }
    spec::ExperimentSpec experiment =
        spec::parse_experiment_file(source.spec_path);
    grid.label = experiment.name.empty() ? source.spec_path : experiment.name;
    grid.strategy = experiment.strategy;
    grid.sweep = std::move(experiment.sweep);
  } else {
    spec::BuiltinGridOptions options;
    options.seconds = source.seconds;
    options.base_seed = source.base_seed;
    grid.label = source.grid_name;
    grid.sweep = spec::build_builtin_grid(source.grid_name, options);
  }
  if (source.strategy.has_value()) grid.strategy = *source.strategy;
  // --timeline flight-records every cell.  record_timeline is excluded
  // from scenario fingerprints, so shards cut with and without it merge
  // and verify against the same grid.
  if (source.timeline) {
    for (ScenarioSpec& cell : grid.sweep.cells) cell.record_timeline = true;
  }
  return grid;
}

int usage() {
  std::cerr <<
      "usage:\n"
      "  sweep_shard list [--seconds N] [--spec FILE] [SHARD.json...]\n"
      "  sweep_shard run   (--grid NAME | --spec FILE) --out PATH\n"
      "                    [--shard I/N [--strategy round-robin|lpt] |"
      " --cells A,B,C]\n"
      "                    [--seconds N] [--base-seed S] [--threads T]"
      " [--timeline]\n"
      "  sweep_shard merge --out PATH [--grid NAME [--seconds N]"
      " [--base-seed S] | --spec FILE]\n"
      "                    SHARD.json...\n"
      "  sweep_shard dump  --grid NAME --out SPEC.json [--seconds N]"
      " [--base-seed S]\n";
  return 2;
}

// "I/N" (1-based shard number) -> 0-based indices of that shard's cells,
// cut by the resolved strategy.
std::vector<std::size_t> parse_shard(const std::string& arg,
                                     const ResolvedGrid& grid) {
  const std::size_t slash = arg.find('/');
  if (slash == std::string::npos) {
    throw std::invalid_argument("--shard wants I/N, got \"" + arg + "\"");
  }
  const int number = std::stoi(arg.substr(0, slash));
  const int count = std::stoi(arg.substr(slash + 1));
  return spec::plan_shard_indices(grid.sweep, grid.strategy, number - 1,
                                  count);
}

std::vector<std::size_t> parse_cells(const std::string& arg) {
  std::vector<std::size_t> cells;
  std::istringstream is(arg);
  std::string token;
  while (std::getline(is, token, ',')) {
    if (token.empty()) continue;
    cells.push_back(static_cast<std::size_t>(std::stoull(token)));
  }
  if (cells.empty()) {
    throw std::invalid_argument("--cells wants A,B,C, got \"" + arg + "\"");
  }
  return cells;
}

int cmd_list(const GridSource& source,
             const std::vector<std::string>& shard_paths) {
  if (!shard_paths.empty()) {
    // Shard-file inspection: which strategy cut each file, what it covers.
    TableWriter t({"Shard file", "Partition", "Cells", "Of", "Fingerprint"});
    for (const std::string& path : shard_paths) {
      ShardResult shard;
      try {
        shard = read_shard_json(read_file(path));
      } catch (const std::exception& e) {
        throw std::runtime_error(path + ": " + e.what());
      }
      t.row()
          .cell(path)
          .cell(shard.partition.empty() ? "(unrecorded)" : shard.partition)
          .cell(static_cast<std::int64_t>(shard.cell_indices.size()))
          .cell(static_cast<std::int64_t>(shard.total_cells))
          .cell(std::to_string(shard.sweep_fingerprint));
    }
    t.print(std::cout);
    return 0;
  }

  TableWriter t({"Grid", "Cells", "Est. cost (Cubic-s)", "Strategy",
                 "Fingerprint"});
  const auto add_row = [&](const ResolvedGrid& grid) {
    double cost = 0.0;
    for (const ScenarioSpec& cell : grid.sweep.cells) {
      cost += estimated_cost(cell);
    }
    t.row()
        .cell(grid.label)
        .cell(static_cast<std::int64_t>(grid.sweep.cells.size()))
        .cell(cost, 0)
        .cell(spec::to_string(grid.strategy))
        .cell(std::to_string(sweep_fingerprint(grid.sweep)));
  };
  if (!source.spec_path.empty()) {
    add_row(resolve_grid(source));
  } else {
    for (const std::string& name : spec::builtin_grid_names()) {
      GridSource builtin = source;
      builtin.grid_name = name;
      add_row(resolve_grid(builtin));
    }
  }
  t.print(std::cout);
  return 0;
}

int cmd_run(const GridSource& source, const std::string& shard_arg,
            const std::string& cells_arg, const std::string& out_path,
            int threads) {
  const ResolvedGrid grid = resolve_grid(source);
  if (!shard_arg.empty() || !cells_arg.empty()) {
    const std::vector<std::size_t> cells = !shard_arg.empty()
                                               ? parse_shard(shard_arg, grid)
                                               : parse_cells(cells_arg);
    ShardResult shard = run_shard(grid.sweep, cells, threads);
    shard.partition =
        !shard_arg.empty() ? spec::to_string(grid.strategy) : "explicit";
    write_file(out_path,
               [&](std::ostream& os) { write_shard_json(os, shard); });
    std::cout << "shard of " << shard.cell_indices.size() << "/"
              << shard.total_cells << " cells (" << shard.partition
              << ") -> " << out_path << "\n";
  } else {
    const SweepResult full = run_sweep(grid.sweep, threads);
    write_file(out_path,
               [&](std::ostream& os) { write_sweep_json(os, full); });
    std::cout << "sweep of " << full.cells.size() << " cells -> " << out_path
              << "\n";
  }
  return 0;
}

int cmd_merge(const GridSource& source, bool have_grid,
              const std::vector<std::string>& shard_paths,
              const std::string& out_path) {
  std::vector<ShardResult> shards;
  shards.reserve(shard_paths.size());
  for (const std::string& path : shard_paths) {
    try {
      shards.push_back(read_shard_json(read_file(path)));
    } catch (const std::exception& e) {
      throw std::runtime_error(path + ": " + e.what());
    }
  }
  const SweepResult merged = merge_shards(shards);
  if (have_grid) verify_sweep_result(merged, resolve_grid(source).sweep);
  write_file(out_path,
             [&](std::ostream& os) { write_sweep_json(os, merged); });
  std::cout << "merged " << shards.size() << " shards, " << merged.cells.size()
            << " cells -> " << out_path << "\n";
  return 0;
}

int cmd_dump(const GridSource& source, const std::string& out_path) {
  spec::ExperimentSpec experiment;
  experiment.name = source.grid_name;
  if (source.strategy.has_value()) experiment.strategy = *source.strategy;
  spec::BuiltinGridOptions options;
  options.seconds = source.seconds;
  options.base_seed = source.base_seed;
  experiment.sweep = spec::build_builtin_grid(source.grid_name, options);
  write_file(out_path, [&](std::ostream& os) {
    spec::write_experiment_json(os, experiment);
  });
  std::cout << "grid " << source.grid_name << " ("
            << experiment.sweep.cells.size() << " cells) -> " << out_path
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];

  GridSource source;
  std::string shard_arg;
  std::string cells_arg;
  std::string out_path;
  int threads = 0;
  std::vector<std::string> positional;

  try {
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) {
          throw std::invalid_argument(arg + " needs a value");
        }
        return argv[++i];
      };
      if (arg == "--grid") source.grid_name = value();
      else if (arg == "--spec") source.spec_path = value();
      else if (arg == "--seconds") {
        source.seconds = std::stoi(value());
        source.seconds_given = true;
      }
      else if (arg == "--base-seed") source.base_seed = std::stoull(value());
      else if (arg == "--strategy") {
        const std::string name = value();
        source.strategy = spec::partition_from_name(name);
        if (!source.strategy.has_value()) {
          throw std::invalid_argument("--strategy wants round-robin or lpt, "
                                      "got \"" + name + "\"");
        }
      }
      else if (arg == "--threads") {
        // Strict parse: "--threads 0" means the hardware pool
        // (SweepOptions), but a negative count or trailing garbage
        // ("4x") must not reach the thread pool as a plausible number.
        const std::string text = value();
        std::size_t pos = 0;
        try {
          threads = std::stoi(text, &pos);
        } catch (const std::exception&) {
          pos = std::string::npos;
        }
        if (pos != text.size() || threads < 0) {
          std::cerr << "sweep_shard: --threads: must be a non-negative "
                       "integer (0 = all cores), got \"" << text << "\"\n";
          return 2;
        }
      }
      else if (arg == "--timeline") source.timeline = true;
      else if (arg == "--shard") shard_arg = value();
      else if (arg == "--cells") cells_arg = value();
      else if (arg == "--out") out_path = value();
      else if (arg.rfind("--", 0) == 0) return usage();
      else positional.push_back(arg);
    }
    if (source.seconds < 8) {
      throw std::invalid_argument("--seconds must be >= 8");
    }
    if (!source.grid_name.empty() && !source.spec_path.empty()) {
      throw std::invalid_argument("--grid and --spec are mutually exclusive");
    }
    const bool have_grid =
        !source.grid_name.empty() || !source.spec_path.empty();

    if (command == "list") {
      return cmd_list(source, positional);
    }
    if (command == "run") {
      if (!have_grid || out_path.empty() || !positional.empty() ||
          (!shard_arg.empty() && !cells_arg.empty())) {
        return usage();
      }
      return cmd_run(source, shard_arg, cells_arg, out_path, threads);
    }
    if (command == "merge") {
      if (out_path.empty() || positional.empty()) return usage();
      return cmd_merge(source, have_grid, positional, out_path);
    }
    if (command == "dump") {
      if (source.grid_name.empty() || out_path.empty() ||
          !positional.empty()) {
        return usage();
      }
      return cmd_dump(source, out_path);
    }
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "sweep_shard: " << e.what() << "\n";
    return 1;
  }
}

// obs_report — render and validate the observability artifacts the sweep
// pipeline emits.
//
//   obs_report metrics  metrics.jsonl        # human tables from a telemetry
//                                            # feed (sweep_orchestrate
//                                            # --metrics-out)
//   obs_report sweep    sweep.json           # runtime tables from a merged
//                                            # sweep whose cells carry
//                                            # "runtime" stamps
//   obs_report validate-metrics metrics.jsonl
//   obs_report validate-trace   trace.json
//   obs_report strip-runtime    in.json out.json
//
// `metrics` prints the slowest cells, per-worker utilization, the fault
// log, and — from the summary event's registry snapshot — cache hit rates
// and batcher utilization.  `validate-*` are the CI schema gates: they
// parse every line/event strictly and exit non-zero on the first
// violation.  `strip-runtime` removes the `"runtime"` stamps from a merged
// sweep (or shard/journal) file so it byte-diffs against a run that never
// recorded telemetry — the obs-smoke CI job's identity check.
//
// Exit codes: 0 ok, 1 invalid input, 2 usage.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/table.h"

namespace {

using sprout::JsonValue;
using sprout::TableWriter;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (end > start) lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

void require(bool ok, const std::string& context, const std::string& what) {
  if (!ok) throw std::runtime_error(context + ": " + what);
}

// --- metrics.jsonl model -------------------------------------------------

struct CellEvent {
  std::size_t index = 0;
  int worker = 0;
  int attempt = 0;
  double wall_s = 0.0;
  std::int64_t peak_rss_bytes = 0;
};

struct MetricsFeed {
  std::string sweep_fingerprint;
  std::size_t total_cells = 0;
  std::vector<CellEvent> cells;
  std::vector<std::string> faults;  // rendered retry/poison lines
  std::size_t progress_events = 0;
  bool have_summary = false;
  JsonValue summary;  // the whole summary event (carries "registry")
  // Worker parting snapshots: the cell work (cache lookups, filter math)
  // happens in the workers, so their registries carry those tallies.
  std::vector<JsonValue> worker_registries;
};

// Parses and schema-checks a metrics.jsonl feed in one pass: rendering and
// `validate-metrics` must not diverge on what counts as well-formed.
MetricsFeed parse_metrics(const std::string& path) {
  const std::vector<std::string> lines = split_lines(read_file(path));
  require(!lines.empty(), path, "empty metrics file");

  MetricsFeed feed;
  const JsonValue header = JsonValue::parse(lines[0]);
  require(header.has("schema") &&
              header.at("schema").as_string() == "sprout-metrics-v1",
          path + ":1", "header schema is not sprout-metrics-v1");
  feed.sweep_fingerprint = header.at("sweep_fingerprint").as_string();
  feed.total_cells =
      static_cast<std::size_t>(header.at("total_cells").as_number());

  for (std::size_t n = 1; n < lines.size(); ++n) {
    const std::string context = path + ":" + std::to_string(n + 1);
    const JsonValue v = JsonValue::parse(lines[n]);
    require(v.has("event"), context, "record without an \"event\" key");
    const std::string& event = v.at("event").as_string();
    if (event == "cell") {
      CellEvent c;
      c.index = static_cast<std::size_t>(v.at("index").as_number());
      require(c.index < feed.total_cells, context, "cell index out of range");
      c.worker = static_cast<int>(v.at("worker").as_number());
      c.attempt = static_cast<int>(v.at("attempt").as_number());
      c.wall_s = v.at("wall_s").as_number();
      c.peak_rss_bytes =
          static_cast<std::int64_t>(v.at("peak_rss_bytes").as_number());
      feed.cells.push_back(c);
    } else if (event == "retry") {
      feed.faults.push_back(
          "cell " +
          std::to_string(static_cast<long long>(v.at("index").as_number())) +
          " retry (attempt " +
          std::to_string(static_cast<long long>(v.at("attempt").as_number())) +
          "): " + v.at("error").as_string());
    } else if (event == "poison") {
      feed.faults.push_back(
          "cell " +
          std::to_string(static_cast<long long>(v.at("index").as_number())) +
          " POISONED after " +
          std::to_string(
              static_cast<long long>(v.at("attempts").as_number())) +
          " attempts: " + v.at("error").as_string());
    } else if (event == "progress") {
      (void)v.at("completed").as_number();
      (void)v.at("total").as_number();
      (void)v.at("elapsed_s").as_number();
      ++feed.progress_events;
    } else if (event == "worker_summary") {
      (void)v.at("worker").as_number();
      require(v.at("registry").has("counters"), context,
              "worker_summary registry without counters");
      feed.worker_registries.push_back(v.at("registry"));
    } else if (event == "summary") {
      (void)v.at("completed").as_number();
      (void)v.at("total").as_number();
      (void)v.at("elapsed_s").as_number();
      require(v.at("registry").has("counters"), context,
              "summary registry without counters");
      feed.have_summary = true;
      feed.summary = v;
    } else {
      require(false, context, "unknown event \"" + event + "\"");
    }
  }
  return feed;
}

std::string format_bytes(std::int64_t bytes) {
  if (bytes >= 1024 * 1024) {
    return sprout::format_double(static_cast<double>(bytes) / (1024.0 * 1024.0),
                                 1) +
           " MiB";
  }
  return sprout::format_double(static_cast<double>(bytes) / 1024.0, 0) +
         " KiB";
}

void print_slowest_cells(const std::vector<CellEvent>& cells,
                         std::size_t limit) {
  std::vector<CellEvent> sorted = cells;
  std::sort(sorted.begin(), sorted.end(),
            [](const CellEvent& a, const CellEvent& b) {
              if (a.wall_s != b.wall_s) return a.wall_s > b.wall_s;
              return a.index < b.index;
            });
  if (sorted.size() > limit) sorted.resize(limit);
  std::cout << "slowest cells:\n";
  TableWriter t({"Cell", "Worker", "Attempt", "Wall s", "Peak RSS"});
  for (const CellEvent& c : sorted) {
    t.row()
        .cell(static_cast<std::int64_t>(c.index))
        .cell(static_cast<std::int64_t>(c.worker))
        .cell(static_cast<std::int64_t>(c.attempt))
        .cell(c.wall_s, 3)
        .cell(format_bytes(c.peak_rss_bytes));
  }
  t.print(std::cout);
}

void print_worker_utilization(const MetricsFeed& feed) {
  int max_worker = -1;
  for (const CellEvent& c : feed.cells) max_worker = std::max(max_worker, c.worker);
  if (max_worker < 0) return;
  std::vector<std::size_t> cells(static_cast<std::size_t>(max_worker) + 1, 0);
  std::vector<double> wall(cells.size(), 0.0);
  double total_wall = 0.0;
  for (const CellEvent& c : feed.cells) {
    ++cells[static_cast<std::size_t>(c.worker)];
    wall[static_cast<std::size_t>(c.worker)] += c.wall_s;
    total_wall += c.wall_s;
  }
  std::cout << "\nworker utilization:\n";
  TableWriter t({"Worker", "Cells", "Busy s", "Share %"});
  for (std::size_t w = 0; w < cells.size(); ++w) {
    t.row()
        .cell(static_cast<std::int64_t>(w))
        .cell(static_cast<std::int64_t>(cells[w]))
        .cell(wall[w], 3)
        .cell(total_wall > 0.0 ? 100.0 * wall[w] / total_wall : 0.0, 1);
  }
  t.print(std::cout);
}

std::int64_t registry_counter(const JsonValue& registry,
                              const std::string& name) {
  const JsonValue& counters = registry.at("counters");
  if (!counters.has(name)) return 0;
  return static_cast<std::int64_t>(counters.at(name).as_number());
}

// A counter summed over the coordinator's summary registry and every
// worker's parting snapshot — the whole process tree's tally.
std::int64_t feed_counter(const MetricsFeed& feed, const std::string& name) {
  std::int64_t total = feed.have_summary
                           ? registry_counter(feed.summary.at("registry"), name)
                           : 0;
  for (const JsonValue& r : feed.worker_registries) {
    total += registry_counter(r, name);
  }
  return total;
}

void print_registry_tables(const MetricsFeed& feed) {
  std::cout << "\ncache efficiency:\n";
  TableWriter caches({"Cache", "Hits", "Misses", "Hit %"});
  for (const char* cache :
       {"cache.traces", "cache.forecast_tables", "cache.transition_matrix"}) {
    const std::int64_t hits = feed_counter(feed, std::string(cache) + ".hits");
    const std::int64_t misses =
        feed_counter(feed, std::string(cache) + ".misses");
    const std::int64_t lookups = hits + misses;
    caches.row()
        .cell(cache)
        .cell(hits)
        .cell(misses)
        .cell(lookups > 0
                  ? 100.0 * static_cast<double>(hits) /
                        static_cast<double>(lookups)
                  : 0.0,
              1);
  }
  caches.print(std::cout);

  const std::int64_t flows = feed_counter(feed, "batcher.batched_flows");
  const std::int64_t passes = feed_counter(feed, "batcher.batch_passes");
  if (passes > 0) {
    std::cout << "\nbatcher utilization:\n";
    TableWriter batcher({"Batched flows", "Passes", "Flows/pass"});
    batcher.row().cell(flows).cell(passes).cell(
        static_cast<double>(flows) / static_cast<double>(passes), 2);
    batcher.print(std::cout);
  }
}

int cmd_metrics(const std::string& path) {
  const MetricsFeed feed = parse_metrics(path);
  std::cout << "sweep " << feed.sweep_fingerprint << ": " << feed.cells.size()
            << " cell completions recorded (grid of " << feed.total_cells
            << ")\n";
  if (!feed.cells.empty()) {
    print_slowest_cells(feed.cells, 10);
    print_worker_utilization(feed);
  }
  if (!feed.faults.empty()) {
    std::cout << "\nfaults:\n";
    for (const std::string& f : feed.faults) std::cout << "  " << f << "\n";
  }
  if (feed.have_summary) {
    print_registry_tables(feed);
    std::cout << "\ncompleted " << feed.summary.at("completed").as_number()
              << "/" << feed.summary.at("total").as_number() << " in "
              << sprout::format_double(
                     feed.summary.at("elapsed_s").as_number(), 2)
              << " s\n";
  }
  return 0;
}

// --- merged-sweep runtime view ------------------------------------------

int cmd_sweep(const std::string& path) {
  const JsonValue doc = JsonValue::parse(read_file(path));
  std::vector<CellEvent> cells;
  for (const JsonValue& cell : doc.at("cells").as_array()) {
    const JsonValue& result = cell.at("result");
    if (!result.has("runtime")) continue;
    const JsonValue& rt = result.at("runtime");
    CellEvent c;
    c.index = static_cast<std::size_t>(cell.at("index").as_number());
    c.attempt = static_cast<int>(rt.at("attempt").as_number());
    c.wall_s = rt.at("wall_s").as_number();
    c.peak_rss_bytes =
        static_cast<std::int64_t>(rt.at("peak_rss_bytes").as_number());
    cells.push_back(c);
  }
  const std::size_t total = doc.at("cells").as_array().size();
  std::cout << path << ": " << cells.size() << "/" << total
            << " cells carry runtime stamps\n";
  if (cells.empty()) return 0;
  double wall = 0.0;
  std::int64_t retried = 0;
  for (const CellEvent& c : cells) {
    wall += c.wall_s;
    retried += c.attempt > 1 ? 1 : 0;
  }
  std::vector<CellEvent> sorted = cells;
  std::sort(sorted.begin(), sorted.end(),
            [](const CellEvent& a, const CellEvent& b) {
              if (a.wall_s != b.wall_s) return a.wall_s > b.wall_s;
              return a.index < b.index;
            });
  if (sorted.size() > 10) sorted.resize(10);
  std::cout << "slowest cells:\n";
  TableWriter t({"Cell", "Attempt", "Wall s", "Peak RSS"});
  for (const CellEvent& c : sorted) {
    t.row()
        .cell(static_cast<std::int64_t>(c.index))
        .cell(static_cast<std::int64_t>(c.attempt))
        .cell(c.wall_s, 3)
        .cell(format_bytes(c.peak_rss_bytes));
  }
  t.print(std::cout);
  std::cout << "total cell wall time " << sprout::format_double(wall, 2)
            << " s; " << retried << " cells needed a retry\n";
  return 0;
}

// --- validators ----------------------------------------------------------

int cmd_validate_metrics(const std::string& path) {
  const MetricsFeed feed = parse_metrics(path);
  require(feed.have_summary, path, "no summary event (run did not finish?)");
  std::cout << path << ": ok (" << feed.cells.size() << " cell events, "
            << feed.progress_events << " progress events)\n";
  return 0;
}

int cmd_validate_trace(const std::string& path) {
  const JsonValue doc = JsonValue::parse(read_file(path));
  const std::vector<JsonValue>& events = doc.at("traceEvents").as_array();
  std::size_t spans = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const std::string context = path + ": traceEvents[" + std::to_string(i) +
                                "]";
    const JsonValue& e = events[i];
    require(!e.at("name").as_string().empty(), context, "empty name");
    (void)e.at("cat").as_string();
    (void)e.at("pid").as_number();
    (void)e.at("tid").as_number();
    require(e.at("ts").as_number() >= 0.0, context, "negative timestamp");
    const std::string& ph = e.at("ph").as_string();
    if (ph == "X") {
      require(e.at("dur").as_number() >= 0.0, context, "negative duration");
      ++spans;
    } else {
      require(ph == "i", context, "unknown phase \"" + ph + "\"");
    }
  }
  std::cout << path << ": ok (" << events.size() << " events, " << spans
            << " spans)\n";
  return 0;
}

// --- strip-runtime -------------------------------------------------------

// Removes every `, "runtime": {...}` member the shard writer emits.  The
// writer produces the member in exactly one shape (flat object, no nested
// braces), so a textual erase reproduces the untelemetered byte stream —
// which is the point: the output must byte-diff clean against a run that
// never recorded runtime, and a parse/re-serialize round trip could not
// promise that.
int cmd_strip_runtime(const std::string& in_path,
                      const std::string& out_path) {
  std::string text = read_file(in_path);
  (void)JsonValue::parse(text);  // refuse to "fix" a damaged file
  const std::string needle = ", \"runtime\": {";
  std::size_t stripped = 0;
  std::size_t at = 0;
  while ((at = text.find(needle, at)) != std::string::npos) {
    const std::size_t close = text.find('}', at + needle.size());
    require(close != std::string::npos, in_path,
            "unterminated runtime object");
    text.erase(at, close + 1 - at);
    ++stripped;
  }
  (void)JsonValue::parse(text);  // the erase must leave valid JSON
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write " + out_path);
  out << text;
  out.flush();
  if (!out) throw std::runtime_error("write to " + out_path + " failed");
  std::cout << in_path << " -> " << out_path << " (" << stripped
            << " runtime stamps removed)\n";
  return 0;
}

int usage() {
  std::cerr <<
      "usage:\n"
      "  obs_report metrics          METRICS.jsonl\n"
      "  obs_report sweep            SWEEP.json\n"
      "  obs_report validate-metrics METRICS.jsonl\n"
      "  obs_report validate-trace   TRACE.json\n"
      "  obs_report strip-runtime    IN.json OUT.json\n"
      "exit codes: 0 ok, 1 invalid input, 2 usage\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  try {
    if (command == "metrics" && argc == 3) return cmd_metrics(argv[2]);
    if (command == "sweep" && argc == 3) return cmd_sweep(argv[2]);
    if (command == "validate-metrics" && argc == 3) {
      return cmd_validate_metrics(argv[2]);
    }
    if (command == "validate-trace" && argc == 3) {
      return cmd_validate_trace(argv[2]);
    }
    if (command == "strip-runtime" && argc == 4) {
      return cmd_strip_runtime(argv[2], argv[3]);
    }
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "obs_report: " << e.what() << "\n";
    return 1;
  }
}

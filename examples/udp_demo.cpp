// Real-time Sprout over actual UDP sockets (loopback).
//
//   $ ./udp_demo [seconds]
//
// Runs a bulk-transfer Sprout session between two endpoints on 127.0.0.1
// inside one event loop — the same core protocol code the simulator
// validates, ticking on real wall-clock timers and moving real datagrams.
// Prints a once-per-second report of the receiver's inferred link rate and
// the payload throughput achieved.
#include <cstdlib>
#include <functional>
#include <iostream>

#include "net/event_loop.h"
#include "net/udp_endpoint.h"

int main(int argc, char** argv) {
  using namespace sprout;
  using namespace sprout::net;

  const int seconds = argc > 1 ? std::atoi(argv[1]) : 5;

  EventLoop loop;
  SproutParams params;
  BulkDataSource bulk;
  SproutUdpEndpoint sender_ep(loop, params, &bulk);
  SproutUdpEndpoint receiver_ep(loop, params, nullptr);
  sender_ep.set_peer(SocketAddress::v4("127.0.0.1", receiver_ep.local_port()));
  receiver_ep.set_peer(SocketAddress::v4("127.0.0.1", sender_ep.local_port()));

  std::cout << "Sprout over UDP loopback: " << sender_ep.local_port()
            << " -> " << receiver_ep.local_port() << " for " << seconds
            << " s\n\n";

  sender_ep.start();
  receiver_ep.start();

  ByteCount last_bytes = 0;
  int report = 0;
  std::function<void()> report_fn = [&] {
    ++report;
    const ByteCount bytes = receiver_ep.payload_bytes_received();
    std::cout << "t=" << report << "s  payload throughput "
              << kbps(bytes - last_bytes, sec(1)) << " kbit/s"
              << "  (receiver estimates link at "
              << receiver_ep.receiver().estimated_rate_pps()
              << " pkt/s; datagrams rx " << receiver_ep.datagrams_received()
              << ")\n";
    last_bytes = bytes;
    if (report < seconds) loop.schedule_after(sec(1), report_fn);
  };
  loop.schedule_after(sec(1), report_fn);

  loop.run_for(sec(seconds) + msec(50));

  std::cout << "\nTotal payload delivered: "
            << receiver_ep.payload_bytes_received() / 1000 << " kB  ("
            << sender_ep.datagrams_sent() << " datagrams sent, "
            << receiver_ep.malformed_datagrams() << " malformed)\n"
            << "The receiver's rate estimate pins at the model's "
            << params.max_rate_pps
            << " pkt/s grid ceiling (it is designed\nfor ~11 Mbit/s cellular "
               "links); actual loopback throughput can run higher because\n"
               "the real queue drains faster than the cautious forecast and "
               "every feedback packet\nre-anchors the sender's "
               "queue-occupancy estimate at empty.\n";
  return 0;
}

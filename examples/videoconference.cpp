// Compare every scheme for an interactive videoconference on one link.
//
//   $ ./videoconference [network] [downlink|uplink] [seconds]
//
// e.g.  ./videoconference "T-Mobile 3G (UMTS)" uplink 120
//
// Prints the Figure-7-style row for each scheme on the chosen link, ranked
// by self-inflicted delay — the metric that decides whether a call is
// usable.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "runner/scenario.h"
#include "runner/schemes.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace sprout;

  const std::string network = argc > 1 ? argv[1] : "Verizon LTE";
  const LinkDirection direction =
      argc > 2 && std::string(argv[2]) == "uplink" ? LinkDirection::kUplink
                                                   : LinkDirection::kDownlink;
  const int seconds = argc > 3 ? std::atoi(argv[3]) : 120;

  ScenarioSpec config;
  config.link = LinkSpec::preset(network, direction);
  config.run_time = sec(seconds);
  config.warmup = sec(seconds / 4);

  std::cout << "Interactive-use comparison on " << config.link.name()
            << " (synthetic), " << seconds << " s\n\n";

  struct Row {
    SchemeId scheme;
    ScenarioResult result;
  };
  std::vector<Row> rows;
  for (const SchemeId scheme : figure7_schemes()) {
    config.scheme = scheme;
    rows.push_back({scheme, run_scenario(config)});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.result.self_inflicted_delay_ms() <
           b.result.self_inflicted_delay_ms();
  });

  TableWriter t({"Rank", "Scheme", "Self-inflicted delay (ms)",
                 "Throughput (kbps)", "Utilization"});
  std::int64_t rank = 1;
  for (const Row& row : rows) {
    t.row()
        .cell(rank++)
        .cell(to_string(row.scheme))
        .cell(row.result.self_inflicted_delay_ms(), 0)
        .cell(row.result.throughput_kbps(), 0)
        .cell(row.result.utilization(), 2);
  }
  t.print(std::cout);
  std::cout << "\nFor a usable call you want the top of this table to also "
               "carry enough bits for video\n(paper §5.2: Sprout should rank "
               "first or nearly so on delay at competitive throughput).\n";
  return 0;
}

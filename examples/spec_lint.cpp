// spec_lint — validate and pretty-expand a declarative experiment spec.
//
// The spec subsystem's reader is strict and path-aware, so linting is just
// parsing: a clean exit means every cell of the expanded grid passed the
// same validation the runner applies, and the printed fingerprint is the
// exact content address `sweep_shard run/merge` will stamp on results.
//
//   spec_lint FILE              summary: cells, cost, strategy, fingerprint
//   spec_lint FILE --expand     per-cell table of the expanded grid
//   spec_lint FILE --shards N   shard plan preview under the spec's strategy
//   spec_lint FILE --wall-clock [--threads T]
//                               wall-clock estimate: per-cell estimated_cost
//                               (Cubic-equivalent seconds) packed onto T
//                               threads (default: all cores) by the same
//                               greedy LPT rule the shard planner uses, the
//                               resulting makespan divided by a rate
//                               MEASURED here by timing one short Cubic
//                               cell — so one dominant cell shows up as the
//                               floor it really is instead of being
//                               averaged away
//
// Exit codes: 0 valid, 1 invalid (the SpecError diagnostic goes to
// stderr), 2 usage.
#include <algorithm>
#include <chrono>
#include <climits>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "spec/grid.h"
#include "spec/plan.h"
#include "util/table.h"

namespace {

using namespace sprout;

// One line describing a cell's flows: "Sprout" for a single flow,
// "Sprout + Cubic" for a heterogeneous queue, "4 x Vegas" for a
// homogeneous fleet, "Cubic + Skype (tunnel)" for tunnel contention.
std::string flows_summary(const ScenarioSpec& cell) {
  switch (cell.topology.kind) {
    case TopologySpec::Kind::kSingleFlow:
      return to_string(cell.scheme);
    case TopologySpec::Kind::kSharedQueue: {
      if (cell.topology.flows.empty()) {
        return std::to_string(cell.topology.num_flows) + " x " +
               to_string(cell.scheme);
      }
      std::string out;
      for (const FlowSpec& f : cell.topology.flows) {
        if (!out.empty()) out += " + ";
        out += to_string(f.scheme);
      }
      return out;
    }
    case TopologySpec::Kind::kTunnelContention:
      return cell.topology.via_tunnel ? "Cubic + Skype (tunnel)"
                                      : "Cubic + Skype (direct)";
  }
  return "?";
}

// Measures how many Cubic-equivalent simulated seconds one thread of THIS
// machine retires per wall-clock second: one short Cubic cell, timed on
// its second run so trace generation and table warmup stay out of the
// number.  estimated_cost is in exactly these units (simulated seconds ×
// scheme_cost_weight, Cubic ≡ 1), so cost / rate is a wall-clock estimate.
// Strict positive-int flag parse.  std::atoi reads "4x" as 4, parses "-2"
// happily, and overflows silently — a zero/negative or garbage count here
// used to flow straight into the makespan bound as a worker count.  A bad
// value exits 2 with a path-style diagnostic instead.
int parse_positive_int(const std::string& flag, const std::string& text) {
  std::size_t pos = 0;
  long v = 0;
  try {
    v = std::stol(text, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  if (pos != text.size() || v < 1 || v > INT_MAX) {
    std::cerr << "spec_lint: " << flag
              << ": must be a positive integer, got \"" << text << "\"\n";
    std::exit(2);
  }
  return static_cast<int>(v);
}

double measure_cubic_seconds_per_wall_second() {
  ScenarioSpec probe;
  probe.scheme = SchemeId::kCubic;
  probe.link = LinkSpec::preset("Verizon LTE", LinkDirection::kDownlink);
  probe.run_time = sec(4);
  probe.warmup = sec(1);
  ScenarioCache cache;
  (void)run_scenario(probe, &cache);  // warm the trace cache
  const auto start = std::chrono::steady_clock::now();
  (void)run_scenario(probe, &cache);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return to_seconds(probe.run_time) / std::max(wall, 1e-9);
}

}  // namespace

int main(int argc, char** argv) {
  constexpr const char* kUsage =
      "usage: spec_lint FILE [--expand] [--shards N] [--wall-clock] "
      "[--threads T]\n";
  std::string path;
  bool expand = false;
  bool wall_clock = false;
  int shards = 0;
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--expand") {
      expand = true;
    } else if (arg == "--wall-clock") {
      wall_clock = true;
    } else if (arg == "--shards" && i + 1 < argc) {
      shards = parse_positive_int(arg, argv[++i]);
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = parse_positive_int(arg, argv[++i]);
    } else if (arg.rfind("--", 0) == 0 || !path.empty()) {
      std::cerr << kUsage;
      return 2;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    std::cerr << kUsage;
    return 2;
  }

  spec::ExperimentSpec experiment;
  try {
    experiment = spec::parse_experiment_file(path);
  } catch (const std::exception& e) {
    std::cerr << "spec_lint: " << e.what() << "\n";
    return 1;
  }

  double total_cost = 0.0;
  for (const ScenarioSpec& cell : experiment.sweep.cells) {
    total_cost += estimated_cost(cell);
  }
  std::cout << "spec:        " << path << "\n"
            << "name:        "
            << (experiment.name.empty() ? "(unnamed)" : experiment.name)
            << "\n"
            << "cells:       " << experiment.sweep.cells.size() << "\n"
            << "est. cost:   " << format_double(total_cost, 0)
            << " Cubic-equivalent seconds\n"
            << "strategy:    " << spec::to_string(experiment.strategy) << "\n"
            << "base seed:   "
            << (experiment.sweep.base_seed.has_value()
                    ? std::to_string(*experiment.sweep.base_seed)
                    : std::string("(per-cell seeds)"))
            << "\n"
            << "fingerprint: " << sweep_fingerprint(experiment.sweep) << "\n";

  if (wall_clock) {
    const double rate = measure_cubic_seconds_per_wall_second();
    if (threads < 1) {
      threads = static_cast<int>(std::thread::hardware_concurrency());
      if (threads < 1) threads = 1;
    }
    const double serial_s = total_cost / rate;
    // Pack cells onto threads the way a real run does — greedy LPT over
    // estimated_cost — and report the resulting makespan.  Cells cannot be
    // split, so total/threads is a fantasy whenever one expensive cell
    // (a Sprout-Adaptive grid point, say) towers over the rest; the LPT
    // makespan keeps that cell visible as the floor it is.
    std::vector<double> costs;
    for (const ScenarioSpec& cell : experiment.sweep.cells) {
      costs.push_back(estimated_cost(cell));
    }
    std::sort(costs.begin(), costs.end(), std::greater<>());
    std::vector<double> load(static_cast<std::size_t>(threads), 0.0);
    for (const double c : costs) {
      *std::min_element(load.begin(), load.end()) += c;
    }
    const double makespan =
        load.empty() ? 0.0 : *std::max_element(load.begin(), load.end());
    std::cout << "wall-clock:  ~" << format_double(serial_s, 1)
              << " s single-thread, ~" << format_double(makespan / rate, 1)
              << " s on " << threads
              << " threads (LPT makespan; measured " << format_double(rate, 0)
              << " Cubic-s/s per thread)\n";
  }

  if (expand) {
    std::cout << "\n";
    TableWriter t({"Cell", "Flows", "Link", "Run (s)", "Est. cost",
                   "Fingerprint"});
    for (std::size_t i = 0; i < experiment.sweep.cells.size(); ++i) {
      const ScenarioSpec& cell = experiment.sweep.cells[i];
      t.row()
          .cell(static_cast<std::int64_t>(i))
          .cell(flows_summary(cell))
          .cell(cell.link.name())
          .cell(to_seconds(cell.run_time), 0)
          .cell(estimated_cost(cell), 0)
          .cell(std::to_string(scenario_fingerprint(cell)));
    }
    t.print(std::cout);
  }

  if (shards > 0) {
    std::cout << "\n";
    TableWriter t({"Shard", "Cells", "Est. cost"});
    for (int s = 0; s < shards; ++s) {
      const std::vector<std::size_t> indices = spec::plan_shard_indices(
          experiment.sweep, experiment.strategy, s, shards);
      double cost = 0.0;
      std::string cells;
      for (const std::size_t i : indices) {
        cost += estimated_cost(experiment.sweep.cells[i]);
        if (!cells.empty()) cells += ",";
        cells += std::to_string(i);
      }
      t.row()
          .cell(std::to_string(s + 1) + "/" + std::to_string(shards))
          .cell(cells.empty() ? "(none)" : cells)
          .cell(cost, 0);
    }
    t.print(std::cout);
  }
  return 0;
}

// spec_lint — validate and pretty-expand a declarative experiment spec.
//
// The spec subsystem's reader is strict and path-aware, so linting is just
// parsing: a clean exit means every cell of the expanded grid passed the
// same validation the runner applies, and the printed fingerprint is the
// exact content address `sweep_shard run/merge` will stamp on results.
//
//   spec_lint FILE              summary: cells, cost, strategy, fingerprint
//   spec_lint FILE --expand     per-cell table of the expanded grid
//   spec_lint FILE --shards N   shard plan preview under the spec's strategy
//
// Exit codes: 0 valid, 1 invalid (the SpecError diagnostic goes to
// stderr), 2 usage.
#include <cstring>
#include <iostream>
#include <string>

#include "spec/grid.h"
#include "spec/plan.h"
#include "util/table.h"

namespace {

using namespace sprout;

// One line describing a cell's flows: "Sprout" for a single flow,
// "Sprout + Cubic" for a heterogeneous queue, "4 x Vegas" for a
// homogeneous fleet, "Cubic + Skype (tunnel)" for tunnel contention.
std::string flows_summary(const ScenarioSpec& cell) {
  switch (cell.topology.kind) {
    case TopologySpec::Kind::kSingleFlow:
      return to_string(cell.scheme);
    case TopologySpec::Kind::kSharedQueue: {
      if (cell.topology.flows.empty()) {
        return std::to_string(cell.topology.num_flows) + " x " +
               to_string(cell.scheme);
      }
      std::string out;
      for (const FlowSpec& f : cell.topology.flows) {
        if (!out.empty()) out += " + ";
        out += to_string(f.scheme);
      }
      return out;
    }
    case TopologySpec::Kind::kTunnelContention:
      return cell.topology.via_tunnel ? "Cubic + Skype (tunnel)"
                                      : "Cubic + Skype (direct)";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool expand = false;
  int shards = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--expand") {
      expand = true;
    } else if (arg == "--shards" && i + 1 < argc) {
      shards = std::atoi(argv[++i]);
      if (shards < 1) {
        std::cerr << "spec_lint: --shards wants a positive count\n";
        return 2;
      }
    } else if (arg.rfind("--", 0) == 0 || !path.empty()) {
      std::cerr << "usage: spec_lint FILE [--expand] [--shards N]\n";
      return 2;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    std::cerr << "usage: spec_lint FILE [--expand] [--shards N]\n";
    return 2;
  }

  spec::ExperimentSpec experiment;
  try {
    experiment = spec::parse_experiment_file(path);
  } catch (const std::exception& e) {
    std::cerr << "spec_lint: " << e.what() << "\n";
    return 1;
  }

  double total_cost = 0.0;
  for (const ScenarioSpec& cell : experiment.sweep.cells) {
    total_cost += estimated_cost(cell);
  }
  std::cout << "spec:        " << path << "\n"
            << "name:        "
            << (experiment.name.empty() ? "(unnamed)" : experiment.name)
            << "\n"
            << "cells:       " << experiment.sweep.cells.size() << "\n"
            << "est. cost:   " << format_double(total_cost, 0)
            << " Cubic-equivalent seconds\n"
            << "strategy:    " << spec::to_string(experiment.strategy) << "\n"
            << "base seed:   "
            << (experiment.sweep.base_seed.has_value()
                    ? std::to_string(*experiment.sweep.base_seed)
                    : std::string("(per-cell seeds)"))
            << "\n"
            << "fingerprint: " << sweep_fingerprint(experiment.sweep) << "\n";

  if (expand) {
    std::cout << "\n";
    TableWriter t({"Cell", "Flows", "Link", "Run (s)", "Est. cost",
                   "Fingerprint"});
    for (std::size_t i = 0; i < experiment.sweep.cells.size(); ++i) {
      const ScenarioSpec& cell = experiment.sweep.cells[i];
      t.row()
          .cell(static_cast<std::int64_t>(i))
          .cell(flows_summary(cell))
          .cell(cell.link.name())
          .cell(to_seconds(cell.run_time), 0)
          .cell(estimated_cost(cell), 0)
          .cell(std::to_string(scenario_fingerprint(cell)));
    }
    t.print(std::cout);
  }

  if (shards > 0) {
    std::cout << "\n";
    TableWriter t({"Shard", "Cells", "Est. cost"});
    for (int s = 0; s < shards; ++s) {
      const std::vector<std::size_t> indices = spec::plan_shard_indices(
          experiment.sweep, experiment.strategy, s, shards);
      double cost = 0.0;
      std::string cells;
      for (const std::size_t i : indices) {
        cost += estimated_cost(experiment.sweep.cells[i]);
        if (!cells.empty()) cells += ",";
        cells += std::to_string(i);
      }
      t.row()
          .cell(std::to_string(s + 1) + "/" + std::to_string(shards))
          .cell(cells.empty() ? "(none)" : cells)
          .cell(cost, 0);
    }
    t.print(std::cout);
  }
  return 0;
}

// Quickstart: run Sprout over an emulated cellular link and print the
// paper's two headline metrics (throughput and 95% self-inflicted delay),
// next to TCP Cubic on the same link.
//
//   $ ./quickstart [seconds]
//
// This is the smallest end-to-end use of the library: pick a link preset,
// fill in a ScenarioSpec, call run_scenario().
#include <cstdlib>
#include <iostream>

#include "runner/scenario.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace sprout;

  const int seconds = argc > 1 ? std::atoi(argv[1]) : 120;

  ScenarioSpec config;
  config.link = LinkSpec::preset("Verizon LTE", LinkDirection::kDownlink);
  config.run_time = sec(seconds);
  config.warmup = sec(std::min(60, seconds / 2));

  std::cout << "Link: " << config.link.name() << " (synthetic), "
            << to_seconds(config.run_time) << " s run, metrics skip first "
            << to_seconds(config.warmup) << " s\n\n";

  TableWriter table({"Scheme", "Throughput (kbps)", "Self-inflicted delay (ms)",
                     "95% delay (ms)", "Utilization"});
  for (const SchemeId scheme :
       {SchemeId::kSprout, SchemeId::kSproutEwma, SchemeId::kCubic,
        SchemeId::kCubicCodel}) {
    config.scheme = scheme;
    const ScenarioResult r = run_scenario(config);
    table.row()
        .cell(to_string(scheme))
        .cell(r.throughput_kbps(), 0)
        .cell(r.self_inflicted_delay_ms(), 0)
        .cell(r.delay95_ms(), 0)
        .cell(r.utilization(), 2);
  }
  table.print(std::cout);
  std::cout << "\nHigher throughput and lower delay are better; Sprout should"
               "\ndominate Cubic on delay at comparable throughput (paper §5.2).\n";
  return 0;
}

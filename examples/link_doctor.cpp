// Diagnose a cellular link trace: the analysis toolkit as a CLI.
//
//   $ ./link_doctor                      # synthetic Verizon LTE downlink
//   $ ./link_doctor capture.trace        # your own mahimahi-format capture
//
// Prints the paper's §2 characterization for the trace: average and
// windowed rates, the §2.2 dynamic range, outage catalog, the Figure 2
// interarrival summary (fraction within 20 ms, power-law tail), rate
// autocorrelation (how fast link knowledge decays — what Sprout's σ
// encodes), and the §3.1 packet-pair verdict.
#include <iostream>
#include <string>

#include "trace/analysis.h"
#include "trace/packet_pair.h"
#include "trace/presets.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace sprout;

  Trace trace;
  std::string name;
  if (argc > 1) {
    name = argv[1];
    try {
      trace = read_trace_file(name);
    } catch (const std::exception& e) {
      std::cerr << "cannot read " << name << ": " << e.what() << "\n";
      return 1;
    }
  } else {
    name = "synthetic Verizon LTE downlink (300 s)";
    trace = preset_trace(
        find_link_preset("Verizon LTE", LinkDirection::kDownlink), sec(300));
  }

  std::cout << "=== link doctor: " << name << " ===\n\n";
  std::cout << "duration " << to_seconds(trace.duration()) << " s, "
            << trace.size() << " delivery opportunities, average "
            << trace.average_rate_kbps() << " kbit/s\n\n";

  // §2.2 rate variability.
  std::cout << "--- rate variability ---\n";
  for (const auto window : {msec(100), sec(1), sec(10)}) {
    std::cout << "  p95/p5 dynamic range over " << to_millis(window)
              << " ms windows: " << rate_dynamic_range(trace, window)
              << "x\n";
  }

  // Outages (§2.1 "occasional multi-second outages").
  const auto outages = find_outages(trace, msec(500));
  std::cout << "\n--- outages (gaps >= 500 ms): " << outages.size()
            << " ---\n";
  int shown = 0;
  for (const Outage& o : outages) {
    if (++shown > 5) {
      std::cout << "  ... (" << outages.size() - 5 << " more)\n";
      break;
    }
    std::cout << "  at " << to_seconds(o.start.time_since_epoch())
              << " s, lasting " << to_millis(o.duration) << " ms\n";
  }

  // Figure 2.
  const InterarrivalSummary s = summarize_interarrivals(trace);
  std::cout << "\n--- interarrival distribution (Figure 2) ---\n"
            << "  " << 100.0 * s.fraction_within_20ms
            << "% of interarrivals within 20 ms (paper: 99.99%)\n"
            << "  median " << s.p50_ms << " ms, p99 " << s.p99_ms
            << " ms, max " << s.max_ms << " ms\n"
            << "  power-law tail exponent " << s.tail_exponent
            << " (paper: -3.27)\n";

  // Rate memory.
  const auto acf = rate_autocorrelation(trace, msec(200), 25);
  std::cout << "\n--- rate autocorrelation (200 ms windows) ---\n  ";
  for (std::size_t lag = 0; lag < acf.size(); lag += 5) {
    std::cout << "lag " << lag * 200 << "ms: " << acf[lag] << "   ";
  }
  std::cout << "\n  (decay speed is what Sprout's sigma encodes: fast decay "
               "= be cautious)\n";

  // §3.1 packet-pair verdict.
  const auto estimates = packet_pair_estimates(trace);
  const EstimatorQuality q =
      evaluate_estimates(estimates, trace.average_rate_kbps());
  std::cout << "\n--- packet-pair estimator verdict (§3.1) ---\n"
            << "  raw estimates within ±25% of the average rate: "
            << 100.0 * q.fraction_within_25pct << "%\n"
            << "  p10 " << q.p10_kbps << " / p90 " << q.p90_kbps
            << " kbit/s (spread "
            << (q.p10_kbps > 0 ? q.p90_kbps / q.p10_kbps : 0.0) << "x)\n"
            << (q.fraction_within_25pct < 0.5
                    ? "  => packet-pair cannot read this link; use "
                      "interval-count inference (Sprout §3)\n"
                    : "  => this link is near-isochronous; packet-pair "
                      "would work here\n");
  return 0;
}

// timeline_report — render, export and validate flight-recorder timelines.
//
// Sweeps run with record_timeline (or the sweep CLIs' --timeline flag)
// stamp each flow with a per-bin "timeline": forecast vs. realized
// capacity, achieved throughput, queue depth, drops, and per-bin delay.
// This tool is the read side:
//
//   timeline_report chart             SWEEP.json [--cell I] [--flow F]
//   timeline_report export            SWEEP.json --out PATH
//                                     [--format jsonl|csv] [--cell I]
//                                     [--flow F]
//   timeline_report export-trace      SWEEP.json --out TRACE.json
//                                     [--merge TRACE_IN.json]
//   timeline_report validate-timeline SWEEP.json
//   timeline_report strip-timeline    IN.json OUT.json
//
// `chart` draws the paper's Figure-6-style view in the terminal
// (util/ascii_plot.h): realized capacity bars with the cautious forecast
// marked on the same scale, then the per-bin delay.  `export` flattens
// timelines to JSONL or CSV for external plotting.  `export-trace` emits
// Chrome counter tracks ("ph": "C" — chrome://tracing / ui.perfetto.dev)
// and can merge them into an orchestrator --trace-out file so one trace
// shows worker spans above per-flow rate/queue/delay counters.
// `validate-timeline` is the CI schema gate: path-aware errors, non-zero
// exit on the first violation.  `strip-timeline` removes every
// `"timeline"` member textually so a timeline-on run byte-diffs clean
// against a timeline-off run (the timeline-smoke CI job's identity
// check), exactly as `obs_report strip-runtime` does for runtime stamps.
//
// Exit codes: 0 ok, 1 invalid input, 2 usage.
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "util/ascii_plot.h"
#include "util/table.h"

namespace {

using sprout::AsciiPlotOptions;
using sprout::JsonValue;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

template <typename WriteFn>
void write_file(const std::string& path, WriteFn&& write) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write " + path);
  write(out);
  out.flush();
  if (!out) throw std::runtime_error("write to " + path + " failed");
}

void require(bool ok, const std::string& context, const std::string& what) {
  if (!ok) throw std::runtime_error(context + ": " + what);
}

// --- timeline model ------------------------------------------------------

struct Point {
  double time_s = 0.0;
  double forecast_kbps = 0.0;
  double capacity_kbps = 0.0;
  double throughput_kbps = 0.0;
  std::int64_t queue_max_packets = 0;
  std::int64_t queue_max_bytes = 0;
  std::int64_t drops = 0;
  double mean_delay_ms = 0.0;
  double max_delay_ms = 0.0;
};

struct FlowTimeline {
  std::int64_t cell_index = 0;
  std::size_t flow_index = 0;
  std::string label;
  double bin_s = 0.0;
  std::vector<Point> points;
};

// Parses and schema-checks one "timeline" member.  Rendering, export and
// `validate-timeline` all come through here, so they cannot diverge on
// what counts as well-formed; `context` names the path to the member
// ("file: cells[3].result.flows[1].timeline") so a violation points at the
// offending value, not just the file.
std::vector<Point> parse_timeline(const JsonValue& t,
                                  const std::string& context) {
  const double bin_s = t.at("bin_s").as_number();
  const double from_s = t.at("from_s").as_number();
  require(bin_s > 0.0 && std::isfinite(bin_s), context, "bin_s must be > 0");
  require(from_s >= 0.0 && std::isfinite(from_s), context,
          "from_s must be >= 0");
  std::vector<Point> points;
  double last_time = from_s - bin_s;
  const std::vector<JsonValue>& tuples = t.at("points").as_array();
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    const std::string at = context + ".points[" + std::to_string(i) + "]";
    const std::vector<JsonValue>& tuple = tuples[i].as_array();
    require(tuple.size() == 9, at, "expected a 9-tuple, got " +
                                       std::to_string(tuple.size()) +
                                       " elements");
    Point p;
    p.time_s = tuple[0].as_number();
    p.forecast_kbps = tuple[1].as_number();
    p.capacity_kbps = tuple[2].as_number();
    p.throughput_kbps = tuple[3].as_number();
    p.queue_max_packets = static_cast<std::int64_t>(tuple[4].as_number());
    p.queue_max_bytes = static_cast<std::int64_t>(tuple[5].as_number());
    p.drops = static_cast<std::int64_t>(tuple[6].as_number());
    p.mean_delay_ms = tuple[7].as_number();
    p.max_delay_ms = tuple[8].as_number();
    require(std::isfinite(p.time_s) && p.time_s >= from_s, at,
            "time_s outside the recording window");
    require(p.time_s > last_time, at, "time_s not strictly increasing");
    last_time = p.time_s;
    require(std::isfinite(p.forecast_kbps) && p.forecast_kbps >= 0.0, at,
            "forecast_kbps must be >= 0");
    require(std::isfinite(p.capacity_kbps) && p.capacity_kbps >= 0.0, at,
            "capacity_kbps must be >= 0");
    require(std::isfinite(p.throughput_kbps) && p.throughput_kbps >= 0.0, at,
            "throughput_kbps must be >= 0");
    require(p.queue_max_packets >= 0, at, "queue_max_packets must be >= 0");
    require(p.queue_max_bytes >= 0, at, "queue_max_bytes must be >= 0");
    require(p.drops >= 0, at, "drops must be >= 0");
    require(std::isfinite(p.mean_delay_ms) && p.mean_delay_ms >= 0.0, at,
            "mean_delay_ms must be >= 0");
    require(std::isfinite(p.max_delay_ms) &&
                p.max_delay_ms >= p.mean_delay_ms,
            at, "max_delay_ms must be >= mean_delay_ms");
    points.push_back(p);
  }
  return points;
}

// Walks a sweep/shard document and collects every flow timeline.  Both
// file shapes carry "cells": [{"index": ..., "result": {...}}].
std::vector<FlowTimeline> collect_timelines(const std::string& path,
                                            const JsonValue& doc) {
  std::vector<FlowTimeline> timelines;
  const std::vector<JsonValue>& cells = doc.at("cells").as_array();
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const std::string cell_ctx = path + ": cells[" + std::to_string(c) + "]";
    const JsonValue& cell = cells[c];
    const auto index = static_cast<std::int64_t>(cell.at("index").as_number());
    const std::vector<JsonValue>& flows =
        cell.at("result").at("flows").as_array();
    for (std::size_t f = 0; f < flows.size(); ++f) {
      const JsonValue& flow = flows[f];
      if (!flow.has("timeline")) continue;
      const std::string ctx =
          cell_ctx + ".result.flows[" + std::to_string(f) + "].timeline";
      FlowTimeline t;
      t.cell_index = index;
      t.flow_index = f;
      t.label = flow.at("label").as_string();
      t.bin_s = flow.at("timeline").at("bin_s").as_number();
      t.points = parse_timeline(flow.at("timeline"), ctx);
      timelines.push_back(std::move(t));
    }
  }
  return timelines;
}

// --cell / --flow selection; defaults to the first recorded timeline.
const FlowTimeline& select_timeline(const std::vector<FlowTimeline>& all,
                                    const std::string& path,
                                    std::optional<std::int64_t> cell,
                                    std::optional<std::size_t> flow) {
  require(!all.empty(), path, "no timelines recorded (run with --timeline?)");
  for (const FlowTimeline& t : all) {
    if (cell.has_value() && t.cell_index != *cell) continue;
    if (flow.has_value() && t.flow_index != *flow) continue;
    return t;
  }
  throw std::runtime_error(
      path + ": no timeline matches the requested cell/flow");
}

// --- chart ---------------------------------------------------------------

int cmd_chart(const std::string& path, std::optional<std::int64_t> cell,
              std::optional<std::size_t> flow) {
  const JsonValue doc = JsonValue::parse(read_file(path));
  const std::vector<FlowTimeline> all = collect_timelines(path, doc);
  const FlowTimeline& t = select_timeline(all, path, cell, flow);

  std::vector<double> capacity;
  std::vector<double> forecast;
  std::vector<double> mean_delay;
  std::vector<double> max_delay;
  double peak_rate = 0.0;
  double peak_delay = 0.0;
  for (const Point& p : t.points) {
    capacity.push_back(p.capacity_kbps);
    forecast.push_back(p.forecast_kbps);
    mean_delay.push_back(p.mean_delay_ms);
    max_delay.push_back(p.max_delay_ms);
    peak_rate = std::max({peak_rate, p.capacity_kbps, p.forecast_kbps});
    peak_delay = std::max(peak_delay, p.max_delay_ms);
  }

  std::cout << path << ": cell " << t.cell_index << ", flow " << t.flow_index
            << " (" << t.label << "), " << t.points.size() << " bins of "
            << sprout::format_double(t.bin_s, 3) << " s\n";
  AsciiPlotOptions opt;
  opt.bin_s = t.bin_s;
  std::cout << "\nrealized capacity (#) vs cautious forecast (*), full bar = "
            << sprout::format_double(peak_rate, 0) << " kbps:\n";
  render_ascii_plot(std::cout, capacity, forecast, opt);
  std::cout << "\nper-bin delay: mean (#) and max (*), full bar = "
            << sprout::format_double(peak_delay, 0) << " ms:\n";
  render_ascii_plot(std::cout, mean_delay, max_delay, opt);
  return 0;
}

// --- export --------------------------------------------------------------

int cmd_export(const std::string& path, const std::string& out_path,
               const std::string& format, std::optional<std::int64_t> cell,
               std::optional<std::size_t> flow) {
  const JsonValue doc = JsonValue::parse(read_file(path));
  std::vector<FlowTimeline> all = collect_timelines(path, doc);
  std::vector<FlowTimeline> selected;
  for (FlowTimeline& t : all) {
    if (cell.has_value() && t.cell_index != *cell) continue;
    if (flow.has_value() && t.flow_index != *flow) continue;
    selected.push_back(std::move(t));
  }
  require(!selected.empty(), path, "no timelines match the selection");

  std::size_t rows = 0;
  write_file(out_path, [&](std::ostream& os) {
    if (format == "csv") {
      os << "cell,flow,label,time_s,forecast_kbps,capacity_kbps,"
            "throughput_kbps,queue_max_packets,queue_max_bytes,drops,"
            "mean_delay_ms,max_delay_ms\n";
    }
    for (const FlowTimeline& t : selected) {
      for (const Point& p : t.points) {
        if (format == "csv") {
          os << t.cell_index << ',' << t.flow_index << ',' << t.label << ','
             << p.time_s << ',' << p.forecast_kbps << ',' << p.capacity_kbps
             << ',' << p.throughput_kbps << ',' << p.queue_max_packets << ','
             << p.queue_max_bytes << ',' << p.drops << ',' << p.mean_delay_ms
             << ',' << p.max_delay_ms << '\n';
        } else {
          os << "{\"cell\": " << t.cell_index
             << ", \"flow\": " << t.flow_index << ", \"label\": ";
          sprout::write_json_string(os, t.label);
          os << ", \"time_s\": " << p.time_s
             << ", \"forecast_kbps\": " << p.forecast_kbps
             << ", \"capacity_kbps\": " << p.capacity_kbps
             << ", \"throughput_kbps\": " << p.throughput_kbps
             << ", \"queue_max_packets\": " << p.queue_max_packets
             << ", \"queue_max_bytes\": " << p.queue_max_bytes
             << ", \"drops\": " << p.drops
             << ", \"mean_delay_ms\": " << p.mean_delay_ms
             << ", \"max_delay_ms\": " << p.max_delay_ms << "}\n";
        }
        ++rows;
      }
    }
  });
  std::cout << path << " -> " << out_path << " (" << rows << " " << format
            << " rows from " << selected.size() << " timelines)\n";
  return 0;
}

// --- export-trace --------------------------------------------------------

// Chrome counter tracks: one "C" event per bin per counter, each flow on
// its own tid so chrome://tracing stacks the tracks.  With --merge, the
// events of an existing trace (the orchestrator's --trace-out spans) are
// re-emitted first, composing worker spans and flow counters in one file.
int cmd_export_trace(const std::string& path, const std::string& out_path,
                     const std::string& merge_path) {
  const JsonValue doc = JsonValue::parse(read_file(path));
  const std::vector<FlowTimeline> timelines = collect_timelines(path, doc);
  require(!timelines.empty(), path,
          "no timelines recorded (run with --timeline?)");

  std::vector<std::string> merged_events;
  if (!merge_path.empty()) {
    // Textual splice: the span events between the base file's traceEvents
    // '[' and its ']' are preserved byte-for-byte (JsonValue has no
    // writer, and re-serializing someone else's events would reformat
    // them).  Parse first so a damaged base file fails here, not in the
    // viewer.
    const std::string text = read_file(merge_path);
    (void)JsonValue::parse(text).at("traceEvents").as_array();
    const std::size_t open = text.find('[');
    const std::size_t close = text.rfind(']');
    require(open != std::string::npos && close != std::string::npos &&
                close > open,
            merge_path, "no traceEvents array to merge");
    const std::string body = text.substr(open + 1, close - open - 1);
    if (body.find_first_not_of(" \t\r\n") != std::string::npos) {
      merged_events.push_back(body);
    }
  }

  std::size_t events = 0;
  write_file(out_path, [&](std::ostream& os) {
    os << "{\"traceEvents\": [";
    bool first = true;
    for (const std::string& body : merged_events) {
      os << body;
      first = false;
    }
    for (const FlowTimeline& t : timelines) {
      // tid 1000+flow keeps counter tracks clear of worker-lane tids.
      const std::int64_t tid = 1000 + static_cast<std::int64_t>(t.flow_index);
      for (const Point& p : t.points) {
        if (!first) os << ",";
        first = false;
        os << "\n  {\"name\": ";
        sprout::write_json_string(
            os, "cell " + std::to_string(t.cell_index) + " " + t.label +
                    " rate (kbps)");
        os << ", \"cat\": \"timeline\", \"ph\": \"C\", \"pid\": "
           << t.cell_index << ", \"tid\": " << tid
           << ", \"ts\": " << p.time_s * 1e6
           << ", \"args\": {\"capacity\": " << p.capacity_kbps
           << ", \"forecast\": " << p.forecast_kbps
           << ", \"throughput\": " << p.throughput_kbps << "}},\n  ";
        os << "{\"name\": ";
        sprout::write_json_string(
            os, "cell " + std::to_string(t.cell_index) + " " + t.label +
                    " queue/delay");
        os << ", \"cat\": \"timeline\", \"ph\": \"C\", \"pid\": "
           << t.cell_index << ", \"tid\": " << tid
           << ", \"ts\": " << p.time_s * 1e6
           << ", \"args\": {\"queue_packets\": " << p.queue_max_packets
           << ", \"drops\": " << p.drops
           << ", \"mean_delay_ms\": " << p.mean_delay_ms << "}}";
        events += 2;
      }
    }
    os << "\n]}\n";
  });
  // The splice above must compose to valid JSON; refuse to ship otherwise.
  (void)JsonValue::parse(read_file(out_path));
  std::cout << path << " -> " << out_path << " (" << events
            << " counter events" <<
      (merge_path.empty() ? std::string()
                          : ", merged with " + merge_path) << ")\n";
  return 0;
}

// --- validate-timeline ---------------------------------------------------

int cmd_validate(const std::string& path) {
  const JsonValue doc = JsonValue::parse(read_file(path));
  const std::vector<FlowTimeline> timelines = collect_timelines(path, doc);
  std::size_t points = 0;
  for (const FlowTimeline& t : timelines) points += t.points.size();
  std::cout << path << ": ok (" << timelines.size() << " timelines, "
            << points << " points)\n";
  return 0;
}

// --- strip-timeline ------------------------------------------------------

// Removes every `, "timeline": {...}` member the shard writer emits.  The
// writer produces the member in exactly one shape — geometry fields plus
// an array of 9-element ARRAYS, so the object contains no nested braces —
// and the textual erase reproduces the timeline-off byte stream exactly,
// which a parse/re-serialize round trip could not promise.
int cmd_strip(const std::string& in_path, const std::string& out_path) {
  std::string text = read_file(in_path);
  (void)JsonValue::parse(text);  // refuse to "fix" a damaged file
  const std::string needle = ", \"timeline\": {";
  std::size_t stripped = 0;
  std::size_t at = 0;
  while ((at = text.find(needle, at)) != std::string::npos) {
    const std::size_t close = text.find('}', at + needle.size());
    require(close != std::string::npos, in_path,
            "unterminated timeline object");
    text.erase(at, close + 1 - at);
    ++stripped;
  }
  (void)JsonValue::parse(text);  // the erase must leave valid JSON
  write_file(out_path, [&](std::ostream& os) { os << text; });
  std::cout << in_path << " -> " << out_path << " (" << stripped
            << " timelines removed)\n";
  return 0;
}

int usage() {
  std::cerr <<
      "usage:\n"
      "  timeline_report chart             SWEEP.json [--cell I] [--flow F]\n"
      "  timeline_report export            SWEEP.json --out PATH"
      " [--format jsonl|csv]\n"
      "                                    [--cell I] [--flow F]\n"
      "  timeline_report export-trace      SWEEP.json --out TRACE.json"
      " [--merge TRACE_IN.json]\n"
      "  timeline_report validate-timeline SWEEP.json\n"
      "  timeline_report strip-timeline    IN.json OUT.json\n"
      "exit codes: 0 ok, 1 invalid input, 2 usage\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  std::vector<std::string> positional;
  std::string out_path;
  std::string merge_path;
  std::string format = "jsonl";
  std::optional<std::int64_t> cell;
  std::optional<std::size_t> flow;

  try {
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw std::runtime_error(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--out") out_path = value();
      else if (arg == "--merge") merge_path = value();
      else if (arg == "--format") format = value();
      else if (arg == "--cell") cell = std::stoll(value());
      else if (arg == "--flow") {
        flow = static_cast<std::size_t>(std::stoull(value()));
      }
      else if (arg.rfind("--", 0) == 0) return usage();
      else positional.push_back(arg);
    }
    if (format != "jsonl" && format != "csv") return usage();

    if (command == "chart" && positional.size() == 1) {
      return cmd_chart(positional[0], cell, flow);
    }
    if (command == "export" && positional.size() == 1 && !out_path.empty()) {
      return cmd_export(positional[0], out_path, format, cell, flow);
    }
    if (command == "export-trace" && positional.size() == 1 &&
        !out_path.empty()) {
      return cmd_export_trace(positional[0], out_path, merge_path);
    }
    if (command == "validate-timeline" && positional.size() == 1) {
      return cmd_validate(positional[0]);
    }
    if (command == "strip-timeline" && positional.size() == 2) {
      return cmd_strip(positional[0], positional[1]);
    }
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "timeline_report: " << e.what() << "\n";
    return 1;
  }
}

// sweep_orchestrate — fault-tolerant sweep execution with checkpoint/resume.
//
// Forks worker processes over a grid and hands out cells by work-stealing
// (longest-first by estimated_cost); every completed cell is appended to a
// per-worker journal in --journal-dir, so `kill -9` of the whole job tree
// costs at most the records being written: re-running the same command
// resumes from the last completed cell.  A cell that crashes its worker is
// retried with doubling backoff and quarantined on a poison list after
// --max-attempts failures; --cell-timeout reclaims cells from hung workers.
//
//   sweep_orchestrate run    --spec specs/tower_smoke.json
//                            --journal-dir j/ --out sweep.json --workers 4
//   sweep_orchestrate status --spec specs/tower_smoke.json --journal-dir j/
//   sweep_orchestrate export --spec specs/tower_smoke.json --journal-dir j/
//                            --out-prefix j/shard_
//
// `status` reports journal coverage without running anything; `export`
// replays each journal into an ordinary shard JSON file that `sweep_shard
// merge` accepts — the bridge that keeps
//
//     orchestrated (killed + resumed) == sweep_shard merge == serial
//
// a byte-level invariant (the orchestrate_roundtrip ctest and the CI
// orchestrate-smoke job diff exactly that).
//
// Telemetry: --metrics-out streams a JSONL event feed (header, per-cell
// wall/RSS, retries, poisons, throttled progress, worker + coordinator
// registry snapshots) and stamps each journaled result with a "runtime"
// field; --trace-out writes a Chrome trace (chrome://tracing /
// ui.perfetto.dev) with one lane per worker slot.  `obs_report` renders
// and validates both.  --quiet suppresses the stderr progress/ETA line
// only; it does not affect telemetry files.
//
// Fault hooks for tests and CI only: --halt-after N (SIGKILL every worker
// after N completions — a simulated kill -9 of the job), --crash-cell
// I[:N] (worker _exit(70)s on cell I, first N attempts; no :N = every
// attempt, the poison path), --hang-cell I[:N] (worker hangs, exercising
// --cell-timeout).
//
// Exit codes: 0 complete, 1 error, 2 usage, 3 poisoned cells (sweep
// incomplete; journals keep the finished cells), 4 halted by --halt-after.
#include <climits>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "runner/orchestrator.h"
#include "spec/builtin.h"
#include "spec/grid.h"
#include "util/table.h"

namespace {

using namespace sprout;

// A bad flag value: reported path-style ("--workers: must be ...") and
// exited 2, distinct from runtime failures (exit 1).
struct UsageError : std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

template <typename WriteFn>
void write_file(const std::string& path, WriteFn&& write) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  write(out);
  out.flush();
  if (!out) throw std::runtime_error("write to " + path + " failed");
}

// Strict integer parse: the whole token must be the number.  std::atoi
// would read "4x" as 4 and overflow silently — exactly the class of bug
// the --threads/--workers guards exist to catch.
long parse_long_strict(const std::string& flag, const std::string& text) {
  std::size_t pos = 0;
  long v = 0;
  try {
    v = std::stol(text, &pos);
  } catch (const std::exception&) {
    throw UsageError(flag + ": must be an integer, got \"" + text + "\"");
  }
  if (pos != text.size()) {
    throw UsageError(flag + ": must be an integer, got \"" + text + "\"");
  }
  return v;
}

int parse_positive_int(const std::string& flag, const std::string& text) {
  const long v = parse_long_strict(flag, text);
  if (v < 1 || v > INT_MAX) {
    throw UsageError(flag + ": must be a positive integer, got \"" + text +
                     "\"");
  }
  return static_cast<int>(v);
}

double parse_nonneg_double(const std::string& flag, const std::string& text) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(text, &pos);
  } catch (const std::exception&) {
    throw UsageError(flag + ": must be a number, got \"" + text + "\"");
  }
  if (pos != text.size() || !(v >= 0.0)) {
    throw UsageError(flag + ": must be a number >= 0, got \"" + text + "\"");
  }
  return v;
}

// "I" (every attempt) or "I:N" (first N attempts) for the fault hooks.
std::pair<std::size_t, int> parse_fault(const std::string& flag,
                                        const std::string& text) {
  const std::size_t colon = text.find(':');
  const std::string index_part = text.substr(0, colon);
  const long index = parse_long_strict(flag, index_part);
  if (index < 0) {
    throw UsageError(flag + ": cell index must be >= 0, got \"" + text +
                     "\"");
  }
  int n = -1;
  if (colon != std::string::npos) {
    n = parse_positive_int(flag, text.substr(colon + 1));
  }
  return {static_cast<std::size_t>(index), n};
}

struct GridSource {
  std::string grid_name;  // --grid
  std::string spec_path;  // --spec
  int seconds = 20;
  bool seconds_given = false;
  bool timeline = false;  // --timeline: flight-record every cell
  std::optional<std::uint64_t> base_seed;
};

struct ResolvedGrid {
  std::string label;
  SweepSpec sweep;
};

ResolvedGrid resolve_grid(const GridSource& source) {
  ResolvedGrid grid;
  if (!source.spec_path.empty()) {
    if (source.seconds_given) {
      throw std::invalid_argument(
          "--seconds shapes compiled grids; a spec file carries its own "
          "durations");
    }
    if (source.base_seed.has_value()) {
      throw std::invalid_argument(
          "--base-seed shapes compiled grids; set base_seed in the spec "
          "file instead");
    }
    spec::ExperimentSpec experiment =
        spec::parse_experiment_file(source.spec_path);
    grid.label = experiment.name.empty() ? source.spec_path : experiment.name;
    grid.sweep = std::move(experiment.sweep);
  } else {
    spec::BuiltinGridOptions options;
    options.seconds = source.seconds;
    options.base_seed = source.base_seed;
    grid.label = source.grid_name;
    grid.sweep = spec::build_builtin_grid(source.grid_name, options);
  }
  // --timeline flight-records every cell.  record_timeline is excluded
  // from scenario fingerprints, so journals written with and without it
  // resume, export, and merge against the same grid.
  if (source.timeline) {
    for (ScenarioSpec& cell : grid.sweep.cells) cell.record_timeline = true;
  }
  return grid;
}

int usage() {
  std::cerr <<
      "usage:\n"
      "  sweep_orchestrate run    (--grid NAME | --spec FILE)"
      " --journal-dir DIR --out PATH\n"
      "                           [--workers W] [--max-attempts K]"
      " [--retry-backoff S]\n"
      "                           [--cell-timeout S] [--seconds N]"
      " [--base-seed S]\n"
      "                           [--poison-report PATH] [--quiet]"
      " [--timeline]\n"
      "                           [--metrics-out PATH] [--trace-out PATH]\n"
      "                           [--halt-after N] [--crash-cell I[:N]]"
      " [--hang-cell I[:N]]\n"
      "  sweep_orchestrate status (--grid NAME | --spec FILE)"
      " --journal-dir DIR\n"
      "  sweep_orchestrate export (--grid NAME | --spec FILE)"
      " --journal-dir DIR --out-prefix P\n"
      "exit codes: 0 complete, 1 error, 2 usage, 3 poisoned, 4 halted\n";
  return 2;
}

void write_poison_report(const std::string& path,
                         const std::vector<PoisonedCell>& poisoned) {
  write_file(path, [&](std::ostream& os) {
    os << "{\n  \"poisoned\": [";
    for (std::size_t i = 0; i < poisoned.size(); ++i) {
      os << (i == 0 ? "" : ",") << "\n    {\"index\": " << poisoned[i].index
         << ", \"attempts\": " << poisoned[i].attempts << ", \"error\": ";
      write_json_string(os, poisoned[i].last_error);
      os << "}";
    }
    os << "\n  ]\n}\n";
  });
}

int cmd_run(const GridSource& source, OrchestratorOptions options,
            const std::string& out_path, const std::string& poison_path) {
  const ResolvedGrid grid = resolve_grid(source);
  const OrchestrateOutcome outcome = orchestrate_sweep(grid.sweep, options);

  if (outcome.halted) {
    std::cerr << "sweep_orchestrate: halted after " << outcome.executed_cells
              << " cells (journals kept in " << options.journal_dir
              << "; re-run the same command to resume)\n";
    return 4;
  }
  if (!outcome.poisoned.empty()) {
    for (const PoisonedCell& cell : outcome.poisoned) {
      std::cerr << "sweep_orchestrate: cell " << cell.index
                << " poisoned after " << cell.attempts
                << " attempts: " << cell.last_error << "\n";
    }
    if (!poison_path.empty()) {
      write_poison_report(poison_path, outcome.poisoned);
      std::cerr << "sweep_orchestrate: poison report -> " << poison_path
                << "\n";
    }
    std::cerr << "sweep_orchestrate: sweep incomplete ("
              << outcome.poisoned.size() << " poisoned cells); completed "
              << "cells stay journaled in " << options.journal_dir << "\n";
    return 3;
  }

  write_file(out_path,
             [&](std::ostream& os) { write_sweep_json(os, outcome.merged); });
  std::cout << "orchestrated " << grid.label << ": "
            << outcome.merged.cells.size() << " cells ("
            << outcome.resumed_cells << " resumed, " << outcome.executed_cells
            << " executed) -> " << out_path << "\n";
  return 0;
}

int cmd_status(const GridSource& source, const std::string& journal_dir) {
  const ResolvedGrid grid = resolve_grid(source);
  const std::uint64_t fingerprint = sweep_fingerprint(grid.sweep);
  const std::size_t total = grid.sweep.cells.size();
  std::vector<bool> covered(total, false);
  TableWriter t({"Journal", "Cells", "Of", "Fingerprint", "State"});
  for (const std::string& path : list_journal_files(journal_dir)) {
    const JournalScan scan =
        read_journal_file(path, /*allow_truncated_tail=*/true);
    const bool foreign =
        scan.sweep_fingerprint != fingerprint || scan.total_cells != total;
    if (!foreign) {
      for (const JournalRecord& record : scan.records) {
        covered[record.index] = true;
      }
    }
    std::string state = foreign ? "FOREIGN GRID" : "ok";
    if (scan.dropped_bytes > 0) {
      state += " (+" + std::to_string(scan.dropped_bytes) +
               "B half-written tail)";
    }
    t.row()
        .cell(path)
        .cell(static_cast<std::int64_t>(scan.records.size()))
        .cell(static_cast<std::int64_t>(scan.total_cells))
        .cell(std::to_string(scan.sweep_fingerprint))
        .cell(state);
  }
  t.print(std::cout);
  std::size_t done = 0;
  for (const bool c : covered) done += c ? 1 : 0;
  std::cout << "grid " << grid.label << ": " << done << "/" << total
            << " cells journaled, " << (total - done) << " remaining\n";
  return 0;
}

int cmd_export(const GridSource& source, const std::string& journal_dir,
               const std::string& prefix) {
  const ResolvedGrid grid = resolve_grid(source);
  const std::uint64_t fingerprint = sweep_fingerprint(grid.sweep);
  std::size_t exported = 0;
  for (const std::string& path : list_journal_files(journal_dir)) {
    // Strict scan: exporting a journal with a half-written tail would
    // silently bless a damaged file — recover via `run` first.
    const JournalScan scan =
        read_journal_file(path, /*allow_truncated_tail=*/false);
    if (scan.sweep_fingerprint != fingerprint ||
        scan.total_cells != grid.sweep.cells.size()) {
      throw std::runtime_error(path + ": journal is not from this grid");
    }
    const ShardResult shard = shard_from_journal(scan);
    const std::string out = prefix + std::to_string(scan.journal_id) + ".json";
    write_file(out, [&](std::ostream& os) { write_shard_json(os, shard); });
    std::cout << path << " -> " << out << " (" << shard.cell_indices.size()
              << " cells)\n";
    ++exported;
  }
  if (exported == 0) {
    throw std::runtime_error("no journals found in " + journal_dir);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];

  GridSource source;
  OrchestratorOptions options;
  std::string out_path;
  std::string out_prefix;
  std::string poison_path;

  try {
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw UsageError(arg + ": needs a value");
        return argv[++i];
      };
      if (arg == "--grid") source.grid_name = value();
      else if (arg == "--spec") source.spec_path = value();
      else if (arg == "--seconds") {
        source.seconds = parse_positive_int(arg, value());
        source.seconds_given = true;
      }
      else if (arg == "--base-seed") source.base_seed = std::stoull(value());
      else if (arg == "--journal-dir") options.journal_dir = value();
      else if (arg == "--out") out_path = value();
      else if (arg == "--out-prefix") out_prefix = value();
      else if (arg == "--poison-report") poison_path = value();
      else if (arg == "--workers") {
        // The spec_lint --threads guard, applied here: a zero or negative
        // worker count must die loudly, not fork zero workers.
        options.workers = parse_positive_int(arg, value());
      }
      else if (arg == "--max-attempts") {
        options.max_attempts = parse_positive_int(arg, value());
      }
      else if (arg == "--retry-backoff") {
        options.retry_backoff_s = parse_nonneg_double(arg, value());
      }
      else if (arg == "--cell-timeout") {
        options.cell_timeout_s = parse_nonneg_double(arg, value());
      }
      else if (arg == "--quiet") options.progress = false;
      else if (arg == "--timeline") source.timeline = true;
      else if (arg == "--metrics-out") {
        // Telemetry implies runtime stamping: every journaled cell gains a
        // "runtime" field (wall seconds, peak RSS, attempt).  Strip it with
        // `obs_report strip-runtime` before byte-diffing against a plain run.
        options.metrics_out = value();
        options.record_runtime = true;
      }
      else if (arg == "--trace-out") options.trace_out = value();
      else if (arg == "--halt-after") {
        options.halt_after_cells =
            static_cast<std::size_t>(parse_positive_int(arg, value()));
      }
      else if (arg == "--crash-cell") {
        options.crash_cells.push_back(parse_fault(arg, value()));
      }
      else if (arg == "--hang-cell") {
        options.hang_cells.push_back(parse_fault(arg, value()));
      }
      else return usage();
    }
    if (!source.grid_name.empty() && !source.spec_path.empty()) {
      throw UsageError("--grid and --spec are mutually exclusive");
    }
    const bool have_grid =
        !source.grid_name.empty() || !source.spec_path.empty();
    if (!have_grid || options.journal_dir.empty()) return usage();

    if (command == "run") {
      if (out_path.empty()) return usage();
      return cmd_run(source, options, out_path, poison_path);
    }
    if (command == "status") {
      return cmd_status(source, options.journal_dir);
    }
    if (command == "export") {
      if (out_prefix.empty()) return usage();
      return cmd_export(source, options.journal_dir, out_prefix);
    }
    return usage();
  } catch (const UsageError& e) {
    std::cerr << "sweep_orchestrate: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "sweep_orchestrate: " << e.what() << "\n";
    return 1;
  }
}

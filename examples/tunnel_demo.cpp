// SproutTunnel demo (§4.3, §5.7): a bulk TCP Cubic download and a Skype
// call share a cellular downlink, with and without the tunnel mediating.
//
//   $ ./tunnel_demo [seconds]
//
// Without the tunnel, both flows share the carrier's per-user queue and
// Cubic's standing queue destroys the call's interactivity.  Through
// SproutTunnel, each flow gets its own queue at the tunnel endpoints,
// round-robin service, and forecast-bounded buffering.
#include <cstdlib>
#include <iostream>

#include "runner/scenario.h"
#include "runner/schemes.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace sprout;

  const int seconds = argc > 1 ? std::atoi(argv[1]) : 120;

  ScenarioSpec config = tunnel_scenario("Verizon LTE", false);
  config.run_time = sec(seconds);
  config.warmup = sec(seconds / 4);

  std::cout << "Cubic download + Skype call sharing the Verizon LTE "
               "(synthetic) link, "
            << seconds << " s\n\n";

  // flows[0] is the Cubic download, flows[1] the Skype call.
  const ScenarioResult direct = run_scenario(config);
  config.topology.via_tunnel = true;
  const ScenarioResult tunneled = run_scenario(config);

  TableWriter t({"Metric", "Direct", "via SproutTunnel"});
  t.row()
      .cell("Cubic throughput (kbps)")
      .cell(direct.flows.at(0).throughput_kbps, 0)
      .cell(tunneled.flows.at(0).throughput_kbps, 0);
  t.row()
      .cell("Skype throughput (kbps)")
      .cell(direct.flows.at(1).throughput_kbps, 0)
      .cell(tunneled.flows.at(1).throughput_kbps, 0);
  t.row()
      .cell("Skype 95% delay (ms)")
      .cell(direct.flows.at(1).delay95_ms, 0)
      .cell(tunneled.flows.at(1).delay95_ms, 0);
  t.row()
      .cell("Cubic 95% delay (ms)")
      .cell(direct.flows.at(0).delay95_ms, 0)
      .cell(tunneled.flows.at(0).delay95_ms, 0);
  t.print(std::cout);
  std::cout << "\nThe tunnel should rescue the call's delay (paper: 6.0 s -> "
               "0.17 s) at a cost to bulk throughput.\n";
  return 0;
}

// Trace tooling: generate the synthetic cellular traces, export them in the
// mahimahi-compatible format (one ms-timestamp per line), and summarize any
// trace file's statistics.
//
//   $ ./trace_explorer list
//   $ ./trace_explorer export <network> <downlink|uplink> <seconds> <file>
//   $ ./trace_explorer info <file>
//
// Exported files drop straight into mahimahi's mm-link or any Cellsim-
// compatible tool; real captured traces can be inspected with `info`.
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "trace/presets.h"
#include "trace/trace.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace sprout;

int list_presets() {
  TableWriter t({"Network", "Direction", "Mean rate (kbps)", "Max (kbps)"});
  for (const LinkPreset& p : all_link_presets()) {
    t.row()
        .cell(p.network)
        .cell(to_string(p.direction))
        .cell(p.params.mean_rate_pps * 12.0, 0)
        .cell(p.params.max_rate_pps * 12.0, 0);
  }
  t.print(std::cout);
  return 0;
}

int export_trace(const std::string& network, const std::string& dir,
                 int seconds, const std::string& path) {
  const LinkDirection direction =
      dir == "uplink" ? LinkDirection::kUplink : LinkDirection::kDownlink;
  const LinkPreset& preset = find_link_preset(network, direction);
  const Trace trace = preset_trace(preset, sec(seconds));
  write_trace_file(trace, path);
  std::cout << "wrote " << trace.size() << " delivery opportunities ("
            << format_double(trace.average_rate_kbps(), 0) << " kbps avg) to "
            << path << "\n";
  return 0;
}

int info(const std::string& path) {
  const Trace trace = read_trace_file(path);
  RunningStats gaps;
  Duration longest = Duration::zero();
  for (Duration g : trace.interarrivals()) {
    gaps.add(to_millis(g));
    longest = std::max(longest, g);
  }
  std::cout << "opportunities: " << trace.size() << "\n"
            << "duration:      " << to_seconds(trace.duration()) << " s\n"
            << "average rate:  " << format_double(trace.average_rate_kbps(), 1)
            << " kbps\n"
            << "interarrival:  mean " << format_double(gaps.mean(), 2)
            << " ms, sd " << format_double(gaps.stddev(), 2) << " ms, max "
            << format_double(to_millis(longest), 0) << " ms\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "list") == 0) {
    return list_presets();
  }
  if (argc >= 6 && std::strcmp(argv[1], "export") == 0) {
    return export_trace(argv[2], argv[3], std::atoi(argv[4]), argv[5]);
  }
  if (argc >= 3 && std::strcmp(argv[1], "info") == 0) {
    return info(argv[2]);
  }
  std::cerr << "usage:\n"
            << "  trace_explorer list\n"
            << "  trace_explorer export <network> <downlink|uplink> <seconds> "
               "<file>\n"
            << "  trace_explorer info <file>\n";
  return 2;
}

// Diagnostic walkthrough of a Sprout session's internals.
//
// Runs Sprout over a constant-rate emulated link (no volatility, no
// outages) and prints, every 100 ms: the data receiver's posterior rate
// estimate, the 8-tick forecast total, and the sender's window and
// queue-occupancy estimate.  Useful both as a debugging aid and as a primer
// on how the pieces of §3 fit together.
//
//   $ ./inspect_sprout [rate_pps] [seconds] [ewma]
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/endpoint.h"
#include "core/source.h"
#include "link/cellsim.h"
#include "metrics/flow_metrics.h"
#include "sim/relay.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace sprout;

  const double rate_pps = argc > 1 ? std::atof(argv[1]) : 500.0;
  const int seconds = argc > 2 ? std::atoi(argv[2]) : 10;
  const bool ewma = argc > 3 && std::strcmp(argv[3], "ewma") == 0;

  CellProcessParams link_model;
  link_model.mean_rate_pps = rate_pps;
  link_model.volatility_pps = 0.0;
  link_model.outage_hazard_per_s = 0.0;
  link_model.max_rate_pps = std::max(rate_pps, 1.0);

  Simulator sim;
  Trace fwd = generate_trace(link_model, sec(seconds + 1), 7);
  Trace rev = generate_trace(link_model, sec(seconds + 1), 8);

  RelaySink fwd_egress, rev_egress;
  CellsimLink fwd_link(sim, std::move(fwd), {}, fwd_egress);
  CellsimLink rev_link(sim, std::move(rev), {}, rev_egress);

  SproutParams params;
  BulkDataSource bulk;
  const SproutVariant variant =
      ewma ? SproutVariant::kEwma : SproutVariant::kBayesian;
  SproutEndpoint tx(sim, params, variant, 1, &bulk);
  SproutEndpoint rx(sim, params, variant, 1, nullptr);
  tx.attach_network(fwd_link);
  rx.attach_network(rev_link);
  MeasuredSink measured(sim, rx);
  fwd_egress.set_target(measured);
  rev_egress.set_target(tx);
  tx.start();
  rx.start(msec(7));

  std::cout << "link rate " << rate_pps << " pps ("
            << rate_pps * 12.0 << " kbps), variant "
            << (ewma ? "EWMA" : "Bayesian") << "\n\n";
  TableWriter table({"t(s)", "rx est (pps)", "F[8] (kB)", "window (kB)",
                     "queue est (kB)", "sent (kB)", "rcvd-or-lost (kB)",
                     "obs", "skip", "link queue"});
  for (int step = 1; step <= seconds * 10; ++step) {
    sim.run_until(TimePoint{} + msec(100) * step);
    if (step % 5 != 0 && step > 20) continue;
    const DeliveryForecast& f = rx.receiver().latest_forecast();
    table.row()
        .cell(static_cast<double>(step) * 0.1, 1)
        .cell(rx.receiver().estimated_rate_pps(), 0)
        .cell(f.ticks() > 0 ? static_cast<double>(f.cumulative_at(8)) / 1000.0
                            : 0.0,
              1)
        .cell(static_cast<double>(tx.sender().window_bytes(sim.now())) / 1000.0, 1)
        .cell(static_cast<double>(tx.sender().queue_estimate()) / 1000.0, 1)
        .cell(static_cast<double>(tx.sender().bytes_sent()) / 1000.0, 0)
        .cell(static_cast<double>(rx.receiver().received_or_lost_bytes()) / 1000.0, 0)
        .cell(rx.receiver().ticks_observed())
        .cell(rx.receiver().ticks_skipped())
        .cell(static_cast<std::int64_t>(fwd_link.queue_packets()));
  }
  table.print(std::cout);

  const TimePoint from = TimePoint{} + sec(1);
  const TimePoint to = TimePoint{} + sec(seconds);
  std::cout << "\nthroughput " << measured.metrics().throughput_kbps(from, to)
            << " kbps of " << rate_pps * 12.0 << " kbps; 95% delay "
            << measured.metrics().delay_percentile_ms(95.0, from, to)
            << " ms\n";
  return 0;
}

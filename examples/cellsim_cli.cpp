// Cellsim as a command-line tool: evaluate any scheme over YOUR traces.
//
//   $ ./cellsim_cli <downlink.trace> <uplink.trace> [scheme] [seconds]
//
// Trace files are mahimahi format (one integer millisecond per line, one
// MTU-sized delivery opportunity each) — the format the Sprout authors
// released and mahimahi still uses, so real captures drop in unchanged.
// Scheme is one of: sprout, ewma, adaptive, mmpp, empirical, skype,
// facetime, hangout, cubic, reno, vegas, compound, ledbat, fast, gcc,
// cubic-codel, cubic-pie, omniscient.
#include <iostream>
#include <map>
#include <string>
#include <utility>

#include "runner/scenario.h"
#include "runner/schemes.h"
#include "trace/presets.h"

int main(int argc, char** argv) {
  using namespace sprout;

  if (argc < 3) {
    std::cerr << "usage: " << argv[0]
              << " <downlink.trace> <uplink.trace> [scheme] [seconds]\n";
    return 2;
  }
  static const std::map<std::string, SchemeId> kSchemes = {
      {"sprout", SchemeId::kSprout},
      {"ewma", SchemeId::kSproutEwma},
      {"adaptive", SchemeId::kSproutAdaptive},
      {"mmpp", SchemeId::kSproutMmpp},
      {"empirical", SchemeId::kSproutEmpirical},
      {"skype", SchemeId::kSkype},
      {"facetime", SchemeId::kFacetime},
      {"hangout", SchemeId::kHangout},
      {"cubic", SchemeId::kCubic},
      {"reno", SchemeId::kReno},
      {"vegas", SchemeId::kVegas},
      {"compound", SchemeId::kCompound},
      {"ledbat", SchemeId::kLedbat},
      {"fast", SchemeId::kFast},
      {"gcc", SchemeId::kGcc},
      {"cubic-codel", SchemeId::kCubicCodel},
      {"cubic-pie", SchemeId::kCubicPie},
      {"omniscient", SchemeId::kOmniscient},
  };

  const std::string scheme_name = argc > 3 ? argv[3] : "sprout";
  const auto it = kSchemes.find(scheme_name);
  if (it == kSchemes.end()) {
    std::cerr << "unknown scheme '" << scheme_name << "'; choices:";
    for (const auto& [name, id] : kSchemes) std::cerr << " " << name;
    std::cerr << "\n";
    return 2;
  }

  ScenarioSpec config;
  config.scheme = it->second;
  double forward_avg_kbps = 0.0;
  try {
    Trace forward = read_trace_file(argv[1]);
    Trace reverse = read_trace_file(argv[2]);
    forward_avg_kbps = forward.average_rate_kbps();
    config.link = LinkSpec::traces(std::move(forward), std::move(reverse));
  } catch (const std::exception& e) {
    std::cerr << "cannot load traces: " << e.what() << "\n";
    return 1;
  }
  const int seconds = argc > 4 ? std::atoi(argv[4]) : 120;
  config.run_time = sec(seconds);
  config.warmup = sec(seconds / 4);

  std::cout << "Running " << to_string(config.scheme) << " for " << seconds
            << " s over " << argv[1] << " (" << forward_avg_kbps
            << " kbps avg) with feedback over " << argv[2] << "\n\n";

  const ScenarioResult r = run_scenario(config);
  std::cout << "  throughput            " << r.throughput_kbps() << " kbit/s\n"
            << "  link capacity         " << r.capacity_kbps << " kbit/s  ("
            << 100.0 * r.utilization() << "% utilized)\n"
            << "  95% end-to-end delay  " << r.delay95_ms() << " ms\n"
            << "  omniscient baseline   " << r.omniscient_delay95_ms << " ms\n"
            << "  self-inflicted delay  " << r.self_inflicted_delay_ms()
            << " ms   <- the paper's headline metric (§5.1)\n"
            << "  packets delivered     " << r.packets_delivered << "\n"
            << "  link drops            " << r.link_drops << "\n";
  return 0;
}

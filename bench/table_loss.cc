// §5.6 loss-resilience table: Sprout over the Verizon LTE traces with 0%,
// 5% and 10% Bernoulli packet loss in each direction.
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

int main() {
  using namespace sprout;

  std::cout << "=== §5.6: Sprout loss resilience on Verizon LTE ===\n\n";

  // direction x loss grid as one parallel sweep.
  std::vector<ScenarioSpec> specs;
  for (const LinkDirection dir :
       {LinkDirection::kDownlink, LinkDirection::kUplink}) {
    const LinkPreset& link = find_link_preset("Verizon LTE", dir);
    for (const double loss : {0.0, 0.05, 0.10}) {
      ScenarioSpec c = bench::base_spec(SchemeId::kSprout, link);
      c.set_loss_rate(loss);
      specs.push_back(c);
    }
  }
  const std::vector<ScenarioResult> results = bench::sweep(specs);

  TableWriter t({"Direction", "Loss", "Throughput (kbps)",
                 "Self-inflicted delay (ms)"});
  std::size_t cell = 0;
  for (const LinkDirection dir :
       {LinkDirection::kDownlink, LinkDirection::kUplink}) {
    for (const double loss : {0.0, 0.05, 0.10}) {
      const ScenarioResult& r = results[cell++];
      t.row()
          .cell(to_string(dir))
          .cell(format_double(loss * 100.0, 0) + "%")
          .cell(r.throughput_kbps(), 0)
          .cell(r.self_inflicted_delay_ms(), 0);
    }
  }
  t.print(std::cout);
  std::cout << "\n(paper: downlink 4741/3971/2768 kbps at 73/60/58 ms; uplink "
               "3703/2598/1163 kbps at 332/378/314 ms —\n throughput degrades "
               "gracefully, delay stays bounded.)\n";
  return 0;
}

// Coexistence: Sprout sharing ONE bottleneck queue with a loss-based or
// delay-based competitor — the question the paper's per-user-queue
// assumption (§2.1) sets aside and that later work (C2TCP, Abbasloo et
// al.) benchmarks directly.  Each cell runs a heterogeneous shared-queue
// scenario: one Sprout flow and one competitor flow (Cubic, NewReno,
// Vegas, GCC) commingled on a cellular downlink, across three traced
// networks, as one parallel sweep.
//
// Reported per pairing: each flow's throughput and 95% end-to-end delay,
// Jain's fairness index over the co-active window, and each flow's share
// of the link capacity actually available while both flows were live.
//
// Flags:
//   --smoke           one tiny cell (Sprout vs Cubic on Verizon LTE) — the
//                     CI bench-smoke job's shape
//   --json PATH       also dump the combined table as JSON (CI artifact)
//   --dump-spec PATH  write the grid as a declarative experiment spec
//                     (spec/grid.h) and exit without simulating; the file
//                     feeds `sweep_shard run --spec` and `spec_lint`
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.h"
#include "spec/grid.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace sprout;

  bool smoke = false;
  std::string json_path;
  std::string dump_spec_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--dump-spec") == 0 && i + 1 < argc) {
      dump_spec_path = argv[++i];
    } else {
      std::cerr << "usage: table_coexistence [--smoke] [--json PATH] "
                   "[--dump-spec PATH]\n";
      return 2;
    }
  }

  std::cout << "=== Coexistence: Sprout vs loss/delay-based flows in one "
               "shared cellular queue ===\n\n";

  std::vector<std::string> networks = {"Verizon LTE", "AT&T LTE",
                                       "T-Mobile 3G (UMTS)"};
  std::vector<SchemeId> rivals = coexistence_schemes();
  if (smoke) {
    networks = {"Verizon LTE"};
    rivals = {SchemeId::kCubic};
  }

  // network x rival grid, one heterogeneous two-flow cell each.
  std::vector<ScenarioSpec> specs;
  for (const std::string& network : networks) {
    const LinkPreset& link = find_link_preset(network, LinkDirection::kDownlink);
    for (const SchemeId rival : rivals) {
      specs.push_back(bench::hetero_spec(
          {FlowSpec::of(SchemeId::kSprout), FlowSpec::of(rival)}, link));
    }
  }

  if (!dump_spec_path.empty()) {
    spec::ExperimentSpec experiment;
    experiment.name = smoke ? "coexistence-bench-smoke" : "coexistence-bench";
    experiment.sweep.cells = specs;
    std::ofstream out(dump_spec_path);
    if (!out) {
      std::cerr << "cannot write " << dump_spec_path << "\n";
      return 1;
    }
    spec::write_experiment_json(out, experiment);
    std::cout << "spec (" << specs.size() << " cells) written to "
              << dump_spec_path << "\n";
    return 0;
  }

  const std::vector<ScenarioResult> results = bench::sweep(specs);

  TableWriter combined({"Network", "Rival", "Sprout kbps", "Sprout d95 ms",
                        "Rival kbps", "Rival d95 ms", "Jain", "Sprout share",
                        "Rival share"});
  std::size_t cell = 0;
  for (const std::string& network : networks) {
    std::cout << "--- " << network << " downlink ---\n";
    TableWriter t({"Rival", "Sprout kbps", "Sprout d95 (ms)", "Rival kbps",
                   "Rival d95 (ms)", "Jain", "Sprout share", "Rival share"});
    for (std::size_t k = 0; k < rivals.size(); ++k) {
      const ScenarioResult& r = results[cell++];
      const FlowResult& sprout = r.flows.at(0);
      const FlowResult& other = r.flows.at(1);
      // One row feeds both the per-network table and the combined JSON
      // table, so the printed output and the CI artifact cannot drift.
      const std::vector<std::string> row = {
          other.label,
          format_double(sprout.throughput_kbps, 0),
          format_double(sprout.delay95_ms, 0),
          format_double(other.throughput_kbps, 0),
          format_double(other.delay95_ms, 0),
          format_double(r.jain_index, 3),
          format_double(sprout.capacity_share, 2),
          format_double(other.capacity_share, 2),
      };
      t.row();
      for (const std::string& v : row) t.cell(v);
      combined.row().cell(network);
      for (const std::string& v : row) combined.cell(v);
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    combined.write_json(out);
    std::cout << "JSON written to " << json_path << "\n\n";
  }

  std::cout
      << "Reading: against loss-based flows (Cubic, NewReno) Sprout's\n"
         "cautious window cannot defend its share — the loss-based flow\n"
         "fills the common queue, takes most of the capacity, and drives\n"
         "everyone's delay up by seconds (the paper's §2.1 commingling\n"
         "argument, now measured).  Against delay-sensitive peers (Vegas,\n"
         "GCC) the split is far closer to fair and delay stays bounded:\n"
         "coexistence is a property of the rival's congestion signal, not\n"
         "of Sprout's forecast.\n";
  return 0;
}

// Independent-substrate check: do the paper's results survive on traces
// that do NOT come from the Cox process Sprout's filter assumes?
//
// The §2.1 proportional-fair cell (link/pf_cell.h) generates per-user
// delivery traces from first principles — fading channels, Shannon-capped
// rates, PF scheduling, contention from other users.  This bench runs the
// headline schemes over a PF-cell user's downlink (with another user's
// trace as the uplink) and prints the Figure-7-style comparison.  If the
// orderings match the Cox-trace results, the reproduction's conclusions
// are not an artifact of generator/model match — addressing the same
// concern DESIGN.md §4 raises about synthetic traces.
#include <iostream>

#include "bench_common.h"
#include "link/pf_cell.h"
#include "trace/analysis.h"
#include "util/table.h"

int main() {
  using namespace sprout;

  std::cout << "=== Ablation: schemes over the proportional-fair cell "
               "(first-principles traces) ===\n\n";

  // Four users contend; user 0's trace is our downlink, user 1's the
  // feedback path.
  PfCellParams cell_params;
  cell_params.num_users = 4;
  PfCell cell(cell_params, 21);
  const Duration run_time = bench::run_seconds();
  const auto traces = cell.run(run_time + sec(2));

  std::cout << "Cell: " << cell_params.num_users << " users, "
            << cell_params.bandwidth_hz / 1e6 << " MHz shared.  User-0 trace: "
            << traces[0].average_rate_kbps() << " kbps avg, dynamic range "
            << rate_dynamic_range(traces[0], sec(1)) << "x at 1 s windows\n\n";

  // To keep the comparison honest we write the traces to disk in mahimahi
  // format and run over LinkSpec::trace_files — the same path a user with
  // real captures would take.  The sweep's shared cache parses each file
  // once for the whole scheme grid.
  const std::string fwd_path = "/tmp/sprout_pfcell_down.trace";
  const std::string rev_path = "/tmp/sprout_pfcell_up.trace";
  write_trace_file(traces[0], fwd_path);
  write_trace_file(traces[1], rev_path);

  const std::vector<SchemeId> schemes = {
      SchemeId::kSprout, SchemeId::kSproutEwma, SchemeId::kSkype,
      SchemeId::kCubic,  SchemeId::kVegas,      SchemeId::kCubicCodel};
  std::vector<ScenarioSpec> specs;
  for (const SchemeId scheme : schemes) {
    ScenarioSpec c;
    c.scheme = scheme;
    c.link = LinkSpec::trace_files(fwd_path, rev_path);
    c.run_time = run_time;
    c.warmup = run_time / 4;
    specs.push_back(c);
  }
  const std::vector<ScenarioResult> results = bench::sweep(specs);

  TableWriter t({"Scheme", "Throughput (kbps)", "Self-inflicted delay (ms)",
                 "Utilization"});
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    const ScenarioResult& r = results[i];
    t.row()
        .cell(to_string(schemes[i]))
        .cell(r.throughput_kbps(), 0)
        .cell(r.self_inflicted_delay_ms(), 0)
        .cell(r.utilization(), 2);
  }
  t.print(std::cout);

  std::cout
      << "\nReading (measured): the paper's ORDERINGS survive — Sprout has\n"
         "the lowest delay, Sprout-EWMA roughly doubles Sprout's\n"
         "throughput, Cubic saturates the link behind tens of seconds of\n"
         "queue, and CoDel rescues Cubic's delay by >10x.  The ABSOLUTE\n"
         "utilizations collapse for every 20 ms-tick scheme, though: a\n"
         "PF-scheduled user's arrivals at tick granularity are bimodal\n"
         "(zero when other users win the slot, ~2x the model's 1000 pkt/s\n"
         "grid ceiling during its slot runs), which the Cox-model filter\n"
         "reads as constant outage risk.  Slot-scheduled links are a\n"
         "genuinely harsher regime than the paper's Poisson model — the\n"
         "orderings are robust to it; the utilization numbers are not.\n";
  return 0;
}

// Figure 7: throughput vs self-inflicted delay of every scheme, one chart
// per link (4 networks x downlink/uplink).  Better is up (throughput) and
// to the right-in-the-paper's-reversed-axis, i.e. LOWER delay here.
//
// The 9 schemes x 8 links grid runs as one parallel sweep.
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

int main() {
  using namespace sprout;

  std::cout << "=== Figure 7: throughput vs self-inflicted delay, per link "
               "===\n(per-run "
            << to_seconds(bench::run_seconds())
            << " s; paper shape: Sprout lowest delay at competitive "
               "throughput;\n Sprout-EWMA/Cubic highest throughput; video "
               "apps low throughput AND high delay)\n\n";

  std::vector<ScenarioSpec> specs;
  for (const LinkPreset& link : all_link_presets()) {
    for (const SchemeId scheme : figure7_schemes()) {
      specs.push_back(bench::base_spec(scheme, link));
    }
  }
  const std::vector<ScenarioResult> results = bench::sweep(specs);

  std::size_t cell = 0;
  for (const LinkPreset& link : all_link_presets()) {
    std::cout << "--- " << link.name() << " ---\n";
    TableWriter t({"Scheme", "Throughput (kbps)", "Self-inflicted delay (ms)",
                   "Utilization"});
    for (const SchemeId scheme : figure7_schemes()) {
      const ScenarioResult& r = results[cell++];
      t.row()
          .cell(to_string(scheme))
          .cell(r.throughput_kbps(), 0)
          .cell(r.self_inflicted_delay_ms(), 0)
          .cell(r.utilization(), 2);
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}

// Figure 2: interarrival-time distribution of a saturated downlink, with
// the heavy (flicker-noise) tail and its power-law fit (paper: t^-3.27).
//
// Uses the simulated Saturator against the Verizon-LTE-like ground-truth
// process, exactly as the paper produced its traces.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "trace/saturator.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace sprout;

  const LinkPreset& preset =
      find_link_preset("Verizon LTE", LinkDirection::kDownlink);
  SaturatorConfig config;
  config.run_time = std::max(bench::run_seconds() * 4, sec(480));
  std::cout << "=== Figure 2: interarrival times on a saturated "
            << preset.name() << " (synthetic), "
            << to_seconds(config.run_time) << " s of saturation ===\n\n";

  const SaturatorResult r = run_saturator(preset.params, config, 20130415);
  const std::vector<Duration> gaps = r.trace.interarrivals();

  LogHistogram hist(0.1, 10000.0, 50);  // 0.1 ms .. 10 s
  double within_20ms = 0;
  for (Duration g : gaps) {
    const double ms = to_millis(g);
    hist.add(std::max(ms, 0.05));
    if (ms <= 20.0) within_20ms += 1.0;
  }

  TableWriter t({"interarrival (ms)", "percent of interarrivals"});
  std::vector<double> tail_x, tail_y;
  for (int b = 0; b < hist.bins(); ++b) {
    if (hist.count(b) == 0) continue;
    t.row().cell(hist.bin_center(b), 2).cell(hist.percent(b), 4);
    if (hist.bin_center(b) > 20.0) {  // the fat tail beyond 20 ms
      tail_x.push_back(hist.bin_center(b));
      tail_y.push_back(hist.percent(b));
    }
  }
  t.print(std::cout);

  const PowerLawFit fit = fit_power_law(tail_x, tail_y);
  std::cout << "\npackets captured: " << gaps.size() + 1 << "\n"
            << "fraction of interarrivals within 20 ms: "
            << format_double(100.0 * within_20ms /
                                 static_cast<double>(gaps.size()),
                             2)
            << "% (paper: 99.99%)\n"
            << "power-law tail fit (>20 ms): t^" << format_double(fit.slope, 2)
            << " (paper: t^-3.27)\n"
            << "mean saturated rate: " << format_double(r.observed_rate_kbps, 0)
            << " kbps; saturator RTT mean "
            << format_double(r.mean_rtt_ms, 0) << " ms\n";
  return 0;
}

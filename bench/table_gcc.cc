// Extension: the comparison §6 promises — Google Congestion Control
// (draft-alvestrand-rtcweb-congestion-03, the paper's [15]) "assessed on
// the same metrics as the other schemes in our evaluation", plus the other
// extension baselines (FAST TCP and Cubic-over-PIE) on every traced link.
//
// Expected shape (not in the paper; this is new measurement): GCC is a
// reactive delay-gradient controller, so on fast-varying cellular links it
// should trail Sprout on both axes — its arrival-time filter controls the
// delay *slope*, which tolerates standing queues, and its 8%/s ramp misses
// rate upswings.  FAST should saturate the link while holding its alpha
// packets of standing queue.  Cubic-PIE should land near Cubic-CoDel.
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

int main() {
  using namespace sprout;

  std::cout << "=== Extension table: GCC / FAST / Cubic-PIE vs the paper's "
               "schemes ===\n\n";

  const std::vector<SchemeId> schemes = {
      SchemeId::kSprout,   SchemeId::kSproutEwma, SchemeId::kGcc,
      SchemeId::kSkype,    SchemeId::kFast,       SchemeId::kCubicPie,
      SchemeId::kCubicCodel,
  };

  struct Totals {
    double tput_sum = 0.0;
    double delay_sum = 0.0;
    int n = 0;
  };
  std::vector<Totals> totals(schemes.size());

  // The link x scheme grid as one parallel sweep.
  std::vector<ScenarioSpec> specs;
  for (const LinkPreset& link : all_link_presets()) {
    for (const SchemeId scheme : schemes) {
      specs.push_back(bench::base_spec(scheme, link));
    }
  }
  const std::vector<ScenarioResult> results = bench::sweep(specs);

  std::size_t cell = 0;
  for (const LinkPreset& link : all_link_presets()) {
    std::cout << "--- " << link.name() << " ---\n";
    TableWriter t({"Scheme", "Throughput (kbps)", "Self-inflicted delay (ms)",
                   "Utilization"});
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      const ScenarioResult& r = results[cell++];
      totals[i].tput_sum += r.throughput_kbps();
      totals[i].delay_sum += r.self_inflicted_delay_ms();
      ++totals[i].n;
      t.row()
          .cell(to_string(schemes[i]))
          .cell(r.throughput_kbps(), 0)
          .cell(r.self_inflicted_delay_ms(), 0)
          .cell(r.utilization(), 2);
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "--- Averages over all " << all_link_presets().size()
            << " links ---\n";
  TableWriter avg({"Scheme", "Avg throughput (kbps)", "Avg delay (ms)"});
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    avg.row()
        .cell(to_string(schemes[i]))
        .cell(totals[i].tput_sum / totals[i].n, 0)
        .cell(totals[i].delay_sum / totals[i].n, 0);
  }
  avg.print(std::cout);
  std::cout << "\nReading: GCC (WebRTC) is the §6-promised comparison.  Its "
               "delay-gradient filter\ntolerates standing queues and its "
               "8%/s ramp lags rate upswings, so Sprout should\nbeat it on "
               "both axes; FAST saturates at the cost of alpha packets of "
               "standing queue;\nCubic-PIE should land near Cubic-CoDel "
               "(in-network delay control).\n";
  return 0;
}

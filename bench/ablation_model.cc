// Ablations of the design choices DESIGN.md calls out, on the Verizon LTE
// downlink: the model's frozen parameters (σ, λz, tick, bins), the sender
// lookahead, and the forecast-quantile variant.
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "core/endpoint.h"
#include "core/params.h"
#include "core/source.h"
#include "link/cellsim.h"
#include "metrics/flow_metrics.h"
#include "sim/relay.h"
#include "sim/simulator.h"
#include "util/table.h"

// run_scenario() does not expose every model knob; this ablation harness
// rebuilds the Sprout topology directly for full control.
namespace {

using namespace sprout;

struct AblationResult {
  double throughput_kbps;
  double self_delay_ms;
};

AblationResult run_with_params(const SproutParams& params) {
  Simulator sim;
  const LinkPreset& fwd_preset =
      find_link_preset("Verizon LTE", LinkDirection::kDownlink);
  const LinkPreset& rev_preset =
      find_link_preset("Verizon LTE", LinkDirection::kUplink);
  const Duration run = bench::run_seconds();
  RelaySink fwd_egress, rev_egress;
  CellsimLink fwd_link(sim, preset_trace(fwd_preset, run + sec(2)), {},
                       fwd_egress);
  CellsimLink rev_link(sim, preset_trace(rev_preset, run + sec(2)), {},
                       rev_egress);
  BulkDataSource bulk;
  SproutEndpoint tx(sim, params, SproutVariant::kBayesian, 1, &bulk);
  SproutEndpoint rx(sim, params, SproutVariant::kBayesian, 1, nullptr);
  tx.attach_network(fwd_link);
  rx.attach_network(rev_link);
  MeasuredSink measured(sim, rx);
  fwd_egress.set_target(measured);
  rev_egress.set_target(tx);
  tx.start();
  rx.start(params.tick * 7 / 20);
  sim.run_until(TimePoint{} + run);

  const TimePoint from = TimePoint{} + run / 4;
  const TimePoint to = TimePoint{} + run;
  const double omni = omniscient_delay_percentile_ms(fwd_link.trace(), 95.0,
                                                     from, to, msec(20));
  return {measured.metrics().throughput_kbps(from, to),
          std::max(0.0, measured.metrics().delay_percentile_ms(95.0, from, to) -
                            omni)};
}

void print_row(TableWriter& t, const std::string& label,
               const SproutParams& params) {
  const AblationResult r = run_with_params(params);
  t.row().cell(label).cell(r.throughput_kbps, 0).cell(r.self_delay_ms, 0);
}

}  // namespace

int main() {
  using namespace sprout;

  std::cout << "=== Ablations (Verizon LTE downlink) ===\n\n";
  TableWriter t({"Variant", "Throughput (kbps)", "Self-inflicted delay (ms)"});

  SproutParams base;
  print_row(t, "baseline (paper params)", base);

  for (double sigma : {50.0, 500.0}) {
    SproutParams p = base;
    p.sigma_pps_per_sqrt_s = sigma;
    print_row(t, "sigma = " + format_double(sigma, 0) + " pkt/s/sqrt(s)", p);
  }
  for (double lz : {0.2, 5.0}) {
    SproutParams p = base;
    p.outage_escape_rate_per_s = lz;
    print_row(t, "lambda_z = " + format_double(lz, 1) + " /s", p);
  }
  for (int tick_ms : {10, 40, 80}) {
    SproutParams p = base;
    p.tick = msec(tick_ms);
    print_row(t, "tick = " + std::to_string(tick_ms) + " ms", p);
  }
  for (int bins : {64, 128}) {
    SproutParams p = base;
    p.num_bins = bins;
    print_row(t, std::to_string(bins) + " rate bins", p);
  }
  for (int lookahead : {3, 8}) {
    SproutParams p = base;
    p.sender_lookahead_ticks = lookahead;
    print_row(t,
              "lookahead = " + std::to_string(lookahead) + " ticks (" +
                  std::to_string(lookahead * 20) + " ms tolerance)",
              p);
  }
  {
    SproutParams p = base;
    p.count_noise_in_forecast = true;
    print_row(t, "Poisson-mixture forecast (paper-literal text)", p);
  }
  t.print(std::cout);
  std::cout << "\nNotes: larger sigma forgets faster (more caution, less "
               "throughput); longer ticks slow\noutage detection; the "
               "Poisson-mixture forecast quantile starves the window (see "
               "DESIGN.md §6).\n";
  return 0;
}

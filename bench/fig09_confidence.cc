// Figure 9: sweeping the forecast's confidence parameter (95/75/50/25/5%)
// on the T-Mobile 3G (UMTS) uplink traces out a throughput-delay frontier;
// other schemes are printed for reference.
//
// The confidence sweep and the reference schemes run as one parallel
// sweep; the forecaster CDF tables are shared across cells (the tables do
// not depend on the confidence, only the query percentile does).
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "util/table.h"

int main() {
  using namespace sprout;

  const LinkPreset& link =
      find_link_preset("T-Mobile 3G (UMTS)", LinkDirection::kUplink);
  std::cout << "=== Figure 9: confidence sweep on the " << link.name()
            << " ===\n\n";

  const std::vector<double> confidences = {95.0, 75.0, 50.0, 25.0, 5.0};
  const std::vector<SchemeId> references = {
      SchemeId::kSproutEwma, SchemeId::kCubic, SchemeId::kVegas,
      SchemeId::kLedbat, SchemeId::kSkype};

  std::vector<ScenarioSpec> specs;
  for (const double confidence : confidences) {
    ScenarioSpec c = bench::base_spec(SchemeId::kSprout, link);
    c.sprout_confidence = confidence;
    specs.push_back(c);
  }
  for (const SchemeId scheme : references) {
    specs.push_back(bench::base_spec(scheme, link));
  }
  const std::vector<ScenarioResult> results = bench::sweep(specs);

  TableWriter t({"Scheme", "Throughput (kbps)", "Self-inflicted delay (ms)"});
  std::size_t cell = 0;
  for (const double confidence : confidences) {
    const ScenarioResult& r = results[cell++];
    t.row()
        .cell("Sprout (" + format_double(confidence, 0) + "%)")
        .cell(r.throughput_kbps(), 0)
        .cell(r.self_inflicted_delay_ms(), 0);
  }
  for (const SchemeId scheme : references) {
    const ScenarioResult& r = results[cell++];
    t.row()
        .cell(to_string(scheme))
        .cell(r.throughput_kbps(), 0)
        .cell(r.self_inflicted_delay_ms(), 0);
  }
  t.print(std::cout);
  std::cout << "\n(paper shape: lowering confidence moves along a frontier of "
               "more throughput, more delay.)\n";
  return 0;
}

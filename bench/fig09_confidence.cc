// Figure 9: sweeping the forecast's confidence parameter (95/75/50/25/5%)
// on the T-Mobile 3G (UMTS) uplink traces out a throughput-delay frontier;
// other schemes are printed for reference.
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

int main() {
  using namespace sprout;

  const LinkPreset& link =
      find_link_preset("T-Mobile 3G (UMTS)", LinkDirection::kUplink);
  std::cout << "=== Figure 9: confidence sweep on the " << link.name()
            << " ===\n\n";

  TableWriter t({"Scheme", "Throughput (kbps)", "Self-inflicted delay (ms)"});
  for (const double confidence : {95.0, 75.0, 50.0, 25.0, 5.0}) {
    ExperimentConfig c = bench::base_config(SchemeId::kSprout, link);
    c.sprout_confidence = confidence;
    const ExperimentResult r = run_experiment(c);
    t.row()
        .cell("Sprout (" + format_double(confidence, 0) + "%)")
        .cell(r.throughput_kbps, 0)
        .cell(r.self_inflicted_delay_ms, 0);
  }
  for (const SchemeId scheme :
       {SchemeId::kSproutEwma, SchemeId::kCubic, SchemeId::kVegas,
        SchemeId::kLedbat, SchemeId::kSkype}) {
    const ExperimentResult r = run_experiment(bench::base_config(scheme, link));
    t.row()
        .cell(to_string(scheme))
        .cell(r.throughput_kbps, 0)
        .cell(r.self_inflicted_delay_ms, 0);
  }
  t.print(std::cout);
  std::cout << "\n(paper shape: lowering confidence moves along a frontier of "
               "more throughput, more delay.)\n";
  return 0;
}

// Scheme behaviour across the synthetic channel-model space — the sweep
// the stochastic-synthesis subsystem (src/synth/) exists for.  Instead of
// the eight checked-in preset links, each cell runs a single flow over a
// PARAMETRIC channel: the paper's own Brownian-rate/Poisson-delivery
// process (Sprout's modeling assumptions, matched), the same process with
// handover and outage overlays, a Markov-modulated (MMPP) regime switcher
// at two dwell speeds, and the mean-reverting Cox process with Pareto
// outages (deliberately mismatched).  Sprout's forecast should look best
// where the channel matches its model and degrade gracefully where the
// rate process violates it — this table measures exactly that, for Sprout
// against Cubic and Vegas.
//
// Reported per (channel, scheme): throughput, 95% end-to-end delay,
// self-inflicted delay (p95 minus the omniscient baseline on the same
// trace) and link utilization.
//
// Flags:
//   --smoke      two cells (Sprout + Cubic on the matched Brownian
//                channel) — the CI synth-smoke job's shape
//   --json PATH  also dump the combined table as JSON (CI artifact)
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "util/table.h"

namespace {

using namespace sprout;

struct Channel {
  std::string name;
  SynthSpec forward;
};

// The reverse (feedback) direction for every cell: a calmer, narrower
// Brownian link on its own seed, so the forward channel under test is the
// bottleneck.
SynthSpec feedback_link() {
  BrownianModelParams p;
  p.init_rate_pps = 200.0;
  p.sigma_pps_per_sqrt_s = 50.0;
  p.max_rate_pps = 400.0;
  return SynthSpec::brownian_model(p, /*seed=*/99);
}

std::vector<Channel> channel_space(bool smoke) {
  std::vector<Channel> channels;

  BrownianModelParams calm;
  calm.sigma_pps_per_sqrt_s = 100.0;
  BrownianModelParams paper;  // the paper §4 defaults: sigma = 200
  BrownianModelParams wild;
  wild.sigma_pps_per_sqrt_s = 400.0;

  channels.push_back({"brownian sigma=200 (matched)",
                      SynthSpec::brownian_model(paper, 7)});
  if (smoke) return channels;

  channels.push_back({"brownian sigma=100", SynthSpec::brownian_model(calm, 7)});
  channels.push_back({"brownian sigma=400", SynthSpec::brownian_model(wild, 7)});
  channels.push_back(
      {"brownian + handover sawtooth",
       SynthSpec::brownian_model(paper, 7)
           .with_op(SynthOp::sawtooth(/*period_s=*/15.0, /*depth=*/0.7,
                                      /*ramp_s=*/3.0))});
  channels.push_back(
      {"brownian + on/off outages",
       SynthSpec::brownian_model(paper, 7)
           .with_op(SynthOp::outage(/*mean_on_s=*/12.0, /*mean_off_s=*/1.0))});

  MarkovModelParams slow;  // default three-regime cell
  MarkovModelParams fast = slow;
  for (MarkovState& s : fast.states) s.mean_dwell_s /= 4.0;
  channels.push_back({"markov 3-state", SynthSpec::markov_model(slow, 7)});
  channels.push_back(
      {"markov 3-state, 4x dwell rate", SynthSpec::markov_model(fast, 7)});

  channels.push_back(
      {"cox OU+Pareto (mismatched)", SynthSpec::cox_model({}, 7)});
  return channels;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: table_synth [--smoke] [--json PATH]\n";
      return 2;
    }
  }

  std::cout << "=== Schemes across the synthetic channel-model space ===\n\n";

  const std::vector<Channel> channels = channel_space(smoke);
  std::vector<SchemeId> schemes = {SchemeId::kSprout, SchemeId::kCubic,
                                   SchemeId::kVegas};
  if (smoke) schemes = {SchemeId::kSprout, SchemeId::kCubic};

  std::vector<ScenarioSpec> specs;
  for (const Channel& channel : channels) {
    for (const SchemeId scheme : schemes) {
      ScenarioSpec spec;
      spec.scheme = scheme;
      spec.link = LinkSpec::synth(channel.forward, feedback_link());
      specs.push_back(bench::with_bench_times(std::move(spec)));
    }
  }

  const std::vector<ScenarioResult> results = bench::sweep(specs);

  TableWriter t({"Channel", "Scheme", "kbps", "d95 (ms)", "Self-infl. (ms)",
                 "Util"});
  std::size_t cell = 0;
  for (const Channel& channel : channels) {
    for (const SchemeId scheme : schemes) {
      const ScenarioResult& r = results[cell++];
      t.row()
          .cell(channel.name)
          .cell(to_string(scheme))
          .cell(r.throughput_kbps(), 0)
          .cell(r.delay95_ms(), 0)
          .cell(r.self_inflicted_delay_ms(), 0)
          .cell(r.utilization(), 2);
    }
  }
  t.print(std::cout);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    t.write_json(out);
    std::cout << "\nJSON written to " << json_path << "\n";
  }

  std::cout
      << "\nReading: on the matched Brownian channel Sprout rides close to\n"
         "the omniscient baseline — high utilization, self-inflicted delay\n"
         "near zero — while the loss-based rival fills the queue.  Overlays\n"
         "and regime switching (handover dips, on/off outages, MMPP) break\n"
         "the forecast's assumptions in different ways: delay stays bounded\n"
         "(the cautious percentile still protects the queue) but throughput\n"
         "falls further below capacity as the rate process departs from the\n"
         "Brownian model the filter assumes.\n";
  return 0;
}

// Microbenchmarks of Sprout's inference loop (google-benchmark).
//
// The paper claims the whole receiver pipeline — evolve, observe, forecast,
// all precomputed at startup — costs under 5% of one PC core at high
// throughput.  At one tick per 20 ms, a full tick must therefore run in
// well under 1 ms; these benchmarks verify the headroom.
#include <benchmark/benchmark.h>

#include <vector>

#include "cc/gcc.h"
#include "core/adaptive.h"
#include "core/alt_models.h"
#include "core/forecaster.h"
#include "core/rate_model.h"
#include "core/strategy.h"
#include "core/wire.h"

namespace sprout {
namespace {

void BM_TransitionMatrixBuild(benchmark::State& state) {
  SproutParams params;
  params.num_bins = static_cast<int>(state.range(0));
  for (auto _ : state) {
    TransitionMatrix m(params);
    benchmark::DoNotOptimize(m.entry(0, 0));
  }
}
BENCHMARK(BM_TransitionMatrixBuild)->Arg(64)->Arg(256);

void BM_ForecasterBuild(benchmark::State& state) {
  SproutParams params;
  params.count_noise_in_forecast = true;  // the expensive table variant
  for (auto _ : state) {
    DeliveryForecaster f(params);
    benchmark::DoNotOptimize(&f);
  }
}
BENCHMARK(BM_ForecasterBuild);

void BM_FilterEvolve(benchmark::State& state) {
  SproutParams params;
  SproutBayesFilter filter(params);
  filter.observe(10);
  for (auto _ : state) {
    filter.evolve();
  }
}
BENCHMARK(BM_FilterEvolve);

void BM_FilterObserve(benchmark::State& state) {
  SproutParams params;
  SproutBayesFilter filter(params);
  for (auto _ : state) {
    filter.evolve();
    filter.observe(10);
  }
}
BENCHMARK(BM_FilterObserve);

// --- the PR-6 fast paths, measured against their exact references ---

// Banded evolve (the default) vs the dense bins² pass, at the paper's 256
// bins and a coarser grid.  A realistic non-degenerate posterior: the
// filter locked near 500 pps, so the banded path's row skipping and the
// kernel dispatch both engage as in production.
void evolve_bench_dist(const SproutParams& params, RateDistribution& d) {
  SproutBayesFilter filter(params);
  for (int t = 0; t < 50; ++t) {
    filter.evolve();
    filter.observe(10);
  }
  d = filter.distribution();
}

void BM_EvolveBanded(benchmark::State& state) {
  SproutParams params;
  params.num_bins = static_cast<int>(state.range(0));
  TransitionMatrix m(params);
  RateDistribution d(params.num_bins);
  evolve_bench_dist(params, d);
  for (auto _ : state) {
    m.evolve(d);
  }
  state.counters["mean_bandwidth"] = m.mean_bandwidth();
}
BENCHMARK(BM_EvolveBanded)->Arg(64)->Arg(256);

void BM_EvolveDense(benchmark::State& state) {
  SproutParams params;
  params.num_bins = static_cast<int>(state.range(0));
  TransitionMatrix m(params);
  RateDistribution d(params.num_bins);
  evolve_bench_dist(params, d);
  for (auto _ : state) {
    m.evolve_dense(d);
  }
}
BENCHMARK(BM_EvolveDense)->Arg(64)->Arg(256);

// Batched multi-flow evolve vs N serial banded evolves at the same states.
void BM_EvolveBatch(benchmark::State& state) {
  SproutParams params;
  const int flows = static_cast<int>(state.range(0));
  const bool batched = state.range(1) != 0;
  TransitionMatrix m(params);
  std::vector<RateDistribution> dists;
  for (int f = 0; f < flows; ++f) {
    RateDistribution d(params.num_bins);
    SproutParams p = params;
    SproutBayesFilter filter(p);
    for (int t = 0; t < 30 + f; ++t) {
      filter.evolve();
      filter.observe(4 + (f % 12));
    }
    dists.push_back(filter.distribution());
  }
  std::vector<RateDistribution*> ptrs;
  for (auto& d : dists) ptrs.push_back(&d);
  for (auto _ : state) {
    if (batched) {
      m.evolve_batch(ptrs);
    } else {
      for (auto* d : ptrs) m.evolve(*d);
    }
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_EvolveBatch)
    ->Args({8, 0})   // 8 flows, serial
    ->Args({8, 1})   // 8 flows, batched
    ->Args({32, 0})  // heavier fleets
    ->Args({32, 1});

// The fused quantile scan: one forecast() at the paper's config, with the
// Poisson-mixture tables engaged (the path the transposed layout and the
// monotone-floor short-circuit accelerate).
void BM_ForecastMixtureQuantile(benchmark::State& state) {
  SproutParams params;
  params.count_noise_in_forecast = true;
  SproutBayesFilter filter(params);
  DeliveryForecaster forecaster(params);
  for (int t = 0; t < 50; ++t) {
    filter.evolve();
    filter.observe(10);
  }
  TimePoint now{};
  for (auto _ : state) {
    now += params.tick;
    DeliveryForecast f = forecaster.forecast(filter.distribution(), now);
    benchmark::DoNotOptimize(f.cumulative_at(8));
  }
}
BENCHMARK(BM_ForecastMixtureQuantile);

void BM_FullTickWithForecast(benchmark::State& state) {
  // One complete receiver tick: evolve + observe + 8-tick forecast.
  SproutParams params;
  params.count_noise_in_forecast = state.range(0) != 0;
  SproutBayesFilter filter(params);
  DeliveryForecaster forecaster(params);
  TimePoint now{};
  for (auto _ : state) {
    filter.evolve();
    filter.observe(10);
    now += params.tick;
    DeliveryForecast f = forecaster.forecast(filter.distribution(), now);
    benchmark::DoNotOptimize(f.cumulative_at(8));
  }
  // CPU fraction at 50 ticks/s = 50 * per-iteration-seconds.
  state.counters["cpu_percent_at_50Hz"] = benchmark::Counter(
      50.0 * 100.0, benchmark::Counter::kAvgIterations |
                        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullTickWithForecast)
    ->Arg(0)   // rate-quantile forecast (default)
    ->Arg(1);  // Poisson-mixture forecast (paper-literal ablation)

// --- extension strategies: the same CPU budget must hold for them ---

template <typename Strategy>
void full_tick_loop(benchmark::State& state, Strategy& strategy) {
  TimePoint now{};
  SproutParams params;
  for (auto _ : state) {
    strategy.advance_tick();
    strategy.observe(10);
    now += params.tick;
    DeliveryForecast f = strategy.make_forecast(now);
    benchmark::DoNotOptimize(f.cumulative_at(8));
  }
  state.counters["cpu_percent_at_50Hz"] = benchmark::Counter(
      50.0 * 100.0, benchmark::Counter::kAvgIterations |
                        benchmark::Counter::kIsRate);
}

void BM_FullTickAdaptive(benchmark::State& state) {
  // Five-hypothesis model averaging: ~5x the single-filter cost.
  SproutParams params;
  AdaptiveForecastStrategy strategy(params);
  full_tick_loop(state, strategy);
}
BENCHMARK(BM_FullTickAdaptive);

void BM_FullTickMmpp(benchmark::State& state) {
  SproutParams params;
  MmppForecastStrategy strategy(params);
  full_tick_loop(state, strategy);
}
BENCHMARK(BM_FullTickMmpp);

void BM_FullTickEmpirical(benchmark::State& state) {
  SproutParams params;
  EmpiricalForecastStrategy strategy(params);
  // Pre-fill the window so the bench measures steady state, not cold start.
  for (int i = 0; i < 1500; ++i) {
    strategy.advance_tick();
    strategy.observe(10);
  }
  full_tick_loop(state, strategy);
}
BENCHMARK(BM_FullTickEmpirical);

// GCC's per-packet receiver pipeline (grouper -> Kalman -> detector ->
// AIMD), for comparison with Sprout's per-tick pipeline.
void BM_GccReceiverPipeline(benchmark::State& state) {
  InterArrivalGrouper grouper;
  ArrivalFilter filter;
  OveruseDetector detector;
  AimdRateController aimd;
  RateEstimator rate;
  std::int64_t i = 0;
  for (auto _ : state) {
    const TimePoint sent = TimePoint{} + msec(33 * i);
    const TimePoint arrived = sent + msec(20);
    rate.on_packet(arrived, kMtuBytes);
    const auto delta = grouper.on_packet(sent, arrived, kMtuBytes);
    if (delta.has_value()) {
      const double offset = filter.update(*delta);
      const BandwidthUsage usage = detector.detect(offset, arrived);
      benchmark::DoNotOptimize(
          aimd.update(usage, rate.rate_kbps(arrived), arrived));
    }
    ++i;
  }
}
BENCHMARK(BM_GccReceiverPipeline);

void BM_WireSerializeParse(benchmark::State& state) {
  SproutWireMessage msg;
  msg.header.seqno = 1234567;
  msg.header.payload_bytes = 1404;
  ForecastBlock block;
  block.received_or_lost_bytes = 999999;
  block.tick_us = 20000;
  for (int h = 1; h <= 8; ++h) {
    block.cumulative_bytes.push_back(static_cast<std::uint32_t>(h * 15000));
  }
  msg.forecast = block;
  for (auto _ : state) {
    auto bytes = serialize(msg);
    auto parsed = parse(bytes);
    benchmark::DoNotOptimize(parsed->header.seqno);
  }
}
BENCHMARK(BM_WireSerializeParse);

}  // namespace
}  // namespace sprout

BENCHMARK_MAIN();

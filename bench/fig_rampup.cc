// §7 transient study: Sprout's startup from idle ("We did not evaluate any
// non-saturating applications in this paper or attempt to measure or
// optimize Sprout's startup time from idle").
//
// An on-off talkspurt application (2 s bursts at 1.5 Mbit/s) runs over
// Sprout and Sprout-EWMA on the Verizon LTE downlink, with the silence
// length swept from 0.5 s to 10 s.  For each talkspurt we measure the
// DRAIN LAG — how long after the app stopped offering data its last byte
// reached the receiver.  Longer silences mean staler forecasts at burst
// onset (only heartbeats feed the receiver's filter while idle), so the
// lag at the 95th percentile is the cost of Sprout's startup transient.
#include <algorithm>
#include <iostream>
#include <memory>
#include <vector>

#include "app/onoff_app.h"
#include "bench_common.h"
#include "core/endpoint.h"
#include "link/cellsim.h"
#include "metrics/flow_metrics.h"
#include "sim/relay.h"
#include "sim/simulator.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace sprout;

struct RampResult {
  double mean_lag_ms = 0.0;
  double p95_lag_ms = 0.0;
  int bursts_measured = 0;
};

RampResult run_ramp(SproutVariant variant, Duration off_duration,
                    Duration run_time) {
  Simulator sim;
  const LinkPreset& fwd_p =
      find_link_preset("Verizon LTE", LinkDirection::kDownlink);
  const LinkPreset& rev_p =
      find_link_preset("Verizon LTE", LinkDirection::kUplink);
  Trace fwd_trace = preset_trace(fwd_p, run_time + sec(2));
  Trace rev_trace = preset_trace(rev_p, run_time + sec(2));
  CellsimConfig cfg;
  cfg.propagation_delay = msec(20);
  cfg.seed = 7;
  RelaySink fwd_egress;
  RelaySink rev_egress;
  CellsimLink fwd(sim, std::move(fwd_trace), cfg, fwd_egress);
  CellsimLink rev(sim, std::move(rev_trace), cfg, rev_egress);

  SproutParams params;
  OnOffProfile profile;
  profile.off_duration = off_duration;
  OnOffApp app(sim, profile, 3);
  SproutEndpoint tx(sim, params, variant, 1, &app.source());
  SproutEndpoint rx(sim, params, variant, 1, nullptr);
  tx.attach_network(fwd);
  rx.attach_network(rev);
  MeasuredSink measured(sim, rx);
  fwd_egress.set_target(measured);
  rev_egress.set_target(tx);
  tx.start();
  rx.start(params.tick * 7 / 20);
  app.start();

  // Poll the receiver's payload-stream counter every 5 ms: the crossing of
  // each burst's cumulative byte target marks its drain completion.
  std::vector<std::pair<TimePoint, ByteCount>> delivered;
  delivered.reserve(static_cast<std::size_t>(to_seconds(run_time) * 200) + 1);
  std::function<void()> poll = [&] {
    delivered.emplace_back(sim.now(), rx.receiver().payload_bytes_received());
    if (sim.now() < TimePoint{} + run_time) sim.after(msec(5), poll);
  };
  sim.after(msec(5), poll);

  sim.run_until(TimePoint{} + run_time);

  const std::vector<BurstDrain> drains =
      burst_drain_lags(app.bursts(), delivered);
  RampResult r;
  PercentileEstimator lags;
  RunningStats stats;
  for (const BurstDrain& d : drains) {
    // Skip the first talkspurt: it measures protocol startup, not
    // idle-restart (and the metrics warmup convention skips it anyway).
    if (d.burst.start == app.bursts().front().start) continue;
    const double ms = to_millis(d.lag);
    lags.add(ms);
    stats.add(ms);
  }
  r.bursts_measured = static_cast<int>(stats.count());
  if (r.bursts_measured > 0) {
    r.mean_lag_ms = stats.mean();
    r.p95_lag_ms = lags.percentile(95.0);
  }
  return r;
}

}  // namespace

int main() {
  using namespace sprout;

  const Duration run_time = bench::run_seconds() * 2;  // more bursts
  std::cout << "=== §7: startup-from-idle transient (Verizon LTE downlink, "
               "2 s talkspurts at 1.5 Mbit/s) ===\n\n";

  TableWriter t({"Silence (s)", "Variant", "Bursts", "Mean drain lag (ms)",
                 "p95 drain lag (ms)"});
  for (const auto off : {msec(500), sec(2), sec(10)}) {
    for (const SproutVariant v :
         {SproutVariant::kBayesian, SproutVariant::kEwma}) {
      const RampResult r = run_ramp(v, off, run_time);
      t.row()
          .cell(to_seconds(off), 1)
          .cell(v == SproutVariant::kBayesian ? "Sprout" : "Sprout-EWMA")
          .cell(static_cast<std::int64_t>(r.bursts_measured))
          .cell(r.mean_lag_ms, 0)
          .cell(r.p95_lag_ms, 0);
    }
  }
  t.print(std::cout);
  std::cout
      << "\nReading: the drain lag stays bounded and roughly FLAT as the\n"
         "silence grows because idle heartbeats keep the receiver's filter\n"
         "fed (§3.2) — the protocol's own design already mitigates the\n"
         "transient §7 flags.  The cautious forecast does tax talkspurts\n"
         "(mean lag several times EWMA's): a sub-window of the offered\n"
         "burst clears per 100 ms budget until the filter has re-learned\n"
         "the rate.  Without heartbeats silence would read as an outage\n"
         "and every talkspurt would begin stalled.\n";
  return 0;
}

// §5.7 table: a TCP Cubic bulk download competing with a Skype call on the
// Verizon LTE link, directly vs through SproutTunnel.
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

int main() {
  using namespace sprout;

  std::cout << "=== §5.7: SproutTunnel isolating competing flows (Verizon "
               "LTE) ===\n\n";

  const TunnelContentionResult direct =
      run_tunnel_contention(bench::tunnel_spec(false));
  const TunnelContentionResult tunneled =
      run_tunnel_contention(bench::tunnel_spec(true));

  auto pct_change = [](double from, double to) {
    return from > 0 ? 100.0 * (to - from) / from : 0.0;
  };

  TableWriter t({"Metric", "Direct", "via Sprout", "Change"});
  t.row()
      .cell("Cubic throughput (kbps)")
      .cell(direct.cubic_throughput_kbps, 0)
      .cell(tunneled.cubic_throughput_kbps, 0)
      .cell(format_double(
                pct_change(direct.cubic_throughput_kbps,
                           tunneled.cubic_throughput_kbps),
                0) +
            "%");
  t.row()
      .cell("Skype throughput (kbps)")
      .cell(direct.skype_throughput_kbps, 0)
      .cell(tunneled.skype_throughput_kbps, 0)
      .cell(format_double(
                pct_change(direct.skype_throughput_kbps,
                           tunneled.skype_throughput_kbps),
                0) +
            "%");
  t.row()
      .cell("Skype 95% delay (s)")
      .cell(direct.skype_delay95_ms / 1000.0, 2)
      .cell(tunneled.skype_delay95_ms / 1000.0, 2)
      .cell(format_double(
                pct_change(direct.skype_delay95_ms, tunneled.skype_delay95_ms),
                0) +
            "%");
  t.print(std::cout);
  std::cout << "\n(paper: Cubic 8336 -> 3776 kbps (-55%); Skype 78 -> 490 "
               "kbps (+528%); Skype 95% delay 6.0 s -> 0.17 s (-97%).\n The "
               "shape to check: the tunnel rescues the interactive flow's "
               "delay and throughput at a bulk-throughput cost.)\n";
  return 0;
}

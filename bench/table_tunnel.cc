// §5.7 table: a TCP Cubic bulk download competing with a Skype call on the
// Verizon LTE link, directly vs through SproutTunnel.
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

int main() {
  using namespace sprout;

  std::cout << "=== §5.7: SproutTunnel isolating competing flows (Verizon "
               "LTE) ===\n\n";

  // flows[0] is the Cubic download, flows[1] the Skype call.
  const ScenarioResult direct = run_scenario(bench::tunnel_spec(false));
  const ScenarioResult tunneled = run_scenario(bench::tunnel_spec(true));
  const FlowResult& d_cubic = direct.flows.at(0);
  const FlowResult& d_skype = direct.flows.at(1);
  const FlowResult& t_cubic = tunneled.flows.at(0);
  const FlowResult& t_skype = tunneled.flows.at(1);

  auto pct_change = [](double from, double to) {
    return from > 0 ? 100.0 * (to - from) / from : 0.0;
  };

  TableWriter t({"Metric", "Direct", "via Sprout", "Change"});
  t.row()
      .cell("Cubic throughput (kbps)")
      .cell(d_cubic.throughput_kbps, 0)
      .cell(t_cubic.throughput_kbps, 0)
      .cell(format_double(
                pct_change(d_cubic.throughput_kbps,
                           t_cubic.throughput_kbps),
                0) +
            "%");
  t.row()
      .cell("Skype throughput (kbps)")
      .cell(d_skype.throughput_kbps, 0)
      .cell(t_skype.throughput_kbps, 0)
      .cell(format_double(
                pct_change(d_skype.throughput_kbps,
                           t_skype.throughput_kbps),
                0) +
            "%");
  t.row()
      .cell("Skype 95% delay (s)")
      .cell(d_skype.delay95_ms / 1000.0, 2)
      .cell(t_skype.delay95_ms / 1000.0, 2)
      .cell(format_double(
                pct_change(d_skype.delay95_ms, t_skype.delay95_ms),
                0) +
            "%");
  t.print(std::cout);
  std::cout << "\n(paper: Cubic 8336 -> 3776 kbps (-55%); Skype 78 -> 490 "
               "kbps (+528%); Skype 95% delay 6.0 s -> 0.17 s (-97%).\n The "
               "shape to check: the tunnel rescues the interactive flow's "
               "delay and throughput at a bulk-throughput cost.)\n";
  return 0;
}

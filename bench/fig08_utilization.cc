// Figure 8: average utilization vs average self-inflicted delay of Sprout,
// Sprout-EWMA, Cubic and Cubic-over-CoDel, averaged over the eight links.
//
// The 4 schemes x 8 links grid runs as one parallel sweep.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "util/table.h"

int main() {
  using namespace sprout;

  const std::vector<SchemeId> schemes = {SchemeId::kSprout,
                                         SchemeId::kSproutEwma,
                                         SchemeId::kCubic,
                                         SchemeId::kCubicCodel};

  std::vector<ScenarioSpec> specs;
  for (const SchemeId scheme : schemes) {
    for (const LinkPreset& link : all_link_presets()) {
      specs.push_back(bench::base_spec(scheme, link));
    }
  }
  const std::vector<ScenarioResult> results = bench::sweep(specs);

  std::cout << "=== Figure 8: average utilization and delay across all 8 "
               "links ===\n\n";
  TableWriter t({"Scheme", "Avg utilization (%)",
                 "Avg self-inflicted delay (ms)"});
  std::size_t cell = 0;
  for (const SchemeId scheme : schemes) {
    double util = 0.0;
    double delay = 0.0;
    for (std::size_t i = 0; i < all_link_presets().size(); ++i) {
      const ScenarioResult& r = results[cell++];
      util += r.utilization();
      delay += r.self_inflicted_delay_ms();
    }
    const double n = static_cast<double>(all_link_presets().size());
    t.row()
        .cell(to_string(scheme))
        .cell(100.0 * util / n, 1)
        .cell(delay / n, 0);
  }
  t.print(std::cout);
  std::cout << "\n(paper shape: CoDel tames Cubic's multi-second delay at "
               "little throughput cost;\n Sprout's delay is lower still, at "
               "some throughput cost; Sprout-EWMA sits between.)\n";
  return 0;
}

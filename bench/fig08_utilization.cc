// Figure 8: average utilization vs average self-inflicted delay of Sprout,
// Sprout-EWMA, Cubic and Cubic-over-CoDel, averaged over the eight links.
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

int main() {
  using namespace sprout;

  std::cout << "=== Figure 8: average utilization and delay across all 8 "
               "links ===\n\n";
  TableWriter t({"Scheme", "Avg utilization (%)",
                 "Avg self-inflicted delay (ms)"});
  for (const SchemeId scheme :
       {SchemeId::kSprout, SchemeId::kSproutEwma, SchemeId::kCubic,
        SchemeId::kCubicCodel}) {
    double util = 0.0;
    double delay = 0.0;
    for (const LinkPreset& link : all_link_presets()) {
      const ExperimentResult r =
          run_experiment(bench::base_config(scheme, link));
      util += r.utilization;
      delay += r.self_inflicted_delay_ms;
    }
    const double n = static_cast<double>(all_link_presets().size());
    t.row()
        .cell(to_string(scheme))
        .cell(100.0 * util / n, 1)
        .cell(delay / n, 0);
  }
  t.print(std::cout);
  std::cout << "\n(paper shape: CoDel tames Cubic's multi-second delay at "
               "little throughput cost;\n Sprout's delay is lower still, at "
               "some throughput cost; Sprout-EWMA sits between.)\n";
  return 0;
}

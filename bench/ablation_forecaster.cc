// §7 ablation: "we are eager to explore different stochastic network
// models ... to see whether it is possible to perform much better than
// Sprout if a protocol has more accurate forecasts."
//
// Runs the full Sprout protocol with five interchangeable forecasters —
// the paper's Bayesian Cox filter, the EWMA ablation, online (σ, λz)
// model averaging, a learned regime-switching MMPP, and a model-free
// empirical-quantile window — on two contrasting links, plus a confidence
// sweep for the MMPP model (whose honest caution is far stronger than the
// Cox model's at 95%).
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

int main() {
  using namespace sprout;

  std::cout << "=== §7 ablation: alternative stochastic forecasters ===\n\n";

  // links x forecaster variants as one parallel sweep.
  std::vector<const LinkPreset*> links;
  for (const char* network : {"Verizon LTE", "T-Mobile 3G (UMTS)"}) {
    for (const LinkDirection dir :
         {LinkDirection::kDownlink, LinkDirection::kUplink}) {
      links.push_back(&find_link_preset(network, dir));
    }
  }
  std::vector<ScenarioSpec> specs;
  for (const LinkPreset* link : links) {
    for (const SchemeId s : forecaster_schemes()) {
      specs.push_back(bench::base_spec(s, *link));
    }
  }
  const std::vector<ScenarioResult> results = bench::sweep(specs);

  std::size_t cell = 0;
  for (const LinkPreset* link : links) {
    std::cout << "--- " << link->name() << " ---\n";
    TableWriter t({"Forecaster", "Throughput (kbps)",
                   "Self-inflicted delay (ms)", "Utilization"});
    for (const SchemeId s : forecaster_schemes()) {
      const ScenarioResult& r = results[cell++];
      t.row()
          .cell(to_string(s))
          .cell(r.throughput_kbps(), 0)
          .cell(r.self_inflicted_delay_ms(), 0)
          .cell(r.utilization(), 2);
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  // The MMPP model's 95% caution is dominated by its learned global jumps
  // (the trace CAN crash to near-zero, so a 95%-safe forecast is tiny).
  // Sweeping its confidence knob shows the usable frontier, mirroring the
  // paper's Figure 9 for the alternative model.
  std::cout << "--- Sprout-MMPP confidence sweep (Verizon LTE downlink) ---\n";
  {
    const LinkPreset& link =
        find_link_preset("Verizon LTE", LinkDirection::kDownlink);
    const std::vector<double> confidences = {95.0, 75.0, 50.0, 25.0, 5.0};
    std::vector<ScenarioSpec> sweep_specs;
    for (const double confidence : confidences) {
      ScenarioSpec c = bench::base_spec(SchemeId::kSproutMmpp, link);
      c.sprout_confidence = confidence;
      sweep_specs.push_back(c);
    }
    const std::vector<ScenarioResult> sweep_results =
        bench::sweep(sweep_specs);
    TableWriter t({"Confidence", "Throughput (kbps)",
                   "Self-inflicted delay (ms)"});
    for (std::size_t i = 0; i < confidences.size(); ++i) {
      const ScenarioResult& r = sweep_results[i];
      t.row()
          .cell(format_double(confidences[i], 0) + "%")
          .cell(r.throughput_kbps(), 0)
          .cell(r.self_inflicted_delay_ms(), 0);
    }
    t.print(std::cout);
  }

  std::cout <<
      "\nFindings this bench documents:\n"
      "  * The Cox model's LOCAL diffusion is load-bearing: models that\n"
      "    admit global rate jumps (MMPP trained on the trace's own\n"
      "    regime switches) produce honest but brutal 95% caution.\n"
      "  * Online model averaging (Sprout-Adaptive) selects a larger sigma\n"
      "    than the paper's frozen 200 on these traces and buys lower delay\n"
      "    at a throughput cost; on quiet links it converges to small sigma\n"
      "    (see core_adaptive_test).\n"
      "  * The model-free empirical window needs censored samples treated\n"
      "    as right-censored order statistics to bootstrap at all\n"
      "    (alt_models.cc), and still trails the parametric forecasters.\n";
  return 0;
}

// §7 extension: "We have not evaluated the performance of multiple Sprouts
// sharing a queue."  This bench evaluates exactly that, on the Verizon LTE
// downlink: N identical flows through ONE shared queue (the situation the
// paper's per-user-queue assumption excludes), for Sprout, Sprout-EWMA and
// Cubic.
//
// Measured shape (see EXPERIMENTS.md): symmetric Sprouts divide the link
// fairly, and — counter to a first guess — aggregate utilization RISES
// with N: each flow forecasts the 5th percentile of its own 1/N share,
// and cautious quantiles are subadditive (the sum of N per-share
// 5th-percentiles exceeds one whole-link 5th-percentile), so multiplexing
// claws back the caution at the cost of a delay that grows with N.  Cubic
// fills the shared queue at any N, splits it unfairly, and everyone pays
// seconds of delay — the paper's §2.1 commingling argument, reproduced.
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

int main() {
  using namespace sprout;

  std::cout << "=== §7 extension: multiple flows sharing one cellular queue "
               "(Verizon LTE downlink) ===\n\n";

  const LinkPreset& link =
      find_link_preset("Verizon LTE", LinkDirection::kDownlink);

  const std::vector<SchemeId> schemes = {SchemeId::kSprout,
                                         SchemeId::kSproutEwma,
                                         SchemeId::kCubic};
  const std::vector<int> flow_counts = {1, 2, 4, 8};

  // scheme x flow-count grid as one parallel sweep.
  std::vector<ScenarioSpec> specs;
  for (const SchemeId scheme : schemes) {
    for (const int n : flow_counts) {
      specs.push_back(bench::shared_spec(scheme, n, link));
    }
  }
  const std::vector<ScenarioResult> results = bench::sweep(specs);

  std::size_t cell = 0;
  for (const SchemeId scheme : schemes) {
    std::cout << "--- " << to_string(scheme) << " ---\n";
    TableWriter t({"Flows", "Aggregate (kbps)", "Utilization", "Jain index",
                   "Worst flow delay95 (ms)"});
    for (const int n : flow_counts) {
      const ScenarioResult& r = results[cell++];
      t.row()
          .cell(static_cast<std::int64_t>(n))
          .cell(r.aggregate_throughput_kbps, 0)
          .cell(r.aggregate_utilization, 2)
          .cell(r.jain_index, 3)
          .cell(r.max_delay95_ms, 0);
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  std::cout
      << "Reading: symmetric Sprouts stay fair (Jain near 1) and keep delay\n"
         "one to two orders below Cubic's.  Aggregate utilization RISES\n"
         "with N (cautious per-share quantiles are subadditive), while the\n"
         "worst flow's delay grows with N — multiple Sprouts cooperate, but\n"
         "each addition spends some of the delay budget.  Cubic saturates\n"
         "the link at any N with unfair shares and seconds of queueing.\n";
  return 0;
}

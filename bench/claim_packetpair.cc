// §3.1 claim: "packet arrivals on a saturated link do not follow an
// observable isochronicity.  This is a roadblock for packet-pair
// techniques [13] and other schemes to measure the available throughput."
//
// Quantifies the claim: the packet-pair estimator (rate = MTU/dispersion)
// on (a) an isochronous link, (b) a pure Poisson link of the same average
// rate, and (c) the synthetic Verizon LTE downlink — raw and with
// median-of-9 smoothing.  Contrast with Sprout's Bayes filter, which
// recovers the rate from the same arrivals by modeling the noise rather
// than inverting single gaps.
#include <iostream>
#include <random>

#include "core/strategy.h"
#include "trace/packet_pair.h"
#include "trace/presets.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace sprout;

Trace isochronous(std::int64_t gap_us, int seconds) {
  std::vector<TimePoint> opp;
  for (std::int64_t t = 0; t < static_cast<std::int64_t>(seconds) * 1'000'000;
       t += gap_us) {
    opp.push_back(TimePoint{} + usec(t));
  }
  return Trace(std::move(opp), sec(seconds));
}

Trace poisson(double rate_pps, int seconds, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TimePoint> opp;
  double t = 0.0;
  while (t < seconds) {
    t += rng.exponential(rate_pps);
    if (t < seconds) opp.push_back(TimePoint{} + from_seconds(t));
  }
  return Trace(std::move(opp), sec(seconds));
}

void report_row(TableWriter& t, const std::string& name, const Trace& trace,
                double true_rate_kbps) {
  const auto raw = packet_pair_estimates(trace);
  const auto med = packet_pair_median_of(raw, 9);
  const EstimatorQuality q_raw = evaluate_estimates(raw, true_rate_kbps);
  const EstimatorQuality q_med = evaluate_estimates(med, true_rate_kbps);
  t.row()
      .cell(name)
      .cell(true_rate_kbps, 0)
      .cell(q_raw.cov, 2)
      .cell(q_raw.fraction_within_25pct * 100.0, 1)
      .cell(q_med.fraction_within_25pct * 100.0, 1)
      .cell(q_raw.p10_kbps, 0)
      .cell(q_raw.p90_kbps, 0);
}

}  // namespace

int main() {
  using namespace sprout;

  std::cout << "=== §3.1 claim: packet-pair fails on cellular links ===\n\n";

  TableWriter t({"Link", "True rate (kbps)", "CoV", "raw ±25% (%)",
                 "median-9 ±25% (%)", "p10 est", "p90 est"});
  // 500 pkt/s everywhere: 6000 kbit/s true rate.
  report_row(t, "isochronous", isochronous(2000, 60), 6000.0);
  report_row(t, "Poisson (fixed rate)", poisson(500.0, 60, 1), 6000.0);
  const Trace cell = preset_trace(
      find_link_preset("Verizon LTE", LinkDirection::kDownlink), sec(120));
  report_row(t, "synthetic Verizon LTE", cell, cell.average_rate_kbps());
  t.print(std::cout);

  // Sprout's answer to the same data: a Bayes filter over tick counts.
  std::cout << "\nSprout's filter on the fixed-rate Poisson arrivals:\n";
  {
    SproutParams params;
    BayesianForecastStrategy strategy(params);
    const Trace p = poisson(500.0, 60, 1);
    std::size_t i = 0;
    int within = 0;
    int ticks = 0;
    for (TimePoint tick_end = TimePoint{} + params.tick;
         tick_end <= TimePoint{} + sec(60); tick_end += params.tick) {
      int count = 0;
      while (i < p.size() && p.opportunities()[i] < tick_end) {
        ++count;
        ++i;
      }
      strategy.advance_tick();
      strategy.observe(count);
      ++ticks;
      if (ticks > 50) {  // past burn-in
        const double est_kbps =
            strategy.estimated_rate_pps() * 8.0 * 1500.0 / 1000.0;
        if (est_kbps > 0.75 * 6000.0 && est_kbps < 1.25 * 6000.0) ++within;
      }
    }
    std::cout << "  estimate within ±25% of truth on "
              << 100.0 * within / (ticks - 50)
              << "% of post-burn-in ticks (packet-pair: see table).\n";
  }

  std::cout
      << "\nReading: on an isochronous link every pair nails the rate; on a\n"
         "Poisson service process the same estimator scatters 20x between\n"
         "its p10 and p90 (MTU/gap has infinite moments — the sample CoV\n"
         "just grows with n) and median smoothing converges to a BIASED\n"
         "value (median of 1/Exp is λ/ln2 ≈ 1.44λ).  Inference over\n"
         "interval counts — what Sprout does — reads the same arrivals to\n"
         "within ±25% on >99% of ticks.\n";
  return 0;
}

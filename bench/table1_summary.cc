// The introduction's two summary tables: average relative throughput
// ("speedup") and self-inflicted-delay reduction of Sprout (Table 1) and
// Sprout-EWMA (Table 2) versus every other scheme, averaged over all four
// networks in both directions.
#include <iostream>
#include <map>

#include "bench_common.h"
#include "util/table.h"

namespace {

using namespace sprout;

struct Avg {
  double throughput = 0.0;  // mean over links of per-link throughput ratio
  double delay = 0.0;
  double abs_delay_ms = 0.0;
};

}  // namespace

int main() {
  using namespace sprout;

  std::vector<SchemeId> schemes = {SchemeId::kSprout, SchemeId::kSproutEwma};
  for (SchemeId s : table1_schemes()) schemes.push_back(s);

  std::cout << "=== Intro tables: average speedup & delay reduction over all "
               "8 links ===\n(per-run "
            << to_seconds(bench::run_seconds()) << " s simulated)\n\n";

  // The whole scheme x link grid as one parallel sweep, then regrouped
  // per scheme in input order.
  std::vector<ScenarioSpec> specs;
  for (const SchemeId scheme : schemes) {
    for (const LinkPreset& link : all_link_presets()) {
      specs.push_back(bench::base_spec(scheme, link));
    }
  }
  const std::vector<ScenarioResult> cells = bench::sweep(specs);

  // scheme -> link -> result
  std::map<SchemeId, std::vector<ScenarioResult>> results;
  std::size_t cell = 0;
  for (const SchemeId scheme : schemes) {
    for (std::size_t i = 0; i < all_link_presets().size(); ++i) {
      results[scheme].push_back(cells[cell++]);
    }
  }

  auto relative_to = [&](SchemeId baseline) {
    // Per the paper: the ratios are averaged across links, and the absolute
    // delay column is the scheme's own average self-inflicted delay.
    std::map<SchemeId, Avg> avgs;
    const auto& base = results[baseline];
    for (const SchemeId scheme : schemes) {
      Avg a;
      const auto& rs = results[scheme];
      for (std::size_t i = 0; i < rs.size(); ++i) {
        a.throughput += base[i].throughput_kbps() /
                        std::max(1.0, rs[i].throughput_kbps());
        a.delay += rs[i].self_inflicted_delay_ms() /
                   std::max(1.0, base[i].self_inflicted_delay_ms());
        a.abs_delay_ms += rs[i].self_inflicted_delay_ms();
      }
      const double n = static_cast<double>(rs.size());
      a.throughput /= n;
      a.delay /= n;
      a.abs_delay_ms /= n;
      avgs[scheme] = a;
    }
    return avgs;
  };

  {
    const auto avgs = relative_to(SchemeId::kSprout);
    std::cout << "--- Table 1: versus Sprout ---\n";
    TableWriter t({"App/protocol", "Avg. speedup vs scheme",
                   "Delay reduction", "(from avg. delay)"});
    for (const SchemeId scheme : schemes) {
      const Avg& a = avgs.at(scheme);
      t.row()
          .cell(to_string(scheme))
          .cell(format_double(a.throughput, 2) + "x")
          .cell(format_double(a.delay, 1) + "x")
          .cell(format_double(a.abs_delay_ms / 1000.0, 2) + " s");
    }
    t.print(std::cout);
    std::cout << "(paper: Skype 2.2x/7.9x, Hangout 4.4x/7.2x, Facetime "
                 "1.9x/8.7x, Compound 1.3x/4.8x,\n Vegas 1.1x/2.1x, LEDBAT "
                 "1.0x/2.8x, Cubic 0.91x/79x, Cubic-CoDel 0.70x/1.6x)\n\n";
  }

  {
    const auto avgs = relative_to(SchemeId::kSproutEwma);
    std::cout << "--- Table 2: versus Sprout-EWMA ---\n";
    TableWriter t({"Protocol", "Avg. speedup vs scheme", "Delay reduction",
                   "(from avg. delay)"});
    for (const SchemeId scheme :
         {SchemeId::kSproutEwma, SchemeId::kSprout, SchemeId::kCubic,
          SchemeId::kCubicCodel}) {
      const Avg& a = avgs.at(scheme);
      t.row()
          .cell(to_string(scheme))
          .cell(format_double(a.throughput, 2) + "x")
          .cell(format_double(a.delay, 2) + "x")
          .cell(format_double(a.abs_delay_ms / 1000.0, 2) + " s");
    }
    t.print(std::cout);
    std::cout << "(paper: Sprout 2.0x/0.60x, Cubic 1.8x/48x, Cubic-CoDel "
                 "1.3x/0.95x)\n";
  }
  return 0;
}

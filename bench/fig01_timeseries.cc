// Figure 1: Skype vs Sprout on the Verizon LTE downlink — throughput and
// per-packet delay time series with the capacity overlay.
//
// Prints three aligned series (capacity, scheme throughput, scheme delay)
// in 500 ms bins for each scheme, over the figure's 60-second window.
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

int main() {
  using namespace sprout;

  const LinkPreset& link =
      find_link_preset("Verizon LTE", LinkDirection::kDownlink);
  std::cout << "=== Figure 1: Skype and Sprout on the " << link.name()
            << " (synthetic) ===\n"
            << "Sprout aims to keep every packet's delay under 100 ms with "
               "95% probability.\n\n";

  for (const SchemeId scheme : {SchemeId::kSkype, SchemeId::kSprout}) {
    ScenarioSpec c = bench::base_spec(scheme, link);
    c.run_time = std::max(c.run_time, sec(80));
    c.warmup = sec(10);
    c.capture_series = true;
    const ScenarioResult r = run_scenario(c);
    const std::vector<SeriesPoint>& series = r.flows.front().series;

    std::cout << "--- " << to_string(scheme) << " ---\n";
    TableWriter t({"time (s)", "capacity (kbps)", "throughput (kbps)",
                   "max delay in bin (ms)"});
    // The paper's figure shows a 60-second section; start after warmup.
    for (std::size_t i = 20; i < series.size() && i < 140; ++i) {
      t.row()
          .cell(series[i].time_s, 1)
          .cell(r.capacity_series[i].throughput_kbps, 0)
          .cell(series[i].throughput_kbps, 0)
          .cell(series[i].max_delay_ms, 0);
    }
    t.print(std::cout);
    std::cout << "summary: throughput " << format_double(r.throughput_kbps(), 0)
              << " kbps, 95% delay " << format_double(r.delay95_ms(), 0)
              << " ms, self-inflicted " << format_double(r.self_inflicted_delay_ms(), 0)
              << " ms\n\n";
  }
  std::cout << "Expected shape (paper): Skype overshoots capacity drops and "
               "builds multi-second\nstanding queues; Sprout tracks capacity "
               "with delay ~100 ms.\n";
  return 0;
}

// Shared knobs for the figure/table harnesses.
//
// Every bench regenerates one of the paper's tables or figures on the
// synthetic traces.  SPROUT_BENCH_SECONDS overrides the per-run simulated
// duration (default 120 s, metrics skip the first quarter), letting CI use
// quick runs and a full reproduction use the paper's ~17 minutes.
#pragma once

#include <cstdlib>
#include <string>

#include "runner/experiment.h"

namespace sprout::bench {

inline Duration run_seconds() {
  if (const char* env = std::getenv("SPROUT_BENCH_SECONDS")) {
    const int s = std::atoi(env);
    if (s >= 20) return sec(s);
  }
  return sec(120);
}

inline ExperimentConfig base_config(SchemeId scheme, const LinkPreset& link) {
  ExperimentConfig c;
  c.scheme = scheme;
  c.link = link;
  c.run_time = run_seconds();
  c.warmup = c.run_time / 4;
  return c;
}

}  // namespace sprout::bench

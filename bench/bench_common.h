// Shared knobs for the figure/table harnesses.
//
// Every bench regenerates one of the paper's tables or figures on the
// synthetic traces.  SPROUT_BENCH_SECONDS overrides the per-run simulated
// duration (default 120 s, metrics skip the first quarter), letting CI use
// quick runs and a full reproduction use the paper's ~17 minutes.
//
// All benches build on the scenario engine: base_spec()/shared_spec()/
// tunnel_spec() are the one canonical configuration path, and grid benches
// hand their specs to a SweepRunner so independent cells run concurrently
// (sweep() preserves input order and is bit-identical to a serial loop).
#pragma once

#include <cstdlib>
#include <string>
#include <vector>

#include "runner/scenario.h"
#include "runner/schemes.h"
#include "trace/presets.h"
#include "runner/sweep.h"

namespace sprout::bench {

inline Duration run_seconds() {
  if (const char* env = std::getenv("SPROUT_BENCH_SECONDS")) {
    const int s = std::atoi(env);
    if (s >= 20) return sec(s);
  }
  return sec(120);
}

// Applies the bench-wide duration policy to any spec.
inline ScenarioSpec with_bench_times(ScenarioSpec spec) {
  spec.run_time = run_seconds();
  spec.warmup = spec.run_time / 4;
  return spec;
}

// One flow of `scheme` over a preset link (the Figure 7 cell shape).
inline ScenarioSpec base_spec(SchemeId scheme, const LinkPreset& link) {
  return with_bench_times(single_flow_scenario(scheme, link));
}

// N flows of `scheme` commingled in one queue (the §7 extension shape).
inline ScenarioSpec shared_spec(SchemeId scheme, int num_flows,
                                const LinkPreset& link) {
  return with_bench_times(shared_queue_scenario(scheme, num_flows, link));
}

// Heterogeneous flows commingled in one queue (the coexistence shape).
inline ScenarioSpec hetero_spec(std::vector<FlowSpec> flows,
                                const LinkPreset& link) {
  return with_bench_times(heterogeneous_scenario(std::move(flows), link));
}

// Cubic + Skype contending on a network, direct or tunneled (§5.7).
inline ScenarioSpec tunnel_spec(bool via_tunnel,
                                const std::string& network = "Verizon LTE") {
  return with_bench_times(tunnel_scenario(network, via_tunnel));
}

// Runs a grid of independent cells on all cores, in input order.
inline std::vector<ScenarioResult> sweep(const std::vector<ScenarioSpec>& specs) {
  SweepRunner runner;
  return runner.run(specs);
}

}  // namespace sprout::bench

// Perf-trajectory tracker for the inference fast paths (PR 6 onward).
//
// Measures the banded evolve kernel against the exact dense reference and
// the batched multi-flow evolve against N serial evolves, then emits one
// machine-readable BENCH_<n>.json artifact.  Checked-in artifacts form the
// repo's perf trajectory: each perf PR adds a BENCH_<n>.json, and CI's
// bench-smoke job re-measures the current tree against the floors recorded
// here (--check), so a regression that erases a claimed speedup fails the
// build instead of rotting silently.
//
// Unlike bench/micro_inference (google-benchmark, interactive tables), this
// tool is plain chrono: fixed minimum measurement time, no statistics
// framework, stable JSON keys.
//
// PR 9 adds an observability-overhead guard: the banded evolve is timed
// with obs::enabled() off and on in paired alternating rounds, and the
// median on/off ratio must stay under 1% (best of three attempts, since
// sub-percent timing on shared machines is noisy while a real regression —
// e.g. per-call counters in the kernel wrappers — shows up in every round
// of every attempt).
//
// PR 10 adds the same guard for the flight recorder's DISABLED state: the
// engine's tap sites are one null-check per event when record_timeline is
// off, and the banded evolve guarded by a volatile null recorder pointer
// (the exact production branch shape) must cost under 1% over the bare
// evolve, measured and floored identically to the obs guard.
//
// Usage:
//   perf_trajectory [--json FILE] [--min-time S] [--bins N] [--flows N]
//                   [--check]
//   --check exits 1 if banded < 2x dense at the configured bins, batched
//   < 1.5x serial at the configured flows, or obs-on / recorder-off
//   overhead >= 1% on the banded evolve in all three attempts.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/forecaster.h"
#include "core/params.h"
#include "core/rate_model.h"
#include "metrics/recorder.h"
#include "obs/metrics.h"
#include "util/kernels.h"

namespace sprout {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Runs `op` repeatedly for at least `min_time_s` (after one warmup batch)
// and returns nanoseconds per call.
template <typename Op>
double time_ns(double min_time_s, Op&& op) {
  // Warmup: touch caches, settle the branch predictors.
  for (int i = 0; i < 32; ++i) op();
  std::int64_t iters = 0;
  const Clock::time_point t0 = Clock::now();
  double elapsed = 0.0;
  do {
    for (int i = 0; i < 64; ++i) op();
    iters += 64;
    elapsed = seconds_since(t0);
  } while (elapsed < min_time_s);
  return elapsed * 1e9 / static_cast<double>(iters);
}

// One fixed-count timing window; ns per call.
template <typename Op>
double batch_ns(int iters, Op&& op) {
  const Clock::time_point t0 = Clock::now();
  for (int i = 0; i < iters; ++i) op();
  return seconds_since(t0) * 1e9 / static_cast<double>(iters);
}

// Quietest of several short windows: preemption only ever inflates a
// window, so the min approximates the undisturbed per-iter cost.
template <typename Op>
double min_batch_ns(int batches, int iters, Op&& op) {
  double best = 1e18;
  for (int b = 0; b < batches; ++b) best = std::min(best, batch_ns(iters, op));
  return best;
}

// Relative cost of enabling observability on `op`: paired rounds time both
// arms back to back (order alternating to cancel position bias) and the
// MEDIAN on/off ratio is reported.  The median is robust to noise spikes in
// either arm, while a real overhead shifts every round and so the median
// too.  Restores the obs-enabled state it found.
template <typename Op>
double obs_overhead_ratio(Op&& op) {
  const bool was_enabled = obs::enabled();
  std::vector<double> ratios;
  for (int round = 0; round < 33; ++round) {
    double off_ns = 0.0;
    double on_ns = 0.0;
    const auto arm = [&](bool on) {
      obs::set_enabled(on);
      (on ? on_ns : off_ns) = min_batch_ns(6, 64, op);
    };
    arm(round % 2 != 0);
    arm(round % 2 == 0);
    ratios.push_back(on_ns / off_ns);
  }
  obs::set_enabled(was_enabled);
  std::sort(ratios.begin(), ratios.end());
  return ratios[ratios.size() / 2];
}

// Relative cost of one arm over another: the same paired-round median as
// obs_overhead_ratio, for two arbitrary op shapes (the recorder guard
// compares a bare evolve against an evolve carrying the production
// null-recorder branch, so the two arms are different closures).
template <typename Base, typename Guarded>
double paired_overhead_ratio(Base&& base, Guarded&& guarded) {
  std::vector<double> ratios;
  for (int round = 0; round < 33; ++round) {
    double base_ns = 0.0;
    double guarded_ns = 0.0;
    if (round % 2 != 0) {
      guarded_ns = min_batch_ns(6, 64, guarded);
      base_ns = min_batch_ns(6, 64, base);
    } else {
      base_ns = min_batch_ns(6, 64, base);
      guarded_ns = min_batch_ns(6, 64, guarded);
    }
    ratios.push_back(guarded_ns / base_ns);
  }
  std::sort(ratios.begin(), ratios.end());
  return ratios[ratios.size() / 2];
}

// A realistic locked-on posterior (filter run against a steady 500 pps
// link): engages the banded row skipping exactly as production does.
RateDistribution locked_posterior(const SproutParams& params, int per_tick) {
  SproutBayesFilter filter(params);
  for (int t = 0; t < 50; ++t) {
    filter.evolve();
    filter.observe(per_tick);
  }
  return filter.distribution();
}

struct Options {
  std::string json_path;
  double min_time_s = 0.5;
  int bins = 256;
  int flows = 8;
  bool check = false;
};

[[noreturn]] void usage_and_exit(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json FILE] [--min-time S] [--bins N] "
               "[--flows N] [--check]\n",
               argv0);
  std::exit(2);
}

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage_and_exit(argv[0]);
      return argv[++i];
    };
    if (arg == "--json") {
      opt.json_path = value();
    } else if (arg == "--min-time") {
      opt.min_time_s = std::atof(value());
    } else if (arg == "--bins") {
      opt.bins = std::atoi(value());
    } else if (arg == "--flows") {
      opt.flows = std::atoi(value());
    } else if (arg == "--check") {
      opt.check = true;
    } else {
      usage_and_exit(argv[0]);
    }
  }
  if (opt.min_time_s <= 0.0 || opt.bins < 2 || opt.flows < 1) {
    usage_and_exit(argv[0]);
  }
  return opt;
}

int run(const Options& opt) {
  SproutParams params;
  params.num_bins = opt.bins;
  const TransitionMatrix matrix(params);

  // --- banded vs dense, single posterior ---
  RateDistribution banded_dist = locked_posterior(params, 10);
  RateDistribution dense_dist = banded_dist;
  const double banded_ns =
      time_ns(opt.min_time_s, [&] { matrix.evolve(banded_dist); });
  const double dense_ns =
      time_ns(opt.min_time_s, [&] { matrix.evolve_dense(dense_dist); });
  const double banded_speedup = dense_ns / banded_ns;

  // --- obs-on overhead on the banded evolve (best of three attempts) ---
  // The floor is sub-percent, i.e. at the noise level of shared machines,
  // so a passing tree gets up to three measurements and keeps the best; a
  // real regression (per-call counters were 5-27%) fails all three.
  double obs_overhead = 1e18;
  int obs_attempts = 0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    ++obs_attempts;
    const double ratio =
        obs_overhead_ratio([&] { matrix.evolve(banded_dist); });
    obs_overhead = std::min(obs_overhead, ratio - 1.0);
    if (obs_overhead < 0.01) break;
  }

  // --- recorder-off overhead on the banded evolve (best of three) ---
  // Production tap shape: a raw recorder pointer, null when
  // record_timeline is off, checked once per event.  The volatile load
  // keeps the optimizer from proving the branch dead the way it could
  // never prove it for the engine's per-flow pointers.
  RateDistribution rec_dist = locked_posterior(params, 10);
  FlowTimelineRecorder* volatile rec_tap = nullptr;
  double rec_overhead = 1e18;
  int rec_attempts = 0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    ++rec_attempts;
    const double ratio = paired_overhead_ratio(
        [&] { matrix.evolve(rec_dist); },
        [&] {
          FlowTimelineRecorder* r = rec_tap;
          if (r != nullptr) r->record_forecast(TimePoint{}, 0.0);
          matrix.evolve(rec_dist);
        });
    rec_overhead = std::min(rec_overhead, ratio - 1.0);
    if (rec_overhead < 0.01) break;
  }

  // --- batched vs serial, a fleet of distinct posteriors ---
  std::vector<RateDistribution> serial_dists;
  std::vector<RateDistribution> batch_dists;
  for (int f = 0; f < opt.flows; ++f) {
    const RateDistribution d = locked_posterior(params, 2 + (f % 15));
    serial_dists.push_back(d);
    batch_dists.push_back(d);
  }
  std::vector<RateDistribution*> serial_ptrs;
  std::vector<RateDistribution*> batch_ptrs;
  for (auto& d : serial_dists) serial_ptrs.push_back(&d);
  for (auto& d : batch_dists) batch_ptrs.push_back(&d);
  const double serial_ns = time_ns(opt.min_time_s, [&] {
    for (RateDistribution* d : serial_ptrs) matrix.evolve(*d);
  });
  const double batch_ns =
      time_ns(opt.min_time_s, [&] { matrix.evolve_batch(batch_ptrs); });
  const double batch_speedup = serial_ns / batch_ns;

  // --- the fused mixture-quantile forecast (transposed tables + floor) ---
  SproutParams mixture_params = params;
  mixture_params.count_noise_in_forecast = true;
  const DeliveryForecaster forecaster(mixture_params);
  const RateDistribution posterior = locked_posterior(mixture_params, 10);
  TimePoint now{};
  const double forecast_ns = time_ns(opt.min_time_s, [&] {
    now += mixture_params.tick;
    DeliveryForecast f = forecaster.forecast(posterior, now);
    if (f.cumulative_at(8) < 0) std::abort();  // keep the result live
  });

  const std::string json = [&] {
    char buf[2048];
    std::snprintf(
        buf, sizeof(buf),
        "{\n"
        "  \"artifact\": \"perf_trajectory\",\n"
        "  \"pr\": 10,\n"
        "  \"config\": {\n"
        "    \"bins\": %d,\n"
        "    \"flows\": %d,\n"
        "    \"band_epsilon\": %.3g,\n"
        "    \"kernel_backend\": \"%s\",\n"
        "    \"mean_bandwidth\": %.2f,\n"
        "    \"max_bandwidth\": %d,\n"
        "    \"min_time_s\": %.3g\n"
        "  },\n"
        "  \"timings_ns\": {\n"
        "    \"evolve_dense\": %.1f,\n"
        "    \"evolve_banded\": %.1f,\n"
        "    \"evolve_serial_fleet\": %.1f,\n"
        "    \"evolve_batch_fleet\": %.1f,\n"
        "    \"forecast_mixture_8h\": %.1f\n"
        "  },\n"
        "  \"speedups\": {\n"
        "    \"banded_vs_dense\": %.3f,\n"
        "    \"batched_vs_serial\": %.3f\n"
        "  },\n"
        "  \"obs\": {\n"
        "    \"on_overhead_banded\": %.4f,\n"
        "    \"attempts\": %d\n"
        "  },\n"
        "  \"recorder\": {\n"
        "    \"off_overhead_banded\": %.4f,\n"
        "    \"attempts\": %d\n"
        "  },\n"
        "  \"floors\": {\n"
        "    \"banded_vs_dense\": 2.0,\n"
        "    \"batched_vs_serial\": 1.5,\n"
        "    \"obs_on_overhead_banded_max\": 0.01,\n"
        "    \"recorder_off_overhead_banded_max\": 0.01\n"
        "  }\n"
        "}\n",
        opt.bins, opt.flows, params.band_epsilon, kernels::active_backend(),
        matrix.mean_bandwidth(), matrix.max_bandwidth(), opt.min_time_s,
        dense_ns, banded_ns, serial_ns, batch_ns, forecast_ns, banded_speedup,
        batch_speedup, obs_overhead, obs_attempts, rec_overhead,
        rec_attempts);
    return std::string(buf);
  }();

  std::fputs(json.c_str(), stdout);
  if (!opt.json_path.empty()) {
    std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", opt.json_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }

  if (opt.check) {
    bool ok = true;
    if (banded_speedup < 2.0) {
      std::fprintf(stderr,
                   "FAIL: banded evolve only %.2fx dense at %d bins "
                   "(floor 2.0x)\n",
                   banded_speedup, opt.bins);
      ok = false;
    }
    if (batch_speedup < 1.5) {
      std::fprintf(stderr,
                   "FAIL: batched evolve only %.2fx serial at %d flows "
                   "(floor 1.5x)\n",
                   batch_speedup, opt.flows);
      ok = false;
    }
    if (obs_overhead >= 0.01) {
      std::fprintf(stderr,
                   "FAIL: obs-on overhead %.2f%% on banded evolve "
                   "(floor 1%%, best of %d attempts)\n",
                   obs_overhead * 100.0, obs_attempts);
      ok = false;
    }
    if (rec_overhead >= 0.01) {
      std::fprintf(stderr,
                   "FAIL: recorder-off overhead %.2f%% on banded evolve "
                   "(floor 1%%, best of %d attempts)\n",
                   rec_overhead * 100.0, rec_attempts);
      ok = false;
    }
    if (!ok) return 1;
    std::fprintf(stderr,
                 "perf floors hold: banded %.2fx, batched %.2fx, "
                 "obs overhead %.2f%%, recorder-off overhead %.2f%%\n",
                 banded_speedup, batch_speedup, obs_overhead * 100.0,
                 rec_overhead * 100.0);
  }
  return 0;
}

}  // namespace
}  // namespace sprout

int main(int argc, char** argv) {
  return sprout::run(sprout::parse_options(argc, argv));
}

// Typed, path-aware field readers for the declarative spec subsystem.
//
// A spec document is operator-written JSON (specs/*.json), so its failure
// mode is a human mistake — a typo'd key, a stop before a start, a string
// where a number belongs — and the error message is the product.  Field
// wraps one JsonValue plus the dotted/bracketed path that led to it
// ("topology.flows[2].stop_s"), and every reader throws SpecError naming
// that exact path:
//
//     topology.flows[2].stop_s: must be > start_s
//
// This is deliberately a different discipline from the shard-file readers
// in runner/shard.cc: shard JSON is machine-written, so there corruption is
// the failure mode and a byte offset suffices.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/table.h"
#include "util/units.h"

namespace sprout::spec {

// Every spec-document failure — parse, type, range, structure — throws
// this, so CLI frontends (spec_lint, sweep_shard --spec) can catch one type
// and print one diagnostic.
class SpecError : public std::runtime_error {
 public:
  explicit SpecError(const std::string& what) : std::runtime_error(what) {}
};

// One field of a spec document: a borrowed JsonValue plus its path from the
// document root.  Fields are cheap values; navigation (at/get/items)
// returns children with extended paths.  The underlying JsonValue must
// outlive every Field that views it.
class Field {
 public:
  Field(const JsonValue& value, std::string path);

  [[nodiscard]] const JsonValue& json() const { return *value_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  // Throws SpecError("<path>: <message>").
  [[noreturn]] void fail(const std::string& message) const;

  // --- navigation -------------------------------------------------------
  // Required object member; SpecError if this is not an object or the key
  // is absent.
  [[nodiscard]] Field at(const std::string& key) const;
  // Optional object member; nullopt when absent (SpecError if this is not
  // an object).
  [[nodiscard]] std::optional<Field> get(const std::string& key) const;
  [[nodiscard]] bool has(const std::string& key) const;
  // Array elements, with paths "<path>[0]", "<path>[1]", ...
  [[nodiscard]] std::vector<Field> items() const;
  // Rejects any member whose key is not in `allowed`, naming the stray key
  // and listing what the object accepts — a typo'd optional key must fail,
  // not silently fall back to the default it was meant to override.
  void allow_keys(std::initializer_list<std::string_view> allowed) const;

  // --- scalar readers ---------------------------------------------------
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] const std::string& as_string() const;
  // A finite JSON number.  (JSON has no NaN/inf literal; an overflowing
  // literal like 1e999 parses to inf and is rejected here.)
  [[nodiscard]] double as_finite() const;
  [[nodiscard]] double positive() const;      // finite, > 0
  [[nodiscard]] double non_negative() const;  // finite, >= 0
  [[nodiscard]] double in_range(double lo, double hi) const;  // inclusive
  [[nodiscard]] std::int64_t as_int() const;  // finite, integral
  [[nodiscard]] std::int64_t int_at_least(std::int64_t lo) const;
  // Seeds and fingerprints: a plain number (integral, within the 2^53
  // exact range) or a decimal string — the same convention shard files use
  // for values a double cannot carry exactly.
  [[nodiscard]] std::uint64_t as_u64() const;
  // Durations travel as floating-point seconds and convert to the
  // simulator's integer microseconds.
  [[nodiscard]] Duration seconds() const;
  [[nodiscard]] Duration positive_seconds() const;
  [[nodiscard]] Duration non_negative_seconds() const;

 private:
  const JsonValue* value_;
  std::string path_;
};

// Parses a whole document and roots it at `path` (usually the file name or
// a logical label like "cell[3]"); parse errors are rethrown as SpecError
// with that root prefixed.  NOTE: Field borrows, so bind the returned
// document to a variable — `Field f(parse_spec_document(text), ...)` would
// dangle.
[[nodiscard]] JsonValue parse_spec_document(std::string_view text,
                                            const std::string& path);

// RFC 7386 JSON merge-patch: objects merge member-wise (a null patch
// member deletes the key), anything else replaces the base wholesale —
// arrays included, which is what makes patched flow lists unambiguous.
// The grid expander (spec/grid.h) layers axis patches over a base scenario
// document with this.
[[nodiscard]] JsonValue merge_patch(const JsonValue& base,
                                    const JsonValue& patch);

// The dotted paths `patch` would write ("topology.flows", "loss_rate"):
// objects recurse, arrays and scalars are leaves.  Two patches conflict
// when one's path equals or prefixes the other's — the axis-overlap check
// in spec/grid.cc compares exactly this.
[[nodiscard]] std::vector<std::string> patch_paths(const JsonValue& patch);

// True when `p` and `q` name the same field or one contains the other
// (path-segment-wise: "topology.flows" covers "topology.flows[1].scheme"
// but not "topology.flows_extra").
[[nodiscard]] bool paths_overlap(const std::string& p, const std::string& q);

}  // namespace sprout::spec

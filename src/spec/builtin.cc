#include "spec/builtin.h"

#include <sstream>
#include <stdexcept>

#include "trace/presets.h"

namespace sprout::spec {

namespace {

ScenarioSpec scaled(ScenarioSpec spec, int seconds) {
  spec.run_time = sec(seconds);
  spec.warmup = spec.run_time / 4;
  return spec;
}

// The CI smoke shape: Sprout against each coexistence rival in ONE shared
// Verizon LTE downlink queue (bench/table_coexistence's first column).
SweepSpec coexistence_smoke_grid(const BuiltinGridOptions& options) {
  const LinkPreset& link =
      find_link_preset("Verizon LTE", LinkDirection::kDownlink);
  SweepSpec sweep;
  for (const SchemeId rival : coexistence_schemes()) {
    sweep.cells.push_back(scaled(
        heterogeneous_scenario(
            {FlowSpec::of(SchemeId::kSprout), FlowSpec::of(rival)}, link),
        options.seconds));
  }
  sweep.base_seed = options.base_seed;
  return sweep;
}

// Deliberately unbalanced: long multi-flow cells listed next to short
// single-flow ones (3:1 duration, up to 3 flows), exercising longest-first
// scheduling and shard balance.  One cell stops a flow early, so the
// drain-tail ledger and NaN-free fairness fields cross process boundaries.
SweepSpec mixed_duration_grid(const BuiltinGridOptions& options) {
  const LinkPreset& verizon =
      find_link_preset("Verizon LTE", LinkDirection::kDownlink);
  const LinkPreset& att =
      find_link_preset("AT&T LTE", LinkDirection::kDownlink);
  const int base = options.seconds;
  SweepSpec sweep;
  sweep.cells.push_back(
      scaled(single_flow_scenario(SchemeId::kCubic, verizon), base));
  sweep.cells.push_back(scaled(
      heterogeneous_scenario({FlowSpec::of(SchemeId::kSprout),
                              FlowSpec::of(SchemeId::kCubic),
                              FlowSpec::of(SchemeId::kVegas)},
                             verizon),
      3 * base));
  sweep.cells.push_back(
      scaled(single_flow_scenario(SchemeId::kSprout, att), base));
  {
    ScenarioSpec stopper = scaled(
        heterogeneous_scenario(
            {FlowSpec::of(SchemeId::kSprout), FlowSpec::of(SchemeId::kCubic)},
            att),
        2 * base);
    stopper.topology.flows[1].stop = stopper.run_time / 2;
    sweep.cells.push_back(stopper);
  }
  sweep.cells.push_back(
      scaled(single_flow_scenario(SchemeId::kVegas, verizon), base));
  sweep.base_seed = options.base_seed;
  return sweep;
}

}  // namespace

const std::vector<std::string>& builtin_grid_names() {
  static const std::vector<std::string> names = {"coexistence-smoke",
                                                 "mixed-duration"};
  return names;
}

SweepSpec build_builtin_grid(const std::string& name,
                             const BuiltinGridOptions& options) {
  if (name == "coexistence-smoke") return coexistence_smoke_grid(options);
  if (name == "mixed-duration") return mixed_duration_grid(options);
  std::ostringstream os;
  os << "unknown grid \"" << name << "\" (have:";
  for (const std::string& n : builtin_grid_names()) os << ' ' << n;
  os << ')';
  throw std::invalid_argument(os.str());
}

}  // namespace sprout::spec

#include "spec/schema.h"

#include <cmath>
#include <limits>
#include <sstream>

namespace sprout::spec {

Field::Field(const JsonValue& value, std::string path)
    : value_(&value), path_(std::move(path)) {}

void Field::fail(const std::string& message) const {
  throw SpecError(path_ + ": " + message);
}

namespace {

const char* kind_name(JsonValue::Kind kind) {
  switch (kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "a boolean";
    case JsonValue::Kind::kNumber: return "a number";
    case JsonValue::Kind::kString: return "a string";
    case JsonValue::Kind::kArray: return "an array";
    case JsonValue::Kind::kObject: return "an object";
  }
  return "an unknown value";
}

}  // namespace

Field Field::at(const std::string& key) const {
  if (json().kind() != JsonValue::Kind::kObject) {
    fail(std::string("expected an object, got ") + kind_name(json().kind()));
  }
  for (const auto& [k, v] : json().members()) {
    if (k == key) {
      return Field(v, path_.empty() ? key : path_ + "." + key);
    }
  }
  fail("missing required field \"" + key + "\"");
}

std::optional<Field> Field::get(const std::string& key) const {
  if (json().kind() != JsonValue::Kind::kObject) {
    fail(std::string("expected an object, got ") + kind_name(json().kind()));
  }
  for (const auto& [k, v] : json().members()) {
    if (k == key) {
      return Field(v, path_.empty() ? key : path_ + "." + key);
    }
  }
  return std::nullopt;
}

bool Field::has(const std::string& key) const {
  return json().kind() == JsonValue::Kind::kObject && json().has(key);
}

std::vector<Field> Field::items() const {
  if (json().kind() != JsonValue::Kind::kArray) {
    fail(std::string("expected an array, got ") + kind_name(json().kind()));
  }
  std::vector<Field> fields;
  const auto& array = json().as_array();
  fields.reserve(array.size());
  for (std::size_t i = 0; i < array.size(); ++i) {
    fields.emplace_back(array[i], path_ + "[" + std::to_string(i) + "]");
  }
  return fields;
}

void Field::allow_keys(std::initializer_list<std::string_view> allowed) const {
  if (json().kind() != JsonValue::Kind::kObject) {
    fail(std::string("expected an object, got ") + kind_name(json().kind()));
  }
  for (const auto& [k, v] : json().members()) {
    bool known = false;
    for (const std::string_view a : allowed) {
      if (k == a) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::ostringstream os;
      os << (path_.empty() ? k : path_ + "." + k)
         << ": unknown field (this object accepts:";
      for (const std::string_view a : allowed) os << ' ' << a;
      os << ')';
      throw SpecError(os.str());
    }
  }
}

bool Field::as_bool() const {
  if (json().kind() != JsonValue::Kind::kBool) {
    fail(std::string("expected a boolean, got ") + kind_name(json().kind()));
  }
  return json().as_bool();
}

const std::string& Field::as_string() const {
  if (json().kind() != JsonValue::Kind::kString) {
    fail(std::string("expected a string, got ") + kind_name(json().kind()));
  }
  return json().as_string();
}

double Field::as_finite() const {
  if (json().kind() != JsonValue::Kind::kNumber) {
    fail(std::string("expected a number, got ") + kind_name(json().kind()));
  }
  const double v = json().as_number();
  if (!std::isfinite(v)) fail("must be finite");
  return v;
}

double Field::positive() const {
  const double v = as_finite();
  if (v <= 0.0) {
    std::ostringstream os;
    os << "must be > 0, got " << v;
    fail(os.str());
  }
  return v;
}

double Field::non_negative() const {
  const double v = as_finite();
  if (v < 0.0) {
    std::ostringstream os;
    os << "must be >= 0, got " << v;
    fail(os.str());
  }
  return v;
}

double Field::in_range(double lo, double hi) const {
  const double v = as_finite();
  if (v < lo || v > hi) {
    std::ostringstream os;
    os << "must be in [" << lo << ", " << hi << "], got " << v;
    fail(os.str());
  }
  return v;
}

std::int64_t Field::as_int() const {
  const double v = as_finite();
  const auto i = static_cast<std::int64_t>(v);
  if (static_cast<double>(i) != v) {
    std::ostringstream os;
    os << "expected an integer, got " << v;
    fail(os.str());
  }
  return i;
}

std::int64_t Field::int_at_least(std::int64_t lo) const {
  const std::int64_t v = as_int();
  if (v < lo) {
    fail("must be >= " + std::to_string(lo) + ", got " + std::to_string(v));
  }
  return v;
}

std::uint64_t Field::as_u64() const {
  if (json().kind() == JsonValue::Kind::kString) {
    const std::string& s = json().as_string();
    if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
      fail("expected an unsigned decimal integer, got \"" + s + "\"");
    }
    try {
      return std::stoull(s);
    } catch (const std::out_of_range&) {
      fail("unsigned integer overflow in \"" + s + "\"");
    }
  }
  constexpr double kExactLimit = 9007199254740992.0;  // 2^53
  const std::int64_t v = as_int();
  if (v < 0) fail("must be >= 0, got " + std::to_string(v));
  if (static_cast<double>(v) > kExactLimit) {
    fail("value exceeds a JSON number's exact integer range; write it as a "
         "decimal string");
  }
  return static_cast<std::uint64_t>(v);
}

namespace {

// Seconds -> integer microseconds, rounding to nearest.  from_seconds()
// truncates, which can lose a microsecond when the double carrying
// count/1e6 sits one ulp below the true value; round-to-nearest makes
// write(to_seconds(d)) -> read a exact round trip for every representable
// duration.
Duration micros_from_seconds(const Field& f, double s) {
  constexpr double kMaxSeconds = 9.0e12;  // ~int64 microseconds range
  if (s > kMaxSeconds || s < -kMaxSeconds) f.fail("duration out of range");
  return Duration(std::llround(s * 1e6));
}

}  // namespace

Duration Field::seconds() const {
  return micros_from_seconds(*this, as_finite());
}

Duration Field::positive_seconds() const {
  return micros_from_seconds(*this, positive());
}

Duration Field::non_negative_seconds() const {
  return micros_from_seconds(*this, non_negative());
}

JsonValue parse_spec_document(std::string_view text, const std::string& path) {
  try {
    return JsonValue::parse(text);
  } catch (const std::exception& e) {
    throw SpecError(path + ": " + e.what());
  }
}

JsonValue merge_patch(const JsonValue& base, const JsonValue& patch) {
  if (patch.kind() != JsonValue::Kind::kObject) return patch;
  std::vector<std::pair<std::string, JsonValue>> merged;
  if (base.kind() == JsonValue::Kind::kObject) {
    for (const auto& [k, v] : base.members()) {
      if (!patch.has(k)) merged.emplace_back(k, v);
    }
  }
  // Patch members follow base-only members in patch order: deterministic,
  // and repeated merges of the same patches stay byte-stable.
  for (const auto& [k, v] : patch.members()) {
    if (v.is_null()) continue;  // RFC 7386: null deletes the key
    const JsonValue* base_member = nullptr;
    if (base.kind() == JsonValue::Kind::kObject && base.has(k)) {
      base_member = &base.at(k);
    }
    // No base counterpart: the member is the patch applied to nothing,
    // i.e. the patch value with its null members recursively stripped —
    // which is exactly what merging the value with itself produces.
    merged.emplace_back(
        k, base_member ? merge_patch(*base_member, v) : merge_patch(v, v));
  }
  return JsonValue::make_object(std::move(merged));
}

namespace {

void collect_paths(const JsonValue& patch, const std::string& prefix,
                   std::vector<std::string>& out) {
  if (patch.kind() != JsonValue::Kind::kObject) {
    out.push_back(prefix);
    return;
  }
  for (const auto& [k, v] : patch.members()) {
    collect_paths(v, prefix.empty() ? k : prefix + "." + k, out);
  }
}

}  // namespace

std::vector<std::string> patch_paths(const JsonValue& patch) {
  std::vector<std::string> paths;
  collect_paths(patch, "", paths);
  return paths;
}

bool paths_overlap(const std::string& p, const std::string& q) {
  const std::string& shorter = p.size() <= q.size() ? p : q;
  const std::string& longer = p.size() <= q.size() ? q : p;
  if (longer.compare(0, shorter.size(), shorter) != 0) return false;
  return longer.size() == shorter.size() || longer[shorter.size()] == '.' ||
         longer[shorter.size()] == '[';
}

}  // namespace sprout::spec

// The declarative experiment document: one JSON file that defines a whole
// sweep — scenarios, grid axes, shard plan — with no recompile.
//
// Document shape (spec_version 1):
//
//   {
//     "spec_version": 1,
//     "name": "coexistence-smoke",
//     "base_seed": 42,                      // optional; content-derived
//                                           // per-cell seeds, as SweepSpec
//     "plan": {"strategy": "lpt"},          // optional; default round-robin
//
//     // EITHER an explicit cell list...
//     "cells": [ { ...scenario... }, ... ],
//
//     // ...OR a base scenario expanded by named axes:
//     "base": { ...scenario... },
//     "expand": "cross",                    // "cross" (default) or "zip"
//     "axes": [
//       {"name": "rival", "patches": [ { ...merge-patch... }, ... ]},
//       {"name": "loss",  "patches": [ {"loss_rate": 0.0},
//                                      {"loss_rate": 0.05} ]},
//       // or a numeric range instead of a patch list — nested objects
//       // address deep fields; exactly one {from, to, step} leaf:
//       {"name": "sigma", "range": {"link": {"forward": {"brownian":
//           {"sigma_pps_per_sqrt_s":
//               {"from": 100, "to": 300, "step": 100}}}}}}
//     ],
//
//     // optional per-cell tweaks applied after expansion:
//     "cell_overrides": [ {"cell": 3, "patch": { ... }} ]
//   }
//
// Axis patches are RFC 7386 merge-patches layered over the base document
// (spec/schema.h); "cross" expands the axes' cross product with the FIRST
// axis outermost (cell index = ((i0*n1 + i1)*n2 + i2)...), "zip" walks
// equal-length axes in lockstep.  Two axes whose patches touch the same
// field (path-prefix-wise) are rejected as overlapping — a cross product
// where one axis silently overwrites another is a grid that lies about
// its own shape.  Every expanded cell is validated by the strict scenario
// reader, so unknown schemes, bad versions and out-of-range values fail at
// parse time with a path-aware message, before anything simulates.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "spec/plan.h"
#include "spec/scenario_io.h"

namespace sprout::spec {

// The one version this build reads; bumped when the document shape
// changes incompatibly.
inline constexpr int kSpecVersion = 1;

// A parsed, fully expanded experiment: the sweep the runner executes plus
// the metadata the CLI frontends print and the shard planner consumes.
struct ExperimentSpec {
  std::string name;
  PartitionStrategy strategy = PartitionStrategy::kRoundRobin;
  SweepSpec sweep;  // expanded cells + base_seed
};

// Parses and expands one experiment document.  All failures throw
// SpecError with the path of the offending field; `label` (usually the
// file name) prefixes parse errors.
[[nodiscard]] ExperimentSpec parse_experiment_json(std::string_view text,
                                                   const std::string& label);

// Reads and parses a spec file; SpecError("cannot read <path>") when the
// file is unreadable.  The one loading path every CLI frontend shares.
[[nodiscard]] ExperimentSpec parse_experiment_file(const std::string& path);

// Writes an experiment as an explicit-cells document (expansion is
// one-way: a dumped grid lists its cells, not the axes that produced
// them).  Deterministic byte output; re-parsing yields a sweep with
// identical cell fingerprints, which is how compiled-in grids are locked
// against their checked-in spec twins.
void write_experiment_json(std::ostream& os, const ExperimentSpec& spec);

}  // namespace sprout::spec

// The deterministic JSON object writer the spec subsystem's emitters
// share (scenario_io.cc, synth_io.cc).
//
// One discipline everywhere: stable member order (insertion order), exact
// 17-significant-digit doubles (strtod reads them back bit-identically, so
// write -> parse -> write is a fixed point), members one per line at
// indent + 2.  Equal values serialize to equal bytes — the property every
// roundtrip lock and byte-identity diff in this repo rests on.
#pragma once

#include <cstdint>
#include <ostream>
#include <sstream>
#include <string>

#include "util/table.h"
#include "util/units.h"

namespace sprout::spec {

// Exact 17-significant-digit doubles, as in runner/shard.cc.
inline void write_double(std::ostream& os, double v) {
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << v;
  os << tmp.str();
}

class ObjectWriter {
 public:
  ObjectWriter(std::ostream& os, int indent) : os_(os), indent_(indent) {
    os_ << "{";
  }

  std::ostream& key(const std::string& k) {
    os_ << (first_ ? "\n" : ",\n");
    first_ = false;
    for (int i = 0; i < indent_ + 2; ++i) os_ << ' ';
    write_json_string(os_, k);
    os_ << ": ";
    return os_;
  }

  void number(const std::string& k, double v) { write_double(key(k), v); }
  void integer(const std::string& k, std::int64_t v) { key(k) << v; }
  void str(const std::string& k, const std::string& v) {
    write_json_string(key(k), v);
  }
  void boolean(const std::string& k, bool v) {
    key(k) << (v ? "true" : "false");
  }
  void seconds(const std::string& k, Duration d) { number(k, to_seconds(d)); }

  void close() {
    if (!first_) {
      os_ << "\n";
      for (int i = 0; i < indent_; ++i) os_ << ' ';
    }
    os_ << "}";
  }

 private:
  std::ostream& os_;
  int indent_;
  bool first_ = true;
};

}  // namespace sprout::spec

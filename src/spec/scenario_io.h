// ScenarioSpec <-> JSON round trip for the declarative spec subsystem.
//
// The writer is deterministic — stable member order, exact
// 17-significant-digit doubles, the same discipline as the shard result IO
// in runner/shard.cc — so equal specs serialize to equal bytes, and a
// dumped grid re-expands to the same content fingerprints.  Scalars equal
// to the ScenarioSpec defaults are omitted, so dumped cells stay close to
// what an operator would write by hand.
//
// The reader is strict and path-aware (spec/schema.h): unknown members,
// wrong kinds and out-of-range values throw SpecError naming the full path
// of the offending field.  Absent fields take the ScenarioSpec defaults.
// The round-trip invariant, locked by tests:
//
//     scenario_fingerprint(read(write(spec))) == scenario_fingerprint(spec)
//
// for every serializable spec.  The one non-serializable shape is a
// LinkSpec::Source::kTraces link (in-memory traces have no JSON form);
// writing one throws SpecError.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "runner/scenario.h"
#include "spec/schema.h"

namespace sprout::spec {

// Reads one scenario object rooted at `doc` (whose path prefixes every
// error message).
[[nodiscard]] ScenarioSpec scenario_from_field(const Field& doc);

// Convenience: parse + read a whole document as one scenario.
[[nodiscard]] ScenarioSpec parse_scenario_json(std::string_view text);

// Writes one scenario object, indented by `indent` spaces (members one per
// line at indent + 2).
void write_scenario_json(std::ostream& os, const ScenarioSpec& spec,
                         int indent = 0);
[[nodiscard]] std::string scenario_to_json(const ScenarioSpec& spec);

}  // namespace sprout::spec

#include "spec/plan.h"

#include <algorithm>
#include <stdexcept>

#include "runner/sweep.h"

namespace sprout::spec {

std::string to_string(PartitionStrategy strategy) {
  switch (strategy) {
    case PartitionStrategy::kRoundRobin: return "round-robin";
    case PartitionStrategy::kLpt: return "lpt";
  }
  return "unknown";
}

std::optional<PartitionStrategy> partition_from_name(const std::string& name) {
  if (name == "round-robin") return PartitionStrategy::kRoundRobin;
  if (name == "lpt") return PartitionStrategy::kLpt;
  return std::nullopt;
}

std::vector<std::vector<std::size_t>> lpt_partition(
    const std::vector<ScenarioSpec>& cells, int shard_count) {
  if (shard_count < 1) {
    throw std::invalid_argument("shard count must be >= 1, got " +
                                std::to_string(shard_count));
  }
  std::vector<std::vector<std::size_t>> buckets(
      static_cast<std::size_t>(shard_count));
  std::vector<double> loads(static_cast<std::size_t>(shard_count), 0.0);
  // longest_first_order already encodes LPT's visit order: descending
  // estimated_cost, ties by input index.
  for (const std::size_t i : longest_first_order(cells)) {
    std::size_t lightest = 0;
    for (std::size_t s = 1; s < loads.size(); ++s) {
      if (loads[s] < loads[lightest]) lightest = s;
    }
    buckets[lightest].push_back(i);
    loads[lightest] += estimated_cost(cells[i]);
  }
  for (std::vector<std::size_t>& bucket : buckets) {
    std::sort(bucket.begin(), bucket.end());
  }
  return buckets;
}

std::vector<std::size_t> plan_shard_indices(const SweepSpec& spec,
                                            PartitionStrategy strategy,
                                            int shard_index, int shard_count) {
  switch (strategy) {
    case PartitionStrategy::kRoundRobin:
      return shard_cell_indices(spec.cells.size(), shard_index, shard_count);
    case PartitionStrategy::kLpt: {
      // Bounds errors must match round-robin's, so callers see one
      // diagnostic contract regardless of strategy.
      if (shard_count < 1) {
        throw std::invalid_argument("shard count must be >= 1, got " +
                                    std::to_string(shard_count));
      }
      if (shard_index < 0 || shard_index >= shard_count) {
        throw std::invalid_argument(
            "shard index " + std::to_string(shard_index) + " outside [0, " +
            std::to_string(shard_count) + ")");
      }
      return lpt_partition(spec.cells,
                           shard_count)[static_cast<std::size_t>(shard_index)];
    }
  }
  throw std::invalid_argument("unknown partition strategy");
}

}  // namespace sprout::spec

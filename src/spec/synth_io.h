// SynthSpec <-> JSON for the declarative spec subsystem.
//
// One synth object describes one direction of a channel-synthesis link
// (synth/synth.h): a base model tag, the live model's parameter object,
// an optional op chain, and a seed.  The shape, with every member
// optional except what the chosen base requires:
//
//   {
//     "base": "brownian",            // "markov" | "cox" | "preset" |
//                                    // "trace-file"; default "brownian"
//     "brownian": {"init_rate_pps": 300, "sigma_pps_per_sqrt_s": 150, ...},
//     "markov":   {"states": [{"rate_pps": 50, "mean_dwell_s": 4}, ...],
//                  "step_s": 0.02},
//     "cox":      {"mean_rate_pps": 400, ...},
//     "network": "Verizon LTE", "direction": "downlink",  // preset base
//     "path": "captures/verizon_down.tr",                 // trace-file base
//     "ops": [{"op": "outage", "mean_on_s": 8, "mean_off_s": 1},
//             {"op": "sawtooth", "period_s": 4, "depth": 0.6, "ramp_s": 1},
//             {"op": "scale", "factor": 0.5},
//             {"op": "jitter", "jitter_s": 0.005},
//             {"op": "splice", "segments": [{"from_s": 0, "to_s": 5}]}],
//     "seed": 7
//   }
//
// Reader and writer follow the scenario_io discipline: strict path-aware
// reads (unknown members, wrong kinds and out-of-range values throw
// SpecError naming the field), deterministic writes (defaults omitted,
// 17-digit doubles), and the roundtrip invariant that write -> parse
// preserves synth_key for every spec.
//
// This header also exposes the shared readers/writers for the vocabulary
// scenario_io and synth_io have in common (LinkDirection, the Cox
// CellProcessParams object), so the two cannot drift apart.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "spec/schema.h"
#include "synth/synth.h"

namespace sprout::spec {

// Reads one synth object rooted at `doc`.
[[nodiscard]] SynthSpec synth_from_field(const Field& doc);

// Convenience: parse + read a whole document as one synth spec (the
// trace_synth CLI's --synth input).
[[nodiscard]] SynthSpec parse_synth_json(std::string_view text);

// Writes one synth object, indented by `indent` spaces.
void write_synth_json(std::ostream& os, const SynthSpec& spec,
                      int indent = 0);
[[nodiscard]] std::string synth_to_json(const SynthSpec& spec);

// Shared vocabulary with scenario_io.
[[nodiscard]] LinkDirection direction_from_field(const Field& f);
[[nodiscard]] CellProcessParams cell_process_from_field(const Field& doc);
void write_cell_process_json(std::ostream& os, const CellProcessParams& p,
                             int indent);

}  // namespace sprout::spec

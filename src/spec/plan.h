// Shard planning: which cells of a grid each of N processes runs.
//
// Round-robin (runner/shard.h's shard_cell_indices) deals cells by index —
// simple, but a grid whose expensive cells cluster at one stride leaves one
// shard doing most of the wall-clock work.  LPT (longest processing time
// first) instead walks the cells in descending estimated_cost and assigns
// each to the currently lightest shard: the classic greedy bound guarantees
// no shard exceeds 4/3 of the optimal makespan.
//
// Either strategy yields a clean partition, so merged results are identical
// whichever produced the shards — but MIXING strategies across the shards
// of one grid almost certainly double-covers some cells and orphans others.
// Shard files therefore record the strategy that cut them
// (ShardResult::partition), `sweep_shard list` prints it, and merge rejects
// a mix outright rather than failing later with a confusing
// collision/coverage error.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "runner/shard.h"

namespace sprout::spec {

enum class PartitionStrategy {
  kRoundRobin,  // index i -> shard i mod N (the PR 3 default)
  kLpt,         // greedy cost balance over estimated_cost
};

[[nodiscard]] std::string to_string(PartitionStrategy strategy);
// Parses the exact strings to_string produces ("round-robin", "lpt");
// nullopt for anything else.
[[nodiscard]] std::optional<PartitionStrategy> partition_from_name(
    const std::string& name);

// Full LPT assignment: cells in descending estimated_cost (ties by index,
// so the plan is a pure function of the specs), each to the lightest shard
// (ties by lowest shard id).  Every cell appears in exactly one bucket;
// each bucket is sorted ascending.  Throws std::invalid_argument for a
// non-positive shard_count.
[[nodiscard]] std::vector<std::vector<std::size_t>> lpt_partition(
    const std::vector<ScenarioSpec>& cells, int shard_count);

// The cell indices shard `shard_index` of `shard_count` owns under
// `strategy`.  Bounds-checked exactly like shard_cell_indices.
[[nodiscard]] std::vector<std::size_t> plan_shard_indices(
    const SweepSpec& spec, PartitionStrategy strategy, int shard_index,
    int shard_count);

}  // namespace sprout::spec

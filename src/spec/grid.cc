#include "spec/grid.h"

#include <algorithm>
#include <fstream>
#include <functional>
#include <optional>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

namespace sprout::spec {

namespace {

struct Axis {
  std::string name;
  std::vector<const JsonValue*> patches;
  // Backing store for range-generated patches; `patches` may point here.
  // (Moving an Axis moves the vector's heap buffer, so the pointers stay
  // valid.)
  std::vector<JsonValue> owned;
};

// --- numeric range axes --------------------------------------------------
//
// An axis may declare its patches as a numeric range instead of a list:
//
//   {"name": "loss", "range": {"loss_rate": {"from": 0, "to": 0.1,
//                                            "step": 0.02}}}
//
// expands to the six merge-patches {"loss_rate": 0}, ..., {"loss_rate":
// 0.1}.  The range object is shaped like the patch it generates: nested
// objects address deep fields ({"link": {"forward": {"brownian": {...}}}}),
// and exactly ONE leaf must be a {from, to, step} descriptor — two swept
// fields are two axes, not one.

bool is_range_descriptor(const JsonValue& v) {
  if (v.kind() != JsonValue::Kind::kObject) return false;
  return v.has("from") && v.has("to") && v.has("step") &&
         v.members().size() == 3;
}

// Counts descriptor leaves and checks everything else is a plain object.
int count_descriptors(const Field& f) {
  if (is_range_descriptor(f.json())) return 1;
  if (f.json().kind() != JsonValue::Kind::kObject) {
    f.fail("range values must be objects ending in one "
           "{\"from\", \"to\", \"step\"} descriptor");
  }
  int count = 0;
  for (const auto& [key, value] : f.json().members()) {
    (void)value;
    count += count_descriptors(f.at(key));
  }
  return count;
}

std::vector<double> descriptor_values(const Field& f) {
  const Field from = f.at("from");
  const Field to = f.at("to");
  const Field step = f.at("step");
  const double lo = from.as_finite();
  const double hi = to.as_finite();
  const double by = step.positive();
  if (hi < lo) to.fail("must be >= from");
  // Values are from + i*step (never accumulated), with a half-ulp-ish
  // slack so 0..0.1 by 0.02 includes 0.1 despite binary rounding.
  const double slack = by * 1e-9;
  std::vector<double> values;
  for (int i = 0;; ++i) {
    const double v = lo + by * i;
    if (v > hi + slack) break;
    values.push_back(std::min(v, hi));
    if (values.size() > 10000) {
      step.fail("range expands to more than 10000 values");
    }
  }
  return values;
}

// Clones the range shape with the descriptor leaf replaced by `value`.
JsonValue range_patch(const JsonValue& shape, double value) {
  if (is_range_descriptor(shape)) return JsonValue::make_number(value);
  std::vector<std::pair<std::string, JsonValue>> members;
  for (const auto& [key, child] : shape.members()) {
    members.emplace_back(key, range_patch(child, value));
  }
  return JsonValue::make_object(std::move(members));
}

std::vector<JsonValue> expand_range(const Field& range) {
  const int descriptors = count_descriptors(range);
  if (descriptors == 0) {
    range.fail("needs exactly one {\"from\", \"to\", \"step\"} descriptor");
  }
  if (descriptors > 1) {
    range.fail("sweeps more than one field; use one axis per swept field");
  }
  // Locate the descriptor to read its bounds (depth-first; unique).
  std::function<std::optional<Field>(const Field&)> find =
      [&](const Field& f) -> std::optional<Field> {
    if (is_range_descriptor(f.json())) return f;
    for (const auto& [key, value] : f.json().members()) {
      (void)value;
      if (auto hit = find(f.at(key))) return hit;
    }
    return std::nullopt;
  };
  const Field descriptor = *find(range);
  std::vector<JsonValue> patches;
  for (const double v : descriptor_values(descriptor)) {
    patches.push_back(range_patch(range.json(), v));
  }
  return patches;
}

std::vector<Axis> read_axes(const Field& axes_field) {
  std::vector<Axis> axes;
  for (const Field& a : axes_field.items()) {
    a.allow_keys({"name", "patches", "range"});
    Axis axis;
    axis.name = a.at("name").as_string();
    if (a.has("patches") == a.has("range")) {
      a.fail("needs exactly one of \"patches\" or \"range\"");
    }
    if (const auto range = a.get("range")) {
      axis.owned = expand_range(*range);
      axis.patches.reserve(axis.owned.size());
      for (const JsonValue& p : axis.owned) axis.patches.push_back(&p);
      axes.push_back(std::move(axis));
      continue;
    }
    const Field patches = a.at("patches");
    for (const Field& p : patches.items()) {
      if (p.json().kind() != JsonValue::Kind::kObject) {
        p.fail("expected a merge-patch object");
      }
      axis.patches.push_back(&p.json());
    }
    if (axis.patches.empty()) patches.fail("needs at least one patch");
    axes.push_back(std::move(axis));
  }
  return axes;
}

// Two axes may not write the same field: in a cross product the later
// axis would silently win every cell, making the grid's shape a lie.
void reject_overlapping_axes(const Field& axes_field,
                             const std::vector<Axis>& axes) {
  std::vector<std::vector<std::string>> touched(axes.size());
  for (std::size_t i = 0; i < axes.size(); ++i) {
    for (const JsonValue* patch : axes[i].patches) {
      for (std::string& path : patch_paths(*patch)) {
        touched[i].push_back(std::move(path));
      }
    }
  }
  for (std::size_t i = 0; i < axes.size(); ++i) {
    for (std::size_t j = i + 1; j < axes.size(); ++j) {
      for (const std::string& p : touched[i]) {
        for (const std::string& q : touched[j]) {
          if (paths_overlap(p, q)) {
            axes_field.fail("axes \"" + axes[i].name + "\" and \"" +
                            axes[j].name + "\" overlap: both set " +
                            (p.size() >= q.size() ? p : q));
          }
        }
      }
    }
  }
}

}  // namespace

ExperimentSpec parse_experiment_json(std::string_view text,
                                     const std::string& label) {
  const JsonValue doc_json = parse_spec_document(text, label);
  const Field doc(doc_json, "");
  doc.allow_keys({"spec_version", "name", "base_seed", "plan", "cells",
                  "base", "expand", "axes", "cell_overrides"});

  const Field version = doc.at("spec_version");
  if (version.as_int() != kSpecVersion) {
    version.fail("unsupported spec_version " +
                 std::to_string(version.as_int()) + " (this build reads " +
                 std::to_string(kSpecVersion) + ")");
  }

  ExperimentSpec spec;
  if (const auto f = doc.get("name")) spec.name = f->as_string();
  if (const auto f = doc.get("base_seed")) spec.sweep.base_seed = f->as_u64();
  if (const auto plan = doc.get("plan")) {
    plan->allow_keys({"strategy"});
    if (const auto f = plan->get("strategy")) {
      const std::optional<PartitionStrategy> strategy =
          partition_from_name(f->as_string());
      if (!strategy.has_value()) {
        f->fail("unknown partition strategy \"" + f->as_string() +
                "\" (expected \"round-robin\" or \"lpt\")");
      }
      spec.strategy = *strategy;
    }
  }

  // The expanded cell documents; kept alive until the scenarios are read
  // (Field borrows its JsonValue).
  std::vector<JsonValue> cell_docs;
  if (const auto cells = doc.get("cells")) {
    for (const char* clashing : {"base", "axes", "expand"}) {
      if (doc.has(clashing)) {
        cells->fail(std::string("an explicit cell list cannot be combined "
                                "with \"") +
                    clashing + "\"");
      }
    }
    for (const Field& c : cells->items()) cell_docs.push_back(c.json());
    if (cell_docs.empty()) cells->fail("needs at least one cell");
  } else {
    const Field base = doc.at("base");
    if (base.json().kind() != JsonValue::Kind::kObject) {
      base.fail("expected a scenario object");
    }
    std::vector<Axis> axes;
    if (const auto axes_field = doc.get("axes")) {
      axes = read_axes(*axes_field);
      reject_overlapping_axes(*axes_field, axes);
    }
    const std::string expand =
        doc.has("expand") ? doc.at("expand").as_string() : "cross";
    if (expand == "cross") {
      // First axis outermost: indices count like a mixed-radix odometer
      // whose least-significant digit is the LAST axis.
      std::size_t total = 1;
      for (const Axis& a : axes) total *= a.patches.size();
      for (std::size_t cell = 0; cell < total; ++cell) {
        JsonValue merged = base.json();
        std::size_t rem = cell;
        std::size_t radix = total;
        for (const Axis& a : axes) {
          radix /= a.patches.size();
          merged = merge_patch(merged, *a.patches[rem / radix]);
          rem %= radix;
        }
        cell_docs.push_back(std::move(merged));
      }
    } else if (expand == "zip") {
      const Field axes_field = doc.at("axes");
      if (axes.empty()) axes_field.fail("zip expansion needs axes");
      for (const Axis& a : axes) {
        if (a.patches.size() != axes.front().patches.size()) {
          axes_field.fail("zip expansion needs equal-length axes (\"" +
                          axes.front().name + "\" has " +
                          std::to_string(axes.front().patches.size()) +
                          " patches, \"" + a.name + "\" has " +
                          std::to_string(a.patches.size()) + ")");
        }
      }
      for (std::size_t cell = 0; cell < axes.front().patches.size(); ++cell) {
        JsonValue merged = base.json();
        for (const Axis& a : axes) {
          merged = merge_patch(merged, *a.patches[cell]);
        }
        cell_docs.push_back(std::move(merged));
      }
    } else {
      doc.at("expand").fail("unknown expansion \"" + expand +
                            "\" (expected \"cross\" or \"zip\")");
    }
  }

  if (const auto overrides = doc.get("cell_overrides")) {
    for (const Field& o : overrides->items()) {
      o.allow_keys({"cell", "patch"});
      const Field cell_field = o.at("cell");
      const std::int64_t cell = cell_field.int_at_least(0);
      if (static_cast<std::size_t>(cell) >= cell_docs.size()) {
        cell_field.fail("cell " + std::to_string(cell) +
                        " outside the expanded grid of " +
                        std::to_string(cell_docs.size()) + " cells");
      }
      const Field patch = o.at("patch");
      cell_docs[static_cast<std::size_t>(cell)] =
          merge_patch(cell_docs[static_cast<std::size_t>(cell)],
                      patch.json());
    }
  }

  spec.sweep.cells.reserve(cell_docs.size());
  for (std::size_t i = 0; i < cell_docs.size(); ++i) {
    spec.sweep.cells.push_back(scenario_from_field(
        Field(cell_docs[i], "cells[" + std::to_string(i) + "]")));
  }
  return spec;
}

ExperimentSpec parse_experiment_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SpecError("cannot read " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse_experiment_json(text.str(), path);
}

void write_experiment_json(std::ostream& os, const ExperimentSpec& spec) {
  os << "{\n  \"spec_version\": " << kSpecVersion << ",\n  \"name\": ";
  write_json_string(os, spec.name);
  if (spec.sweep.base_seed.has_value()) {
    // Same spelling rule as the scenario writer: exact as a number, a
    // decimal string past 2^53.
    os << ",\n  \"base_seed\": ";
    if (*spec.sweep.base_seed < (1ull << 53)) {
      os << *spec.sweep.base_seed;
    } else {
      os << '"' << *spec.sweep.base_seed << '"';
    }
  }
  os << ",\n  \"plan\": {\"strategy\": ";
  write_json_string(os, to_string(spec.strategy));
  os << "},\n  \"cells\": [\n";
  for (std::size_t i = 0; i < spec.sweep.cells.size(); ++i) {
    os << "    ";
    write_scenario_json(os, spec.sweep.cells[i], 4);
    os << (i + 1 < spec.sweep.cells.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

}  // namespace sprout::spec

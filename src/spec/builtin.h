// The compiled-in grids `sweep_shard` ships, as a library.
//
// These used to live inside examples/sweep_shard.cpp; they moved here so
// that (a) the CLI, the spec_lint example and the tests construct the SAME
// grid objects, and (b) each checked-in JSON spec twin (specs/*.json) can
// be locked against its compiled grid by fingerprint — the acceptance
// invariant "a sweep defined only in a spec file produces byte-identical
// results to the compiled grid" starts from these.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "runner/shard.h"

namespace sprout::spec {

struct BuiltinGridOptions {
  // Per-cell duration scale: run_time = seconds, warmup = seconds / 4.
  int seconds = 20;
  std::optional<std::uint64_t> base_seed;
};

// The names build_builtin_grid accepts, in listing order.
[[nodiscard]] const std::vector<std::string>& builtin_grid_names();

// Builds a named grid; throws std::invalid_argument (naming the known
// grids) for anything else.
[[nodiscard]] SweepSpec build_builtin_grid(const std::string& name,
                                           const BuiltinGridOptions& options);

}  // namespace sprout::spec

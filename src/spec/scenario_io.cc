#include "spec/scenario_io.h"

#include <ostream>
#include <sstream>

#include "runner/registry.h"
#include "spec/json_writer.h"
#include "spec/synth_io.h"
#include "trace/presets.h"

namespace sprout::spec {

namespace {

// --- shared vocabulary ---------------------------------------------------

SchemeId read_scheme(const Field& f) {
  const std::string& name = f.as_string();
  const std::optional<SchemeId> id = scheme_from_name(name);
  if (!id.has_value()) f.fail("unknown scheme \"" + name + "\"");
  if (SchemeRegistry::instance().find(*id) == nullptr) {
    f.fail("scheme \"" + name + "\" is not registered in this build");
  }
  return *id;
}

LinkAqm read_link_aqm(const Field& f) {
  const std::string& name = f.as_string();
  for (const LinkAqm aqm : {LinkAqm::kAuto, LinkAqm::kDropTail, LinkAqm::kCoDel,
                            LinkAqm::kPie}) {
    if (name == to_string(aqm)) return aqm;
  }
  f.fail("unknown link AQM \"" + name +
         "\" (expected \"auto\", \"DropTail\", \"CoDel\" or \"PIE\")");
}

// --- readers -------------------------------------------------------------

SproutParams read_sprout_params(const Field& doc) {
  doc.allow_keys({"num_bins", "max_rate_pps", "tick_s", "sigma_pps_per_sqrt_s",
                  "outage_escape_rate_per_s", "forecast_horizon_ticks",
                  "confidence_percent", "max_count", "count_noise_in_forecast",
                  "band_epsilon", "dense_inference",
                  "sender_lookahead_ticks", "throwaway_window_s",
                  "assumed_propagation_s", "mtu_bytes", "heartbeat_bytes"});
  SproutParams p;
  if (const auto f = doc.get("num_bins")) p.num_bins = static_cast<int>(f->int_at_least(2));
  if (const auto f = doc.get("max_rate_pps")) p.max_rate_pps = f->positive();
  if (const auto f = doc.get("tick_s")) p.tick = f->positive_seconds();
  if (const auto f = doc.get("sigma_pps_per_sqrt_s")) p.sigma_pps_per_sqrt_s = f->non_negative();
  if (const auto f = doc.get("outage_escape_rate_per_s")) p.outage_escape_rate_per_s = f->non_negative();
  if (const auto f = doc.get("forecast_horizon_ticks")) p.forecast_horizon_ticks = static_cast<int>(f->int_at_least(1));
  if (const auto f = doc.get("confidence_percent")) p.confidence_percent = f->in_range(0.0, 100.0);
  if (const auto f = doc.get("max_count")) p.max_count = static_cast<int>(f->int_at_least(1));
  if (const auto f = doc.get("count_noise_in_forecast")) p.count_noise_in_forecast = f->as_bool();
  if (const auto f = doc.get("band_epsilon")) p.band_epsilon = f->in_range(0.0, 1e-3);
  if (const auto f = doc.get("dense_inference")) p.dense_inference = f->as_bool();
  if (const auto f = doc.get("sender_lookahead_ticks")) p.sender_lookahead_ticks = static_cast<int>(f->int_at_least(0));
  if (const auto f = doc.get("throwaway_window_s")) p.throwaway_window = f->non_negative_seconds();
  if (const auto f = doc.get("assumed_propagation_s")) p.assumed_propagation = f->non_negative_seconds();
  if (const auto f = doc.get("mtu_bytes")) p.mtu = f->int_at_least(1);
  if (const auto f = doc.get("heartbeat_bytes")) p.heartbeat_bytes = f->int_at_least(0);
  return p;
}

LinkSpec read_link(const Field& doc) {
  const std::string source =
      doc.has("source") ? doc.at("source").as_string() : "preset";
  if (source == "preset") {
    doc.allow_keys({"source", "network", "direction"});
    std::string network = "Verizon LTE";
    LinkDirection direction = LinkDirection::kDownlink;
    if (const auto f = doc.get("network")) network = f->as_string();
    if (const auto f = doc.get("direction")) direction = direction_from_field(*f);
    // Resolve now so a typo'd network name fails at lint time with the
    // spec path, not at run time deep inside a shard process.
    try {
      (void)find_link_preset(network, direction);
    } catch (const std::exception&) {
      if (const auto f = doc.get("network")) {
        f->fail("unknown network \"" + network + "\"");
      }
      doc.fail("unknown network \"" + network + "\"");
    }
    return LinkSpec::preset(network, direction);
  }
  if (source == "trace-files") {
    doc.allow_keys({"source", "forward_path", "reverse_path"});
    return LinkSpec::trace_files(doc.at("forward_path").as_string(),
                                 doc.at("reverse_path").as_string());
  }
  if (source == "synthetic") {
    doc.allow_keys({"source", "forward_process", "reverse_process",
                    "forward_seed", "reverse_seed"});
    CellProcessParams forward;
    CellProcessParams reverse;
    if (const auto f = doc.get("forward_process")) {
      forward = cell_process_from_field(*f);
    }
    if (const auto f = doc.get("reverse_process")) {
      reverse = cell_process_from_field(*f);
    }
    std::uint64_t forward_seed = 1;
    std::uint64_t reverse_seed = 2;
    if (const auto f = doc.get("forward_seed")) forward_seed = f->as_u64();
    if (const auto f = doc.get("reverse_seed")) reverse_seed = f->as_u64();
    return LinkSpec::synthetic(forward, reverse, forward_seed, reverse_seed);
  }
  if (source == "synth") {
    doc.allow_keys({"source", "forward", "reverse"});
    SynthSpec forward;
    if (const auto f = doc.get("forward")) forward = synth_from_field(*f);
    // An absent reverse direction mirrors the "synthetic" source's default
    // seeds: the default model on its own stream (seed 2, vs forward's 1).
    SynthSpec reverse = SynthSpec{}.with_seed(2);
    if (const auto f = doc.get("reverse")) reverse = synth_from_field(*f);
    return LinkSpec::synth(std::move(forward), std::move(reverse));
  }
  doc.at("source").fail("unknown link source \"" + source +
                        "\" (expected \"preset\", \"trace-files\", "
                        "\"synthetic\" or \"synth\")");
}

FlowSpec read_flow(const Field& doc) {
  doc.allow_keys({"scheme", "sprout_params", "start_s", "stop_s"});
  FlowSpec flow;
  if (const auto f = doc.get("scheme")) flow.scheme = read_scheme(*f);
  if (const auto f = doc.get("sprout_params")) {
    flow.sprout_params = read_sprout_params(*f);
  }
  if (const auto f = doc.get("start_s")) flow.start = f->non_negative_seconds();
  if (const auto f = doc.get("stop_s")) {
    flow.stop = f->positive_seconds();
    if (*flow.stop <= flow.start) f->fail("must be > start_s");
  }
  return flow;
}

TopologySpec read_topology(const Field& doc) {
  doc.allow_keys({"kind", "num_flows", "flows", "via_tunnel", "tower"});
  const std::string kind =
      doc.has("kind") ? doc.at("kind").as_string() : "single-flow";

  if (kind == "single-flow") {
    // num_flows/flows/via_tunnel mean nothing here, and stray values would
    // still be fingerprinted — reject them rather than hash dead weight.
    doc.allow_keys({"kind"});
    return TopologySpec::single_flow();
  }
  if (kind == "shared-queue") {
    doc.allow_keys({"kind", "num_flows", "flows"});
    if (const auto flows_field = doc.get("flows")) {
      std::vector<FlowSpec> flows;
      for (const Field& f : flows_field->items()) flows.push_back(read_flow(f));
      if (flows.empty()) flows_field->fail("needs at least one flow");
      if (const auto n = doc.get("num_flows")) {
        if (n->int_at_least(1) != static_cast<std::int64_t>(flows.size())) {
          n->fail("disagrees with the flows list (" +
                  std::to_string(flows.size()) + " flows); omit num_flows");
        }
      }
      return TopologySpec::heterogeneous_queue(std::move(flows));
    }
    int num_flows = 1;
    if (const auto n = doc.get("num_flows")) {
      num_flows = static_cast<int>(n->int_at_least(1));
    }
    return TopologySpec::shared_queue(num_flows);
  }
  if (kind == "tunnel-contention") {
    doc.allow_keys({"kind", "via_tunnel"});
    bool via_tunnel = false;
    if (const auto f = doc.get("via_tunnel")) via_tunnel = f->as_bool();
    return TopologySpec::tunnel_contention(via_tunnel);
  }
  if (kind == "tower") {
    doc.allow_keys({"kind", "tower"});
    TowerSpec t;
    if (const auto tf = doc.get("tower")) {
      tf->allow_keys({"num_users", "arrival_rate_per_s", "mean_session_s",
                      "slot_s", "pf_window_s", "channel", "mix", "hist_bin_s",
                      "hist_max_s"});
      if (const auto f = tf->get("num_users")) {
        t.num_users = static_cast<int>(f->int_at_least(1));
      }
      if (const auto f = tf->get("arrival_rate_per_s")) {
        t.arrival_rate_per_s = f->non_negative();
      }
      if (const auto f = tf->get("mean_session_s")) {
        t.mean_session_s = f->non_negative();
      }
      if (const auto f = tf->get("slot_s")) t.slot = f->positive_seconds();
      if (const auto f = tf->get("pf_window_s")) {
        t.pf_window = f->positive_seconds();
      }
      if (const auto f = tf->get("channel")) t.channel = synth_from_field(*f);
      if (const auto mix = tf->get("mix")) {
        std::vector<UserMixEntry> entries;
        for (const Field& e : mix->items()) {
          e.allow_keys({"scheme", "weight"});
          UserMixEntry entry;
          if (const auto s = e.get("scheme")) entry.scheme = read_scheme(*s);
          if (const auto wf = e.get("weight")) entry.weight = wf->positive();
          entries.push_back(entry);
        }
        if (entries.empty()) mix->fail("needs at least one mix entry");
        t.mix = std::move(entries);
      }
      if (const auto f = tf->get("hist_bin_s")) {
        t.hist_bin = f->positive_seconds();
      }
      if (const auto f = tf->get("hist_max_s")) {
        t.hist_max = f->positive_seconds();
      }
    }
    // The builder runs the full cross-field validation (channel base, PF
    // window vs slot, histogram geometry); rewrap its error with the spec
    // path so `spec_lint` points at the file, not a C++ call site.
    try {
      return TopologySpec::tower(std::move(t));
    } catch (const std::invalid_argument& e) {
      doc.fail(e.what());
    }
  }
  doc.at("kind").fail("unknown topology kind \"" + kind +
                      "\" (expected \"single-flow\", \"shared-queue\", "
                      "\"tunnel-contention\" or \"tower\")");
}

}  // namespace

ScenarioSpec scenario_from_field(const Field& doc) {
  doc.allow_keys({"scheme", "link", "topology", "link_aqm", "run_time_s",
                  "warmup_s", "propagation_delay_s", "propagation_delay_fwd_s",
                  "propagation_delay_rev_s", "loss_rate", "loss_rate_fwd",
                  "loss_rate_rev", "sprout_confidence", "seed",
                  "capture_series", "series_bin_s", "record_timeline",
                  "timeline_bin_s"});
  ScenarioSpec spec;
  if (const auto f = doc.get("topology")) spec.topology = read_topology(*f);
  if (spec.topology.kind == TopologySpec::Kind::kTower) {
    // A tower cell draws every scheme from the mix and every channel from
    // the tower's synth spec; a scenario-level scheme/link would be
    // silently ignored (and is deliberately not fingerprinted), so reject
    // it at lint time rather than let a spec lie about what it runs.
    if (doc.has("scheme")) {
      doc.at("scheme").fail(
          "tower topologies draw schemes from topology.tower.mix; remove "
          "scheme");
    }
    if (doc.has("link")) {
      doc.at("link").fail(
          "tower topologies draw channels from topology.tower.channel; "
          "remove link");
    }
    if (doc.has("capture_series")) {
      doc.at("capture_series").fail(
          "tower scenarios report streaming histograms, not time series; "
          "remove capture_series");
    }
  }
  if (const auto f = doc.get("link")) spec.link = read_link(*f);
  if (const auto f = doc.get("scheme")) {
    spec.scheme = read_scheme(*f);
  } else if (!spec.topology.flows.empty()) {
    // Mirror heterogeneous_scenario(): an explicit flow list without a
    // scenario-level scheme takes the lead flow's — otherwise a dumped
    // heterogeneous cell would silently re-read as scheme=Sprout and
    // change its fingerprint.
    spec.scheme = spec.topology.flows.front().scheme;
  }
  if (const auto f = doc.get("link_aqm")) spec.link_aqm = read_link_aqm(*f);
  if (const auto f = doc.get("run_time_s")) spec.run_time = f->positive_seconds();
  if (const auto f = doc.get("warmup_s")) spec.warmup = f->non_negative_seconds();
  if (spec.warmup >= spec.run_time) {
    (doc.has("warmup_s") ? doc.at("warmup_s") : doc.at("run_time_s"))
        .fail("warmup_s must be < run_time_s (every flow's metrics window "
              "would be empty)");
  }
  if (const auto f = doc.get("propagation_delay_s")) {
    if (doc.has("propagation_delay_fwd_s") ||
        doc.has("propagation_delay_rev_s")) {
      f->fail("conflicts with propagation_delay_fwd_s/propagation_delay_rev_s;"
              " use either the symmetric or the split spelling, not both");
    }
    spec.set_propagation_delay(f->non_negative_seconds());
  }
  if (const auto f = doc.get("propagation_delay_fwd_s")) {
    spec.propagation_delay_fwd = f->non_negative_seconds();
  }
  if (const auto f = doc.get("propagation_delay_rev_s")) {
    spec.propagation_delay_rev = f->non_negative_seconds();
  }
  if (const auto f = doc.get("loss_rate")) {
    if (doc.has("loss_rate_fwd") || doc.has("loss_rate_rev")) {
      f->fail("conflicts with loss_rate_fwd/loss_rate_rev; use either the "
              "symmetric or the split spelling, not both");
    }
    spec.set_loss_rate(f->in_range(0.0, 1.0));
  }
  if (const auto f = doc.get("loss_rate_fwd")) {
    spec.loss_rate_fwd = f->in_range(0.0, 1.0);
  }
  if (const auto f = doc.get("loss_rate_rev")) {
    spec.loss_rate_rev = f->in_range(0.0, 1.0);
  }
  if (const auto f = doc.get("sprout_confidence")) {
    spec.sprout_confidence = f->in_range(0.0, 100.0);
  }
  if (const auto f = doc.get("seed")) spec.seed = f->as_u64();
  if (const auto f = doc.get("capture_series")) {
    spec.capture_series = f->as_bool();
  }
  if (const auto f = doc.get("series_bin_s")) {
    spec.series_bin = f->positive_seconds();
  }
  // Unlike capture_series, the flight recorder streams fixed-bin state on
  // EVERY topology, towers included.
  if (const auto f = doc.get("record_timeline")) {
    spec.record_timeline = f->as_bool();
  }
  if (const auto f = doc.get("timeline_bin_s")) {
    spec.timeline_bin = f->positive_seconds();
  }

  // Cross-field checks run_scenario would reject anyway, surfaced here
  // with spec paths so `spec_lint` catches them before any shard runs.
  if (const auto topo = doc.get("topology")) {
    if (const auto flows = topo->get("flows")) {
      const std::vector<Field> items = flows->items();
      for (std::size_t i = 0; i < items.size(); ++i) {
        const FlowSpec& f = spec.topology.flows[i];
        if (f.start >= spec.run_time) {
          items[i].at("start_s").fail("must be < run_time_s");
        }
        if (f.stop.value_or(spec.run_time) <= spec.warmup) {
          items[i].fail("flow activity window ends inside warmup; nothing "
                        "would be measured");
        }
      }
    }
  }
  return spec;
}

ScenarioSpec parse_scenario_json(std::string_view text) {
  const JsonValue doc = parse_spec_document(text, "scenario");
  return scenario_from_field(Field(doc, ""));
}

// --- writer --------------------------------------------------------------

namespace {

void write_sprout_params(std::ostream& os, const SproutParams& p, int indent) {
  const SproutParams d;
  ObjectWriter w(os, indent);
  if (p.num_bins != d.num_bins) w.integer("num_bins", p.num_bins);
  if (p.max_rate_pps != d.max_rate_pps) w.number("max_rate_pps", p.max_rate_pps);
  if (p.tick != d.tick) w.seconds("tick_s", p.tick);
  if (p.sigma_pps_per_sqrt_s != d.sigma_pps_per_sqrt_s) {
    w.number("sigma_pps_per_sqrt_s", p.sigma_pps_per_sqrt_s);
  }
  if (p.outage_escape_rate_per_s != d.outage_escape_rate_per_s) {
    w.number("outage_escape_rate_per_s", p.outage_escape_rate_per_s);
  }
  if (p.forecast_horizon_ticks != d.forecast_horizon_ticks) {
    w.integer("forecast_horizon_ticks", p.forecast_horizon_ticks);
  }
  if (p.confidence_percent != d.confidence_percent) {
    w.number("confidence_percent", p.confidence_percent);
  }
  if (p.max_count != d.max_count) w.integer("max_count", p.max_count);
  if (p.count_noise_in_forecast != d.count_noise_in_forecast) {
    w.boolean("count_noise_in_forecast", p.count_noise_in_forecast);
  }
  if (p.band_epsilon != d.band_epsilon) w.number("band_epsilon", p.band_epsilon);
  if (p.dense_inference != d.dense_inference) {
    w.boolean("dense_inference", p.dense_inference);
  }
  if (p.sender_lookahead_ticks != d.sender_lookahead_ticks) {
    w.integer("sender_lookahead_ticks", p.sender_lookahead_ticks);
  }
  if (p.throwaway_window != d.throwaway_window) {
    w.seconds("throwaway_window_s", p.throwaway_window);
  }
  if (p.assumed_propagation != d.assumed_propagation) {
    w.seconds("assumed_propagation_s", p.assumed_propagation);
  }
  if (p.mtu != d.mtu) w.integer("mtu_bytes", p.mtu);
  if (p.heartbeat_bytes != d.heartbeat_bytes) {
    w.integer("heartbeat_bytes", p.heartbeat_bytes);
  }
  w.close();
}

void write_link(std::ostream& os, const LinkSpec& link, int indent) {
  ObjectWriter w(os, indent);
  switch (link.source) {
    case LinkSpec::Source::kPreset:
      w.str("source", "preset");
      w.str("network", link.network);
      w.str("direction", to_string(link.direction));
      break;
    case LinkSpec::Source::kTraces:
      throw SpecError(
          "link.source: in-memory traces cannot be serialized to a spec "
          "file; use trace-files or a synthetic process instead");
    case LinkSpec::Source::kTraceFiles:
      w.str("source", "trace-files");
      w.str("forward_path", link.forward_path);
      w.str("reverse_path", link.reverse_path);
      break;
    case LinkSpec::Source::kSynthetic:
      w.str("source", "synthetic");
      write_cell_process_json(w.key("forward_process"), link.forward_process,
                              indent + 2);
      write_cell_process_json(w.key("reverse_process"), link.reverse_process,
                              indent + 2);
      w.integer("forward_seed",
                static_cast<std::int64_t>(link.forward_process_seed));
      w.integer("reverse_seed",
                static_cast<std::int64_t>(link.reverse_process_seed));
      break;
    case LinkSpec::Source::kSynth:
      w.str("source", "synth");
      write_synth_json(w.key("forward"), link.forward_synth, indent + 2);
      write_synth_json(w.key("reverse"), link.reverse_synth, indent + 2);
      break;
  }
  w.close();
}

void write_flow(std::ostream& os, const FlowSpec& flow, int indent) {
  ObjectWriter w(os, indent);
  w.str("scheme", to_string(flow.scheme));
  if (flow.sprout_params.has_value()) {
    write_sprout_params(w.key("sprout_params"), *flow.sprout_params,
                        indent + 2);
  }
  if (flow.start != Duration::zero()) w.seconds("start_s", flow.start);
  if (flow.stop.has_value()) w.seconds("stop_s", *flow.stop);
  w.close();
}

void write_topology(std::ostream& os, const TopologySpec& topo, int indent) {
  ObjectWriter w(os, indent);
  switch (topo.kind) {
    case TopologySpec::Kind::kSingleFlow:
      w.str("kind", "single-flow");
      break;
    case TopologySpec::Kind::kSharedQueue:
      w.str("kind", "shared-queue");
      if (topo.flows.empty()) {
        w.integer("num_flows", topo.num_flows);
      } else {
        std::ostream& fs = w.key("flows");
        fs << "[";
        for (std::size_t i = 0; i < topo.flows.size(); ++i) {
          if (i > 0) fs << ", ";
          write_flow(fs, topo.flows[i], indent + 2);
        }
        fs << "]";
      }
      break;
    case TopologySpec::Kind::kTunnelContention:
      w.str("kind", "tunnel-contention");
      if (topo.via_tunnel) w.boolean("via_tunnel", true);
      break;
    case TopologySpec::Kind::kTower: {
      w.str("kind", "tower");
      const TowerSpec d;
      const TowerSpec& t = topo.tower_spec;
      ObjectWriter tw(w.key("tower"), indent + 2);
      if (t.num_users != d.num_users) tw.integer("num_users", t.num_users);
      if (t.arrival_rate_per_s != d.arrival_rate_per_s) {
        tw.number("arrival_rate_per_s", t.arrival_rate_per_s);
      }
      if (t.mean_session_s != d.mean_session_s) {
        tw.number("mean_session_s", t.mean_session_s);
      }
      if (t.slot != d.slot) tw.seconds("slot_s", t.slot);
      if (t.pf_window != d.pf_window) tw.seconds("pf_window_s", t.pf_window);
      write_synth_json(tw.key("channel"), t.channel, indent + 4);
      const bool default_mix =
          t.mix.size() == 1 && t.mix.front().scheme == d.mix.front().scheme &&
          t.mix.front().weight == d.mix.front().weight;
      if (!default_mix) {
        std::ostream& ms = tw.key("mix");
        ms << "[";
        for (std::size_t i = 0; i < t.mix.size(); ++i) {
          if (i > 0) ms << ", ";
          ObjectWriter ew(ms, indent + 4);
          ew.str("scheme", to_string(t.mix[i].scheme));
          if (t.mix[i].weight != 1.0) ew.number("weight", t.mix[i].weight);
          ew.close();
        }
        ms << "]";
      }
      if (t.hist_bin != d.hist_bin) tw.seconds("hist_bin_s", t.hist_bin);
      if (t.hist_max != d.hist_max) tw.seconds("hist_max_s", t.hist_max);
      tw.close();
      break;
    }
  }
  w.close();
}

}  // namespace

void write_scenario_json(std::ostream& os, const ScenarioSpec& spec,
                         int indent) {
  // Seeds: u64 beyond the 2^53 exact double range must travel as decimal
  // strings (the reader accepts both spellings).
  constexpr std::uint64_t kExactLimit = 1ull << 53;
  const ScenarioSpec defaults;

  ObjectWriter w(os, indent);
  // Tower cells carry their schemes and channel inside the topology; the
  // scenario-level fields are ignored there, and the reader rejects them.
  if (spec.topology.kind != TopologySpec::Kind::kTower) {
    w.str("scheme", to_string(spec.scheme));
    write_link(w.key("link"), spec.link, indent + 2);
  }
  if (spec.topology.kind != TopologySpec::Kind::kSingleFlow) {
    write_topology(w.key("topology"), spec.topology, indent + 2);
  }
  if (spec.link_aqm != LinkAqm::kAuto) {
    w.str("link_aqm", to_string(spec.link_aqm));
  }
  w.seconds("run_time_s", spec.run_time);
  w.seconds("warmup_s", spec.warmup);
  if (spec.propagation_delay_fwd == spec.propagation_delay_rev) {
    if (spec.propagation_delay_fwd != defaults.propagation_delay_fwd) {
      w.seconds("propagation_delay_s", spec.propagation_delay_fwd);
    }
  } else {
    w.seconds("propagation_delay_fwd_s", spec.propagation_delay_fwd);
    w.seconds("propagation_delay_rev_s", spec.propagation_delay_rev);
  }
  if (spec.loss_rate_fwd == spec.loss_rate_rev) {
    if (spec.loss_rate_fwd != 0.0) w.number("loss_rate", spec.loss_rate_fwd);
  } else {
    w.number("loss_rate_fwd", spec.loss_rate_fwd);
    w.number("loss_rate_rev", spec.loss_rate_rev);
  }
  if (spec.sprout_confidence != defaults.sprout_confidence) {
    w.number("sprout_confidence", spec.sprout_confidence);
  }
  if (spec.seed != defaults.seed) {
    if (spec.seed < kExactLimit) {
      w.integer("seed", static_cast<std::int64_t>(spec.seed));
    } else {
      w.str("seed", std::to_string(spec.seed));
    }
  }
  if (spec.capture_series) {
    w.boolean("capture_series", true);
    if (spec.series_bin != defaults.series_bin) {
      w.seconds("series_bin_s", spec.series_bin);
    }
  }
  if (spec.record_timeline) {
    w.boolean("record_timeline", true);
    if (spec.timeline_bin != defaults.timeline_bin) {
      w.seconds("timeline_bin_s", spec.timeline_bin);
    }
  }
  w.close();
}

std::string scenario_to_json(const ScenarioSpec& spec) {
  std::ostringstream os;
  write_scenario_json(os, spec);
  return os.str();
}

}  // namespace sprout::spec

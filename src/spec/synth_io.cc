#include "spec/synth_io.h"

#include <ostream>
#include <sstream>

#include "spec/json_writer.h"

namespace sprout::spec {

LinkDirection direction_from_field(const Field& f) {
  const std::string& name = f.as_string();
  if (name == "downlink") return LinkDirection::kDownlink;
  if (name == "uplink") return LinkDirection::kUplink;
  f.fail("unknown direction \"" + name +
         "\" (expected \"downlink\" or \"uplink\")");
}

CellProcessParams cell_process_from_field(const Field& doc) {
  doc.allow_keys({"mean_rate_pps", "volatility_pps", "reversion_per_s",
                  "max_rate_pps", "outage_hazard_per_s", "outage_min_s",
                  "outage_alpha", "step_s"});
  CellProcessParams p;
  if (const auto f = doc.get("mean_rate_pps")) p.mean_rate_pps = f->positive();
  if (const auto f = doc.get("volatility_pps")) p.volatility_pps = f->non_negative();
  if (const auto f = doc.get("reversion_per_s")) p.reversion_per_s = f->non_negative();
  if (const auto f = doc.get("max_rate_pps")) p.max_rate_pps = f->positive();
  if (const auto f = doc.get("outage_hazard_per_s")) p.outage_hazard_per_s = f->non_negative();
  if (const auto f = doc.get("outage_min_s")) p.outage_min_s = f->positive();
  if (const auto f = doc.get("outage_alpha")) p.outage_alpha = f->positive();
  if (const auto f = doc.get("step_s")) p.step = f->positive_seconds();
  return p;
}

void write_cell_process_json(std::ostream& os, const CellProcessParams& p,
                             int indent) {
  const CellProcessParams d;
  ObjectWriter w(os, indent);
  if (p.mean_rate_pps != d.mean_rate_pps) w.number("mean_rate_pps", p.mean_rate_pps);
  if (p.volatility_pps != d.volatility_pps) w.number("volatility_pps", p.volatility_pps);
  if (p.reversion_per_s != d.reversion_per_s) w.number("reversion_per_s", p.reversion_per_s);
  if (p.max_rate_pps != d.max_rate_pps) w.number("max_rate_pps", p.max_rate_pps);
  if (p.outage_hazard_per_s != d.outage_hazard_per_s) {
    w.number("outage_hazard_per_s", p.outage_hazard_per_s);
  }
  if (p.outage_min_s != d.outage_min_s) w.number("outage_min_s", p.outage_min_s);
  if (p.outage_alpha != d.outage_alpha) w.number("outage_alpha", p.outage_alpha);
  if (p.step != d.step) w.seconds("step_s", p.step);
  w.close();
}

namespace {

BrownianModelParams read_brownian(const Field& doc) {
  doc.allow_keys({"init_rate_pps", "sigma_pps_per_sqrt_s", "max_rate_pps",
                  "outage_escape_rate_per_s", "resume_rate_pps", "step_s"});
  BrownianModelParams p;
  if (const auto f = doc.get("init_rate_pps")) p.init_rate_pps = f->positive();
  if (const auto f = doc.get("sigma_pps_per_sqrt_s")) {
    p.sigma_pps_per_sqrt_s = f->non_negative();
  }
  if (const auto f = doc.get("max_rate_pps")) p.max_rate_pps = f->positive();
  if (const auto f = doc.get("outage_escape_rate_per_s")) {
    p.outage_escape_rate_per_s = f->positive();
  }
  if (const auto f = doc.get("resume_rate_pps")) p.resume_rate_pps = f->positive();
  if (const auto f = doc.get("step_s")) p.step = f->positive_seconds();
  if (p.max_rate_pps < p.init_rate_pps) {
    doc.fail("max_rate_pps must be >= init_rate_pps");
  }
  return p;
}

MarkovModelParams read_markov(const Field& doc) {
  doc.allow_keys({"states", "step_s"});
  MarkovModelParams p;
  if (const auto states = doc.get("states")) {
    p.states.clear();
    for (const Field& s : states->items()) {
      s.allow_keys({"rate_pps", "mean_dwell_s"});
      MarkovState state;
      if (const auto f = s.get("rate_pps")) state.rate_pps = f->non_negative();
      if (const auto f = s.get("mean_dwell_s")) state.mean_dwell_s = f->positive();
      p.states.push_back(state);
    }
    if (p.states.empty()) states->fail("needs at least one state");
  }
  if (const auto f = doc.get("step_s")) p.step = f->positive_seconds();
  return p;
}

SynthOp read_op_fields(const Field& doc);

// Reads one op and runs the library's own range validation, so every
// bound (including the overflow guards on seconds fields and the scale
// factor) fails at parse time with the op's spec path, not at generation
// time inside a shard process.
SynthOp read_op(const Field& doc) {
  const SynthOp op = read_op_fields(doc);
  try {
    validate_synth_op(op);
  } catch (const std::invalid_argument& e) {
    doc.fail(e.what());
  }
  return op;
}

SynthOp read_op_fields(const Field& doc) {
  const std::string name = doc.at("op").as_string();
  if (name == "outage") {
    doc.allow_keys({"op", "mean_on_s", "mean_off_s"});
    SynthOp op = SynthOp::outage(10.0, 0.5);
    if (const auto f = doc.get("mean_on_s")) op.mean_on_s = f->positive();
    if (const auto f = doc.get("mean_off_s")) op.mean_off_s = f->positive();
    return op;
  }
  if (name == "sawtooth") {
    doc.allow_keys({"op", "period_s", "depth", "ramp_s"});
    SynthOp op = SynthOp::sawtooth(15.0, 0.8, 3.0);
    if (const auto f = doc.get("period_s")) op.period_s = f->positive();
    if (const auto f = doc.get("depth")) op.depth = f->in_range(0.0, 1.0);
    if (const auto f = doc.get("ramp_s")) op.ramp_s = f->positive();
    if (op.ramp_s > op.period_s) {
      (doc.has("ramp_s") ? doc.at("ramp_s") : doc.at("op"))
          .fail("ramp_s must be <= period_s");
    }
    return op;
  }
  if (name == "scale") {
    doc.allow_keys({"op", "factor"});
    SynthOp op = SynthOp::scale(1.0);
    if (const auto f = doc.get("factor")) op.factor = f->positive();
    return op;
  }
  if (name == "jitter") {
    doc.allow_keys({"op", "jitter_s"});
    SynthOp op = SynthOp::jitter(0.005);
    if (const auto f = doc.get("jitter_s")) op.jitter_s = f->non_negative();
    return op;
  }
  if (name == "splice") {
    doc.allow_keys({"op", "segments"});
    const Field segments = doc.at("segments");
    std::vector<SpliceSegment> list;
    for (const Field& s : segments.items()) {
      s.allow_keys({"from_s", "to_s"});
      SpliceSegment seg;
      seg.from_s = s.at("from_s").non_negative();
      seg.to_s = s.at("to_s").positive();
      if (seg.to_s <= seg.from_s) s.at("to_s").fail("must be > from_s");
      list.push_back(seg);
    }
    if (list.empty()) segments.fail("needs at least one segment");
    return SynthOp::splice(std::move(list));
  }
  doc.at("op").fail("unknown synth op \"" + name +
                    "\" (expected \"outage\", \"sawtooth\", \"scale\", "
                    "\"jitter\" or \"splice\")");
}

SynthSpec::Base base_from_name(const Field& f) {
  const std::string& name = f.as_string();
  for (const SynthSpec::Base base :
       {SynthSpec::Base::kBrownian, SynthSpec::Base::kMarkov,
        SynthSpec::Base::kCox, SynthSpec::Base::kPreset,
        SynthSpec::Base::kTraceFile}) {
    if (name == to_string(base)) return base;
  }
  f.fail("unknown synth base \"" + name +
         "\" (expected \"brownian\", \"markov\", \"cox\", \"preset\" or "
         "\"trace-file\")");
}

// The model/base keys a synth object may carry, given its base tag: a
// stray "markov" object next to "base": "brownian" would be silently dead
// weight, so it is rejected like any other typo.
void check_base_keys(const Field& doc, SynthSpec::Base base) {
  switch (base) {
    case SynthSpec::Base::kBrownian:
      doc.allow_keys({"base", "brownian", "ops", "seed"});
      return;
    case SynthSpec::Base::kMarkov:
      doc.allow_keys({"base", "markov", "ops", "seed"});
      return;
    case SynthSpec::Base::kCox:
      doc.allow_keys({"base", "cox", "ops", "seed"});
      return;
    case SynthSpec::Base::kPreset:
      doc.allow_keys({"base", "network", "direction", "ops", "seed"});
      return;
    case SynthSpec::Base::kTraceFile:
      doc.allow_keys({"base", "path", "ops", "seed"});
      return;
  }
}

}  // namespace

SynthSpec synth_from_field(const Field& doc) {
  SynthSpec spec;
  if (const auto f = doc.get("base")) spec.base = base_from_name(*f);
  check_base_keys(doc, spec.base);
  switch (spec.base) {
    case SynthSpec::Base::kBrownian:
      if (const auto f = doc.get("brownian")) spec.brownian = read_brownian(*f);
      break;
    case SynthSpec::Base::kMarkov:
      if (const auto f = doc.get("markov")) spec.markov = read_markov(*f);
      break;
    case SynthSpec::Base::kCox:
      if (const auto f = doc.get("cox")) spec.cox = cell_process_from_field(*f);
      break;
    case SynthSpec::Base::kPreset: {
      if (const auto f = doc.get("network")) spec.network = f->as_string();
      if (const auto f = doc.get("direction")) {
        spec.direction = direction_from_field(*f);
      }
      // Resolve now so a typo'd network fails at lint time with the spec
      // path, not at run time deep inside a shard process.
      try {
        (void)find_link_preset(spec.network, spec.direction);
      } catch (const std::exception&) {
        (doc.has("network") ? doc.at("network") : doc.at("base"))
            .fail("unknown network \"" + spec.network + "\"");
      }
      break;
    }
    case SynthSpec::Base::kTraceFile:
      spec.path = doc.at("path").as_string();
      if (spec.path.empty()) doc.at("path").fail("must not be empty");
      break;
  }
  if (const auto ops = doc.get("ops")) {
    for (const Field& o : ops->items()) spec.ops.push_back(read_op(o));
  }
  if (const auto f = doc.get("seed")) spec.seed = f->as_u64();
  return spec;
}

SynthSpec parse_synth_json(std::string_view text) {
  const JsonValue doc = parse_spec_document(text, "synth");
  return synth_from_field(Field(doc, ""));
}

namespace {

void write_brownian(std::ostream& os, const BrownianModelParams& p,
                    int indent) {
  const BrownianModelParams d;
  ObjectWriter w(os, indent);
  if (p.init_rate_pps != d.init_rate_pps) w.number("init_rate_pps", p.init_rate_pps);
  if (p.sigma_pps_per_sqrt_s != d.sigma_pps_per_sqrt_s) {
    w.number("sigma_pps_per_sqrt_s", p.sigma_pps_per_sqrt_s);
  }
  if (p.max_rate_pps != d.max_rate_pps) w.number("max_rate_pps", p.max_rate_pps);
  if (p.outage_escape_rate_per_s != d.outage_escape_rate_per_s) {
    w.number("outage_escape_rate_per_s", p.outage_escape_rate_per_s);
  }
  if (p.resume_rate_pps != d.resume_rate_pps) {
    w.number("resume_rate_pps", p.resume_rate_pps);
  }
  if (p.step != d.step) w.seconds("step_s", p.step);
  w.close();
}

void write_markov(std::ostream& os, const MarkovModelParams& p, int indent) {
  const MarkovModelParams d;
  ObjectWriter w(os, indent);
  std::ostream& ss = w.key("states");
  ss << "[";
  for (std::size_t i = 0; i < p.states.size(); ++i) {
    if (i > 0) ss << ", ";
    ObjectWriter sw(ss, indent + 2);
    sw.number("rate_pps", p.states[i].rate_pps);
    sw.number("mean_dwell_s", p.states[i].mean_dwell_s);
    sw.close();
  }
  ss << "]";
  if (p.step != d.step) w.seconds("step_s", p.step);
  w.close();
}

void write_op(std::ostream& os, const SynthOp& op, int indent) {
  ObjectWriter w(os, indent);
  w.str("op", to_string(op.kind));
  switch (op.kind) {
    case SynthOp::Kind::kOutage:
      w.number("mean_on_s", op.mean_on_s);
      w.number("mean_off_s", op.mean_off_s);
      break;
    case SynthOp::Kind::kSawtooth:
      w.number("period_s", op.period_s);
      w.number("depth", op.depth);
      w.number("ramp_s", op.ramp_s);
      break;
    case SynthOp::Kind::kScale:
      w.number("factor", op.factor);
      break;
    case SynthOp::Kind::kJitter:
      w.number("jitter_s", op.jitter_s);
      break;
    case SynthOp::Kind::kSplice: {
      std::ostream& ss = w.key("segments");
      ss << "[";
      for (std::size_t i = 0; i < op.segments.size(); ++i) {
        if (i > 0) ss << ", ";
        ObjectWriter sw(ss, indent + 2);
        sw.number("from_s", op.segments[i].from_s);
        sw.number("to_s", op.segments[i].to_s);
        sw.close();
      }
      ss << "]";
      break;
    }
  }
  w.close();
}

}  // namespace

void write_synth_json(std::ostream& os, const SynthSpec& spec, int indent) {
  constexpr std::uint64_t kExactLimit = 1ull << 53;
  ObjectWriter w(os, indent);
  w.str("base", to_string(spec.base));
  switch (spec.base) {
    case SynthSpec::Base::kBrownian:
      write_brownian(w.key("brownian"), spec.brownian, indent + 2);
      break;
    case SynthSpec::Base::kMarkov:
      write_markov(w.key("markov"), spec.markov, indent + 2);
      break;
    case SynthSpec::Base::kCox:
      write_cell_process_json(w.key("cox"), spec.cox, indent + 2);
      break;
    case SynthSpec::Base::kPreset:
      w.str("network", spec.network);
      w.str("direction", to_string(spec.direction));
      break;
    case SynthSpec::Base::kTraceFile:
      w.str("path", spec.path);
      break;
  }
  if (!spec.ops.empty()) {
    std::ostream& ops = w.key("ops");
    ops << "[";
    for (std::size_t i = 0; i < spec.ops.size(); ++i) {
      if (i > 0) ops << ", ";
      write_op(ops, spec.ops[i], indent + 2);
    }
    ops << "]";
  }
  // Seeds follow the scenario writer's spelling rule: exact as a number,
  // a decimal string past 2^53.
  if (spec.seed < kExactLimit) {
    w.integer("seed", static_cast<std::int64_t>(spec.seed));
  } else {
    w.str("seed", std::to_string(spec.seed));
  }
  w.close();
}

std::string synth_to_json(const SynthSpec& spec) {
  std::ostringstream os;
  write_synth_json(os, spec);
  return os.str();
}

}  // namespace sprout::spec

// Simulated Saturator (paper §4.1).
//
// The paper's Saturator keeps a cellular link backlogged so the recorded
// packet-delivery times are the ground truth of every opportunity the link
// offered.  Here the "cellular link" is a live CellRateProcess draining a
// queue; the Saturator endpoint runs the paper's algorithm — adjust the
// in-flight window N to keep observed RTT within [750 ms, 3000 ms] — and
// records delivery times into a Trace.  Feedback returns over a separate
// low-delay path (the paper's second "feedback phone", ~20 ms).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/packet.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"
#include "trace/trace.h"
#include "util/units.h"

namespace sprout {

// One direction of a live (not trace-driven) cellular link: an unbounded
// FIFO drained by the hidden Poisson process.  Each delivery releases one
// queued packet and reports the instant to `on_delivery`.
class GroundTruthLink : public PacketSink {
 public:
  using DeliveryRecorder = std::function<void(TimePoint)>;

  GroundTruthLink(Simulator& sim, const CellProcessParams& params,
                  std::uint64_t seed, PacketSink& out,
                  DeliveryRecorder on_delivery);

  void receive(Packet&& p) override;

  [[nodiscard]] std::size_t queue_packets() const { return queue_.size(); }

 private:
  void start_step();
  void deliver_one();

  Simulator& sim_;
  CellRateProcess process_;
  Rng rng_;
  PacketSink& out_;
  DeliveryRecorder on_delivery_;
  std::deque<Packet> queue_;
};

struct SaturatorConfig {
  Duration rtt_floor = msec(750);    // below: raise the window
  Duration rtt_ceiling = msec(3000); // above: shrink the window
  Duration feedback_delay = msec(20);
  Duration run_time = sec(60);
  std::int64_t initial_window = 10;
};

struct SaturatorResult {
  Trace trace;                 // recorded delivery opportunities
  double observed_rate_kbps = 0.0;
  double mean_rtt_ms = 0.0;
  std::int64_t final_window = 0;
  double fraction_rtt_in_band = 0.0;  // time RTT spent inside [floor, ceiling]
};

// Runs the Saturator against a fresh link drawn from `params`.
SaturatorResult run_saturator(const CellProcessParams& params,
                              const SaturatorConfig& config,
                              std::uint64_t seed);

}  // namespace sprout

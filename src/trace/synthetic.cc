#include "trace/synthetic.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sprout {

CellRateProcess::CellRateProcess(const CellProcessParams& params,
                                 std::uint64_t seed)
    : params_(params), rng_(seed), rate_(params.mean_rate_pps) {
  assert(params_.mean_rate_pps > 0.0);
  assert(params_.max_rate_pps >= params_.mean_rate_pps);
  assert(params_.volatility_pps >= 0.0);
  assert(params_.step > Duration::zero());
}

double CellRateProcess::advance() {
  const double dt = to_seconds(params_.step);
  if (in_outage_) {
    outage_left_s_ -= dt;
    if (outage_left_s_ <= 0.0) {
      in_outage_ = false;
      rate_ = resume_rate_;
    }
    return current_pps();
  }
  // Outage entry: Bernoulli per step with the configured hazard.
  if (rng_.bernoulli(params_.outage_hazard_per_s * dt)) {
    in_outage_ = true;
    // Pareto(min, alpha) via inverse CDF.
    const double u = std::max(rng_.uniform(), 1e-12);
    outage_left_s_ =
        params_.outage_min_s * std::pow(u, -1.0 / params_.outage_alpha);
    // Links often come back weaker than they went down; resume at a
    // uniformly drawn fraction of the pre-outage rate.
    resume_rate_ = std::max(1.0, rate_ * rng_.uniform(0.25, 1.0));
    return 0.0;
  }
  // Ornstein-Uhlenbeck step: pull toward the mean plus Brownian noise.
  const double pull = params_.reversion_per_s * (params_.mean_rate_pps - rate_) * dt;
  const double noise = params_.volatility_pps * std::sqrt(dt) * rng_.normal(0.0, 1.0);
  rate_ += pull + noise;
  // Reflect at the boundaries.
  if (rate_ < 0.0) rate_ = -rate_;
  if (rate_ > params_.max_rate_pps) rate_ = 2.0 * params_.max_rate_pps - rate_;
  rate_ = std::clamp(rate_, 0.0, params_.max_rate_pps);
  return current_pps();
}

Trace generate_trace(const CellProcessParams& params, Duration duration,
                     std::uint64_t seed) {
  assert(duration > Duration::zero());
  CellRateProcess process(params, seed);
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);  // separate stream for placement
  std::vector<TimePoint> opportunities;
  const double dt = to_seconds(params.step);
  opportunities.reserve(static_cast<std::size_t>(
      params.mean_rate_pps * to_seconds(duration) * 1.2));
  std::vector<double> offsets;
  for (TimePoint t{}; t < TimePoint{} + duration; t += params.step) {
    const double rate = process.advance();
    const std::int64_t count = rng.poisson(rate * dt);
    if (count == 0) continue;
    offsets.clear();
    for (std::int64_t i = 0; i < count; ++i) {
      offsets.push_back(rng.uniform(0.0, dt));
    }
    std::sort(offsets.begin(), offsets.end());
    for (double off : offsets) {
      opportunities.push_back(t + from_seconds(off));
    }
  }
  // Guarantee non-emptiness so downstream consumers need no special case:
  // an all-outage trace is not a useful experiment.
  if (opportunities.empty()) {
    opportunities.push_back(TimePoint{} + duration / 2);
  }
  return Trace{std::move(opportunities), duration};
}

}  // namespace sprout

// Synthetic cellular-link generator (substitute for the paper's captures).
//
// The paper models a cellular link as a doubly-stochastic (Cox) process:
// MTU-sized delivery opportunities arrive as a Poisson process whose hidden
// rate λ(t) wanders in Brownian motion and has "sticky" outages (§3.1,
// Fig. 2 and 3).  We generate traces from exactly that family, with two
// deliberate mismatches from Sprout's own inference model so results are
// not an artifact of model match:
//   * λ(t) mean-reverts (Ornstein-Uhlenbeck) instead of wandering freely,
//     keeping the long-run rate near a per-network target, and
//   * outage durations are Pareto (heavy-tailed), matching the flicker-noise
//     (t^-3.27) interarrival tail of Figure 2, not the exponential escape
//     Sprout assumes.
#pragma once

#include <cstdint>

#include "trace/trace.h"
#include "util/rng.h"
#include "util/units.h"

namespace sprout {

struct CellProcessParams {
  // Long-run target of the hidden rate, in MTU-sized packets per second.
  double mean_rate_pps = 400.0;
  // Brownian noise power, packets/s per sqrt(s).
  double volatility_pps = 200.0;
  // Ornstein-Uhlenbeck pull toward mean_rate_pps, per second.
  double reversion_per_s = 0.25;
  // Hard ceiling (reflection) on the hidden rate.
  double max_rate_pps = 1000.0;
  // Hazard of entering a full outage (λ -> 0), per second.
  double outage_hazard_per_s = 1.0 / 90.0;
  // Outage durations are Pareto(min, alpha): heavy-tailed, "sticky".
  double outage_min_s = 0.25;
  double outage_alpha = 2.0;
  // Simulation step for the hidden-rate process.
  Duration step = msec(20);
};

// The hidden λ(t), advanced step by step.  Exposed (rather than private to
// the generator) so tests can check the generator against its own ground
// truth and so the Saturator can run against a live process.
class CellRateProcess {
 public:
  CellRateProcess(const CellProcessParams& params, std::uint64_t seed);

  // Advances one `params.step` and returns the rate holding in that step.
  double advance();

  [[nodiscard]] double current_pps() const { return in_outage_ ? 0.0 : rate_; }
  [[nodiscard]] bool in_outage() const { return in_outage_; }
  [[nodiscard]] const CellProcessParams& params() const { return params_; }

 private:
  CellProcessParams params_;
  Rng rng_;
  double rate_;
  bool in_outage_ = false;
  double outage_left_s_ = 0.0;
  double resume_rate_ = 0.0;
};

// Samples a delivery-opportunity trace of the given duration directly from
// the hidden process: per step, a Poisson count of opportunities placed
// uniformly within the step (the exact conditional law of a Poisson
// process given its count).
Trace generate_trace(const CellProcessParams& params, Duration duration,
                     std::uint64_t seed);

}  // namespace sprout

#include "trace/presets.h"

#include <stdexcept>

namespace sprout {

std::string to_string(LinkDirection d) {
  return d == LinkDirection::kDownlink ? "downlink" : "uplink";
}

namespace {

// Rates below are in MTU-sized packets/s: 1 pps = 12 kbit/s at 1500 bytes.
// mean/max chosen to land on the axes of the paper's Figure 7 charts;
// volatility and outage behaviour give the order-of-magnitude-per-second
// swings of Figure 1.
CellProcessParams make_params(double mean_kbps, double max_kbps,
                              double rel_volatility, double outage_interval_s,
                              double outage_min_s) {
  CellProcessParams p;
  p.mean_rate_pps = mean_kbps / 12.0;
  p.max_rate_pps = max_kbps / 12.0;
  p.volatility_pps = rel_volatility * p.mean_rate_pps;
  p.reversion_per_s = 0.25;
  p.outage_hazard_per_s = 1.0 / outage_interval_s;
  p.outage_min_s = outage_min_s;
  p.outage_alpha = 2.0;
  return p;
}

std::vector<LinkPreset> build_presets() {
  std::vector<LinkPreset> presets;
  //                        network            mean   max   vol  outage  min-out
  presets.push_back({"Verizon LTE", LinkDirection::kDownlink,
                     make_params(6200, 11000, 0.55, 120.0, 0.25), 1001});
  presets.push_back({"Verizon LTE", LinkDirection::kUplink,
                     make_params(4400, 9000, 0.50, 150.0, 0.25), 1002});
  presets.push_back({"Verizon 3G (1xEV-DO)", LinkDirection::kDownlink,
                     make_params(500, 900, 0.45, 90.0, 0.40), 1003});
  presets.push_back({"Verizon 3G (1xEV-DO)", LinkDirection::kUplink,
                     make_params(560, 900, 0.40, 110.0, 0.40), 1004});
  presets.push_back({"AT&T LTE", LinkDirection::kDownlink,
                     make_params(3400, 6500, 0.60, 100.0, 0.25), 1005});
  presets.push_back({"AT&T LTE", LinkDirection::kUplink,
                     make_params(900, 2000, 0.55, 120.0, 0.30), 1006});
  presets.push_back({"T-Mobile 3G (UMTS)", LinkDirection::kDownlink,
                     make_params(1300, 2500, 0.55, 90.0, 0.35), 1007});
  presets.push_back({"T-Mobile 3G (UMTS)", LinkDirection::kUplink,
                     make_params(950, 1700, 0.50, 110.0, 0.35), 1008});
  return presets;
}

}  // namespace

const std::vector<LinkPreset>& all_link_presets() {
  static const std::vector<LinkPreset> presets = build_presets();
  return presets;
}

const LinkPreset& find_link_preset(const std::string& network,
                                   LinkDirection direction) {
  for (const LinkPreset& p : all_link_presets()) {
    if (p.network == network && p.direction == direction) return p;
  }
  throw std::out_of_range("no such link preset: " + network + " " +
                          to_string(direction));
}

Trace preset_trace(const LinkPreset& preset, Duration duration) {
  return generate_trace(preset.params, duration, preset.seed);
}

}  // namespace sprout

#include "trace/trace.h"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <stdexcept>

namespace sprout {

Trace::Trace(std::vector<TimePoint> opportunities, Duration duration)
    : opportunities_(std::move(opportunities)), duration_(duration) {
  assert(std::is_sorted(opportunities_.begin(), opportunities_.end()));
  if (!opportunities_.empty()) {
    assert(opportunities_.back().time_since_epoch() <= duration_);
  }
  assert(duration_ > Duration::zero());
}

TimePoint Trace::opportunity(std::size_t i) const {
  assert(!opportunities_.empty());
  const std::size_t n = opportunities_.size();
  const std::size_t wraps = i / n;
  const std::size_t idx = i % n;
  return opportunities_[idx] + duration_ * static_cast<std::int64_t>(wraps);
}

double Trace::average_rate_kbps() const {
  return kbps(static_cast<ByteCount>(opportunities_.size()) * kMtuBytes,
              duration_);
}

ByteCount Trace::deliverable_bytes(TimePoint from, TimePoint to) const {
  if (opportunities_.empty() || to <= from) return 0;
  // Count opportunities in [from, to) with wraparound.
  auto count_in_base = [&](TimePoint a, TimePoint b) -> std::int64_t {
    // a, b within [epoch, epoch + duration)
    const auto lo = std::lower_bound(opportunities_.begin(), opportunities_.end(), a);
    const auto hi = std::lower_bound(opportunities_.begin(), opportunities_.end(), b);
    return hi - lo;
  };
  const auto epoch = TimePoint{};
  std::int64_t count = 0;
  // Full periods covered.
  const std::int64_t per_period = static_cast<std::int64_t>(opportunities_.size());
  auto wrap = [&](TimePoint t) {
    const auto since = t.time_since_epoch();
    const auto rem = Duration{since.count() % duration_.count()};
    return std::pair{since.count() / duration_.count(), epoch + rem};
  };
  auto [from_period, from_rem] = wrap(from);
  auto [to_period, to_rem] = wrap(to);
  count += (to_period - from_period) * per_period;
  count += count_in_base(epoch, to_rem);
  count -= count_in_base(epoch, from_rem);
  return count * kMtuBytes;
}

std::vector<Duration> Trace::interarrivals() const {
  std::vector<Duration> gaps;
  if (opportunities_.size() < 2) return gaps;
  gaps.reserve(opportunities_.size() - 1);
  for (std::size_t i = 1; i < opportunities_.size(); ++i) {
    gaps.push_back(opportunities_[i] - opportunities_[i - 1]);
  }
  return gaps;
}

Trace read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  std::vector<TimePoint> opportunities;
  std::int64_t ms_value = 0;
  std::int64_t last = 0;
  while (in >> ms_value) {
    if (ms_value < last) {
      throw std::runtime_error("trace timestamps not sorted in " + path);
    }
    last = ms_value;
    opportunities.push_back(TimePoint{} + msec(ms_value));
  }
  if (opportunities.empty()) {
    throw std::runtime_error("empty trace file: " + path);
  }
  // Nominal duration: round the last timestamp up to the next millisecond so
  // that the final opportunity is inside the repeating window.
  const Duration duration = msec(last + 1);
  return Trace{std::move(opportunities), duration};
}

void write_trace_file(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write trace file: " + path);
  for (const TimePoint& t : trace.opportunities()) {
    out << std::chrono::duration_cast<std::chrono::milliseconds>(
               t.time_since_epoch())
               .count()
        << '\n';
  }
}

}  // namespace sprout

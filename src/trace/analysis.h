// Offline analysis of delivery-opportunity traces.
//
// The paper characterizes cellular links through exactly these lenses:
// the interarrival distribution and its flicker-noise tail (Figure 2, the
// "99.99% within 20 ms" statistic), multi-second outages (§2.1), and rate
// variability across time scales ("varied up and down by almost an order
// of magnitude within one second", §2.2).  This module computes those
// statistics for any trace — synthetic or captured — so generator
// calibration and Figure 2 reproduction share one implementation.
#pragma once

#include <vector>

#include "trace/trace.h"
#include "util/stats.h"
#include "util/units.h"

namespace sprout {

// Deliverable rate per fixed window, assuming one MTU per opportunity.
struct RatePoint {
  TimePoint at{};       // window start
  double rate_kbps = 0.0;
};

[[nodiscard]] std::vector<RatePoint> windowed_rate(const Trace& trace,
                                                   Duration window);

// A delivery gap of at least `min_gap` (the paper's "occasional multi-
// second outages").
struct Outage {
  TimePoint start{};
  Duration duration{};
};

[[nodiscard]] std::vector<Outage> find_outages(const Trace& trace,
                                               Duration min_gap);

// Figure 2 summary statistics of the interarrival distribution.
struct InterarrivalSummary {
  std::int64_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  // Fraction of interarrivals within 20 ms of the previous packet (the
  // paper reports 99.99% on the saturated Verizon LTE downlink).
  double fraction_within_20ms = 0.0;
  // Power-law exponent of the tail beyond 20 ms (the paper fits t^-3.27);
  // 0 when the tail has too few samples to fit.
  double tail_exponent = 0.0;
};

[[nodiscard]] InterarrivalSummary summarize_interarrivals(const Trace& trace);

// Lag-k autocorrelation of the windowed rate series; quantifies how fast
// link knowledge decays (the reason §3.1 models λ as varying, and the
// quantity Sprout's σ encodes).  Lag 0 is 1 by definition.
[[nodiscard]] std::vector<double> rate_autocorrelation(const Trace& trace,
                                                       Duration window,
                                                       int max_lag);

// Ratio of the p95 to p5 windowed rate — the "order of magnitude within
// seconds" variability statistic of §2.2.  Returns 0 if the trace is empty.
[[nodiscard]] double rate_dynamic_range(const Trace& trace, Duration window);

}  // namespace sprout

#include "trace/packet_pair.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace sprout {

std::vector<double> packet_pair_estimates(const Trace& trace) {
  std::vector<double> out;
  const std::vector<Duration> gaps = trace.interarrivals();
  out.reserve(gaps.size());
  for (const Duration g : gaps) {
    if (g <= Duration::zero()) continue;  // same-ms opportunities: no signal
    out.push_back(kbps(kMtuBytes, g));
  }
  return out;
}

std::vector<double> packet_pair_median_of(const std::vector<double>& estimates,
                                          int group) {
  std::vector<double> out;
  if (group < 1) return out;
  for (std::size_t i = 0; i + static_cast<std::size_t>(group) <= estimates.size();
       i += static_cast<std::size_t>(group)) {
    std::vector<double> chunk(estimates.begin() + static_cast<long>(i),
                              estimates.begin() + static_cast<long>(i) +
                                  group);
    const std::size_t mid = chunk.size() / 2;
    std::nth_element(chunk.begin(), chunk.begin() + static_cast<long>(mid),
                     chunk.end());
    out.push_back(chunk[mid]);
  }
  return out;
}

EstimatorQuality evaluate_estimates(const std::vector<double>& estimates,
                                    double true_rate_kbps) {
  EstimatorQuality q;
  if (estimates.empty()) return q;
  RunningStats stats;
  PercentileEstimator pct;
  std::int64_t close = 0;
  for (const double e : estimates) {
    stats.add(e);
    pct.add(e);
    if (true_rate_kbps > 0.0 &&
        std::fabs(e - true_rate_kbps) <= 0.25 * true_rate_kbps) {
      ++close;
    }
  }
  q.mean_kbps = stats.mean();
  q.cov = q.mean_kbps > 0.0 ? stats.stddev() / q.mean_kbps : 0.0;
  q.p10_kbps = pct.percentile(10.0);
  q.p90_kbps = pct.percentile(90.0);
  q.fraction_within_25pct =
      static_cast<double>(close) / static_cast<double>(estimates.size());
  return q;
}

}  // namespace sprout

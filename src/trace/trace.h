// Delivery-opportunity traces.
//
// A trace is the paper's ground truth for one direction of a cellular link:
// a sorted list of instants at which the link could transmit one MTU-sized
// (1500-byte) burst.  File format is one integer millisecond timestamp per
// line — the same format the authors released with Cellsim and later
// mahimahi, so real captured traces drop in unchanged.
#pragma once

#include <string>
#include <vector>

#include "util/units.h"

namespace sprout {

class Trace {
 public:
  Trace() = default;

  // `opportunities` must be sorted ascending.  `duration` is the nominal
  // length of the recording (>= last opportunity); when the emulator runs
  // past the end, the trace repeats with this period.
  Trace(std::vector<TimePoint> opportunities, Duration duration);

  [[nodiscard]] const std::vector<TimePoint>& opportunities() const {
    return opportunities_;
  }
  [[nodiscard]] Duration duration() const { return duration_; }
  [[nodiscard]] bool empty() const { return opportunities_.empty(); }
  [[nodiscard]] std::size_t size() const { return opportunities_.size(); }

  // The i-th delivery opportunity with wraparound: for i >= size(), the
  // trace repeats shifted by duration().  This is how mahimahi loops traces.
  [[nodiscard]] TimePoint opportunity(std::size_t i) const;

  // Average deliverable rate over the whole recording, in kbit/s, assuming
  // each opportunity is worth one MTU.
  [[nodiscard]] double average_rate_kbps() const;

  // Bytes deliverable in [from, to) assuming each opportunity is one MTU;
  // handles wraparound.  Used to compute link capacity/utilization.
  [[nodiscard]] ByteCount deliverable_bytes(TimePoint from, TimePoint to) const;

  // Interarrival gaps between consecutive opportunities (for Figure 2).
  [[nodiscard]] std::vector<Duration> interarrivals() const;

 private:
  std::vector<TimePoint> opportunities_;
  Duration duration_{};
};

// Reads a mahimahi-format trace file (one ms-timestamp per line; repeated
// timestamps mean multiple MTic opportunities in the same millisecond).
// Throws std::runtime_error on malformed input.
Trace read_trace_file(const std::string& path);

// Writes in the same format.
void write_trace_file(const Trace& trace, const std::string& path);

}  // namespace sprout

// Per-network presets for the paper's eight traced links.
//
// The paper captured ~17 minutes each from Verizon LTE, Verizon 3G
// (1xEV-DO), AT&T LTE and T-Mobile 3G (UMTS), in both directions.  The
// captures themselves are not bundled here; these presets parameterize the
// synthetic Cox-process generator (trace/synthetic.h) so each link matches
// the corresponding network's scale and variability as reported in the
// paper (Figure 7 axes, §5.6 throughput table).  Seeds are fixed: every
// build regenerates byte-identical traces.
#pragma once

#include <string>
#include <vector>

#include "trace/synthetic.h"
#include "trace/trace.h"

namespace sprout {

enum class LinkDirection { kDownlink, kUplink };

[[nodiscard]] std::string to_string(LinkDirection d);

struct LinkPreset {
  std::string network;      // e.g. "Verizon LTE"
  LinkDirection direction;
  CellProcessParams params;
  std::uint64_t seed;

  [[nodiscard]] std::string name() const {
    return network + " " + to_string(direction);
  }
};

// All eight links, in the order Figure 7 presents them.
[[nodiscard]] const std::vector<LinkPreset>& all_link_presets();

// Lookup by network name and direction; throws std::out_of_range if absent.
[[nodiscard]] const LinkPreset& find_link_preset(const std::string& network,
                                                 LinkDirection direction);

// Generates (deterministically) the delivery trace for a preset.
[[nodiscard]] Trace preset_trace(const LinkPreset& preset, Duration duration);

}  // namespace sprout

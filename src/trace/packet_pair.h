// Packet-pair bandwidth estimation, and why it fails on cellular links.
//
// §3.1: "Even in the middle of the night ... packet arrivals on a
// saturated link do not follow an observable isochronicity.  This is a
// roadblock for packet-pair techniques [13] and other schemes to measure
// the available throughput."
//
// Keshav's packet-pair method infers the bottleneck rate from the
// dispersion of two back-to-back packets: rate = size / gap.  On a
// constant-rate (isochronous) bottleneck every pair reports the true rate.
// On a Poisson service process the gaps are exponential — the estimator's
// coefficient of variation is 1 regardless of sample count per pair, so
// individual estimates span orders of magnitude and even aggressive
// smoothing lags the true rate badly.  bench/claim_packetpair quantifies
// the claim; trace_packet_pair_test pins the statistics.
#pragma once

#include <vector>

#include "trace/trace.h"
#include "util/units.h"

namespace sprout {

// Rate estimates (kbit/s) from consecutive delivery-opportunity gaps of a
// saturated link: estimate_i = MTU / (opp_{i+1} - opp_i).  This is the
// best case for packet-pair — the sender keeps the queue backlogged, so
// every dispersion is a genuine service-time sample.
[[nodiscard]] std::vector<double> packet_pair_estimates(const Trace& trace);

// The same estimator smoothed the way deployed tools do: the median of
// non-overlapping groups of `group` consecutive estimates.
[[nodiscard]] std::vector<double> packet_pair_median_of(
    const std::vector<double>& estimates, int group);

// Summary of estimator quality against a known true rate.
struct EstimatorQuality {
  double mean_kbps = 0.0;
  double cov = 0.0;          // coefficient of variation (stddev / mean)
  double p10_kbps = 0.0;
  double p90_kbps = 0.0;
  // Fraction of estimates within +/-25% of the true rate.
  double fraction_within_25pct = 0.0;
};

[[nodiscard]] EstimatorQuality evaluate_estimates(
    const std::vector<double>& estimates, double true_rate_kbps);

}  // namespace sprout

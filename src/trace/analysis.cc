#include "trace/analysis.h"

#include <algorithm>
#include <cmath>

namespace sprout {

std::vector<RatePoint> windowed_rate(const Trace& trace, Duration window) {
  std::vector<RatePoint> out;
  if (trace.empty() || window <= Duration::zero()) return out;
  const TimePoint end = TimePoint{} + trace.duration();
  for (TimePoint t{}; t < end; t += window) {
    const TimePoint hi = std::min(t + window, end);
    const ByteCount bytes = trace.deliverable_bytes(t, hi);
    out.push_back({t, kbps(bytes, hi - t)});
  }
  return out;
}

std::vector<Outage> find_outages(const Trace& trace, Duration min_gap) {
  std::vector<Outage> out;
  const std::vector<TimePoint>& opp = trace.opportunities();
  for (std::size_t i = 1; i < opp.size(); ++i) {
    const Duration gap = opp[i] - opp[i - 1];
    if (gap >= min_gap) out.push_back({opp[i - 1], gap});
  }
  return out;
}

InterarrivalSummary summarize_interarrivals(const Trace& trace) {
  InterarrivalSummary s;
  const std::vector<Duration> gaps = trace.interarrivals();
  if (gaps.empty()) return s;

  PercentileEstimator pct;
  RunningStats stats;
  std::int64_t within = 0;
  for (const Duration g : gaps) {
    const double ms = to_millis(g);
    pct.add(ms);
    stats.add(ms);
    if (ms <= 20.0) ++within;
  }
  s.count = static_cast<std::int64_t>(gaps.size());
  s.mean_ms = stats.mean();
  s.p50_ms = pct.percentile(50.0);
  s.p99_ms = pct.percentile(99.0);
  s.max_ms = stats.max();
  s.fraction_within_20ms =
      static_cast<double>(within) / static_cast<double>(gaps.size());

  // Tail fit beyond 20 ms, on a log-log histogram (Figure 2's method).
  if (s.max_ms > 40.0) {
    LogHistogram hist(20.0, std::max(s.max_ms, 21.0), 24);
    for (const Duration g : gaps) {
      const double ms = to_millis(g);
      if (ms > 20.0) hist.add(ms);
    }
    std::vector<double> xs;
    std::vector<double> ys;
    for (int i = 0; i < hist.bins(); ++i) {
      if (hist.count(i) == 0) continue;
      xs.push_back(hist.bin_center(i));
      // Density, not raw count: divide by bin width so the log-log slope
      // estimates the pdf exponent.
      ys.push_back(static_cast<double>(hist.count(i)) /
                   (hist.bin_hi(i) - hist.bin_lo(i)));
    }
    if (xs.size() >= 3) s.tail_exponent = fit_power_law(xs, ys).slope;
  }
  return s;
}

std::vector<double> rate_autocorrelation(const Trace& trace, Duration window,
                                         int max_lag) {
  std::vector<double> acf;
  const std::vector<RatePoint> series = windowed_rate(trace, window);
  const int n = static_cast<int>(series.size());
  if (n < 2 || max_lag < 0) return acf;

  double mean = 0.0;
  for (const RatePoint& p : series) mean += p.rate_kbps;
  mean /= n;
  double var = 0.0;
  for (const RatePoint& p : series) {
    var += (p.rate_kbps - mean) * (p.rate_kbps - mean);
  }
  if (var <= 0.0) {
    acf.assign(static_cast<std::size_t>(std::min(max_lag, n - 1)) + 1, 1.0);
    return acf;
  }
  for (int lag = 0; lag <= std::min(max_lag, n - 1); ++lag) {
    double acc = 0.0;
    for (int i = 0; i + lag < n; ++i) {
      acc += (series[static_cast<std::size_t>(i)].rate_kbps - mean) *
             (series[static_cast<std::size_t>(i + lag)].rate_kbps - mean);
    }
    acf.push_back(acc / var);
  }
  return acf;
}

double rate_dynamic_range(const Trace& trace, Duration window) {
  const std::vector<RatePoint> series = windowed_rate(trace, window);
  if (series.empty()) return 0.0;
  PercentileEstimator pct;
  for (const RatePoint& p : series) pct.add(p.rate_kbps);
  const double lo = pct.percentile(5.0);
  const double hi = pct.percentile(95.0);
  return lo > 0.0 ? hi / lo : hi;  // a p5 of zero (outages) reports hi
}

}  // namespace sprout

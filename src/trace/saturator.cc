#include "trace/saturator.h"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

#include "util/stats.h"

namespace sprout {

GroundTruthLink::GroundTruthLink(Simulator& sim,
                                 const CellProcessParams& params,
                                 std::uint64_t seed, PacketSink& out,
                                 DeliveryRecorder on_delivery)
    : sim_(sim),
      process_(params, seed),
      rng_(seed ^ 0xd1b54a32d192ed03ULL),
      out_(out),
      on_delivery_(std::move(on_delivery)) {
  start_step();
}

void GroundTruthLink::receive(Packet&& p) {
  queue_.push_back(std::move(p));
}

void GroundTruthLink::start_step() {
  const Duration step = process_.params().step;
  const double rate = process_.advance();
  const double dt = to_seconds(step);
  const std::int64_t count = rng_.poisson(rate * dt);
  std::vector<double> offsets;
  offsets.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    offsets.push_back(rng_.uniform(0.0, dt));
  }
  std::sort(offsets.begin(), offsets.end());
  for (double off : offsets) {
    sim_.after(from_seconds(off), [this] { deliver_one(); });
  }
  sim_.after(step, [this] { start_step(); });
}

void GroundTruthLink::deliver_one() {
  // An opportunity with an empty queue is wasted — exactly the situation
  // the Saturator's backlog exists to prevent.
  if (queue_.empty()) return;
  Packet p = std::move(queue_.front());
  queue_.pop_front();
  if (on_delivery_) on_delivery_(sim_.now());
  out_.receive(std::move(p));
}

namespace {

// The Saturator endpoint: keeps `window_` packets in flight, adapting it so
// the observed RTT stays inside the configured band.
class SaturatorEndpoint : public PacketSink {
 public:
  SaturatorEndpoint(Simulator& sim, const SaturatorConfig& config)
      : sim_(sim), config_(config), window_(config.initial_window) {}

  void attach(PacketSink& link) { link_ = &link; }

  void start() { fill_window(); }

  // Acks arrive here after the feedback delay; `echo` carries send time.
  void receive(Packet&& ack) override {
    --inflight_;
    const Duration rtt = sim_.now() - ack.echo;
    rtt_stats_.add(to_millis(rtt));
    if (rtt < config_.rtt_floor) {
      // Link is not starved for offered load yet: push harder.
      window_ += 2;
    } else if (rtt > config_.rtt_ceiling) {
      // Risk of carrier throttling: back off multiplicatively.
      window_ = std::max<std::int64_t>(2, static_cast<std::int64_t>(
                                              static_cast<double>(window_) * 0.95));
    } else {
      in_band_acks_ += 1;
    }
    total_acks_ += 1;
    fill_window();
  }

  [[nodiscard]] std::int64_t window() const { return window_; }
  [[nodiscard]] double mean_rtt_ms() const { return rtt_stats_.mean(); }
  [[nodiscard]] double fraction_in_band() const {
    return total_acks_ > 0
               ? static_cast<double>(in_band_acks_) / static_cast<double>(total_acks_)
               : 0.0;
  }

 private:
  void fill_window() {
    assert(link_ != nullptr);
    while (inflight_ < window_) {
      Packet p;
      p.size = kMtuBytes;
      p.sent_at = sim_.now();
      p.echo = sim_.now();
      link_->receive(std::move(p));
      ++inflight_;
    }
  }

  Simulator& sim_;
  SaturatorConfig config_;
  PacketSink* link_ = nullptr;
  std::int64_t window_;
  std::int64_t inflight_ = 0;
  std::int64_t in_band_acks_ = 0;
  std::int64_t total_acks_ = 0;
  RunningStats rtt_stats_;
};

// Far end: bounces every delivered packet back to the Saturator after the
// feedback-path delay (the second phone).
class FeedbackBouncer : public PacketSink {
 public:
  FeedbackBouncer(Simulator& sim, Duration delay, PacketSink& back)
      : sim_(sim), delay_(delay), back_(back) {}

  void receive(Packet&& p) override {
    // Keep only what the ack needs; acks are small and ride a clean path.
    Packet ack;
    ack.size = 40;
    ack.echo = p.echo;
    sim_.after(delay_, [this, ack = std::move(ack)]() mutable {
      back_.receive(std::move(ack));
    });
  }

 private:
  Simulator& sim_;
  Duration delay_;
  PacketSink& back_;
};

}  // namespace

SaturatorResult run_saturator(const CellProcessParams& params,
                              const SaturatorConfig& config,
                              std::uint64_t seed) {
  Simulator sim;
  std::vector<TimePoint> deliveries;
  SaturatorEndpoint saturator(sim, config);
  FeedbackBouncer bouncer(sim, config.feedback_delay, saturator);
  GroundTruthLink link(
      sim, params, seed, bouncer,
      [&deliveries](TimePoint t) { deliveries.push_back(t); });
  saturator.attach(link);
  saturator.start();
  sim.run_until(TimePoint{} + config.run_time);

  SaturatorResult result{Trace{}, 0.0, saturator.mean_rtt_ms(),
                         saturator.window(), saturator.fraction_in_band()};
  if (!deliveries.empty()) {
    result.trace = Trace{std::move(deliveries), config.run_time};
    result.observed_rate_kbps = result.trace.average_rate_kbps();
  }
  return result;
}

}  // namespace sprout

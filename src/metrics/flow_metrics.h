// Evaluation metrics exactly as defined in §5.1 of the paper.
//
// * Throughput: bits received / duration, skipping the first minute.
// * Instantaneous delay at time t: time since the most recently-SENT packet
//   that has ARRIVED by t was sent (footnote 7: the signal is a sawtooth
//   rising at 1 s/s between arrivals).  Its 95th percentile over the
//   measurement window is the "95% end-to-end delay".
// * Self-inflicted delay: the protocol's 95% end-to-end delay minus the
//   95% end-to-end delay of an omniscient protocol whose packets ride every
//   delivery opportunity with zero queueing.
#pragma once

#include <vector>

#include "sim/packet.h"
#include "trace/trace.h"
#include "util/stats.h"
#include "util/units.h"

namespace sprout {

struct DeliveryRecord {
  TimePoint sent_at;
  TimePoint received_at;
  ByteCount size;
};

class FlowMetrics {
 public:
  void record(const Packet& p, TimePoint received_at);
  void record(DeliveryRecord r) { records_.push_back(r); }

  [[nodiscard]] const std::vector<DeliveryRecord>& records() const {
    return records_;
  }
  [[nodiscard]] ByteCount total_bytes() const;

  // Average rate of bytes received inside [from, to), in kbit/s.
  [[nodiscard]] double throughput_kbps(TimePoint from, TimePoint to) const;

  // Percentile (e.g. 95) of the instantaneous-delay signal over [from, to),
  // in milliseconds.  Exact (closed-form over the sawtooth), not sampled.
  [[nodiscard]] double delay_percentile_ms(double percentile, TimePoint from,
                                           TimePoint to) const;

  // Time-average of the instantaneous-delay signal, in milliseconds.
  [[nodiscard]] double mean_delay_ms(TimePoint from, TimePoint to) const;

  // Plain per-packet one-way delay percentile (diagnostics; not the paper's
  // headline metric).
  [[nodiscard]] double packet_delay_percentile_ms(double percentile,
                                                  TimePoint from,
                                                  TimePoint to) const;

 private:
  [[nodiscard]] RampFunctionPercentile delay_signal(TimePoint from,
                                                    TimePoint to) const;

  std::vector<DeliveryRecord> records_;
};

// A transparent sink that records deliveries, then forwards.
class MeasuredSink : public PacketSink {
 public:
  MeasuredSink(class Simulator& sim, PacketSink& next);
  // Terminal variant: record and swallow.
  explicit MeasuredSink(class Simulator& sim);

  void receive(Packet&& p) override;

  [[nodiscard]] FlowMetrics& metrics() { return metrics_; }
  [[nodiscard]] const FlowMetrics& metrics() const { return metrics_; }

 private:
  class Simulator& sim_;
  PacketSink* next_;
  FlowMetrics metrics_;
};

// 95% end-to-end delay of the omniscient protocol on this trace: arrivals at
// every delivery opportunity, each having waited only the propagation delay.
[[nodiscard]] double omniscient_delay_percentile_ms(const Trace& trace,
                                                    double percentile,
                                                    TimePoint from, TimePoint to,
                                                    Duration propagation_delay);

// Link capacity over a window: bytes the trace could deliver, as kbit/s.
[[nodiscard]] double link_capacity_kbps(const Trace& trace, TimePoint from,
                                        TimePoint to);

}  // namespace sprout

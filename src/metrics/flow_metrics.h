// Evaluation metrics exactly as defined in §5.1 of the paper.
//
// * Throughput: bits received / duration, skipping the first minute.
// * Instantaneous delay at time t: time since the most recently-SENT packet
//   that has ARRIVED by t was sent (footnote 7: the signal is a sawtooth
//   rising at 1 s/s between arrivals).  Its 95th percentile over the
//   measurement window is the "95% end-to-end delay".
// * Self-inflicted delay: the protocol's 95% end-to-end delay minus the
//   95% end-to-end delay of an omniscient protocol whose packets ride every
//   delivery opportunity with zero queueing.
#pragma once

#include <vector>

#include "metrics/histogram.h"
#include "metrics/recorder.h"
#include "sim/packet.h"
#include "trace/trace.h"
#include "util/stats.h"
#include "util/units.h"

namespace sprout {

struct DeliveryRecord {
  TimePoint sent_at;
  TimePoint received_at;
  ByteCount size;
};

class FlowMetrics {
 public:
  void record(const Packet& p, TimePoint received_at);
  void record(DeliveryRecord r);

  // Streaming mode — population-scale aggregation without retention.
  //
  // Once enabled, record() folds each delivery into O(1) state instead of
  // appending to records_: total bytes, plus — inside [from, to) — windowed
  // bytes and a fixed-bin histogram of per-packet one-way delay.  The
  // retained-record analyses (delay_percentile_ms and friends) are
  // unavailable in this mode (they would see an empty record list); use
  // histogram()/window_* instead.  A tower's thousand flows each cost a
  // histogram, not a packet log.
  void enable_streaming(Duration hist_bin, Duration hist_max, TimePoint from,
                        TimePoint to);
  [[nodiscard]] bool streaming() const { return streaming_; }

  // Streaming delay histogram ALONGSIDE the retained record list: unlike
  // enable_streaming, record() keeps appending to records_ (the §5.1
  // sawtooth analyses stay available) and ALSO folds each in-window
  // delivery into the histogram.  This is how the non-streaming topologies
  // (single-flow, shared-queue, tunnel) report p50/p95/p99/p999 through
  // the same DelayHistogram the tower streams — ROADMAP 5(b).
  void enable_histogram(Duration hist_bin, Duration hist_max, TimePoint from,
                        TimePoint to);

  // Flight-recorder tap (metrics/recorder.h); null detaches.  Every
  // delivery record is forwarded to the recorder, which bins it.  The
  // recorder must outlive this object.
  void set_timeline_recorder(FlowTimelineRecorder* recorder) {
    timeline_ = recorder;
  }
  // The delay histogram (unconfigured unless enable_streaming or
  // enable_histogram ran).
  [[nodiscard]] const DelayHistogram& histogram() const { return hist_; }
  // Bytes received inside the streaming window [from, to).
  [[nodiscard]] ByteCount window_bytes() const { return window_bytes_; }
  [[nodiscard]] double window_throughput_kbps() const;

  [[nodiscard]] const std::vector<DeliveryRecord>& records() const {
    return records_;
  }
  [[nodiscard]] ByteCount total_bytes() const;

  // Average rate of bytes received inside [from, to), in kbit/s.
  [[nodiscard]] double throughput_kbps(TimePoint from, TimePoint to) const;

  // Percentile (e.g. 95) of the instantaneous-delay signal over [from, to),
  // in milliseconds.  Exact (closed-form over the sawtooth), not sampled.
  [[nodiscard]] double delay_percentile_ms(double percentile, TimePoint from,
                                           TimePoint to) const;

  // Time-average of the instantaneous-delay signal, in milliseconds.
  [[nodiscard]] double mean_delay_ms(TimePoint from, TimePoint to) const;

  // Plain per-packet one-way delay percentile (diagnostics; not the paper's
  // headline metric).
  [[nodiscard]] double packet_delay_percentile_ms(double percentile,
                                                  TimePoint from,
                                                  TimePoint to) const;

 private:
  [[nodiscard]] RampFunctionPercentile delay_signal(TimePoint from,
                                                    TimePoint to) const;

  std::vector<DeliveryRecord> records_;
  ByteCount total_bytes_ = 0;
  bool streaming_ = false;
  TimePoint window_from_{};
  TimePoint window_to_{};
  ByteCount window_bytes_ = 0;
  DelayHistogram hist_;  // unconfigured unless streaming/enable_histogram
  FlowTimelineRecorder* timeline_ = nullptr;
};

// A transparent sink that records deliveries, then forwards.
class MeasuredSink : public PacketSink {
 public:
  MeasuredSink(class Simulator& sim, PacketSink& next);
  // Terminal variant: record and swallow.
  explicit MeasuredSink(class Simulator& sim);

  void receive(Packet&& p) override;

  [[nodiscard]] FlowMetrics& metrics() { return metrics_; }
  [[nodiscard]] const FlowMetrics& metrics() const { return metrics_; }

 private:
  class Simulator& sim_;
  PacketSink* next_;
  FlowMetrics metrics_;
};

// 95% end-to-end delay of the omniscient protocol on this trace: arrivals at
// every delivery opportunity, each having waited only the propagation delay.
[[nodiscard]] double omniscient_delay_percentile_ms(const Trace& trace,
                                                    double percentile,
                                                    TimePoint from, TimePoint to,
                                                    Duration propagation_delay);

// Link capacity over a window: bytes the trace could deliver, as kbit/s.
[[nodiscard]] double link_capacity_kbps(const Trace& trace, TimePoint from,
                                        TimePoint to);

}  // namespace sprout

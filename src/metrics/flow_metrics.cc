#include "metrics/flow_metrics.h"

#include <algorithm>
#include <cassert>

#include "sim/simulator.h"

namespace sprout {

void FlowMetrics::record(const Packet& p, TimePoint received_at) {
  record(DeliveryRecord{p.sent_at, received_at, p.size});
}

void FlowMetrics::record(DeliveryRecord r) {
  total_bytes_ += r.size;
  if (timeline_ != nullptr) {
    timeline_->record_delivery(r.sent_at, r.received_at, r.size);
  }
  if (!streaming_) {
    records_.push_back(r);
    if (hist_.configured() && r.received_at >= window_from_ &&
        r.received_at < window_to_) {
      hist_.add(r.received_at - r.sent_at);
    }
    return;
  }
  if (r.received_at >= window_from_ && r.received_at < window_to_) {
    window_bytes_ += r.size;
    hist_.add(r.received_at - r.sent_at);
  }
}

void FlowMetrics::enable_streaming(Duration hist_bin, Duration hist_max,
                                   TimePoint from, TimePoint to) {
  assert(records_.empty() && "enable_streaming before any delivery");
  streaming_ = true;
  window_from_ = from;
  window_to_ = to;
  hist_ = DelayHistogram(hist_bin, hist_max);
}

void FlowMetrics::enable_histogram(Duration hist_bin, Duration hist_max,
                                   TimePoint from, TimePoint to) {
  assert(records_.empty() && "enable_histogram before any delivery");
  assert(!streaming_ && "enable_streaming already covers the histogram");
  window_from_ = from;
  window_to_ = to;
  hist_ = DelayHistogram(hist_bin, hist_max);
}

double FlowMetrics::window_throughput_kbps() const {
  if (window_to_ <= window_from_) return 0.0;
  return kbps(window_bytes_, window_to_ - window_from_);
}

ByteCount FlowMetrics::total_bytes() const { return total_bytes_; }

double FlowMetrics::throughput_kbps(TimePoint from, TimePoint to) const {
  assert(to > from);
  ByteCount bytes = 0;
  for (const DeliveryRecord& r : records_) {
    if (r.received_at >= from && r.received_at < to) bytes += r.size;
  }
  return kbps(bytes, to - from);
}

RampFunctionPercentile FlowMetrics::delay_signal(TimePoint from,
                                                 TimePoint to) const {
  // Records arrive in receive order (single in-order recorder); the paper's
  // signal needs the max-so-far of send times among arrived packets.
  RampFunctionPercentile signal;
  TimePoint cursor = from;
  TimePoint latest_sent{};  // most recent send time among arrived packets
  bool have_packet = false;
  for (const DeliveryRecord& r : records_) {
    if (r.received_at >= to) break;
    if (r.received_at < from) {
      // Arrived before the window: establishes the starting level.
      if (!have_packet || r.sent_at > latest_sent) latest_sent = r.sent_at;
      have_packet = true;
      continue;
    }
    if (have_packet) {
      // Ramp from `cursor` to this arrival at the current level.
      const double start = to_seconds(cursor - latest_sent);
      const double len = to_seconds(r.received_at - cursor);
      signal.add_ramp(start, len);
    }
    // A packet sent earlier than one already arrived cannot lower the
    // signal (footnote 7: "most recently-sent packet to have arrived").
    if (!have_packet || r.sent_at > latest_sent) latest_sent = r.sent_at;
    have_packet = true;
    cursor = r.received_at;
  }
  if (have_packet && cursor < to) {
    signal.add_ramp(to_seconds(cursor - latest_sent), to_seconds(to - cursor));
  } else if (!have_packet) {
    // Nothing ever arrived: the delay is unbounded below by the window size.
    signal.add_ramp(to_seconds(to - from), to_seconds(to - from));
  }
  return signal;
}

double FlowMetrics::delay_percentile_ms(double percentile, TimePoint from,
                                        TimePoint to) const {
  return delay_signal(from, to).percentile(percentile) * 1000.0;
}

double FlowMetrics::mean_delay_ms(TimePoint from, TimePoint to) const {
  return delay_signal(from, to).mean() * 1000.0;
}

double FlowMetrics::packet_delay_percentile_ms(double percentile,
                                               TimePoint from,
                                               TimePoint to) const {
  PercentileEstimator est;
  for (const DeliveryRecord& r : records_) {
    if (r.received_at >= from && r.received_at < to) {
      est.add(to_millis(r.received_at - r.sent_at));
    }
  }
  return est.empty() ? 0.0 : est.percentile(percentile);
}

MeasuredSink::MeasuredSink(Simulator& sim, PacketSink& next)
    : sim_(sim), next_(&next) {}

MeasuredSink::MeasuredSink(Simulator& sim) : sim_(sim), next_(nullptr) {}

void MeasuredSink::receive(Packet&& p) {
  metrics_.record(p, sim_.now());
  if (next_ != nullptr) next_->receive(std::move(p));
}

double omniscient_delay_percentile_ms(const Trace& trace, double percentile,
                                      TimePoint from, TimePoint to,
                                      Duration propagation_delay) {
  assert(to > from);
  // The omniscient sender's packet rides every opportunity and waits only
  // the propagation delay, so the signal ramps up from prop_delay at each
  // opportunity.  Between opportunities (outages) it rises at 1 s/s —
  // "if the link does not deliver any packets for 5 seconds, there must be
  // at least 5 seconds of end-to-end delay" (§5.1).
  RampFunctionPercentile signal;
  const double base = to_seconds(propagation_delay);
  // Walk opportunities covering [from, to), using wraparound indexing.
  // Find the first index at or after `from`.
  std::size_t lo = 0;
  std::size_t hi = 1;
  while (trace.opportunity(hi) < from) {
    lo = hi;
    hi *= 2;
  }
  while (lo + 1 < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (trace.opportunity(mid) < from) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  std::size_t idx = trace.opportunity(lo) >= from ? lo : hi;
  TimePoint cursor = from;
  while (cursor < to) {
    const TimePoint next = trace.opportunity(idx);
    const TimePoint segment_end = std::min(next, to);
    if (segment_end > cursor) {
      // Level at `cursor`: base + time since the previous arrival.
      const TimePoint prev =
          idx > 0 ? trace.opportunity(idx - 1) : cursor - propagation_delay;
      const double start = base + std::max(0.0, to_seconds(cursor - prev));
      signal.add_ramp(start, to_seconds(segment_end - cursor));
    }
    cursor = segment_end;
    ++idx;
  }
  return signal.percentile(percentile) * 1000.0;
}

double link_capacity_kbps(const Trace& trace, TimePoint from, TimePoint to) {
  return kbps(trace.deliverable_bytes(from, to), to - from);
}

}  // namespace sprout

#include "metrics/histogram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sprout {

DelayHistogram::DelayHistogram(Duration bin, Duration max) {
  if (bin <= Duration::zero()) {
    throw std::invalid_argument("histogram bin width must be > 0");
  }
  if (max < bin) {
    throw std::invalid_argument("histogram max must be >= one bin width");
  }
  bin_ms_ = to_millis(bin);
  const auto num_bins = static_cast<std::size_t>(
      std::ceil(to_millis(max) / bin_ms_));
  max_ms_ = bin_ms_ * static_cast<double>(num_bins);
  counts_.assign(num_bins + 1, 0);  // + overflow
}

void DelayHistogram::add(Duration delay) {
  if (!configured()) {
    throw std::logic_error("add() on an unconfigured DelayHistogram");
  }
  const double ms = std::max(0.0, to_millis(delay));
  std::size_t bin = static_cast<std::size_t>(ms / bin_ms_);
  if (bin >= counts_.size() - 1) bin = counts_.size() - 1;  // overflow
  ++counts_[bin];
  ++samples_;
  sum_ms_ += ms;
}

void DelayHistogram::merge(const DelayHistogram& other) {
  if (other.empty() && !other.configured()) return;
  if (!configured()) {
    *this = other;
    return;
  }
  if (other.bin_ms_ != bin_ms_ || other.counts_.size() != counts_.size()) {
    throw std::invalid_argument(
        "DelayHistogram::merge of mismatched bin geometries");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  samples_ += other.samples_;
  sum_ms_ += other.sum_ms_;
}

double DelayHistogram::percentile_ms(double pct) const {
  // An out-of-range pct used to be answered with a plausible number (0 ms
  // or the overflow sentinel) — garbage in a golden file instead of a
  // failure at the call site.
  if (!(pct > 0.0) || pct > 100.0) {
    throw std::invalid_argument("percentile_ms: pct must be in (0, 100], got " +
                                std::to_string(pct));
  }
  // Empty histogram: 0.0 by convention, distinguishable from a real 0 ms
  // percentile only via samples()/DelayStats::samples — comparisons that
  // must not pass vacuously check samples > 0 first.
  if (samples_ == 0) return 0.0;
  // Rank of the percentile sample, 1-based: the smallest rank such that
  // rank/samples >= pct/100 (the nearest-rank quantile definition).
  const double target = pct / 100.0 * static_cast<double>(samples_);
  const auto rank =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(std::ceil(target)));
  std::int64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum >= rank) {
      // Upper edge of bin i; the overflow bin reports max + bin as an
      // out-of-range sentinel.
      return bin_ms_ * static_cast<double>(i + 1);
    }
  }
  return max_ms_ + bin_ms_;
}

double DelayHistogram::mean_ms() const {
  return samples_ == 0 ? 0.0 : sum_ms_ / static_cast<double>(samples_);
}

DelayStats DelayHistogram::stats() const {
  DelayStats s;
  s.p50_ms = percentile_ms(50.0);
  s.p95_ms = percentile_ms(95.0);
  s.p99_ms = percentile_ms(99.0);
  s.p999_ms = percentile_ms(99.9);
  s.mean_ms = mean_ms();
  s.samples = samples_;
  return s;
}

DelayHistogram DelayHistogram::from_parts(double bin_ms, double max_ms,
                                          double sum_ms,
                                          std::vector<std::int64_t> counts) {
  if (bin_ms <= 0.0 || counts.size() < 2) {
    throw std::invalid_argument("malformed DelayHistogram parts");
  }
  DelayHistogram h;
  h.bin_ms_ = bin_ms;
  h.max_ms_ = max_ms;
  h.sum_ms_ = sum_ms;
  h.counts_ = std::move(counts);
  for (const std::int64_t c : h.counts_) {
    if (c < 0) throw std::invalid_argument("negative DelayHistogram count");
    h.samples_ += c;
  }
  return h;
}

}  // namespace sprout

// Time-binned series capture for the paper's time-series plots (Figure 1).
#pragma once

#include <vector>

#include "metrics/flow_metrics.h"
#include "trace/trace.h"
#include "util/units.h"

namespace sprout {

struct SeriesPoint {
  double time_s = 0.0;
  double throughput_kbps = 0.0;
  double max_delay_ms = 0.0;   // worst per-packet delay inside the bin
  double mean_delay_ms = 0.0;
};

// Bins a flow's delivery records into fixed windows.
[[nodiscard]] std::vector<SeriesPoint> throughput_delay_series(
    const FlowMetrics& metrics, TimePoint from, TimePoint to, Duration bin);

// Capacity series of a trace: deliverable kbit/s per bin (Fig. 1 "Capacity").
[[nodiscard]] std::vector<SeriesPoint> capacity_series(const Trace& trace,
                                                       TimePoint from,
                                                       TimePoint to,
                                                       Duration bin);

}  // namespace sprout

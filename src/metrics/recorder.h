// The simulation flight recorder: streaming fixed-bin per-flow timelines.
//
// The paper's whole evaluation is time-domain (Figures 1-8 plot the
// forecast's cautious estimate against realized link capacity, queue
// occupancy and per-packet delay over time), but results so far only
// carried window aggregates.  A FlowTimelineRecorder taps three layers of
// a running scenario —
//
//   * the forecaster: the cautious-estimate delivery rate each tick
//     (SproutEndpoint feeds it after the receiver's tick),
//   * the link: queue depth in packets and bytes sampled at every enqueue
//     and every delivery opportunity, plus drops (random + AQM),
//   * the receiver: per-packet one-way delay and delivered bytes
//     (FlowMetrics feeds it on every delivery record),
//
// — and folds each event into O(bins) state, never a packet log.  The
// result, a FlowTimeline, is plain data: one point per fixed bin with the
// forecast / capacity / throughput rates, the bin's peak queue depth, its
// drop count and its mean/max delay.  Realized capacity is not an event
// stream — finalize() computes it per bin from the flow's delivery trace,
// exactly like the capacity_series the engine already exports.
//
// Determinism contract (PR 9's invariant, extended): recording never
// perturbs results.  Taps are raw pointers checked for null on the hot
// paths; a scenario with ScenarioSpec::record_timeline == false wires no
// recorder anywhere, and every tap site costs one branch.  All recording
// happens inside the single-threaded simulation loop, so timelines are as
// deterministic as the simulation itself: serial == thread-pool ==
// process-sharded-and-merged holds bitwise for timeline bytes too
// (enforced by the timeline_roundtrip ctest).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.h"
#include "util/units.h"

namespace sprout {

// One fixed bin of a flow's timeline.  Rates are averages over the bin;
// queue depths are the bin's peak; delays summarize the packets RECEIVED
// inside the bin.
struct TimelinePoint {
  double time_s = 0.0;            // bin start
  double forecast_kbps = 0.0;     // mean cautious-estimate delivery rate
  double capacity_kbps = 0.0;     // realized deliverable capacity
  double throughput_kbps = 0.0;   // bytes actually delivered to the flow
  std::int64_t queue_max_packets = 0;
  std::int64_t queue_max_bytes = 0;
  std::int64_t drops = 0;         // random + AQM drops at the ingress
  double mean_delay_ms = 0.0;
  double max_delay_ms = 0.0;
};

// A finalized timeline: plain data, serialized into shard/journal records
// as an optional field and preserved verbatim by merge.
struct FlowTimeline {
  double bin_s = 0.0;   // 0 == absent (the field is omitted from JSON)
  double from_s = 0.0;  // timeline origin (bin 0 starts here)
  std::vector<TimelinePoint> points;

  [[nodiscard]] bool configured() const { return bin_s > 0.0; }
};

// The streaming builder.  One recorder serves one flow; in topologies
// where several flows share one queue (shared-queue, tunnel) a separate
// link-level recorder collects the queue/drop columns and finalize()
// grafts them onto each flow's timeline.
class FlowTimelineRecorder {
 public:
  // Inactive recorder: every tap is a no-op, finalize() returns an
  // unconfigured timeline.
  FlowTimelineRecorder() = default;
  // Records events inside [from, to) into bins of `bin` width.  Throws
  // std::invalid_argument for a non-positive bin or an empty window.
  FlowTimelineRecorder(Duration bin, TimePoint from, TimePoint to);

  [[nodiscard]] bool active() const { return !bins_.empty(); }

  // Forecaster tap: the cautious-estimate delivery rate computed at `now`
  // (horizon-average, kbit/s).  Averaged per bin across ticks.
  void record_forecast(TimePoint now, double forecast_kbps);

  // Receiver tap: one delivered packet.
  void record_delivery(TimePoint sent_at, TimePoint received_at,
                       ByteCount bytes);

  // Link taps: queue depth after an enqueue or a delivery opportunity, and
  // a dropped arrival (random loss or AQM rejection).
  void record_queue_sample(TimePoint now, std::size_t packets,
                           ByteCount bytes);
  void record_drop(TimePoint now);

  // Builds the timeline.  `capacity_trace` (may be null) fills the per-bin
  // realized-capacity column from the flow's delivery opportunities;
  // `link` (may be null, often a DIFFERENT recorder when flows share a
  // queue) supplies the queue/drop columns.  Pass `this` as `link` when
  // the flow owns its queue.
  [[nodiscard]] FlowTimeline finalize(const Trace* capacity_trace,
                                      const FlowTimelineRecorder* link) const;

 private:
  struct BinState {
    double forecast_kbps_sum = 0.0;
    std::int64_t forecast_ticks = 0;
    ByteCount delivered_bytes = 0;
    double delay_ms_sum = 0.0;
    double delay_ms_max = 0.0;
    std::int64_t delivered_packets = 0;
    std::int64_t queue_max_packets = 0;
    std::int64_t queue_max_bytes = 0;
    std::int64_t drops = 0;
  };

  // Bin index for an in-window instant; bins_.size() when outside.
  [[nodiscard]] std::size_t bin_index(TimePoint t) const;

  Duration bin_{};
  TimePoint from_{};
  TimePoint to_{};
  std::vector<BinState> bins_;
};

}  // namespace sprout

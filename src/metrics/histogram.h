// Fixed-bin streaming delay histograms — population metrics without sample
// retention.
//
// A tower scenario carries hundreds to thousands of users; retaining every
// DeliveryRecord to sort for quantiles at the end would hold millions of
// samples live for nothing.  A DelayHistogram instead folds each one-way
// packet delay into a fixed-width bin counter as it arrives, so a user's
// whole delay CDF costs O(bins) regardless of run length, per-user
// histograms merge into a population histogram by integer addition (exact,
// order-independent), and any percentile is recoverable to within one bin
// width of the exact sorted-sample quantile (the reported value is the
// covering bin's upper edge, so it never under-reports a tail).
//
// Everything is integer counts plus one deterministic double accumulator
// (the exact mean), so serial, thread-pool and process-sharded runs agree
// byte for byte.
#pragma once

#include <cstdint>
#include <vector>

#include "util/units.h"

namespace sprout {

// Point summary of a delay distribution, in milliseconds.  p50/p95/p99/p999
// come from a histogram (bin-upper-edge quantiles); the mean is exact.
// `samples` is load-bearing, not informational: an empty distribution
// reports every quantile as 0.0, indistinguishable from a real 0 ms
// percentile, so any comparison against expected delays (golden tests
// especially) must assert samples > 0 first or it can pass vacuously on
// an empty CDF.
struct DelayStats {
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double mean_ms = 0.0;
  std::int64_t samples = 0;
};

class DelayHistogram {
 public:
  // Unconfigured (bin 0): add/merge are invalid; configured() is false.
  // The default state exists so FlowResult can carry "no histogram" without
  // an optional wrapper in every result.
  DelayHistogram() = default;

  // Fixed bins of `bin` width covering [0, max); delays >= max land in one
  // overflow bin whose reported quantile edge is max + bin (a sentinel that
  // says "beyond the configured range", never a fabricated in-range value).
  // Throws std::invalid_argument for a non-positive bin or max < bin.
  DelayHistogram(Duration bin, Duration max);

  [[nodiscard]] bool configured() const { return bin_ms_ > 0.0; }
  [[nodiscard]] bool empty() const { return samples_ == 0; }

  void add(Duration delay);

  // Integer-adds another histogram's counts; the two must share bin/max
  // geometry (throws std::invalid_argument otherwise).  Merging is exact
  // and commutative, so a population rollup does not depend on user order.
  void merge(const DelayHistogram& other);

  // Upper edge of the bin where the pct-th percentile sample falls: within
  // one bin width above the exact sorted-sample quantile, never below it.
  // Throws std::invalid_argument unless 0 < pct <= 100.  0 when empty —
  // check empty()/samples() before trusting a 0 (see DelayStats::samples).
  [[nodiscard]] double percentile_ms(double pct) const;

  // Exact streaming mean (not binned).  0 when empty.
  [[nodiscard]] double mean_ms() const;

  [[nodiscard]] DelayStats stats() const;

  [[nodiscard]] std::int64_t samples() const { return samples_; }
  [[nodiscard]] double bin_width_ms() const { return bin_ms_; }
  [[nodiscard]] double max_ms() const { return max_ms_; }
  [[nodiscard]] double sum_ms() const { return sum_ms_; }
  // Bin counts including the trailing overflow bin (counts().back()).
  [[nodiscard]] const std::vector<std::int64_t>& counts() const {
    return counts_;
  }

  // Rebuilds a histogram from serialized state (shard JSON readers).
  // Throws std::invalid_argument on inconsistent geometry or counts.
  [[nodiscard]] static DelayHistogram from_parts(
      double bin_ms, double max_ms, double sum_ms,
      std::vector<std::int64_t> counts);

 private:
  double bin_ms_ = 0.0;
  double max_ms_ = 0.0;
  double sum_ms_ = 0.0;
  std::int64_t samples_ = 0;
  std::vector<std::int64_t> counts_;  // [num_bins] + overflow
};

}  // namespace sprout

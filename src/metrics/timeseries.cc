#include "metrics/timeseries.h"

#include <algorithm>
#include <cassert>

namespace sprout {

std::vector<SeriesPoint> throughput_delay_series(const FlowMetrics& metrics,
                                                 TimePoint from, TimePoint to,
                                                 Duration bin) {
  assert(bin > Duration::zero() && to > from);
  const std::size_t nbins = static_cast<std::size_t>((to - from + bin - usec(1)) / bin);
  std::vector<ByteCount> bytes(nbins, 0);
  std::vector<double> max_delay(nbins, 0.0);
  std::vector<double> sum_delay(nbins, 0.0);
  std::vector<std::int64_t> count(nbins, 0);
  for (const DeliveryRecord& r : metrics.records()) {
    if (r.received_at < from || r.received_at >= to) continue;
    const auto idx = static_cast<std::size_t>((r.received_at - from) / bin);
    bytes[idx] += r.size;
    const double d = to_millis(r.received_at - r.sent_at);
    max_delay[idx] = std::max(max_delay[idx], d);
    sum_delay[idx] += d;
    ++count[idx];
  }
  std::vector<SeriesPoint> series(nbins);
  for (std::size_t i = 0; i < nbins; ++i) {
    series[i].time_s =
        to_seconds((from - TimePoint{}) + bin * static_cast<std::int64_t>(i));
    series[i].throughput_kbps = kbps(bytes[i], bin);
    series[i].max_delay_ms = max_delay[i];
    series[i].mean_delay_ms =
        count[i] > 0 ? sum_delay[i] / static_cast<double>(count[i]) : 0.0;
  }
  return series;
}

std::vector<SeriesPoint> capacity_series(const Trace& trace, TimePoint from,
                                         TimePoint to, Duration bin) {
  assert(bin > Duration::zero() && to > from);
  std::vector<SeriesPoint> series;
  for (TimePoint t = from; t < to; t += bin) {
    const TimePoint end = std::min(t + bin, to);
    SeriesPoint p;
    p.time_s = to_seconds(t - TimePoint{});
    p.throughput_kbps = kbps(trace.deliverable_bytes(t, end), end - t);
    series.push_back(p);
  }
  return series;
}

}  // namespace sprout

#include "metrics/recorder.h"

#include <algorithm>
#include <stdexcept>

namespace sprout {

FlowTimelineRecorder::FlowTimelineRecorder(Duration bin, TimePoint from,
                                           TimePoint to)
    : bin_(bin), from_(from), to_(to) {
  if (bin <= Duration::zero()) {
    throw std::invalid_argument("timeline bin must be > 0");
  }
  if (to <= from) {
    throw std::invalid_argument("timeline window must be non-empty");
  }
  // Ceil: a partial trailing bin still collects its events.
  const auto span = (to - from).count();
  const auto width = bin.count();
  bins_.resize(static_cast<std::size_t>((span + width - 1) / width));
}

std::size_t FlowTimelineRecorder::bin_index(TimePoint t) const {
  if (t < from_ || t >= to_) return bins_.size();
  const auto idx = static_cast<std::size_t>((t - from_).count() / bin_.count());
  return idx < bins_.size() ? idx : bins_.size();
}

void FlowTimelineRecorder::record_forecast(TimePoint now,
                                           double forecast_kbps) {
  const std::size_t b = bin_index(now);
  if (b >= bins_.size()) return;
  bins_[b].forecast_kbps_sum += forecast_kbps;
  ++bins_[b].forecast_ticks;
}

void FlowTimelineRecorder::record_delivery(TimePoint sent_at,
                                           TimePoint received_at,
                                           ByteCount bytes) {
  const std::size_t b = bin_index(received_at);
  if (b >= bins_.size()) return;
  BinState& s = bins_[b];
  s.delivered_bytes += bytes;
  ++s.delivered_packets;
  const double delay_ms = to_millis(received_at - sent_at);
  s.delay_ms_sum += delay_ms;
  s.delay_ms_max = std::max(s.delay_ms_max, delay_ms);
}

void FlowTimelineRecorder::record_queue_sample(TimePoint now,
                                               std::size_t packets,
                                               ByteCount bytes) {
  const std::size_t b = bin_index(now);
  if (b >= bins_.size()) return;
  BinState& s = bins_[b];
  s.queue_max_packets =
      std::max(s.queue_max_packets, static_cast<std::int64_t>(packets));
  s.queue_max_bytes =
      std::max(s.queue_max_bytes, static_cast<std::int64_t>(bytes));
}

void FlowTimelineRecorder::record_drop(TimePoint now) {
  const std::size_t b = bin_index(now);
  if (b >= bins_.size()) return;
  ++bins_[b].drops;
}

FlowTimeline FlowTimelineRecorder::finalize(
    const Trace* capacity_trace, const FlowTimelineRecorder* link) const {
  FlowTimeline t;
  if (!active()) return t;
  t.bin_s = to_seconds(bin_);
  t.from_s = to_seconds(from_.time_since_epoch());
  t.points.reserve(bins_.size());
  for (std::size_t b = 0; b < bins_.size(); ++b) {
    const BinState& s = bins_[b];
    TimelinePoint p;
    const TimePoint bin_from = from_ + bin_ * static_cast<std::int64_t>(b);
    // The last bin may be partial; rates are averaged over its true width
    // so a short tail doesn't read as a rate collapse.
    const TimePoint bin_to = std::min(bin_from + bin_, to_);
    const Duration width = bin_to - bin_from;
    p.time_s = to_seconds(bin_from.time_since_epoch());
    if (s.forecast_ticks > 0) {
      p.forecast_kbps =
          s.forecast_kbps_sum / static_cast<double>(s.forecast_ticks);
    }
    p.throughput_kbps = kbps(s.delivered_bytes, width);
    if (capacity_trace != nullptr) {
      p.capacity_kbps =
          kbps(capacity_trace->deliverable_bytes(bin_from, bin_to), width);
    }
    if (s.delivered_packets > 0) {
      p.mean_delay_ms = s.delay_ms_sum / static_cast<double>(s.delivered_packets);
      p.max_delay_ms = s.delay_ms_max;
    }
    // Queue/drop columns come from the recorder watching the flow's QUEUE,
    // which is a different object when several flows share one link.
    if (link != nullptr && b < link->bins_.size()) {
      const BinState& q = link->bins_[b];
      p.queue_max_packets = q.queue_max_packets;
      p.queue_max_bytes = q.queue_max_bytes;
      p.drops = q.drops;
    }
    t.points.push_back(p);
  }
  return t;
}

}  // namespace sprout

// SproutTunnel (§4.3): carries arbitrary client flows over a Sprout session
// across the cellular link.
//
// Each endpoint keeps one queue per client flow and fills the Sprout window
// in round-robin fashion among flows with pending data.  The total bytes
// buffered across all flows are limited to the Sprout sender's estimate of
// what the link can deliver over the remaining life of the current forecast;
// beyond that, packets are dropped from the HEAD of the LONGEST queue — the
// paper's dynamic traffic-shaping rule that adapts buffering to predicted
// channel conditions.
//
// Because tunnel framing adds the Sprout header, client packets may be at
// most `client_mtu()` bytes (the tunnel advertises a reduced MTU, as real
// tunnels do).
#pragma once

#include <cstdint>
#include <deque>
#include <map>

#include "core/endpoint.h"
#include "core/source.h"
#include "sim/packet.h"
#include "sim/simulator.h"

namespace sprout {

struct TunnelConfig {
  // Floor for the buffering bound while no forecast exists yet.
  ByteCount min_buffer_bytes = 20 * kMtuBytes;
};

// The round-robin, forecast-bounded multiplexer behind a tunnel endpoint.
class TunnelDataSource : public DataSource {
 public:
  explicit TunnelDataSource(TunnelConfig config) : config_(config) {}

  // Client packet entering the tunnel.  Applies the buffering bound.
  void offer(Packet&& p);

  // DataSource interface (driven by the Sprout sender).
  ByteCount pull(ByteCount max) override;
  [[nodiscard]] bool has_data() const override;
  void fill(Packet& wire_packet, ByteCount payload_bytes) override;

  // Wired post-construction: where the buffering bound comes from.
  void set_bound_provider(std::function<ByteCount()> provider) {
    bound_provider_ = std::move(provider);
  }

  [[nodiscard]] ByteCount queued_bytes() const { return total_bytes_; }
  [[nodiscard]] std::int64_t dropped_packets() const { return dropped_; }

 private:
  void enforce_bound();

  TunnelConfig config_;
  std::function<ByteCount()> bound_provider_;
  std::map<std::int64_t, std::deque<Packet>> queues_;  // by client flow id
  std::map<std::int64_t, ByteCount> queue_bytes_;
  ByteCount total_bytes_ = 0;
  std::int64_t dropped_ = 0;
  std::int64_t rr_cursor_ = 0;  // round-robin position (flow id ordering)
  std::deque<std::vector<Packet>> pending_fills_;  // groups awaiting fill()
};

// One end of the tunnel: a Sprout endpoint plus the multiplexer.
class TunnelEndpoint {
 public:
  TunnelEndpoint(Simulator& sim, const SproutParams& params,
                 SproutVariant variant, std::int64_t tunnel_flow_id,
                 TunnelConfig config = {});

  // The cellular link's egress should deliver into network_sink(); our
  // Sprout packets leave via attach_network().
  void attach_network(PacketSink& link_ingress);
  [[nodiscard]] PacketSink& network_sink() { return sprout_; }

  // Clients push packets here; classification is by Packet::flow_id.
  [[nodiscard]] PacketSink& ingress() { return ingress_sink_; }

  // Where decapsulated client packets are delivered on THIS side.
  void set_egress(std::int64_t client_flow_id, PacketSink& sink);

  void start();

  // Largest client packet the tunnel can carry in one Sprout frame.
  [[nodiscard]] ByteCount client_mtu() const;

  [[nodiscard]] const SproutEndpoint& sprout() const { return sprout_; }
  [[nodiscard]] const TunnelDataSource& mux() const { return source_; }

 private:
  class IngressSink : public PacketSink {
   public:
    explicit IngressSink(TunnelEndpoint& owner) : owner_(owner) {}
    void receive(Packet&& p) override { owner_.source_.offer(std::move(p)); }

   private:
    TunnelEndpoint& owner_;
  };

  void deliver(Packet&& client);

  Simulator& sim_;
  SproutParams params_;
  TunnelDataSource source_;
  SproutEndpoint sprout_;
  IngressSink ingress_sink_;
  std::map<std::int64_t, PacketSink*> egress_;
  std::int64_t undeliverable_ = 0;
};

}  // namespace sprout

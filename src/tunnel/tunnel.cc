#include "tunnel/tunnel.h"

#include <algorithm>
#include <cassert>

namespace sprout {

void TunnelDataSource::offer(Packet&& p) {
  assert(p.size > 0);
  queues_[p.flow_id].push_back(std::move(p));
  const Packet& stored = queues_[p.flow_id].back();
  queue_bytes_[stored.flow_id] += stored.size;
  total_bytes_ += stored.size;
  enforce_bound();
}

void TunnelDataSource::enforce_bound() {
  const ByteCount bound =
      std::max(config_.min_buffer_bytes,
               bound_provider_ ? bound_provider_() : ByteCount{0});
  while (total_bytes_ > bound) {
    // Head-drop from the longest queue (§4.3).
    std::int64_t victim = -1;
    ByteCount longest = -1;
    for (const auto& [flow, bytes] : queue_bytes_) {
      if (bytes > longest) {
        longest = bytes;
        victim = flow;
      }
    }
    if (victim < 0) break;
    std::deque<Packet>& q = queues_[victim];
    if (q.empty()) break;
    queue_bytes_[victim] -= q.front().size;
    total_bytes_ -= q.front().size;
    q.pop_front();
    ++dropped_;
  }
}

bool TunnelDataSource::has_data() const { return total_bytes_ > 0; }

ByteCount TunnelDataSource::pull(ByteCount max) {
  // Round-robin across flows with pending data, whole packets only.
  std::vector<Packet> group;
  ByteCount taken = 0;
  if (queues_.empty()) return 0;
  // Collect candidate flow ids in a stable order.
  std::vector<std::int64_t> flows;
  flows.reserve(queues_.size());
  for (const auto& [flow, q] : queues_) {
    if (!q.empty()) flows.push_back(flow);
  }
  if (flows.empty()) return 0;
  // Start after the last-served flow.
  std::size_t start = 0;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (flows[i] > rr_cursor_) {
      start = i;
      break;
    }
  }
  std::size_t attempts = 0;
  std::size_t i = start;
  while (attempts < flows.size() * 2) {
    std::deque<Packet>& q = queues_[flows[i]];
    if (!q.empty() && q.front().size <= max - taken) {
      taken += q.front().size;
      queue_bytes_[flows[i]] -= q.front().size;
      total_bytes_ -= q.front().size;
      group.push_back(std::move(q.front()));
      q.pop_front();
      rr_cursor_ = flows[i];
    } else {
      ++attempts;
    }
    i = (i + 1) % flows.size();
    if (taken >= max) break;
  }
  if (taken > 0) pending_fills_.push_back(std::move(group));
  return taken;
}

void TunnelDataSource::fill(Packet& wire_packet, ByteCount payload_bytes) {
  (void)payload_bytes;
  if (pending_fills_.empty()) return;
  wire_packet.tunneled = std::move(pending_fills_.front());
  pending_fills_.pop_front();
}

TunnelEndpoint::TunnelEndpoint(Simulator& sim, const SproutParams& params,
                               SproutVariant variant,
                               std::int64_t tunnel_flow_id, TunnelConfig config)
    : sim_(sim),
      params_(params),
      source_(config),
      sprout_(sim, params, variant, tunnel_flow_id, &source_),
      ingress_sink_(*this) {
  sprout_.set_tunnel_delivery([this](Packet&& p) { deliver(std::move(p)); });
}

void TunnelEndpoint::attach_network(PacketSink& link_ingress) {
  sprout_.attach_network(link_ingress);
}

void TunnelEndpoint::set_egress(std::int64_t client_flow_id, PacketSink& sink) {
  egress_[client_flow_id] = &sink;
}

void TunnelEndpoint::start() {
  // The buffering bound is "what the link can deliver over the remaining
  // life of the most recent forecast", read off our Sprout sender.
  source_.set_bound_provider([this]() -> ByteCount {
    return std::max<ByteCount>(0, sprout_.sender().forecast_life_bytes(sim_.now()));
  });
  sprout_.start();
}

ByteCount TunnelEndpoint::client_mtu() const {
  // One Sprout frame carries mtu - overhead payload bytes; the overhead
  // constant lives in the sender (96 bytes).
  return params_.mtu - 96;
}

void TunnelEndpoint::deliver(Packet&& client) {
  const auto it = egress_.find(client.flow_id);
  if (it == egress_.end()) {
    ++undeliverable_;
    return;
  }
  it->second->receive(std::move(client));
}

}  // namespace sprout

// CoDel ("controlled delay") active queue management.
//
// Implementation of the dequeue-side state machine from Nichols & Jacobson,
// "Controlling Queue Delay", ACM Queue 10(5), 2012 (the paper's [17]) —
// the same pseudocode the authors added to Cellsim.  Packets are dropped at
// dequeue when their sojourn time has stayed above `target` for at least an
// `interval`, with drop spacing decreasing as interval/sqrt(count).
#pragma once

#include <cstdint>
#include <optional>

#include "aqm/aqm.h"

namespace sprout {

struct CodelParams {
  Duration target = msec(5);      // acceptable standing-queue delay
  Duration interval = msec(100);  // sliding window for the minimum sojourn
  ByteCount mtu = kMtuBytes;      // exit dropping below one MTU backlog
};

class CodelPolicy : public AqmPolicy {
 public:
  explicit CodelPolicy(CodelParams params = {}) : params_(params) {}

  std::optional<Packet> dequeue(LinkQueue& queue, TimePoint now) override;

  [[nodiscard]] std::int64_t drops() const { return drops_; }
  [[nodiscard]] bool dropping() const { return dropping_; }

 private:
  struct DodequeResult {
    std::optional<Packet> packet;
    bool ok_to_drop = false;
  };
  DodequeResult dodeque(LinkQueue& queue, TimePoint now);
  [[nodiscard]] TimePoint control_law(TimePoint t) const;

  CodelParams params_;
  TimePoint first_above_time_{};  // epoch value doubles as "unset"
  TimePoint drop_next_{};
  std::int64_t count_ = 0;
  bool dropping_ = false;
  std::int64_t drops_ = 0;
};

}  // namespace sprout

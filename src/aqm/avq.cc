#include "aqm/avq.h"

#include <algorithm>

namespace sprout {

AvqPolicy::AvqPolicy(AvqParams params)
    : params_(params),
      vc_bps_(params.initial_capacity_bps),
      link_bps_(params.initial_capacity_bps) {}

bool AvqPolicy::admit(const LinkQueue& queue, const Packet& arriving,
                      TimePoint now) {
  (void)queue;
  const double b = static_cast<double>(arriving.size);

  double dt = 0.0;
  if (has_arrival_) dt = to_seconds(now - last_arrival_);
  has_arrival_ = true;
  last_arrival_ = now;

  // Drain the virtual queue at the virtual capacity since the last arrival.
  vq_bytes_ = std::max(0.0, vq_bytes_ - vc_bps_ / 8.0 * dt);

  bool admitted = true;
  if (vq_bytes_ + b > static_cast<double>(params_.virtual_buffer_bytes)) {
    ++drops_;
    admitted = false;
  } else {
    vq_bytes_ += b;
  }

  // Token-bucket capacity adaptation (drop the arrival's bytes only when it
  // was admitted — the paper updates with the admitted load lambda).
  vc_bps_ += params_.alpha * params_.gamma * link_bps_ * dt;
  if (admitted) vc_bps_ -= params_.alpha * b * 8.0;
  vc_bps_ = std::clamp(vc_bps_, 0.0, link_bps_);

  return admitted;
}

std::optional<Packet> AvqPolicy::dequeue(LinkQueue& queue, TimePoint now) {
  auto p = queue.pop();
  if (p.has_value()) measure_capacity(p->size, now);
  return p;
}

void AvqPolicy::measure_capacity(ByteCount bytes, TimePoint now) {
  if (window_start_ == TimePoint{}) window_start_ = now;
  window_bytes_ += bytes;
  const Duration span = now - window_start_;
  if (span >= params_.rate_window) {
    link_bps_ = static_cast<double>(window_bytes_) * 8.0 / to_seconds(span);
    link_bps_ = std::max(link_bps_, 1e3);  // avoid a dead virtual clock
    window_start_ = now;
    window_bytes_ = 0;
  }
}

}  // namespace sprout

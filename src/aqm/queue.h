// Byte-accounted FIFO used by the emulated link, with drop bookkeeping.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "sim/packet.h"
#include "util/units.h"

namespace sprout {

class LinkQueue {
 public:
  void push(Packet&& p) {
    bytes_ += p.size;
    queue_.push_back(std::move(p));
  }

  // FIFO pop; nullopt when empty.
  std::optional<Packet> pop() {
    if (queue_.empty()) return std::nullopt;
    Packet p = std::move(queue_.front());
    queue_.pop_front();
    bytes_ -= p.size;
    return p;
  }

  // Returns a packet to the head (e.g. dequeued but too big for the
  // remaining delivery budget).  Its enqueue stamp is preserved.
  void push_front(Packet&& p) {
    bytes_ += p.size;
    queue_.push_front(std::move(p));
  }

  // Removes and counts the head packet as an intentional drop.
  void drop_head() {
    if (queue_.empty()) return;
    bytes_ -= queue_.front().size;
    queue_.pop_front();
    ++dropped_;
  }

  void count_rejected_arrival() { ++dropped_; }

  // Records a dequeue-side policy drop (the policy already popped the
  // packet; this keeps the drop visible in the queue's counters).
  void note_policy_drop() { ++dropped_; }

  [[nodiscard]] const Packet* head() const {
    return queue_.empty() ? nullptr : &queue_.front();
  }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t packets() const { return queue_.size(); }
  [[nodiscard]] ByteCount bytes() const { return bytes_; }
  [[nodiscard]] std::int64_t dropped() const { return dropped_; }

 private:
  std::deque<Packet> queue_;
  ByteCount bytes_ = 0;
  std::int64_t dropped_ = 0;
};

}  // namespace sprout

// Random Early Detection (Floyd & Jacobson 1993) — the paper's related-work
// AQM baseline.  Included as an ablation extra: §6 argues RED-family schemes
// are hard to parameterize on fast-varying links, which the ablation bench
// demonstrates against CoDel.
#pragma once

#include <cstdint>

#include "aqm/aqm.h"
#include "util/rng.h"

namespace sprout {

struct RedParams {
  double min_threshold_bytes = 30.0 * 1500.0;
  double max_threshold_bytes = 90.0 * 1500.0;
  double max_drop_probability = 0.1;
  double queue_weight = 0.002;  // EWMA weight for the average queue size
};

class RedPolicy : public AqmPolicy {
 public:
  RedPolicy(RedParams params, std::uint64_t seed)
      : params_(params), rng_(seed) {}

  bool admit(const LinkQueue& queue, const Packet& arriving,
             TimePoint now) override;

  [[nodiscard]] double average_queue_bytes() const { return avg_; }
  [[nodiscard]] std::int64_t drops() const { return drops_; }

 private:
  RedParams params_;
  Rng rng_;
  double avg_ = 0.0;
  std::int64_t since_last_drop_ = 0;
  std::int64_t drops_ = 0;
};

}  // namespace sprout

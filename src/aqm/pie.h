// PIE — Proportional Integral controller Enhanced (Pan et al., RFC 8033).
//
// A contemporary of CoDel with the same goal (control queueing *delay*, not
// length) but an enqueue-side design: every `update_interval` the drop
// probability p moves by  alpha (delay - target) + beta (delay - last_delay),
// where the queuing delay is estimated from backlog / measured departure
// rate (Little's law).  Included as the natural third point next to CoDel
// in the in-network comparison of §5.4: it shows the papers' conclusions
// are about *in-network vs end-to-end*, not about CoDel specifically.
#pragma once

#include <cstdint>

#include "aqm/aqm.h"
#include "util/rng.h"

namespace sprout {

struct PieParams {
  Duration target = msec(20);           // reference queueing delay
  Duration update_interval = msec(30);  // controller period
  double alpha = 0.125;                 // proportional gain (per second err)
  double beta = 1.25;                   // derivative-ish gain
  ByteCount mean_packet_bytes = kMtuBytes;
  // Below this backlog PIE stops dropping entirely (RFC 8033 §4.2 bypass).
  ByteCount bypass_bytes = 2 * kMtuBytes;
};

class PiePolicy : public AqmPolicy {
 public:
  PiePolicy(PieParams params, std::uint64_t seed)
      : params_(params), rng_(seed) {}

  bool admit(const LinkQueue& queue, const Packet& arriving,
             TimePoint now) override;
  std::optional<Packet> dequeue(LinkQueue& queue, TimePoint now) override;

  [[nodiscard]] double drop_probability() const { return p_; }
  [[nodiscard]] double estimated_delay_ms() const { return est_delay_ms_; }
  [[nodiscard]] std::int64_t drops() const { return drops_; }

 private:
  void update(const LinkQueue& queue, TimePoint now);

  PieParams params_;
  Rng rng_;
  double p_ = 0.0;
  double est_delay_ms_ = 0.0;
  double last_delay_ms_ = 0.0;
  // Departure-rate measurement (bytes per second over recent dequeues).
  double depart_rate_Bps_ = 0.0;
  TimePoint rate_window_start_{};
  ByteCount rate_window_bytes_ = 0;
  TimePoint next_update_{};
  bool armed_ = false;
  std::int64_t drops_ = 0;
};

}  // namespace sprout

// Queue-management policies pluggable into the emulated link.
//
// The paper's Cellsim ships with an unbounded DropTail queue, optional
// Bernoulli tail drop, and an optional CoDel implementation used for the
// Cubic-over-CoDel comparison (§5.4).  The policy owns both admission
// (enqueue-side) and dequeue-side drop decisions.
#pragma once

#include <optional>

#include "aqm/queue.h"
#include "sim/packet.h"
#include "util/units.h"

namespace sprout {

class AqmPolicy {
 public:
  virtual ~AqmPolicy() = default;

  // Decides whether an arriving packet may be enqueued.
  virtual bool admit(const LinkQueue& queue, const Packet& arriving,
                     TimePoint now) {
    (void)queue;
    (void)arriving;
    (void)now;
    return true;
  }

  // Hands the next packet to transmit, applying any dequeue-side drops.
  // nullopt means nothing transmittable (queue empty or all dropped).
  virtual std::optional<Packet> dequeue(LinkQueue& queue, TimePoint now) {
    (void)now;
    return queue.pop();
  }
};

// Classic tail-drop with an optional byte cap (cap <= 0 means unbounded,
// the Cellsim default).
class DropTailPolicy : public AqmPolicy {
 public:
  explicit DropTailPolicy(ByteCount byte_cap = 0) : byte_cap_(byte_cap) {}

  bool admit(const LinkQueue& queue, const Packet& arriving,
             TimePoint now) override {
    (void)now;
    return byte_cap_ <= 0 || queue.bytes() + arriving.size <= byte_cap_;
  }

 private:
  ByteCount byte_cap_;
};

}  // namespace sprout

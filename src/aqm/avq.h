// Adaptive Virtual Queue (Kunniyur & Srikant, SIGCOMM 2001) — the paper's
// related-work AQM [14].
//
// AVQ runs a fictitious queue whose service rate C~ is a fraction gamma of
// the measured link rate; arriving packets that would overflow the virtual
// buffer are dropped from the real queue.  C~ adapts with the token-bucket
// differential equation  d C~/dt = alpha (gamma C - lambda), implemented at
// each arrival exactly as in the paper's pseudocode:
//   VQ <- max(VQ - C~ (t - s), 0)             // drain since last arrival
//   if VQ + b > B: drop else VQ <- VQ + b
//   C~ <- clamp(C~ + alpha gamma C (t - s) - alpha b, 0, C)
//
// The cellular twist: C (the link rate) is itself time-varying, so the
// emulation feeds AVQ a windowed measurement of recent delivery rate rather
// than a configured constant — exactly the difficulty §2.1 predicts for
// rate-parameterized AQMs.
#pragma once

#include <cstdint>

#include "aqm/aqm.h"

namespace sprout {

struct AvqParams {
  double gamma = 0.98;       // desired utilization
  double alpha = 0.15;       // adaptation gain
  ByteCount virtual_buffer_bytes = 100 * kMtuBytes;
  // Initial estimate of link capacity, refined online from dequeues.
  double initial_capacity_bps = 5e6;
  Duration rate_window = msec(500);
};

class AvqPolicy : public AqmPolicy {
 public:
  explicit AvqPolicy(AvqParams params = {});

  bool admit(const LinkQueue& queue, const Packet& arriving,
             TimePoint now) override;
  std::optional<Packet> dequeue(LinkQueue& queue, TimePoint now) override;

  [[nodiscard]] double virtual_capacity_bps() const { return vc_bps_; }
  [[nodiscard]] double virtual_queue_bytes() const { return vq_bytes_; }
  [[nodiscard]] std::int64_t drops() const { return drops_; }

 private:
  void measure_capacity(ByteCount bytes, TimePoint now);

  AvqParams params_;
  double vq_bytes_ = 0.0;
  double vc_bps_;          // virtual capacity C~
  double link_bps_;        // measured link capacity C
  TimePoint last_arrival_{};
  bool has_arrival_ = false;
  // Windowed delivery measurement.
  TimePoint window_start_{};
  ByteCount window_bytes_ = 0;
  std::int64_t drops_ = 0;
};

}  // namespace sprout

#include "aqm/pie.h"

#include <algorithm>

namespace sprout {

void PiePolicy::update(const LinkQueue& queue, TimePoint now) {
  if (!armed_) {
    armed_ = true;
    next_update_ = now + params_.update_interval;
    return;
  }
  if (now < next_update_) return;
  next_update_ = now + params_.update_interval;

  // Little's law: delay = backlog / departure rate.
  if (depart_rate_Bps_ > 1.0) {
    est_delay_ms_ =
        static_cast<double>(queue.bytes()) / depart_rate_Bps_ * 1000.0;
  } else if (queue.empty()) {
    est_delay_ms_ = 0.0;
  }

  const double target_ms = to_millis(params_.target);
  double dp = params_.alpha * (est_delay_ms_ - target_ms) / 1000.0 +
              params_.beta * (est_delay_ms_ - last_delay_ms_) / 1000.0;

  // RFC 8033 §4.2: scale the step down while p is small so the controller
  // can creep out of the noise floor without oscillating.
  if (p_ < 0.000001) dp /= 2048.0;
  else if (p_ < 0.00001) dp /= 512.0;
  else if (p_ < 0.0001) dp /= 128.0;
  else if (p_ < 0.001) dp /= 32.0;
  else if (p_ < 0.01) dp /= 8.0;
  else if (p_ < 0.1) dp /= 2.0;

  p_ = std::clamp(p_ + dp, 0.0, 1.0);

  // Exponential decay when the queue has emptied.
  if (est_delay_ms_ <= 0.0 && last_delay_ms_ <= 0.0) p_ *= 0.98;
  last_delay_ms_ = est_delay_ms_;
}

bool PiePolicy::admit(const LinkQueue& queue, const Packet& arriving,
                      TimePoint now) {
  update(queue, now);
  if (queue.bytes() + arriving.size <= params_.bypass_bytes) return true;
  if (p_ > 0.0 && rng_.bernoulli(p_)) {
    ++drops_;
    return false;
  }
  return true;
}

std::optional<Packet> PiePolicy::dequeue(LinkQueue& queue, TimePoint now) {
  auto p = queue.pop();
  if (p.has_value()) {
    if (rate_window_start_ == TimePoint{}) rate_window_start_ = now;
    rate_window_bytes_ += p->size;
    const Duration span = now - rate_window_start_;
    if (span >= msec(100)) {
      depart_rate_Bps_ =
          static_cast<double>(rate_window_bytes_) / to_seconds(span);
      rate_window_start_ = now;
      rate_window_bytes_ = 0;
    }
  }
  return p;
}

}  // namespace sprout

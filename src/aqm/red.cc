#include "aqm/red.h"

namespace sprout {

bool RedPolicy::admit(const LinkQueue& queue, const Packet& arriving,
                      TimePoint now) {
  (void)arriving;
  (void)now;
  avg_ = (1.0 - params_.queue_weight) * avg_ +
         params_.queue_weight * static_cast<double>(queue.bytes());
  if (avg_ < params_.min_threshold_bytes) {
    since_last_drop_ = 0;
    return true;
  }
  if (avg_ >= params_.max_threshold_bytes) {
    ++drops_;
    since_last_drop_ = 0;
    return false;
  }
  // Linear ramp of the base drop probability between the thresholds,
  // spread out by the count since the last drop (gentle RED).
  const double fraction = (avg_ - params_.min_threshold_bytes) /
                          (params_.max_threshold_bytes - params_.min_threshold_bytes);
  const double base = params_.max_drop_probability * fraction;
  const double denom = 1.0 - static_cast<double>(since_last_drop_) * base;
  const double p = denom > 0.0 ? base / denom : 1.0;
  ++since_last_drop_;
  if (rng_.bernoulli(p)) {
    ++drops_;
    since_last_drop_ = 0;
    return false;
  }
  return true;
}

}  // namespace sprout

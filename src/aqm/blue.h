// BLUE active queue management (Feng, Shin, Kandlur & Saha, IEEE/ACM ToN
// 2002) — the paper's related-work AQM [6].
//
// BLUE keeps a single drop probability p and adjusts it on events rather
// than queue averages: a queue overflow (or queue above a high-water mark)
// raises p by `increment`; an empty link lowers it by `decrement`.  Updates
// are rate-limited by `freeze_time` so p settles instead of oscillating.
#pragma once

#include <cstdint>

#include "aqm/aqm.h"
#include "util/rng.h"

namespace sprout {

struct BlueParams {
  // Mark/raise when the backlog exceeds this many bytes (stand-in for the
  // original's physical buffer overflow; the emulated queue is unbounded).
  ByteCount high_water_bytes = 100 * kMtuBytes;
  double increment = 0.02;   // d1: on congestion
  double decrement = 0.002;  // d2 << d1: on idle link
  Duration freeze_time = msec(100);
};

class BluePolicy : public AqmPolicy {
 public:
  BluePolicy(BlueParams params, std::uint64_t seed)
      : params_(params), rng_(seed) {}

  bool admit(const LinkQueue& queue, const Packet& arriving,
             TimePoint now) override;
  std::optional<Packet> dequeue(LinkQueue& queue, TimePoint now) override;

  [[nodiscard]] double drop_probability() const { return p_; }
  [[nodiscard]] std::int64_t drops() const { return drops_; }

 private:
  void maybe_raise(TimePoint now);
  void maybe_lower(TimePoint now);

  BlueParams params_;
  Rng rng_;
  double p_ = 0.0;
  TimePoint last_update_{};
  bool has_update_ = false;
  std::int64_t drops_ = 0;
};

}  // namespace sprout

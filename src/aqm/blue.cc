#include "aqm/blue.h"

namespace sprout {

void BluePolicy::maybe_raise(TimePoint now) {
  if (has_update_ && now - last_update_ < params_.freeze_time) return;
  p_ = std::min(1.0, p_ + params_.increment);
  last_update_ = now;
  has_update_ = true;
}

void BluePolicy::maybe_lower(TimePoint now) {
  if (has_update_ && now - last_update_ < params_.freeze_time) return;
  p_ = std::max(0.0, p_ - params_.decrement);
  last_update_ = now;
  has_update_ = true;
}

bool BluePolicy::admit(const LinkQueue& queue, const Packet& arriving,
                       TimePoint now) {
  if (queue.bytes() + arriving.size > params_.high_water_bytes) {
    maybe_raise(now);
  }
  if (p_ > 0.0 && rng_.bernoulli(p_)) {
    ++drops_;
    return false;
  }
  return true;
}

std::optional<Packet> BluePolicy::dequeue(LinkQueue& queue, TimePoint now) {
  if (queue.empty()) {
    // Link idle: the queue emptied, so the drop probability is too high.
    maybe_lower(now);
    return std::nullopt;
  }
  return queue.pop();
}

}  // namespace sprout

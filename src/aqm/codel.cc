#include "aqm/codel.h"

#include <cmath>

namespace sprout {

namespace {
constexpr TimePoint kUnset{};
}

TimePoint CodelPolicy::control_law(TimePoint t) const {
  const double spacing_us = static_cast<double>(
                                params_.interval.count()) /
                            std::sqrt(static_cast<double>(count_));
  return t + usec(static_cast<std::int64_t>(spacing_us));
}

CodelPolicy::DodequeResult CodelPolicy::dodeque(LinkQueue& queue,
                                                TimePoint now) {
  DodequeResult r;
  r.packet = queue.pop();
  if (!r.packet.has_value()) {
    first_above_time_ = kUnset;
    return r;
  }
  const Duration sojourn = now - r.packet->enqueued_at;
  if (sojourn < params_.target || queue.bytes() <= params_.mtu) {
    // Went below target (or queue nearly empty): restart the clock.
    first_above_time_ = kUnset;
  } else {
    if (first_above_time_ == kUnset) {
      first_above_time_ = now + params_.interval;
    } else if (now >= first_above_time_) {
      r.ok_to_drop = true;
    }
  }
  return r;
}

std::optional<Packet> CodelPolicy::dequeue(LinkQueue& queue, TimePoint now) {
  DodequeResult r = dodeque(queue, now);
  if (!r.packet.has_value()) {
    dropping_ = false;
    return std::nullopt;
  }
  if (dropping_) {
    if (!r.ok_to_drop) {
      dropping_ = false;
    } else {
      while (dropping_ && now >= drop_next_) {
        ++drops_;
        queue.note_policy_drop();
        ++count_;
        r = dodeque(queue, now);
        if (!r.packet.has_value()) {
          dropping_ = false;
          return std::nullopt;
        }
        if (!r.ok_to_drop) {
          dropping_ = false;
        } else {
          drop_next_ = control_law(drop_next_);
        }
      }
    }
  } else if (r.ok_to_drop) {
    // Enter dropping state: drop this packet, deliver the next.
    ++drops_;
    queue.note_policy_drop();
    r = dodeque(queue, now);
    dropping_ = true;
    // If we were dropping recently, resume at a faster rate rather than
    // relearning from scratch (the "count" memory).
    if (now - drop_next_ < params_.interval) {
      count_ = count_ > 2 ? count_ - 2 : 1;
    } else {
      count_ = 1;
    }
    drop_next_ = control_law(now);
    if (!r.packet.has_value()) {
      dropping_ = false;
      return std::nullopt;
    }
  }
  return std::move(r.packet);
}

}  // namespace sprout

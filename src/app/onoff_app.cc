#include "app/onoff_app.h"

#include <cassert>

namespace sprout {

OnOffApp::OnOffApp(Simulator& sim, OnOffProfile profile, std::uint64_t seed)
    : sim_(sim), profile_(profile), rng_(seed) {
  assert(profile_.on_rate_kbps > 0.0);
  assert(profile_.frame_interval > Duration::zero());
}

Duration OnOffApp::draw(Duration mean) {
  if (!profile_.randomize) return mean;
  const double mean_s = to_seconds(mean);
  assert(mean_s > 0.0);
  return from_seconds(rng_.exponential(1.0 / mean_s));
}

void OnOffApp::start() {
  assert(!started_);
  started_ = true;
  toggle();  // begin with a talkspurt at t = now
}

void OnOffApp::toggle() {
  if (!on_) {
    on_ = true;
    ++epoch_;
    current_ = Burst{sim_.now(), TimePoint{}, 0};
    frame(epoch_);
    sim_.after(draw(profile_.on_duration), [this] { toggle(); });
  } else {
    on_ = false;
    current_.end = sim_.now();
    bursts_.push_back(current_);
    sim_.after(draw(profile_.off_duration), [this] { toggle(); });
  }
}

void OnOffApp::frame(std::uint64_t epoch) {
  if (!on_ || epoch != epoch_) return;
  const ByteCount frame_bytes =
      bytes_at_kbps(profile_.on_rate_kbps, profile_.frame_interval);
  queue_.offer(frame_bytes);
  offered_ += frame_bytes;
  current_.bytes += frame_bytes;
  sim_.after(profile_.frame_interval, [this, epoch] { frame(epoch); });
}

std::vector<BurstDrain> burst_drain_lags(
    const std::vector<OnOffApp::Burst>& bursts,
    const std::vector<std::pair<TimePoint, ByteCount>>& delivered) {
  std::vector<BurstDrain> out;
  out.reserve(bursts.size());
  ByteCount target = 0;
  std::size_t i = 0;
  for (const OnOffApp::Burst& burst : bursts) {
    target += burst.bytes;
    // Samples are time-ordered with nondecreasing byte counts; walk
    // forward to the first one covering this burst's cumulative target.
    while (i < delivered.size() && delivered[i].second < target) ++i;
    if (i == delivered.size()) break;  // never fully drained
    out.push_back({burst, delivered[i].first, delivered[i].first - burst.end});
  }
  return out;
}

}  // namespace sprout

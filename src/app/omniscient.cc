#include "app/omniscient.h"

#include <cassert>

namespace sprout {

OmniscientSender::OmniscientSender(Simulator& sim, const Trace& trace,
                                   Duration propagation_delay,
                                   std::int64_t flow_id)
    : sim_(sim),
      trace_(trace),
      propagation_delay_(propagation_delay),
      flow_id_(flow_id) {}

void OmniscientSender::start(TimePoint start, TimePoint end) {
  assert(network_ != nullptr && "attach_network before start");
  // Find the first opportunity whose send time is still in the future.
  std::size_t idx = 0;
  while (trace_.opportunity(idx) - propagation_delay_ < start) ++idx;
  schedule_from(idx, end);
}

void OmniscientSender::schedule_from(std::size_t index, TimePoint end) {
  const TimePoint opportunity = trace_.opportunity(index);
  if (opportunity >= end) return;
  // Arrive one microsecond before the opportunity fires so the queue holds
  // exactly one packet for an instant and never builds a backlog.
  const TimePoint send_at = opportunity - propagation_delay_ - usec(1);
  sim_.at(send_at, [this, index, end] {
    Packet p;
    p.flow_id = flow_id_;
    p.size = kMtuBytes;
    p.sent_at = sim_.now();
    network_->receive(std::move(p));
    ++packets_sent_;
    schedule_from(index + 1, end);
  });
}

}  // namespace sprout

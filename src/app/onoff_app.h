// Non-saturating on-off application over Sprout — the §7 transient study.
//
// §7: "The accuracy of Sprout's forecasts depends on whether the
// application is providing offered load sufficient to saturate the link.
// For applications that switch intermittently on and off ... the transient
// behavior of Sprout's forecasts (e.g. ramp-up time) becomes more
// important.  We did not evaluate any non-saturating applications in this
// paper or attempt to measure or optimize Sprout's startup time from
// idle."
//
// OnOffApp alternates talkspurts (frames offered at `on_rate_kbps` every
// `frame_interval`) with silences, feeding a QueueDataSource a Sprout
// sender pulls from.  Every burst is logged so a harness can measure how
// long after the talkspurt ended its bytes finished arriving (the "drain
// lag") — during an idle period only heartbeats keep the receiver's filter
// fed, so the first frames of a new talkspurt ride a stale, cautious
// forecast.  bench/fig_rampup sweeps the silence length to measure
// exactly that.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/source.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/units.h"

namespace sprout {

struct OnOffProfile {
  double on_rate_kbps = 1500.0;
  Duration frame_interval = msec(33);
  Duration on_duration = sec(2);
  Duration off_duration = sec(2);
  // Deterministic periods by default; with randomize=true, ON/OFF lengths
  // are exponential with the above means (a classic talkspurt model).
  bool randomize = false;
};

class OnOffApp {
 public:
  OnOffApp(Simulator& sim, OnOffProfile profile, std::uint64_t seed = 1);

  // The source to attach to a SproutEndpoint.
  [[nodiscard]] DataSource& source() { return queue_; }

  void start();

  [[nodiscard]] bool on() const { return on_; }
  [[nodiscard]] ByteCount total_offered() const { return offered_; }

  struct Burst {
    TimePoint start{};
    TimePoint end{};       // when the talkspurt stopped offering data
    ByteCount bytes = 0;   // total offered during the talkspurt
  };
  // Completed talkspurts, in time order (the in-progress one is excluded).
  [[nodiscard]] const std::vector<Burst>& bursts() const { return bursts_; }

 private:
  void frame(std::uint64_t epoch);
  void toggle();
  [[nodiscard]] Duration draw(Duration mean);

  Simulator& sim_;
  OnOffProfile profile_;
  Rng rng_;
  QueueDataSource queue_;
  bool started_ = false;
  bool on_ = false;
  // Each talkspurt gets a fresh epoch so a frame event left pending across
  // a short silence cannot revive as a second frame chain.
  std::uint64_t epoch_ = 0;
  ByteCount offered_ = 0;
  Burst current_{};
  std::vector<Burst> bursts_;
};

// Drain lag of each completed talkspurt: how long after the app stopped
// offering data its last byte reached the receiver.  `delivered` is a
// time-ordered sampling of the receiver's cumulative payload-stream byte
// count (e.g. SproutReceiver::received_or_lost_bytes() polled on a timer).
// Bursts whose bytes never fully arrive within the samples are omitted.
struct BurstDrain {
  OnOffApp::Burst burst{};
  TimePoint completed{};
  Duration lag{};  // completed - burst.end
};

[[nodiscard]] std::vector<BurstDrain> burst_drain_lags(
    const std::vector<OnOffApp::Burst>& bursts,
    const std::vector<std::pair<TimePoint, ByteCount>>& delivered);

}  // namespace sprout

#include "app/video_app.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sprout {

VideoProfile skype_profile() {
  VideoProfile p;
  p.name = "Skype";
  p.min_rate_kbps = 100.0;
  p.max_rate_kbps = 5000.0;  // "Skype uses up to 5 Mbps" (§5.2 footnote)
  p.start_rate_kbps = 500.0;
  p.adapt_interval = msec(1500);
  p.reaction_lag = msec(3000);
  p.increase_factor = 1.15;
  p.decrease_factor = 0.60;
  p.loss_threshold = 0.05;
  p.delay_threshold_ms = 350.0;
  return p;
}

VideoProfile facetime_profile() {
  VideoProfile p;
  p.name = "Facetime";
  p.min_rate_kbps = 100.0;
  p.max_rate_kbps = 2500.0;
  p.start_rate_kbps = 400.0;
  p.adapt_interval = msec(1200);
  p.reaction_lag = msec(2500);
  p.increase_factor = 1.20;
  p.decrease_factor = 0.65;
  p.loss_threshold = 0.08;
  p.delay_threshold_ms = 400.0;
  return p;
}

VideoProfile hangout_profile() {
  VideoProfile p;
  p.name = "Hangout";
  p.min_rate_kbps = 64.0;
  p.max_rate_kbps = 1800.0;
  p.start_rate_kbps = 300.0;
  p.adapt_interval = msec(2000);
  p.reaction_lag = msec(3500);
  p.increase_factor = 1.10;
  p.decrease_factor = 0.60;
  p.loss_threshold = 0.05;
  p.delay_threshold_ms = 300.0;
  return p;
}

VideoSender::VideoSender(Simulator& sim, VideoProfile profile,
                         std::int64_t flow_id)
    : sim_(sim),
      profile_(std::move(profile)),
      flow_id_(flow_id),
      rate_kbps_(profile_.start_rate_kbps) {}

void VideoSender::start() {
  assert(network_ != nullptr && "attach_network before start");
  sim_.after(profile_.frame_interval, [this] { send_frame(); });
  sim_.after(profile_.adapt_interval, [this] { adapt(); });
}

void VideoSender::send_frame() {
  ByteCount frame_bytes = bytes_at_kbps(rate_kbps_, profile_.frame_interval);
  while (frame_bytes > 0) {
    const ByteCount chunk = std::min(frame_bytes, profile_.max_packet_bytes);
    Packet p;
    p.flow_id = flow_id_;
    p.size = chunk;
    p.seq = next_seq_++;
    p.sent_at = sim_.now();
    p.echo = sim_.now();
    network_->receive(std::move(p));
    ++packets_sent_;
    frame_bytes -= chunk;
  }
  sim_.after(profile_.frame_interval, [this] { send_frame(); });
}

void VideoSender::receive(Packet&& report) {
  // meta carries loss fraction in ppm; ack carries mean OWD in microseconds.
  Report r;
  r.at = sim_.now();
  r.loss_fraction = static_cast<double>(report.meta) / 1e6;
  r.owd_ms = static_cast<double>(report.ack) / 1000.0;
  reports_.push_back(r);
  while (reports_.size() > 64) reports_.pop_front();
}

void VideoSender::adapt() {
  // Act only on information old enough to have "settled" — this lag is the
  // sluggishness the paper observed in all three applications.
  const TimePoint cutoff = sim_.now() - profile_.reaction_lag;
  const Report* usable = nullptr;
  for (const Report& r : reports_) {
    if (r.at <= cutoff) usable = &r;
  }
  if (usable != nullptr) {
    const bool congested = usable->loss_fraction > profile_.loss_threshold ||
                           usable->owd_ms > profile_.delay_threshold_ms;
    if (congested) {
      rate_kbps_ *= profile_.decrease_factor;
    } else {
      rate_kbps_ *= profile_.increase_factor;
    }
    rate_kbps_ = std::clamp(rate_kbps_, profile_.min_rate_kbps,
                            profile_.max_rate_kbps);
  }
  sim_.after(profile_.adapt_interval, [this] { adapt(); });
}

VideoReceiver::VideoReceiver(Simulator& sim, std::int64_t flow_id,
                             VideoReportConfig config)
    : sim_(sim), flow_id_(flow_id), config_(config) {}

void VideoReceiver::start() {
  assert(report_path_ != nullptr && "attach_report_path before start");
  sim_.after(config_.interval, [this] { send_report(); });
}

void VideoReceiver::receive(Packet&& p) {
  ++received_;
  ++window_received_;
  if (window_first_seq_ < 0) window_first_seq_ = p.seq;
  window_max_seq_ = std::max(window_max_seq_, p.seq);
  window_owd_sum_ms_ += to_millis(sim_.now() - p.sent_at);
}

void VideoReceiver::send_report() {
  double loss = 0.0;
  double owd_ms = 0.0;
  if (window_received_ > 0) {
    const std::int64_t expected = window_max_seq_ - window_first_seq_ + 1;
    loss = expected > 0
               ? 1.0 - static_cast<double>(window_received_) /
                           static_cast<double>(expected)
               : 0.0;
    owd_ms = window_owd_sum_ms_ / static_cast<double>(window_received_);
    Packet report;
    report.flow_id = flow_id_;
    report.size = config_.report_bytes;
    report.sent_at = sim_.now();
    report.meta = static_cast<std::int64_t>(std::max(0.0, loss) * 1e6);
    report.ack = static_cast<std::int64_t>(owd_ms * 1000.0);
    report_path_->receive(std::move(report));
  }
  window_received_ = 0;
  window_first_seq_ = -1;
  window_max_seq_ = -1;
  window_owd_sum_ms_ = 0.0;
  sim_.after(config_.interval, [this] { send_report(); });
}

}  // namespace sprout

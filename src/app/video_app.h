// Behavioral models of the closed-source interactive applications the paper
// measured (Skype, Apple Facetime, Google Hangout).
//
// The paper characterizes these programs' transport behaviour (§1, §5.2):
// they pick a sending rate, raise it slowly while reports look healthy, and
// react to deterioration only after a multi-second lag — so they overshoot
// when the link rate collapses and build multi-second standing queues.  The
// model here reproduces exactly that control loop: a fixed-cadence encoder
// (frames every 33 ms, split into MTU packets) plus a reactive controller
// driven by receiver reports (loss fraction + one-way delay) that are acted
// on only after `reaction_lag`.  Per-app profiles set the rate bounds and
// aggressiveness to the qualitative shapes of Figure 7.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "sim/packet.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace sprout {

struct VideoProfile {
  std::string name;
  double min_rate_kbps = 100.0;
  double max_rate_kbps = 5000.0;
  double start_rate_kbps = 500.0;
  Duration frame_interval = msec(33);
  Duration adapt_interval = msec(1500);  // how often the rate is reconsidered
  Duration reaction_lag = msec(3000);    // age a report must reach to be used
  double increase_factor = 1.15;
  double decrease_factor = 0.60;
  double loss_threshold = 0.05;          // fraction lost triggering decrease
  double delay_threshold_ms = 350.0;     // OWD triggering decrease
  ByteCount max_packet_bytes = kMtuBytes;  // reduced when tunneled
};

// Presets matched to the paper's observations (Skype up to 5 Mb/s; Facetime
// similar envelope but lower ceiling; Hangout the most conservative).
[[nodiscard]] VideoProfile skype_profile();
[[nodiscard]] VideoProfile facetime_profile();
[[nodiscard]] VideoProfile hangout_profile();

class VideoSender : public PacketSink {
 public:
  VideoSender(Simulator& sim, VideoProfile profile, std::int64_t flow_id);

  void attach_network(PacketSink& out) { network_ = &out; }
  void start();

  // Receiver reports arrive here over the reverse path.
  void receive(Packet&& report) override;

  [[nodiscard]] double current_rate_kbps() const { return rate_kbps_; }
  [[nodiscard]] std::int64_t packets_sent() const { return packets_sent_; }

 private:
  void send_frame();
  void adapt();

  Simulator& sim_;
  VideoProfile profile_;
  std::int64_t flow_id_;
  PacketSink* network_ = nullptr;
  double rate_kbps_;
  std::int64_t next_seq_ = 0;
  std::int64_t packets_sent_ = 0;

  struct Report {
    TimePoint at;
    double loss_fraction;
    double owd_ms;
  };
  std::deque<Report> reports_;
};

struct VideoReportConfig {
  Duration interval = sec(1);
  ByteCount report_bytes = 100;
};

class VideoReceiver : public PacketSink {
 public:
  VideoReceiver(Simulator& sim, std::int64_t flow_id,
                VideoReportConfig config = {});

  void attach_report_path(PacketSink& out) { report_path_ = &out; }
  void start();

  void receive(Packet&& p) override;

  [[nodiscard]] std::int64_t packets_received() const { return received_; }

 private:
  void send_report();

  Simulator& sim_;
  std::int64_t flow_id_;
  VideoReportConfig config_;
  PacketSink* report_path_ = nullptr;

  std::int64_t received_ = 0;
  std::int64_t window_received_ = 0;
  std::int64_t window_first_seq_ = -1;
  std::int64_t window_max_seq_ = -1;
  double window_owd_sum_ms_ = 0.0;
};

}  // namespace sprout

// The "omniscient" protocol of §5.1: knows the trace in advance and times
// each packet to reach the link queue exactly when a delivery opportunity
// fires, so nothing ever queues.  It achieves 100% utilization and defines
// the baseline whose 95% end-to-end delay is subtracted to obtain the
// self-inflicted delay.  Used to cross-validate the closed-form baseline in
// metrics/flow_metrics.h.
#pragma once

#include <cstdint>

#include "sim/packet.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace sprout {

class OmniscientSender {
 public:
  OmniscientSender(Simulator& sim, const Trace& trace,
                   Duration propagation_delay, std::int64_t flow_id);

  void attach_network(PacketSink& out) { network_ = &out; }

  // Schedules sends so packets sit at the queue head at each opportunity in
  // [start, end).
  void start(TimePoint start, TimePoint end);

  [[nodiscard]] std::int64_t packets_sent() const { return packets_sent_; }

 private:
  void schedule_from(std::size_t index, TimePoint end);

  Simulator& sim_;
  const Trace& trace_;
  Duration propagation_delay_;
  std::int64_t flow_id_;
  PacketSink* network_ = nullptr;
  std::int64_t packets_sent_ = 0;
};

}  // namespace sprout

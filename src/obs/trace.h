// Span/event tracer emitting Chrome trace-event-format JSON
// (chrome://tracing, Perfetto, speedscope all read it).
//
// The tracer is a process-wide buffer of complete ("ph":"X") and instant
// ("ph":"i") events with microsecond timestamps relative to start().
// When inactive — the default — every emit is one relaxed bool load and a
// branch; nothing allocates, nothing locks, and (the repo invariant)
// nothing feeds back into simulation state, so traced and untraced runs
// produce byte-identical results.
//
// Wall-clock timestamps are inherently nondeterministic, so trace files
// are schema-validated in CI, never byte-diffed.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace sprout::obs {

struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';          // 'X' complete, 'i' instant
  std::int64_t ts_us = 0;    // since Tracer::start()
  std::int64_t dur_us = 0;   // complete events only
  std::int64_t tid = 0;      // logical lane (thread, worker slot, cell)
};

class Tracer {
 public:
  static Tracer& instance();

  // Arms the tracer and stamps the t=0 reference.  Idempotent.
  void start();
  void stop();
  [[nodiscard]] bool active() const {
    return active_.load(std::memory_order_relaxed);
  }

  // Microseconds since start(); 0 when inactive.
  [[nodiscard]] std::int64_t now_us() const;

  // Logical lane for the calling thread: a small dense id assigned on
  // first use (readable in the viewer, unlike hashed native ids).
  [[nodiscard]] static std::int64_t current_lane();

  // Emit a complete event covering [begin_us, begin_us + dur_us).
  void complete(std::string name, std::string category, std::int64_t begin_us,
                std::int64_t dur_us, std::int64_t lane);
  // Emit an instant event at now.
  void instant(std::string name, std::string category, std::int64_t lane);

  // Writes the buffered events as {"traceEvents": [...]} and clears the
  // buffer.  pid is constant 1 (single logical process per file).
  void write_json(std::ostream& os);

  [[nodiscard]] std::size_t event_count() const;
  void reset();

 private:
  Tracer() = default;

  std::atomic<bool> active_{false};
  std::chrono::steady_clock::time_point t0_{};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

// RAII span: records a complete event for the enclosing scope when the
// tracer is active.  Construction when inactive is one bool load.
class Span {
 public:
  Span(const char* name, const char* category = "sprout")
      : name_(name), category_(category) {
    Tracer& t = Tracer::instance();
    if (t.active()) {
      active_ = true;
      begin_us_ = t.now_us();
    }
  }
  ~Span() {
    if (active_) {
      Tracer& t = Tracer::instance();
      t.complete(name_, category_, begin_us_, t.now_us() - begin_us_,
                 Tracer::current_lane());
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* category_;
  bool active_ = false;
  std::int64_t begin_us_ = 0;
};

}  // namespace sprout::obs

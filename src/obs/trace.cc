#include "obs/trace.h"

#include "util/table.h"

namespace sprout::obs {

Tracer& Tracer::instance() {
  static Tracer t;
  return t;
}

void Tracer::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_.load(std::memory_order_relaxed)) return;
  t0_ = std::chrono::steady_clock::now();
  active_.store(true, std::memory_order_relaxed);
}

void Tracer::stop() { active_.store(false, std::memory_order_relaxed); }

std::int64_t Tracer::now_us() const {
  if (!active()) return 0;
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - t0_)
      .count();
}

std::int64_t Tracer::current_lane() {
  static std::atomic<std::int64_t> next{0};
  thread_local const std::int64_t lane =
      next.fetch_add(1, std::memory_order_relaxed);
  return lane;
}

void Tracer::complete(std::string name, std::string category,
                      std::int64_t begin_us, std::int64_t dur_us,
                      std::int64_t lane) {
  if (!active()) return;
  TraceEvent e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.phase = 'X';
  e.ts_us = begin_us;
  e.dur_us = dur_us;
  e.tid = lane;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

void Tracer::instant(std::string name, std::string category,
                     std::int64_t lane) {
  if (!active()) return;
  TraceEvent e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.phase = 'i';
  e.ts_us = now_us();
  e.tid = lane;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

void Tracer::write_json(std::ostream& os) {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events.swap(events_);
  }
  os << "{\n  \"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : events) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"name\": ";
    write_json_string(os, e.name);
    os << ", \"cat\": ";
    write_json_string(os, e.category);
    os << ", \"ph\": \"" << e.phase << "\", \"ts\": " << e.ts_us;
    if (e.phase == 'X') os << ", \"dur\": " << e.dur_us;
    os << ", \"pid\": 1, \"tid\": " << e.tid;
    if (e.phase == 'i') os << ", \"s\": \"t\"";
    os << "}";
  }
  if (!first) os << "\n  ";
  os << "]\n}\n";
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

}  // namespace sprout::obs

// Process-wide metrics registry: named relaxed-atomic counters, gauges,
// and DelayHistogram-backed latency distributions.
//
// Two usage tiers, one invariant:
//
//  * Cold paths (cache lookups, per-cell bookkeeping, worker lifecycle)
//    count UNCONDITIONALLY — the cost is one relaxed fetch_add on a
//    pre-resolved reference, and tests that assert exact hit/miss deltas
//    stay exact whether or not export is enabled.
//  * Hot paths (per-tick filter math, kernel dispatch) guard on
//    obs::enabled() and cache the Counter reference in a function-local
//    static, so the disabled cost is one relaxed bool load.
//
// The invariant: metrics NEVER feed back into simulation state.  Counters
// observe; nothing reads them on any result-producing path, so every
// fingerprint, golden, and byte-identity roundtrip holds with obs on or
// off (enforced by tests/obs_metrics_test.cc and the obs_roundtrip ctest).
//
// Export is opt-in at runtime: SPROUT_OBS=1 (or set_enabled(true)) turns
// on hot-path counting; --metrics-out / --trace-out on the CLIs pick
// where snapshots land.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "metrics/histogram.h"

namespace sprout::obs {

namespace detail {
// Exposed only so enabled() inlines: the hot paths' disabled cost must be
// one relaxed load and an untaken branch, not an out-of-line call (the
// perf-trajectory obs-overhead guard measures exactly this).
extern std::atomic<bool> g_enabled;
}  // namespace detail

// True when SPROUT_OBS=1 was in the environment at startup or
// set_enabled(true) ran.  Hot-path instrumentation gates on this; cold
// paths ignore it.
[[nodiscard]] inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

// Monotone event count.  add() is a relaxed fetch_add: safe from any
// thread, never ordered against simulation state.
class Counter {
 public:
  void add(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Last-written level (queue depth, band occupancy, worker count).
// set_max keeps a running high-water mark instead.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void set_max(double v) {
    double cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// Latency distribution: a mutex-guarded DelayHistogram.  Not for per-tick
// hot paths — record() takes a lock; use it for per-cell / per-batch
// durations where the lock is noise.
class LatencyHistogram {
 public:
  LatencyHistogram(Duration bin, Duration max) : hist_(bin, max) {}

  void record(Duration d) {
    std::lock_guard<std::mutex> lock(mu_);
    hist_.add(d);
  }
  void record_ms(double ms);

  // Copy out under the lock (snapshot safety).
  [[nodiscard]] DelayHistogram histogram() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hist_;
  }
  void reset();

 private:
  mutable std::mutex mu_;
  DelayHistogram hist_;
};

// One registry row, flattened for export.  Histograms export their
// DelayStats percentiles rather than raw bins.
struct MetricSample {
  std::string name;
  enum class Kind { kCounter, kGauge, kHistogram } kind;
  double value = 0.0;           // counter/gauge value; histogram mean_ms
  std::int64_t count = 0;       // counter value exact; histogram samples
  DelayStats stats{};           // histogram only
};

// The process-wide registry.  counter()/gauge()/histogram() return
// references that stay valid for the life of the process (std::map nodes
// never move); registration takes a mutex, increments do not.  Callers on
// hot paths resolve once into a function-local static.
class Registry {
 public:
  static Registry& instance();

  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] LatencyHistogram& histogram(const std::string& name,
                                            Duration bin, Duration max);

  // Deterministic (name-sorted) flat view of every registered metric.
  [[nodiscard]] std::vector<MetricSample> snapshot() const;

  // One JSON object: {"counters": {...}, "gauges": {...},
  // "histograms": {...}}, name-sorted, 17-digit doubles, stable bytes for
  // equal states.  `indent` is the opening brace's column.
  void write_json(std::ostream& os, int indent = 0) const;
  // Same object on a single line (JSONL embedding: metrics.jsonl summary).
  void write_json_compact(std::ostream& os) const;

  // Zero every metric (tests; names stay registered).
  void reset();

 private:
  Registry() = default;

  void write_json_impl(std::ostream& os, int indent, bool compact) const;

  mutable std::mutex mu_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, LatencyHistogram> histograms_;
};

// Shorthand for cold-path sites: resolve-and-add in one line.
inline void count(const std::string& name, std::int64_t n = 1) {
  Registry::instance().counter(name).add(n);
}

}  // namespace sprout::obs

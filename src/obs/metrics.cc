#include "obs/metrics.h"

#include <cstdlib>
#include <sstream>

#include "util/table.h"

namespace sprout::obs {

namespace detail {

std::atomic<bool> g_enabled{[] {
  const char* env = std::getenv("SPROUT_OBS");
  return env != nullptr && env[0] == '1' && env[1] == '\0';
}()};

}  // namespace detail

namespace {

// Exact 17-significant-digit doubles, the repo-wide JSON discipline.
void write_double(std::ostream& os, double v) {
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << v;
  os << tmp.str();
}

void indent_to(std::ostream& os, int col) {
  for (int i = 0; i < col; ++i) os << ' ';
}

}  // namespace

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

namespace {

Duration duration_from_ms(double ms) {
  return std::chrono::duration_cast<Duration>(
      std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

void LatencyHistogram::record_ms(double ms) { record(duration_from_ms(ms)); }

void LatencyHistogram::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  hist_ = DelayHistogram(duration_from_ms(hist_.bin_width_ms()),
                         duration_from_ms(hist_.max_ms()));
}

Registry& Registry::instance() {
  static Registry r;
  return r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_[name];
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_[name];
}

LatencyHistogram& Registry::histogram(const std::string& name, Duration bin,
                                      Duration max) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_
      .emplace(std::piecewise_construct, std::forward_as_tuple(name),
               std::forward_as_tuple(bin, max))
      .first->second;
}

std::vector<MetricSample> Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kCounter;
    s.count = c.value();
    s.value = static_cast<double>(s.count);
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kGauge;
    s.value = g.value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kHistogram;
    const DelayHistogram copy = h.histogram();
    if (copy.samples() > 0) s.stats = copy.stats();
    s.count = copy.samples();
    s.value = copy.mean_ms();
    out.push_back(std::move(s));
  }
  // std::map iteration is name-sorted per section; the flat view keeps
  // counters, then gauges, then histograms — stable and deterministic.
  return out;
}

void Registry::write_json(std::ostream& os, int indent) const {
  write_json_impl(os, indent, /*compact=*/false);
}

void Registry::write_json_compact(std::ostream& os) const {
  write_json_impl(os, 0, /*compact=*/true);
}

void Registry::write_json_impl(std::ostream& os, int indent,
                               bool compact) const {
  std::lock_guard<std::mutex> lock(mu_);
  // One emit path for both shapes: `open` starts a member at the right
  // column (or after a space, compact), `close_section` lands the brace.
  const auto open = [&](bool& first, int col) {
    if (compact) {
      os << (first ? "" : ", ");
    } else {
      os << (first ? "\n" : ",\n");
      indent_to(os, col);
    }
    first = false;
  };
  const auto close_section = [&](bool first, int col) {
    if (!compact && !first) {
      os << "\n";
      indent_to(os, col);
    }
    os << "}";
  };

  os << "{";
  if (!compact) {
    os << "\n";
    indent_to(os, indent + 2);
  }
  os << "\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    open(first, indent + 4);
    write_json_string(os, name);
    os << ": " << c.value();
  }
  close_section(first, indent + 2);
  os << ",";
  if (compact) {
    os << " ";
  } else {
    os << "\n";
    indent_to(os, indent + 2);
  }
  os << "\"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    open(first, indent + 4);
    write_json_string(os, name);
    os << ": ";
    write_double(os, g.value());
  }
  close_section(first, indent + 2);
  os << ",";
  if (compact) {
    os << " ";
  } else {
    os << "\n";
    indent_to(os, indent + 2);
  }
  os << "\"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const DelayHistogram copy = h.histogram();
    open(first, indent + 4);
    write_json_string(os, name);
    os << ": {\"samples\": " << copy.samples() << ", \"mean_ms\": ";
    write_double(os, copy.mean_ms());
    if (copy.samples() > 0) {
      const DelayStats st = copy.stats();
      os << ", \"p50_ms\": ";
      write_double(os, st.p50_ms);
      os << ", \"p95_ms\": ";
      write_double(os, st.p95_ms);
      os << ", \"p99_ms\": ";
      write_double(os, st.p99_ms);
    }
    os << "}";
  }
  close_section(first, indent + 2);
  if (!compact) {
    os << "\n";
    indent_to(os, indent);
  }
  os << "}";
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

}  // namespace sprout::obs

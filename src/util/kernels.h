// Vectorized inner-loop kernels for the inference hot path.
//
// Two primitives carry nearly all of Sprout's per-tick arithmetic:
//   axpy:  dst[j] += a * src[j]   (the evolve accumulation, row by row)
//   dot:   Σ_j a[j] * b[j]        (the mixture-CDF weighted sum)
//
// Both ship in two builds: a portable scalar path the compiler is free to
// auto-vectorize, and a hand-written AVX2 path selected by RUNTIME cpuid
// dispatch.  Release artifacts are never compiled with -march=native — the
// AVX2 code is emitted behind a per-function target attribute, so one
// binary runs (and picks the fast path) anywhere.
//
// Determinism contract: both paths produce BIT-IDENTICAL results.  axpy is
// element-wise (no reassociation, no FMA contraction), and dot uses a fixed
// four-accumulator summation tree — the scalar path mimics the vector
// lanes' order exactly — so golden metrics and content-addressed shard
// merges do not depend on which machine ran the sweep.
#pragma once

#include <cstddef>

namespace sprout::kernels {

// dst[j] += a * src[j] for j in [0, n).
void axpy(double* dst, const double* src, double a, std::size_t n);

// outs[f][l] = Σ_r coeffs[f][r] * vals[4r + l] for f in [0, k), l in
// [0, 4): k weighted sums of a sequence of 4-wide value tiles, one
// sequential accumulator per output lane, rows ascending.
//
// The batched-evolve workhorse.  The accumulators live in registers for
// the whole row sweep — the inner loop does no scratch loads or stores at
// all, unlike axpy which read-modify-writes the destination every element —
// and each value tile is loaded once and shared by every flow.  Per lane
// the arithmetic is `acc += c * v` in ascending-row order with acc starting
// at +0.0, exactly the add sequence a row-by-row axpy accumulation
// produces, so results are bit-identical to the serial evolve path.
void weighted_sum4(const double* vals, std::size_t rows,
                   const double* const* coeffs, std::size_t k,
                   double* const* outs);

// Σ_j a[j] * b[j] for j in [0, n), fixed 4-lane summation tree.
double dot(const double* a, const double* b, std::size_t n);

// Name of the dispatched backend: "avx2" or "scalar".
const char* active_backend();

// Force a backend for benches/tests: "avx2", "scalar" or "auto".  Returns
// false (and changes nothing) if the request is unknown or unsupported on
// this CPU.  The SPROUT_KERNELS environment variable applies the same
// override at startup.
bool force_backend(const char* name);

}  // namespace sprout::kernels

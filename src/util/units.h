// Strong types and conversion helpers for time and data quantities.
//
// All simulation time is kept as integer microseconds via <chrono>, which
// gives overflow-checked-at-compile-time arithmetic and keeps unit mistakes
// out of the interfaces (C++ Core Guidelines I.4: strong types over raw ints).
#pragma once

#include <chrono>
#include <cstdint>

namespace sprout {

// Clock of the discrete-event simulation.  Epoch is the start of a run.
struct SimClock {
  using rep = std::int64_t;
  using period = std::micro;
  using duration = std::chrono::microseconds;
  using time_point = std::chrono::time_point<SimClock>;
  static constexpr bool is_steady = true;
};

using Duration = SimClock::duration;
using TimePoint = SimClock::time_point;

constexpr Duration usec(std::int64_t n) { return std::chrono::microseconds{n}; }
constexpr Duration msec(std::int64_t n) { return std::chrono::milliseconds{n}; }
constexpr Duration sec(std::int64_t n) { return std::chrono::seconds{n}; }

// Converts a duration to floating-point seconds (for rate arithmetic only;
// never store time as double).
constexpr double to_seconds(Duration d) {
  return std::chrono::duration<double>(d).count();
}

constexpr double to_millis(Duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

// Builds a duration from floating-point seconds, rounding to microseconds.
constexpr Duration from_seconds(double s) {
  return std::chrono::duration_cast<Duration>(std::chrono::duration<double>(s));
}

// Byte counts are signed so that subtraction of counters is safe
// (C++ Core Guidelines ES.106: don't use unsigned to avoid negative values).
using ByteCount = std::int64_t;

// The paper works in MTU-sized packets of 1500 bytes throughout.
inline constexpr ByteCount kMtuBytes = 1500;

// Average rate in kilobits per second of `bytes` delivered over `elapsed`.
constexpr double kbps(ByteCount bytes, Duration elapsed) {
  const double s = to_seconds(elapsed);
  return s > 0 ? static_cast<double>(bytes) * 8.0 / 1000.0 / s : 0.0;
}

// Bytes sent in `elapsed` at a given rate in kilobits per second.
constexpr ByteCount bytes_at_kbps(double rate_kbps, Duration elapsed) {
  return static_cast<ByteCount>(rate_kbps * 1000.0 / 8.0 * to_seconds(elapsed));
}

}  // namespace sprout

#include "util/ascii_plot.h"

#include <algorithm>

#include "util/table.h"

namespace sprout {

namespace {

double series_peak(const std::vector<double>& bar,
                   const std::vector<double>& overlay) {
  double peak = 0.0;
  for (const double v : bar) peak = std::max(peak, v);
  for (const double v : overlay) peak = std::max(peak, v);
  return peak;
}

int scaled_column(double value, double peak, int width) {
  if (peak <= 0.0 || value <= 0.0) return 0;
  const int col = static_cast<int>(static_cast<double>(width) * value / peak);
  return std::min(col, width);
}

}  // namespace

void render_ascii_plot(std::ostream& os, const std::vector<double>& bar,
                       const std::vector<double>& overlay,
                       const AsciiPlotOptions& opt) {
  const double peak = series_peak(bar, overlay);
  for (std::size_t b = 0; b < bar.size(); ++b) {
    const int bar_w = scaled_column(bar[b], peak, opt.width);
    std::string row(static_cast<std::size_t>(bar_w), opt.bar);
    if (b < overlay.size()) {
      const int mark_at = scaled_column(overlay[b], peak, opt.width);
      // The marker overwrites the bar (or extends past it) at its own
      // column, so one row shows both signals on one scale.
      if (static_cast<std::size_t>(mark_at) >= row.size()) {
        row.resize(static_cast<std::size_t>(mark_at) + 1, ' ');
      }
      row[static_cast<std::size_t>(mark_at)] = opt.mark;
    }
    os << format_double(static_cast<double>(b) * opt.bin_s,
                        opt.time_precision)
       << "s\t|" << row << "\n";
  }
}

void render_ascii_plot(std::ostream& os, const std::vector<double>& bar,
                       const AsciiPlotOptions& opt) {
  render_ascii_plot(os, bar, {}, opt);
}

}  // namespace sprout

#include "util/kernels.h"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SPROUT_KERNELS_HAVE_AVX2 1
#include <immintrin.h>
#else
#define SPROUT_KERNELS_HAVE_AVX2 0
#endif

namespace sprout::kernels {

namespace {

// --- scalar path ---------------------------------------------------------
//
// The axpy loop is element-wise, so whatever the compiler does with it
// (SSE2, unrolling) cannot change results — IEEE add/mul per element, and
// FMA contraction is off by default without -ffast-math.  The dot loop
// spells out the same four-accumulator pattern the AVX2 path uses so both
// reduce in the same order.

void axpy_scalar(double* dst, const double* src, double a, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) dst[j] += a * src[j];
}

void weighted_sum4_scalar(const double* vals, std::size_t rows,
                          const double* const* coeffs, std::size_t k,
                          double* const* outs) {
  for (std::size_t f = 0; f < k; ++f) {
    const double* c = coeffs[f];
    // One accumulator per lane, rows ascending — the AVX2 path's vector
    // lanes follow exactly this order.
    double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
    for (std::size_t r = 0; r < rows; ++r) {
      const double w = c[r];
      const double* v = vals + 4 * r;
      acc0 += w * v[0];
      acc1 += w * v[1];
      acc2 += w * v[2];
      acc3 += w * v[3];
    }
    outs[f][0] = acc0;
    outs[f][1] = acc1;
    outs[f][2] = acc2;
    outs[f][3] = acc3;
  }
}

double dot_scalar(const double* a, const double* b, std::size_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    acc0 += a[j] * b[j];
    acc1 += a[j + 1] * b[j + 1];
    acc2 += a[j + 2] * b[j + 2];
    acc3 += a[j + 3] * b[j + 3];
  }
  double sum = (acc0 + acc2) + (acc1 + acc3);
  for (; j < n; ++j) sum += a[j] * b[j];
  return sum;
}

// --- AVX2 path -----------------------------------------------------------

#if SPROUT_KERNELS_HAVE_AVX2

__attribute__((target("avx2"))) void axpy_avx2(double* dst, const double* src,
                                               double a, std::size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  std::size_t j = 0;
  // Deliberately mul + add, not FMA: bit-identity with the scalar path.
  for (; j + 4 <= n; j += 4) {
    const __m256d s = _mm256_loadu_pd(src + j);
    const __m256d d = _mm256_loadu_pd(dst + j);
    _mm256_storeu_pd(dst + j, _mm256_add_pd(d, _mm256_mul_pd(va, s)));
  }
  for (; j < n; ++j) dst[j] += a * src[j];
}

// K is a compile-time flow count so the K accumulators stay pinned in ymm
// registers across the whole row sweep (K ≤ 8: 8 accumulators + the shared
// value tile + a broadcast temporary fit the 16 ymm registers).
template <int K>
__attribute__((target("avx2"))) void weighted_sum4_avx2_k(
    const double* vals, std::size_t rows, const double* const* coeffs,
    double* const* outs) {
  __m256d acc[K];
  for (int f = 0; f < K; ++f) acc[f] = _mm256_setzero_pd();
  for (std::size_t r = 0; r < rows; ++r) {
    const __m256d v = _mm256_loadu_pd(vals + 4 * r);
    for (int f = 0; f < K; ++f) {
      // Deliberately mul + add, not FMA: bit-identity with the scalar path.
      acc[f] = _mm256_add_pd(acc[f],
                             _mm256_mul_pd(_mm256_set1_pd(coeffs[f][r]), v));
    }
  }
  for (int f = 0; f < K; ++f) _mm256_storeu_pd(outs[f], acc[f]);
}

__attribute__((target("avx2"))) void weighted_sum4_avx2(
    const double* vals, std::size_t rows, const double* const* coeffs,
    std::size_t k, double* const* outs) {
  while (k >= 8) {
    weighted_sum4_avx2_k<8>(vals, rows, coeffs, outs);
    coeffs += 8;
    outs += 8;
    k -= 8;
  }
  switch (k) {
    case 7: weighted_sum4_avx2_k<7>(vals, rows, coeffs, outs); break;
    case 6: weighted_sum4_avx2_k<6>(vals, rows, coeffs, outs); break;
    case 5: weighted_sum4_avx2_k<5>(vals, rows, coeffs, outs); break;
    case 4: weighted_sum4_avx2_k<4>(vals, rows, coeffs, outs); break;
    case 3: weighted_sum4_avx2_k<3>(vals, rows, coeffs, outs); break;
    case 2: weighted_sum4_avx2_k<2>(vals, rows, coeffs, outs); break;
    case 1: weighted_sum4_avx2_k<1>(vals, rows, coeffs, outs); break;
    default: break;
  }
}

__attribute__((target("avx2"))) double dot_avx2(const double* a,
                                                const double* b,
                                                std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(b + j)));
  }
  // Reduce lanes [0,1,2,3] as (l0 + l2) + (l1 + l3) — the scalar path's
  // accumulators map to lanes, so the tree must match it exactly.
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  double sum = (lane[0] + lane[2]) + (lane[1] + lane[3]);
  for (; j < n; ++j) sum += a[j] * b[j];
  return sum;
}

#endif  // SPROUT_KERNELS_HAVE_AVX2

using AxpyFn = void (*)(double*, const double*, double, std::size_t);
using WeightedSum4Fn = void (*)(const double*, std::size_t,
                                const double* const*, std::size_t,
                                double* const*);
using DotFn = double (*)(const double*, const double*, std::size_t);

struct Backend {
  AxpyFn axpy;
  WeightedSum4Fn weighted_sum4;
  DotFn dot;
  const char* name;
};

constexpr Backend kScalar{axpy_scalar, weighted_sum4_scalar, dot_scalar,
                          "scalar"};
#if SPROUT_KERNELS_HAVE_AVX2
constexpr Backend kAvx2{axpy_avx2, weighted_sum4_avx2, dot_avx2, "avx2"};
#endif

bool avx2_supported() {
#if SPROUT_KERNELS_HAVE_AVX2
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

Backend pick_auto() {
#if SPROUT_KERNELS_HAVE_AVX2
  if (avx2_supported()) return kAvx2;
#endif
  return kScalar;
}

Backend resolve_startup() {
  if (const char* env = std::getenv("SPROUT_KERNELS")) {
    if (std::strcmp(env, "scalar") == 0) return kScalar;
#if SPROUT_KERNELS_HAVE_AVX2
    if (std::strcmp(env, "avx2") == 0 && avx2_supported()) return kAvx2;
#endif
  }
  return pick_auto();
}

// Dispatch state.  Resolved once before main() (static init is
// single-threaded here: no other static initializer in this TU); only
// force_backend — a bench/test entry — mutates it afterwards.
Backend g_backend = resolve_startup();

}  // namespace

// NOTE: these wrappers are the hottest call sites in the tree and carry NO
// instrumentation — not even a disabled-branch check.  The per-backend
// dispatch tallies ("kernels.axpy.avx2", ...) are counted per PASS at the
// call sites (TransitionMatrix::evolve and friends), which know how many
// kernel invocations a pass makes; the perf trajectory's obs-overhead
// guard (< 1% on the banded-evolve bench) exists to keep it that way.

void axpy(double* dst, const double* src, double a, std::size_t n) {
  g_backend.axpy(dst, src, a, n);
}

void weighted_sum4(const double* vals, std::size_t rows,
                   const double* const* coeffs, std::size_t k,
                   double* const* outs) {
  g_backend.weighted_sum4(vals, rows, coeffs, k, outs);
}

double dot(const double* a, const double* b, std::size_t n) {
  return g_backend.dot(a, b, n);
}

const char* active_backend() { return g_backend.name; }

bool force_backend(const char* name) {
  if (std::strcmp(name, "scalar") == 0) {
    g_backend = kScalar;
    return true;
  }
  if (std::strcmp(name, "auto") == 0) {
    g_backend = pick_auto();
    return true;
  }
#if SPROUT_KERNELS_HAVE_AVX2
  if (std::strcmp(name, "avx2") == 0 && avx2_supported()) {
    g_backend = kAvx2;
    return true;
  }
#endif
  return false;
}

}  // namespace sprout::kernels

// Deterministic, seedable random number generation for simulations.
//
// Every stochastic component takes an explicit Rng (or a seed) so that whole
// experiments are reproducible from a single root seed.  No global RNG state
// (C++ Core Guidelines I.2: avoid non-const global variables).
#pragma once

#include <cstdint>
#include <random>

namespace sprout {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : gen_(seed) {}

  // Uniform in [0, 1).
  double uniform() { return unit_(gen_); }

  // Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(gen_);
  }

  bool bernoulli(double p) { return uniform() < p; }

  // Exponential with the given rate (mean 1/rate).  rate must be > 0.
  double exponential(double rate) {
    return std::exponential_distribution<double>{rate}(gen_);
  }

  double normal(double mean, double stddev) {
    return std::normal_distribution<double>{mean, stddev}(gen_);
  }

  // Poisson draw; returns 0 for non-positive means.
  std::int64_t poisson(double mean) {
    if (mean <= 0.0) return 0;
    return std::poisson_distribution<std::int64_t>{mean}(gen_);
  }

  // Derives an independent child seed; lets components fork their own streams.
  std::uint64_t fork_seed() {
    return std::uniform_int_distribution<std::uint64_t>{}(gen_);
  }

 private:
  std::mt19937_64 gen_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace sprout

#include "util/table.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sprout {

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

TableWriter& TableWriter::row() {
  rows_.emplace_back();
  return *this;
}

TableWriter& TableWriter::cell(const std::string& value) {
  rows_.back().push_back(value);
  return *this;
}

TableWriter& TableWriter::cell(const char* value) {
  return cell(std::string{value});
}

TableWriter& TableWriter::cell(double value, int precision) {
  return cell(format_double(value, precision));
}

TableWriter& TableWriter::cell(std::int64_t value) {
  return cell(std::to_string(value));
}

void TableWriter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = c < row.size() ? row[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << v;
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t rule = 0;
  for (std::size_t w : widths) rule += w + 2;
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        // RFC 8259 forbids raw control characters inside strings.
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << std::hex << std::setw(2) << std::setfill('0')
             << static_cast<int>(static_cast<unsigned char>(c)) << std::dec
             << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void TableWriter::write_json(std::ostream& os) const {
  os << "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << "  {";
    const auto& row = rows_[r];
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) os << ", ";
      write_json_string(os, headers_[c]);
      os << ": ";
      write_json_string(os, c < row.size() ? row[c] : std::string{});
    }
    os << (r + 1 < rows_.size() ? "},\n" : "}\n");
  }
  os << "]\n";
}

void TableWriter::write_tsv(std::ostream& os) const {
  auto tsv_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << '\t';
      os << row[c];
    }
    os << '\n';
  };
  tsv_row(headers_);
  for (const auto& row : rows_) tsv_row(row);
}

// --- JsonValue ----------------------------------------------------------

namespace {

[[noreturn]] void kind_error(const char* wanted, JsonValue::Kind got) {
  const char* names[] = {"null", "bool", "number", "string", "array",
                         "object"};
  throw std::runtime_error(std::string("JSON: expected ") + wanted +
                           ", found " + names[static_cast<int>(got)]);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("bool", kind_);
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) kind_error("number", kind_);
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) kind_error("string", kind_);
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  return object_;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  for (const auto& [k, v] : members()) {
    if (k == key) return v;
  }
  throw std::runtime_error("JSON: missing key \"" + key + "\"");
}

bool JsonValue::has(const std::string& key) const {
  for (const auto& [k, v] : members()) {
    if (k == key) return true;
  }
  return false;
}

JsonValue JsonValue::make_null() { return JsonValue{}; }

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double value) {
  if (!std::isfinite(value)) {
    throw std::invalid_argument("JSON numbers must be finite");
  }
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

// Strict recursive-descent parser.  Shard files are machine-written, so
// anything unexpected — truncation, a stray byte, a half-written object —
// is corruption and must be reported, never papered over.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  // Containers recurse, so corrupt input full of '[' or '{' must hit this
  // bound (and throw like any other corruption) long before the call stack
  // does; real shard files nest half a dozen levels.
  static constexpr int kMaxDepth = 128;

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': {
        if (++depth_ > kMaxDepth) fail("nesting deeper than 128 levels");
        JsonValue v = parse_object();
        --depth_;
        return v;
      }
      case '[': {
        if (++depth_ > kMaxDepth) fail("nesting deeper than 128 levels");
        JsonValue v = parse_array();
        --depth_;
        return v;
      }
      case '"': return parse_string();
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kBool;
    v.bool_ = b;
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      JsonValue key = parse_string();
      skip_ws();
      expect(':');
      v.object_.emplace_back(std::move(key.string_), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue parse_string() {
    expect('"');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kString;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        v.string_.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': v.string_.push_back('"'); break;
        case '\\': v.string_.push_back('\\'); break;
        case '/': v.string_.push_back('/'); break;
        case 'b': v.string_.push_back('\b'); break;
        case 'f': v.string_.push_back('\f'); break;
        case 'n': v.string_.push_back('\n'); break;
        case 'r': v.string_.push_back('\r'); break;
        case 't': v.string_.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // UTF-8 encode the basic-plane code point (the writer only emits
          // \u00XX; surrogate pairs are out of scope for shard files).
          if (code < 0x80) {
            v.string_.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            v.string_.push_back(static_cast<char>(0xC0 | (code >> 6)));
            v.string_.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            v.string_.push_back(static_cast<char>(0xE0 | (code >> 12)));
            v.string_.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            v.string_.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  // Exactly the RFC 8259 number grammar — stricter than strtod, which
  // would also accept '+5', '.5', '5.', '0123', 'inf' and hex.  A corrupt
  // byte that bends a number out of the grammar must be REPORTED, not
  // reinterpreted (e.g. '-0.5' with its sign byte damaged to '+' parses
  // under strtod as +0.5).
  JsonValue parse_number() {
    const std::size_t start = pos_;
    const auto digits = [&] {
      const std::size_t before = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      return pos_ > before;
    };
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    // int part: '0' alone or a nonzero-led digit run (no leading zeros).
    if (pos_ < text_.size() && text_[pos_] == '0') {
      ++pos_;
    } else if (!digits()) {
      pos_ = start;
      fail("expected a value");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) {
        pos_ = start;
        fail("malformed number");
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digits()) {
        pos_ = start;
        fail("malformed number");
      }
    }
    // NUL-terminated copy for strtod: exact round-trip of the 17-significant
    // -digit doubles the shard writer emits.
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("malformed number");
    }
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.number_ = value;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

}  // namespace sprout

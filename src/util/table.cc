#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace sprout {

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

TableWriter& TableWriter::row() {
  rows_.emplace_back();
  return *this;
}

TableWriter& TableWriter::cell(const std::string& value) {
  rows_.back().push_back(value);
  return *this;
}

TableWriter& TableWriter::cell(const char* value) {
  return cell(std::string{value});
}

TableWriter& TableWriter::cell(double value, int precision) {
  return cell(format_double(value, precision));
}

TableWriter& TableWriter::cell(std::int64_t value) {
  return cell(std::to_string(value));
}

void TableWriter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = c < row.size() ? row[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << v;
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t rule = 0;
  for (std::size_t w : widths) rule += w + 2;
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        // RFC 8259 forbids raw control characters inside strings.
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << std::hex << std::setw(2) << std::setfill('0')
             << static_cast<int>(static_cast<unsigned char>(c)) << std::dec
             << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void TableWriter::write_json(std::ostream& os) const {
  os << "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << "  {";
    const auto& row = rows_[r];
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) os << ", ";
      write_json_string(os, headers_[c]);
      os << ": ";
      write_json_string(os, c < row.size() ? row[c] : std::string{});
    }
    os << (r + 1 < rows_.size() ? "},\n" : "}\n");
  }
  os << "]\n";
}

void TableWriter::write_tsv(std::ostream& os) const {
  auto tsv_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << '\t';
      os << row[c];
    }
    os << '\n';
  };
  tsv_row(headers_);
  for (const auto& row : rows_) tsv_row(row);
}

}  // namespace sprout

// Shared ASCII timeline plotting.
//
// One renderer for every CLI that draws a per-bin signal as rows of bars:
// trace_synth's delivered-rate view and timeline_report's Figure-1/6-style
// forecast-vs-capacity and delay charts.  A chart is one row per bin, the
// bar scaled so the largest value spans the configured width; an optional
// overlay series marks a second signal's position on the same scale, which
// is how "what the forecast believed" is drawn against "what the channel
// delivered" in one terminal row.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "util/units.h"

namespace sprout {

struct AsciiPlotOptions {
  int width = 60;          // columns of the full-scale bar
  double bin_s = 1.0;      // seconds per row (time labels)
  int time_precision = 1;  // decimals of the row's time label
  char bar = '#';          // bar fill
  char mark = '*';         // overlay marker
};

// Renders `bar` (one value per bin) as rows of bars.  When `overlay` is
// non-empty it must be the same length; each row then also carries a
// single marker at the overlay value's column on the shared scale (the
// scale's peak is the max over BOTH series, so the two signals are
// directly comparable).  Values are clamped at zero; an all-zero chart
// renders empty rows rather than dividing by zero.
void render_ascii_plot(std::ostream& os, const std::vector<double>& bar,
                       const std::vector<double>& overlay,
                       const AsciiPlotOptions& opt);

// Single-series convenience.
void render_ascii_plot(std::ostream& os, const std::vector<double>& bar,
                       const AsciiPlotOptions& opt);

}  // namespace sprout

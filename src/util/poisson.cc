#include "util/poisson.h"

#include <cassert>
#include <cmath>
#include <vector>

namespace sprout {

namespace {

// Cached log-factorials; grown on demand.  Read-mostly after warmup.
const double* log_factorial_table(int max_k) {
  static std::vector<double> table{0.0};  // log(0!) = 0
  while (static_cast<int>(table.size()) <= max_k) {
    const double k = static_cast<double>(table.size());
    table.push_back(table.back() + std::log(k));
  }
  return table.data();
}

}  // namespace

double log_factorial(int k) {
  assert(k >= 0);
  if (k < 1024) return log_factorial_table(1023)[k];
  return std::lgamma(static_cast<double>(k) + 1.0);
}

double poisson_log_pmf(int k, double mean) {
  assert(k >= 0);
  assert(mean >= 0.0);
  if (mean == 0.0) return k == 0 ? 0.0 : kNegInf;
  return static_cast<double>(k) * std::log(mean) - mean - log_factorial(k);
}

double poisson_pmf(int k, double mean) { return std::exp(poisson_log_pmf(k, mean)); }

double poisson_cdf(int k, double mean) {
  assert(mean >= 0.0);
  if (k < 0) return 0.0;
  if (mean == 0.0) return 1.0;
  // Forward recurrence: term_{i} = term_{i-1} * mean / i, starting at e^-mean.
  double term = std::exp(-mean);
  double sum = term;
  for (int i = 1; i <= k; ++i) {
    term *= mean / static_cast<double>(i);
    sum += term;
  }
  return sum < 1.0 ? sum : 1.0;
}

double poisson_log_survival(int k, double mean) {
  assert(k >= 0);
  assert(mean >= 0.0);
  if (k == 0) return 0.0;  // P[X >= 0] = 1
  if (mean == 0.0) return kNegInf;
  const double below = poisson_cdf(k - 1, mean);
  if (below < 0.999) {
    return std::log1p(-below);
  }
  // Deep upper tail (mean << k): sum the tail from pmf(k); terms decay
  // geometrically once j > mean, so a few iterations suffice.
  const double log_first = poisson_log_pmf(k, mean);
  double tail = 1.0;  // in units of pmf(k)
  double term = 1.0;
  for (int j = k + 1; j < k + 200; ++j) {
    term *= mean / static_cast<double>(j);
    tail += term;
    if (term < 1e-16 * tail) break;
  }
  return log_first + std::log(tail);
}

int poisson_quantile(double p, double mean) {
  assert(p >= 0.0 && p < 1.0);
  assert(mean >= 0.0);
  if (mean == 0.0) return 0;
  double term = std::exp(-mean);
  double sum = term;
  int k = 0;
  // Hard upper bound keeps malformed inputs from looping forever; for the
  // rates Sprout handles the loop exits after O(mean) iterations.
  const int limit = static_cast<int>(mean + 20.0 * std::sqrt(mean) + 200.0);
  while (sum < p && k < limit) {
    ++k;
    term *= mean / static_cast<double>(k);
    sum += term;
  }
  return k;
}

}  // namespace sprout

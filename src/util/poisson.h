// Numerically careful Poisson distribution math.
//
// Sprout's Bayesian observation step multiplies bin probabilities by Poisson
// likelihoods whose linear-space values underflow for plausible rates
// (e.g. exp(-160)), so all pmf work is done in log space, and cumulative
// quantities are built by stable iterative summation.
#pragma once

#include <limits>

namespace sprout {

inline constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// log(k!) via lgamma; exact to double precision for all k >= 0.
double log_factorial(int k);

// log P[X = k] for X ~ Poisson(mean).  mean == 0 is the outage case:
// returns 0 (probability 1) for k == 0 and -inf for k > 0.
double poisson_log_pmf(int k, double mean);

// P[X = k].
double poisson_pmf(int k, double mean);

// P[X <= k], by forward summation of pmf terms (stable for mean <~ 700,
// far above anything Sprout's 11 Mbps / 160 ms horizon produces).
double poisson_cdf(int k, double mean);

// Smallest k such that P[X <= k] >= p.  p in [0, 1).
int poisson_quantile(double p, double mean);

// log P[X >= k]: the censored-observation likelihood ("at least k arrived").
// Computed stably for both tails.
double poisson_log_survival(int k, double mean);

}  // namespace sprout

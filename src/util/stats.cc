#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sprout {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double PercentileEstimator::percentile(double p) {
  assert(p >= 0.0 && p <= 100.0);
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void RampFunctionPercentile::add_ramp(double start, double length) {
  if (length <= 0.0) return;
  ramps_.push_back({start, length});
  total_ += length;
}

double RampFunctionPercentile::time_at_or_below(double v) const {
  double t = 0.0;
  for (const Ramp& r : ramps_) {
    t += std::clamp(v - r.start, 0.0, r.length);
  }
  return t;
}

double RampFunctionPercentile::percentile(double p) const {
  assert(p >= 0.0 && p <= 100.0);
  if (ramps_.empty()) return 0.0;
  const double target = p / 100.0 * total_;
  double lo = ramps_.front().start;
  double hi = ramps_.front().start + ramps_.front().length;
  for (const Ramp& r : ramps_) {
    lo = std::min(lo, r.start);
    hi = std::max(hi, r.start + r.length);
  }
  // time_at_or_below is continuous and nondecreasing in v: bisect.
  for (int iter = 0; iter < 100 && hi - lo > 1e-9; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (time_at_or_below(mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double RampFunctionPercentile::mean() const {
  if (total_ <= 0.0) return 0.0;
  double area = 0.0;
  for (const Ramp& r : ramps_) {
    area += (r.start + 0.5 * r.length) * r.length;
  }
  return area / total_;
}

LogHistogram::LogHistogram(double min_value, double max_value, int bins)
    : log_min_(std::log10(min_value)),
      log_max_(std::log10(max_value)),
      counts_(static_cast<std::size_t>(bins), 0) {
  assert(min_value > 0.0 && max_value > min_value && bins > 0);
}

void LogHistogram::add(double x) {
  ++total_;
  if (x <= 0.0) return;
  const double lx = std::log10(x);
  const double frac = (lx - log_min_) / (log_max_ - log_min_);
  // Below-range values must not truncate toward bin 0.
  if (frac < 0.0 || frac >= 1.0) return;
  const auto idx = static_cast<std::size_t>(
      frac * static_cast<double>(counts_.size()));
  if (idx < counts_.size()) ++counts_[idx];
}

double LogHistogram::bin_lo(int i) const {
  const double n = static_cast<double>(counts_.size());
  return std::pow(10.0, log_min_ + (log_max_ - log_min_) * i / n);
}

double LogHistogram::bin_hi(int i) const { return bin_lo(i + 1); }

double LogHistogram::bin_center(int i) const {
  return std::sqrt(bin_lo(i) * bin_hi(i));
}

double LogHistogram::percent(int i) const {
  if (total_ == 0) return 0.0;
  return 100.0 * static_cast<double>(counts_[static_cast<std::size_t>(i)]) /
         static_cast<double>(total_);
}

PowerLawFit fit_power_law(const std::vector<double>& x, const std::vector<double>& y) {
  assert(x.size() == y.size());
  PowerLawFit fit;
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] <= 0.0 || y[i] <= 0.0) continue;
    const double lx = std::log10(x[i]);
    const double ly = std::log10(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  if (n < 2) return fit;
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom == 0.0) return fit;
  fit.slope = (dn * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / dn;
  return fit;
}

double jain_fairness(const std::vector<double>& shares) {
  if (shares.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : shares) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(shares.size()) * sum_sq);
}

}  // namespace sprout

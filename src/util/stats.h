// Statistics helpers used by the metrics module and the benchmark harness.
#pragma once

#include <cstdint>
#include <vector>

namespace sprout {

// Single-pass mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::int64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Collects samples and answers percentile queries (linear interpolation
// between closest ranks). Sorting is deferred until the first query.
class PercentileEstimator {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }

  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }

  // p in [0, 100].
  [[nodiscard]] double percentile(double p);
  [[nodiscard]] double median() { return percentile(50.0); }

 private:
  std::vector<double> samples_;
  bool sorted_ = false;
};

// Percentile of a piecewise-linear function of time whose segments are unit
// ramps: each segment starts at value `start` and rises at 1 s/s for
// `length` seconds.  This is exactly the shape of the paper's instantaneous
// end-to-end-delay signal (footnote 7), so percentiles computed here are
// exact, not sampled.
class RampFunctionPercentile {
 public:
  // Records that the function took values [start, start + length) over a
  // span of `length` seconds.  Zero/negative lengths are ignored.
  void add_ramp(double start, double length);

  [[nodiscard]] bool empty() const { return ramps_.empty(); }
  [[nodiscard]] double total_time() const { return total_; }

  // Value v such that the function was <= v for a fraction p/100 of the time.
  [[nodiscard]] double percentile(double p) const;

  // Time-average of the function.
  [[nodiscard]] double mean() const;

 private:
  [[nodiscard]] double time_at_or_below(double v) const;

  struct Ramp {
    double start;
    double length;
  };
  std::vector<Ramp> ramps_;
  double total_ = 0.0;
};

// Fixed-width histogram over log10(x); used for the Figure 2 interarrival
// distribution (log-log plot with a power-law tail).
class LogHistogram {
 public:
  LogHistogram(double min_value, double max_value, int bins);

  void add(double x);

  [[nodiscard]] int bins() const { return static_cast<int>(counts_.size()); }
  [[nodiscard]] double bin_center(int i) const;  // geometric center
  [[nodiscard]] double bin_lo(int i) const;
  [[nodiscard]] double bin_hi(int i) const;
  [[nodiscard]] std::int64_t count(int i) const { return counts_[i]; }
  [[nodiscard]] std::int64_t total() const { return total_; }
  // Percent of all samples falling in bin i.
  [[nodiscard]] double percent(int i) const;

 private:
  double log_min_;
  double log_max_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
};

// Least-squares fit of log10(y) = intercept + slope * log10(x).
// Returns {slope, intercept}. Used to recover Figure 2's t^-3.27 tail.
struct PowerLawFit {
  double slope = 0.0;
  double intercept = 0.0;
};
PowerLawFit fit_power_law(const std::vector<double>& x, const std::vector<double>& y);

// Jain's fairness index (Σx)² / (n·Σx²): 1.0 when all shares are equal,
// 1/n when one flow takes everything.  Used by the multi-Sprout
// shared-queue experiments.  Returns 1.0 for empty or all-zero inputs.
[[nodiscard]] double jain_fairness(const std::vector<double>& shares);

}  // namespace sprout

// Aligned plain-text table output for the benchmark harness.
//
// Every bench binary regenerates one of the paper's tables or figures; this
// writer produces the same rows/series in a stable, diffable layout and can
// mirror the data to a TSV file for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sprout {

class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> headers);

  // Begins a new row; subsequent cell() calls fill it left to right.
  TableWriter& row();
  TableWriter& cell(const std::string& value);
  TableWriter& cell(const char* value);
  TableWriter& cell(double value, int precision = 2);
  TableWriter& cell(std::int64_t value);

  // Renders the table with padded columns.
  void print(std::ostream& os) const;

  // Tab-separated dump (header row first); convenient for gnuplot.
  void write_tsv(std::ostream& os) const;

  // JSON dump: an array of objects keyed by header (all values as strings,
  // exactly as rendered).  Used by the CI bench-smoke artifact.
  void write_json(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats `value` with fixed precision (helper shared with bench output).
std::string format_double(double value, int precision = 2);

}  // namespace sprout

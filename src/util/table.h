// Aligned plain-text table output for the benchmark harness, plus the
// small JSON model the sharded sweep pipeline reads its result files with.
//
// Every bench binary regenerates one of the paper's tables or figures; the
// writer produces the same rows/series in a stable, diffable layout and can
// mirror the data to a TSV file for plotting.  JsonValue is the read side:
// shard result files (runner/shard.h) are written by one OS process and
// merged by another, so corrupt or truncated files must fail loudly here,
// not surface as garbled metrics downstream.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sprout {

class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> headers);

  // Begins a new row; subsequent cell() calls fill it left to right.
  TableWriter& row();
  TableWriter& cell(const std::string& value);
  TableWriter& cell(const char* value);
  TableWriter& cell(double value, int precision = 2);
  TableWriter& cell(std::int64_t value);

  // Renders the table with padded columns.
  void print(std::ostream& os) const;

  // Tab-separated dump (header row first); convenient for gnuplot.
  void write_tsv(std::ostream& os) const;

  // JSON dump: an array of objects keyed by header (all values as strings,
  // exactly as rendered).  Used by the CI bench-smoke artifact.
  void write_json(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats `value` with fixed precision (helper shared with bench output).
std::string format_double(double value, int precision = 2);

// Immutable parsed JSON value (RFC 8259 subset: no surrogate pairs).
// Object member order is preserved.  Every accessor throws
// std::runtime_error on a kind mismatch or a missing key, so a malformed
// shard file fails at the first wrong field with a message naming it.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  // Parses exactly one JSON document; throws std::runtime_error (with the
  // byte offset) on syntax errors, truncation, or trailing garbage.
  [[nodiscard]] static JsonValue parse(std::string_view text);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>&
  members() const;

  // Object member lookup; throws std::runtime_error naming a missing key.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  [[nodiscard]] bool has(const std::string& key) const;

  // Builders for programmatic documents (the declarative spec subsystem's
  // merge-patch expansion composes JSON it never parsed).  Numbers must be
  // finite — JSON has no NaN/inf literal, so a non-finite build is a bug at
  // the call site and throws std::invalid_argument.
  [[nodiscard]] static JsonValue make_null();
  [[nodiscard]] static JsonValue make_bool(bool b);
  [[nodiscard]] static JsonValue make_number(double v);
  [[nodiscard]] static JsonValue make_string(std::string s);
  [[nodiscard]] static JsonValue make_array(std::vector<JsonValue> items);
  [[nodiscard]] static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

// Writes `s` as a JSON string literal (quotes + escapes), exactly as
// TableWriter::write_json does internally.
void write_json_string(std::ostream& os, const std::string& s);

}  // namespace sprout

// Online adaptation of Sprout's frozen hyperparameters (σ, λz).
//
// §3.1 of the paper: "A more sophisticated system would allow σ and λz to
// vary slowly with time to better match more- or less-variable networks."
// This module is that system: a bank of Bayes filters, one per (σ, λz)
// hypothesis, combined by Bayesian model averaging.  Each tick every
// filter runs the usual evolve/observe update; in addition each
// hypothesis's weight is multiplied by the *marginal likelihood* its
// filter assigned to the observation (how well that model predicted what
// actually arrived).  Weights are exponentially forgotten toward uniform
// so the selection can track a network whose variability drifts — the
// "vary slowly with time" the paper sketches.
//
// The forecast is the cautious quantile of the *mixture* posterior
// Σ_k w_k · p_k(λ).  All hypotheses share the same λ grid (σ affects only
// the transition kernel), so the mixture is a plain weighted sum of bin
// probabilities and the existing forecaster machinery applies unchanged.
#pragma once

#include <memory>
#include <vector>

#include "core/forecaster.h"
#include "core/params.h"
#include "core/rate_model.h"
#include "core/strategy.h"

namespace sprout {

struct ModelHypothesis {
  double sigma_pps_per_sqrt_s = 200.0;
  double outage_escape_rate_per_s = 1.0;
};

struct AdaptiveParams {
  // Default grid brackets the paper's frozen σ = 200 by 2x steps in both
  // directions; λz stays at the paper's 1/s (sweeping it adds little, see
  // bench/ablation_model).
  std::vector<ModelHypothesis> hypotheses = {
      {50.0, 1.0}, {100.0, 1.0}, {200.0, 1.0}, {400.0, 1.0}, {800.0, 1.0},
  };
  // Per-tick forgetting: normalized log-weights decay toward 0 (uniform),
  // giving an effective evidence window of ~1/(1-discount) ticks (20 s at
  // 0.999 and 20 ms ticks).
  double discount = 0.999;
  // Weight floor keeps every hypothesis revivable after regime changes.
  double min_weight = 1e-6;
};

class AdaptiveForecastStrategy : public ForecastStrategy {
 public:
  AdaptiveForecastStrategy(const SproutParams& params,
                           AdaptiveParams adaptive = {});

  void advance_tick() override;
  void observe(int packets) override;
  void observe_lower_bound(int packets) override;
  [[nodiscard]] DeliveryForecast make_forecast(TimePoint now) const override;
  [[nodiscard]] double estimated_rate_pps() const override;

  // All member filters are batchable (each groups with other flows sharing
  // its hypothesis's kernel — the hypothesis grid is usually identical
  // across flows, so cross-flow members with equal σ/λz batch together).
  void collect_batch_filters(std::vector<SproutBayesFilter*>& out) override;

  // Posterior over hypotheses (sums to one, aligned with params order).
  [[nodiscard]] std::vector<double> hypothesis_weights() const;
  // The currently most plausible hypothesis.
  [[nodiscard]] const ModelHypothesis& map_hypothesis() const;

 private:
  struct Member {
    ModelHypothesis hypothesis;
    SproutParams params;  // base params with σ/λz overridden
    std::unique_ptr<SproutBayesFilter> filter;
    // Cache-shared kernel for forecast evolution (TransitionMatrixCache).
    std::shared_ptr<const TransitionMatrix> transitions;
    double log_weight = 0.0;
  };

  void observe_impl(int packets, bool censored);
  // log Σ_i p_i · L(k | λ_i): the evidence the observation gives hypothesis
  // `member`, computed against its CURRENT (pre-update) posterior.
  [[nodiscard]] double marginal_log_likelihood(const Member& member,
                                               int packets,
                                               bool censored) const;
  void renormalize_and_forget();
  [[nodiscard]] RateDistribution mixture() const;

  SproutParams base_params_;
  AdaptiveParams adaptive_;
  std::vector<Member> members_;
  DeliveryForecaster forecaster_;  // shared quantile machinery (grid-only)
};

std::unique_ptr<ForecastStrategy> make_adaptive_strategy(
    const SproutParams& p, AdaptiveParams a = {});

}  // namespace sprout

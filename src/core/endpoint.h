// A full Sprout session endpoint.
//
// Each endpoint runs BOTH halves of the protocol, as in the paper (Fig. 3:
// "a Sprout session maintains this model separately in each direction"):
// a receiver inferring the incoming link's rate and forecasting deliveries,
// and a sender pacing data out of the attached source under the window
// computed from the peer's forecast.  Every outgoing packet piggybacks the
// local receiver's latest forecast; when the sender is idle the heartbeat
// doubles as the feedback packet.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "core/params.h"
#include "core/receiver.h"
#include "core/sender.h"
#include "core/source.h"
#include "core/strategy.h"
#include "core/tick_batcher.h"
#include "metrics/recorder.h"
#include "sim/packet.h"
#include "sim/simulator.h"

namespace sprout {

enum class SproutVariant {
  kBayesian,   // the paper's filter + cautious forecast
  kEwma,       // §5.3 ablation: smoothed rate, no caution
  kAdaptive,   // §3.1 extension: online model averaging over (σ, λz)
  kMmpp,       // §7 extension: regime-switching (MMPP) link model
  kEmpirical,  // §7 extension: windowed empirical-quantile forecasts
};

class SproutEndpoint : public PacketSink {
 public:
  // `source` may be null (pure receiver/feedback endpoint).
  SproutEndpoint(Simulator& sim, const SproutParams& params,
                 SproutVariant variant, std::int64_t flow_id,
                 DataSource* source);

  SproutEndpoint(const SproutEndpoint&) = delete;
  SproutEndpoint& operator=(const SproutEndpoint&) = delete;

  // Where outgoing packets go (the link ingress).  Must be set before
  // start().
  void attach_network(PacketSink& out) { network_ = &out; }

  // Optional cross-flow evolution batcher (scenario-owned; must outlive the
  // endpoint).  If set before start(), this endpoint's Bayes filters join
  // the scenario-wide per-instant batch evolve.
  void set_evolve_batcher(TickEvolveBatcher* batcher) { batcher_ = batcher; }

  // Optional flight-recorder tap (metrics/recorder.h; scenario-owned, must
  // outlive the endpoint).  After every receiver tick the cautious
  // estimate's horizon-average delivery rate is recorded, so timelines can
  // plot "what the forecast believed" against what the channel delivered.
  // Pure observation: the forecast is read, never altered.
  void set_forecast_tap(FlowTimelineRecorder* recorder) {
    forecast_tap_ = recorder;
  }

  // Begins the 20 ms tick loop.  `phase` offsets this endpoint's tick
  // boundaries; real peers' clocks are never phase-locked, and a simulated
  // metronome alignment creates knife-edge observation artifacts.
  void start(Duration phase = Duration::zero());

  // Packets arriving from the network.
  void receive(Packet&& p) override;

  // Delivery hook for encapsulated client packets (SproutTunnel egress).
  void set_tunnel_delivery(std::function<void(Packet&&)> fn) {
    tunnel_delivery_ = std::move(fn);
  }

  [[nodiscard]] const SproutReceiver& receiver() const { return receiver_; }
  [[nodiscard]] const SproutSender& sender() const { return sender_; }
  [[nodiscard]] std::int64_t malformed_packets() const { return malformed_; }

 private:
  void tick();
  void emit(SproutWireMessage&& msg, ByteCount wire_size);
  [[nodiscard]] static std::unique_ptr<ForecastStrategy> make_strategy(
      const SproutParams& params, SproutVariant variant);

  Simulator& sim_;
  SproutParams params_;
  SproutReceiver receiver_;
  SproutSender sender_;
  DataSource* source_;
  PacketSink* network_ = nullptr;
  TickEvolveBatcher* batcher_ = nullptr;
  FlowTimelineRecorder* forecast_tap_ = nullptr;
  std::function<void(Packet&&)> tunnel_delivery_;
  std::int64_t flow_id_;
  std::int64_t malformed_ = 0;
  bool started_ = false;
};

}  // namespace sprout

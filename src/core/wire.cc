#include "core/wire.h"

#include <cstring>

namespace sprout {

namespace {

constexpr std::size_t kHeaderSize = 4 + 1 + 1 + 8 + 4 + 8 + 4;
constexpr std::size_t kForecastFixed = 8 + 8 + 4 + 1;
constexpr std::size_t kMaxForecastTicks = 64;

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

template <typename T>
void put_le(std::vector<std::uint8_t>& out, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out.push_back(static_cast<std::uint8_t>(static_cast<std::uint64_t>(v) >> (8 * i)));
  }
}

class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] bool ok() const { return ok_; }

  std::uint8_t u8() {
    if (pos_ + 1 > bytes_.size()) return fail<std::uint8_t>();
    return bytes_[pos_++];
  }

  template <typename T>
  T le() {
    if (pos_ + sizeof(T) > bytes_.size()) return fail<T>();
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    return static_cast<T>(v);
  }

 private:
  template <typename T>
  T fail() {
    ok_ = false;
    return T{};
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

ByteCount serialized_size(const SproutWireMessage& msg) {
  ByteCount size = kHeaderSize;
  if (msg.forecast.has_value()) {
    size += kForecastFixed + 4 * msg.forecast->cumulative_bytes.size();
  }
  return size;
}

std::vector<std::uint8_t> serialize(const SproutWireMessage& msg) {
  std::vector<std::uint8_t> out;
  serialize_into(msg, out);
  return out;
}

void serialize_into(const SproutWireMessage& msg,
                    std::vector<std::uint8_t>& out) {
  out.clear();
  out.reserve(static_cast<std::size_t>(serialized_size(msg)));
  put_le<std::uint32_t>(out, SproutHeader::kMagic);
  put_u8(out, SproutHeader::kVersion);
  std::uint8_t flags = msg.header.flags;
  if (msg.forecast.has_value()) {
    flags |= SproutHeader::kFlagHasForecast;
  } else {
    flags &= static_cast<std::uint8_t>(~SproutHeader::kFlagHasForecast);
  }
  put_u8(out, flags);
  put_le<std::int64_t>(out, msg.header.seqno);
  put_le<std::int32_t>(out, msg.header.payload_bytes);
  put_le<std::int64_t>(out, msg.header.throwaway);
  put_le<std::uint32_t>(out, msg.header.time_to_next_us);
  if (msg.forecast.has_value()) {
    const ForecastBlock& f = *msg.forecast;
    put_le<std::int64_t>(out, f.received_or_lost_bytes);
    put_le<std::int64_t>(out, f.origin_us);
    put_le<std::uint32_t>(out, f.tick_us);
    put_u8(out, static_cast<std::uint8_t>(f.cumulative_bytes.size()));
    for (std::uint32_t v : f.cumulative_bytes) {
      put_le<std::uint32_t>(out, v);
    }
  }
}

std::optional<SproutWireMessage> parse(std::span<const std::uint8_t> bytes) {
  Cursor c(bytes);
  if (c.le<std::uint32_t>() != SproutHeader::kMagic) return std::nullopt;
  if (c.u8() != SproutHeader::kVersion) return std::nullopt;
  SproutWireMessage msg;
  msg.header.flags = c.u8();
  msg.header.seqno = c.le<std::int64_t>();
  msg.header.payload_bytes = c.le<std::int32_t>();
  msg.header.throwaway = c.le<std::int64_t>();
  msg.header.time_to_next_us = c.le<std::uint32_t>();
  if (!c.ok()) return std::nullopt;
  if (msg.header.payload_bytes < 0) return std::nullopt;
  if (msg.header.flags & SproutHeader::kFlagHasForecast) {
    ForecastBlock f;
    f.received_or_lost_bytes = c.le<std::int64_t>();
    f.origin_us = c.le<std::int64_t>();
    f.tick_us = c.le<std::uint32_t>();
    const std::uint8_t n = c.u8();
    if (!c.ok() || n > kMaxForecastTicks) return std::nullopt;
    f.cumulative_bytes.reserve(n);
    for (std::uint8_t i = 0; i < n; ++i) {
      f.cumulative_bytes.push_back(c.le<std::uint32_t>());
    }
    if (!c.ok()) return std::nullopt;
    // The forecast must be nondecreasing; reject corrupted blocks.
    for (std::size_t i = 1; i < f.cumulative_bytes.size(); ++i) {
      if (f.cumulative_bytes[i] < f.cumulative_bytes[i - 1]) return std::nullopt;
    }
    msg.forecast = std::move(f);
  }
  return msg;
}

}  // namespace sprout

#include "core/endpoint.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "core/adaptive.h"
#include "core/alt_models.h"

namespace sprout {

std::unique_ptr<ForecastStrategy> SproutEndpoint::make_strategy(
    const SproutParams& params, SproutVariant variant) {
  switch (variant) {
    case SproutVariant::kEwma:
      return make_ewma_strategy(params);
    case SproutVariant::kAdaptive:
      return make_adaptive_strategy(params);
    case SproutVariant::kMmpp:
      return make_mmpp_strategy(params);
    case SproutVariant::kEmpirical:
      return make_empirical_strategy(params);
    case SproutVariant::kBayesian:
      break;
  }
  return make_bayesian_strategy(params);
}

SproutEndpoint::SproutEndpoint(Simulator& sim, const SproutParams& params,
                               SproutVariant variant, std::int64_t flow_id,
                               DataSource* source)
    : sim_(sim),
      params_(params),
      receiver_(params, make_strategy(params, variant)),
      sender_(params,
              [this](SproutWireMessage&& msg, ByteCount wire) {
                emit(std::move(msg), wire);
              }),
      source_(source),
      flow_id_(flow_id) {}

void SproutEndpoint::start(Duration phase) {
  assert(network_ != nullptr && "attach_network before start");
  assert(!started_);
  started_ = true;
  if (batcher_ != nullptr) {
    std::vector<SproutBayesFilter*> filters;
    receiver_.collect_batch_filters(filters);
    batcher_->add(std::move(filters), sim_.now() + params_.tick + phase,
                  params_.tick);
  }
  sim_.after(params_.tick + phase, [this] { tick(); });
}

void SproutEndpoint::tick() {
  // Evolve every same-instant filter across the scenario in one batched
  // matrix pass before any endpoint's own tick logic runs (bit-identical;
  // see core/tick_batcher.h).
  if (batcher_ != nullptr) {
    batcher_->on_tick(sim_.now());
  }
  // Receiver first so the forecast piggybacked on this tick's packets is
  // computed from everything that has arrived so far.
  receiver_.tick(sim_.now());
  if (forecast_tap_ != nullptr) {
    const DeliveryForecast& f = receiver_.latest_forecast();
    if (f.ticks() > 0) {
      forecast_tap_->record_forecast(
          sim_.now(), kbps(f.cumulative_bytes.back(), f.tick * f.ticks()));
    }
  }
  sender_.tick(sim_.now(), [this](ByteCount max) {
    return source_ != nullptr ? source_->pull(max) : 0;
  });
  sim_.after(params_.tick, [this] { tick(); });
}

void SproutEndpoint::emit(SproutWireMessage&& msg, ByteCount wire_size) {
  // Piggyback the local receiver's forecast (§3.4) once one exists.
  const DeliveryForecast& f = receiver_.latest_forecast();
  if (f.ticks() > 0) {
    ForecastBlock block;
    block.received_or_lost_bytes = receiver_.received_or_lost_bytes();
    block.origin_us = f.origin.time_since_epoch().count();
    block.tick_us = static_cast<std::uint32_t>(f.tick.count());
    block.cumulative_bytes.reserve(f.cumulative_bytes.size());
    for (ByteCount b : f.cumulative_bytes) {
      block.cumulative_bytes.push_back(
          static_cast<std::uint32_t>(std::min<ByteCount>(b, 0xffffffff)));
    }
    msg.forecast = std::move(block);
  }
  Packet p;
  p.flow_id = flow_id_;
  p.size = wire_size;
  p.sent_at = sim_.now();
  // Pooled payload: reuse a recycled buffer's capacity instead of a fresh
  // heap allocation per packet (sim/packet_pool.h).
  p.payload = sim_.pool().acquire();
  serialize_into(msg, p.payload);
  if (msg.header.payload_bytes > 0 && source_ != nullptr) {
    source_->fill(p, msg.header.payload_bytes);
  }
  network_->receive(std::move(p));
}

void SproutEndpoint::receive(Packet&& p) {
  const std::optional<SproutWireMessage> msg = parse(p.payload);
  // The payload dies here either way; hand its capacity back to the pool
  // for the next emit().
  sim_.pool().recycle(std::move(p.payload));
  if (!msg.has_value()) {
    ++malformed_;
    return;
  }
  receiver_.on_packet(*msg, p.size, sim_.now());
  if (msg->forecast.has_value()) {
    sender_.on_forecast(*msg->forecast, sim_.now());
  }
  if (tunnel_delivery_) {
    for (Packet& client : p.tunneled) {
      tunnel_delivery_(std::move(client));
    }
  }
}

}  // namespace sprout

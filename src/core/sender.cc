#include "core/sender.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace sprout {

namespace {
// Fixed per-packet allowance for the Sprout header plus a piggybacked
// 8-tick forecast block.  The window/byte accounting uses this constant so
// the budget math stays independent of whether a given packet happens to
// carry a forecast.
constexpr ByteCount kWireOverhead = 96;
// Before the first forecast arrives the sender paces itself to a modest
// fixed allowance per tick (the paper does not specify a startup phase).
constexpr ByteCount kStartupPacketsPerTick = 20;
// Ticks of closed window (with data waiting) before a probe burst goes out,
// and the burst size.
constexpr int kProbeAfterIdleTicks = 5;
constexpr std::int64_t kProbePackets = 5;
// Bytes sent within this window are assumed still in flight (2 x the 20 ms
// propagation delay); anything older and unaccounted is sitting in a queue.
constexpr Duration kInflightWindow = msec(40);
}  // namespace

SproutSender::SproutSender(const SproutParams& params, EmitFn emit)
    : params_(params), emit_(std::move(emit)) {
  assert(emit_ && "sender needs an emit callback");
}

void SproutSender::on_forecast(const ForecastBlock& block,
                               TimePoint /*now*/) {
  const TimePoint origin = TimePoint{} + usec(block.origin_us);
  if (have_forecast_ && origin <= forecast_origin_) return;  // stale
  forecast_ = block;
  forecast_origin_ = origin;
  have_forecast_ = true;
  // Estimated backlog: everything sent that the receiver has not yet
  // received or written off.  Bytes still in flight count as queued, which
  // errs on the cautious side.
  queue_estimate_ = std::max<ByteCount>(0, bytes_sent_ - block.received_or_lost_bytes);
  // received_or_lost was measured AT THE ORIGIN of this forecast, so the
  // drain credits must start from tick 0 of the forecast: the link kept
  // delivering while the feedback was in flight, and those deliveries are
  // in neither the received count nor (yet) the decrements.  Crediting from
  // the current position instead would undercount drain by ~2 ticks every
  // cycle and ratchet the window toward zero.
  drained_ticks_ = 0;
  // Confirmed backlog AT THE ORIGIN: bytes sent early enough to have
  // reached the queue by then (one propagation delay before the origin)
  // that the receiver still had not seen.  This is the sender-limited /
  // link-limited classifier for the receiver's censored observations.
  const ByteCount should_have_arrived =
      bytes_sent_before(origin - params_.assumed_propagation);
  confirmed_backlog_ = std::max<ByteCount>(
      0, should_have_arrived - block.received_or_lost_bytes);
}

std::int64_t SproutSender::forecast_position(TimePoint now) const {
  if (!have_forecast_) return 0;
  return std::max<std::int64_t>(0, (now - forecast_origin_) / params_.tick);
}

ByteCount SproutSender::forecast_at(std::int64_t tick_index) const {
  if (!have_forecast_ || tick_index <= 0) return 0;
  const auto& cum = forecast_.cumulative_bytes;
  if (cum.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      std::min<std::int64_t>(tick_index, static_cast<std::int64_t>(cum.size())));
  return static_cast<ByteCount>(cum[idx - 1]);
}

ByteCount SproutSender::window_bytes(TimePoint now) const {
  if (!have_forecast_) {
    return kStartupPacketsPerTick * params_.mtu;
  }
  const std::int64_t pos = forecast_position(now);
  const std::int64_t look = pos + params_.sender_lookahead_ticks;
  // "Anything left over is safe to send": expected drain across the
  // lookahead minus what is already sitting in the queue (§3.5, Fig. 4).
  return forecast_at(look) - forecast_at(pos) - queue_estimate_;
}

ByteCount SproutSender::forecast_life_bytes(TimePoint now) const {
  if (!have_forecast_) return 0;
  const std::int64_t pos = forecast_position(now);
  const auto horizon =
      static_cast<std::int64_t>(forecast_.cumulative_bytes.size());
  return forecast_at(horizon) - forecast_at(pos);
}

std::int64_t SproutSender::compute_throwaway(TimePoint now) const {
  const TimePoint cutoff = now - params_.throwaway_window;
  std::int64_t result = 0;
  for (const SendMark& mark : recent_sends_) {
    if (mark.at <= cutoff) {
      result = mark.seqno;
    } else {
      break;
    }
  }
  return result;
}

ByteCount SproutSender::bytes_sent_before(TimePoint t) const {
  // seqno of a mark == cumulative bytes before that packet; the newest mark
  // at or before t gives (almost) everything sent by t.
  ByteCount before = 0;
  for (const SendMark& mark : recent_sends_) {
    if (mark.at <= t) {
      before = mark.seqno;
    } else {
      break;
    }
  }
  return before;
}

void SproutSender::send_message(ByteCount wire_size, bool heartbeat,
                                std::uint32_t time_to_next_us, TimePoint now) {
  SproutWireMessage msg;
  msg.header.seqno = bytes_sent_;
  msg.header.payload_bytes = static_cast<std::int32_t>(
      std::max<ByteCount>(0, wire_size - kWireOverhead));
  msg.header.throwaway = compute_throwaway(now);
  msg.header.time_to_next_us = time_to_next_us;
  if (heartbeat) msg.header.flags |= SproutHeader::kFlagHeartbeat;
  if (limited_this_tick_) msg.header.flags |= SproutHeader::kFlagSenderLimited;

  recent_sends_.push_back(SendMark{now, bytes_sent_});
  // Prune marks no longer needed by the throwaway boundary or the
  // sent-before-origin lookup (forecast staleness is bounded by a few
  // ticks; 200 ms is a comfortable horizon): keep the newest mark at or
  // before the cutoff and everything after it.
  const TimePoint cutoff = now - msec(200);
  while (recent_sends_.size() > 1 && recent_sends_[1].at <= cutoff) {
    recent_sends_.pop_front();
  }

  bytes_sent_ += wire_size;
  queue_estimate_ += wire_size;
  emit_(std::move(msg), wire_size);
}

void SproutSender::tick(TimePoint now,
                        const std::function<ByteCount(ByteCount)>& pull) {
  // Credit the queue drain the forecast promised for the ticks that have
  // elapsed since the forecast arrived ("every time it advances into a new
  // tick of the 8-tick forecast, it decrements the estimate", §3.5).
  if (have_forecast_) {
    const std::int64_t pos = forecast_position(now);
    while (drained_ticks_ < pos) {
      const ByteCount drain =
          forecast_at(drained_ticks_ + 1) - forecast_at(drained_ticks_);
      queue_estimate_ = std::max<ByteCount>(0, queue_estimate_ - drain);
      ++drained_ticks_;
    }
  }

  ByteCount window = window_bytes(now);
  const std::uint32_t tick_us =
      static_cast<std::uint32_t>(params_.tick.count());
  const ByteCount payload_capacity = params_.mtu - kWireOverhead;
  // Decide once per tick whether this tick's transmissions are
  // sender-limited: the last confirmed look at the queue found less than a
  // couple of packets waiting (a single stale packet or heartbeat must not
  // flip the classification to "link-limited").
  limited_this_tick_ = confirmed_backlog_ < 2 * params_.mtu;
  // Pull the whole flight first so the LAST packet actually sent can carry
  // a time-to-next declaration when one is warranted.
  std::vector<ByteCount> flight;
  while (window >= params_.mtu) {
    const ByteCount payload = pull ? pull(payload_capacity) : 0;
    if (payload <= 0) break;
    const ByteCount wire = payload + kWireOverhead;
    flight.push_back(wire);
    window -= wire;
  }
  // "For a flight of several packets, the time-to-next will be zero for all
  // but the last packet" (§3.2): the last packet of the tick's flight
  // promises that the next transmission is one tick away.
  for (std::size_t i = 0; i < flight.size(); ++i) {
    const bool last = i + 1 == flight.size();
    send_message(flight[i], /*heartbeat=*/false, last ? tick_us : 0, now);
  }
  if (flight.empty()) {
    ++idle_ticks_;
    // Zero-window probe (the analog of TCP's persist timer): if the window
    // has been shut for a while, the pipe has drained, and the application
    // still has data, send a startup-sized burst.  A starved filter whose
    // forecast has collapsed can only recover from fresh link evidence, and
    // a burst of several packets moves the posterior where a lone packet
    // cannot; without this, a closed window and a frozen belief deadlock.
    if (idle_ticks_ >= kProbeAfterIdleTicks && pull &&
        queue_estimate_ < params_.mtu) {
      std::int64_t sent = 0;
      for (; sent < kProbePackets; ++sent) {
        const ByteCount payload = pull(payload_capacity);
        if (payload <= 0) break;
        const bool last = sent + 1 == kProbePackets;
        send_message(payload + kWireOverhead, /*heartbeat=*/false,
                     last ? tick_us : 0, now);
      }
      if (sent > 0) idle_ticks_ = 0;
    }
    if (idle_ticks_ > 0) {
      // Idle: heartbeat so the receiver can distinguish an empty queue
      // from an outage.
      send_message(params_.heartbeat_bytes, /*heartbeat=*/true, tick_us, now);
    }
  } else {
    idle_ticks_ = 0;
  }
}

}  // namespace sprout

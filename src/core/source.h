// Data sources feeding a Sprout sender.
//
// The sender pulls: each time the window opens it asks the source for up to
// `max` bytes.  A bulk source always fills the window (the saturating
// workload of the paper's main evaluation); the tunnel and the video apps
// provide queue-backed sources.
#pragma once

#include <algorithm>

#include "sim/packet.h"
#include "util/units.h"

namespace sprout {

class DataSource {
 public:
  virtual ~DataSource() = default;

  // Hands the sender up to `max` bytes; returns how many were provided.
  virtual ByteCount pull(ByteCount max) = 0;

  // Whether data is waiting right now (drives heartbeat-vs-data decisions).
  [[nodiscard]] virtual bool has_data() const = 0;

  // Invoked after the sender builds the wire packet whose payload holds the
  // bytes most recently pulled; a tunnel source attaches the encapsulated
  // client packets here.  Default: payload is anonymous bulk data.
  virtual void fill(Packet& wire_packet, ByteCount payload_bytes) {
    (void)wire_packet;
    (void)payload_bytes;
  }
};

// Always-backlogged source.
class BulkDataSource : public DataSource {
 public:
  ByteCount pull(ByteCount max) override {
    pulled_ += max;
    return max;
  }
  [[nodiscard]] bool has_data() const override { return true; }
  [[nodiscard]] ByteCount total_pulled() const { return pulled_; }

 private:
  ByteCount pulled_ = 0;
};

// A byte bucket filled by an application (used by the tunnel and the
// rate-limited example apps).
class QueueDataSource : public DataSource {
 public:
  void offer(ByteCount bytes) { queued_ += bytes; }

  ByteCount pull(ByteCount max) override {
    const ByteCount take = std::min(max, queued_);
    queued_ -= take;
    return take;
  }
  [[nodiscard]] bool has_data() const override { return queued_ > 0; }
  [[nodiscard]] ByteCount queued() const { return queued_; }

 private:
  ByteCount queued_ = 0;
};

}  // namespace sprout

// The cautious packet-delivery forecast (§3.3).
//
// Given the posterior over λ, the receiver predicts — at a configurable
// confidence, 95% by default — a lower bound on the cumulative number of
// packets the link will deliver at each of the next `forecast_horizon_ticks`
// ticks.  Per the paper: the distribution is evolved forward WITHOUT
// observation to each tick, and at each tick the cumulative-delivery
// distribution is the λ-mixture of Poisson(λ·h·τ) laws; the forecast takes
// its (100-confidence)th percentile.  Poisson CDF tables for every
// (bin, horizon) pair are precomputed at startup, so the runtime cost per
// horizon is a weighted sum over bins inside a binary search (the paper's
// "only work at runtime is to take a weighted sum over each λ").
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/params.h"
#include "core/rate_model.h"

namespace sprout {

// Process-wide cache of the precomputed Poisson CDF tables, keyed by the
// SproutParams fields that determine them (bins, rate grid, tick, horizon,
// table size).  The tables are immutable once built and safely shared
// across endpoints and threads, so a sweep of N simulations with the same
// parameters builds the tables once instead of 2N times (each run has at
// least a sender-side and a receiver-side forecaster).  Reuse is observable
// through the obs registry counters "cache.forecast_tables.hits" /
// ".misses" (src/obs/metrics.h).
class ForecastTableCache {
 public:
  // cdf[h-1][n * num_bins + bin] = P[Poisson(λ_bin · h·τ) <= n]
  //
  // Count-major ("transposed") layout: the mixture CDF at a fixed count n
  // is a weighted sum over ALL bins, so the hot access pattern is one
  // contiguous row per CDF probe — a straight dot product against the
  // posterior vector (util/kernels.h) instead of a bins-strided gather.
  using Tables = std::vector<std::vector<double>>;

  // Returns the table set for `params`, building it on first use.
  // Thread-safe; a given key is only ever built once per process.
  [[nodiscard]] static std::shared_ptr<const Tables> get(
      const SproutParams& params);
};

// A cumulative delivery forecast: entry h-1 is the cautious cumulative
// byte count deliverable within (h) ticks of `origin`.
struct DeliveryForecast {
  TimePoint origin{};
  Duration tick{};
  std::vector<ByteCount> cumulative_bytes;  // nondecreasing

  [[nodiscard]] int ticks() const {
    return static_cast<int>(cumulative_bytes.size());
  }
  // Cumulative bytes by the END of tick index t (t in [0, ticks()]),
  // where index 0 means "now" (zero bytes).  t beyond the horizon clamps.
  [[nodiscard]] ByteCount cumulative_at(int t) const;
};

class DeliveryForecaster {
 public:
  explicit DeliveryForecaster(const SproutParams& params);

  // Produces the forecast for the posterior `current`, evolving a private
  // copy forward tick by tick.  `now` stamps the forecast origin.
  [[nodiscard]] DeliveryForecast forecast(const RateDistribution& current,
                                          TimePoint now) const;

  // Forecasts several posteriors in one pass: the per-horizon evolution of
  // all private copies runs through TransitionMatrix::evolve_batch, so N
  // co-active flows pay each horizon's matrix traversal once.  Entry f is
  // bit-identical to forecast(*dists[f], now).
  [[nodiscard]] std::vector<DeliveryForecast> forecast_batch(
      std::span<const RateDistribution* const> dists, TimePoint now) const;

  // The (100-confidence)th percentile of the cumulative-delivery mixture at
  // horizon h (1-based), in packets.  Exposed for tests and ablations.
  //
  // `floor` is the monotone-floor hint: a count already known to lower-bound
  // nothing below the answer's use site (the previous horizon's forecast —
  // cumulative deliveries cannot decrease with a longer horizon).  One CDF
  // probe at the floor both answers "is the quantile at or below the floor"
  // (return the floor: the caller clamps there anyway) and establishes the
  // lower bracket of the binary search, so no endpoint is evaluated twice.
  // floor = 0 recovers the plain quantile.
  [[nodiscard]] int quantile_packets(const RateDistribution& dist, int horizon,
                                     int floor = 0) const;

 private:
  [[nodiscard]] double mixture_cdf(const RateDistribution& dist, int horizon,
                                   int count) const;

  SproutParams params_;
  // Shared, immutable kernel and CDF tables from the process-wide caches.
  std::shared_ptr<const TransitionMatrix> transitions_;
  std::shared_ptr<const ForecastTableCache::Tables> cdf_;
};

}  // namespace sprout

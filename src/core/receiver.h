// The Sprout receiver (§3.2-3.4): observes packet arrivals, runs the
// forecast strategy every 20 ms tick, and maintains the received-or-lost
// byte count the sender uses to estimate queue occupancy.
//
// Observation rules:
//  * A tick's arrivals are counted in MTU units (remainders carry over).
//  * If the most recent packet declared a nonzero time-to-next that has not
//    expired, ticks with less than one MTU of arrivals are skipped — an
//    empty sender queue must not read as an outage (§3.2).
//  * Otherwise every tick is observed, including zero-arrival ticks, which
//    is precisely how genuine outages are detected.
#pragma once

#include <memory>

#include "core/strategy.h"
#include "core/wire.h"
#include "util/units.h"

namespace sprout {

class SproutReceiver {
 public:
  SproutReceiver(const SproutParams& params,
                 std::unique_ptr<ForecastStrategy> strategy);

  // Incorporates an arrived packet (already parsed); `wire_bytes` is the
  // packet's full size on the wire.
  void on_packet(const SproutWireMessage& msg, ByteCount wire_bytes,
                 TimePoint now);

  // Runs one tick ending at `now`: evolve, maybe observe, refresh forecast.
  void tick(TimePoint now);

  [[nodiscard]] const DeliveryForecast& latest_forecast() const {
    return forecast_;
  }
  [[nodiscard]] ByteCount received_or_lost_bytes() const {
    return received_or_lost_;
  }
  // Application-payload bytes that actually arrived (excludes wire headers,
  // heartbeats and anything written off as lost).  The §7 transient bench
  // polls this to find when a talkspurt's bytes finished draining.
  [[nodiscard]] ByteCount payload_bytes_received() const {
    return payload_received_;
  }
  [[nodiscard]] double estimated_rate_pps() const {
    return strategy_->estimated_rate_pps();
  }
  [[nodiscard]] std::int64_t ticks_observed() const { return ticks_observed_; }
  [[nodiscard]] std::int64_t ticks_skipped() const { return ticks_skipped_; }

  // Passthrough to the strategy's batchable filters (core/tick_batcher.h).
  void collect_batch_filters(std::vector<SproutBayesFilter*>& out) {
    strategy_->collect_batch_filters(out);
  }

 private:
  SproutParams params_;
  std::unique_ptr<ForecastStrategy> strategy_;
  DeliveryForecast forecast_;

  ByteCount received_or_lost_ = 0;
  ByteCount payload_received_ = 0;
  ByteCount tick_bytes_ = 0;      // arrivals since the last tick
  ByteCount carry_bytes_ = 0;     // sub-MTU remainder carried forward
  TimePoint blackout_until_{};    // sender-declared idle horizon
  bool tick_saw_backlogged_packet_ = false;
  std::int64_t ticks_observed_ = 0;
  std::int64_t ticks_skipped_ = 0;
};

}  // namespace sprout

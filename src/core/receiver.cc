#include "core/receiver.h"

#include <algorithm>
#include <cassert>

namespace sprout {

SproutReceiver::SproutReceiver(const SproutParams& params,
                               std::unique_ptr<ForecastStrategy> strategy)
    : params_(params), strategy_(std::move(strategy)) {
  assert(strategy_ != nullptr);
}

void SproutReceiver::on_packet(const SproutWireMessage& msg,
                               ByteCount wire_bytes, TimePoint now) {
  tick_bytes_ += wire_bytes;
  payload_received_ += msg.header.payload_bytes;
  // Everything before this packet's sequence range is decidable now: the
  // emulated path is FIFO, so bytes below seqno either arrived already or
  // are lost; the throwaway number additionally covers reordering networks.
  received_or_lost_ = std::max(
      {received_or_lost_, msg.header.seqno + wire_bytes, msg.header.throwaway});
  // Only the MOST RECENT packet's declaration matters (§3.2): a mid-flight
  // packet (time-to-next zero) clears any earlier end-of-flight promise, so
  // ticks that end inside a flight are observed normally.  Declarations get
  // 25% slack: the promised packet still has to cross a jittery queue, and
  // a promise expiring knife-edge at a tick boundary must not turn an
  // in-flight packet into a spurious "zero deliverable" observation.
  blackout_until_ =
      msg.header.time_to_next_us > 0
          ? now + usec(msg.header.time_to_next_us +
                       msg.header.time_to_next_us / 4)
          : now;
  if ((msg.header.flags & SproutHeader::kFlagSenderLimited) == 0) {
    tick_saw_backlogged_packet_ = true;
  }
}

void SproutReceiver::tick(TimePoint now) {
  strategy_->advance_tick();
  const ByteCount pending = carry_bytes_ + tick_bytes_;
  auto consume = [&]() -> int {
    const int packets = static_cast<int>(pending / params_.mtu);
    carry_bytes_ = pending % params_.mtu;
    return packets;
  };
  if (tick_bytes_ == 0) {
    // Silence.  Under an unexpired time-to-next declaration it means the
    // network queue is simply empty (§3.2) — skip; otherwise it is genuine
    // outage evidence.
    if (blackout_until_ > now) {
      ++ticks_skipped_;
    } else {
      consume();
      strategy_->observe(0);
      ++ticks_observed_;
    }
  } else if (tick_saw_backlogged_packet_) {
    // At least one packet was sent while the sender believed bytes were
    // queued in the network: arrivals this tick were LINK-limited, so the
    // count is an exact reading of the delivery rate.
    strategy_->observe(consume());
    ++ticks_observed_;
  } else {
    // Every arrival was sender-limited (pipe believed empty): the link
    // delivered everything offered, so the count only bounds the rate from
    // below (censored observation).  Without this distinction the filter
    // pins the belief at the offered rate and the 95%-cautious window can
    // never climb back after an underestimate.
    strategy_->observe_lower_bound(consume());
    ++ticks_observed_;
  }
  tick_bytes_ = 0;
  tick_saw_backlogged_packet_ = false;
  forecast_ = strategy_->make_forecast(now);
}

}  // namespace sprout

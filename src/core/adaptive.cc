#include "core/adaptive.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/poisson.h"

namespace sprout {

AdaptiveForecastStrategy::AdaptiveForecastStrategy(const SproutParams& params,
                                                   AdaptiveParams adaptive)
    : base_params_(params),
      adaptive_(std::move(adaptive)),
      forecaster_(params) {
  assert(!adaptive_.hypotheses.empty());
  members_.reserve(adaptive_.hypotheses.size());
  for (const ModelHypothesis& h : adaptive_.hypotheses) {
    Member m;
    m.hypothesis = h;
    m.params = params;
    m.params.sigma_pps_per_sqrt_s = h.sigma_pps_per_sqrt_s;
    m.params.outage_escape_rate_per_s = h.outage_escape_rate_per_s;
    m.filter = std::make_unique<SproutBayesFilter>(m.params);
    m.transitions = TransitionMatrixCache::get(m.params);
    m.log_weight = 0.0;  // uniform prior over hypotheses
    members_.push_back(std::move(m));
  }
  renormalize_and_forget();
}

void AdaptiveForecastStrategy::advance_tick() {
  for (Member& m : members_) m.filter->evolve();
}

void AdaptiveForecastStrategy::collect_batch_filters(
    std::vector<SproutBayesFilter*>& out) {
  for (Member& m : members_) out.push_back(m.filter.get());
}

double AdaptiveForecastStrategy::marginal_log_likelihood(const Member& member,
                                                         int packets,
                                                         bool censored) const {
  // log Σ_i p_i L(k|λ_i) by log-sum-exp over bins.
  const RateDistribution& dist = member.filter->distribution();
  const double tau = member.params.tick_seconds();
  double max_w = kNegInf;
  std::vector<double> w(static_cast<std::size_t>(dist.num_bins()), kNegInf);
  for (int i = 0; i < dist.num_bins(); ++i) {
    const double p = dist.probability(i);
    if (p <= 0.0) continue;
    const double mean = member.params.bin_rate(i) * tau;
    const double loglik = censored ? poisson_log_survival(packets, mean)
                                   : poisson_log_pmf(packets, mean);
    const double wi = std::log(p) + loglik;
    w[static_cast<std::size_t>(i)] = wi;
    max_w = std::max(max_w, wi);
  }
  if (max_w == kNegInf) return kNegInf;
  double acc = 0.0;
  for (const double wi : w) {
    if (wi != kNegInf) acc += std::exp(wi - max_w);
  }
  return max_w + std::log(acc);
}

void AdaptiveForecastStrategy::observe_impl(int packets, bool censored) {
  for (Member& m : members_) {
    const double evidence = marginal_log_likelihood(m, packets, censored);
    if (evidence != kNegInf) m.log_weight += evidence;
    if (censored) {
      m.filter->observe_at_least(packets);
    } else {
      m.filter->observe(packets);
    }
  }
  renormalize_and_forget();
}

void AdaptiveForecastStrategy::observe(int packets) {
  observe_impl(packets, /*censored=*/false);
}

void AdaptiveForecastStrategy::observe_lower_bound(int packets) {
  observe_impl(packets, /*censored=*/true);
}

void AdaptiveForecastStrategy::renormalize_and_forget() {
  double max_lw = kNegInf;
  for (const Member& m : members_) max_lw = std::max(max_lw, m.log_weight);
  assert(max_lw != kNegInf);
  double sum = 0.0;
  for (Member& m : members_) sum += std::exp(m.log_weight - max_lw);
  const double log_sum = max_lw + std::log(sum);
  const double log_floor = std::log(adaptive_.min_weight);
  for (Member& m : members_) {
    // Normalize, forget toward uniform (log of a normalized weight is <= 0;
    // scaling it by `discount` moves it toward 0), then floor.
    m.log_weight = adaptive_.discount * (m.log_weight - log_sum);
    m.log_weight = std::max(m.log_weight, log_floor);
  }
}

RateDistribution AdaptiveForecastStrategy::mixture() const {
  RateDistribution mix(base_params_.num_bins);
  std::vector<double>& p = mix.mutable_probabilities();
  std::fill(p.begin(), p.end(), 0.0);
  const std::vector<double> w = hypothesis_weights();
  for (std::size_t k = 0; k < members_.size(); ++k) {
    const RateDistribution& d = members_[k].filter->distribution();
    for (int i = 0; i < d.num_bins(); ++i) {
      p[static_cast<std::size_t>(i)] += w[k] * d.probability(i);
    }
  }
  mix.normalize();
  return mix;
}

DeliveryForecast AdaptiveForecastStrategy::make_forecast(TimePoint now) const {
  DeliveryForecast f;
  f.origin = now;
  f.tick = base_params_.tick;
  f.cumulative_bytes.reserve(
      static_cast<std::size_t>(base_params_.forecast_horizon_ticks));

  // Evolve each hypothesis forward under its OWN kernel, form the mixture
  // at every horizon, and take the cautious quantile of the mixture.  (All
  // hypotheses share the λ grid, so the shared forecaster tables apply.)
  std::vector<RateDistribution> evolved;
  evolved.reserve(members_.size());
  for (const Member& m : members_) evolved.push_back(m.filter->distribution());
  const std::vector<double> w = hypothesis_weights();

  int floor_packets = 0;
  for (int h = 1; h <= base_params_.forecast_horizon_ticks; ++h) {
    RateDistribution mix(base_params_.num_bins);
    std::vector<double>& p = mix.mutable_probabilities();
    std::fill(p.begin(), p.end(), 0.0);
    for (std::size_t k = 0; k < members_.size(); ++k) {
      evolve_dist(*members_[k].transitions, members_[k].params, evolved[k]);
      for (int i = 0; i < base_params_.num_bins; ++i) {
        p[static_cast<std::size_t>(i)] += w[k] * evolved[k].probability(i);
      }
    }
    mix.normalize();
    // Cumulative deliveries cannot decrease with a longer horizon; the
    // previous horizon's count seeds this one's quantile search.
    floor_packets = forecaster_.quantile_packets(mix, h, floor_packets);
    f.cumulative_bytes.push_back(static_cast<ByteCount>(floor_packets) *
                                 base_params_.mtu);
  }
  return f;
}

double AdaptiveForecastStrategy::estimated_rate_pps() const {
  return mixture().mean(base_params_);
}

std::vector<double> AdaptiveForecastStrategy::hypothesis_weights() const {
  std::vector<double> w;
  w.reserve(members_.size());
  double sum = 0.0;
  for (const Member& m : members_) {
    const double v = std::exp(m.log_weight);
    w.push_back(v);
    sum += v;
  }
  assert(sum > 0.0);
  for (double& v : w) v /= sum;
  return w;
}

const ModelHypothesis& AdaptiveForecastStrategy::map_hypothesis() const {
  std::size_t best = 0;
  for (std::size_t k = 1; k < members_.size(); ++k) {
    if (members_[k].log_weight > members_[best].log_weight) best = k;
  }
  return members_[best].hypothesis;
}

std::unique_ptr<ForecastStrategy> make_adaptive_strategy(const SproutParams& p,
                                                         AdaptiveParams a) {
  return std::make_unique<AdaptiveForecastStrategy>(p, std::move(a));
}

}  // namespace sprout

#include "core/tick_batcher.h"

#include <cassert>

namespace sprout {

void TickEvolveBatcher::add(std::vector<SproutBayesFilter*> filters,
                            TimePoint first_tick, Duration period) {
  assert(period > Duration::zero());
  if (filters.empty()) return;  // strategy has nothing batchable
  Entry e;
  e.filters = std::move(filters);
  e.next = first_tick;
  e.period = period;
  entries_.push_back(std::move(e));
}

void TickEvolveBatcher::on_tick(TimePoint now) {
  due_.clear();
  for (Entry& e : entries_) {
    // Schedules are exact: endpoints reschedule at now + period with the
    // same integer arithmetic, so equality comparison is safe.
    if (e.next == now) {
      e.next = now + e.period;
      for (SproutBayesFilter* f : e.filters) due_.push_back(f);
    }
  }
  if (due_.empty()) return;
  if (due_.size() == 1) {
    // A lone due filter gains nothing from the batch path; leave its own
    // evolve() to run normally inside its endpoint's tick.
    return;
  }
  SproutBayesFilter::evolve_batch(due_);
  batched_evolves_ += static_cast<std::int64_t>(due_.size());
  ++batch_passes_;
}

}  // namespace sprout

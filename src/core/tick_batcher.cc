#include "core/tick_batcher.h"

#include <cassert>

#include "obs/metrics.h"

namespace sprout {

void TickEvolveBatcher::add(std::vector<SproutBayesFilter*> filters,
                            TimePoint first_tick, Duration period) {
  assert(period > Duration::zero());
  if (filters.empty()) return;  // strategy has nothing batchable
  Entry e;
  e.filters = std::move(filters);
  e.next = first_tick;
  e.period = period;
  entries_.push_back(std::move(e));
}

void TickEvolveBatcher::on_tick(TimePoint now) {
  due_.clear();
  for (Entry& e : entries_) {
    // Schedules are exact: endpoints reschedule at now + period with the
    // same integer arithmetic, so equality comparison is safe.
    if (e.next == now) {
      e.next = now + e.period;
      for (SproutBayesFilter* f : e.filters) due_.push_back(f);
    }
  }
  if (due_.empty()) return;
  if (due_.size() == 1) {
    // A lone due filter gains nothing from the batch path; leave its own
    // evolve() to run normally inside its endpoint's tick.
    return;
  }
  SproutBayesFilter::evolve_batch(due_);
  batched_evolves_ += static_cast<std::int64_t>(due_.size());
  ++batch_passes_;
  if (obs::enabled()) {
    // Registry mirror: mean group size = batched_flows / batch_passes,
    // plus the largest group seen (utilization for obs_report).
    static obs::Counter& flows =
        obs::Registry::instance().counter("batcher.batched_flows");
    static obs::Counter& passes =
        obs::Registry::instance().counter("batcher.batch_passes");
    flows.add(static_cast<std::int64_t>(due_.size()));
    passes.add();
    obs::Registry::instance()
        .gauge("batcher.max_group_size")
        .set_max(static_cast<double>(due_.size()));
  }
}

}  // namespace sprout

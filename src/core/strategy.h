// Forecast strategies: full Sprout inference vs. the Sprout-EWMA ablation.
//
// Sprout-EWMA (§5.3) keeps the whole protocol but replaces the cautious
// stochastic forecast with an exponentially-weighted moving average of the
// observed rate, extrapolated flat across the horizon.  Both strategies sit
// behind this interface so the endpoint code is shared.
#pragma once

#include <memory>
#include <vector>

#include "core/forecaster.h"
#include "core/params.h"
#include "core/rate_model.h"

namespace sprout {

class ForecastStrategy {
 public:
  virtual ~ForecastStrategy() = default;

  // Advances model time by one tick (called every tick, observed or not).
  virtual void advance_tick() = 0;

  // Incorporates the count of MTU-sized packets observed in the last tick.
  // Not called for ticks skipped under a time-to-next blackout.
  virtual void observe(int packets) = 0;

  // Incorporates a SENDER-LIMITED tick: at least `packets` were deliverable
  // (the sender did not offer more), so the count bounds the rate only from
  // below.
  virtual void observe_lower_bound(int packets) = 0;

  // Builds the forecast from the current belief.
  [[nodiscard]] virtual DeliveryForecast make_forecast(TimePoint now) const = 0;

  // Point estimate of the current rate (diagnostics/plots).
  [[nodiscard]] virtual double estimated_rate_pps() const = 0;

  // Appends the Bayes filters whose per-tick evolution may be hoisted into
  // a cross-flow batch (see SproutBayesFilter::evolve_batch and
  // core/tick_batcher.h).  Strategies without batchable filters (EWMA,
  // empirical) append nothing.
  virtual void collect_batch_filters(std::vector<SproutBayesFilter*>&) {}
};

// The paper's Bayesian filter + cautious percentile forecast.
class BayesianForecastStrategy : public ForecastStrategy {
 public:
  explicit BayesianForecastStrategy(const SproutParams& params);

  void advance_tick() override { filter_.evolve(); }
  void observe(int packets) override { filter_.observe(packets); }
  void observe_lower_bound(int packets) override {
    filter_.observe_at_least(packets);
  }
  [[nodiscard]] DeliveryForecast make_forecast(TimePoint now) const override {
    return forecaster_.forecast(filter_.distribution(), now);
  }
  [[nodiscard]] double estimated_rate_pps() const override {
    return filter_.mean_rate_pps();
  }

  [[nodiscard]] const SproutBayesFilter& filter() const { return filter_; }

  void collect_batch_filters(std::vector<SproutBayesFilter*>& out) override {
    out.push_back(&filter_);
  }

 private:
  SproutBayesFilter filter_;
  DeliveryForecaster forecaster_;
};

struct EwmaParams {
  double gain = 0.125;  // weight of the newest tick's rate sample
};

// The ablation: smoothed rate, flat extrapolation, no caution.
class EwmaForecastStrategy : public ForecastStrategy {
 public:
  EwmaForecastStrategy(const SproutParams& params, EwmaParams ewma);

  void advance_tick() override {}
  void observe(int packets) override;
  // EWMA analog of censoring: a sender-limited tick can only raise the
  // smoothed rate, never drag it toward the offered load.
  void observe_lower_bound(int packets) override;
  [[nodiscard]] DeliveryForecast make_forecast(TimePoint now) const override;
  [[nodiscard]] double estimated_rate_pps() const override { return rate_pps_; }

 private:
  SproutParams params_;
  EwmaParams ewma_;
  double rate_pps_ = 0.0;
  bool primed_ = false;
};

// Factory helpers used by the scheme registry.
std::unique_ptr<ForecastStrategy> make_bayesian_strategy(const SproutParams& p);
std::unique_ptr<ForecastStrategy> make_ewma_strategy(const SproutParams& p,
                                                     EwmaParams e = {});

}  // namespace sprout

#include "core/alt_models.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "util/poisson.h"

namespace sprout {

// ------------------------------------------------------------------- MMPP

MmppForecastStrategy::MmppForecastStrategy(const SproutParams& params,
                                           MmppParams mmpp)
    : params_(params), mmpp_(mmpp) {
  assert(mmpp_.num_states >= 2);
  const int k = mmpp_.num_states;
  rates_.reserve(static_cast<std::size_t>(k));
  rates_.push_back(0.0);  // outage regime
  const double lo = mmpp_.min_rate_fraction * params_.max_rate_pps;
  const double hi = params_.max_rate_pps;
  for (int i = 0; i < k - 1; ++i) {
    const double t = k == 2 ? 1.0 : static_cast<double>(i) / (k - 2);
    rates_.push_back(lo * std::pow(hi / lo, t));
  }
  belief_.assign(static_cast<std::size_t>(k), 1.0 / k);
  counts_.resize(static_cast<std::size_t>(k) * static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      double c;
      if (i == j) {
        c = mmpp_.self_pseudocount;
      } else {
        // Locality: fading walks through neighbouring regimes; rare global
        // jumps (outage onset) keep a small floor.
        c = mmpp_.cross_pseudocount *
                std::exp(-std::abs(i - j) / mmpp_.locality_decay) +
            mmpp_.jump_pseudocount;
      }
      counts_[static_cast<std::size_t>(i) * k + static_cast<std::size_t>(j)] = c;
    }
  }
}

double MmppForecastStrategy::transition_probability(int from, int to) const {
  const int k = num_states();
  const double* row = &counts_[static_cast<std::size_t>(from) * k];
  const double sum = std::accumulate(row, row + k, 0.0);
  return row[to] / sum;
}

int MmppForecastStrategy::map_state() const {
  return static_cast<int>(
      std::max_element(belief_.begin(), belief_.end()) - belief_.begin());
}

std::vector<double> MmppForecastStrategy::evolve_once(
    const std::vector<double>& b) const {
  const int k = num_states();
  std::vector<double> next(static_cast<std::size_t>(k), 0.0);
  for (int i = 0; i < k; ++i) {
    const double bi = b[static_cast<std::size_t>(i)];
    if (bi <= 0.0) continue;
    const double* row = &counts_[static_cast<std::size_t>(i) * k];
    const double sum = std::accumulate(row, row + k, 0.0);
    for (int j = 0; j < k; ++j) {
      next[static_cast<std::size_t>(j)] += bi * row[j] / sum;
    }
  }
  return next;
}

void MmppForecastStrategy::advance_tick() { belief_ = evolve_once(belief_); }

void MmppForecastStrategy::observe(int packets) {
  observe_impl(packets, /*censored=*/false);
}

void MmppForecastStrategy::observe_lower_bound(int packets) {
  observe_impl(packets, /*censored=*/true);
}

void MmppForecastStrategy::observe_impl(int packets, bool censored) {
  const double tau = params_.tick_seconds();
  double max_w = kNegInf;
  std::vector<double> logw(belief_.size(), kNegInf);
  for (std::size_t i = 0; i < belief_.size(); ++i) {
    if (belief_[i] <= 0.0) continue;
    const double mean = rates_[i] * tau;
    const double loglik = censored ? poisson_log_survival(packets, mean)
                                   : poisson_log_pmf(packets, mean);
    logw[i] = std::log(belief_[i]) + loglik;
    max_w = std::max(max_w, logw[i]);
  }
  if (max_w == kNegInf) {
    std::fill(belief_.begin(), belief_.end(), 1.0 / num_states());
    return;
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < belief_.size(); ++i) {
    belief_[i] = logw[i] == kNegInf ? 0.0 : std::exp(logw[i] - max_w);
    sum += belief_[i];
  }
  for (double& b : belief_) b /= sum;

  // Online transition learning: count the MAP-state jump (hard-EM on the
  // hidden chain; the sticky Dirichlet prior keeps early rows sane).
  // Censored ticks barely move the belief, so counting them would flood
  // the diagonal with self-loops at whatever state the sender idled in.
  if (!censored) {
    const int cur = map_state();
    if (prev_map_state_ >= 0) {
      counts_[static_cast<std::size_t>(prev_map_state_) * num_states() +
              static_cast<std::size_t>(cur)] += 1.0;
    }
    prev_map_state_ = cur;
  }
}

double MmppForecastStrategy::belief_rate_quantile(const std::vector<double>& b,
                                                  double percentile) const {
  // States are rate-ascending, so the quantile is a prefix-sum walk.
  const double target = percentile / 100.0;
  double cum = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    cum += b[i];
    if (cum >= target) return rates_[i];
  }
  return rates_.back();
}

int MmppForecastStrategy::mixture_count_quantile(const std::vector<double>& b,
                                                 int horizon,
                                                 double target) const {
  // Smallest n with Σ_s b_s · P[Poisson(r_s·h·τ) <= n] >= target.  K is
  // small (16), so the CDF mixture is evaluated directly inside a binary
  // search; the upper bracket doubles until it covers the target.
  const double tau = params_.tick_seconds();
  auto mix_cdf = [&](int n) {
    double acc = 0.0;
    for (std::size_t s = 0; s < b.size(); ++s) {
      if (b[s] <= 0.0) continue;
      acc += b[s] * poisson_cdf(n, rates_[s] * tau * horizon);
    }
    return acc;
  };
  if (mix_cdf(0) >= target) return 0;
  int hi = 16;
  while (mix_cdf(hi) < target && hi < 1 << 20) hi *= 2;
  int lo = 0;
  while (lo + 1 < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (mix_cdf(mid) >= target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

DeliveryForecast MmppForecastStrategy::make_forecast(TimePoint now) const {
  DeliveryForecast f;
  f.origin = now;
  f.tick = params_.tick;
  f.cumulative_bytes.reserve(
      static_cast<std::size_t>(params_.forecast_horizon_ticks));
  const double percentile = params_.forecast_percentile();
  std::vector<double> evolved = belief_;
  ByteCount floor = 0;
  for (int h = 1; h <= params_.forecast_horizon_ticks; ++h) {
    evolved = evolve_once(evolved);
    int packets = 0;
    if (mmpp_.count_noise_in_forecast) {
      packets = mixture_count_quantile(evolved, h, percentile / 100.0);
    } else {
      const double rate = belief_rate_quantile(evolved, percentile);
      packets = static_cast<int>(rate * params_.tick_seconds() *
                                 static_cast<double>(h));
    }
    ByteCount bytes = static_cast<ByteCount>(packets) * params_.mtu;
    bytes = std::max(bytes, floor);
    floor = bytes;
    f.cumulative_bytes.push_back(bytes);
  }
  return f;
}

double MmppForecastStrategy::estimated_rate_pps() const {
  double m = 0.0;
  for (std::size_t i = 0; i < belief_.size(); ++i) m += belief_[i] * rates_[i];
  return m;
}

// -------------------------------------------------------------- empirical

EmpiricalForecastStrategy::EmpiricalForecastStrategy(
    const SproutParams& params, EmpiricalParams empirical)
    : params_(params), empirical_(empirical) {
  assert(empirical_.window_ticks > 0);
}

void EmpiricalForecastStrategy::push(Sample s) {
  window_.push_back(s);
  while (static_cast<int>(window_.size()) > empirical_.window_ticks) {
    window_.pop_front();
  }
}

void EmpiricalForecastStrategy::observe(int packets) {
  push({packets, false});
}

void EmpiricalForecastStrategy::observe_lower_bound(int packets) {
  push({packets, true});
}

double EmpiricalForecastStrategy::max_packets_per_tick() const {
  return params_.max_rate_pps * params_.tick_seconds();
}

double EmpiricalForecastStrategy::h_sum_quantile(int h,
                                                 double percentile) const {
  // Sliding sums of h consecutive ticks: the empirical distribution of
  // "how much the link delivered over any recent h-tick stretch".  A sum
  // containing a censored tick is itself right-censored (the link would
  // have delivered at least that much), so it sorts at the physical cap:
  // censored history can raise the cautious quantile but never lower it.
  // This is what lets the strategy bootstrap — a sender-limited stretch
  // reads as "unknown but high", not "slow link".
  const int n = static_cast<int>(window_.size());
  assert(n >= h);
  const double cap = max_packets_per_tick() * h;
  std::vector<double> sums;
  sums.reserve(static_cast<std::size_t>(n - h + 1));
  double acc = 0.0;
  int censored_in_window = 0;
  for (int i = 0; i < n; ++i) {
    const Sample& in = window_[static_cast<std::size_t>(i)];
    acc += in.count;
    censored_in_window += in.censored ? 1 : 0;
    if (i >= h) {
      const Sample& out = window_[static_cast<std::size_t>(i - h)];
      acc -= out.count;
      censored_in_window -= out.censored ? 1 : 0;
    }
    if (i >= h - 1) sums.push_back(censored_in_window > 0 ? cap : acc);
  }
  const double idx = percentile / 100.0 * (static_cast<double>(sums.size()) - 1);
  const auto k = static_cast<std::size_t>(idx);
  std::nth_element(sums.begin(), sums.begin() + static_cast<long>(k),
                   sums.end());
  return sums[k];
}

DeliveryForecast EmpiricalForecastStrategy::make_forecast(
    TimePoint now) const {
  DeliveryForecast f;
  f.origin = now;
  f.tick = params_.tick;
  f.cumulative_bytes.reserve(
      static_cast<std::size_t>(params_.forecast_horizon_ticks));
  const int n = static_cast<int>(window_.size());
  const double percentile = params_.forecast_percentile();

  double cold_mean = 0.0;
  if (n > 0 && n < empirical_.min_samples) {
    for (const Sample& s : window_) cold_mean += s.count;
    cold_mean /= n;
  }

  ByteCount floor = 0;
  for (int h = 1; h <= params_.forecast_horizon_ticks; ++h) {
    double packets = 0.0;
    if (n >= empirical_.min_samples && n >= h) {
      packets = h_sum_quantile(h, percentile);
    } else if (n > 0) {
      packets = cold_mean * h;  // cold start: no caution yet
    }
    ByteCount bytes =
        static_cast<ByteCount>(packets) * params_.mtu;
    bytes = std::max(bytes, floor);
    floor = bytes;
    f.cumulative_bytes.push_back(bytes);
  }
  return f;
}

double EmpiricalForecastStrategy::estimated_rate_pps() const {
  // Point estimate from uncensored ticks only (censored counts measure the
  // offered load, not the link).
  double sum = 0.0;
  int n = 0;
  for (const Sample& s : window_) {
    if (s.censored) continue;
    sum += s.count;
    ++n;
  }
  if (n == 0) return 0.0;
  return sum / n / params_.tick_seconds();
}

std::unique_ptr<ForecastStrategy> make_mmpp_strategy(const SproutParams& p,
                                                     MmppParams m) {
  return std::make_unique<MmppForecastStrategy>(p, m);
}

std::unique_ptr<ForecastStrategy> make_empirical_strategy(
    const SproutParams& p, EmpiricalParams e) {
  return std::make_unique<EmpiricalForecastStrategy>(p, e);
}

}  // namespace sprout

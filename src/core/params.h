// Sprout's model and protocol parameters.
//
// The paper froze these before collecting any traces (§3.1, §5): 256 rate
// bins spanning 0..1000 MTU-packets/s, 20 ms ticks, Brownian noise power
// σ = 200 packets/s/√s, outage escape rate λz = 1/s, a 5th-percentile
// ("95% confidence") forecast over 8 ticks, and a 100 ms (5-tick) sender
// lookahead.  Everything is configurable for the ablation benches, but the
// defaults are the paper's.
#pragma once

#include "util/units.h"

namespace sprout {

struct SproutParams {
  // --- stochastic model (§3.1-3.2) ---
  int num_bins = 256;
  double max_rate_pps = 1000.0;           // MTU-sized packets per second
  Duration tick = msec(20);
  double sigma_pps_per_sqrt_s = 200.0;    // Brownian noise power σ
  double outage_escape_rate_per_s = 1.0;  // λz

  // --- forecast (§3.3) ---
  int forecast_horizon_ticks = 8;   // 160 ms
  double confidence_percent = 95.0; // forecast holds with this probability
                                    // (=> the (100-c)th percentile of the
                                    // delivery distribution; Figure 9 sweeps it)
  int max_count = 512;              // cumulative-packet table size
  // Whether the forecast percentile is taken over the λ-mixture of Poisson
  // counting noise (the paper's literal §3.3 text) or over the λ-posterior
  // alone (deliveries = λ·t given λ).  At 20 ms granularity the counting
  // noise dominates the quantile (the 5th percentile of Poisson(10) is 5),
  // which makes the window so starved the protocol cannot sustain its own
  // feedback loop; the rate-quantile forecast preserves the model's caution
  // (posterior width, outage mass) and reproduces the paper's behaviour.
  // Kept as a switch for the ablation bench.
  bool count_noise_in_forecast = false;

  // --- inference fast path ---
  // The Brownian transition matrix is near-banded: one tick's σ spans a few
  // bins, so each row keeps ≥ 1−ε of its mass in a short [lo, hi) span.
  // The evolve kernel stores that span packed and renormalized and skips
  // the rest, making evolution O(bins · bandwidth) instead of O(bins²).
  // ε bounds the per-tick model perturbation (the golden-metrics lock
  // verifies the end-to-end effect stays inside its tolerance).
  double band_epsilon = 1e-12;
  // Exact-reference escape hatch: evolve through the full dense matrix,
  // exactly the pre-banding arithmetic, for golden regeneration and
  // banded-vs-dense equivalence tests.
  bool dense_inference = false;

  // --- sender (§3.4-3.5) ---
  int sender_lookahead_ticks = 5;       // 100 ms delay tolerance
  Duration throwaway_window = msec(10); // reorder horizon for the throwaway no.
  // One-way propagation the sender assumes when deciding whether
  // unacknowledged bytes were genuinely queued (in deployment: min RTT / 2).
  Duration assumed_propagation = msec(20);
  ByteCount mtu = kMtuBytes;
  ByteCount heartbeat_bytes = 50;       // idle keepalive size

  [[nodiscard]] double tick_seconds() const { return to_seconds(tick); }
  // Rate represented by bin i (bins sample [0, max] uniformly; bin 0 is the
  // outage state).
  [[nodiscard]] double bin_rate(int i) const {
    return max_rate_pps * static_cast<double>(i) /
           static_cast<double>(num_bins - 1);
  }
  // The percentile of the cumulative-delivery distribution the forecast
  // reports: 95% confidence -> 5th percentile.
  [[nodiscard]] double forecast_percentile() const {
    return 100.0 - confidence_percent;
  }
};

}  // namespace sprout
